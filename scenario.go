package diffkv

// Scenario is the declarative, JSON-serializable description of one
// serving setup: model, compression method, precision tiers, workload,
// device count, and optionally a multi-instance cluster with routing,
// preemption and host-memory offload. Build translates it into a ready
// Server or ClusterServer stack; the CLIs are thin flag-to-Scenario
// translations, and a spec checked into a file reproduces a run exactly
// (sampling is seeded, so Requests is deterministic too).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"diffkv/internal/quant"
	"diffkv/internal/workload"
)

// WorkloadSpec selects the request stream of a scenario. Exactly one
// arrival shape applies: RatePerSec > 0 samples open-loop Poisson
// arrivals over Seconds; otherwise Requests are sampled closed-loop at
// time zero (CoT biases their generations toward the limit, the paper's
// Fig. 17 setting). Prefix adds shared-prompt-prefix structure.
type WorkloadSpec struct {
	Bench      string        `json:"bench"`
	Requests   int           `json:"requests,omitempty"`
	RatePerSec float64       `json:"rate_per_sec,omitempty"`
	Seconds    float64       `json:"seconds,omitempty"`
	CoT        bool          `json:"cot,omitempty"`
	Prefix     *PrefixConfig `json:"prefix,omitempty"`
}

// PrecisionSpec names the storage tiers of a method that runs the real
// page manager (KxVy notation, e.g. "K8V4"; empty fields keep the
// paper's K8V4 / K4V2 defaults).
type PrecisionSpec struct {
	Hi string `json:"hi,omitempty"`
	Lo string `json:"lo,omitempty"`
}

// ClusterSpec turns a scenario into a multi-instance cluster: Instances
// serving engines behind the named routing policy (any name reported by
// RoutingPolicies, including runtime registrations).
type ClusterSpec struct {
	Instances          int     `json:"instances"`
	Routing            string  `json:"routing,omitempty"`
	MaxQueueDepth      int     `json:"max_queue_depth,omitempty"`
	BlockTokens        int     `json:"block_tokens,omitempty"`
	AffinityQueueBound int     `json:"affinity_queue_bound,omitempty"`
	IndexCapacity      int     `json:"index_capacity,omitempty"`
	TTFTSLOSec         float64 `json:"ttft_slo_sec,omitempty"`
	TPOTSLOSec         float64 `json:"tpot_slo_sec,omitempty"`
}

// Scenario is one complete serving configuration. Zero values select the
// documented defaults, so minimal specs stay minimal:
//
//	{"model": "Llama3-8B", "method": "DiffKV", "workload": {"bench": "MATH"}}
type Scenario struct {
	// Name labels the scenario in output (optional).
	Name string `json:"name,omitempty"`
	// Model is a model-zoo name (see Models / ModelByName).
	Model string `json:"model"`
	// Method is a registered serving method name (see Methods).
	Method string `json:"method"`
	// MemFrac is the measured resident memory fraction of DiffKV-style
	// methods (<= 0 selects the method's default; fixed-trait methods
	// ignore it).
	MemFrac float64 `json:"mem_frac,omitempty"`
	// Precision overrides the page-manager storage tiers (methods with a
	// compression pipeline only).
	Precision *PrecisionSpec `json:"precision,omitempty"`
	// Device names the GPU model ("L40", the default and currently only
	// calibrated device); GPUs is the tensor-parallel size per instance.
	Device string `json:"device,omitempty"`
	GPUs   int    `json:"gpus,omitempty"`
	// MaxGenLen truncates generations (default 4096).
	MaxGenLen int `json:"max_gen_len,omitempty"`
	// MemoryReserve holds back a fraction of post-weights memory
	// (default 0.1; raise it to oversubscribe KV and exercise preemption).
	MemoryReserve float64 `json:"memory_reserve,omitempty"`
	// PrefixCacheGroups enables per-instance prefix caching (0 disables).
	PrefixCacheGroups int `json:"prefix_cache_groups,omitempty"`
	// Preemption is a registered preemption recovery policy name
	// (default "recompute"; swap policies need HostMemoryGB > 0).
	Preemption string `json:"preemption,omitempty"`
	// HostMemoryGB sizes the host offload tier per instance (0 disables).
	HostMemoryGB float64 `json:"host_memory_gb,omitempty"`
	// Workload selects the request stream.
	Workload WorkloadSpec `json:"workload"`
	// Cluster, when present, builds a multi-instance cluster instead of a
	// single server.
	Cluster *ClusterSpec `json:"cluster,omitempty"`
	Seed    uint64       `json:"seed,omitempty"`
	// Tracer, when non-nil, receives the built stack's engine (and
	// cluster) events. It is runtime-only state, not part of the spec.
	Tracer Tracer `json:"-"`
}

// Stack is a scenario translated into live objects: exactly one of
// Server (single instance) or Cluster (ClusterSpec present) is non-nil,
// ready for Run, Open-driven sessions, or manual stepping.
type Stack struct {
	Scenario  Scenario
	Model     *Model
	Benchmark *Benchmark
	Method    Method
	Server    *Server
	Cluster   *ClusterServer
}

// LoadScenario reads and parses a scenario JSON file. Unknown fields are
// an error, so typos in specs fail loudly instead of silently selecting
// defaults.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("diffkv: scenario: %w", err)
	}
	return ParseScenario(data)
}

// ParseScenario parses a scenario from JSON bytes (strict: unknown
// fields are an error).
func ParseScenario(data []byte) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("diffkv: scenario: %w", err)
	}
	return &s, nil
}

// withDefaults returns a copy with zero values resolved to defaults.
func (s Scenario) withDefaults() Scenario {
	if s.Device == "" {
		s.Device = "L40"
	}
	if s.GPUs <= 0 {
		s.GPUs = 1
	}
	if s.MaxGenLen <= 0 {
		s.MaxGenLen = 4096
	}
	if s.Workload.RatePerSec > 0 && s.Workload.Seconds <= 0 {
		s.Workload.Seconds = 60
	}
	if s.Workload.RatePerSec <= 0 && s.Workload.Requests <= 0 {
		s.Workload.Requests = 64
	}
	if c := s.Cluster; c != nil {
		// Instances stays as written: the cluster layer rejects < 1, and
		// silently defaulting would mask a broken spec
		cc := *c
		if cc.Routing == "" {
			cc.Routing = RouteRoundRobin
		}
		s.Cluster = &cc
	}
	return s
}

// Validate resolves every name in the spec against its registry and
// checks cross-field constraints, returning the first error.
func (s Scenario) Validate() error {
	_, err := s.build(false)
	return err
}

// Build translates the scenario into a ready stack: the model, benchmark
// and method are resolved from their registries, and a Server (or, with
// a ClusterSpec, a ClusterServer) is constructed. Each Build returns a
// fresh stack — servers serve one run.
func (s Scenario) Build() (*Stack, error) {
	return s.build(true)
}

func (s Scenario) build(construct bool) (*Stack, error) {
	s = s.withDefaults()
	st := &Stack{Scenario: s}

	var err error
	if st.Model, err = ModelByName(s.Model); err != nil {
		return nil, fmt.Errorf("diffkv: scenario: %w", err)
	}
	if st.Method, err = MethodByName(s.Method); err != nil {
		return nil, fmt.Errorf("diffkv: scenario: %w", err)
	}
	if st.Benchmark, err = BenchmarkByName(s.Workload.Bench); err != nil {
		return nil, fmt.Errorf("diffkv: scenario: %w", err)
	}
	if s.Device != "L40" {
		return nil, fmt.Errorf("diffkv: scenario: unknown device %q (calibrated devices: L40)", s.Device)
	}
	if s.Workload.CoT && (s.Workload.RatePerSec > 0 || s.Workload.Prefix != nil) {
		// Requests would pick the Poisson/prefix sampler and drop the CoT
		// bias without a trace — reject instead of silently mis-sampling
		return nil, fmt.Errorf("diffkv: scenario: workload cot only applies to plain closed-loop sampling (drop rate_per_sec/prefix)")
	}

	ec := ServerConfig{
		Model:             st.Model,
		Traits:            st.Method.ServingTraits(s.MemFrac),
		MaxGenLen:         s.MaxGenLen,
		MemoryReserve:     s.MemoryReserve,
		PrefixCacheGroups: s.PrefixCacheGroups,
		PreemptPolicy:     s.Preemption,
		HostMemoryBytes:   int64(s.HostMemoryGB * float64(1<<30)),
		Seed:              s.Seed,
	}
	if s.Cluster == nil {
		// single-instance: the tracer attaches to the engine directly;
		// cluster builds attach it at the cluster level instead, which
		// instance-tags every engine's events
		ec.Tracer = s.Tracer
	}
	if hook, ok := st.Method.(CompressionHook); ok {
		setup := hook.Compression()
		ec.UseManager = setup.UseManager
		ec.HiFrac, ec.LoFrac = setup.HiFrac, setup.LoFrac
	}
	if p := s.Precision; p != nil {
		if !ec.UseManager {
			return nil, fmt.Errorf("diffkv: scenario: precision requires a method with a compression pipeline (%s has none)", s.Method)
		}
		if p.Hi != "" {
			if ec.HiPrec, err = quant.ByName(p.Hi); err != nil {
				return nil, fmt.Errorf("diffkv: scenario: %w", err)
			}
		}
		if p.Lo != "" {
			if ec.LoPrec, err = quant.ByName(p.Lo); err != nil {
				return nil, fmt.Errorf("diffkv: scenario: %w", err)
			}
		}
	}
	if !construct {
		// Validate path: constructing the stack is also how the remaining
		// names (routing, preemption) resolve against their registries,
		// so build it and let it be collected
		if s.Cluster != nil {
			_, err = NewClusterServer(clusterConfig(s, ec))
		} else {
			_, err = NewServer(withCluster(ec, s.GPUs))
		}
		if err != nil {
			return nil, err
		}
		return st, nil
	}

	if s.Cluster != nil {
		if st.Cluster, err = NewClusterServer(clusterConfig(s, ec)); err != nil {
			return nil, err
		}
	} else {
		if st.Server, err = NewServer(withCluster(ec, s.GPUs)); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// withCluster attaches the GPU cluster (engines cannot share one).
func withCluster(ec ServerConfig, gpus int) ServerConfig {
	ec.Cluster = NewCluster(L40(), gpus)
	return ec
}

// clusterConfig translates spec + engine config into a cluster Config.
func clusterConfig(s Scenario, ec ServerConfig) ClusterServerConfig {
	c := s.Cluster
	return ClusterServerConfig{
		Instances:          c.Instances,
		Engine:             withCluster(ec, s.GPUs),
		Policy:             c.Routing,
		MaxQueueDepth:      c.MaxQueueDepth,
		BlockTokens:        c.BlockTokens,
		IndexCapacity:      c.IndexCapacity,
		AffinityQueueBound: c.AffinityQueueBound,
		TTFTSLOUs:          c.TTFTSLOSec * 1e6,
		TPOTSLOUs:          c.TPOTSLOSec * 1e6,
		Tracer:             s.Tracer,
		Seed:               s.Seed,
	}
}

// Requests samples the scenario's workload deterministically from its
// seed: the same spec always yields the same request stream, which is
// what makes a checked-in scenario file a reproducible experiment.
func (st *Stack) Requests() []Request {
	s := st.Scenario
	g := workload.NewRequestGen(st.Benchmark, s.MaxGenLen, s.Seed)
	w := s.Workload
	switch {
	case w.RatePerSec > 0 && w.Prefix != nil:
		return g.PoissonShared(w.RatePerSec, w.Seconds, *w.Prefix)
	case w.RatePerSec > 0:
		return g.Poisson(w.RatePerSec, w.Seconds)
	case w.Prefix != nil:
		reqs := make([]Request, w.Requests)
		for i := range reqs {
			reqs[i] = g.NextShared(0, *w.Prefix)
		}
		return reqs
	case w.CoT:
		return g.CoTBatch(w.Requests)
	default:
		return g.Batch(w.Requests)
	}
}
