package diffkv

// Scenario is the declarative, JSON-serializable description of one
// serving setup: model, compression method, precision tiers, workload,
// device count, and optionally a multi-instance cluster with routing,
// preemption and host-memory offload. Build translates it into a ready
// Server or ClusterServer stack; the CLIs are thin flag-to-Scenario
// translations, and a spec checked into a file reproduces a run exactly
// (sampling is seeded, so Requests is deterministic too).

import (
	"fmt"
	"os"
	"sort"

	"diffkv/internal/quant"
	"diffkv/internal/workload"
)

// WorkloadSpec selects the request stream of a scenario. Exactly one
// arrival shape applies: a non-empty Trace replays the hand-authored
// request list verbatim; RatePerSec > 0 samples open-loop Poisson
// arrivals over Seconds; otherwise Requests are sampled closed-loop at
// time zero (CoT biases their generations toward the limit, the paper's
// Fig. 17 setting). Prefix adds shared-prompt-prefix structure to the
// sampled shapes. Trace excludes every sampling field including Bench —
// a trace defines its own lengths and arrivals.
type WorkloadSpec struct {
	Bench      string         `json:"bench,omitempty"`
	Requests   int            `json:"requests,omitempty"`
	RatePerSec float64        `json:"rate_per_sec,omitempty"`
	Seconds    float64        `json:"seconds,omitempty"`
	CoT        bool           `json:"cot,omitempty"`
	Prefix     *PrefixConfig  `json:"prefix,omitempty"`
	Trace      []TraceRequest `json:"trace,omitempty"`
}

// TraceRequest is one hand-authored request of a trace workload: an
// explicit ID (unique across the trace — Build rejects duplicates),
// arrival time and token counts, replayed exactly as written.
type TraceRequest struct {
	ID           int     `json:"id"`
	ArrivalSec   float64 `json:"arrival_sec,omitempty"`
	PromptTokens int     `json:"prompt_tokens"`
	GenTokens    int     `json:"gen_tokens"`
	PrefixGroup  int     `json:"prefix_group,omitempty"`
	PrefixLen    int     `json:"prefix_len,omitempty"`
}

// PrecisionSpec names the storage tiers of a method that runs the real
// page manager (KxVy notation, e.g. "K8V4"; empty fields keep the
// paper's K8V4 / K4V2 defaults).
type PrecisionSpec struct {
	Hi string `json:"hi,omitempty"`
	Lo string `json:"lo,omitempty"`
}

// ClusterSpec turns a scenario into a multi-instance cluster: Instances
// serving engines behind the named routing policy (any name reported by
// RoutingPolicies, including runtime registrations).
type ClusterSpec struct {
	Instances          int     `json:"instances"`
	Routing            string  `json:"routing,omitempty"`
	MaxQueueDepth      int     `json:"max_queue_depth,omitempty"`
	BlockTokens        int     `json:"block_tokens,omitempty"`
	AffinityQueueBound int     `json:"affinity_queue_bound,omitempty"`
	IndexCapacity      int     `json:"index_capacity,omitempty"`
	TTFTSLOSec         float64 `json:"ttft_slo_sec,omitempty"`
	TPOTSLOSec         float64 `json:"tpot_slo_sec,omitempty"`
}

// DisaggSpec splits a cluster scenario into prefill/decode pools:
// instances 1..PrefillPool run prompt passes only, the next DecodePool
// instances adopt shipped prefills only, and any remainder serves
// mixed. Each request becomes a prefill sub-request and a decode
// sub-request joined by a compressed cross-instance KV transfer over
// the device NIC model. Requires a cluster section with at least
// PrefillPool+DecodePool instances; cannot be combined with faults.
// Unless the cluster names a routing policy, disaggregated scenarios
// default to disagg-aware routing.
type DisaggSpec struct {
	PrefillPool int `json:"prefill_pool"`
	DecodePool  int `json:"decode_pool"`
}

// FaultsSpec declares the scenario's deterministic fault-injection
// plan (cluster scenarios only): scheduled or rate-sampled instance
// crashes, transient slowdowns, a PCIe transfer error rate, and the
// re-dispatch retry policy. The scenario seed drives schedule
// expansion, backoff jitter and PCIe fault draws, so a checked-in
// chaos spec reproduces its failures exactly.
type FaultsSpec struct {
	// Crashes and Slowdowns schedule explicit fault events.
	Crashes   []CrashSpec    `json:"crashes,omitempty"`
	Slowdowns []SlowdownSpec `json:"slowdowns,omitempty"`
	// CrashRatePerMin > 0 adds seeded random crashes per instance with
	// exponential interarrivals, each down for an exponentially
	// distributed time of mean MeanDownSec (default 5), out to
	// HorizonSec (default 120).
	CrashRatePerMin float64 `json:"crash_rate_per_min,omitempty"`
	MeanDownSec     float64 `json:"mean_down_sec,omitempty"`
	HorizonSec      float64 `json:"horizon_sec,omitempty"`
	// PCIeErrorRate is the per-transfer probability that a host<->device
	// KV copy faults (swap-out falls back to recompute, swap-in retries).
	PCIeErrorRate float64 `json:"pcie_error_rate,omitempty"`
	// RetryBudget caps re-dispatches per request after crashes: 0
	// selects the default (3), negative disables retries entirely.
	RetryBudget int `json:"retry_budget,omitempty"`
	// RetryBaseMs is the base exponential re-dispatch backoff
	// (default 50).
	RetryBaseMs float64 `json:"retry_base_ms,omitempty"`
}

// CrashSpec schedules one instance crash: Instance is 1-based,
// DownSec <= 0 means the instance never restarts.
type CrashSpec struct {
	Instance int     `json:"instance"`
	AtSec    float64 `json:"at_sec"`
	DownSec  float64 `json:"down_sec,omitempty"`
}

// SlowdownSpec schedules one transient degraded window: the instance
// keeps serving with step time multiplied by Factor (> 1) and the
// router down-weights it.
type SlowdownSpec struct {
	Instance int     `json:"instance"`
	AtSec    float64 `json:"at_sec"`
	DurSec   float64 `json:"dur_sec"`
	Factor   float64 `json:"factor"`
}

// faultPlan translates the spec into the internal fault plan, seeded
// from the scenario seed.
func faultPlan(s Scenario) *FaultPlan {
	f := s.Faults
	p := &FaultPlan{
		Seed:            s.Seed,
		CrashRatePerMin: f.CrashRatePerMin,
		MeanDownSec:     f.MeanDownSec,
		HorizonSec:      f.HorizonSec,
		PCIeErrorRate:   f.PCIeErrorRate,
		RetryBudget:     f.RetryBudget,
		RetryBaseMs:     f.RetryBaseMs,
	}
	for _, c := range f.Crashes {
		p.Crashes = append(p.Crashes, FaultCrash{Inst: c.Instance, AtSec: c.AtSec, DownSec: c.DownSec})
	}
	for _, sl := range f.Slowdowns {
		p.Slowdowns = append(p.Slowdowns, FaultSlowdown{Inst: sl.Instance, AtSec: sl.AtSec, DurSec: sl.DurSec, Factor: sl.Factor})
	}
	return p
}

// GatewaySpec configures the network-facing HTTP gateway over a built
// stack: where to listen, how to pace the simulation against wall time,
// and per-request defaults. It parameterizes cmd/diffkv-gateway; the
// library Build path carries it through untouched.
type GatewaySpec struct {
	// Listen is the HTTP listen address (default "127.0.0.1:8080").
	Listen string `json:"listen,omitempty"`
	// TimeScale paces engine steps against simulated time: 1 is real
	// time, 0.1 is 10x faster than real time, 0 (default) runs flat out.
	TimeScale float64 `json:"time_scale,omitempty"`
	// DefaultMaxTokens bounds generations when a completion request
	// omits max_tokens (default 256).
	DefaultMaxTokens int `json:"default_max_tokens,omitempty"`
	// DrainTimeoutSec bounds graceful shutdown: how long Shutdown may
	// drain in-flight sessions before the loop is stopped hard
	// (default 30).
	DrainTimeoutSec float64 `json:"drain_timeout_sec,omitempty"`
}

// ObservabilitySpec turns on the trace pipeline for a scenario: the
// serving stack emits lifecycle events into a bounded collector, from
// which the gateway's /debug routes serve span trees and Perfetto
// downloads and the trace CLI computes phase-attributed latency.
type ObservabilitySpec struct {
	// TraceEvents caps the collector ring (default 65536; the oldest
	// events are dropped beyond it and counted in
	// diffkv_trace_dropped_total).
	TraceEvents int `json:"trace_events,omitempty"`
	// PerfettoPath, when set, makes diffkv-gateway write the retained
	// events as a Perfetto trace-event file there on shutdown.
	PerfettoPath string `json:"perfetto_path,omitempty"`
	// Debug mounts the gateway's /debug routes (per-request span trees,
	// trace download, live event tail) and, with it, net/http/pprof
	// under /debug/pprof/.
	Debug bool `json:"debug,omitempty"`
	// SampleIntervalMs is the telemetry sampling cadence in simulated
	// milliseconds (default 1000). Samples ride the driver's step loop
	// at sim time, so a seeded run's telemetry timeline is
	// deterministic.
	SampleIntervalMs float64 `json:"sample_interval_ms,omitempty"`
	// SeriesCapacity bounds each telemetry time-series ring
	// (default 512).
	SeriesCapacity int `json:"series_capacity,omitempty"`
	// SLOs declares the objectives the telemetry center evaluates with
	// multi-window burn rates (see SLOSpec); burn-rate transitions emit
	// alert trace events and drive the diffkv_slo_* gauges.
	SLOs []SLOSpec `json:"slos,omitempty"`
	// Saturation overrides the saturation analyzer's waterlines and
	// hysteresis holds.
	Saturation *SaturationConfig `json:"saturation,omitempty"`
}

// Telemetry reports whether the spec asks for the telemetry center (an
// SLO section, a saturation section, or an explicit cadence).
func (o *ObservabilitySpec) Telemetry() bool {
	return o != nil && (len(o.SLOs) > 0 || o.Saturation != nil || o.SampleIntervalMs > 0)
}

// TelemetryConfig translates the observability section into a telemetry
// center configuration. tr (usually the scenario's trace collector)
// receives the alert events; nil keeps alerts snapshot-only.
func (o *ObservabilitySpec) TelemetryConfig(tr Tracer) TelemetryConfig {
	cfg := TelemetryConfig{Tracer: tr}
	if o == nil {
		return cfg
	}
	cfg.SampleIntervalUs = o.SampleIntervalMs * 1e3
	cfg.SeriesCapacity = o.SeriesCapacity
	cfg.SLOs = o.SLOs
	if o.Saturation != nil {
		cfg.Saturation = *o.Saturation
	}
	return cfg
}

// Scenario is one complete serving configuration. Zero values select the
// documented defaults, so minimal specs stay minimal:
//
//	{"model": "Llama3-8B", "method": "DiffKV", "workload": {"bench": "MATH"}}
type Scenario struct {
	// Name labels the scenario in output (optional).
	Name string `json:"name,omitempty"`
	// Model is a model-zoo name (see Models / ModelByName).
	Model string `json:"model"`
	// Method is a registered serving method name (see Methods).
	Method string `json:"method"`
	// MemFrac is the measured resident memory fraction of DiffKV-style
	// methods (<= 0 selects the method's default; fixed-trait methods
	// ignore it).
	MemFrac float64 `json:"mem_frac,omitempty"`
	// Precision overrides the page-manager storage tiers (methods with a
	// compression pipeline only).
	Precision *PrecisionSpec `json:"precision,omitempty"`
	// Device names the GPU model ("L40", the default and currently only
	// calibrated device); GPUs is the tensor-parallel size per instance.
	Device string `json:"device,omitempty"`
	GPUs   int    `json:"gpus,omitempty"`
	// MaxGenLen truncates generations (default 4096).
	MaxGenLen int `json:"max_gen_len,omitempty"`
	// MemoryReserve holds back a fraction of post-weights memory
	// (default 0.1; raise it to oversubscribe KV and exercise preemption).
	MemoryReserve float64 `json:"memory_reserve,omitempty"`
	// PrefixCacheGroups enables per-instance prefix caching (0 disables).
	PrefixCacheGroups int `json:"prefix_cache_groups,omitempty"`
	// Preemption is a registered preemption recovery policy name
	// (default "recompute"; swap policies need HostMemoryGB > 0).
	Preemption string `json:"preemption,omitempty"`
	// HostMemoryGB sizes the host offload tier per instance (0 disables).
	HostMemoryGB float64 `json:"host_memory_gb,omitempty"`
	// Workload selects the request stream.
	Workload WorkloadSpec `json:"workload"`
	// BrownoutQueueDepth enables graceful degradation under queue
	// pressure: once an instance's admission queue is at least this deep,
	// new sequences are admitted at the deepest compression tier
	// (all-low) instead of waiting for headroom (0 disables).
	BrownoutQueueDepth int `json:"brownout_queue_depth,omitempty"`
	// Cluster, when present, builds a multi-instance cluster instead of a
	// single server.
	Cluster *ClusterSpec `json:"cluster,omitempty"`
	// Disaggregation, when present, splits the cluster into prefill and
	// decode pools joined by compressed cross-instance KV transfers
	// (requires Cluster; excludes Faults).
	Disaggregation *DisaggSpec `json:"disaggregation,omitempty"`
	// Faults, when present, injects the declared fault plan into the
	// cluster run (requires Cluster).
	Faults *FaultsSpec `json:"faults,omitempty"`
	// Gateway configures the HTTP serving front-end (diffkv-gateway):
	// listen address, time pacing and request defaults. Absent, the
	// gateway binary falls back to its flag defaults; the library Build
	// path ignores it.
	Gateway *GatewaySpec `json:"gateway,omitempty"`
	// Observability enables request-lifecycle tracing: diffkv-gateway
	// builds a collector sized by it, wires it as the Tracer, and serves
	// the /debug routes when Debug is set. The library Build path leaves
	// collector construction to the caller (set Tracer directly).
	Observability *ObservabilitySpec `json:"observability,omitempty"`
	Seed          uint64             `json:"seed,omitempty"`
	// Tracer, when non-nil, receives the built stack's engine (and
	// cluster) events. It is runtime-only state, not part of the spec.
	Tracer Tracer `json:"-"`
}

// Stack is a scenario translated into live objects: exactly one of
// Server (single instance) or Cluster (ClusterSpec present) is non-nil,
// ready for Run, Open-driven sessions, manual stepping, or an always-on
// Loop (StartLoop). Benchmark is nil for trace workloads, which carry
// their own request shapes.
type Stack struct {
	Scenario  Scenario
	Model     *Model
	Benchmark *Benchmark
	Method    Method
	Server    *Server
	Cluster   *ClusterServer
	// Telemetry is the telemetry center Build created when the
	// observability section asked for one (SLOs, saturation tuning, or an
	// explicit cadence). Cluster builds attach it at the cluster layer;
	// single-instance builds leave it for StartLoop to attach to the Loop
	// — exactly one layer ever samples into it.
	Telemetry *TelemetryCenter
}

// StartLoop starts the always-on driver over the stack's server or
// cluster: the returned Loop owns the step cadence in a background
// goroutine, accepts Open from any goroutine, and drains through
// Shutdown. The caller must eventually call Shutdown.
func (st *Stack) StartLoop(cfg LoopConfig) *Loop {
	if st.Cluster != nil {
		// a cluster build's telemetry center is already attached at the
		// cluster layer — attaching it to the Loop too would double-count
		return NewLoop(st.Cluster, cfg)
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = st.Telemetry
	}
	return NewLoop(st.Server, cfg)
}

// LoadScenario reads and parses a scenario JSON file. Unknown fields are
// an error, so typos in specs fail loudly instead of silently selecting
// defaults.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("diffkv: scenario: %w", err)
	}
	return ParseScenario(data)
}

// withDefaults returns a copy with zero values resolved to defaults.
func (s Scenario) withDefaults() Scenario {
	if s.Device == "" {
		s.Device = "L40"
	}
	if s.GPUs <= 0 {
		s.GPUs = 1
	}
	if s.MaxGenLen <= 0 {
		s.MaxGenLen = 4096
	}
	if s.Workload.RatePerSec > 0 && s.Workload.Seconds <= 0 {
		s.Workload.Seconds = 60
	}
	if s.Workload.RatePerSec <= 0 && s.Workload.Requests <= 0 && len(s.Workload.Trace) == 0 {
		s.Workload.Requests = 64
	}
	if c := s.Cluster; c != nil {
		// Instances stays as written: the cluster layer rejects < 1, and
		// silently defaulting would mask a broken spec
		cc := *c
		if cc.Routing == "" {
			cc.Routing = RouteRoundRobin
			if s.Disaggregation != nil {
				cc.Routing = RouteDisaggAware
			}
		}
		s.Cluster = &cc
	}
	return s
}

// Validate resolves every name in the spec against its registry and
// checks cross-field constraints, returning the first error.
func (s Scenario) Validate() error {
	_, err := s.build(false)
	return err
}

// Build translates the scenario into a ready stack: the model, benchmark
// and method are resolved from their registries, and a Server (or, with
// a ClusterSpec, a ClusterServer) is constructed. Each Build returns a
// fresh stack — servers serve one run.
func (s Scenario) Build() (*Stack, error) {
	return s.build(true)
}

func (s Scenario) build(construct bool) (*Stack, error) {
	s = s.withDefaults()
	st := &Stack{Scenario: s}

	var err error
	if st.Model, err = ModelByName(s.Model); err != nil {
		return nil, fmt.Errorf("diffkv: scenario: %w", err)
	}
	if st.Method, err = MethodByName(s.Method); err != nil {
		return nil, fmt.Errorf("diffkv: scenario: %w", err)
	}
	if len(s.Workload.Trace) > 0 {
		// a trace workload defines its own lengths and arrivals; nothing
		// may also select a sampler
		if err := validateTrace(s.Workload); err != nil {
			return nil, fmt.Errorf("diffkv: scenario: %w", err)
		}
	} else if st.Benchmark, err = BenchmarkByName(s.Workload.Bench); err != nil {
		return nil, fmt.Errorf("diffkv: scenario: %w", err)
	}
	if s.Device != "L40" {
		return nil, fmt.Errorf("diffkv: scenario: unknown device %q (calibrated devices: L40)", s.Device)
	}
	if s.Workload.CoT && (s.Workload.RatePerSec > 0 || s.Workload.Prefix != nil) {
		// Requests would pick the Poisson/prefix sampler and drop the CoT
		// bias without a trace — reject instead of silently mis-sampling
		return nil, fmt.Errorf("diffkv: scenario: workload cot only applies to plain closed-loop sampling (drop rate_per_sec/prefix)")
	}
	if s.Faults != nil && s.Cluster == nil {
		// fault injection lives in the cluster event loop (health, routing,
		// re-dispatch); a single server has no survivors to re-dispatch to
		return nil, fmt.Errorf("diffkv: scenario: faults require a cluster section")
	}
	if d := s.Disaggregation; d != nil {
		if s.Cluster == nil {
			// the prefill and decode pools are cluster instances; a single
			// server has nothing to ship KV between
			return nil, fmt.Errorf("diffkv: scenario: disaggregation requires a cluster section")
		}
		if s.Faults != nil {
			return nil, fmt.Errorf("diffkv: scenario: disaggregation cannot be combined with faults (transfer re-routing across crashed instances is not modeled)")
		}
	}
	if o := s.Observability; o != nil {
		for i, slo := range o.SLOs {
			if err := slo.Validate(); err != nil {
				return nil, fmt.Errorf("diffkv: scenario: observability.slos[%d]: %w", i, err)
			}
		}
	}

	ec := ServerConfig{
		Model:              st.Model,
		Traits:             st.Method.ServingTraits(s.MemFrac),
		MaxGenLen:          s.MaxGenLen,
		MemoryReserve:      s.MemoryReserve,
		PrefixCacheGroups:  s.PrefixCacheGroups,
		PreemptPolicy:      s.Preemption,
		HostMemoryBytes:    int64(s.HostMemoryGB * float64(1<<30)),
		BrownoutQueueDepth: s.BrownoutQueueDepth,
		Seed:               s.Seed,
	}
	if s.Cluster == nil {
		// single-instance: the tracer attaches to the engine directly;
		// cluster builds attach it at the cluster level instead, which
		// instance-tags every engine's events
		ec.Tracer = s.Tracer
	}
	if hook, ok := st.Method.(CompressionHook); ok {
		setup := hook.Compression()
		ec.UseManager = setup.UseManager
		ec.HiFrac, ec.LoFrac = setup.HiFrac, setup.LoFrac
	}
	if p := s.Precision; p != nil {
		if !ec.UseManager {
			return nil, fmt.Errorf("diffkv: scenario: precision requires a method with a compression pipeline (%s has none)", s.Method)
		}
		if p.Hi != "" {
			if ec.HiPrec, err = quant.ByName(p.Hi); err != nil {
				return nil, fmt.Errorf("diffkv: scenario: %w", err)
			}
		}
		if p.Lo != "" {
			if ec.LoPrec, err = quant.ByName(p.Lo); err != nil {
				return nil, fmt.Errorf("diffkv: scenario: %w", err)
			}
		}
	}
	if !construct {
		// Validate path: constructing the stack is also how the remaining
		// names (routing, preemption) resolve against their registries,
		// so build it and let it be collected
		if s.Cluster != nil {
			_, err = NewClusterServer(clusterConfig(s, ec))
		} else {
			_, err = NewServer(withCluster(ec, s.GPUs))
		}
		if err != nil {
			return nil, err
		}
		return st, nil
	}

	if o := s.Observability; o.Telemetry() {
		st.Telemetry = NewTelemetryCenter(o.TelemetryConfig(s.Tracer))
	}

	if s.Cluster != nil {
		cc := clusterConfig(s, ec)
		cc.Telemetry = st.Telemetry
		if st.Cluster, err = NewClusterServer(cc); err != nil {
			return nil, err
		}
	} else {
		if st.Server, err = NewServer(withCluster(ec, s.GPUs)); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// withCluster attaches the GPU cluster (engines cannot share one).
func withCluster(ec ServerConfig, gpus int) ServerConfig {
	ec.Cluster = NewCluster(L40(), gpus)
	return ec
}

// clusterConfig translates spec + engine config into a cluster Config.
func clusterConfig(s Scenario, ec ServerConfig) ClusterServerConfig {
	c := s.Cluster
	cc := ClusterServerConfig{
		Instances:          c.Instances,
		Engine:             withCluster(ec, s.GPUs),
		Policy:             c.Routing,
		MaxQueueDepth:      c.MaxQueueDepth,
		BlockTokens:        c.BlockTokens,
		IndexCapacity:      c.IndexCapacity,
		AffinityQueueBound: c.AffinityQueueBound,
		TTFTSLOUs:          c.TTFTSLOSec * 1e6,
		TPOTSLOUs:          c.TPOTSLOSec * 1e6,
		Tracer:             s.Tracer,
		Seed:               s.Seed,
	}
	if s.Faults != nil {
		cc.Faults = faultPlan(s)
	}
	if d := s.Disaggregation; d != nil {
		cc.Disagg = &DisaggPools{PrefillInstances: d.PrefillPool, DecodeInstances: d.DecodePool}
	}
	return cc
}

// validateTrace checks a hand-authored trace workload: no sampler
// fields alongside it, and every request well-formed with a unique
// positive ID — a duplicate would collide in the engine's session and
// page-manager tables, so Build rejects it outright.
func validateTrace(w WorkloadSpec) error {
	if w.Bench != "" || w.Requests > 0 || w.RatePerSec > 0 || w.Seconds > 0 || w.CoT || w.Prefix != nil {
		return fmt.Errorf("workload trace excludes bench/requests/rate_per_sec/seconds/cot/prefix (the trace is the workload)")
	}
	seen := make(map[int]int, len(w.Trace))
	for i, tr := range w.Trace {
		if tr.ID <= 0 {
			return fmt.Errorf("workload trace[%d]: id must be > 0 (got %d)", i, tr.ID)
		}
		if j, dup := seen[tr.ID]; dup {
			return fmt.Errorf("workload trace[%d]: duplicate request id %d (first used by trace[%d])", i, tr.ID, j)
		}
		seen[tr.ID] = i
		if tr.PromptTokens <= 0 || tr.GenTokens <= 0 {
			return fmt.Errorf("workload trace[%d] (id %d): prompt_tokens and gen_tokens must be > 0", i, tr.ID)
		}
		if tr.ArrivalSec < 0 {
			return fmt.Errorf("workload trace[%d] (id %d): arrival_sec must be >= 0", i, tr.ID)
		}
		if tr.PrefixLen > tr.PromptTokens {
			return fmt.Errorf("workload trace[%d] (id %d): prefix_len exceeds prompt_tokens", i, tr.ID)
		}
	}
	return nil
}

// Requests samples the scenario's workload deterministically from its
// seed: the same spec always yields the same request stream, which is
// what makes a checked-in scenario file a reproducible experiment.
// Trace workloads are replayed verbatim in arrival order.
func (st *Stack) Requests() []Request {
	s := st.Scenario
	w := s.Workload
	if len(w.Trace) > 0 {
		reqs := make([]Request, len(w.Trace))
		for i, tr := range w.Trace {
			reqs[i] = Request{
				ID:          tr.ID,
				ArrivalUs:   tr.ArrivalSec * 1e6,
				PromptLen:   tr.PromptTokens,
				GenLen:      tr.GenTokens,
				PrefixGroup: tr.PrefixGroup,
				PrefixLen:   tr.PrefixLen,
			}
		}
		sort.SliceStable(reqs, func(a, b int) bool { return reqs[a].ArrivalUs < reqs[b].ArrivalUs })
		return reqs
	}
	g := workload.NewRequestGen(st.Benchmark, s.MaxGenLen, s.Seed)
	switch {
	case w.RatePerSec > 0 && w.Prefix != nil:
		return g.PoissonShared(w.RatePerSec, w.Seconds, *w.Prefix)
	case w.RatePerSec > 0:
		return g.Poisson(w.RatePerSec, w.Seconds)
	case w.Prefix != nil:
		reqs := make([]Request, w.Requests)
		for i := range reqs {
			reqs[i] = g.NextShared(0, *w.Prefix)
		}
		return reqs
	case w.CoT:
		return g.CoTBatch(w.Requests)
	default:
		return g.Batch(w.Requests)
	}
}
