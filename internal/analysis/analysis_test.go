package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

func TestSeverityFor(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		check, path string
		want        Severity
	}{
		// globalrand is a module-wide default.
		{"globalrand", "diffkv/cmd/diffkv-bench", Error},
		{"globalrand", "diffkv/internal/core", Error},
		// wallclock only in sim-time packages.
		{"wallclock", "diffkv/internal/core", Error},
		{"wallclock", "diffkv/internal/serving", Error},
		{"wallclock", "diffkv/cmd/diffkv-bench", Off},
		{"wallclock", "diffkv/internal/report", Off},
		// maprange in deterministic packages; the bare module-root rule is
		// exact and must not swallow cmd/ or examples/.
		{"maprange", "diffkv", Error},
		{"maprange", "diffkv/internal/telemetry", Error},
		{"maprange", "diffkv/cmd/diffkv-trace", Off},
		{"maprange", "diffkv/examples/quickstart", Off},
		// Subpackages of a prefix rule inherit it.
		{"maprange", "diffkv/internal/experiments/sub", Error},
		// goroutine only on the step path.
		{"goroutine", "diffkv/internal/serving", Error},
		{"goroutine", "diffkv/internal/workload", Off},
		// timeunits: warn by default, error in deterministic packages.
		{"timeunits", "diffkv/cmd/diffkv-bench", Warn},
		{"timeunits", "diffkv/internal/core", Error},
		// allowaudit everywhere.
		{AllowAuditName, "diffkv/cmd/diffkv-vet", Error},
	}
	for _, c := range cases {
		if got := cfg.SeverityFor(c.check, c.path); got != c.want {
			t.Errorf("SeverityFor(%s, %s) = %s, want %s", c.check, c.path, got, c.want)
		}
	}
}

func TestParseSeverityRoundTrip(t *testing.T) {
	for _, s := range []Severity{Off, Warn, Error} {
		got, err := ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSeverity(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if _, err := ParseSeverity("loud"); err == nil {
		t.Error("ParseSeverity(loud) accepted an unknown severity")
	}
}

func TestDirectiveTargetLine(t *testing.T) {
	src := []byte(`package p

func f(m map[int]int) {
	//diffkv:allow maprange -- standalone: targets the next line
	for range m {
	}
	for range m { //diffkv:allow maprange -- trailing: targets its own line
	}
}
`)
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ds := parseDirectives(fset, file, src)
	if len(ds) != 2 {
		t.Fatalf("parsed %d directives, want 2", len(ds))
	}
	if ds[0].TargetLine != ds[0].Pos.Line+1 {
		t.Errorf("standalone directive targets line %d, want %d (its next line)", ds[0].TargetLine, ds[0].Pos.Line+1)
	}
	if ds[1].TargetLine != ds[1].Pos.Line {
		t.Errorf("trailing directive targets line %d, want %d (its own line)", ds[1].TargetLine, ds[1].Pos.Line)
	}
	for _, d := range ds {
		if d.parseErr != "" {
			t.Errorf("directive at line %d unexpectedly malformed: %s", d.Pos.Line, d.parseErr)
		}
		if d.Check != "maprange" || d.Reason == "" {
			t.Errorf("directive at line %d parsed as check=%q reason=%q", d.Pos.Line, d.Check, d.Reason)
		}
	}
}

func TestSuffixUnit(t *testing.T) {
	cases := []struct {
		name string
		want timeUnit
	}{
		{"nowUs", unitUs},
		{"deadlineUs", unitUs},
		{"wallMs", unitMs},
		{"retry5Ms", unitMs},
		{"timeoutSec", unitSec},
		{"TimeoutSecs", unitSec},
		{"UptimeSeconds", unitSec},
		{"Us", unitUs},
		// camelCase boundary: the char before the suffix must be a
		// lower-case letter or digit, and matching is case-sensitive.
		{"Status", unitNone}, // lowercase "us" is not the Us suffix
		{"RAMs", unitNone},   // 'A' before Ms breaks the camelCase boundary
		{"MBUs", unitNone},   // 'B' before Us breaks the camelCase boundary
		{"params", unitNone}, // lowercase "ms" is not the Ms suffix
		{"millis", unitNone},
	}
	for _, c := range cases {
		if got := suffixUnit(c.name); got != c.want {
			t.Errorf("suffixUnit(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestCheckNamesIncludeAllowAudit(t *testing.T) {
	names := CheckNames()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"wallclock", "globalrand", "maprange", "goroutine", "timeunits", AllowAuditName} {
		if !found[want] {
			t.Errorf("CheckNames() missing %q (got %v)", want, names)
		}
	}
	if a, ok := AnalyzerByName(AllowAuditName); a != nil || !ok {
		t.Errorf("AnalyzerByName(allowaudit) = %v, %v; want nil, true (runner-level pass)", a, ok)
	}
	if _, ok := AnalyzerByName("nosuchcheck"); ok {
		t.Error("AnalyzerByName accepted an unknown check")
	}
}
