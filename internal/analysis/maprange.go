package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `for ... range m` over a map in deterministic
// packages. Go randomizes map iteration order on purpose, so any loop
// whose effect depends on visit order (float accumulation, first-wins
// merges, appending rows to output) is a latent nondeterminism bug —
// the class that broke fig2's parallel run in PR 2. Two shapes are
// recognized as safe without a directive:
//
//   - key collection: every statement in the body appends to one slice,
//     and the enclosing function later sorts that slice (the canonical
//     sorted-keys pattern);
//   - map clearing: every statement is delete(m, k).
//
// Anything else needs sorted keys or a reasoned
// //diffkv:allow maprange directive (e.g. provably commutative integer
// counting).
var MapRange = register(&Analyzer{
	Name: "maprange",
	Doc:  "map iteration in deterministic packages without sorted keys",
	Run: func(pass *Pass) {
		mapNames := syntacticMapNames(pass.Pkg)
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapExpr(pass.Pkg, rs.X, mapNames) {
					return true
				}
				if collectsKeysForSort(pass, file, rs) || clearsMap(rs) {
					return true
				}
				pass.Reportf(rs.Pos(), "map iteration order is randomized; iterate sorted keys (or annotate: //diffkv:allow maprange -- <reason>)")
				return true
			})
		}
	},
})

// isMapExpr reports whether e has map type: exactly via go/types when
// available, else via a package-level symbol table of names declared
// with explicit map types plus the obvious literal forms.
func isMapExpr(pkg *Package, e ast.Expr, mapNames map[string]bool) bool {
	if pkg.TypesInfo != nil {
		if tv, ok := pkg.TypesInfo.Types[e]; ok && tv.Type != nil {
			_, isMap := tv.Type.Underlying().(*types.Map)
			return isMap
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		return mapNames[x.Name]
	case *ast.SelectorExpr:
		return mapNames[x.Sel.Name]
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) > 0 {
			_, isMap := x.Args[0].(*ast.MapType)
			return isMap
		}
		if fn, ok := x.Fun.(*ast.Ident); ok {
			return mapNames[fn.Name]
		}
		if fn, ok := x.Fun.(*ast.SelectorExpr); ok {
			return mapNames[fn.Sel.Name]
		}
	case *ast.CompositeLit:
		_, isMap := x.Type.(*ast.MapType)
		return isMap
	case *ast.ParenExpr:
		return isMapExpr(pkg, x.X, mapNames)
	}
	return false
}

// syntacticMapNames builds the fallback symbol table: every identifier
// the package declares with an explicit map type — struct fields, vars,
// parameters, results, and functions returning maps. Name collisions
// make this conservative-by-majority rather than exact; it only runs
// when go/types is unavailable.
func syntacticMapNames(pkg *Package) map[string]bool {
	if pkg.TypesInfo != nil {
		return nil
	}
	names := map[string]bool{}
	addField := func(f *ast.Field) {
		if isMapTypeExpr(f.Type) {
			for _, name := range f.Names {
				names[name.Name] = true
			}
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.StructType:
				for _, f := range x.Fields.List {
					addField(f)
				}
			case *ast.FuncType:
				if x.Params != nil {
					for _, f := range x.Params.List {
						addField(f)
					}
				}
				if x.Results != nil {
					for _, f := range x.Results.List {
						addField(f)
					}
				}
			case *ast.FuncDecl:
				// A niladic-result function whose single result is a map
				// marks the function name itself (covers `range f()`).
				if x.Type.Results != nil && len(x.Type.Results.List) == 1 &&
					isMapTypeExpr(x.Type.Results.List[0].Type) {
					names[x.Name.Name] = true
				}
			case *ast.ValueSpec:
				if isMapTypeExpr(x.Type) {
					for _, name := range x.Names {
						names[name.Name] = true
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					if i >= len(x.Lhs) {
						break
					}
					id, ok := x.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					switch r := rhs.(type) {
					case *ast.CallExpr:
						if fn, isIdent := r.Fun.(*ast.Ident); isIdent && fn.Name == "make" && len(r.Args) > 0 {
							if _, isMap := r.Args[0].(*ast.MapType); isMap {
								names[id.Name] = true
							}
						}
					case *ast.CompositeLit:
						if _, isMap := r.Type.(*ast.MapType); isMap {
							names[id.Name] = true
						}
					}
				}
			}
			return true
		})
	}
	return names
}

func isMapTypeExpr(t ast.Expr) bool {
	switch x := t.(type) {
	case *ast.MapType:
		return true
	case *ast.ParenExpr:
		return isMapTypeExpr(x.X)
	}
	return false
}

// collectsKeysForSort recognizes the sorted-keys idiom: the range body
// only collects into a single slice — plain appends, possibly wrapped
// in if/continue filtering — and the enclosing function later passes
// that slice to sort.* / slices.Sort*.
func collectsKeysForSort(pass *Pass, file *ast.File, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	var slice string
	if !collectStmts(rs.Body.List, &slice) || slice == "" {
		return false
	}
	return sortFollows(file, rs, slice)
}

// collectStmts reports whether stmts contains nothing but appends to a
// single slice (named in *slice), if-filters around such appends, and
// continue statements.
func collectStmts(stmts []ast.Stmt, slice *string) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				return false
			}
			if *slice == "" {
				*slice = lhs.Name
			} else if *slice != lhs.Name {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil {
				return false
			}
			if !collectStmts(s.Body.List, slice) {
				return false
			}
			if s.Else != nil {
				eb, ok := s.Else.(*ast.BlockStmt)
				if !ok || !collectStmts(eb.List, slice) {
					return false
				}
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortFollows reports whether, after the range statement, the enclosing
// function sorts `slice` (any sort.* or slices.* call taking it as an
// argument, or a method call on it whose name contains Sort).
func sortFollows(file *ast.File, rs *ast.RangeStmt, slice string) bool {
	var encl *ast.FuncDecl
	ast.Inspect(file, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil &&
			fd.Body.Pos() <= rs.Pos() && rs.End() <= fd.Body.End() {
			encl = fd
		}
		return true
	})
	var root ast.Node
	if encl != nil {
		root = encl.Body
	} else {
		root = file // range in a func literal at top level
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkgID, isIdent := sel.X.(*ast.Ident); isIdent && (pkgID.Name == "sort" || pkgID.Name == "slices") {
			for _, arg := range call.Args {
				if id, isID := arg.(*ast.Ident); isID && id.Name == slice {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// clearsMap recognizes `for k := range m { delete(m, k) }` (plus any
// extra delete statements) — order-independent by construction.
func clearsMap(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, stmt := range rs.Body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "delete" {
			return false
		}
	}
	return true
}
