package analysis

import (
	"go/ast"
)

// Goroutine flags `go` statements and channel sends on the event-loop
// step path. A Step must be a pure function of (state, nowUs): spawning
// goroutines or handing work to channels inside it makes completion
// order depend on the Go scheduler, which is exactly the
// nondeterminism the pinned TestLoopMatchesStepDriven /
// TestChaosDeterministicTimeline tests exist to forbid. The Loop's own
// driver goroutine and wake channel live in these packages by design
// and carry //diffkv:allow goroutine directives.
var Goroutine = register(&Analyzer{
	Name: "goroutine",
	Doc:  "`go` statements / channel sends inside the event-loop step path",
	Run: func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(s.Pos(), "goroutine launched in a step-path package; steps must be single-goroutine (or annotate: //diffkv:allow goroutine -- <reason>)")
				case *ast.SendStmt:
					pass.Reportf(s.Pos(), "channel send in a step-path package; steps must not hand work to other goroutines (or annotate: //diffkv:allow goroutine -- <reason>)")
				}
				return true
			})
		}
	},
})
