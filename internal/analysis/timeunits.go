package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// timeUnit is a recognized duration unit carried in an identifier
// suffix: nowUs, WallMs, HorizonSec, UptimeSeconds.
type timeUnit string

const (
	unitNone timeUnit = ""
	unitUs   timeUnit = "us"
	unitMs   timeUnit = "ms"
	unitSec  timeUnit = "s"
)

// TimeUnits flags arithmetic and comparisons that mix identifiers with
// different time-unit suffixes with no visible conversion. The sim
// clock convention (nowUs float64 microseconds, Ms for host wall time,
// Sec for operator-facing config) is honor-system: `deadlineUs <
// timeoutSec` compiles fine and silently corrupts the event queue. A
// conversion (e.g. *1e3 or /1e6) breaks the direct ident-to-ident mix,
// so correctly converted expressions are not flagged.
var TimeUnits = register(&Analyzer{
	Name: "timeunits",
	Doc:  "arithmetic/comparisons mixing Us/Ms/Sec-suffixed identifiers without conversion",
	Run: func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.BinaryExpr:
					switch x.Op {
					case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
						l, r := unitOf(x.X), unitOf(x.Y)
						if l != unitNone && r != unitNone && l != r {
							pass.Reportf(x.OpPos, "mixes %s and %s operands (%s %s %s) with no conversion",
								l.describe(), r.describe(), exprLabel(x.X), x.Op, exprLabel(x.Y))
						}
					}
				case *ast.AssignStmt:
					if len(x.Lhs) != len(x.Rhs) {
						return true
					}
					for i := range x.Lhs {
						l, r := unitOf(x.Lhs[i]), unitOf(x.Rhs[i])
						if l != unitNone && r != unitNone && l != r {
							pass.Reportf(x.TokPos, "assigns a %s value (%s) to a %s variable (%s) with no conversion",
								r.describe(), exprLabel(x.Rhs[i]), l.describe(), exprLabel(x.Lhs[i]))
						}
					}
				}
				return true
			})
		}
	},
})

func (u timeUnit) describe() string {
	switch u {
	case unitUs:
		return "microsecond (Us)"
	case unitMs:
		return "millisecond (Ms)"
	case unitSec:
		return "second (Sec)"
	}
	return string(u)
}

// unitOf infers the time unit an expression carries, unitNone when
// unknown. Multiplication/division and mixed sub-expressions return
// unitNone — they are how conversions are written, so they erase the
// unit rather than propagate a wrong one.
func unitOf(e ast.Expr) timeUnit {
	switch x := e.(type) {
	case *ast.Ident:
		return suffixUnit(x.Name)
	case *ast.SelectorExpr:
		return suffixUnit(x.Sel.Name)
	case *ast.CallExpr:
		switch fn := x.Fun.(type) {
		case *ast.Ident:
			return suffixUnit(fn.Name)
		case *ast.SelectorExpr:
			return suffixUnit(fn.Sel.Name)
		}
	case *ast.ParenExpr:
		return unitOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return unitOf(x.X)
		}
	case *ast.BinaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			l, r := unitOf(x.X), unitOf(x.Y)
			if l == r {
				return l
			}
		}
	case *ast.IndexExpr:
		return unitOf(x.X)
	}
	return unitNone
}

// suffixUnit maps an identifier's suffix to its unit. The character
// before the suffix must be a lower-case letter or digit (camelCase
// boundary), so Status does not read as a Us value and RAMs not as Ms.
func suffixUnit(name string) timeUnit {
	for _, s := range []struct {
		suffix string
		unit   timeUnit
	}{
		{"Seconds", unitSec}, {"Secs", unitSec}, {"Sec", unitSec},
		{"Us", unitUs}, {"Ms", unitMs},
	} {
		if !strings.HasSuffix(name, s.suffix) {
			continue
		}
		rest := name[:len(name)-len(s.suffix)]
		if rest == "" {
			return s.unit
		}
		c := rest[len(rest)-1]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			return s.unit
		}
	}
	return unitNone
}

// exprLabel renders a short name for an expression in diagnostics.
func exprLabel(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprLabel(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprLabel(x.Fun) + "()"
	case *ast.ParenExpr:
		return "(" + exprLabel(x.X) + ")"
	case *ast.UnaryExpr:
		return x.Op.String() + exprLabel(x.X)
	case *ast.BinaryExpr:
		return exprLabel(x.X) + x.Op.String() + exprLabel(x.Y)
	case *ast.IndexExpr:
		return exprLabel(x.X) + "[...]"
	}
	return "expr"
}
