package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a loaded source tree: every non-test package under a module
// root, parsed and (optionally) typechecked.
type Module struct {
	// Root is the directory containing go.mod.
	Root string
	// Path is the module path from go.mod ("diffkv").
	Path string
	// Fset positions every file in every package.
	Fset *token.FileSet
	// Packages are sorted by import path.
	Packages []*Package
}

// LoadOptions configures LoadModule.
type LoadOptions struct {
	// Types enables the go/types pass (source importer for stdlib
	// dependencies, the loaded packages themselves for module-internal
	// ones). When it fails for a package the package is still analyzed
	// syntactically — Package.TypeErr records why.
	Types bool
	// Dirs restricts loading to these directories (absolute or
	// root-relative). Empty means the whole module.
	Dirs []string
}

// LoadModule walks root (a directory inside a Go module), parses every
// non-test package outside testdata/hidden directories, attaches
// //diffkv:allow directives, and typechecks in dependency order when
// opts.Types is set.
func LoadModule(root string, opts LoadOptions) (*Module, error) {
	root, modPath, err := findModule(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}

	dirs := opts.Dirs
	if len(dirs) == 0 {
		if dirs, err = packageDirs(root); err != nil {
			return nil, err
		}
	} else {
		for i, d := range dirs {
			if !filepath.IsAbs(d) {
				dirs[i] = filepath.Join(root, d)
			}
		}
	}
	for _, dir := range dirs {
		pkg, err := m.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Packages = append(m.Packages, pkg)
		}
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].ImportPath < m.Packages[j].ImportPath })
	if opts.Types {
		m.typecheck()
	}
	return m, nil
}

// LoadDir parses a single directory as a standalone package with no
// typechecking — the mode fixture tests and explicit-path vet runs use,
// and the mode that keeps the syntactic fallback honest.
func LoadDir(dir string) (*Module, *Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	m := &Module{Root: abs, Path: "", Fset: token.NewFileSet()}
	pkg, err := m.parseDir(abs)
	if err != nil {
		return nil, nil, err
	}
	if pkg == nil {
		return nil, nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	pkg.TypeErr = fmt.Errorf("standalone directory load: syntactic analysis only")
	m.Packages = []*Package{pkg}
	return m, pkg, nil
}

// findModule locates go.mod at or above dir and returns (moduleRoot,
// modulePath).
func findModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("no go.mod found at or above %s", abs)
		}
	}
}

// packageDirs lists every directory under root holding at least one
// non-test .go file, skipping hidden dirs, testdata and vendor.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != root && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			name := e.Name()
			if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// parseDir parses dir's non-test files into a Package (nil when the
// directory holds none).
func (m *Module) parseDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, ImportPath: m.importPathFor(dir)}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		filename := filepath.Join(dir, name)
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(m.Fset, filename, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", filename, err)
		}
		pkg.Files = append(pkg.Files, file)
		pkg.Filenames = append(pkg.Filenames, filename)
		pkg.Name = file.Name.Name
		pkg.Directives = append(pkg.Directives, parseDirectives(m.Fset, file, src)...)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// importPathFor maps a directory to its import path under the module.
func (m *Module) importPathFor(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	if m.Path == "" {
		return filepath.ToSlash(rel)
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// typecheck runs go/types over the module in dependency order:
// module-internal imports resolve to the packages just checked, stdlib
// imports go through the source importer. Failures are per-package and
// non-fatal — the package keeps TypesInfo == nil and analyzers fall
// back to syntax.
func (m *Module) typecheck() {
	byPath := make(map[string]*Package, len(m.Packages))
	for _, p := range m.Packages {
		byPath[p.ImportPath] = p
	}
	// Topological order over module-internal imports (the go compiler
	// rejects cycles, so plain DFS is safe).
	var order []*Package
	state := make(map[string]int, len(m.Packages))
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				if q, ok := byPath[importPath(imp)]; ok {
					visit(q)
				}
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
	}
	for _, p := range m.Packages {
		visit(p)
	}

	srcImp := importer.ForCompiler(m.Fset, "source", nil)
	checked := make(map[string]*types.Package, len(order))
	imp := importerFunc(func(path string) (*types.Package, error) {
		if tp, ok := checked[path]; ok {
			return tp, nil
		}
		return srcImp.Import(path)
	})
	for _, p := range order {
		p.Types, p.TypesInfo, p.TypeErr = checkPackage(m.Fset, p, imp)
		if p.Types != nil {
			checked[p.ImportPath] = p.Types
		}
	}
}

// checkPackage typechecks one package, recovering from source-importer
// panics (it parses arbitrary stdlib source) into a TypeErr.
func checkPackage(fset *token.FileSet, p *Package, imp types.Importer) (tp *types.Package, info *types.Info, err error) {
	defer func() {
		if r := recover(); r != nil {
			tp, info, err = nil, nil, fmt.Errorf("typecheck panic: %v", r)
		}
	}()
	info = &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect-and-continue; first error returned by Check
	}
	tp, err = conf.Check(p.ImportPath, fset, p.Files, info)
	if err != nil {
		return tp, nil, err
	}
	return tp, info, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
