package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// AllowAuditName is the check name for directive hygiene: directives
// with missing reasons, unknown check names, or that suppress nothing.
// It cannot itself be suppressed.
const AllowAuditName = "allowaudit"

// directivePrefix introduces a suppression comment. The full grammar is
//
//	//diffkv:allow <check> -- <reason>
//
// The reason is mandatory: a suppression without a recorded why is a
// future reviewer's dead end, so allowaudit rejects it.
const directivePrefix = "//diffkv:allow"

// Directive is one parsed //diffkv:allow comment.
type Directive struct {
	// Check is the check name the directive suppresses.
	Check string
	// Reason is the text after "--".
	Reason string
	// Pos is the comment's position.
	Pos token.Position
	// TargetLine is the source line the directive applies to: its own
	// line for a trailing comment, the following line for a comment
	// standing alone on its line.
	TargetLine int
	// Used is set by the runner when the directive suppressed at least
	// one diagnostic; unused directives are allowaudit errors.
	Used bool
	// parseErr holds a malformed-directive message reported by allowaudit
	// ("" when well-formed).
	parseErr string
}

// parseDirectives extracts every //diffkv:allow directive from file.
// src is the file's source bytes (used to tell a trailing comment from a
// standalone one). Malformed directives are returned too, carrying
// parseErr, so the allowaudit pass can report them in place.
func parseDirectives(fset *token.FileSet, file *ast.File, src []byte) []*Directive {
	var out []*Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := text[len(directivePrefix):]
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //diffkv:allowance — not our directive
			}
			// Anything after an embedded "//" is trailing commentary (the
			// fixtures put // want expectations there), not directive text.
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			pos := fset.Position(c.Pos())
			d := &Directive{Pos: pos, TargetLine: pos.Line}
			check, reason, found := strings.Cut(rest, "--")
			d.Check = strings.TrimSpace(check)
			d.Reason = strings.TrimSpace(reason)
			switch {
			case d.Check == "":
				d.parseErr = "directive needs a check name: //diffkv:allow <check> -- <reason>"
			case !found || d.Reason == "":
				d.parseErr = fmt.Sprintf("directive needs a reason: //diffkv:allow %s -- <reason>", d.Check)
			case d.Check == AllowAuditName:
				d.parseErr = "allowaudit cannot be suppressed"
			default:
				if _, known := AnalyzerByName(d.Check); !known {
					d.parseErr = fmt.Sprintf("unknown check %q (valid: %s)", d.Check, strings.Join(CheckNames(), ", "))
				}
			}
			if standsAlone(fset, c.Pos(), src) {
				d.TargetLine = pos.Line + 1
			}
			out = append(out, d)
		}
	}
	return out
}

// standsAlone reports whether the comment at pos is the only thing on
// its source line (preceded by whitespace only) and therefore targets
// the line below; a comment trailing code targets its own line.
func standsAlone(fset *token.FileSet, pos token.Pos, src []byte) bool {
	tf := fset.File(pos)
	if tf == nil || src == nil {
		return false
	}
	off := tf.Offset(pos)
	start := tf.Offset(tf.LineStart(tf.Line(pos)))
	if off > len(src) {
		return false
	}
	for _, b := range src[start:off] {
		if b != ' ' && b != '\t' {
			return false
		}
	}
	return true
}

// matchDirective finds a live, well-formed directive in pkg covering
// (check, line in file) and returns it (nil when none matches).
func matchDirective(pkg *Package, check, filename string, line int) *Directive {
	for _, d := range pkg.Directives {
		if d.parseErr != "" || d.Check != check {
			continue
		}
		if d.Pos.Filename == filename && d.TargetLine == line {
			return d
		}
	}
	return nil
}
