// Package analysis is diffkv's project-specific static-analysis
// framework ("diffkv-vet"). The simulator's value rests on determinism —
// the same scenario + seed must reproduce bit-identical completions,
// alert timelines and fault schedules — and this package encodes those
// rules as mechanical checks instead of hoping a pinned test flakes at
// the right moment:
//
//	wallclock  — no wall-clock reads (time.Now/Sleep/Since/...) in
//	             sim-time packages; the Loop pacing path and host-timing
//	             benchmarks carry explicit allow directives.
//	globalrand — no top-level math/rand functions outside tests; all
//	             randomness flows through an explicitly seeded *rand.Rand.
//	maprange   — map iteration in deterministic packages must go through
//	             sorted keys (or collect keys for sorting, or carry a
//	             reasoned allow directive).
//	goroutine  — no `go` statements or channel sends inside the
//	             event-loop step path.
//	timeunits  — no arithmetic/comparisons directly mixing identifiers
//	             with different time-unit suffixes (Us/Ms/Sec).
//	allowaudit — every //diffkv:allow directive must carry a reason and
//	             suppress at least one live diagnostic, so suppressions
//	             self-clean as the code they excuse disappears.
//
// The framework is stdlib-only: go/ast + go/parser + go/token, with
// go/types via the source importer where available and a syntactic
// fallback otherwise (fixture packages and broken trees still get
// checked). Suppression is per line via
//
//	//diffkv:allow <check> -- <reason>
//
// either trailing the offending line or on its own line immediately
// above it; the reason is mandatory and stale directives are themselves
// diagnostics (see allowaudit).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Severity ranks a diagnostic: Off disables a check for a package,
// Warn reports without failing the build, Error fails diffkv-vet.
type Severity int

const (
	// Off disables the check entirely.
	Off Severity = iota
	// Warn reports the diagnostic but does not affect the exit code.
	Warn
	// Error reports the diagnostic and makes diffkv-vet exit non-zero.
	Error
)

// String returns "off", "warn" or "error".
func (s Severity) String() string {
	switch s {
	case Off:
		return "off"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// ParseSeverity maps "off"/"warn"/"error" back to a Severity.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "off":
		return Off, nil
	case "warn":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Off, fmt.Errorf("unknown severity %q (want off|warn|error)", s)
}

// Diagnostic is one finding: a check name, a position and a message.
// Severity is resolved from the per-package config at report time.
type Diagnostic struct {
	Check    string
	Severity Severity
	Pos      token.Position
	Message  string
	// Suppressed marks diagnostics matched by an allow directive; the
	// runner keeps them (they are what proves a directive is live) but
	// printers and exit codes skip them.
	Suppressed bool
	// SuppressedBy is the reason text of the matching directive.
	SuppressedBy string
}

// String formats the diagnostic the way compilers do:
// path:line:col: check: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named check over a single package.
type Analyzer struct {
	// Name is the check name used in config and allow directives.
	Name string
	// Doc is a one-line description for `diffkv-vet -list`.
	Doc string
	// Run inspects pass.Pkg and reports findings through pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Fset maps token.Pos to file positions for every file in the package.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package

	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a diagnostic for the current analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:   p.analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Package is a parsed (and, when the typechecker succeeded, typed)
// package plus everything analyzers need to resolve names syntactically
// when it did not.
type Package struct {
	// ImportPath is the slash-separated import path ("diffkv/internal/core").
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Name is the package clause name.
	Name string
	// Files are the parsed non-test source files, sorted by filename.
	Files []*ast.File
	// Filenames[i] is the path Files[i] was parsed from.
	Filenames []string
	// Types / TypesInfo are non-nil when the source-importer typecheck
	// succeeded; analyzers must tolerate nil and fall back to syntax.
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErr records why typechecking was skipped or failed (nil on
	// success); surfaced by diffkv-vet -v so fallback mode is visible.
	TypeErr error
	// Directives are the //diffkv:allow comments found in the package.
	Directives []*Directive
}

// ImportName returns the local name under which file imports path
// ("" when the file does not import it). A dot import returns ".".
func ImportName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p := importPath(imp)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		// Default name: last path element.
		name := p
		for i := len(p) - 1; i >= 0; i-- {
			if p[i] == '/' {
				name = p[i+1:]
				break
			}
		}
		return name
	}
	return ""
}

func importPath(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	return s
}

// registry of built-in analyzers, ordered for stable output.
var builtins []*Analyzer

func register(a *Analyzer) *Analyzer {
	builtins = append(builtins, a)
	sort.Slice(builtins, func(i, j int) bool { return builtins[i].Name < builtins[j].Name })
	return a
}

// Analyzers returns the built-in analyzers sorted by name. AllowAudit is
// not in the list: it is a runner-level pass over directives, not a
// per-package AST walk, but its name is still valid in config.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, len(builtins))
	copy(out, builtins)
	return out
}

// AnalyzerByName resolves a check name ("" analyzer for allowaudit,
// which has no AST pass). ok is false for unknown names.
func AnalyzerByName(name string) (a *Analyzer, ok bool) {
	if name == AllowAuditName {
		return nil, true
	}
	for _, b := range builtins {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

// CheckNames returns every valid check name (analyzers + allowaudit).
func CheckNames() []string {
	out := make([]string, 0, len(builtins)+1)
	for _, a := range builtins {
		out = append(out, a.Name)
	}
	out = append(out, AllowAuditName)
	sort.Strings(out)
	return out
}
