package analysis

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the time-package functions that read or wait on
// the host clock. Pure constructors/constants (time.Duration, the
// Millisecond constant, time.Unix on an explicit value) are fine: they
// do not couple the simulation to the machine it runs on.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock flags wall-clock reads in simulated-time packages. The
// simulator's clock is nowUs, advanced by the event loop; any time.Now
// (or friends) on a sim path makes completions depend on host speed and
// breaks bit-identical replay. Legitimate uses — the Loop's TimeScale
// pacing, uptime reporting at the network edge — carry
// //diffkv:allow wallclock directives naming their reason.
var Wallclock = register(&Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock reads (time.Now/Sleep/Since/...) in simulated-time packages",
	Run: func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			local := ImportName(file, "time")
			if local == "" || local == "_" {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !wallclockFuncs[sel.Sel.Name] {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != local {
					return true
				}
				if !isPackageRef(pass.Pkg, id) {
					return true
				}
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a simulated-time package (use the nowUs sim clock, or annotate: //diffkv:allow wallclock -- <reason>)", sel.Sel.Name)
				return true
			})
		}
	},
})

// isPackageRef reports whether id refers to an imported package. With
// types info it is exact; syntactically we accept any identifier that
// matches the import's local name (shadowing a package name with a
// variable is its own code smell).
func isPackageRef(pkg *Package, id *ast.Ident) bool {
	if pkg.TypesInfo == nil {
		return true
	}
	obj := pkg.TypesInfo.Uses[id]
	if obj == nil {
		return true // partial type info: fall back to syntax
	}
	_, isPkg := obj.(*types.PkgName)
	return isPkg
}
