// Package negative is a diffkv-vet fixture proving an allow directive
// suppresses exactly one diagnostic: two identical violations, one
// annotated. The fixture test asserts one live maprange diagnostic
// (the unannotated loop), one suppressed one, and zero allowaudit
// findings (the directive is used, well-formed and reasoned).
package negative

func annotated(m map[int]int) int {
	n := 0
	//diffkv:allow maprange -- fixture: integer count, order-independent
	for range m {
		n++
	}
	return n
}

func unannotated(m map[int]int) int {
	n := 0
	for range m { // want "map iteration order is randomized"
		n++
	}
	return n
}
