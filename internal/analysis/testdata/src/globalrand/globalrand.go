// Package globalrand is a diffkv-vet fixture: draws from math/rand's
// process-global generator versus an explicitly seeded *rand.Rand.
package globalrand

import "math/rand"

func bad() {
	_ = rand.Intn(10)      // want "rand.Intn draws from math/rand's global generator"
	_ = rand.Float64()     // want "rand.Float64 draws from math/rand's global generator"
	rand.Seed(42)          // want "rand.Seed draws from math/rand's global generator"
	rand.Shuffle(3, nil)   // want "rand.Shuffle draws from math/rand's global generator"
	_ = rand.Perm(4)       // want "rand.Perm draws from math/rand's global generator"
	_ = rand.NormFloat64() // want "rand.NormFloat64 draws from math/rand's global generator"
}

func good(seed int64) float64 {
	// The required pattern: an explicit generator threaded through.
	rng := rand.New(rand.NewSource(seed))
	_ = rng.Intn(10)
	var r *rand.Rand = rng // type references are fine
	return r.Float64()
}
