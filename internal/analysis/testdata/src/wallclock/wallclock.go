// Package wallclock is a diffkv-vet fixture: wall-clock reads in a
// simulated-time package.
package wallclock

import "time"

func bad() {
	_ = time.Now()                  // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)    // want "time.Sleep reads the wall clock"
	_ = time.Since(time.Time{})     // want "time.Since reads the wall clock"
	_ = time.Until(time.Time{})     // want "time.Until reads the wall clock"
	t := time.NewTimer(time.Second) // want "time.NewTimer reads the wall clock"
	defer t.Stop()
	<-time.After(time.Second) // want "time.After reads the wall clock"
}

func good() time.Duration {
	// Durations, constants and explicit instants are not clock reads.
	d := 5 * time.Millisecond
	_ = time.Unix(0, 0)
	_ = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	return d
}

func allowed() {
	_ = time.Now() //diffkv:allow wallclock -- fixture: pacing-path exemption
}
