// Package timeunits is a diffkv-vet fixture: arithmetic mixing
// Us/Ms/Sec-suffixed identifiers without conversion.
package timeunits

type cfg struct {
	TimeoutSec float64
	RetryMs    float64
}

func bad(nowUs, wallMs, horizonSec float64, c cfg) {
	_ = nowUs + wallMs        // want "mixes microsecond .Us. and millisecond .Ms. operands"
	_ = nowUs > horizonSec    // want "mixes microsecond .Us. and second .Sec. operands"
	_ = wallMs - c.TimeoutSec // want "mixes millisecond .Ms. and second .Sec. operands"
	var deadlineUs float64
	deadlineUs = c.RetryMs // want "assigns a millisecond .Ms. value"
	_ = deadlineUs
}

func good(nowUs, stepUs, wallMs, tSec float64) {
	_ = nowUs + stepUs       // same unit
	_ = nowUs > wallMs*1e3   // conversion erases the unit
	_ = tSec*1e6 + nowUs     // converted before mixing
	_ = (nowUs + stepUs) / 2 // same-unit subtree
	var status int           // "Status" must not read as a Us suffix
	var params []int         // "params" must not read as an Ms suffix
	_, _ = status, params
}
