// Package maprange is a diffkv-vet fixture: map iteration in a
// deterministic package.
package maprange

import "sort"

type table struct {
	rows map[int]float64
}

func bad(m map[string]int) int {
	total := 0
	for _, v := range m { // want "map iteration order is randomized"
		total += v
	}
	return total
}

func badField(t *table) float64 {
	var sum float64
	for _, v := range t.rows { // want "map iteration order is randomized"
		sum += v
	}
	return sum
}

func badCollectNoSort(m map[int]bool) []int {
	var keys []int
	for k := range m { // want "map iteration order is randomized"
		keys = append(keys, k)
	}
	return keys // never sorted: the slice order is nondeterministic
}

func goodSortedKeys(m map[string]int) int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

func goodFilteredCollect(m map[int]bool) []int {
	var keys []int
	for k := range m {
		if !m[k] {
			continue
		}
		if k > 0 {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

func goodClear(m map[int]bool) {
	for k := range m {
		delete(m, k)
	}
}

func goodSlice(s []int) int {
	total := 0
	for _, v := range s { // slices iterate in order: not flagged
		total += v
	}
	return total
}
