// Package goroutine is a diffkv-vet fixture: scheduler hand-offs inside
// the event-loop step path.
package goroutine

func bad(ch chan int) {
	go func() {}() // want "goroutine launched in a step-path package"
	ch <- 1        // want "channel send in a step-path package"
}

func good(ch chan int) int {
	// Receives and closes are fine: they consume completed work, they do
	// not fork the step.
	v := <-ch
	close(ch)
	return v
}

func allowed(done chan struct{}) {
	//diffkv:allow goroutine -- fixture: loop driver exemption
	go func() {}()
	select {
	case done <- struct{}{}: //diffkv:allow goroutine -- fixture: wake nudge exemption
	default:
	}
}
