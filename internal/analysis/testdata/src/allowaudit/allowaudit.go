// Package allowaudit is a diffkv-vet fixture: directive hygiene.
package allowaudit

func noReason(m map[int]int) {
	//diffkv:allow maprange // want "directive needs a reason"
	for range m { // want "map iteration order is randomized"
		_ = m
	}
}

func unknownCheck(m map[int]int) {
	//diffkv:allow nosuchcheck -- bogus // want "unknown check \"nosuchcheck\""
	for range m { // want "map iteration order is randomized"
		_ = m
	}
}

func unused() {
	//diffkv:allow wallclock -- nothing here reads the clock // want "suppresses nothing"
	_ = 1 + 1
}

func selfSuppress(m map[int]int) {
	//diffkv:allow allowaudit -- trying to silence the auditor // want "allowaudit cannot be suppressed"
	for range m { // want "map iteration order is randomized"
		_ = m
	}
}
