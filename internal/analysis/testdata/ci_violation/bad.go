// Package civiolation is the injected-violation fixture scripts/vet.sh
// runs diffkv-vet against to prove the CI gate actually fails: every
// line below violates a check, and none carries an allow directive.
// If `diffkv-vet internal/analysis/testdata/ci_violation` ever exits 0,
// the gate is broken and vet.sh fails the build.
package civiolation

import (
	"math/rand"
	"time"
)

func violations(m map[int]float64, ch chan int) {
	_ = time.Now()    // wallclock
	_ = rand.Intn(10) // globalrand
	var sum float64
	for _, v := range m { // maprange
		sum += v
	}
	go func() {}() // goroutine
	ch <- 1        // goroutine (send)
	var nowUs, wallMs float64
	_ = nowUs + wallMs // timeunits
	_ = sum
}
