package analysis

import (
	"go/ast"
)

// globalRandFuncs are the math/rand (and v2) package-level functions
// that draw from or mutate the process-global generator. Constructors
// (New, NewSource, NewZipf, NewPCG, NewChaCha8) and type references
// (*rand.Rand, rand.Source) are exactly the pattern this check forces,
// so they are not listed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 names
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

// GlobalRand flags draws from math/rand's global generator. The global
// source is process-wide mutable state: any draw perturbs every other
// draw's sequence, so two experiments sharing a process stop being
// reproducible in isolation. Every random stream in diffkv must come
// from an explicitly seeded *rand.Rand threaded through the call chain
// (see internal/mathx/rng.go).
var GlobalRand = register(&Analyzer{
	Name: "globalrand",
	Doc:  "top-level math/rand draws (global generator) instead of a seeded *rand.Rand",
	Run: func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				local := ImportName(file, path)
				if local == "" || local == "_" || local == "." {
					continue
				}
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || !globalRandFuncs[sel.Sel.Name] {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok || id.Name != local || !isPackageRef(pass.Pkg, id) {
						return true
					}
					pass.Reportf(sel.Pos(), "rand.%s draws from math/rand's global generator; seed an explicit *rand.Rand (rand.New(rand.NewSource(seed))) and thread it through", sel.Sel.Name)
					return true
				})
			}
		}
	},
})
