package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// parseWants extracts `// want "regex"` expectations from a fixture
// source file, keyed by 1-based line. The regex is everything between
// the quote after "want " and the last quote on the line, so it may
// contain escaped quotes.
func parseWants(t *testing.T, filename string) map[int][]string {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("read %s: %v", filename, err)
	}
	wants := make(map[int][]string)
	for i, line := range strings.Split(string(data), "\n") {
		idx := strings.Index(line, `want "`)
		if idx < 0 {
			continue
		}
		rest := line[idx+len(`want "`):]
		end := strings.LastIndex(rest, `"`)
		if end < 0 {
			t.Fatalf("%s:%d: malformed want comment (no closing quote)", filename, i+1)
		}
		wants[i+1] = append(wants[i+1], rest[:end])
	}
	return wants
}

// TestFixtures runs every analyzer over each fixture package under
// testdata/src and matches live (unsuppressed) diagnostics against the
// fixture's // want comments, both directions: an unexpected diagnostic
// fails, and so does a want with no diagnostic.
func TestFixtures(t *testing.T) {
	ents, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			dir := filepath.Join("testdata", "src", e.Name())
			m, pkg, err := LoadDir(dir)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			wants := make(map[string]map[int][]string, len(pkg.Filenames))
			for _, fn := range pkg.Filenames {
				wants[fn] = parseWants(t, fn)
			}
			res := Run(m, FixtureConfig())
			for _, d := range res.Diagnostics {
				if d.Suppressed {
					continue
				}
				lineWants := wants[d.Pos.Filename][d.Pos.Line]
				matched := -1
				for i, re := range lineWants {
					ok, err := regexp.MatchString(re, d.Message)
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", d.Pos.Filename, d.Pos.Line, re, err)
					}
					if ok {
						matched = i
						break
					}
				}
				if matched < 0 {
					t.Errorf("unexpected diagnostic: %s", d)
					continue
				}
				wants[d.Pos.Filename][d.Pos.Line] = append(lineWants[:matched], lineWants[matched+1:]...)
			}
			for fn, byLine := range wants {
				for line, res := range byLine {
					for _, re := range res {
						t.Errorf("%s:%d: expected diagnostic matching %q was not reported", fn, line, re)
					}
				}
			}
		})
	}
}

// TestNegativeFixtureSuppressesExactlyOne pins the directive contract:
// the negative fixture holds two identical maprange violations, one
// annotated. Exactly one diagnostic must survive, exactly one must be
// suppressed, and allowaudit must stay silent (the directive is used,
// well-formed and reasoned).
func TestNegativeFixtureSuppressesExactlyOne(t *testing.T) {
	m, _, err := LoadDir(filepath.Join("testdata", "src", "negative"))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, FixtureConfig())
	var live, suppressed, audit int
	for _, d := range res.Diagnostics {
		switch {
		case d.Check == AllowAuditName:
			audit++
		case d.Suppressed:
			suppressed++
			if d.SuppressedBy == "" {
				t.Errorf("suppressed diagnostic carries no reason: %s", d)
			}
		default:
			live++
		}
	}
	if live != 1 || suppressed != 1 || audit != 0 {
		t.Errorf("negative fixture: live=%d suppressed=%d allowaudit=%d, want 1/1/0", live, suppressed, audit)
	}
	if res.Suppressions != 1 {
		t.Errorf("Suppressions = %d, want 1", res.Suppressions)
	}
}

// TestCIViolationFixtureFails pins the scripts/vet.sh self-test: the
// injected-violation fixture must trip every AST check at Error
// severity, so a diffkv-vet run over it can never exit 0.
func TestCIViolationFixtureFails(t *testing.T) {
	m, _, err := LoadDir(filepath.Join("testdata", "ci_violation"))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, FixtureConfig())
	hit := make(map[string]bool)
	for _, d := range res.Errors() {
		hit[d.Check] = true
	}
	for _, check := range []string{"wallclock", "globalrand", "maprange", "goroutine", "timeunits"} {
		if !hit[check] {
			t.Errorf("ci_violation fixture does not trip %s", check)
		}
	}
	if len(res.Errors()) == 0 {
		t.Fatal("ci_violation fixture produced no errors; the vet.sh gate self-test would pass vacuously")
	}
}

// TestRunDeterminism: two runs over the same fixture tree must produce
// byte-identical diagnostic listings — the vet tool is subject to its
// own rules.
func TestRunDeterminism(t *testing.T) {
	render := func() string {
		m, _, err := LoadDir(filepath.Join("testdata", "ci_violation"))
		if err != nil {
			t.Fatal(err)
		}
		res := Run(m, FixtureConfig())
		var b strings.Builder
		for _, d := range res.Diagnostics {
			fmt.Fprintf(&b, "%s [%s]\n", d, d.Severity)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("two identical runs diverged:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
}
