package analysis

import (
	"sort"
)

// Result is one vet run's findings.
type Result struct {
	// Diagnostics holds every finding (including suppressed ones, which
	// carry Suppressed=true), sorted by file/line/column/check.
	Diagnostics []Diagnostic
	// Packages / Files count what was analyzed.
	Packages int
	Files    int
	// TypedPackages counts packages where the go/types pass succeeded
	// (the rest were analyzed syntactically).
	TypedPackages int
	// Suppressions counts live allow directives (each suppressed ≥ 1
	// diagnostic).
	Suppressions int
}

// Errors returns the unsuppressed Error-severity diagnostics.
func (r *Result) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if !d.Suppressed && d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Warnings returns the unsuppressed Warn-severity diagnostics.
func (r *Result) Warnings() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if !d.Suppressed && d.Severity == Warn {
			out = append(out, d)
		}
	}
	return out
}

// Run executes every configured analyzer over every package in m,
// applies //diffkv:allow suppressions, and appends the allowaudit pass
// (malformed directives, unknown checks, directives that suppressed
// nothing).
func Run(m *Module, cfg *Config) *Result {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	res := &Result{}
	for _, pkg := range m.Packages {
		res.Packages++
		res.Files += len(pkg.Files)
		if pkg.TypesInfo != nil {
			res.TypedPackages++
		}
		for _, a := range Analyzers() {
			sev := cfg.SeverityFor(a.Name, pkg.ImportPath)
			if sev == Off {
				continue
			}
			pass := &Pass{
				Fset:     m.Fset,
				Pkg:      pkg,
				analyzer: a,
				report: func(d Diagnostic) {
					d.Severity = sev
					if dir := matchDirective(pkg, d.Check, d.Pos.Filename, d.Pos.Line); dir != nil {
						dir.Used = true
						d.Suppressed = true
						d.SuppressedBy = dir.Reason
					}
					res.Diagnostics = append(res.Diagnostics, d)
				},
			}
			a.Run(pass)
		}
		// allowaudit: malformed directives always fire; well-formed but
		// unused ones fire unless the check is Off for this package (a
		// directive cannot be "live" for a check that never runs here —
		// but keeping an allow for a disabled check is still stale).
		auditSev := cfg.SeverityFor(AllowAuditName, pkg.ImportPath)
		if auditSev == Off {
			continue
		}
		for _, dir := range pkg.Directives {
			switch {
			case dir.parseErr != "":
				res.Diagnostics = append(res.Diagnostics, Diagnostic{
					Check:    AllowAuditName,
					Severity: auditSev,
					Pos:      dir.Pos,
					Message:  dir.parseErr,
				})
			case !dir.Used:
				msg := "allow directive for " + dir.Check + " suppresses nothing — remove it"
				if cfg.SeverityFor(dir.Check, pkg.ImportPath) == Off {
					msg = "allow directive for " + dir.Check + " is dead: the check is off for " + pkg.ImportPath
				}
				res.Diagnostics = append(res.Diagnostics, Diagnostic{
					Check:    AllowAuditName,
					Severity: auditSev,
					Pos:      dir.Pos,
					Message:  msg,
				})
			default:
				res.Suppressions++
			}
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return res
}
