package analysis

import (
	"sort"
	"strings"
)

// Config maps (import path, check) to a Severity. Rules are matched by
// longest path prefix, so a narrow rule for one package overrides a
// broad rule for its tree; checks absent from every matching rule fall
// back to Default, then Off.
type Config struct {
	// Default applies when no rule mentions the check.
	Default map[string]Severity
	// Rules are prefix-matched against the package import path. The
	// module root package matches the "" prefix rule only.
	Rules []Rule
}

// Rule assigns severities to checks for every package whose import path
// equals Prefix or (unless Exact) starts with Prefix + "/". Exact keeps
// the module-root rule from swallowing every package in the module.
type Rule struct {
	Prefix string
	Exact  bool
	Checks map[string]Severity
}

// SeverityFor resolves the severity of check for a package import path.
func (c *Config) SeverityFor(check, importPath string) Severity {
	best := -1
	sev, ok := Severity(0), false
	for _, r := range c.Rules {
		if r.Exact && importPath != r.Prefix {
			continue
		}
		if !r.Exact && !matchPrefix(importPath, r.Prefix) {
			continue
		}
		s, has := r.Checks[check]
		if has && len(r.Prefix) > best {
			best, sev, ok = len(r.Prefix), s, true
		}
	}
	if ok {
		return sev
	}
	if s, has := c.Default[check]; has {
		return s
	}
	return Off
}

// Checks returns every check name the config ever enables, sorted.
func (c *Config) Checks() []string {
	set := map[string]bool{}
	//diffkv:allow maprange -- set-union into a map, sorted before return
	for name, s := range c.Default {
		if s != Off {
			set[name] = true
		}
	}
	for _, r := range c.Rules {
		//diffkv:allow maprange -- set-union into a map, sorted before return
		for name, s := range r.Checks {
			if s != Off {
				set[name] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func matchPrefix(path, prefix string) bool {
	if prefix == "" {
		return true
	}
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// simPackages are the simulated-time packages: everything inside them
// runs on the nowUs clock, so wall-clock reads, unseeded randomness,
// unordered map iteration and step-path concurrency are determinism
// bugs, not style nits. serving is included even though its Loop pacing
// path legitimately touches the wall clock — those few sites carry
// //diffkv:allow directives so each exemption is visible in the code it
// excuses.
var simPackages = []string{
	"diffkv/internal/core",
	"diffkv/internal/serving",
	"diffkv/internal/cluster",
	"diffkv/internal/disagg",
	"diffkv/internal/faults",
	"diffkv/internal/offload",
	"diffkv/internal/telemetry",
}

// deterministicPackages extends simPackages with packages whose outputs
// are pinned bit-identical by tests (experiment tables, trace/span
// reconstruction, workload sampling, scenario building) — the set where
// map-iteration order already caused a real bug (fig2, PR 2).
var deterministicPackages = append([]string{
	"diffkv", // scenario build + request materialization (exact: not the whole module)
	"diffkv/internal/analysis",
	"diffkv/internal/experiments",
	"diffkv/internal/trace",
	"diffkv/internal/workload",
	"diffkv/internal/kvcache",
	"diffkv/internal/policy",
	"diffkv/internal/baselines",
	"diffkv/internal/quant",
	"diffkv/internal/attention",
	"diffkv/internal/gpusim",
	"diffkv/internal/mathx",
	"diffkv/internal/stats",
	"diffkv/internal/synth",
	"diffkv/internal/report",
	"diffkv/internal/registry",
	"diffkv/internal/faults",
	"diffkv/internal/offload",
	"diffkv/internal/telemetry",
}, simPackages...)

// stepPathPackages are the event-loop step path: code reached from
// Engine.Step / Cluster.Step, which must stay single-goroutine so a
// step is a pure function of (state, nowUs). serving carries the Loop
// goroutine machinery behind allow directives.
var stepPathPackages = []string{
	"diffkv/internal/core",
	"diffkv/internal/serving",
	"diffkv/internal/cluster",
	"diffkv/internal/disagg",
	"diffkv/internal/faults",
	"diffkv/internal/offload",
	"diffkv/internal/telemetry",
	"diffkv/internal/kvcache",
	"diffkv/internal/policy",
}

// DefaultConfig encodes the project's determinism contract:
//
//   - wallclock: error in sim-time packages; off in cmd/, examples/,
//     httpapi (network edge runs on real time by design).
//   - globalrand: error module-wide — even host-side tools must thread
//     an explicit *rand.Rand so reruns reproduce.
//   - maprange: error in deterministic packages.
//   - goroutine: error on the event-loop step path.
//   - timeunits: error in deterministic packages, warn elsewhere (unit
//     mixing in a CLI printf is ugly; in the scheduler it corrupts the
//     clock).
//   - allowaudit: error module-wide — a stale suppression is a lie.
func DefaultConfig() *Config {
	c := &Config{
		Default: map[string]Severity{
			"globalrand":   Error,
			"timeunits":    Warn,
			AllowAuditName: Error,
		},
	}
	for _, p := range simPackages {
		c.addRule(p, "wallclock", Error)
	}
	for _, p := range deterministicPackages {
		c.addRule(p, "maprange", Error)
		c.addRule(p, "timeunits", Error)
	}
	for _, p := range stepPathPackages {
		c.addRule(p, "goroutine", Error)
	}
	return c
}

// FixtureConfig enables every check at Error severity for any import
// path — the config fixture tests and standalone-directory runs use.
func FixtureConfig() *Config {
	all := map[string]Severity{AllowAuditName: Error}
	for _, a := range Analyzers() {
		all[a.Name] = Error
	}
	return &Config{Default: all}
}

func (c *Config) addRule(prefix, check string, s Severity) {
	// The bare module path is an exact rule: "diffkv" must not match
	// "diffkv/cmd/..." or "diffkv/examples/...".
	exact := !strings.Contains(prefix, "/")
	for i := range c.Rules {
		if c.Rules[i].Prefix == prefix {
			c.Rules[i].Checks[check] = s
			return
		}
	}
	c.Rules = append(c.Rules, Rule{Prefix: prefix, Exact: exact, Checks: map[string]Severity{check: s}})
}
