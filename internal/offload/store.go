// Package offload implements the host-memory KV tier layered under the
// paged kvcache.Manager: swap-instead-of-recompute preemption, spillover of
// evicted prefix-cache entries, and the accounting (swap bytes, thrashing,
// host prefix hits) the serving and cluster layers surface.
//
// The design follows the two related systems the ROADMAP names:
// inference-sim's TieredKVCache (a GPU+CPU two-tier store behind one store
// interface, with transfer-latency accounting and thrashing metrics) and
// llm-d's kv-cache-manager (a host-memory prefix tier consulted on
// admission). DiffKV's contribution composes with both: compressed tiers
// move fewer bytes, so its compression directly cuts the PCIe cost of
// every swap.
//
// Timing is never measured here — swap operations return byte counts that
// the gpusim cost model (Device.PCIeTransfer / TransferStall) converts to
// simulated time, mirroring the kvcache/gpusim split.
package offload

import "diffkv/internal/kvcache"

// KVStore is the store interface the serving engine schedules against: the
// GPU-only kvcache.Manager and the TieredStore are interchangeable behind
// it. The tiered store adds swap and prefix-spill operations on top.
type KVStore interface {
	// AddSequence registers a sequence with numHeads KV heads.
	AddSequence(id, numHeads int) (*kvcache.SeqCache, error)
	// ReleaseSequence recycles every page of a finished sequence.
	ReleaseSequence(id int) error
	// PromptCompact runs the prompt-phase compaction workflow.
	PromptCompact(seqID, promptLen int, demands []kvcache.HeadDemand) (kvcache.CompactStats, error)
	// GenCompact runs one generation-step compaction for a set of sequences.
	GenCompact(seqIDs []int, demands [][]kvcache.GenDemand) (kvcache.CompactStats, error)
	// FreePages / UsedPages report GPU page-pool occupancy.
	FreePages() int
	UsedPages() int
	// Config returns the underlying manager configuration.
	Config() kvcache.Config
}

var (
	_ KVStore = (*kvcache.Manager)(nil)
	_ KVStore = (*TieredStore)(nil)
)
