package offload

import (
	"testing"

	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/quant"
)

func countsManager(t *testing.T, numPages int) *kvcache.Manager {
	t.Helper()
	m, err := kvcache.NewManager(kvcache.Config{
		Dim: 128, PageBytes: 8192, NumPages: numPages, MaxSeqLen: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tiered(t *testing.T, mgr *kvcache.Manager, hostBytes int64) *TieredStore {
	t.Helper()
	ts, err := NewTieredStore(mgr, Config{HostBytes: hostBytes})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// registerSeq registers a counts-mode sequence holding the given per-head
// tier counts.
func registerSeq(t *testing.T, ts *TieredStore, id, heads, hi, lo int) {
	t.Helper()
	if _, err := ts.AddSequence(id, heads); err != nil {
		t.Fatal(err)
	}
	demands := make([]kvcache.HeadDemand, heads)
	for i := range demands {
		demands[i] = kvcache.HeadDemand{HiTokens: hi, LoTokens: lo}
	}
	if _, err := ts.PromptCompact(id, hi+lo, demands); err != nil {
		t.Fatal(err)
	}
}

// TestNoDoubleResidency asserts the core tiered-store invariant: a
// sequence is resident in exactly one tier at any time, and its GPU pages
// are fully released while host-resident.
func TestNoDoubleResidency(t *testing.T) {
	ts := tiered(t, countsManager(t, 256), 64<<20)
	registerSeq(t, ts, 1, 4, 100, 200)
	used := ts.UsedPages()
	if used == 0 {
		t.Fatal("sequence should hold GPU pages")
	}

	res, err := ts.SwapOut(1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes <= 0 {
		t.Fatal("swap-out must move bytes")
	}
	if ts.UsedPages() != 0 {
		t.Fatalf("GPU pages remain after swap-out: %d", ts.UsedPages())
	}
	if _, ok := ts.Manager.Sequence(1); ok {
		t.Fatal("sequence still registered on GPU while host-resident")
	}
	if !ts.Swapped(1) || ts.SwappedSeqs() != 1 {
		t.Fatal("sequence not recorded in host tier")
	}
	if ts.HostUsedBytes() != res.Bytes {
		t.Fatalf("host occupancy %d != swapped bytes %d", ts.HostUsedBytes(), res.Bytes)
	}
	// double swap-out must be rejected
	if _, err := ts.SwapOut(1, false, 0); err == nil {
		t.Fatal("double swap-out accepted")
	}

	in, err := ts.SwapIn(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.Bytes != res.Bytes {
		t.Fatalf("swap-in moved %d bytes, swap-out moved %d", in.Bytes, res.Bytes)
	}
	if ts.Swapped(1) || ts.HostUsedBytes() != 0 {
		t.Fatal("host copy must be dropped after swap-in")
	}
	if ts.UsedPages() != used {
		t.Fatalf("restored page count %d != original %d", ts.UsedPages(), used)
	}
	counts, err := ts.Manager.HeadCounts(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range counts {
		if d.HiTokens != 100 || d.LoTokens != 200 {
			t.Fatalf("head %d counts (%d,%d) after swap-in, want (100,200)", i, d.HiTokens, d.LoTokens)
		}
	}
}

// TestSwapInRestoresBitIdenticalPayload swaps a materialized sequence out
// and back in across every quant tier pair and asserts the restored pages
// carry bit-identical K/V bytes, metadata, scores and positions.
func TestSwapInRestoresBitIdenticalPayload(t *testing.T) {
	pairs := []struct{ hi, lo quant.Precision }{
		{quant.FP16, quant.FP16},
		{quant.K8V8, quant.K8V4},
		{quant.K8V4, quant.K4V2},
		{quant.K4V4, quant.K2V2},
	}
	type token struct {
		key, val []byte
		meta     [4]float32
		score    float32
		pos      int32
	}
	capture := func(hc *kvcache.HeadCache) []token {
		var out []token
		for _, lvl := range []kvcache.Level{kvcache.LevelHi, kvcache.LevelLo} {
			hc.ForEachToken(lvl, func(p *kvcache.Page, slot int) {
				kd, ks, kz := p.KeyData(slot)
				vd, vs, vz := p.ValData(slot)
				out = append(out, token{
					key: append([]byte(nil), kd...), val: append([]byte(nil), vd...),
					meta: [4]float32{ks, kz, vs, vz}, score: p.Score(slot), pos: p.Position(slot),
				})
			})
		}
		return out
	}
	for _, pair := range pairs {
		mgr, err := kvcache.NewManager(kvcache.Config{
			Dim: 64, PageBytes: 8192, NumPages: 128, MaxSeqLen: 4096,
			HiPrec: pair.hi, LoPrec: pair.lo, Materialize: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := tiered(t, mgr, 64<<20)
		sc, err := ts.AddSequence(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		rng := mathx.NewRNG(7)
		key := make([]float32, 64)
		val := make([]float32, 64)
		for h, hc := range sc.Heads {
			for i := 0; i < 150; i++ {
				rng.NormVec(key, 1)
				rng.NormVec(val, 1)
				lvl := kvcache.LevelHi
				if i%3 == 0 {
					lvl = kvcache.LevelLo
				}
				if err := hc.AppendToken(lvl, key, val, float32(rng.Float64()), int32(h*1000+i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		before := [][]token{capture(sc.Heads[0]), capture(sc.Heads[1])}

		if _, err := ts.SwapOut(1, false, 0); err != nil {
			t.Fatalf("%s/%s: %v", pair.hi, pair.lo, err)
		}
		if _, err := ts.SwapIn(1, 0); err != nil {
			t.Fatalf("%s/%s: %v", pair.hi, pair.lo, err)
		}
		restored, _ := ts.Manager.Sequence(1)
		for h := range before {
			after := capture(restored.Heads[h])
			if len(after) != len(before[h]) {
				t.Fatalf("%s/%s head %d: %d tokens restored, want %d",
					pair.hi, pair.lo, h, len(after), len(before[h]))
			}
			for i := range after {
				a, b := after[i], before[h][i]
				if string(a.key) != string(b.key) || string(a.val) != string(b.val) ||
					a.meta != b.meta || a.score != b.score || a.pos != b.pos {
					t.Fatalf("%s/%s head %d token %d: payload not bit-identical", pair.hi, pair.lo, h, i)
				}
			}
		}
	}
}

// TestThrashCounterMonotonic drives swap cycles inside and outside the
// thrash window: the counter must never decrease and must increment
// exactly on within-window swap-ins.
func TestThrashCounterMonotonic(t *testing.T) {
	mgr := countsManager(t, 256)
	ts, err := NewTieredStore(mgr, Config{HostBytes: 64 << 20, ThrashWindowUs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	registerSeq(t, ts, 1, 2, 50, 50)
	prev := 0
	now := 0.0
	for i := 0; i < 10; i++ {
		if _, err := ts.SwapOut(1, false, now); err != nil {
			t.Fatal(err)
		}
		inWindow := i%2 == 0
		if inWindow {
			now += 500
		} else {
			now += 5000
		}
		if _, err := ts.SwapIn(1, now); err != nil {
			t.Fatal(err)
		}
		cur := ts.Metrics().ThrashEvents
		if cur < prev {
			t.Fatalf("thrash counter decreased: %d -> %d", prev, cur)
		}
		if inWindow && cur != prev+1 {
			t.Fatalf("in-window swap-in did not count as thrash: %d -> %d", prev, cur)
		}
		if !inWindow && cur != prev {
			t.Fatalf("out-of-window swap-in counted as thrash: %d -> %d", prev, cur)
		}
		prev = cur
	}
	m := ts.Metrics()
	if m.SwapIns != 10 || m.SwapOuts != 10 {
		t.Fatalf("swap counters (%d,%d), want (10,10)", m.SwapOuts, m.SwapIns)
	}
	if got := m.ThrashRate(); got != 0.5 {
		t.Fatalf("thrash rate %v, want 0.5", got)
	}
}

// TestHostCapacityPrefixEviction asserts the host-tier priority order:
// swapped sequences are pinned, spilled prefixes are evictable cache, and
// a swap that cannot fit even after evicting every prefix fails with
// ErrHostFull, leaving the sequence untouched on the GPU.
func TestHostCapacityPrefixEviction(t *testing.T) {
	ts := tiered(t, countsManager(t, 1024), 1<<20) // 1 MiB host tier
	registerSeq(t, ts, 1, 8, 200, 200)             // ~525 KiB of compressed KV

	// two prefix entries fill most of the tier; group 10 is older
	ts.SpillPrefix(10, 256, 400<<10, 0)
	ts.SpillPrefix(11, 256, 400<<10, 100)
	if ts.Metrics().PrefixSpills != 2 {
		t.Fatalf("spills = %d", ts.Metrics().PrefixSpills)
	}

	// swapping seq 1 (~a few hundred KiB) must evict the LRU prefix first
	res, err := ts.SwapOut(1, false, 200)
	if err != nil {
		t.Fatal(err)
	}
	if ts.HostPrefixTokens(10) != 0 {
		t.Fatal("LRU prefix should have been evicted for swap traffic")
	}
	if ts.HostPrefixTokens(11) == 0 {
		t.Fatal("MRU prefix should have survived")
	}

	// a sequence larger than the whole tier can never swap
	if _, err := ts.SwapIn(1, 200); err != nil {
		t.Fatal(err)
	}
	_ = res
	registerSeq(t, ts, 2, 64, 200, 200) // ~several MiB > 1 MiB tier
	used := ts.UsedPages()
	if _, err := ts.SwapOut(2, false, 300); err != ErrHostFull {
		t.Fatalf("want ErrHostFull, got %v", err)
	}
	if ts.UsedPages() != used {
		t.Fatal("failed swap-out must leave GPU pages untouched")
	}

	// spills beyond capacity are dropped, not partially stored
	drops := ts.Metrics().PrefixDrops
	ts.SpillPrefix(12, 1024, 2<<20, 400)
	if ts.Metrics().PrefixDrops != drops+1 {
		t.Fatal("oversized spill must be dropped")
	}

	// TakePrefix removes the entry and counts a hit
	tok, bytes, ok := ts.TakePrefix(11, 500)
	if !ok || tok != 256 || bytes != 400<<10 {
		t.Fatalf("TakePrefix = (%d,%d,%v)", tok, bytes, ok)
	}
	if _, _, ok := ts.TakePrefix(11, 500); ok {
		t.Fatal("prefix served twice")
	}
	if ts.Metrics().PrefixHits != 1 || ts.Metrics().PrefixHitTokens != 256 {
		t.Fatalf("hit accounting: %+v", ts.Metrics())
	}
}

// TestCompressSwapMovesFewerBytes pins the acceptance fact: swapping a
// compressed (K4V2) sequence moves fewer bytes than its FP16 equivalent,
// and compress-swap shrinks the transfer further by collapsing the high
// tier.
func TestCompressSwapMovesFewerBytes(t *testing.T) {
	swapBytes := func(hi, lo quant.Precision, compress bool) int64 {
		mgr, err := kvcache.NewManager(kvcache.Config{
			Dim: 128, PageBytes: 8192, NumPages: 2048, MaxSeqLen: 8192,
			HiPrec: hi, LoPrec: lo,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := tiered(t, mgr, 1<<30)
		registerSeq(t, ts, 1, 8, 512, 512)
		res, err := ts.SwapOut(1, compress, 0)
		if err != nil {
			t.Fatal(err)
		}
		if compress && res.RecompressBytes <= 0 {
			t.Fatal("compress-swap must charge a recompression pass")
		}
		return res.Bytes
	}
	fp16 := swapBytes(quant.FP16, quant.FP16, false)
	k4v2 := swapBytes(quant.K8V4, quant.K4V2, false)
	deeper := swapBytes(quant.K8V4, quant.K4V2, true)
	if k4v2 >= fp16 {
		t.Fatalf("compressed swap %d bytes >= FP16 swap %d bytes", k4v2, fp16)
	}
	if deeper >= k4v2 {
		t.Fatalf("compress-swap %d bytes >= plain compressed swap %d bytes", deeper, k4v2)
	}
}

// TestCompressSwapRestoresAllLow asserts the counts conversion: after a
// compress-swap round trip every token is in the low tier.
func TestCompressSwapRestoresAllLow(t *testing.T) {
	ts := tiered(t, countsManager(t, 512), 64<<20)
	registerSeq(t, ts, 1, 4, 100, 200)
	if _, err := ts.SwapOut(1, true, 0); err != nil {
		t.Fatal(err)
	}
	if !ts.SwappedCompressed(1) {
		t.Fatal("compress-swap not recorded")
	}
	if _, err := ts.SwapIn(1, 0); err != nil {
		t.Fatal(err)
	}
	counts, err := ts.Manager.HeadCounts(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range counts {
		if d.HiTokens != 0 || d.LoTokens != 300 {
			t.Fatalf("head %d counts (%d,%d), want (0,300)", i, d.HiTokens, d.LoTokens)
		}
	}
}

// TestSwapInFailureKeepsHostCopy asserts fail-safety: a swap-in that finds
// no GPU pages leaves the sequence in the host tier and retries cleanly.
func TestSwapInFailureKeepsHostCopy(t *testing.T) {
	ts := tiered(t, countsManager(t, 64), 64<<20)
	registerSeq(t, ts, 1, 4, 100, 100)
	if _, err := ts.SwapOut(1, false, 0); err != nil {
		t.Fatal(err)
	}
	// occupy most of the pool so the swap-in cannot allocate
	registerSeq(t, ts, 2, 4, 550, 0)
	if _, err := ts.SwapIn(1, 0); err == nil {
		t.Fatal("swap-in should fail without free pages")
	}
	if !ts.Swapped(1) {
		t.Fatal("failed swap-in dropped the host copy")
	}
	if err := ts.ReleaseSequence(2); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.SwapIn(1, 0); err != nil {
		t.Fatalf("retry after release failed: %v", err)
	}
}

// TestSwapSteadyStateAllocs is the regression canary for the steady-state
// swap path (counts mode): one swap-out + swap-in cycle must stay within a
// fixed allocation budget. The dominant terms are the per-head page-table
// structures AddSequence rebuilds on swap-in; the tiered store itself
// recycles its host records and counts buffers.
func TestSwapSteadyStateAllocs(t *testing.T) {
	const heads = 8
	ts := tiered(t, countsManager(t, 512), 64<<20)
	registerSeq(t, ts, 1, heads, 100, 100)
	// warm the pools
	for i := 0; i < 3; i++ {
		if _, err := ts.SwapOut(1, false, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := ts.SwapIn(1, 0); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ts.SwapOut(1, false, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := ts.SwapIn(1, 0); err != nil {
			t.Fatal(err)
		}
	})
	// budget: ~4 allocations per head (HeadCache, BiTable, slot array,
	// drain list) plus fixed map/slice overhead — regressions that add
	// per-token or per-page allocations trip this immediately
	budget := float64(6*heads + 24)
	if allocs > budget {
		t.Fatalf("swap cycle allocates %.0f, budget %.0f", allocs, budget)
	}
}
