package offload

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"diffkv/internal/kvcache"
)

// Raw payload capture for materialized swaps. Unlike the kvcache snapshot
// format (which dequantizes and requantizes, round-tripping only to within
// float tolerance), a swap is a byte copy: the host buffer holds the exact
// packed codes and metadata, and restore writes them back verbatim via
// Page.AppendRaw — bit-identical across every quant tier.
//
// Layout per token, per head, high tier then low tier, in ForEachToken
// order: packed key bytes | packed value bytes | kScale kZero vScale vZero
// score (5×f32 LE) | position (i32 LE).

// captureRaw serializes a materialized sequence's live tokens byte-exactly.
func captureRaw(mgr *kvcache.Manager, seqID int) ([]byte, error) {
	sc, ok := mgr.Sequence(seqID)
	if !ok {
		return nil, fmt.Errorf("offload: unknown sequence %d", seqID)
	}
	var buf bytes.Buffer
	var f32 [4]byte
	putF32 := func(v float32) {
		binary.LittleEndian.PutUint32(f32[:], math.Float32bits(v))
		buf.Write(f32[:])
	}
	for _, hc := range sc.Heads {
		for _, lvl := range []kvcache.Level{kvcache.LevelHi, kvcache.LevelLo} {
			hc.ForEachToken(lvl, func(p *kvcache.Page, slot int) {
				kd, ks, kz := p.KeyData(slot)
				vd, vs, vz := p.ValData(slot)
				buf.Write(kd)
				buf.Write(vd)
				putF32(ks)
				putF32(kz)
				putF32(vs)
				putF32(vz)
				putF32(p.Score(slot))
				binary.LittleEndian.PutUint32(f32[:], uint32(p.Position(slot)))
				buf.Write(f32[:])
			})
		}
	}
	return buf.Bytes(), nil
}

// restoreRaw rebuilds a sequence byte-exactly from its captured payload.
// On any failure (out of pages, truncated buffer) the partial restore is
// released so the host copy can be retried later.
func restoreRaw(mgr *kvcache.Manager, seqID int, counts []kvcache.HeadDemand, snap []byte) error {
	sc, err := mgr.AddSequence(seqID, len(counts))
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		_ = mgr.ReleaseSequence(seqID)
		return err
	}
	cfg := mgr.Config()
	off := 0
	readTok := func(hc *kvcache.HeadCache, lvl kvcache.Level, kb, vb int) error {
		need := kb + vb + 6*4
		if off+need > len(snap) {
			return fmt.Errorf("offload: truncated swap payload")
		}
		key := snap[off : off+kb]
		val := snap[off+kb : off+kb+vb]
		m := snap[off+kb+vb:]
		f := func(i int) float32 {
			return math.Float32frombits(binary.LittleEndian.Uint32(m[4*i:]))
		}
		pos := int32(binary.LittleEndian.Uint32(m[20:]))
		off += need
		return hc.AppendRawToken(lvl, key, val, f(0), f(1), f(2), f(3), f(4), pos)
	}
	for h, hc := range sc.Heads {
		d := counts[h]
		for i := 0; i < d.HiTokens; i++ {
			if err := readTok(hc, kvcache.LevelHi, cfg.HiPrec.KeyBytes(cfg.Dim), cfg.HiPrec.ValBytes(cfg.Dim)); err != nil {
				return cleanup(err)
			}
		}
		for i := 0; i < d.LoTokens; i++ {
			if err := readTok(hc, kvcache.LevelLo, cfg.LoPrec.KeyBytes(cfg.Dim), cfg.LoPrec.ValBytes(cfg.Dim)); err != nil {
				return cleanup(err)
			}
		}
	}
	if off != len(snap) {
		return cleanup(fmt.Errorf("offload: swap payload has %d trailing bytes", len(snap)-off))
	}
	return nil
}
