package offload

import "fmt"

// Recovery is the action a preemption policy applies to its victim.
type Recovery int

const (
	// RecoverRecompute discards the victim's KV and restarts it from
	// scratch later (vLLM-style recompute preemption).
	RecoverRecompute Recovery = iota
	// RecoverSwap moves the victim's pages to the host tier over PCIe and
	// resumes it from where it stopped.
	RecoverSwap
	// RecoverCompressSwap re-quantizes the victim entirely into the
	// low-precision tier first, then swaps the smaller payload.
	RecoverCompressSwap
)

// Recovery policy names accepted by PolicyFor.
const (
	PolicyRecompute    = "recompute"
	PolicySwap         = "swap"
	PolicyCompressSwap = "compress-swap"
)

// Policies lists the available preemption policy names.
func Policies() []string {
	return []string{PolicyRecompute, PolicySwap, PolicyCompressSwap}
}

// Victim describes one preemption candidate to a policy.
type Victim struct {
	SeqID     int
	ArrivalUs float64
	// Tokens is the candidate's resident KV tokens (prompt + generated).
	Tokens int
	// Generated counts output tokens produced so far — the work recompute
	// would throw away.
	Generated int
}

// RecoveryPolicy is the pluggable victim/recovery policy the serving
// engine consults when a step runs out of KV pages. PickVictim must be
// deterministic: equal inputs yield equal picks.
type RecoveryPolicy interface {
	Name() string
	// PickVictim returns the index (into cands) of the sequence to
	// preempt. cands is never empty.
	PickVictim(cands []Victim) int
	// Recovery returns the recovery action attempted for the victim; the
	// engine falls back to recompute when a swap cannot proceed (host
	// tier full or disabled).
	Recovery() Recovery
}

// youngestVictim picks the latest arrival (ties: highest SeqID) — the
// vLLM ordering: the request that joined last has the least sunk work and
// the best chance of re-admission soon.
func youngestVictim(cands []Victim) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		c, b := cands[i], cands[best]
		if c.ArrivalUs > b.ArrivalUs || (c.ArrivalUs == b.ArrivalUs && c.SeqID > b.SeqID) {
			best = i
		}
	}
	return best
}

type recomputePolicy struct{}

func (recomputePolicy) Name() string              { return PolicyRecompute }
func (recomputePolicy) PickVictim(c []Victim) int { return youngestVictim(c) }
func (recomputePolicy) Recovery() Recovery        { return RecoverRecompute }

type swapPolicy struct{}

func (swapPolicy) Name() string              { return PolicySwap }
func (swapPolicy) PickVictim(c []Victim) int { return youngestVictim(c) }
func (swapPolicy) Recovery() Recovery        { return RecoverSwap }

type compressSwapPolicy struct{}

func (compressSwapPolicy) Name() string              { return PolicyCompressSwap }
func (compressSwapPolicy) PickVictim(c []Victim) int { return youngestVictim(c) }
func (compressSwapPolicy) Recovery() Recovery        { return RecoverCompressSwap }

// PolicyFor returns the named recovery policy ("" selects recompute).
func PolicyFor(name string) (RecoveryPolicy, error) {
	switch name {
	case "", PolicyRecompute:
		return recomputePolicy{}, nil
	case PolicySwap:
		return swapPolicy{}, nil
	case PolicyCompressSwap:
		return compressSwapPolicy{}, nil
	default:
		return nil, fmt.Errorf("offload: unknown preemption policy %q (want one of %v)", name, Policies())
	}
}
