package offload

import (
	"fmt"

	"diffkv/internal/registry"
)

// Recovery is the action a preemption policy applies to its victim.
type Recovery int

const (
	// RecoverRecompute discards the victim's KV and restarts it from
	// scratch later (vLLM-style recompute preemption).
	RecoverRecompute Recovery = iota
	// RecoverSwap moves the victim's pages to the host tier over PCIe and
	// resumes it from where it stopped.
	RecoverSwap
	// RecoverCompressSwap re-quantizes the victim entirely into the
	// low-precision tier first, then swaps the smaller payload.
	RecoverCompressSwap
)

// Recovery policy names accepted by PolicyFor.
const (
	PolicyRecompute    = "recompute"
	PolicySwap         = "swap"
	PolicyCompressSwap = "compress-swap"
)

// PolicyFactory builds a fresh recovery policy instance for one serving
// engine. The registry holds factories, not instances, so a policy that
// keeps per-engine state never leaks it across the parallel experiment
// workers that build engines concurrently.
type PolicyFactory func() RecoveryPolicy

// recoveries is the preemption-recovery registry; registration order
// defines the order Policies reports (builtins first, then third-party).
var recoveries = registry.New[PolicyFactory]("offload", "preemption policy")

// RegisterPolicy adds a recovery policy factory under name. Names must
// be non-empty and unique.
func RegisterPolicy(name string, f PolicyFactory) error {
	if f == nil {
		return fmt.Errorf("offload: nil PolicyFactory for %q", name)
	}
	return recoveries.Register(name, f)
}

func mustRegisterPolicy(name string, f PolicyFactory) {
	if err := RegisterPolicy(name, f); err != nil {
		panic(err)
	}
}

// Policies lists registered preemption policy names in registration
// order — derived from the registry, never hard-coded.
func Policies() []string { return recoveries.Names() }

func init() {
	mustRegisterPolicy(PolicyRecompute, func() RecoveryPolicy { return recomputePolicy{} })
	mustRegisterPolicy(PolicySwap, func() RecoveryPolicy { return swapPolicy{} })
	mustRegisterPolicy(PolicyCompressSwap, func() RecoveryPolicy { return compressSwapPolicy{} })
}

// Victim describes one preemption candidate to a policy.
type Victim struct {
	SeqID     int
	ArrivalUs float64
	// Tokens is the candidate's resident KV tokens (prompt + generated).
	Tokens int
	// Generated counts output tokens produced so far — the work recompute
	// would throw away.
	Generated int
}

// RecoveryPolicy is the pluggable victim/recovery policy the serving
// engine consults when a step runs out of KV pages. PickVictim must be
// deterministic: equal inputs yield equal picks.
type RecoveryPolicy interface {
	Name() string
	// PickVictim returns the index (into cands) of the sequence to
	// preempt. cands is never empty.
	PickVictim(cands []Victim) int
	// Recovery returns the recovery action attempted for the victim; the
	// engine falls back to recompute when a swap cannot proceed (host
	// tier full or disabled).
	Recovery() Recovery
}

// youngestVictim picks the latest arrival (ties: highest SeqID) — the
// vLLM ordering: the request that joined last has the least sunk work and
// the best chance of re-admission soon.
func youngestVictim(cands []Victim) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		c, b := cands[i], cands[best]
		if c.ArrivalUs > b.ArrivalUs || (c.ArrivalUs == b.ArrivalUs && c.SeqID > b.SeqID) {
			best = i
		}
	}
	return best
}

type recomputePolicy struct{}

func (recomputePolicy) Name() string              { return PolicyRecompute }
func (recomputePolicy) PickVictim(c []Victim) int { return youngestVictim(c) }
func (recomputePolicy) Recovery() Recovery        { return RecoverRecompute }

type swapPolicy struct{}

func (swapPolicy) Name() string              { return PolicySwap }
func (swapPolicy) PickVictim(c []Victim) int { return youngestVictim(c) }
func (swapPolicy) Recovery() Recovery        { return RecoverSwap }

type compressSwapPolicy struct{}

func (compressSwapPolicy) Name() string              { return PolicyCompressSwap }
func (compressSwapPolicy) PickVictim(c []Victim) int { return youngestVictim(c) }
func (compressSwapPolicy) Recovery() Recovery        { return RecoverCompressSwap }

// PolicyFor returns a fresh instance of the named recovery policy via
// the registry ("" selects recompute).
func PolicyFor(name string) (RecoveryPolicy, error) {
	if name == "" {
		name = PolicyRecompute
	}
	f, err := recoveries.Lookup(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}
