package offload

import (
	"testing"

	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/quant"
)

// shipToken is one token's full physical payload for comparison.
type shipToken struct {
	key, val []byte
	meta     [4]float32
	score    float32
	pos      int32
}

func captureTokens(hc *kvcache.HeadCache) []shipToken {
	var out []shipToken
	for _, lvl := range []kvcache.Level{kvcache.LevelHi, kvcache.LevelLo} {
		hc.ForEachToken(lvl, func(p *kvcache.Page, slot int) {
			kd, ks, kz := p.KeyData(slot)
			vd, vs, vz := p.ValData(slot)
			out = append(out, shipToken{
				key: append([]byte(nil), kd...), val: append([]byte(nil), vd...),
				meta: [4]float32{ks, kz, vs, vz}, score: p.Score(slot), pos: p.Position(slot),
			})
		})
	}
	return out
}

// TestShipmentRestoresBitIdenticalKV pins the disaggregated handoff's
// correctness standard: a sequence captured on one (prefill) manager and
// restored into a different (decode) manager via the AppendRaw path
// carries bit-identical K/V bytes, quant metadata, scores and positions
// at every quant tier — the decode side resumes from exactly the pages
// the prefill side built, not a float-tolerant reconstruction.
func TestShipmentRestoresBitIdenticalKV(t *testing.T) {
	pairs := []struct{ hi, lo quant.Precision }{
		{quant.FP16, quant.FP16},
		{quant.K8V4, quant.K8V4},
		{quant.K8V4, quant.K4V2},
		{quant.K4V2, quant.K4V2},
	}
	for _, pair := range pairs {
		cfg := kvcache.Config{
			Dim: 64, PageBytes: 8192, NumPages: 128, MaxSeqLen: 4096,
			HiPrec: pair.hi, LoPrec: pair.lo, Materialize: true,
		}
		src, err := kvcache.NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := kvcache.NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := src.AddSequence(7, 2)
		if err != nil {
			t.Fatal(err)
		}
		rng := mathx.NewRNG(11)
		key := make([]float32, 64)
		val := make([]float32, 64)
		for h, hc := range sc.Heads {
			for i := 0; i < 150; i++ {
				rng.NormVec(key, 1)
				rng.NormVec(val, 1)
				lvl := kvcache.LevelHi
				if i%3 == 0 {
					lvl = kvcache.LevelLo
				}
				if err := hc.AppendToken(lvl, key, val, float32(rng.Float64()), int32(h*1000+i)); err != nil {
					t.Fatal(err)
				}
			}
		}

		payload, counts, err := CaptureShipment(src, 7)
		if err != nil {
			t.Fatalf("%s/%s: %v", pair.hi, pair.lo, err)
		}
		if len(payload) == 0 || len(counts) != 2 {
			t.Fatalf("%s/%s: empty shipment (payload %d bytes, %d heads)",
				pair.hi, pair.lo, len(payload), len(counts))
		}
		if err := RestoreShipment(dst, 7, counts, payload); err != nil {
			t.Fatalf("%s/%s: %v", pair.hi, pair.lo, err)
		}

		shipped, ok := dst.Sequence(7)
		if !ok {
			t.Fatalf("%s/%s: shipped sequence missing on decode side", pair.hi, pair.lo)
		}
		for h, hc := range sc.Heads {
			want := captureTokens(hc)
			got := captureTokens(shipped.Heads[h])
			if len(got) != len(want) {
				t.Fatalf("%s/%s head %d: %d tokens shipped, want %d",
					pair.hi, pair.lo, h, len(got), len(want))
			}
			for i := range got {
				a, b := got[i], want[i]
				if string(a.key) != string(b.key) || string(a.val) != string(b.val) ||
					a.meta != b.meta || a.score != b.score || a.pos != b.pos {
					t.Fatalf("%s/%s head %d token %d: shipped payload not bit-identical",
						pair.hi, pair.lo, h, i)
				}
			}
		}
		// occupancy transfers page-identically: byte accounting agrees
		srcBytes, err := src.SeqKVBytes(7)
		if err != nil {
			t.Fatal(err)
		}
		dstBytes, err := dst.SeqKVBytes(7)
		if err != nil {
			t.Fatal(err)
		}
		if srcBytes != dstBytes {
			t.Fatalf("%s/%s: decode-side KV bytes %d != prefill-side %d",
				pair.hi, pair.lo, dstBytes, srcBytes)
		}
	}
}

// TestShipmentPayloadCompression pins the economics the disagg
// experiment depends on: the same token population ships at most 1/3
// the FP16 payload when stored K4V2 (ISSUE acceptance: compressed
// cross-instance transfer is what makes disaggregation pay).
func TestShipmentPayloadCompression(t *testing.T) {
	sizeFor := func(hi, lo quant.Precision) int {
		mgr, err := kvcache.NewManager(kvcache.Config{
			Dim: 64, PageBytes: 8192, NumPages: 256, MaxSeqLen: 4096,
			HiPrec: hi, LoPrec: lo, Materialize: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		sc, err := mgr.AddSequence(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		rng := mathx.NewRNG(5)
		key := make([]float32, 64)
		val := make([]float32, 64)
		for _, hc := range sc.Heads {
			for i := 0; i < 256; i++ {
				rng.NormVec(key, 1)
				rng.NormVec(val, 1)
				if err := hc.AppendToken(kvcache.LevelHi, key, val, 1, int32(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		payload, _, err := CaptureShipment(mgr, 1)
		if err != nil {
			t.Fatal(err)
		}
		return len(payload)
	}
	fp16 := sizeFor(quant.FP16, quant.FP16)
	k4v2 := sizeFor(quant.K4V2, quant.K4V2)
	if 3*k4v2 > fp16 {
		t.Fatalf("K4V2 shipment %dB not <= 1/3 of FP16 %dB", k4v2, fp16)
	}
}
