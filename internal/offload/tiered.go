package offload

import (
	"errors"
	"fmt"
	"math"

	"diffkv/internal/kvcache"
)

// ErrHostFull is returned when a swap-out cannot fit the host tier even
// after evicting every spilled prefix; the caller falls back to recompute
// preemption.
var ErrHostFull = errors.New("offload: host tier full")

// Config parameterizes the tiered store.
type Config struct {
	// HostBytes is the host-memory tier capacity. Swapped sequences are
	// pinned (they must come back); spilled prefix entries are evictable
	// cache and yield to swap traffic.
	HostBytes int64
	// ThrashWindowUs classifies a swap-in occurring within this window of
	// the sequence's swap-out as thrashing — the swap-out was wasted PCIe
	// traffic. Default 1e6 (1 simulated second).
	ThrashWindowUs float64
}

func (c *Config) validate() error {
	if c.HostBytes <= 0 {
		return fmt.Errorf("offload: HostBytes must be positive")
	}
	if c.ThrashWindowUs <= 0 {
		c.ThrashWindowUs = 1e6
	}
	return nil
}

// SwapResult reports the work of one swap operation.
type SwapResult struct {
	// Bytes is the KV payload+metadata moved over PCIe.
	Bytes int64
	// RecompressBytes is the device memory touched by the
	// compress-deeper pass before a compress-swap (0 otherwise); the
	// compressor kernel converts it to time.
	RecompressBytes int64
}

// Metrics accumulates host-tier activity. All counters are monotonic.
type Metrics struct {
	SwapOuts     int
	SwapIns      int
	SwapOutBytes int64
	SwapInBytes  int64
	// ThrashEvents counts swap-ins within ThrashWindowUs of the matching
	// swap-out (monotonic; see ThrashRate).
	ThrashEvents int
	// PrefixSpills / PrefixHits / PrefixDrops count prefix-cache entries
	// spilled into the host tier, served back from it, and dropped for
	// lack of host capacity.
	PrefixSpills    int
	PrefixHits      int
	PrefixDrops     int
	PrefixHitTokens int64
	// HostBytesPeak is the high-water mark of host-tier occupancy.
	HostBytesPeak int64
}

// ThrashRate is the fraction of swap-ins that were thrashing (0 when no
// swap-ins occurred).
func (m Metrics) ThrashRate() float64 {
	if m.SwapIns == 0 {
		return 0
	}
	return float64(m.ThrashEvents) / float64(m.SwapIns)
}

// hostSeq is one swapped-out sequence resident in host memory.
type hostSeq struct {
	counts     []kvcache.HeadDemand
	bytes      int64
	swapOutUs  float64
	compressed bool
	snap       []byte // materialized payload snapshot (nil in counts mode)
}

// hostPrefix is one spilled prefix-cache entry.
type hostPrefix struct {
	tokens  int
	bytes   int64
	lastUse float64
}

// TieredStore layers a host-memory tier under a GPU kvcache.Manager. It
// satisfies KVStore by embedding the manager (GPU operations pass through
// untouched) and adds swap-out/swap-in of whole sequences plus spillover
// of evicted prefix-cache entries. A TieredStore is single-goroutine, like
// the serving engine that owns it.
//
// Invariant: a sequence is resident in exactly one tier. SwapOut releases
// every GPU page before the host copy becomes visible; SwapIn removes the
// host copy only after the GPU restore succeeds.
type TieredStore struct {
	*kvcache.Manager
	cfg      Config
	hostUsed int64
	seqs     map[int]*hostSeq
	prefixes map[int]*hostPrefix
	m        Metrics
	seqPool  []*hostSeq // recycled hostSeq records (steady-state swap path)
}

// NewTieredStore wraps mgr with a host tier of cfg.HostBytes.
func NewTieredStore(mgr *kvcache.Manager, cfg Config) (*TieredStore, error) {
	if mgr == nil {
		return nil, fmt.Errorf("offload: manager is required")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &TieredStore{
		Manager:  mgr,
		cfg:      cfg,
		seqs:     make(map[int]*hostSeq),
		prefixes: make(map[int]*hostPrefix),
	}, nil
}

// Metrics snapshots the accumulated host-tier counters.
func (t *TieredStore) Metrics() Metrics { return t.m }

// HostUsedBytes returns current host-tier occupancy.
func (t *TieredStore) HostUsedBytes() int64 { return t.hostUsed }

// HostFreeBytes returns remaining host-tier capacity.
func (t *TieredStore) HostFreeBytes() int64 { return t.cfg.HostBytes - t.hostUsed }

// Swapped reports whether seqID is resident in the host tier.
func (t *TieredStore) Swapped(seqID int) bool {
	_, ok := t.seqs[seqID]
	return ok
}

// SwappedSeqs returns the number of host-resident sequences.
func (t *TieredStore) SwappedSeqs() int { return len(t.seqs) }

// reserve makes room for need bytes by evicting spilled prefixes in LRU
// order (swapped sequences are pinned). Reports whether the reservation
// fits.
func (t *TieredStore) reserve(need int64) bool {
	if need > t.cfg.HostBytes {
		return false
	}
	for t.hostUsed+need > t.cfg.HostBytes {
		victim, victimT := -1, math.Inf(1)
		//diffkv:allow maprange -- min-scan with total-order tie-break (lastUse, then lowest group): same victim whatever the walk order
		for g, p := range t.prefixes {
			if p.lastUse < victimT || (p.lastUse == victimT && (victim == -1 || g < victim)) {
				victim, victimT = g, p.lastUse
			}
		}
		if victim < 0 {
			return false
		}
		t.hostUsed -= t.prefixes[victim].bytes
		delete(t.prefixes, victim)
	}
	return true
}

func (t *TieredStore) charge(bytes int64) {
	t.hostUsed += bytes
	if t.hostUsed > t.m.HostBytesPeak {
		t.m.HostBytesPeak = t.hostUsed
	}
}

// SwapOut moves a GPU-resident sequence to the host tier, freeing all its
// GPU pages. With compress set, the sequence is first re-quantized
// entirely into the low-precision tier (DiffKV's compress-deeper-then-swap
// recovery): fewer bytes cross PCIe, at the cost of one compressor pass
// whose touched bytes are reported in SwapResult.RecompressBytes.
// Counts-only managers support both paths; materialized managers support
// plain swap via snapshot serialization. On ErrHostFull the sequence stays
// on the GPU untouched.
func (t *TieredStore) SwapOut(seqID int, compress bool, nowUs float64) (SwapResult, error) {
	if t.Swapped(seqID) {
		return SwapResult{}, fmt.Errorf("offload: sequence %d already swapped out", seqID)
	}
	hs := t.getHostSeq()
	counts, err := t.Manager.HeadCounts(seqID, hs.counts)
	if err != nil {
		t.putHostSeq(hs)
		return SwapResult{}, err
	}
	hs.counts = counts

	cfg := t.Manager.Config()
	var res SwapResult
	if compress {
		if cfg.Materialize {
			t.putHostSeq(hs)
			return SwapResult{}, fmt.Errorf("offload: compress-swap requires a counts-only manager")
		}
		// re-quantize the high tier down: every token leaves at LoPrec
		loTok := int64(cfg.LoPrec.TokenBytes(cfg.Dim))
		hiTok := int64(cfg.HiPrec.TokenBytes(cfg.Dim))
		for i, d := range counts {
			res.Bytes += int64(d.HiTokens+d.LoTokens) * loTok
			res.RecompressBytes += int64(d.HiTokens) * (hiTok + loTok)
			hs.counts[i] = kvcache.HeadDemand{LoTokens: d.HiTokens + d.LoTokens}
		}
		hs.compressed = true
	} else {
		b, err := t.Manager.SeqKVBytes(seqID)
		if err != nil {
			t.putHostSeq(hs)
			return SwapResult{}, err
		}
		res.Bytes = b
	}
	if !t.reserve(res.Bytes) {
		t.putHostSeq(hs)
		return SwapResult{}, ErrHostFull
	}
	if cfg.Materialize {
		snap, err := captureRaw(t.Manager, seqID)
		if err != nil {
			t.putHostSeq(hs)
			return SwapResult{}, err
		}
		hs.snap = snap
	}
	if err := t.Manager.ReleaseSequence(seqID); err != nil {
		t.putHostSeq(hs)
		return SwapResult{}, err
	}
	hs.bytes = res.Bytes
	hs.swapOutUs = nowUs
	t.seqs[seqID] = hs
	t.charge(res.Bytes)
	t.m.SwapOuts++
	t.m.SwapOutBytes += res.Bytes
	return res, nil
}

// SwapIn restores a host-resident sequence onto the GPU: pages are
// re-allocated to the exact pre-swap shape (counts mode) or the payload
// snapshot is deserialized bit-identically (materialized mode). The host
// copy is dropped only after the restore succeeds, so a failed swap-in
// (out of GPU pages) leaves the sequence safely in the host tier.
func (t *TieredStore) SwapIn(seqID int, nowUs float64) (SwapResult, error) {
	hs, ok := t.seqs[seqID]
	if !ok {
		return SwapResult{}, fmt.Errorf("offload: sequence %d not in host tier", seqID)
	}
	if t.Manager.Config().Materialize {
		if err := restoreRaw(t.Manager, seqID, hs.counts, hs.snap); err != nil {
			return SwapResult{}, err
		}
	} else {
		if _, err := t.Manager.AdoptCounts(seqID, hs.counts); err != nil {
			return SwapResult{}, err
		}
	}
	delete(t.seqs, seqID)
	t.hostUsed -= hs.bytes
	t.m.SwapIns++
	t.m.SwapInBytes += hs.bytes
	if nowUs-hs.swapOutUs <= t.cfg.ThrashWindowUs {
		t.m.ThrashEvents++
	}
	res := SwapResult{Bytes: hs.bytes}
	t.putHostSeq(hs)
	return res, nil
}

// Drop discards a host-resident sequence without restoring it to the
// GPU — the cancellation path: a swapped-out request that will never
// resume must release its pinned host bytes immediately. Reports whether
// the sequence was host-resident.
func (t *TieredStore) Drop(seqID int) bool {
	hs, ok := t.seqs[seqID]
	if !ok {
		return false
	}
	delete(t.seqs, seqID)
	t.hostUsed -= hs.bytes
	t.putHostSeq(hs)
	return true
}

// SwappedCompressed reports whether the host-resident sequence was
// compress-swapped (its tier mix collapsed to low precision).
func (t *TieredStore) SwappedCompressed(seqID int) bool {
	hs, ok := t.seqs[seqID]
	return ok && hs.compressed
}

// SpillPrefix stores an evicted prefix-cache entry (group → tokens worth
// bytes of compressed KV) in the host tier instead of discarding it.
// Spills are cache, not pinned state: they evict LRU among themselves and
// are dropped outright when swap traffic has filled the tier.
func (t *TieredStore) SpillPrefix(group, tokens int, bytes int64, nowUs float64) {
	if group == 0 || tokens <= 0 || bytes <= 0 {
		return
	}
	if old, ok := t.prefixes[group]; ok {
		t.hostUsed -= old.bytes
		delete(t.prefixes, group)
	}
	if !t.reserve(bytes) {
		t.m.PrefixDrops++
		return
	}
	t.prefixes[group] = &hostPrefix{tokens: tokens, bytes: bytes, lastUse: nowUs}
	t.charge(bytes)
	t.m.PrefixSpills++
}

// TakePrefix removes and returns a host-resident prefix entry — the
// admission path promotes it back to the GPU prefix cache, paying the H2D
// transfer for the returned bytes.
func (t *TieredStore) TakePrefix(group int, nowUs float64) (tokens int, bytes int64, ok bool) {
	p, found := t.prefixes[group]
	if !found {
		return 0, 0, false
	}
	delete(t.prefixes, group)
	t.hostUsed -= p.bytes
	t.m.PrefixHits++
	t.m.PrefixHitTokens += int64(p.tokens)
	return p.tokens, p.bytes, true
}

// HostPrefixTokens reports the resident token count of a spilled group
// without removing it (0 when absent).
func (t *TieredStore) HostPrefixTokens(group int) int {
	if p, ok := t.prefixes[group]; ok {
		return p.tokens
	}
	return 0
}

// getHostSeq / putHostSeq recycle hostSeq records so the steady-state swap
// path reuses its counts buffers instead of reallocating per cycle.
func (t *TieredStore) getHostSeq() *hostSeq {
	if n := len(t.seqPool); n > 0 {
		hs := t.seqPool[n-1]
		t.seqPool = t.seqPool[:n-1]
		return hs
	}
	return &hostSeq{}
}

func (t *TieredStore) putHostSeq(hs *hostSeq) {
	hs.counts = hs.counts[:0]
	hs.bytes, hs.swapOutUs, hs.compressed, hs.snap = 0, 0, false, nil
	t.seqPool = append(t.seqPool, hs)
}
