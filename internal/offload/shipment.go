package offload

// Cross-instance KV shipment: the disaggregated prefill→decode handoff
// reuses the materialized swap payload format (raw.go) to move a
// sequence between two *different* managers — the prefill instance's
// pool and the decode instance's pool — instead of between one manager
// and the host tier. The payload is the same byte-exact capture the
// swap path uses, so a shipped sequence restores bit-identically at
// every quant tier; the pinned test in shipment_test.go holds the
// simulator's counts-mode handoff (serving.KVExport / AdoptCounts) to
// the standard this materialized path executes for real.

import (
	"fmt"

	"diffkv/internal/kvcache"
)

// CaptureShipment serializes a materialized sequence's live tokens
// byte-exactly for cross-instance shipment, returning the packed
// payload and the per-head tier counts the receiving manager adopts.
func CaptureShipment(mgr *kvcache.Manager, seqID int) ([]byte, []kvcache.HeadDemand, error) {
	counts, err := mgr.HeadCounts(seqID, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("offload: capture shipment %d: %w", seqID, err)
	}
	payload, err := captureRaw(mgr, seqID)
	if err != nil {
		return nil, nil, fmt.Errorf("offload: capture shipment %d: %w", seqID, err)
	}
	return payload, counts, nil
}

// RestoreShipment rebuilds a shipped sequence byte-exactly in the
// receiving manager via the AppendRaw path. The receiving manager must
// share the sending manager's geometry (dim, precisions); on any
// failure the partial restore is released so the shipment can be
// retried elsewhere.
func RestoreShipment(mgr *kvcache.Manager, seqID int, counts []kvcache.HeadDemand, payload []byte) error {
	if err := restoreRaw(mgr, seqID, counts, payload); err != nil {
		return fmt.Errorf("offload: restore shipment %d: %w", seqID, err)
	}
	return nil
}
