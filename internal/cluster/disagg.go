package cluster

// Prefill/decode disaggregation: the cluster half of the handoff
// protocol in serving/handoff.go. With Config.Disagg set the fleet is
// split into a prefill pool, a decode pool and an optional mixed
// remainder (internal/disagg assigns roles by instance index). Every
// dispatched request is split into a prefill sub-request (same ID,
// GenLen 1 — TTFT lands on the prefill instance) and a decode
// sub-request that resumes elsewhere once the finished prefill's
// compressed KV pages cross the NIC:
//
//	dispatch ── prefill pool ── completion intercepted (settle)
//	    └─ TakeExport ─ pickDecode ─ NICTransfer ─ transfer queue
//	        └─ due: SubmitPrefilled on the decode instance ─ final
//	           completion passes through to metrics/telemetry
//
// Transfer deliveries are cluster events interleaved with faults,
// re-dispatches, arrivals and steps in global timestamp order, so a
// disaggregated run is as deterministic as a colocated one. The
// intercepted prefill completion never reaches the accumulator: a
// request is dispatched once and completed once (by its decode child,
// which carries the composed phase breakdown), keeping Stuck() == 0.

import (
	"fmt"
	"math"

	"diffkv/internal/disagg"
	"diffkv/internal/serving"
	"diffkv/internal/trace"
	"diffkv/internal/workload"
)

// DisaggMetrics summarizes a disaggregated run's cross-instance KV
// traffic (nil in Metrics without disaggregation).
type DisaggMetrics struct {
	PrefillInstances int
	DecodeInstances  int
	// Transfers counts prefill→decode shipments; KVBytesShipped their
	// compressed payload bytes on the wire. Compression pays a second
	// time here: K4V2 pages ship several times cheaper than FP16.
	Transfers      int
	KVBytesShipped int64
	// XferSeconds is the total modeled wire time across shipments.
	XferSeconds float64
	// Links is the per-(from,to) instance-pair traffic breakdown.
	Links []disagg.LinkBytes
}

// shipment is one in-wire prefill→decode handoff: the decode
// sub-request (the parent resuming after its first token) plus the
// exported sequence state it adopts on arrival.
type shipment struct {
	req workload.Request
	exp *serving.KVExport
}

// disaggState is the cluster's coordinator state (nil without
// Config.Disagg).
type disaggState struct {
	cfg   disagg.Config
	roles []disagg.Role
	// await maps request ID → parent request while its prefill child is
	// in flight; inflight maps request ID → shipment while its KV is on
	// the wire.
	await    map[int]workload.Request
	inflight map[int]*shipment
	xq       disagg.Queue
	ledger   disagg.Ledger

	transfers int
	bytes     int64
	xferUs    float64
}

func newDisaggState(cfg disagg.Config, instances int) *disaggState {
	return &disaggState{
		cfg:      cfg,
		roles:    cfg.Roles(instances),
		await:    make(map[int]workload.Request),
		inflight: make(map[int]*shipment),
	}
}

// Role returns instance i's (0-based) disaggregation pool role;
// every instance of a non-disaggregated cluster is mixed.
func (c *Cluster) Role(i int) disagg.Role {
	if c.dg == nil {
		return disagg.RoleMixed
	}
	return c.dg.roles[i]
}

// decodePicker is implemented by routing policies that choose the
// decode-side instance for a shipped prefill themselves (disagg-aware);
// for other policies the coordinator falls back to least-loaded over
// the decode and mixed pools.
type decodePicker interface {
	PickDecode(req workload.Request, snaps []Snapshot) int
}

// pickDecode chooses the decode-side instance for a finished prefill:
// the policy's own choice when it implements decodePicker, otherwise
// least-loaded over the decode and mixed pools. Prefill-only instances
// never decode.
func (c *Cluster) pickDecode(r workload.Request) int {
	snaps := make([]Snapshot, 0, len(c.engines))
	for i, e := range c.engines {
		if c.dg.roles[i] == disagg.RolePrefill {
			continue
		}
		snaps = append(snaps, Snapshot{
			ID:             i,
			QueueDepth:     e.QueueDepth(),
			Running:        e.RunningCount(),
			ResidentTokens: e.ResidentTokens(),
			SwappedTokens:  e.SwappedTokens(),
			ClockUs:        float64(e.Clock()),
			Role:           c.dg.roles[i],
		})
	}
	if dp, ok := c.policy.(decodePicker); ok {
		return dp.PickDecode(r, snaps)
	}
	best := snaps[0]
	for _, s := range snaps[1:] {
		if less(s, best) {
			best = s
		}
	}
	return best.ID
}

// settle filters one step's completions through the coordinator:
// prefill children awaiting handoff are shipped (consumed here, never
// reaching the accumulator), final completions pass through.
func (c *Cluster) settle(inst int, comps []serving.Completion) ([]serving.Completion, error) {
	if c.dg == nil || len(comps) == 0 {
		return comps, nil
	}
	out := comps[:0]
	for _, cp := range comps {
		if _, ok := c.dg.await[cp.Req.ID]; ok {
			if err := c.shipPrefill(inst, cp); err != nil {
				return nil, err
			}
			continue
		}
		out = append(out, cp)
	}
	return out, nil
}

// shipPrefill turns an intercepted prefill-child completion into a
// scheduled KV transfer: collect the engine's export, stamp it with the
// child's lifecycle accounting (phase breakdown, honest TTFT, retry
// history), pick the decode instance, price the wire time on the
// receiver's NIC and enqueue delivery. The kv_ship trace event opens
// the decode side's span tree with an xfer:inst span.
func (c *Cluster) shipPrefill(from int, cp serving.Completion) error {
	parent := c.dg.await[cp.Req.ID]
	delete(c.dg.await, cp.Req.ID)
	exp, err := c.engines[from].TakeExport(cp.Req.ID)
	if err != nil {
		return fmt.Errorf("cluster: disagg ship request %d: %w", cp.Req.ID, err)
	}
	exp.FirstTokenUs = cp.FirstTokenUs
	exp.AsOfUs = cp.DoneUs
	exp.Phases = cp.Phases
	exp.Preempts = cp.Preemptions
	exp.RetryUs = cp.RetryUs
	exp.Attempts = cp.Attempts
	to := c.pickDecode(parent)
	xfer := float64(c.engines[to].Device().NICTransfer(float64(exp.Bytes)))
	exp.XferUs = xfer
	c.dg.xq.Push(disagg.Transfer{
		SeqID: cp.Req.ID, From: from, To: to,
		Bytes: exp.Bytes, DueUs: cp.DoneUs + xfer,
	})
	c.dg.inflight[cp.Req.ID] = &shipment{req: parent, exp: exp}
	c.dg.ledger.Record(from, to, exp.Bytes)
	c.dg.transfers++
	c.dg.bytes += exp.Bytes
	c.dg.xferUs += xfer
	c.emit(trace.Event{
		Kind: trace.KindKVShip, TimeUs: cp.DoneUs, Seq: cp.Req.ID, Inst: to + 1,
		Bytes: exp.Bytes, DurUs: xfer,
		Note: fmt.Sprintf("from=%d link=%s>%s", from+1, c.dg.roles[from], c.dg.roles[to]),
	})
	return nil
}

// transferDue returns the earliest KV-transfer delivery time (Inf
// without disaggregation or with an empty wire).
func (c *Cluster) transferDue() float64 {
	if c.dg == nil {
		return math.Inf(1)
	}
	if t, ok := c.dg.xq.NextDue(); ok {
		return t
	}
	return math.Inf(1)
}

// processTransfer delivers the earliest due shipment: the decode
// instance queues the decode sub-request for adoption at the delivery
// time, resuming the parent's phase accounting across the wire.
func (c *Cluster) processTransfer() error {
	t, ok := c.dg.xq.Pop()
	if !ok {
		return fmt.Errorf("cluster: processTransfer on empty wire")
	}
	sh := c.dg.inflight[t.SeqID]
	if sh == nil {
		return fmt.Errorf("cluster: transfer %d has no shipment", t.SeqID)
	}
	delete(c.dg.inflight, t.SeqID)
	if err := c.engines[t.To].SubmitPrefilled(sh.req, sh.exp, t.DueUs); err != nil {
		return fmt.Errorf("cluster: adopt request %d on instance %d: %w", t.SeqID, t.To+1, err)
	}
	return nil
}
