package cluster

import (
	"testing"

	"diffkv/internal/baselines"
	"diffkv/internal/gpusim"
	"diffkv/internal/synth"
	"diffkv/internal/trace"
	"diffkv/internal/workload"
)

func newTestCluster(t *testing.T, policy string, mutate func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Instances: 4,
		Policy:    policy,
		Seed:      7,
	}
	cfg.Engine.Model = synth.Llama3_8B
	cfg.Engine.Cluster = gpusim.NewCluster(gpusim.L40(), 1)
	cfg.Engine.Traits = baselines.TraitsVLLM
	cfg.Engine.MaxGenLen = 256
	cfg.Engine.PrefixCacheGroups = 8
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sharedReqs(n int, rate float64, seed uint64) []workload.Request {
	gen := workload.NewRequestGen(workload.MMLU, 256, seed)
	pc := workload.PrefixConfig{Groups: 16, PrefixLen: 768, SharedFrac: 0.9}
	var out []workload.Request
	t := 0.0
	for i := 0; i < n; i++ {
		t += 1e6 / rate
		out = append(out, gen.NextShared(t, pc))
	}
	return out
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := New(Config{Instances: 0}); err == nil {
		t.Fatal("expected error for zero instances")
	}
	cfg := Config{Instances: 2, Policy: "no-such-policy"}
	cfg.Engine.Model = synth.Llama3_8B
	cfg.Engine.Cluster = gpusim.NewCluster(gpusim.L40(), 1)
	cfg.Engine.Traits = baselines.TraitsVLLM
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestRoundRobinCyclesDeterministically(t *testing.T) {
	p := NewRoundRobin()
	snaps := []Snapshot{{ID: 0}, {ID: 1}, {ID: 2}}
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, p.Pick(workload.Request{ID: i}, snaps))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick sequence %v, want %v", got, want)
		}
	}
	// skips an unroutable (filtered-out) instance
	if p.Pick(workload.Request{}, []Snapshot{{ID: 0}, {ID: 2}}) != 0 {
		t.Fatal("expected wrap to 0")
	}
	if p.Pick(workload.Request{}, []Snapshot{{ID: 0}, {ID: 2}}) != 2 {
		t.Fatal("expected skip to 2")
	}
}

func TestLeastLoadedTieBreakDeterministic(t *testing.T) {
	p := NewLeastLoaded()
	// all equal: lowest ID must win, repeatedly
	equal := []Snapshot{{ID: 3}, {ID: 1}, {ID: 2}}
	for i := 0; i < 3; i++ {
		if got := p.Pick(workload.Request{ID: i}, equal); got != 1 {
			t.Fatalf("tie-break picked %d, want 1", got)
		}
	}
	// queue+running dominates
	snaps := []Snapshot{
		{ID: 0, QueueDepth: 2, Running: 1},
		{ID: 1, QueueDepth: 0, Running: 2},
		{ID: 2, QueueDepth: 1, Running: 2},
	}
	if got := p.Pick(workload.Request{}, snaps); got != 1 {
		t.Fatalf("picked %d, want least-loaded 1", got)
	}
	// resident tokens break in-flight ties
	snaps = []Snapshot{
		{ID: 0, Running: 2, ResidentTokens: 900},
		{ID: 1, Running: 2, ResidentTokens: 400},
	}
	if got := p.Pick(workload.Request{}, snaps); got != 1 {
		t.Fatalf("picked %d, want fewer resident tokens (1)", got)
	}
}

func TestPrefixAffinityRoutesSamePrefixTogether(t *testing.T) {
	p := NewPrefixAffinity(64, 8, 0)
	snaps := []Snapshot{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	r1 := workload.Request{ID: 1, PromptLen: 640, PrefixGroup: 5, PrefixLen: 512}
	first := p.Pick(r1, snaps)
	p.(*prefixAffinity).Observe(r1, first, 0)
	for i := 2; i < 8; i++ {
		r := workload.Request{ID: i, PromptLen: 640, PrefixGroup: 5, PrefixLen: 512}
		got := p.Pick(r, snaps)
		if got != first {
			t.Fatalf("request %d routed to %d, want affine instance %d", i, got, first)
		}
		p.(*prefixAffinity).Observe(r, got, float64(i))
	}
	// a different group has no affinity: falls back to least-loaded, and
	// must not blindly follow group 5's instance
	other := workload.Request{ID: 99, PromptLen: 640, PrefixGroup: 6, PrefixLen: 512}
	loaded := make([]Snapshot, 4)
	copy(loaded, snaps)
	loaded[first].Running = 7 // the affine instance is the busiest
	if got := p.Pick(other, loaded); got == first {
		t.Fatal("unrelated group should not route to the busy affine instance")
	}
}

func TestPrefixAffinitySaturationFallback(t *testing.T) {
	p := NewPrefixAffinity(64, 4, 0)
	snaps := []Snapshot{{ID: 0}, {ID: 1}}
	r := workload.Request{ID: 1, PromptLen: 640, PrefixGroup: 3, PrefixLen: 512}
	affine := p.Pick(r, snaps)
	p.(*prefixAffinity).Observe(r, affine, 0)

	// same prefix, but the affine instance's queue is at the bound:
	// fall back to least-loaded (the other instance)
	sat := []Snapshot{
		{ID: 0, QueueDepth: 0},
		{ID: 1, QueueDepth: 0},
	}
	sat[affine].QueueDepth = 4
	r2 := workload.Request{ID: 2, PromptLen: 640, PrefixGroup: 3, PrefixLen: 512}
	got := p.Pick(r2, sat)
	if got == affine {
		t.Fatalf("saturated affine instance %d must be avoided", affine)
	}
}

func TestKVIndexMatchesAndEviction(t *testing.T) {
	x := NewKVIndex(4)
	ra := workload.Request{ID: 1, PromptLen: 256, PrefixGroup: 1, PrefixLen: 256}
	rb := workload.Request{ID: 2, PromptLen: 256, PrefixGroup: 1, PrefixLen: 128}
	ha := ra.BlockHashes(64) // 4 blocks, all group content
	hb := rb.BlockHashes(64) // 2 shared blocks then unique tail
	if ha[0] != hb[0] || ha[1] != hb[1] {
		t.Fatal("shared prefix blocks must hash equal")
	}
	if ha[2] == hb[2] {
		t.Fatal("diverging blocks must hash differently")
	}
	x.Add(ha, 2, 10)
	m := x.Matches(hb)
	if m[2] != 2 {
		t.Fatalf("instance 2 should match 2 consecutive blocks, got %d", m[2])
	}
	// capacity 4: adding 2 more blocks evicts the oldest
	x.Add(hb[2:], 1, 20)
	if x.Len() != 4 {
		t.Fatalf("index len %d, want capacity 4", x.Len())
	}
}

// TestClusterLiveness asserts the H-Liveness-style invariant for every
// policy: below saturation, every dispatched request completes (no stuck
// requests) and nothing is shed.
func TestClusterLiveness(t *testing.T) {
	for _, policy := range Policies() {
		t.Run(policy, func(t *testing.T) {
			c := newTestCluster(t, policy, func(cfg *Config) {
				cfg.MaxQueueDepth = 64
			})
			reqs := sharedReqs(60, 8, 21) // 8 req/s across 4 instances: below saturation
			m, err := c.Run(reqs)
			if err != nil {
				t.Fatal(err)
			}
			if m.Rejected != 0 {
				t.Fatalf("%d requests shed below saturation", m.Rejected)
			}
			if m.Dispatched != len(reqs) {
				t.Fatalf("dispatched %d of %d", m.Dispatched, len(reqs))
			}
			if m.Stuck() != 0 {
				t.Fatalf("liveness violated: %d dispatched requests never completed", m.Stuck())
			}
			if m.Completed != len(reqs) {
				t.Fatalf("completed %d of %d", m.Completed, len(reqs))
			}
			if m.TTFT.P95 <= 0 || m.TPOT.P95 <= 0 {
				t.Fatalf("degenerate SLO quantiles: %+v", m)
			}
			if m.MeanUtilization <= 0 || m.MeanUtilization > 1 {
				t.Fatalf("utilization out of range: %v", m.MeanUtilization)
			}
		})
	}
}

// TestAdmissionControlSheds drives a 1-deep queue bound at a high arrival
// rate and checks conservation: submitted = completed + rejected.
func TestAdmissionControlSheds(t *testing.T) {
	c := newTestCluster(t, PolicyLeastLoaded, func(cfg *Config) {
		cfg.MaxQueueDepth = 1
	})
	reqs := sharedReqs(200, 200, 31) // far beyond 4 instances' capacity
	m, err := c.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rejected == 0 {
		t.Fatal("overload with queue bound 1 must shed requests")
	}
	if m.Completed+m.Rejected != len(reqs) {
		t.Fatalf("conservation violated: %d completed + %d rejected != %d submitted",
			m.Completed, m.Rejected, len(reqs))
	}
	if m.Stuck() != 0 {
		t.Fatalf("%d dispatched requests never completed", m.Stuck())
	}
}

// TestPrefixAffinityBeatsRoundRobinTTFT is the headline cluster property:
// on a prefix-heavy workload, cache-aware routing cuts TTFT p95 versus
// round-robin because affine instances keep prefixes hot while round-robin
// thrashes every instance's prefix cache.
func TestPrefixAffinityBeatsRoundRobinTTFT(t *testing.T) {
	run := func(policy string) Metrics {
		c := newTestCluster(t, policy, nil)
		m, err := c.Run(sharedReqs(160, 12, 91))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	rr := run(PolicyRoundRobin)
	aff := run(PolicyPrefixAffinity)
	if aff.Stuck() != 0 || rr.Stuck() != 0 {
		t.Fatal("liveness violated")
	}
	if aff.PrefixCacheHitFrac <= rr.PrefixCacheHitFrac {
		t.Fatalf("affinity hit frac %.3f should exceed round-robin %.3f",
			aff.PrefixCacheHitFrac, rr.PrefixCacheHitFrac)
	}
	if aff.TTFT.P95 >= rr.TTFT.P95 {
		t.Fatalf("prefix-affinity TTFT p95 %.4fs should beat round-robin %.4fs",
			aff.TTFT.P95, rr.TTFT.P95)
	}
}

// TestClusterTraceEvents checks dispatch/reject and instance-tagged engine
// events flow through one shared collector.
func TestClusterTraceEvents(t *testing.T) {
	col := trace.NewCollector(0)
	c := newTestCluster(t, PolicyLeastLoaded, func(cfg *Config) {
		cfg.Tracer = col
	})
	reqs := sharedReqs(24, 10, 41)
	m, err := c.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	s := col.Summarize()
	if s.Counts[trace.KindDispatch] != m.Dispatched {
		t.Fatalf("dispatch events %d, want %d", s.Counts[trace.KindDispatch], m.Dispatched)
	}
	if s.Counts[trace.KindComplete] != m.Completed {
		t.Fatalf("complete events %d, want %d", s.Counts[trace.KindComplete], m.Completed)
	}
	seenInst := map[int]bool{}
	for _, ev := range col.Events() {
		if ev.Kind == trace.KindDispatch || ev.Kind == trace.KindAdmit {
			seenInst[ev.Inst] = true
		}
		if ev.Inst < 0 || ev.Inst > 4 {
			t.Fatalf("instance tag out of range: %+v", ev)
		}
	}
	if len(seenInst) < 2 {
		t.Fatal("events should span multiple instances")
	}
}
