// Package cluster runs N independent serving engines behind a router — the
// fleet-level layer over the per-GPU DiffKV engine. A discrete-event loop
// interleaves request dispatch with instance progress in global timestamp
// order (arrivals before instance steps at equal times, lowest instance
// index on ties, in the spirit of inference-sim's cluster simulator).
// Routing policies are pluggable (round-robin, least-loaded,
// prefix-affinity over a prefix-hash KV index), admission control sheds
// load beyond a per-instance queue-depth bound, and the run reports
// cluster SLO metrics: TTFT/TPOT percentiles, goodput, per-instance
// utilization and load imbalance.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"diffkv/internal/disagg"
	"diffkv/internal/faults"
	"diffkv/internal/gpusim"
	"diffkv/internal/serving"
	"diffkv/internal/telemetry"
	"diffkv/internal/trace"
	"diffkv/internal/workload"
)

// A cluster is drivable by a serving.Loop exactly like a single engine.
var _ serving.Driver = (*Cluster)(nil)

// ErrAllSaturated is returned by Open when every instance is at the
// admission bound — the request is shed, mirroring Run's reject path.
var ErrAllSaturated = errors.New("cluster: all instances saturated")

// Config parameterizes a cluster run.
type Config struct {
	// Instances is the number of serving engines (>= 1).
	Instances int
	// Engine is the per-instance serving configuration. Each instance
	// derives an independent seed from it, and when Tracer is set each
	// engine gets an instance-tagged tracer.
	Engine serving.Config
	// Policy selects the routing policy (PolicyRoundRobin,
	// PolicyLeastLoaded or PolicyPrefixAffinity; default round-robin).
	Policy string
	// MaxQueueDepth bounds each instance's admission queue: an instance
	// at the bound is unroutable, and a request is shed when every
	// instance is at the bound. <= 0 disables shedding.
	MaxQueueDepth int
	// BlockTokens is the prefix-index block granularity in tokens
	// (prefix-affinity only; default 64).
	BlockTokens int
	// IndexCapacity bounds the prefix index in blocks (default 32768).
	IndexCapacity int
	// AffinityQueueBound is the queue depth at which prefix-affinity
	// abandons the affine instance for least-loaded (default 8).
	AffinityQueueBound int
	// TTFTSLOUs and TPOTSLOUs are the goodput SLO thresholds in
	// microseconds (defaults: 2e6 — 2 s to first token — and 1e5 —
	// 100 ms per output token).
	TTFTSLOUs float64
	TPOTSLOUs float64
	// Faults is the fault-injection plan (nil or disabled = no faults).
	// The cluster expands it into a deterministic crash / restart /
	// slowdown timeline interleaved with the event loop, and wires its
	// PCIe error rate into every instance's transfer path.
	Faults *faults.Plan
	// Disagg enables prefill/decode disaggregation: the fleet is split
	// into a prefill pool and a decode pool (plus an optional mixed
	// remainder), each request becomes a prefill sub-request and a
	// decode sub-request joined by a compressed cross-instance KV
	// transfer over the device NIC model (see disagg.go). Cannot be
	// combined with a fault plan — transfer re-routing across crashed
	// instances is not modeled.
	Disagg *disagg.Config
	// Tracer receives cluster dispatch/reject events plus every
	// instance's engine events, tagged with 1-based instance IDs.
	Tracer trace.Tracer
	// Telemetry, when set, is sampled on its sim-time cadence inside the
	// single-threaded event loop (Run / StepNext) and fed every dispatch
	// and completion — this is what makes a seeded batch run's alert
	// timeline bit-identical across runs. Attach a Center to exactly one
	// layer: here for batch runs, or serving.LoopConfig.Telemetry when a
	// Loop drives the cluster (attaching to both double-counts
	// completions).
	Telemetry *telemetry.Center
	Seed      uint64
}

func (c *Config) validate() error {
	if c.Instances < 1 {
		return fmt.Errorf("cluster: Instances must be >= 1 (got %d)", c.Instances)
	}
	if c.TTFTSLOUs <= 0 {
		c.TTFTSLOUs = 2e6
	}
	if c.TPOTSLOUs <= 0 {
		c.TPOTSLOUs = 1e5
	}
	return nil
}

// Cluster is the multi-instance serving simulator. It is driven either
// in batch mode (Run: route a request list, drain, return Metrics) or in
// session mode (Open per request + DrainContext + Metrics), not both.
type Cluster struct {
	cfg         Config
	engines     []*serving.Engine
	policy      Policy
	hasRun      bool
	sessionMode bool
	acc         *accumulator
	steps       int
	autoID      int

	// disaggregation coordinator state (disagg.go); nil without
	// Config.Disagg
	dg *disaggState

	// fault-injection state (faulttol.go); inj nil without a fault plan
	inj           *faults.Injector
	health        []Health
	redispatchQ   []redispatch
	perInstRedisp []int
	failedN       int
	redispatchN   int
	crashes       int
	restarts      int
	swapRecovered int
	lostKV        int64
}

// clusterAutoIDBase keeps cluster-assigned session request IDs clear of
// workload-generator IDs (counting up from 1) and of the per-engine
// auto-ID range (starting at 1<<30): engines assign IDs independently,
// so a two-instance cluster would hand the same engine-assigned ID to
// two different clients — the cluster assigns before routing instead.
// 3<<29 (= 1<<30 + 1<<29) still fits a 32-bit int.
const clusterAutoIDBase = 3 << 29

// New builds a cluster of cfg.Instances engines behind the configured
// routing policy.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	policy, err := newPolicy(cfg)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, policy: policy}
	if cfg.Disagg != nil {
		if err := cfg.Disagg.Validate(cfg.Instances); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		if cfg.Faults != nil && cfg.Faults.Enabled() {
			return nil, fmt.Errorf("cluster: fault injection and disaggregation cannot be combined (transfer re-routing across crashed instances is not modeled)")
		}
		c.dg = newDisaggState(*cfg.Disagg, cfg.Instances)
	}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		inj, err := faults.New(*cfg.Faults, cfg.Instances)
		if err != nil {
			return nil, err
		}
		c.inj = inj
		c.health = make([]Health, cfg.Instances)
		for i := range c.health {
			c.health[i] = Healthy
		}
		c.perInstRedisp = make([]int, cfg.Instances)
	}
	for i := 0; i < cfg.Instances; i++ {
		ec := cfg.Engine
		ec.Seed = cfg.Seed + uint64(i)*7919
		if c.inj != nil && c.inj.Plan().PCIeErrorRate > 0 {
			// one shared fault stream: draws happen in step order, which
			// the single-threaded event loop keeps deterministic
			ec.XferFault = c.inj.XferFault
		}
		if cfg.Tracer != nil {
			ec.Tracer = trace.WithInstance(cfg.Tracer, i+1)
		}
		eng, err := serving.NewEngine(ec)
		if err != nil {
			return nil, fmt.Errorf("cluster: instance %d: %w", i, err)
		}
		c.engines = append(c.engines, eng)
	}
	return c, nil
}

// Policy returns the active routing policy's name.
func (c *Cluster) Policy() string { return c.policy.Name() }

// Engines exposes the underlying serving engines (read-mostly: for
// inspection and tests).
func (c *Cluster) Engines() []*serving.Engine { return c.engines }

func (c *Cluster) emit(ev trace.Event) {
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Emit(ev)
	}
}

// maxClusterSteps bounds the event loop like Engine.Drain bounds a
// single-engine run: an unservable request (e.g. a prompt that can never
// fit one instance's pages) recompute-preempts forever, and without a
// step bound the cluster would never return. Breaking leaves the request
// visible as Metrics.Stuck() > 0.
const maxClusterSteps = 20_000_000

// Run routes the request list through the cluster and drains every
// instance, returning aggregate SLO metrics. A cluster serves one run;
// Run and the session API (Open) are mutually exclusive.
func (c *Cluster) Run(reqs []workload.Request) (Metrics, error) {
	if c.hasRun {
		return Metrics{}, fmt.Errorf("cluster: Run called twice")
	}
	if c.sessionMode {
		return Metrics{}, fmt.Errorf("cluster: Run after Open (pick batch or session driving, not both)")
	}
	c.hasRun = true

	pending := append([]workload.Request(nil), reqs...)
	sort.SliceStable(pending, func(a, b int) bool {
		return pending[a].ArrivalUs < pending[b].ArrivalUs
	})

	c.acc = newAccumulator(c.cfg, c.policy.Name(), len(reqs))

	for c.steps < maxClusterSteps {
		// earliest instance step among live instances (lowest index wins
		// ties; down instances do not execute until their restart)
		stepT := math.Inf(1)
		pick := -1
		for i, e := range c.engines {
			if c.down(i) {
				continue
			}
			if t, ok := e.NextTime(); ok && float64(t) < stepT {
				stepT, pick = float64(t), i
			}
		}
		arrT := math.Inf(1)
		if len(pending) > 0 {
			arrT = pending[0].ArrivalUs
		}
		rdT := c.redispatchDue()
		xT := c.transferDue()
		fT := c.faultDue()
		if len(pending) > 0 && c.inj != nil {
			// pending arrivals keep the fault timeline live even when the
			// fleet is momentarily idle
			if at, ok := c.inj.NextAt(); ok && at < fT {
				fT = at
			}
		}
		if pick == -1 && math.IsInf(arrT, 1) && math.IsInf(rdT, 1) && math.IsInf(xT, 1) && math.IsInf(fT, 1) {
			break
		}
		// at equal timestamps: faults fire first (a crash at an arrival's
		// instant is visible to its routing), then KV transfers land (an
		// adoption at an arrival's instant is visible to its routing too),
		// then re-dispatches, then arrivals, then instance steps
		switch {
		case fT <= xT && fT <= rdT && fT <= arrT && fT <= stepT:
			if err := c.processFault(); err != nil {
				return c.finishMetrics(), err
			}
		case xT <= rdT && xT <= arrT && xT <= stepT:
			if err := c.processTransfer(); err != nil {
				return c.finishMetrics(), err
			}
		case rdT <= arrT && rdT <= stepT:
			if err := c.processRedispatch(); err != nil {
				return c.finishMetrics(), err
			}
		case arrT <= stepT:
			r := pending[0]
			pending = pending[1:]
			c.dispatch(r)
		default:
			c.steps++
			comps, err := c.engines[pick].Step()
			if err != nil {
				return c.finishMetrics(), fmt.Errorf("cluster: instance %d: %w", pick, err)
			}
			for i := range comps {
				comps[i].Inst = pick + 1
			}
			comps, err = c.settle(pick, comps)
			if err != nil {
				return c.finishMetrics(), err
			}
			for i := range comps {
				c.acc.complete(pick, comps[i])
			}
			c.recordTelemetry(comps)
		}
	}
	return c.finishMetrics(), nil
}

// dispatch routes one request: snapshot the fleet, filter saturated
// instances (admission control), let the policy pick, and submit. Under
// disaggregation the prefill sub-request is submitted and the parent
// parked until its prefill child completes (settle / shipPrefill);
// accounting always sees the parent, so a request is dispatched once.
func (c *Cluster) dispatch(r workload.Request) {
	idx, ok := c.route(r)
	if !ok {
		c.acc.reject()
		c.emit(trace.Event{Kind: trace.KindReject, TimeUs: r.ArrivalUs, Seq: r.ID})
		return
	}
	if c.dg != nil {
		pre, handoff := disagg.Split(r)
		c.engines[idx].Submit(pre)
		if handoff {
			c.engines[idx].MarkHandoff(r.ID)
			c.dg.await[r.ID] = r
		}
	} else {
		c.engines[idx].Submit(r)
	}
	if c.cfg.Telemetry != nil {
		c.cfg.Telemetry.RecordOpen(r.PromptLen)
	}
	c.observe(r, idx)
	c.acc.dispatch(idx, r)
	c.emit(trace.Event{Kind: trace.KindDispatch, TimeUs: r.ArrivalUs, Seq: r.ID, Inst: idx + 1})
}

// route snapshots the fleet, filters saturated instances and lets the
// policy pick. Reports false when every instance is saturated. Under
// disaggregation decode-pool instances never take fresh prompts (they
// only adopt shipped prefills), so they are filtered here regardless of
// the policy in use.
func (c *Cluster) route(r workload.Request) (int, bool) {
	snaps := make([]Snapshot, 0, len(c.engines))
	for i, e := range c.engines {
		if c.down(i) {
			continue // crashed: unroutable until restart
		}
		if c.dg != nil && c.dg.roles[i] == disagg.RoleDecode {
			continue // decode pool: adopts shipped prefills only
		}
		s := Snapshot{
			ID:             i,
			QueueDepth:     e.QueueDepth(),
			Running:        e.RunningCount(),
			ResidentTokens: e.ResidentTokens(),
			SwappedTokens:  e.SwappedTokens(),
			ClockUs:        float64(e.Clock()),
			Degraded:       c.health != nil && c.health[i] == Degraded,
			Role:           c.Role(i),
		}
		if c.cfg.MaxQueueDepth > 0 && s.QueueDepth >= c.cfg.MaxQueueDepth {
			continue // saturated: unroutable
		}
		snaps = append(snaps, s)
	}
	if len(snaps) == 0 {
		return 0, false
	}
	return c.policy.Pick(r, snaps), true
}

// observe lets learning policies record the dispatch decision.
func (c *Cluster) observe(r workload.Request, idx int) {
	if obs, ok := c.policy.(observer); ok {
		obs.Observe(r, idx, r.ArrivalUs)
	}
}

// Open routes one request and opens a session on the chosen instance —
// the online-serving counterpart of Run's batch dispatch. The context
// governs the request's lifetime (see serving.Engine.Open); the cluster
// must then be driven with DrainContext (or StepNext) for sessions to
// progress. Returns ErrAllSaturated when admission control sheds the
// request.
func (c *Cluster) Open(ctx context.Context, r workload.Request) (*serving.Session, error) {
	if c.hasRun {
		return nil, fmt.Errorf("cluster: Open after Run (pick batch or session driving, not both)")
	}
	if c.acc == nil {
		c.acc = newAccumulator(c.cfg, c.policy.Name(), 0)
	}
	if r.ID == 0 {
		// assign fleet-unique IDs here: per-engine auto-assignment would
		// collide across instances
		c.autoID++
		r.ID = clusterAutoIDBase + c.autoID
	}
	// bring instance health up to date before routing: a crash due by now
	// must exclude its instance from this decision
	if c.inj != nil {
		t := r.ArrivalUs
		for _, e := range c.engines {
			if ct := float64(e.Clock()); ct > t {
				t = ct
			}
		}
		if err := c.advanceFaults(t); err != nil {
			return nil, err
		}
	}
	idx, ok := c.route(r)
	if !ok {
		// a shed request was offered load: it counts as submitted and
		// latches session mode, unlike an invalid request below
		c.sessionMode = true
		c.acc.m.Submitted++
		c.acc.reject()
		c.emit(trace.Event{Kind: trace.KindReject, TimeUs: r.ArrivalUs, Seq: r.ID})
		return nil, ErrAllSaturated
	}
	sub, handoff := r, false
	if c.dg != nil {
		sub, handoff = disagg.Split(r)
	}
	s, err := c.engines[idx].Open(ctx, sub)
	if err != nil {
		// invalid request (duplicate ID, no GenLen): no state changed, so
		// the cluster stays usable either way
		return nil, fmt.Errorf("cluster: instance %d: %w", idx, err)
	}
	c.sessionMode = true
	c.acc.m.Submitted++
	// the engine may have auto-assigned the request ID and clamped the
	// arrival time; observe and account the request as actually submitted
	// (under disaggregation that is the parent: the session handle follows
	// the KV across the handoff, the request completes once on its decode
	// instance)
	genLen := r.GenLen
	r = s.Request()
	if handoff {
		r.GenLen = genLen
		c.engines[idx].MarkHandoff(r.ID)
		c.dg.await[r.ID] = r
	}
	if c.cfg.Telemetry != nil {
		c.cfg.Telemetry.RecordOpen(r.PromptLen)
	}
	c.observe(r, idx)
	c.acc.dispatch(idx, r)
	c.emit(trace.Event{Kind: trace.KindDispatch, TimeUs: r.ArrivalUs, Seq: r.ID, Inst: idx + 1})
	return s, nil
}

// Step advances the instance with the earliest next step and returns its
// completions, routing them into the cluster metrics. With no instance
// work it is a cheap no-op returning (nil, nil) — the same contract as
// serving.Engine.Step, which is what lets a serving.Loop drive a cluster
// and a single engine interchangeably.
func (c *Cluster) Step() ([]serving.Completion, error) {
	comps, _, err := c.stepNext()
	return comps, err
}

// StepNext advances the instance with the earliest next step, routing its
// completions into the cluster metrics. It reports false when no instance
// has work (after reaping cancelled sessions). One call is one instance
// step, so interleaved Open calls between steps model online arrivals.
func (c *Cluster) StepNext() (bool, error) {
	_, progressed, err := c.stepNext()
	return progressed, err
}

func (c *Cluster) stepNext() ([]serving.Completion, bool, error) {
	c.ReapSessions()
	stepT := math.Inf(1)
	pick := -1
	for i, e := range c.engines {
		if c.down(i) {
			continue
		}
		if t, ok := e.NextTime(); ok && float64(t) < stepT {
			stepT, pick = float64(t), i
		}
	}
	// fault events, KV-transfer deliveries and re-dispatch deadlines
	// interleave with steps in timestamp order, faults first at ties,
	// transfers next
	rdT := c.redispatchDue()
	xT := c.transferDue()
	if fT := c.faultDue(); !math.IsInf(fT, 1) && fT <= xT && fT <= rdT && fT <= stepT {
		return nil, true, c.processFault()
	}
	if !math.IsInf(xT, 1) && xT <= rdT && xT <= stepT {
		return nil, true, c.processTransfer()
	}
	if !math.IsInf(rdT, 1) && rdT <= stepT {
		return nil, true, c.processRedispatch()
	}
	if pick == -1 {
		return nil, false, nil
	}
	c.steps++
	comps, err := c.engines[pick].Step()
	if err != nil {
		return nil, true, fmt.Errorf("cluster: instance %d: %w", pick, err)
	}
	for i := range comps {
		comps[i].Inst = pick + 1
	}
	comps, err = c.settle(pick, comps)
	if err != nil {
		return nil, true, err
	}
	if c.acc != nil {
		for _, cp := range comps {
			c.acc.complete(pick, cp)
		}
	}
	c.recordTelemetry(comps)
	return comps, true, nil
}

// Clock returns the latest simulated clock across instances.
func (c *Cluster) Clock() gpusim.Micros {
	var best gpusim.Micros
	for _, e := range c.engines {
		if t := e.Clock(); t > best {
			best = t
		}
	}
	return best
}

// recordTelemetry feeds the attached telemetry center (no-op without
// one): completion latencies from this step, then a cadence sample when
// one is due. Both run inside the event loop, so batch-run sampling is
// deterministic.
func (c *Cluster) recordTelemetry(comps []serving.Completion) {
	tc := c.cfg.Telemetry
	if tc == nil {
		return
	}
	for _, cp := range comps {
		ttft := (cp.FirstTokenUs - cp.Req.ArrivalUs) / 1e6
		e2e := (cp.DoneUs - cp.Req.ArrivalUs) / 1e6
		var tpot float64
		if cp.Req.GenLen > 0 {
			tpot = (cp.DoneUs - cp.FirstTokenUs) / 1e6 / float64(cp.Req.GenLen)
		}
		tc.RecordCompletion(cp.Inst, cp.DoneUs, ttft, tpot, e2e, cp.Req.GenLen)
	}
	if now := float64(c.Clock()); tc.Due(now) {
		tc.Sample(serving.ObservationFromStats(c.Stats()))
	}
}

// ReapSessions frees the state of context-cancelled sessions on every
// instance — cancellations free capacity and may idle an engine.
func (c *Cluster) ReapSessions() {
	for _, e := range c.engines {
		e.ReapSessions()
	}
}

// HasWork reports whether any instance has queued, running or swapped
// requests, a crash orphan awaits re-dispatch, or a KV transfer is on
// the wire.
func (c *Cluster) HasWork() bool {
	if len(c.redispatchQ) > 0 {
		return true
	}
	if c.dg != nil && c.dg.xq.Len() > 0 {
		return true
	}
	return c.engineWork()
}

// NextTime returns the simulated time of the earliest next event — a
// live instance's step, a re-dispatch deadline, a KV-transfer delivery,
// or a due fault event — and false when the cluster is idle.
func (c *Cluster) NextTime() (gpusim.Micros, bool) {
	best, ok := gpusim.Micros(0), false
	for i, e := range c.engines {
		if c.down(i) {
			continue
		}
		if t, has := e.NextTime(); has && (!ok || t < best) {
			best, ok = t, true
		}
	}
	if rdT := c.redispatchDue(); !math.IsInf(rdT, 1) && (!ok || gpusim.Micros(rdT) < best) {
		best, ok = gpusim.Micros(rdT), true
	}
	if xT := c.transferDue(); !math.IsInf(xT, 1) && (!ok || gpusim.Micros(xT) < best) {
		best, ok = gpusim.Micros(xT), true
	}
	if fT := c.faultDue(); !math.IsInf(fT, 1) && (!ok || gpusim.Micros(fT) < best) {
		best, ok = gpusim.Micros(fT), true
	}
	return best, ok
}

// Stats implements serving.Driver: fleet-wide counters summed over
// instances, plus the cluster's own admission-shed count.
func (c *Cluster) Stats() serving.DriverStats {
	ds := serving.DriverStats{
		Instances:    len(c.engines),
		Failed:       c.failedN,
		Redispatches: c.redispatchN,
		Crashes:      c.crashes,
		Restarts:     c.restarts,
	}
	if c.acc != nil {
		ds.Rejected = c.acc.m.Rejected
	}
	var genTok, doneTok float64
	ds.PerInstance = make([]serving.InstanceStats, 0, len(c.engines))
	for i, e := range c.engines {
		es := e.Stats()
		inst := es.PerInstance[0]
		inst.Inst = i + 1 // retag with the fleet-wide instance number
		inst.Health = string(c.InstanceHealth(i))
		if c.dg != nil {
			inst.Role = string(c.dg.roles[i])
		}
		if c.perInstRedisp != nil {
			inst.Redispatched = c.perInstRedisp[i]
		}
		if !c.down(i) {
			ds.InstancesUp++
		}
		ds.PerInstance = append(ds.PerInstance, inst)
		ds.QueueDepth += es.QueueDepth
		ds.Running += es.Running
		ds.Swapped += es.Swapped
		ds.OpenSessions += es.OpenSessions
		ds.Completed += es.Completed
		ds.Cancelled += es.Cancelled
		ds.Preemptions += es.Preemptions
		ds.FreeKVPages += es.FreeKVPages
		ds.UsedKVPages += es.UsedKVPages
		ds.SwapOutBytes += es.SwapOutBytes
		ds.SwapInBytes += es.SwapInBytes
		ds.HostPrefixHits += es.HostPrefixHits
		ds.LostKVBytes += es.LostKVBytes
		ds.BrownoutAdmits += es.BrownoutAdmits
		if es.ClockUs > ds.ClockUs {
			ds.ClockUs = es.ClockUs
		}
		// per-instance rates are over each instance's own clock; recover
		// token counts and re-rate them over the cluster makespan
		genTok += es.ThroughputTokensPerSec * es.ClockUs / 1e6
		doneTok += es.GoodputTokensPerSec * es.ClockUs / 1e6
	}
	if ds.ClockUs > 0 {
		ds.ThroughputTokensPerSec = genTok / (ds.ClockUs / 1e6)
		ds.GoodputTokensPerSec = doneTok / (ds.ClockUs / 1e6)
	}
	ds.SwapRecovered = c.swapRecovered
	if c.dg != nil {
		// each shipped prefill child also counted as an engine completion;
		// subtract so Completed means whole requests, matching Metrics
		ds.Completed -= c.dg.transfers
		ds.KVTransfers = c.dg.transfers
		ds.KVBytesShipped = c.dg.bytes
		for _, lb := range c.dg.ledger.Links() {
			ds.KVShipLinks = append(ds.KVShipLinks, serving.KVLink{
				From: lb.From, To: lb.To, Bytes: lb.Bytes, Transfers: lb.Transfers,
			})
		}
	}
	return ds
}

// finishMetrics finalizes the accumulator and overlays the cluster's
// fault-recovery counters.
func (c *Cluster) finishMetrics() Metrics {
	m := c.acc.finish(c.engines)
	m.Failed = c.failedN
	m.Redispatches = c.redispatchN
	m.Crashes = c.crashes
	m.Restarts = c.restarts
	m.SwapRecovered = c.swapRecovered
	m.LostKVBytes = c.lostKV
	for i, e := range c.engines {
		m.BrownoutAdmits += e.BrownoutAdmits()
		if c.perInstRedisp != nil {
			m.PerInstance[i].Redispatched = c.perInstRedisp[i]
		}
	}
	if c.dg != nil {
		m.Disagg = &DisaggMetrics{
			PrefillInstances: c.dg.cfg.PrefillInstances,
			DecodeInstances:  c.dg.cfg.DecodeInstances,
			Transfers:        c.dg.transfers,
			KVBytesShipped:   c.dg.bytes,
			XferSeconds:      c.dg.xferUs / 1e6,
			Links:            c.dg.ledger.Links(),
		}
		for i := range m.PerInstance {
			m.PerInstance[i].Role = string(c.dg.roles[i])
		}
	}
	return m
}

// DrainContext steps the cluster until every instance is idle, the
// context is done, or the step bound is hit — the deadline-respecting
// drain of the session API. Metrics reports the state accumulated so far.
func (c *Cluster) DrainContext(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for c.steps < maxClusterSteps {
		if err := ctx.Err(); err != nil {
			return err
		}
		progressed, err := c.StepNext()
		if err != nil {
			return err
		}
		if !progressed {
			return nil
		}
	}
	return nil
}

// Metrics finalizes and returns the cluster metrics accumulated by the
// session API (Open / DrainContext). It may be called mid-drive; before
// any Open it returns zero-valued metrics.
func (c *Cluster) Metrics() Metrics {
	if c.acc == nil {
		c.acc = newAccumulator(c.cfg, c.policy.Name(), 0)
	}
	return c.finishMetrics()
}
