package cluster

import (
	"fmt"

	"diffkv/internal/disagg"
	"diffkv/internal/registry"
	"diffkv/internal/workload"
)

// Snapshot is the router's view of one serving instance at dispatch time.
type Snapshot struct {
	ID int
	// QueueDepth counts submitted requests awaiting admission.
	QueueDepth int
	// Running counts admitted, in-flight requests.
	Running int
	// ResidentTokens sums the cached KV tokens of running sequences.
	ResidentTokens int
	// SwappedTokens sums the KV tokens of sequences the instance has
	// swapped out to its host tier — latent load that will reclaim GPU
	// pages before new admissions, which offload-aware policies weigh.
	SwappedTokens int
	// ClockUs is the instance's simulated clock.
	ClockUs float64
	// Degraded marks an instance in a transient fault-injection
	// slowdown: routable, but load-aware policies down-weight it.
	// Crashed (down) instances never appear in a snapshot at all.
	Degraded bool
	// Role is the instance's disaggregation pool role (mixed without
	// disaggregation). Dispatch snapshots never contain decode-pool
	// instances — those only adopt shipped prefills — so role-aware
	// policies choose between prefill and mixed here.
	Role disagg.Role
}

// Policy picks a target instance for each request. Pick receives only
// routable snapshots (admission control filters saturated instances first)
// and the slice is never empty; it returns the chosen Snapshot.ID.
// Policies must be deterministic: equal inputs yield equal picks.
type Policy interface {
	Name() string
	Pick(req workload.Request, snaps []Snapshot) int
}

// observer is implemented by policies that learn from dispatch decisions
// (prefix-affinity records which instance now holds a prompt's KV blocks).
type observer interface {
	Observe(req workload.Request, inst int, nowUs float64)
}

// Routing policy names.
const (
	PolicyRoundRobin     = "round-robin"
	PolicyLeastLoaded    = "least-loaded"
	PolicyPrefixAffinity = "prefix-affinity"
	PolicyDisaggAware    = "disagg-aware"
)

// PolicyFactory builds a fresh routing policy instance for one cluster.
// Policies are stateful (round-robin cursors, prefix indexes), so the
// registry holds factories, not instances: every Cluster gets its own.
type PolicyFactory func(cfg Config) (Policy, error)

// policies is the routing-policy registry; registration order defines
// the order Policies reports (builtins first, then third-party).
var policies = registry.New[PolicyFactory]("cluster", "routing policy")

// RegisterPolicy adds a routing policy factory under name. Names must be
// non-empty and unique.
func RegisterPolicy(name string, f PolicyFactory) error {
	if f == nil {
		return fmt.Errorf("cluster: nil PolicyFactory for %q", name)
	}
	return policies.Register(name, f)
}

func mustRegisterPolicy(name string, f PolicyFactory) {
	if err := RegisterPolicy(name, f); err != nil {
		panic(err)
	}
}

// Policies lists registered routing policy names in registration order —
// derived from the registry, never hard-coded.
func Policies() []string { return policies.Names() }

func init() {
	mustRegisterPolicy(PolicyRoundRobin, func(Config) (Policy, error) {
		return NewRoundRobin(), nil
	})
	mustRegisterPolicy(PolicyLeastLoaded, func(Config) (Policy, error) {
		return NewLeastLoaded(), nil
	})
	mustRegisterPolicy(PolicyPrefixAffinity, func(cfg Config) (Policy, error) {
		return NewPrefixAffinity(cfg.BlockTokens, cfg.AffinityQueueBound, cfg.IndexCapacity), nil
	})
	mustRegisterPolicy(PolicyDisaggAware, func(Config) (Policy, error) {
		return NewDisaggAware(), nil
	})
}

// disaggAware routes by pool role: fresh prompts go least-loaded across
// the prefill pool (mixed instances only absorb overflow once every
// prefill instance carries more load), and shipped prefills go
// least-loaded across the decode pool with the same mixed-overflow
// rule. On a non-disaggregated cluster every instance is mixed and the
// policy degenerates to least-loaded.
type disaggAware struct{}

// NewDisaggAware returns the disagg-aware routing policy.
func NewDisaggAware() Policy { return disaggAware{} }

func (disaggAware) Name() string { return PolicyDisaggAware }

func (disaggAware) Pick(_ workload.Request, snaps []Snapshot) int {
	return pickByRole(snaps, disagg.RolePrefill)
}

// PickDecode implements the decode-side selection for shipped prefills
// (the coordinator's decodePicker hook).
func (disaggAware) PickDecode(_ workload.Request, snaps []Snapshot) int {
	return pickByRole(snaps, disagg.RoleDecode)
}

// pickByRole is least-loaded restricted to the wanted pool, falling
// back to the least-loaded instance of any other role only when the
// wanted pool is absent from the snapshot set (saturated or not
// configured).
func pickByRole(snaps []Snapshot, want disagg.Role) int {
	best, bestWant, has := Snapshot{}, false, false
	for _, s := range snaps {
		w := s.Role == want
		if !has || (w && !bestWant) || (w == bestWant && less(s, best)) {
			best, bestWant, has = s, w, true
		}
	}
	return best.ID
}

// roundRobin cycles through instances in ID order, skipping over instances
// the admission filter removed.
type roundRobin struct {
	last int
}

// NewRoundRobin returns the round-robin routing policy.
func NewRoundRobin() Policy { return &roundRobin{last: -1} }

func (p *roundRobin) Name() string { return PolicyRoundRobin }

func (p *roundRobin) Pick(_ workload.Request, snaps []Snapshot) int {
	// smallest ID strictly after the previous pick, wrapping to the
	// smallest overall
	best, wrap := -1, -1
	for _, s := range snaps {
		if s.ID > p.last && (best == -1 || s.ID < best) {
			best = s.ID
		}
		if wrap == -1 || s.ID < wrap {
			wrap = s.ID
		}
	}
	if best == -1 {
		best = wrap
	}
	p.last = best
	return best
}

// leastLoaded routes to the instance with the fewest in-flight requests,
// breaking ties by resident KV tokens, then by lowest instance ID — the
// last rule makes tie-breaking deterministic.
type leastLoaded struct{}

// NewLeastLoaded returns the least-loaded routing policy.
func NewLeastLoaded() Policy { return leastLoaded{} }

func (leastLoaded) Name() string { return PolicyLeastLoaded }

func (leastLoaded) Pick(_ workload.Request, snaps []Snapshot) int {
	best := snaps[0]
	for _, s := range snaps[1:] {
		if less(s, best) {
			best = s
		}
	}
	return best.ID
}

// less orders snapshots by load: (queued+running, resident+swapped tokens,
// ID). Swapped tokens count as load — a host-resident sequence reclaims
// GPU pages before any new admission runs — so the policy is offload-aware
// without a separate mode. A degraded instance's load is inflated (4x+2),
// so it only wins against healthy instances carrying several times its
// queue: graceful degradation rather than exclusion.
func less(a, b Snapshot) bool {
	la, lb := loadOf(a), loadOf(b)
	if la != lb {
		return la < lb
	}
	ta, tb := a.ResidentTokens+a.SwappedTokens, b.ResidentTokens+b.SwappedTokens
	if ta != tb {
		return ta < tb
	}
	return a.ID < b.ID
}

// loadOf is the in-flight load a snapshot contributes to routing, with
// the degraded penalty applied.
func loadOf(s Snapshot) int {
	l := s.QueueDepth + s.Running
	if s.Degraded {
		l = l*4 + 2
	}
	return l
}

// prefixAffinity routes requests sharing a prompt prefix to the instance
// that already holds those KV blocks (per the KVIndex), falling back to
// least-loaded when no instance matches or the affine instance's queue is
// saturated — the llm-d cache-aware routing scheme.
type prefixAffinity struct {
	index      *KVIndex
	blockTok   int
	queueBound int
	fallback   Policy
}

// NewPrefixAffinity returns the prefix-affinity policy: blockTokens is the
// index granularity (<=0 selects 64), queueBound is the affine instance's
// queue depth beyond which the policy falls back to least-loaded (<=0
// selects 8), indexCapacity bounds the block index (<=0 selects 32768).
func NewPrefixAffinity(blockTokens, queueBound, indexCapacity int) Policy {
	if blockTokens <= 0 {
		blockTokens = 64
	}
	if queueBound <= 0 {
		queueBound = 8
	}
	return &prefixAffinity{
		index:      NewKVIndex(indexCapacity),
		blockTok:   blockTokens,
		queueBound: queueBound,
		fallback:   NewLeastLoaded(),
	}
}

func (p *prefixAffinity) Name() string { return PolicyPrefixAffinity }

func (p *prefixAffinity) Pick(req workload.Request, snaps []Snapshot) int {
	matches := p.index.Matches(req.BlockHashes(p.blockTok))
	best, bestScore := -1, 0
	for _, s := range snaps {
		score := matches[s.ID]
		if score == 0 || s.QueueDepth >= p.queueBound {
			continue
		}
		// snaps arrive in ascending ID order, so strict > keeps the
		// lowest-ID instance among equal scores
		if score > bestScore {
			best, bestScore = s.ID, score
		}
	}
	if best >= 0 {
		return best
	}
	return p.fallback.Pick(req, snaps)
}

func (p *prefixAffinity) Observe(req workload.Request, inst int, nowUs float64) {
	// Only shared-prefix blocks are worth indexing: unique-tail block
	// hashes chain the request ID, so no future request can ever match
	// them — indexing them would only churn the LRU.
	if req.PrefixGroup == 0 {
		return
	}
	n := req.PrefixLen / p.blockTok
	if n == 0 {
		return
	}
	hashes := req.BlockHashes(p.blockTok)
	if n > len(hashes) {
		n = len(hashes)
	}
	p.index.Add(hashes[:n], inst, nowUs)
}

// newPolicy builds a routing policy from a cluster Config via the
// registry ("" selects round-robin).
func newPolicy(cfg Config) (Policy, error) {
	name := cfg.Policy
	if name == "" {
		name = PolicyRoundRobin
	}
	f, err := policies.Lookup(name)
	if err != nil {
		return nil, err
	}
	return f(cfg)
}
