package cluster

import (
	"math"

	"diffkv/internal/serving"
	"diffkv/internal/stats"
	"diffkv/internal/workload"
)

// Quantiles summarizes a latency distribution in seconds.
type Quantiles struct {
	P50, P95, P99, Mean float64
}

func quantilesOf(xs []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return Quantiles{
		P50:  stats.Quantile(xs, 0.50),
		P95:  stats.Quantile(xs, 0.95),
		P99:  stats.Quantile(xs, 0.99),
		Mean: sum / float64(len(xs)),
	}
}

// InstanceStats reports one instance's share of the run.
type InstanceStats struct {
	Dispatched       int
	Completed        int
	DispatchedTokens int
	// BusySeconds is simulated time spent executing steps.
	BusySeconds float64
	// Utilization is BusySeconds over the cluster makespan.
	Utilization float64
	// Redispatched counts crash orphans this instance accepted from
	// other instances' failures (0 without a fault plan).
	Redispatched int
	// Role is the instance's disaggregation pool ("prefill", "decode",
	// "mixed"); empty without disaggregation. Under disaggregation a
	// prefill instance's Dispatched and a decode instance's Completed
	// need not match: requests enter through one pool and leave through
	// the other.
	Role string
}

// Metrics aggregates one cluster run: request accounting, SLO latency
// percentiles, goodput and load balance.
type Metrics struct {
	Policy    string
	Instances int

	Submitted  int
	Dispatched int
	Rejected   int
	Completed  int
	// Cancelled counts dispatched session requests cancelled mid-flight
	// (their KV state was freed without completing; 0 in batch runs).
	Cancelled int
	// Failed counts dispatched requests terminally failed by fault
	// injection: their instance crashed and the re-dispatch retry budget
	// ran out (0 without a fault plan).
	Failed int

	// ElapsedSeconds is the cluster makespan (latest instance clock).
	ElapsedSeconds float64
	// ThroughputTokensPerSec counts generated tokens per second.
	ThroughputTokensPerSec float64

	// TTFT is time to first token, TPOT time per output token after the
	// first, E2E arrival-to-completion — all in seconds.
	TTFT, TPOT, E2E Quantiles

	// GoodputReqPerSec counts completions meeting both SLOs per second;
	// GoodputFrac is their fraction of dispatched requests.
	GoodputReqPerSec float64
	GoodputFrac      float64

	PerInstance     []InstanceStats
	MeanUtilization float64
	// LoadImbalanceCV is the coefficient of variation (std/mean) of
	// per-instance busy time: 0 = perfectly balanced.
	LoadImbalanceCV float64

	// PrefixCacheHitFrac is the fraction of completed requests' prompt
	// tokens served from instance prefix caches.
	PrefixCacheHitFrac float64

	// Preemptions counts preemption events across all instances
	// (recompute and swap recoveries); PreemptedRequests counts completed
	// requests that were preempted at least once — with the per-request
	// retry timestamps in serving.Completion this makes TTFT/TPOT under
	// preemption honestly attributable.
	Preemptions       int
	PreemptedRequests int

	// Host-tier offload activity summed over instances (zero when the
	// tier is disabled): bytes swapped each way, PCIe stall time not
	// hidden behind compute, the thrashing rate (fraction of swap-ins
	// within the thrash window of their swap-out) and prefix-cache
	// entries served back from host memory.
	SwapOutBytes     int64
	SwapInBytes      int64
	SwapStallSeconds float64
	ThrashRate       float64
	HostPrefixHits   int

	// Fault-injection recovery accounting (all zero without a fault
	// plan). Redispatches counts crash orphans re-dispatched to
	// survivors; SwapRecovered counts sequences the host tier carried
	// through a crash (resumed instead of recomputed); LostKVBytes is
	// the GPU KV footprint destroyed by crashes; BrownoutAdmits counts
	// admissions forced to the all-low tier under queue pressure.
	Crashes        int
	Restarts       int
	Redispatches   int
	SwapRecovered  int
	LostKVBytes    int64
	BrownoutAdmits int

	// Disagg summarizes the run's prefill→decode KV shipments (nil
	// without disaggregation).
	Disagg *DisaggMetrics
}

// Stuck counts dispatched requests that reached no terminal state:
// neither completed, cancelled, nor terminally failed by fault
// injection. After a drained run it must be 0 — the liveness invariant
// cluster tests assert — so failed requests count as accounted-for,
// not stuck.
func (m Metrics) Stuck() int { return m.Dispatched - m.Completed - m.Cancelled - m.Failed }

// accumulator collects per-event state during a run and finalizes Metrics.
type accumulator struct {
	cfg    Config
	m      Metrics
	ttft   []float64
	tpot   []float64
	e2e    []float64
	good   int
	genTok int64
	prompt int64
	cached int64
}

func newAccumulator(cfg Config, policy string, submitted int) *accumulator {
	return &accumulator{
		cfg: cfg,
		m: Metrics{
			Policy:      policy,
			Instances:   cfg.Instances,
			Submitted:   submitted,
			PerInstance: make([]InstanceStats, cfg.Instances),
		},
	}
}

func (a *accumulator) reject() { a.m.Rejected++ }

func (a *accumulator) dispatch(inst int, r workload.Request) {
	a.m.Dispatched++
	a.m.PerInstance[inst].Dispatched++
	a.m.PerInstance[inst].DispatchedTokens += r.PromptLen + r.GenLen
}

func (a *accumulator) complete(inst int, cp serving.Completion) {
	a.m.Completed++
	a.m.PerInstance[inst].Completed++
	if cp.Preemptions > 0 {
		a.m.PreemptedRequests++
	}
	ttft := (cp.FirstTokenUs - cp.Req.ArrivalUs) / 1e6
	tpot := 0.0
	if cp.Req.GenLen > 0 {
		tpot = (cp.DoneUs - cp.FirstTokenUs) / 1e6 / float64(cp.Req.GenLen)
	}
	a.ttft = append(a.ttft, ttft)
	a.tpot = append(a.tpot, tpot)
	a.e2e = append(a.e2e, (cp.DoneUs-cp.Req.ArrivalUs)/1e6)
	if ttft*1e6 <= a.cfg.TTFTSLOUs && tpot*1e6 <= a.cfg.TPOTSLOUs {
		a.good++
	}
	a.genTok += int64(cp.Req.GenLen)
	a.prompt += int64(cp.Req.PromptLen)
	a.cached += int64(cp.CachedPrefixTokens)
}

func (a *accumulator) finish(engines []*serving.Engine) Metrics {
	m := a.m
	var makespanUs float64
	var thrash, swapIns int
	busy := make([]float64, len(engines))
	m.Cancelled = 0
	for i, e := range engines {
		m.Cancelled += e.CancelledSessions()
		if t := float64(e.Clock()); t > makespanUs {
			makespanUs = t
		}
		busy[i] = e.BusyTime().Seconds()
		m.PerInstance[i].BusySeconds = busy[i]
		r := e.Result()
		m.Preemptions += r.Preemptions
		m.SwapOutBytes += r.Offload.SwapOutBytes
		m.SwapInBytes += r.Offload.SwapInBytes
		m.SwapStallSeconds += r.OffloadStallSeconds
		m.HostPrefixHits += r.Offload.PrefixHits
		thrash += r.Offload.ThrashEvents
		swapIns += r.Offload.SwapIns
	}
	if swapIns > 0 {
		m.ThrashRate = float64(thrash) / float64(swapIns)
	}
	m.ElapsedSeconds = makespanUs / 1e6
	if m.ElapsedSeconds > 0 {
		m.ThroughputTokensPerSec = float64(a.genTok) / m.ElapsedSeconds
		m.GoodputReqPerSec = float64(a.good) / m.ElapsedSeconds
		for i := range m.PerInstance {
			m.PerInstance[i].Utilization = busy[i] / m.ElapsedSeconds
		}
	}
	if m.Dispatched > 0 {
		m.GoodputFrac = float64(a.good) / float64(m.Dispatched)
	}
	m.TTFT = quantilesOf(a.ttft)
	m.TPOT = quantilesOf(a.tpot)
	m.E2E = quantilesOf(a.e2e)
	if a.prompt > 0 {
		m.PrefixCacheHitFrac = float64(a.cached) / float64(a.prompt)
	}

	var s stats.Summary
	for _, b := range busy {
		s.Add(b)
	}
	m.MeanUtilization = meanOf(m.PerInstance)
	if s.Mean() > 0 {
		// population-style CV over per-instance busy time
		m.LoadImbalanceCV = math.Sqrt(s.Var()*float64(s.N()-1)/float64(s.N())) / s.Mean()
	}
	return m
}

func meanOf(insts []InstanceStats) float64 {
	if len(insts) == 0 {
		return 0
	}
	var sum float64
	for _, is := range insts {
		sum += is.Utilization
	}
	return sum / float64(len(insts))
}
