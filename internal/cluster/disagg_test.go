package cluster

import (
	"context"
	"math"
	"reflect"
	"testing"

	"diffkv/internal/baselines"
	"diffkv/internal/disagg"
	"diffkv/internal/faults"
	"diffkv/internal/gpusim"
	"diffkv/internal/quant"
	"diffkv/internal/synth"
	"diffkv/internal/trace"
	"diffkv/internal/workload"
)

// newDisaggCluster builds a 4-instance manager-mode cluster split 2:2
// into prefill and decode pools under the disagg-aware policy.
func newDisaggCluster(t *testing.T, mutate func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Instances: 4,
		Policy:    PolicyDisaggAware,
		Seed:      7,
		Disagg:    &disagg.Config{PrefillInstances: 2, DecodeInstances: 2},
	}
	cfg.Engine.Model = synth.Llama3_8B
	cfg.Engine.Cluster = gpusim.NewCluster(gpusim.L40(), 1)
	cfg.Engine.Traits = baselines.TraitsDiffKV(0.3)
	cfg.Engine.UseManager = true
	cfg.Engine.HiFrac = 0.2
	cfg.Engine.LoFrac = 0.25
	cfg.Engine.MaxGenLen = 256
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func disaggReqs(n int, rate float64, seed uint64) []workload.Request {
	gen := workload.NewRequestGen(workload.MMLU, 256, seed)
	var out []workload.Request
	tm := 0.0
	for i := 0; i < n; i++ {
		tm += 1e6 / rate
		out = append(out, gen.Next(tm))
	}
	return out
}

func TestDisaggConfigValidation(t *testing.T) {
	// pools exceeding the fleet
	if _, err := New(func() Config {
		cfg := Config{Instances: 2, Seed: 1, Disagg: &disagg.Config{PrefillInstances: 2, DecodeInstances: 2}}
		cfg.Engine.Model = synth.Llama3_8B
		cfg.Engine.Cluster = gpusim.NewCluster(gpusim.L40(), 1)
		cfg.Engine.Traits = baselines.TraitsVLLM
		return cfg
	}()); err == nil {
		t.Fatal("expected error for pools exceeding the fleet")
	}
	// empty pool
	if err := (disagg.Config{PrefillInstances: 0, DecodeInstances: 2}).Validate(4); err == nil {
		t.Fatal("expected error for an empty prefill pool")
	}
	// faults + disagg is rejected (transfer re-routing is not modeled)
	if _, err := New(func() Config {
		cfg := Config{Instances: 4, Seed: 1, Disagg: &disagg.Config{PrefillInstances: 2, DecodeInstances: 2}}
		cfg.Engine.Model = synth.Llama3_8B
		cfg.Engine.Cluster = gpusim.NewCluster(gpusim.L40(), 1)
		cfg.Engine.Traits = baselines.TraitsVLLM
		cfg.Faults = &faults.Plan{Crashes: []faults.Crash{{Inst: 1, AtSec: 1}}}
		return cfg
	}()); err == nil {
		t.Fatal("expected error combining fault injection with disaggregation")
	}
}

func TestDisaggRoles(t *testing.T) {
	cfg := disagg.Config{PrefillInstances: 1, DecodeInstances: 2}
	want := []disagg.Role{disagg.RolePrefill, disagg.RoleDecode, disagg.RoleDecode, disagg.RoleMixed}
	if got := cfg.Roles(4); !reflect.DeepEqual(got, want) {
		t.Fatalf("roles %v, want %v", got, want)
	}
}

func TestDisaggSplit(t *testing.T) {
	pre, handoff := disagg.Split(workload.Request{ID: 9, PromptLen: 100, GenLen: 40, ArrivalUs: 5})
	if !handoff || pre.GenLen != 1 || pre.ID != 9 || pre.ArrivalUs != 5 {
		t.Fatalf("bad split: %+v handoff=%v", pre, handoff)
	}
	// a single-token request is whole: no handoff
	if _, handoff := disagg.Split(workload.Request{ID: 1, GenLen: 1}); handoff {
		t.Fatal("GenLen 1 must not hand off")
	}
}

func TestDisaggTransferQueueOrder(t *testing.T) {
	var q disagg.Queue
	q.Push(disagg.Transfer{SeqID: 2, DueUs: 50})
	q.Push(disagg.Transfer{SeqID: 3, DueUs: 10})
	q.Push(disagg.Transfer{SeqID: 1, DueUs: 50})
	if due, ok := q.NextDue(); !ok || due != 10 {
		t.Fatalf("next due %v %v, want 10", due, ok)
	}
	var order []int
	for {
		tr, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, tr.SeqID)
	}
	// due order, sequence ID breaking the 50µs tie
	if !reflect.DeepEqual(order, []int{3, 1, 2}) {
		t.Fatalf("drain order %v, want [3 1 2]", order)
	}
}

// TestDisaggRunCompletesAndShips is the cluster-level liveness pin: every
// dispatched request completes exactly once (on the decode side), each
// multi-token request ships exactly one compressed KV payload from the
// prefill pool to the decode pool, and the per-link ledger telescopes to
// the total.
func TestDisaggRunCompletesAndShips(t *testing.T) {
	c := newDisaggCluster(t, nil)
	reqs := disaggReqs(48, 10, 21)
	m, err := c.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stuck() != 0 {
		t.Fatalf("%d dispatched requests never completed", m.Stuck())
	}
	if m.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", m.Completed, len(reqs))
	}
	handoffs := 0
	for _, r := range reqs {
		if r.GenLen > 1 {
			handoffs++
		}
	}
	if m.Disagg == nil {
		t.Fatal("disagg metrics missing")
	}
	if m.Disagg.Transfers != handoffs {
		t.Fatalf("transfers %d, want one per multi-token request (%d)", m.Disagg.Transfers, handoffs)
	}
	if m.Disagg.KVBytesShipped <= 0 || m.Disagg.XferSeconds <= 0 {
		t.Fatalf("degenerate shipment accounting: %+v", m.Disagg)
	}
	var linkBytes int64
	var linkN int
	for _, lb := range m.Disagg.Links {
		if lb.From < 1 || lb.From > 2 || lb.To < 3 || lb.To > 4 {
			t.Fatalf("link %+v crosses pool boundaries (prefill 1-2, decode 3-4)", lb)
		}
		linkBytes += lb.Bytes
		linkN += lb.Transfers
	}
	if linkBytes != m.Disagg.KVBytesShipped || linkN != m.Disagg.Transfers {
		t.Fatalf("ledger does not telescope: %d/%d bytes, %d/%d transfers",
			linkBytes, m.Disagg.KVBytesShipped, linkN, m.Disagg.Transfers)
	}
	for i, is := range m.PerInstance {
		wantRole := "prefill"
		if i >= 2 {
			wantRole = "decode"
		}
		if is.Role != wantRole {
			t.Fatalf("instance %d role %q, want %q", i+1, is.Role, wantRole)
		}
	}
	// requests enter through the prefill pool, leave through the decode pool
	if m.PerInstance[2].Completed+m.PerInstance[3].Completed != m.Completed {
		t.Fatalf("completions should all land on the decode pool: %+v", m.PerInstance)
	}
	if m.PerInstance[0].Dispatched+m.PerInstance[1].Dispatched != m.Dispatched {
		t.Fatalf("dispatches should all land on the prefill pool: %+v", m.PerInstance)
	}
}

// TestDisaggDeterministic pins bit-identical timelines: two runs of the
// same seeded scenario yield identical metrics and identical trace
// event streams.
func TestDisaggDeterministic(t *testing.T) {
	run := func() (Metrics, []trace.Event) {
		col := trace.NewCollector(0)
		c := newDisaggCluster(t, func(cfg *Config) { cfg.Tracer = col })
		m, err := c.Run(disaggReqs(32, 12, 33))
		if err != nil {
			t.Fatal(err)
		}
		return m, col.Events()
	}
	m1, ev1 := run()
	m2, ev2 := run()
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("metrics differ across identical runs:\n%+v\n%+v", m1, m2)
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("trace streams differ across identical runs (%d vs %d events)", len(ev1), len(ev2))
	}
}

// TestDisaggPhaseTelescoping pins the cross-instance accounting: a
// handed-off request's phase breakdown — prefill-side phases, the
// xfer:inst wire time, decode-side queue and decode — sums to its
// end-to-end latency within 1µs, and TTFT stays honestly attributed to
// the prefill instance (first token precedes the KV shipment).
func TestDisaggPhaseTelescoping(t *testing.T) {
	col := trace.NewCollector(0)
	c := newDisaggCluster(t, func(cfg *Config) { cfg.Tracer = col })
	reqs := disaggReqs(24, 10, 55)
	ctx := context.Background()
	for _, r := range reqs {
		if _, err := c.Open(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	var done int
	for {
		cps, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		for _, cp := range cps {
			done++
			e2e := cp.DoneUs - cp.Req.ArrivalUs
			if d := math.Abs(cp.Phases.TotalUs() - e2e); d > 1 {
				t.Fatalf("request %d: phases sum %.3fµs != e2e %.3fµs (|Δ|=%.3fµs > 1µs)",
					cp.Req.ID, cp.Phases.TotalUs(), e2e, d)
			}
			if cp.Req.GenLen > 1 {
				if cp.Phases.XferUs <= 0 {
					t.Fatalf("request %d: handed-off completion has no xfer:inst time: %+v",
						cp.Req.ID, cp.Phases)
				}
				if cp.Inst != 3 && cp.Inst != 4 {
					t.Fatalf("request %d completed on instance %d, want decode pool (3-4)",
						cp.Req.ID, cp.Inst)
				}
			}
			if cp.FirstTokenUs <= cp.Req.ArrivalUs || cp.FirstTokenUs >= cp.DoneUs {
				t.Fatalf("request %d: TTFT %v outside (%v, %v)",
					cp.Req.ID, cp.FirstTokenUs, cp.Req.ArrivalUs, cp.DoneUs)
			}
		}
		if !c.HasWork() {
			break
		}
	}
	if done != len(reqs) {
		t.Fatalf("completed %d of %d", done, len(reqs))
	}
	// honest TTFT: the first token exists before its KV ships
	ship := map[int]float64{}
	for _, ev := range col.Events() {
		if ev.Kind == trace.KindKVShip {
			ship[ev.Seq] = ev.TimeUs
			if ev.Bytes <= 0 || ev.DurUs <= 0 {
				t.Fatalf("kv_ship without payload accounting: %+v", ev)
			}
			if ev.Note == "" {
				t.Fatalf("kv_ship without link note: %+v", ev)
			}
		}
	}
	if len(ship) == 0 {
		t.Fatal("no kv_ship events traced")
	}
}

// TestDisaggCompressionCutsWireBytes pins the paper's economics at the
// fleet level: the same workload on the same pool split ships at most
// 1/3 the KV bytes when pages are stored K4V2 instead of FP16.
func TestDisaggCompressionCutsWireBytes(t *testing.T) {
	run := func(hi, lo quant.Precision) int64 {
		c := newDisaggCluster(t, func(cfg *Config) {
			cfg.Engine.HiPrec = hi
			cfg.Engine.LoPrec = lo
		})
		m, err := c.Run(disaggReqs(32, 10, 77))
		if err != nil {
			t.Fatal(err)
		}
		if m.Stuck() != 0 {
			t.Fatalf("%d stuck requests", m.Stuck())
		}
		return m.Disagg.KVBytesShipped
	}
	fp16 := run(quant.FP16, quant.FP16)
	k4v2 := run(quant.K4V2, quant.K4V2)
	if 3*k4v2 > fp16 {
		t.Fatalf("K4V2 wire bytes %d not <= 1/3 of FP16 %d", k4v2, fp16)
	}
}
