package cluster

// Failure recovery: the cluster half of the fault-injection layer. An
// internal/faults Injector expands the scenario's fault plan into a
// deterministic timeline of crash / restart / slowdown events; the
// event loop interleaves them with arrivals and instance steps in
// global timestamp order (faults first at equal times, so a crash at
// the instant of an arrival is visible to its routing decision). A
// crash marks the instance down, loses its GPU KV state and orphans its
// requests into a re-dispatch queue drained with exponential backoff
// under a per-request retry budget; sequences swapped to the host tier
// survive a crash-with-restart and resume when the instance returns.

import (
	"fmt"
	"math"
	"sort"

	"diffkv/internal/faults"
	"diffkv/internal/serving"
	"diffkv/internal/trace"
)

// Health is an instance's fault-injection state.
type Health string

// Instance health states: a Healthy instance serves normally, a
// Degraded one is up but slowed (the router down-weights it), a Down
// one is crashed and excluded from routing until its restart.
const (
	Healthy  Health = "healthy"
	Degraded Health = "degraded"
	Down     Health = "down"
)

// redispatch is one crash orphan awaiting re-dispatch at dueUs (its
// backoff deadline). fromInst is the 1-based instance it was lost from,
// keeping terminal-failure trace events in that residency's span tree.
// waits counts re-dispatch attempts that found no live instance.
type redispatch struct {
	o        serving.Orphan
	dueUs    float64
	fromInst int
	waits    int
}

// down reports whether instance i (0-based) is crashed.
func (c *Cluster) down(i int) bool {
	return c.health != nil && c.health[i] == Down
}

// InstanceHealth returns instance i's (0-based) health state.
func (c *Cluster) InstanceHealth(i int) Health {
	if c.health == nil {
		return Healthy
	}
	return c.health[i]
}

// redispatchDue returns the earliest re-dispatch deadline (Inf when the
// queue is empty).
func (c *Cluster) redispatchDue() float64 {
	if len(c.redispatchQ) == 0 {
		return math.Inf(1)
	}
	return c.redispatchQ[0].dueUs
}

// faultDue returns the next fault-event time, Inf when the injector is
// exhausted or the cluster has nothing left for faults to affect —
// an idle cluster does not churn through the remaining fault timeline.
func (c *Cluster) faultDue() float64 {
	if c.inj == nil {
		return math.Inf(1)
	}
	at, ok := c.inj.NextAt()
	if !ok {
		return math.Inf(1)
	}
	if !c.engineWork() && len(c.redispatchQ) == 0 {
		return math.Inf(1)
	}
	return at
}

// engineWork reports whether any instance — down ones included, whose
// kept swapped sequences only drain after a restart — holds work.
func (c *Cluster) engineWork() bool {
	for _, e := range c.engines {
		if e.HasWork() {
			return true
		}
	}
	return false
}

// advanceFaults processes every fault event due at or before tUs, so a
// session-mode Open at tUs routes against current instance health.
func (c *Cluster) advanceFaults(tUs float64) error {
	for c.inj != nil {
		at, ok := c.inj.NextAt()
		if !ok || at > tUs {
			return nil
		}
		if err := c.processFault(); err != nil {
			return err
		}
	}
	return nil
}

// processFault applies the injector's next event (fault-event instance
// tags are 1-based, engine indexes 0-based).
func (c *Cluster) processFault() error {
	ev := c.inj.Pop()
	i := ev.Inst - 1
	switch ev.Op {
	case faults.OpCrash:
		return c.processCrash(ev)
	case faults.OpRestart:
		c.engines[i].Restart(ev.AtUs)
		c.health[i] = Healthy
		c.restarts++
		c.emit(trace.Event{Kind: trace.KindHealth, TimeUs: ev.AtUs, Inst: i + 1, Note: string(Healthy)})
		// sequences the host tier carried through the crash resume now
		// instead of recomputing — the measurable crash-insurance payoff
		for _, id := range c.engines[i].SwappedIDs() {
			c.swapRecovered++
			c.emit(trace.Event{Kind: trace.KindRecover, TimeUs: ev.AtUs, Seq: id, Inst: i + 1})
		}
	case faults.OpSlow:
		c.engines[i].SetSlowFactor(ev.Factor)
		c.health[i] = Degraded
		c.emit(trace.Event{Kind: trace.KindHealth, TimeUs: ev.AtUs, Inst: i + 1, Note: string(Degraded)})
	case faults.OpSlowEnd:
		c.engines[i].SetSlowFactor(1)
		if c.health[i] == Degraded {
			c.health[i] = Healthy
		}
		c.emit(trace.Event{Kind: trace.KindHealth, TimeUs: ev.AtUs, Inst: i + 1, Note: string(Healthy)})
	default:
		return fmt.Errorf("cluster: unknown fault op %q", ev.Op)
	}
	return nil
}

// processCrash takes instance ev.Inst down: its GPU KV state is lost,
// its queued and in-flight requests are orphaned into the re-dispatch
// queue (or terminally failed when their retry budget is spent), and —
// when the timeline holds a restart — its host-tier-swapped sequences
// are kept as crash insurance.
func (c *Cluster) processCrash(ev faults.Event) error {
	i := ev.Inst - 1
	keep := c.inj.HasRestart(ev.Inst)
	rep, err := c.engines[i].Crash(ev.AtUs, keep)
	if err != nil {
		return fmt.Errorf("cluster: crash instance %d: %w", i+1, err)
	}
	c.health[i] = Down
	c.crashes++
	c.lostKV += rep.LostKVBytes
	c.emit(trace.Event{Kind: trace.KindHealth, TimeUs: ev.AtUs, Inst: i + 1, Note: string(Down)})
	budget := c.inj.RetryBudget()
	for _, o := range rep.Orphans {
		c.emit(trace.Event{Kind: trace.KindRetry, TimeUs: ev.AtUs, Seq: o.Req.ID, Inst: i + 1, Note: "crash"})
		if o.Attempts > budget {
			c.fail(o, ev.AtUs, i+1, "retry budget exhausted")
			continue
		}
		c.enqueueRedispatch(redispatch{
			o:        o,
			dueUs:    ev.AtUs + c.inj.Backoff(o.Attempts),
			fromInst: i + 1,
		})
	}
	return nil
}

// enqueueRedispatch inserts rd keeping the queue ordered by deadline
// (ties keep insertion order, which is itself deterministic).
func (c *Cluster) enqueueRedispatch(rd redispatch) {
	i := sort.Search(len(c.redispatchQ), func(i int) bool {
		return c.redispatchQ[i].dueUs > rd.dueUs
	})
	c.redispatchQ = append(c.redispatchQ, redispatch{})
	copy(c.redispatchQ[i+1:], c.redispatchQ[i:])
	c.redispatchQ[i] = rd
}

// processRedispatch re-dispatches the queue head to the least-loaded
// live instance. When every instance is down the orphan goes back on
// the queue with another backoff — each such wait consumes retry
// budget, so requests cannot circulate forever through a dead fleet.
func (c *Cluster) processRedispatch() error {
	rd := c.redispatchQ[0]
	c.redispatchQ = c.redispatchQ[1:]
	idx, ok := c.routeRedispatch()
	if !ok {
		rd.waits++
		if rd.o.Attempts+rd.waits > c.inj.RetryBudget() {
			c.fail(rd.o, rd.dueUs, rd.fromInst, "no live instances")
			return nil
		}
		rd.dueUs += c.inj.Backoff(rd.o.Attempts + rd.waits)
		c.enqueueRedispatch(rd)
		return nil
	}
	if err := c.engines[idx].Readmit(rd.o, rd.dueUs); err != nil {
		return fmt.Errorf("cluster: redispatch request %d to instance %d: %w", rd.o.Req.ID, idx+1, err)
	}
	c.redispatchN++
	c.perInstRedisp[idx]++
	c.observe(rd.o.Req, idx)
	c.emit(trace.Event{Kind: trace.KindDispatch, TimeUs: rd.dueUs, Seq: rd.o.Req.ID, Inst: idx + 1, Note: "redispatch"})
	return nil
}

// routeRedispatch picks the least-loaded live instance for a crash
// orphan. Unlike first-dispatch routing it ignores MaxQueueDepth — an
// already-admitted request is never shed by saturation, only by its
// retry budget.
func (c *Cluster) routeRedispatch() (int, bool) {
	best, ok := Snapshot{}, false
	for i, e := range c.engines {
		if c.down(i) {
			continue
		}
		s := Snapshot{
			ID:             i,
			QueueDepth:     e.QueueDepth(),
			Running:        e.RunningCount(),
			ResidentTokens: e.ResidentTokens(),
			SwappedTokens:  e.SwappedTokens(),
			ClockUs:        float64(e.Clock()),
			Degraded:       c.health[i] == Degraded,
		}
		if !ok || less(s, best) {
			best, ok = s, true
		}
	}
	return best.ID, ok
}

// fail terminally accounts a crash orphan that ran out of retries: the
// failure is counted, traced into the span tree of its last residency,
// and its session (if any) aborted with serving.ErrFailed.
func (c *Cluster) fail(o serving.Orphan, tUs float64, inst int, reason string) {
	c.failedN++
	c.emit(trace.Event{Kind: trace.KindFail, TimeUs: tUs, Seq: o.Req.ID, Inst: inst, Note: reason})
	if o.Sess != nil {
		o.Sess.Abort(serving.ErrFailed)
	}
}
