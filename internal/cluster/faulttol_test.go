package cluster

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"diffkv/internal/baselines"
	"diffkv/internal/faults"
	"diffkv/internal/gpusim"
	"diffkv/internal/offload"
	"diffkv/internal/serving"
	"diffkv/internal/synth"
	"diffkv/internal/trace"
	"diffkv/internal/workload"
)

// chaosCluster builds a fault-injected cluster. Oversubscribed
// manager-mode engines (small KV budget, long generations) so crashes
// land on instances with real in-flight and swapped state.
func chaosCluster(t *testing.T, plan *faults.Plan, mutate func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Instances: 3,
		Policy:    PolicyLeastLoaded,
		Seed:      17,
		Faults:    plan,
	}
	cfg.Engine = serving.Config{
		Model: synth.Llama3_8B, Cluster: gpusim.NewCluster(gpusim.L40(), 1),
		Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
		HiFrac: 0.25, LoFrac: 0.3,
		MemoryReserve: 0.985, MaxGenLen: 2048,
		PreemptPolicy: offload.PolicySwap, HostMemoryBytes: 2 << 30,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// chaosReqs samples long-generation requests arriving at rate req/s —
// enough pressure that instances hold queued, running and swapped work
// when crashes land.
func chaosReqs(n int, rate float64, seed uint64) []workload.Request {
	gen := workload.NewRequestGen(workload.MATH, 2048, seed)
	reqs := gen.CoTBatch(n)
	t := 0.0
	for i := range reqs {
		t += 1e6 / rate
		reqs[i].ArrivalUs = t
	}
	return reqs
}

// churnPlan crashes two of three instances mid-run (both restart) and
// degrades the third — the liveness gauntlet.
func churnPlan(seed uint64) *faults.Plan {
	return &faults.Plan{
		Seed: seed,
		Crashes: []faults.Crash{
			{Inst: 1, AtSec: 2, DownSec: 4},
			{Inst: 2, AtSec: 5, DownSec: 3},
		},
		Slowdowns: []faults.Slowdown{{Inst: 3, AtSec: 1, DurSec: 6, Factor: 2.5}},
	}
}

// The h-liveness invariant under crash/restart churn: every dispatched
// request reaches a terminal state — completed, or terminally failed
// with its retry budget spent — and the fault machinery visibly ran.
func TestChaosLivenessUnderChurn(t *testing.T) {
	col := trace.NewCollector(0)
	c := chaosCluster(t, churnPlan(99), func(cfg *Config) { cfg.Tracer = col })
	reqs := chaosReqs(36, 6, 5)
	m, err := c.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dispatched != len(reqs) {
		t.Fatalf("dispatched %d of %d", m.Dispatched, len(reqs))
	}
	if m.Stuck() != 0 {
		t.Fatalf("liveness violated: %d requests unaccounted (completed %d, failed %d of %d)",
			m.Stuck(), m.Completed, m.Failed, m.Dispatched)
	}
	if m.Crashes != 2 || m.Restarts != 2 {
		t.Fatalf("crashes/restarts %d/%d, want 2/2", m.Crashes, m.Restarts)
	}
	if m.Redispatches == 0 {
		t.Fatal("crashes with queued work re-dispatched nothing")
	}
	if m.LostKVBytes <= 0 {
		t.Fatal("crashes of busy instances lost no KV bytes")
	}
	s := col.Summarize()
	if s.Counts[trace.KindHealth] < 6 { // 2 crashes + 2 restarts + slow + slow_end
		t.Fatalf("health transitions %d, want >= 6", s.Counts[trace.KindHealth])
	}
	if s.Counts[trace.KindRetry] == 0 {
		t.Fatal("no retry events for crash orphans")
	}
	if s.Counts[trace.KindComplete] != m.Completed || s.Counts[trace.KindFail] != m.Failed {
		t.Fatalf("trace terminal counts (%d complete, %d fail) disagree with metrics (%d, %d)",
			s.Counts[trace.KindComplete], s.Counts[trace.KindFail], m.Completed, m.Failed)
	}
}

// The same plan and seed must reproduce the identical event stream —
// the fault-injection determinism contract (completion and failure
// sets included, since those are trace events).
func TestChaosDeterministicEventStream(t *testing.T) {
	run := func() []trace.Event {
		col := trace.NewCollector(0)
		plan := churnPlan(99)
		plan.CrashRatePerMin = 2
		plan.HorizonSec = 30
		plan.PCIeErrorRate = 0.05
		c := chaosCluster(t, plan, func(cfg *Config) { cfg.Tracer = col })
		if _, err := c.Run(chaosReqs(30, 6, 5)); err != nil {
			t.Fatal(err)
		}
		return col.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event streams differ in length: %d vs %d", len(a), len(b))
	}
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("event %d differs:\n  %+v\n  %+v", i, a[i], b[i])
			}
		}
	}
}

// Host-tier crash insurance: a crash-with-restart keeps swapped
// sequences in host memory, and they resume after the restart instead
// of being re-dispatched — visible as SwapRecovered > 0 and recover
// trace events.
func TestChaosSwapInsuranceRecovers(t *testing.T) {
	col := trace.NewCollector(0)
	// crash late enough that oversubscription has swapped sequences out;
	// a burst arrival (CoTBatch leaves ArrivalUs 0) oversubscribes both
	// instances immediately
	plan := &faults.Plan{
		Seed:    7,
		Crashes: []faults.Crash{{Inst: 1, AtSec: 20, DownSec: 5}},
	}
	c := chaosCluster(t, plan, func(cfg *Config) {
		cfg.Instances = 2
		cfg.Tracer = col
	})
	m, err := c.Run(workload.NewRequestGen(workload.MATH, 2048, 11).CoTBatch(40))
	if err != nil {
		t.Fatal(err)
	}
	if m.Stuck() != 0 {
		t.Fatalf("liveness violated: %d unaccounted", m.Stuck())
	}
	if m.SwapRecovered == 0 {
		t.Skip("crash landed on an instance with nothing swapped (workload did not oversubscribe)")
	}
	recovers := 0
	for _, ev := range col.Events() {
		if ev.Kind == trace.KindRecover {
			recovers++
			if ev.Inst != 1 {
				t.Fatalf("recover event on instance %d, want crashed instance 1", ev.Inst)
			}
		}
	}
	if recovers != m.SwapRecovered {
		t.Fatalf("recover events %d != SwapRecovered %d", recovers, m.SwapRecovered)
	}
}

// A permanent crash with a zero retry budget terminally fails the
// stranded requests; with session handles they abort with ErrFailed.
func TestChaosRetryBudgetExhaustionFailsSessions(t *testing.T) {
	plan := &faults.Plan{
		Seed:        3,
		Crashes:     []faults.Crash{{Inst: 1, AtSec: 1}}, // permanent: no DownSec
		RetryBudget: -1,                                  // no retries at all
	}
	c := chaosCluster(t, plan, func(cfg *Config) { cfg.Instances = 1 })
	var sessions []*serving.Session
	for _, r := range chaosReqs(6, 20, 13) {
		s, err := c.Open(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	if err := c.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Stuck() != 0 {
		t.Fatalf("liveness violated: %d unaccounted", m.Stuck())
	}
	if m.Failed == 0 {
		t.Fatal("permanent crash with no retry budget failed nothing")
	}
	failed := 0
	for _, s := range sessions {
		if !s.Finished() {
			t.Fatalf("session %d not finished after drain", s.ID())
		}
		if _, err := s.Completion(); errors.Is(err, serving.ErrFailed) {
			failed++
		}
	}
	if failed != m.Failed {
		t.Fatalf("%d sessions ended ErrFailed, metrics say %d", failed, m.Failed)
	}
}

// Session-mode churn: crashes with restarts and live sessions — every
// session reaches a terminal state and re-dispatched requests complete
// on survivors with honest Attempts counts.
func TestChaosSessionsSurviveRedispatch(t *testing.T) {
	c := chaosCluster(t, churnPlan(41), nil)
	var sessions []*serving.Session
	for _, r := range chaosReqs(24, 8, 7) {
		s, err := c.Open(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	if err := c.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Stuck() != 0 {
		t.Fatalf("liveness violated: %d unaccounted", m.Stuck())
	}
	redispatched := 0
	for _, s := range sessions {
		if !s.Finished() {
			t.Fatalf("session %d not finished after drain", s.ID())
		}
		cp, err := s.Completion()
		if err != nil {
			if !errors.Is(err, serving.ErrFailed) {
				t.Fatalf("session %d ended with unexpected error %v", s.ID(), err)
			}
			continue
		}
		if cp.Attempts > 1 {
			redispatched++
			if len(cp.RetryUs) == 0 {
				t.Fatalf("req %d attempts %d but empty retry record", cp.Req.ID, cp.Attempts)
			}
		}
	}
	if m.Redispatches > 0 && redispatched == 0 && m.Failed == 0 {
		t.Fatal("re-dispatches happened but no completion shows Attempts > 1")
	}
}

// Stuck must treat terminally-failed requests as accounted for — the
// regression the Failed field fixes.
func TestStuckCountsFailedAsAccounted(t *testing.T) {
	m := Metrics{Dispatched: 10, Completed: 7, Cancelled: 1, Failed: 2}
	if got := m.Stuck(); got != 0 {
		t.Fatalf("Stuck() = %d with full terminal accounting, want 0", got)
	}
	m.Failed = 0
	if got := m.Stuck(); got != 2 {
		t.Fatalf("Stuck() = %d with 2 unaccounted, want 2", got)
	}
}

// The degraded-instance penalty must steer least-loaded routing away
// from a slowed instance until healthy instances are much busier.
func TestRouterDownWeightsDegraded(t *testing.T) {
	p := NewLeastLoaded()
	snaps := []Snapshot{
		{ID: 0, Running: 2, Degraded: true},
		{ID: 1, Running: 5},
	}
	if got := p.Pick(workload.Request{}, snaps); got != 1 {
		t.Fatalf("picked degraded instance over a busier healthy one (got %d)", got)
	}
	// but a degraded instance still wins against a far busier fleet
	snaps = []Snapshot{
		{ID: 0, Running: 0, Degraded: true},
		{ID: 1, Running: 40},
	}
	if got := p.Pick(workload.Request{}, snaps); got != 0 {
		t.Fatalf("idle degraded instance should beat a saturated healthy one (got %d)", got)
	}
}
