package cluster

// KVIndex is a prefix-hash index in the style of llm-d's prefixhashtable:
// it maps chained prompt-block hashes to the serving instances believed to
// hold those KV blocks, so the router can score instances by how much of a
// new prompt's prefix they already cache. The index is advisory — an
// instance may have evicted a block the index still advertises, which
// costs only a cache miss on the routed instance.
type KVIndex struct {
	capacity int
	entries  map[uint64]*indexEntry
}

type indexEntry struct {
	insts   map[int]float64 // instance ID → last access (us)
	lastUse float64
}

// DefaultIndexCapacity bounds the number of distinct blocks retained.
const DefaultIndexCapacity = 32768

// NewKVIndex builds an index retaining at most capacity blocks
// (<=0 selects DefaultIndexCapacity).
func NewKVIndex(capacity int) *KVIndex {
	if capacity <= 0 {
		capacity = DefaultIndexCapacity
	}
	return &KVIndex{capacity: capacity, entries: make(map[uint64]*indexEntry)}
}

// Len returns the number of retained blocks.
func (x *KVIndex) Len() int { return len(x.entries) }

// Add records that inst now holds the KV of every block in hashes,
// evicting least-recently-used blocks beyond capacity.
func (x *KVIndex) Add(hashes []uint64, inst int, nowUs float64) {
	for _, h := range hashes {
		e := x.entries[h]
		if e == nil {
			e = &indexEntry{insts: make(map[int]float64, 2)}
			x.entries[h] = e
		}
		e.insts[inst] = nowUs
		e.lastUse = nowUs
	}
	for len(x.entries) > x.capacity {
		x.evictOldest()
	}
}

// evictOldest removes the least-recently-used block (ties broken by lowest
// hash for determinism).
func (x *KVIndex) evictOldest() {
	var victim uint64
	first := true
	var victimT float64
	//diffkv:allow maprange -- min-scan with total-order tie-break (lastUse, then lowest hash): same victim whatever the walk order
	for h, e := range x.entries {
		if first || e.lastUse < victimT || (e.lastUse == victimT && h < victim) {
			victim, victimT = h, e.lastUse
			first = false
		}
	}
	if !first {
		delete(x.entries, victim)
	}
}

// Matches scores each instance by how many consecutive leading blocks of
// the hash sequence it holds (llm-d early-stop semantics: scoring for an
// instance ends at its first missing block, and the scan ends at the first
// block no instance holds).
func (x *KVIndex) Matches(hashes []uint64) map[int]int {
	counts := make(map[int]int)
	var alive map[int]bool
	for i, h := range hashes {
		e := x.entries[h]
		if e == nil {
			break
		}
		if i == 0 {
			alive = make(map[int]bool, len(e.insts))
			//diffkv:allow maprange -- per-key map writes, no cross-key state: result set is order-independent
			for inst := range e.insts {
				alive[inst] = true
				counts[inst] = 1
			}
		} else {
			//diffkv:allow maprange -- per-key increment/delete, no cross-key state; callers index the result by instance ID
			for inst := range alive {
				if _, ok := e.insts[inst]; ok {
					counts[inst]++
				} else {
					delete(alive, inst)
				}
			}
		}
		if len(alive) == 0 {
			break
		}
	}
	return counts
}
