package cluster

import (
	"context"
	"errors"
	"testing"

	"diffkv/internal/baselines"
	"diffkv/internal/gpusim"
	"diffkv/internal/serving"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

func sessionCfg(instances int) Config {
	return Config{
		Instances: instances,
		Engine: serving.Config{
			Model:   synth.Llama3_8B,
			Cluster: gpusim.NewCluster(gpusim.L40(), 1),
			Traits:  baselines.TraitsVLLM,
		},
		Policy: PolicyRoundRobin,
		Seed:   17,
	}
}

// TestClusterSessions drives a cluster through the session API: requests
// opened online, one cancelled mid-flight, the rest draining, with the
// metrics accounting exactly — Cancelled tracked, liveness (Stuck == 0)
// preserved.
func TestClusterSessions(t *testing.T) {
	c, err := New(sessionCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	var sessions []*serving.Session
	for i := 0; i < 6; i++ {
		s, err := c.Open(context.Background(),
			workload.Request{PromptLen: 256, GenLen: 32})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	// interleave: advance a few steps, then cancel one session online
	for i := 0; i < 3; i++ {
		if _, err := c.StepNext(); err != nil {
			t.Fatal(err)
		}
	}
	sessions[4].Cancel()
	if err := c.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Submitted != 6 || m.Dispatched != 6 {
		t.Fatalf("submitted %d dispatched %d", m.Submitted, m.Dispatched)
	}
	if m.Completed != 5 || m.Cancelled != 1 {
		t.Fatalf("completed %d cancelled %d", m.Completed, m.Cancelled)
	}
	if m.Stuck() != 0 {
		t.Fatalf("stuck %d", m.Stuck())
	}
	if _, err := sessions[4].Completion(); !errors.Is(err, serving.ErrCancelled) {
		t.Fatalf("cancelled session error = %v", err)
	}
	for i, s := range sessions {
		if i == 4 {
			continue
		}
		if _, err := s.Completion(); err != nil {
			t.Fatalf("session %d failed: %v", i, err)
		}
	}
	// round-robin spread both instances
	for i, is := range m.PerInstance {
		if is.Dispatched != 3 {
			t.Fatalf("instance %d dispatched %d, want 3", i, is.Dispatched)
		}
	}
}

// TestClusterOpenSheds verifies admission control on the session path:
// once every instance queue is at the bound, Open returns
// ErrAllSaturated and the reject is accounted.
func TestClusterOpenSheds(t *testing.T) {
	cfg := sessionCfg(2)
	cfg.MaxQueueDepth = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opened, shed := 0, 0
	for i := 0; i < 8; i++ {
		_, err := c.Open(context.Background(), workload.Request{PromptLen: 64, GenLen: 8})
		switch {
		case err == nil:
			opened++
		case errors.Is(err, ErrAllSaturated):
			shed++
		default:
			t.Fatal(err)
		}
	}
	if opened != 4 || shed != 4 {
		t.Fatalf("opened %d shed %d, want 4/4 at queue bound 2 x 2 instances", opened, shed)
	}
	if err := c.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Rejected != 4 || m.Completed != 4 || m.Stuck() != 0 {
		t.Fatalf("rejected %d completed %d stuck %d", m.Rejected, m.Completed, m.Stuck())
	}
}

// TestClusterRunAndOpenExclusive pins the driving-mode contract.
func TestClusterRunAndOpenExclusive(t *testing.T) {
	c, err := New(sessionCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(context.Background(), workload.Request{PromptLen: 64, GenLen: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(nil); err == nil {
		t.Fatal("Run after Open must error")
	}
	c2, err := New(sessionCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Open(context.Background(), workload.Request{PromptLen: 64, GenLen: 8}); err == nil {
		t.Fatal("Open after Run must error")
	}
}
