package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"diffkv/internal/serving"
	"diffkv/internal/workload"
)

// TestClusterLoopServesConcurrently drives a cluster through the
// always-on Loop: Opens from many goroutines land on routed instances,
// every session completes, and the loop's metrics see the fleet.
func TestClusterLoopServesConcurrently(t *testing.T) {
	c, err := New(sessionCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	l := serving.NewLoop(c, serving.LoopConfig{})
	const n = 12
	var wg sync.WaitGroup
	sessions := make([]*serving.Session, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := l.Open(context.Background(),
				workload.Request{PromptLen: 256, GenLen: 16}, nil)
			if err != nil {
				t.Errorf("open %d: %v", i, err)
				return
			}
			sessions[i] = s
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	ids := map[int]bool{}
	for i, s := range sessions {
		select {
		case <-s.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("session %d never completed", i)
		}
		// auto-assigned IDs must be fleet-unique: engines assign their
		// own ranges independently, so the cluster assigns before routing
		if ids[s.ID()] {
			t.Fatalf("duplicate auto-assigned request ID %d across instances", s.ID())
		}
		ids[s.ID()] = true
	}
	if err := l.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := l.Metrics()
	if m.Completed != n || m.Driver.Instances != 2 || m.Driver.OpenSessions != 0 {
		t.Fatalf("loop metrics: %+v", m)
	}
	if cm := c.Metrics(); cm.Completed != n || cm.Stuck() != 0 {
		t.Fatalf("cluster metrics: completed %d stuck %d", cm.Completed, cm.Stuck())
	}
}

// TestClusterLoopSheds: admission control's ErrAllSaturated passes
// through Loop.Open unwrapped (the gateway maps it to HTTP 503). The
// loop is paced far into the future so queued requests cannot drain
// between Opens, making the saturation point deterministic.
func TestClusterLoopSheds(t *testing.T) {
	cfg := sessionCfg(1)
	cfg.MaxQueueDepth = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := serving.NewLoop(c, serving.LoopConfig{TimeScale: 10})
	ctx := context.Background()
	// arrivals a simulated minute out: the paced loop executes nothing,
	// so both Opens sit in the one instance's admission queue
	r := workload.Request{ArrivalUs: 60e6, PromptLen: 128, GenLen: 8}
	for i := 0; i < cfg.MaxQueueDepth; i++ {
		if _, err := l.Open(ctx, r, nil); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	if _, err := l.Open(ctx, r, nil); !errors.Is(err, ErrAllSaturated) {
		t.Fatalf("saturated Open: got %v, want ErrAllSaturated", err)
	}
	if got := l.Metrics().Driver.Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	ctxT, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := l.Shutdown(ctxT); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown with queued future work: %v", err)
	}
}
