package synth

import (
	"math"
	"testing"

	"diffkv/internal/mathx"
)

func TestLogitsClusteringPreservesFraction(t *testing.T) {
	// The Markov clustering must keep the stationary heavy fraction.
	prof := SparsityProfile{HeavyFrac: 0.25, HeavyMu: 3, HeavySigma: 0.5, TailMu: -5, TailSigma: 1}
	rng := mathx.NewRNG(1)
	n := 200_000
	logits := prof.Logits(n, rng)
	heavy := 0
	for _, l := range logits {
		if l > -1 { // midpoint between modes
			heavy++
		}
	}
	frac := float64(heavy) / float64(n)
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("stationary heavy fraction = %v, want ~0.25", frac)
	}
}

func TestLogitsClusteringRunLength(t *testing.T) {
	// Heavy tokens must arrive in runs with mean length ≈ heavyRunLen.
	prof := SparsityProfile{HeavyFrac: 0.2, HeavyMu: 3, HeavySigma: 0.3, TailMu: -5, TailSigma: 0.5}
	rng := mathx.NewRNG(2)
	logits := prof.Logits(100_000, rng)
	var runs, runTokens int
	inRun := false
	for _, l := range logits {
		heavy := l > -1
		if heavy {
			runTokens++
			if !inRun {
				runs++
			}
		}
		inRun = heavy
	}
	if runs == 0 {
		t.Fatal("no heavy runs")
	}
	meanRun := float64(runTokens) / float64(runs)
	if meanRun < heavyRunLen*0.7 || meanRun > heavyRunLen*1.4 {
		t.Fatalf("mean run length = %v, want ~%v", meanRun, heavyRunLen)
	}
}

func TestGQAMaxBoostMonotone(t *testing.T) {
	if GQAMaxBoost(1) != 1 {
		t.Fatal("group of 1 must not boost")
	}
	prev := 1.0
	for _, g := range []int{2, 4, 7, 8} {
		b := GQAMaxBoost(g)
		if b <= prev {
			t.Fatalf("boost not monotone at group %d: %v <= %v", g, b, prev)
		}
		if b > 3 {
			t.Fatalf("boost implausibly large: %v", b)
		}
		prev = b
	}
}

func TestCheapSignificanceIdentifiesHeavy(t *testing.T) {
	rng := mathx.NewRNG(3)
	prof := SparsityProfile{HeavyFrac: 0.1, HeavyMu: 3.5, HeavySigma: 0.3, TailMu: -5, TailSigma: 0.5}
	data := GenHead(Llama3_8B, prof, 512, rng)
	sig := data.CheapSignificance(Llama3_8B, rng.SplitAt(1))
	var heavySum, heavyN, tailSum, tailN float64
	for j, l := range data.Logits {
		if l > -1 {
			heavySum += float64(sig[j])
			heavyN++
		} else {
			tailSum += float64(sig[j])
			tailN++
		}
	}
	if heavyN == 0 || tailN == 0 {
		t.Skip("degenerate draw")
	}
	if heavySum/heavyN < 20*(tailSum/tailN) {
		t.Fatalf("cheap significance separation too weak: %v vs %v",
			heavySum/heavyN, tailSum/tailN)
	}
	// normalized: heavy tokens should be around 1/f scale, far above 1
	if heavySum/heavyN < 1 {
		t.Fatalf("heavy normalized significance = %v, want > 1", heavySum/heavyN)
	}
}

func TestCheapSignificanceNonNegative(t *testing.T) {
	rng := mathx.NewRNG(4)
	prof := Profile(Qwen25_7B, 3, 1, 1, rng)
	data := GenHead(Qwen25_7B, prof, 256, rng)
	sig := data.CheapSignificance(Qwen25_7B, rng)
	for i, s := range sig {
		if s < 0 || math.IsNaN(float64(s)) {
			t.Fatalf("invalid significance at %d: %v", i, s)
		}
	}
}

func TestOutlierChannelsInflateKeyRange(t *testing.T) {
	// Keys must carry a few channels far above the noise floor — the
	// mechanism behind low-bit key destruction.
	rng := mathx.NewRNG(5)
	prof := Profile(Llama3_8B, 2, 0, 1, rng)
	data := GenHead(Llama3_8B, prof, 64, rng)
	k := data.Keys[0]
	minV, maxV := mathx.MinMax(k)
	spread := float64(maxV - minV)
	if spread < float64(Llama3_8B.KeyOutlierAmp) {
		t.Fatalf("key spread %v below outlier amplitude %v", spread, Llama3_8B.KeyOutlierAmp)
	}
}

func TestOutlierChannelsPersistAcrossTokens(t *testing.T) {
	// The same channels must be outliers in every token (persistent
	// channels, not random spikes).
	rng := mathx.NewRNG(6)
	prof := Profile(Llama3_8B, 2, 0, 1, rng)
	data := GenHead(Llama3_8B, prof, 32, rng)
	// find outlier channels of token 0
	big := map[int]bool{}
	for d, v := range data.Keys[0] {
		if v > 3 || v < -3 {
			big[d] = true
		}
	}
	if len(big) == 0 {
		t.Fatal("no outlier channels found")
	}
	// those channels must be large in (almost) every other token
	for j := 1; j < 32; j++ {
		for d := range big {
			v := data.Keys[j][d]
			if v < 2 && v > -2 {
				t.Fatalf("outlier channel %d not persistent at token %d: %v", d, j, v)
			}
		}
	}
}
