package synth

import (
	"math"

	"diffkv/internal/mathx"
)

// SparsityProfile is the concrete attention-sparsity configuration of one
// (layer, KV-head, request) triple: what fraction of tokens are "heavy"
// (genuinely attended to) and the log-space locations of heavy vs tail
// attention logits.
//
// The three levels of differentiation the paper exploits are encoded here:
// per-layer base density, per-head multipliers within a layer, and
// per-request jitter on top (§3.3).
type SparsityProfile struct {
	HeavyFrac  float64 // fraction of tokens carrying most attention mass
	HeavyMu    float64 // mean logit of heavy tokens
	HeavySigma float64
	TailMu     float64 // mean logit of tail tokens
	TailSigma  float64
}

// layerBaseDensity returns the deterministic per-layer base heavy fraction.
// Layers differ widely (paper Fig. 4): some layers are diffuse (layer 0
// attends broadly), others highly concentrated.
func layerBaseDensity(model *ModelConfig, layer int) float64 {
	// Deterministic per-(model, layer) draw in [0.06, 0.55], with layer 0
	// biased dense: early layers aggregate broad context.
	h := mathx.NewRNG(uint64(len(model.Name))*0x9e37 + uint64(layer)*0x85eb + modelSeed(model))
	base := 0.06 + 0.49*h.Float64()
	if layer == 0 {
		base = math.Max(base, 0.45)
	}
	return base
}

// headFactor returns the deterministic per-(layer, head) multiplier in
// [0.3, 1.8] — heads within one layer differ strongly (paper Fig. 5).
func headFactor(model *ModelConfig, layer, head int) float64 {
	h := mathx.NewRNG(uint64(layer)*0xc2b2 + uint64(head)*0x27d4 + modelSeed(model) + 17)
	return 0.3 + 1.5*h.Float64()
}

func modelSeed(model *ModelConfig) uint64 {
	var s uint64 = 1469598103934665603
	for _, c := range model.Name {
		s = (s ^ uint64(c)) * 1099511628211
	}
	return s
}

// Profile computes the sparsity profile of one (layer, head) pair for a
// request. densityScale captures workload information density (≈1 for
// reasoning-dense workloads like MATH/HumanEval+, >1 for diffuse 5-shot
// knowledge workloads like MMLU — more diffuse prompts mean a *smaller*
// fraction of heavy tokens, so the scale divides). reqRNG supplies the
// per-request jitter.
func Profile(model *ModelConfig, layer, head int, densityScale float64, reqRNG *mathx.RNG) SparsityProfile {
	base := layerBaseDensity(model, layer) * headFactor(model, layer, head)
	// Per-request lognormal jitter: the same head needs very different
	// budgets on different requests (Fig. 5 error bars).
	jitter := reqRNG.LogNorm(0, 0.35)
	frac := mathx.Clamp(base*jitter/densityScale, 0.01, 0.9)
	return SparsityProfile{
		HeavyFrac:  frac,
		HeavyMu:    3.0,
		HeavySigma: 1.0,
		TailMu:     -5.0,
		TailSigma:  2.0,
	}
}

// heavyRunLen is the mean length of a run of consecutive heavy tokens:
// important content in real text is contiguous (phrases, equations, code
// spans), so heavy tokens cluster rather than scatter i.i.d. Page-granular
// methods (Quest) depend on this locality.
const heavyRunLen = 8.0

// Logits draws n attention logits from the profile: a HeavyFrac fraction
// around HeavyMu and the rest around TailMu, with heavy tokens clustered
// into runs by a two-state Markov chain whose stationary distribution
// preserves HeavyFrac. Softmaxing these produces the heavy-tailed
// attention-score distributions of Figs. 2-3. The recent end of a sequence
// is not special-cased here; recency is a property of the serving policy,
// not the substrate.
func (p SparsityProfile) Logits(n int, rng *mathx.RNG) []float32 {
	out := make([]float32, n)
	f := p.HeavyFrac
	// transition probabilities: stay-heavy keeps mean run length
	// heavyRunLen; enter-heavy is solved from stationarity π_h = f.
	stayHeavy := 1 - 1/heavyRunLen
	enterHeavy := f / (heavyRunLen * (1 - f))
	if enterHeavy > 1 {
		enterHeavy = 1
	}
	heavy := rng.Float64() < f
	for i := range out {
		if heavy {
			out[i] = float32(p.HeavyMu + p.HeavySigma*rng.Norm())
			heavy = rng.Float64() < stayHeavy
		} else {
			out[i] = float32(p.TailMu + p.TailSigma*rng.Norm())
			heavy = rng.Float64() < enterHeavy
		}
	}
	return out
}

// CriticalTokens returns the minimum number of the n scores needed to
// retain `target` (e.g. 0.95) of the total attention mass — the metric of
// paper Figs. 4-5.
func CriticalTokens(scores []float32, target float64) int {
	if len(scores) == 0 {
		return 0
	}
	cp := append([]float32(nil), scores...)
	// sort descending (insertion into a sorted copy is O(n^2); use stdlib)
	sortDescF32(cp)
	var total float64
	for _, v := range cp {
		total += float64(v)
	}
	if total <= 0 {
		return len(cp)
	}
	var acc float64
	for i, v := range cp {
		acc += float64(v)
		if acc >= target*total {
			return i + 1
		}
	}
	return len(cp)
}

func sortDescF32(x []float32) {
	// simple bottom-up heapsort to avoid an extra float64 conversion pass;
	// n is at most a few thousand in all callers.
	n := len(x)
	for i := n/2 - 1; i >= 0; i-- {
		siftMin(x, i, n)
	}
	for end := n - 1; end > 0; end-- {
		x[0], x[end] = x[end], x[0]
		siftMin(x, 0, end)
	}
}

// siftMin maintains a min-heap so the heapsort above yields descending
// order.
func siftMin(x []float32, i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && x[l] < x[m] {
			m = l
		}
		if r < n && x[r] < x[m] {
			m = r
		}
		if m == i {
			return
		}
		x[i], x[m] = x[m], x[i]
		i = m
	}
}
