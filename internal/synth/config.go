// Package synth implements the synthetic transformer substrate: model
// configurations mirroring the LLMs evaluated in the paper, and a generator
// for query/key/value tensors whose attention statistics reproduce the
// distributional properties the paper measures (Figs. 2-5):
//
//   - per-token attention scores spanning many orders of magnitude while
//     value-vector norms span at most ~2 (Fig. 2),
//   - heavy-tailed per-token importance (Fig. 3),
//   - per-layer and per-head dynamic sparsity with high per-request
//     variance (Figs. 4, 5).
//
// The vectors are real float32 tensors: attention and quantization run on
// them for real, so compression-error effects (e.g. key bits mattering more
// than value bits) are computed, not assumed.
package synth

import "fmt"

// ModelConfig describes the shape of a served model. The fields mirror the
// public architecture parameters of each model family; ParamsB drives the
// execution-time cost model.
type ModelConfig struct {
	Name         string
	Layers       int
	KVHeads      int     // KV heads per layer
	QueriesPerKV int     // GQA group size
	HeadDim      int     // per-head feature dimension
	HiddenDim    int     // model hidden dimension
	ParamsB      float64 // parameter count in billions
	MaxSeqLen    int
	// Thinking marks models that generate extended chains of thought
	// (QwQ, R1-Distill-*): compression error accumulates over much longer
	// autoregressive generations (paper §7.2, Table 3 discussion).
	Thinking bool
	// KeyOutlierAmp is the amplitude of the persistent per-head key
	// outlier channels. Real LLM keys carry a few large-magnitude channels
	// that inflate the per-vector quantization scale, which is what makes
	// low-bit keys so destructive (§3.1, and the KIVI/Atom outlier
	// literature). Models with more aggressive GQA compression (higher
	// queries-per-KV) exhibit stronger outliers — the paper's explanation
	// for Qwen2.5-7B's 4-bit key sensitivity.
	KeyOutlierAmp float64
}

// QueryHeads returns the total number of query heads per layer.
func (m *ModelConfig) QueryHeads() int { return m.KVHeads * m.QueriesPerKV }

// KVBytesPerTokenFP16 returns the FP16 KV-cache footprint of one token
// across all layers and KV heads (2 bytes × 2 tensors × dim × heads ×
// layers).
func (m *ModelConfig) KVBytesPerTokenFP16() int {
	return 2 * 2 * m.HeadDim * m.KVHeads * m.Layers
}

func (m *ModelConfig) String() string { return m.Name }

// The model zoo from the paper's evaluation (§7.1). Architecture parameters
// follow the public model cards; ParamsB is the nominal size.
var (
	Llama3_8B = &ModelConfig{
		Name: "Llama3-8B", Layers: 32, KVHeads: 8, QueriesPerKV: 4,
		HeadDim: 128, HiddenDim: 4096, ParamsB: 8, MaxSeqLen: 8192,
		KeyOutlierAmp: 6,
	}
	Llama31_8B = &ModelConfig{
		Name: "Llama3.1-8B", Layers: 32, KVHeads: 8, QueriesPerKV: 4,
		HeadDim: 128, HiddenDim: 4096, ParamsB: 8, MaxSeqLen: 32768,
		KeyOutlierAmp: 6,
	}
	Llama3_70B = &ModelConfig{
		Name: "Llama3-70B", Layers: 80, KVHeads: 8, QueriesPerKV: 8,
		HeadDim: 128, HiddenDim: 8192, ParamsB: 70, MaxSeqLen: 8192,
		KeyOutlierAmp: 6,
	}
	Qwen25_7B = &ModelConfig{
		Name: "Qwen2.5-7B", Layers: 28, KVHeads: 4, QueriesPerKV: 7,
		HeadDim: 128, HiddenDim: 3584, ParamsB: 7, MaxSeqLen: 32768,
		KeyOutlierAmp: 22,
	}
	Qwen25_32B = &ModelConfig{
		Name: "Qwen2.5-32B", Layers: 64, KVHeads: 8, QueriesPerKV: 5,
		HeadDim: 128, HiddenDim: 5120, ParamsB: 32, MaxSeqLen: 32768,
		KeyOutlierAmp: 5,
	}
	QwQ_32B = &ModelConfig{
		Name: "QwQ-32B", Layers: 64, KVHeads: 8, QueriesPerKV: 5,
		HeadDim: 128, HiddenDim: 5120, ParamsB: 32, MaxSeqLen: 32768,
		Thinking:      true,
		KeyOutlierAmp: 5,
	}
	R1Qwen_14B = &ModelConfig{
		Name: "R1-Distill-Qwen-14B", Layers: 48, KVHeads: 8, QueriesPerKV: 5,
		HeadDim: 128, HiddenDim: 5120, ParamsB: 14, MaxSeqLen: 32768,
		Thinking:      true,
		KeyOutlierAmp: 5,
	}
	R1Llama_8B = &ModelConfig{
		Name: "R1-Distill-Llama-8B", Layers: 32, KVHeads: 8, QueriesPerKV: 4,
		HeadDim: 128, HiddenDim: 4096, ParamsB: 8, MaxSeqLen: 32768,
		Thinking:      true,
		KeyOutlierAmp: 6,
	}
)

// Models lists every configured model.
var Models = []*ModelConfig{
	Llama3_8B, Llama31_8B, Llama3_70B, Qwen25_7B, Qwen25_32B,
	QwQ_32B, R1Qwen_14B, R1Llama_8B,
}

// ModelByName looks a model up by its display name.
func ModelByName(name string) (*ModelConfig, error) {
	for _, m := range Models {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("synth: unknown model %q", name)
}
