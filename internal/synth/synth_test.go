package synth

import (
	"math"
	"testing"

	"diffkv/internal/mathx"
	"diffkv/internal/stats"
)

func TestModelByName(t *testing.T) {
	m, err := ModelByName("Llama3-8B")
	if err != nil || m != Llama3_8B {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := ModelByName("GPT-5"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestModelZooShapes(t *testing.T) {
	for _, m := range Models {
		if m.Layers <= 0 || m.KVHeads <= 0 || m.QueriesPerKV <= 0 || m.HeadDim <= 0 {
			t.Fatalf("%s has invalid shape", m.Name)
		}
		if m.QueryHeads() != m.KVHeads*m.QueriesPerKV {
			t.Fatalf("%s query head count inconsistent", m.Name)
		}
	}
}

func TestQwenHasHigherGQARatio(t *testing.T) {
	// The paper attributes Qwen2.5-7B's 4-bit key sensitivity to its
	// aggressive GQA ratio of 7 vs Llama3-8B's 4.
	if Qwen25_7B.QueriesPerKV != 7 || Llama3_8B.QueriesPerKV != 4 {
		t.Fatal("GQA ratios do not match the paper")
	}
}

func TestKVBytesPerToken(t *testing.T) {
	// Llama3-8B: 2 bytes * 2 tensors * 128 dim * 8 heads * 32 layers = 131072
	if got := Llama3_8B.KVBytesPerTokenFP16(); got != 131072 {
		t.Fatalf("KV bytes per token = %d", got)
	}
}

func TestProfileDeterministicPerLayerHead(t *testing.T) {
	r1 := mathx.NewRNG(1)
	r2 := mathx.NewRNG(1)
	p1 := Profile(Llama3_8B, 5, 3, 1, r1)
	p2 := Profile(Llama3_8B, 5, 3, 1, r2)
	if p1 != p2 {
		t.Fatal("profile not deterministic for same request seed")
	}
}

func TestProfileVariesAcrossHeads(t *testing.T) {
	rng := mathx.NewRNG(1)
	seen := map[float64]bool{}
	for h := 0; h < Llama3_8B.KVHeads; h++ {
		p := Profile(Llama3_8B, 15, h, 1, rng.SplitAt(uint64(h)))
		seen[p.HeavyFrac] = true
	}
	if len(seen) < 4 {
		t.Fatalf("per-head fractions not diverse: %v", seen)
	}
}

func TestProfileVariesAcrossRequests(t *testing.T) {
	var s stats.Summary
	for r := 0; r < 50; r++ {
		p := Profile(Llama3_8B, 15, 2, 1, mathx.NewRNG(uint64(r)+100))
		s.Add(p.HeavyFrac)
	}
	if s.Std() < 0.01 {
		t.Fatalf("per-request variance too small: std=%v", s.Std())
	}
}

func TestProfileDensityScaleReducesHeavyFrac(t *testing.T) {
	dense := Profile(Llama3_8B, 10, 1, 1, mathx.NewRNG(7))
	sparse := Profile(Llama3_8B, 10, 1, 2.5, mathx.NewRNG(7))
	if sparse.HeavyFrac >= dense.HeavyFrac {
		t.Fatalf("higher densityScale should lower HeavyFrac: %v vs %v",
			sparse.HeavyFrac, dense.HeavyFrac)
	}
}

func TestProfileBounds(t *testing.T) {
	for l := 0; l < Llama3_8B.Layers; l++ {
		for h := 0; h < Llama3_8B.KVHeads; h++ {
			p := Profile(Llama3_8B, l, h, 1, mathx.NewRNG(uint64(l*8+h)))
			if p.HeavyFrac < 0.01 || p.HeavyFrac > 0.9 {
				t.Fatalf("HeavyFrac out of bounds at (%d,%d): %v", l, h, p.HeavyFrac)
			}
		}
	}
}

func TestCriticalTokens(t *testing.T) {
	// one dominant token carries 96% of the mass
	scores := []float32{0.96, 0.01, 0.01, 0.01, 0.01}
	if got := CriticalTokens(scores, 0.95); got != 1 {
		t.Fatalf("CriticalTokens = %d, want 1", got)
	}
	// uniform: need 95% of tokens
	uniform := make([]float32, 100)
	for i := range uniform {
		uniform[i] = 0.01
	}
	if got := CriticalTokens(uniform, 0.95); got != 95 {
		t.Fatalf("uniform CriticalTokens = %d, want 95", got)
	}
}

func TestCriticalTokensEdge(t *testing.T) {
	if CriticalTokens(nil, 0.95) != 0 {
		t.Fatal("empty scores")
	}
	if CriticalTokens([]float32{0, 0}, 0.95) != 2 {
		t.Fatal("zero-mass scores should require all tokens")
	}
}

func TestSortDescF32(t *testing.T) {
	x := []float32{3, 1, 4, 1, 5, 9, 2, 6}
	sortDescF32(x)
	for i := 1; i < len(x); i++ {
		if x[i] > x[i-1] {
			t.Fatalf("not descending: %v", x)
		}
	}
}

func TestGenHeadShapes(t *testing.T) {
	rng := mathx.NewRNG(11)
	prof := Profile(Llama3_8B, 8, 0, 1, rng)
	h := GenHead(Llama3_8B, prof, 64, rng)
	if h.Len() != 64 {
		t.Fatalf("Len = %d", h.Len())
	}
	for j := 0; j < 64; j++ {
		if len(h.Keys[j]) != 128 || len(h.Vals[j]) != 128 {
			t.Fatalf("vector dims wrong at token %d", j)
		}
	}
}

func TestGenHeadScoresMatchConstructionLogits(t *testing.T) {
	// The realized attention logits q·k/√d should correlate with the
	// construction logits: heavy tokens must receive high scores.
	rng := mathx.NewRNG(13)
	prof := SparsityProfile{HeavyFrac: 0.1, HeavyMu: 3, HeavySigma: 0.5, TailMu: -5, TailSigma: 1}
	h := GenHead(Llama3_8B, prof, 256, rng)
	q := h.Query(rng)
	scores := h.Scores(q, 256)

	// best construction-logit token should be among the top realized scores
	bestCon := 0
	for j, l := range h.Logits {
		if l > h.Logits[bestCon] {
			bestCon = j
		}
	}
	rank := 0
	for _, s := range scores {
		if s > scores[bestCon] {
			rank++
		}
	}
	if rank > 8 {
		t.Fatalf("heaviest construction token ranked %d by realized scores", rank)
	}
}

func TestFig2DistributionClaims(t *testing.T) {
	// Attention scores must span far more orders of magnitude than value
	// norms (paper Fig. 2: ~7 vs ≤2).
	rng := mathx.NewRNG(17)
	var scoreSample, normSample []float64
	for rep := 0; rep < 8; rep++ {
		prof := Profile(Llama3_8B, 15, rep%8, 1, rng.SplitAt(uint64(rep)))
		h := GenHead(Llama3_8B, prof, 512, rng.SplitAt(uint64(100+rep)))
		q := h.Query(rng)
		scores := h.Scores(q, 512)
		for _, s := range scores {
			scoreSample = append(scoreSample, float64(s))
		}
		for _, v := range h.Vals {
			normSample = append(normSample, float64(mathx.Norm2(v)))
		}
	}
	scoreOoM := stats.NewCDF(scoreSample).OrdersOfMagnitude()
	normOoM := stats.NewCDF(normSample).OrdersOfMagnitude()
	if scoreOoM < 4 {
		t.Fatalf("attention scores span only %.1f orders of magnitude", scoreOoM)
	}
	if normOoM > 2.5 {
		t.Fatalf("value norms span %.1f orders of magnitude, want <= 2.5", normOoM)
	}
	if scoreOoM < 2*normOoM {
		t.Fatalf("score spread (%.1f) should dwarf norm spread (%.1f)", scoreOoM, normOoM)
	}
}

func TestSignificanceRecentTokensNonZero(t *testing.T) {
	rng := mathx.NewRNG(19)
	prof := Profile(Llama3_8B, 8, 0, 1, rng)
	h := GenHead(Llama3_8B, prof, 96, rng)
	sig := h.Significance(Llama3_8B, rng)
	if len(sig) != 96 {
		t.Fatalf("significance length %d", len(sig))
	}
	for j, s := range sig {
		if s < 0 || math.IsNaN(float64(s)) {
			t.Fatalf("invalid significance at %d: %v", j, s)
		}
	}
	// last token never receives attention; must be treated as recent (1)
	if sig[95] != 1 {
		t.Fatalf("final token significance = %v, want 1", sig[95])
	}
}

func TestSignificanceIdentifiesHeavyTokens(t *testing.T) {
	rng := mathx.NewRNG(23)
	prof := SparsityProfile{HeavyFrac: 0.05, HeavyMu: 4, HeavySigma: 0.3, TailMu: -5, TailSigma: 1}
	h := GenHead(Llama3_8B, prof, 200, rng)
	sig := h.Significance(Llama3_8B, rng)

	// mean significance of construction-heavy tokens must exceed tail mean
	var heavy, tail stats.Summary
	for j := 0; j < 190; j++ { // skip the final tokens (few observations)
		if h.Logits[j] > 0 {
			heavy.Add(float64(sig[j]))
		} else {
			tail.Add(float64(sig[j]))
		}
	}
	if heavy.N() == 0 || tail.N() == 0 {
		t.Skip("degenerate draw")
	}
	if heavy.Mean() < 10*tail.Mean() {
		t.Fatalf("significance separation too weak: heavy %v vs tail %v",
			heavy.Mean(), tail.Mean())
	}
}

func TestScoreSeriesIsDistribution(t *testing.T) {
	rng := mathx.NewRNG(29)
	prof := Profile(Llama3_8B, 4, 2, 1, rng)
	s := ScoreSeries(prof, 300, rng)
	var sum float64
	for _, v := range s {
		if v < 0 {
			t.Fatal("negative score")
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("scores sum to %v", sum)
	}
}

func TestCriticalTokensVaryAcrossLayers(t *testing.T) {
	// Fig. 4: the number of critical tokens differs substantially by layer.
	rng := mathx.NewRNG(31)
	n := 1024
	var perLayer []float64
	for l := 0; l < Llama3_8B.Layers; l++ {
		var s stats.Summary
		for h := 0; h < Llama3_8B.KVHeads; h++ {
			prof := Profile(Llama3_8B, l, h, 1, rng.SplitAt(uint64(l*100+h)))
			scores := ScoreSeries(prof, n, rng.SplitAt(uint64(l*1000+h)))
			s.Add(float64(CriticalTokens(scores, 0.95)))
		}
		perLayer = append(perLayer, s.Mean())
	}
	var all stats.Summary
	for _, v := range perLayer {
		all.Add(v)
	}
	if all.Max() < 2*all.Min() {
		t.Fatalf("layer-to-layer critical token spread too small: min %v max %v",
			all.Min(), all.Max())
	}
}
