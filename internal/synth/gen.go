package synth

import (
	"math"

	"diffkv/internal/mathx"
)

// HeadData holds the real float32 tensors of one (layer, KV-head) pair for
// one request: keys and values for every token, plus the ground-truth
// attention logits used to construct the keys (handy for tests; attention
// itself recomputes scores from the vectors).
type HeadData struct {
	Dim    int
	Keys   [][]float32 // [token][dim]
	Vals   [][]float32 // [token][dim]
	Logits []float32   // construction logits (q·k/√d ≈ Logits + noise)
	dir    []float32   // shared key direction (unit vector)

	// Persistent key outlier channels: a few channels where every key
	// carries a large fixed-sign magnitude. They contribute an (almost)
	// token-constant logit offset — invisible to softmax — but inflate the
	// per-vector quantization scale, which is the mechanism that makes
	// low-bit keys destructive (§3.1).
	outlierIdx  []int
	outlierSign []float32
	outlierAmp  float32
}

// numOutlierChannels is the count of persistent key outlier channels per
// head.
const numOutlierChannels = 4

// Len returns the number of tokens.
func (h *HeadData) Len() int { return len(h.Keys) }

// GenHead generates keys and values for n tokens of one (layer, head) pair.
//
// Construction: a unit direction u is drawn per head; token j's key is
// k_j = l_j·u + ε with l_j the target attention logit, so a query aligned
// with u (norm ≈ √dim) produces q·k_j/√dim ≈ l_j. Values are random
// directions with log-normal norms whose spread stays within ~2 orders of
// magnitude (Fig. 2's value-norm claim).
func GenHead(model *ModelConfig, prof SparsityProfile, n int, rng *mathx.RNG) *HeadData {
	dim := model.HeadDim
	h := &HeadData{
		Dim:    dim,
		Keys:   make([][]float32, n),
		Vals:   make([][]float32, n),
		Logits: prof.Logits(n, rng),
		dir:    make([]float32, dim),
	}
	rng.NormVec(h.dir, 1)
	normalize(h.dir)

	// fixed outlier channels for this head
	h.outlierAmp = float32(model.KeyOutlierAmp)
	if h.outlierAmp > 0 {
		h.outlierIdx = make([]int, numOutlierChannels)
		h.outlierSign = make([]float32, numOutlierChannels)
		for c := range h.outlierIdx {
			h.outlierIdx[c] = rng.Intn(dim)
			if rng.Float64() < 0.5 {
				h.outlierSign[c] = -1
			} else {
				h.outlierSign[c] = 1
			}
		}
	}

	noise := 1.0 / math.Sqrt(float64(dim)) // keeps |k| ≈ O(1..l_j)
	for j := 0; j < n; j++ {
		k := make([]float32, dim)
		rng.NormVec(k, noise)
		mathx.Axpy(h.Logits[j], h.dir, k)
		for c, idx := range h.outlierIdx {
			// ~10% per-token jitter keeps the offset nearly constant
			// across tokens (softmax-invariant) while staying realistic
			k[idx] += h.outlierAmp * h.outlierSign[c] * float32(1+0.1*rng.Norm())
		}
		h.Keys[j] = k

		v := make([]float32, dim)
		rng.NormVec(v, 1)
		normalize(v)
		// value norms: log-normal, sigma 0.45 -> ~99.7% inside a 15x band
		norm := float32(rng.LogNorm(0, 0.45))
		mathx.Scale(norm, v)
		h.Vals[j] = v
	}
	return h
}

// Query produces one query vector aligned with the head's key direction:
// q = √dim·u + ε. Each query-head in a GQA group calls this with its own
// rng, giving correlated but distinct queries.
func (h *HeadData) Query(rng *mathx.RNG) []float32 {
	q := make([]float32, h.Dim)
	rng.NormVec(q, 0.3)
	mathx.Axpy(float32(math.Sqrt(float64(h.Dim))), h.dir, q)
	return q
}

// Scores computes the true softmax attention scores of query q over the
// first n tokens (causal prefix).
func (h *HeadData) Scores(q []float32, n int) []float32 {
	logits := make([]float32, n)
	invSqrt := float32(1 / math.Sqrt(float64(h.Dim)))
	for j := 0; j < n; j++ {
		logits[j] = mathx.Dot(q, h.Keys[j]) * invSqrt
	}
	return mathx.Softmax(logits, logits)
}

// Significance computes per-token significance scores for the prompt phase
// exactly as the paper specifies (§4): token i's score is the average of the
// attention it receives from subsequent tokens, max-aggregated across the
// query heads of the GQA group.
//
// Queries for steps 1..n-1 are generated on the fly from qrng.
func (h *HeadData) Significance(model *ModelConfig, qrng *mathx.RNG) []float32 {
	return h.SignificancePrefix(model, h.Len(), qrng)
}

// SignificancePrefix computes prompt-phase significance over the first n
// tokens only (the prompt prefix of a longer pre-generated sequence).
func (h *HeadData) SignificancePrefix(model *ModelConfig, n int, qrng *mathx.RNG) []float32 {
	if n > h.Len() {
		n = h.Len()
	}
	sig := make([]float32, n)
	counts := make([]int, n)
	group := model.QueriesPerKV
	// For tractability sample queries at a stride when sequences are long:
	// every token still receives scores from ≥64 subsequent positions.
	stride := 1
	if n > 512 {
		stride = n / 512
	}
	perHead := make([]float32, n)
	for t := 1; t < n; t += stride {
		for i := range perHead[:t] {
			perHead[i] = 0
		}
		for g := 0; g < group; g++ {
			q := h.Query(qrng)
			scores := h.Scores(q, t)
			for j, s := range scores {
				if s > perHead[j] {
					perHead[j] = s // max over query heads in the group
				}
			}
		}
		for j := 0; j < t; j++ {
			// normalized significance: score × prefix length, so 1.0 is
			// the theoretical average attention (see policy package docs)
			sig[j] += perHead[j] * float32(t)
			counts[j]++
		}
	}
	for j := range sig {
		if counts[j] > 0 {
			sig[j] /= float32(counts[j])
		} else {
			// final tokens received no queries; treat as exactly average
			sig[j] = 1
		}
	}
	return sig
}

func normalize(x []float32) {
	n := mathx.Norm2(x)
	if n == 0 {
		x[0] = 1
		return
	}
	mathx.Scale(1/n, x)
}

// CheapSignificance computes normalized significance scores in O(n) from
// the construction logits (softmax × sequence length × GQA max boost, with
// per-token measurement noise) — the fast path for baseline selection and
// large-scale experiments, where running the O(n²·d) attention-based
// estimate per head would dominate runtime.
func (h *HeadData) CheapSignificance(model *ModelConfig, rng *mathx.RNG) []float32 {
	n := h.Len()
	sig := make([]float32, n)
	copy(sig, h.Logits)
	mathx.Softmax(sig, sig)
	boost := float32(GQAMaxBoost(model.QueriesPerKV))
	for i := range sig {
		noise := float32(1 + 0.15*rng.Norm())
		if noise < 0.1 {
			noise = 0.1
		}
		sig[i] *= float32(n) * boost * noise
	}
	return sig
}

// GQAMaxBoost estimates how much max-aggregation across a GQA group of
// size g inflates a token's observed attention score relative to a single
// query head: with per-head logit jitter σ≈0.3, the expected max of g
// standard normals is ≈ √(2·ln g), so the max weight is ≈ e^{0.3·√(2·ln g)}
// times the single-head weight. The paper profiles αh above 1 precisely to
// account for this inflation (§7.2, "Parameter Calibration").
func GQAMaxBoost(group int) float64 {
	if group <= 1 {
		return 1
	}
	return math.Exp(0.3 * math.Sqrt(2*math.Log(float64(group))))
}

// ScoreSeries is the fast, vector-free path used by sparsity-counting and
// serving experiments: it produces per-token significance scores directly
// from the profile (softmax of the construction logits plus per-query
// measurement noise), avoiding O(n²·dim) attention computation.
func ScoreSeries(prof SparsityProfile, n int, rng *mathx.RNG) []float32 {
	logits := prof.Logits(n, rng)
	// measurement noise: each token's observed mean score wobbles
	for i := range logits {
		logits[i] += float32(0.3 * rng.Norm())
	}
	return mathx.Softmax(logits, logits)
}
