package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestAxpy(t *testing.T) {
	dst := []float32{1, 1, 1}
	Axpy(2, []float32{1, 2, 3}, dst)
	want := []float32{3, 5, 7}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Axpy dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestScale(t *testing.T) {
	x := []float32{1, -2, 4}
	Scale(0.5, x)
	want := []float32{0.5, -1, 2}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("Scale x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float32{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	minV, maxV := MinMax([]float32{3, -1, 7, 0})
	if minV != -1 || maxV != 7 {
		t.Fatalf("MinMax = (%v, %v), want (-1, 7)", minV, maxV)
	}
}

func TestMinMaxSingle(t *testing.T) {
	minV, maxV := MinMax([]float32{42})
	if minV != 42 || maxV != 42 {
		t.Fatalf("MinMax single = (%v, %v)", minV, maxV)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	logits := []float32{1, 2, 3, 4}
	dst := make([]float32, 4)
	Softmax(logits, dst)
	var sum float64
	for _, v := range dst {
		sum += float64(v)
	}
	if !almostEq(sum, 1, 1e-6) {
		t.Fatalf("softmax sum = %v, want 1", sum)
	}
	for i := 1; i < len(dst); i++ {
		if dst[i] <= dst[i-1] {
			t.Fatalf("softmax not monotone with logits: %v", dst)
		}
	}
}

func TestSoftmaxStableUnderLargeLogits(t *testing.T) {
	logits := []float32{1000, 1001, 1002}
	dst := make([]float32, 3)
	Softmax(logits, dst)
	var sum float64
	for _, v := range dst {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax produced non-finite value: %v", dst)
		}
		sum += float64(v)
	}
	if !almostEq(sum, 1, 1e-6) {
		t.Fatalf("softmax sum = %v, want 1", sum)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := []float32{0.5, -1.5, 2.0}
	b := []float32{100.5, 98.5, 102.0}
	da := make([]float32, 3)
	db := make([]float32, 3)
	Softmax(a, da)
	Softmax(b, db)
	for i := range da {
		if !almostEq(float64(da[i]), float64(db[i]), 1e-5) {
			t.Fatalf("softmax not shift invariant: %v vs %v", da, db)
		}
	}
}

func TestSoftmaxInPlace(t *testing.T) {
	x := []float32{1, 2, 3}
	Softmax(x, x)
	var sum float64
	for _, v := range x {
		sum += float64(v)
	}
	if !almostEq(sum, 1, 1e-6) {
		t.Fatalf("in-place softmax sum = %v", sum)
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	out := Softmax(nil, nil)
	if len(out) != 0 {
		t.Fatalf("expected empty output")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr([]float32{1, 1}, []float32{1, 1}); got != 0 {
		t.Fatalf("RelErr identical = %v, want 0", got)
	}
	got := RelErr([]float32{2, 0}, []float32{1, 0})
	if !almostEq(got, 1, 1e-9) {
		t.Fatalf("RelErr = %v, want 1", got)
	}
}

func TestRelErrZeroDenominator(t *testing.T) {
	got := RelErr([]float32{3, 4}, []float32{0, 0})
	if !almostEq(got, 5, 1e-9) {
		t.Fatalf("RelErr vs zero = %v, want 5", got)
	}
}

func TestArgMin(t *testing.T) {
	if got := ArgMin([]float32{3, 1, 2}); got != 1 {
		t.Fatalf("ArgMin = %d, want 1", got)
	}
	if got := ArgMin(nil); got != -1 {
		t.Fatalf("ArgMin(nil) = %d, want -1", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp bounds incorrect")
	}
}

// Property: softmax output is always a probability distribution.
func TestSoftmaxDistributionProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float32, len(raw))
		for i, v := range raw {
			logits[i] = float32(v) / 100
		}
		dst := make([]float32, len(logits))
		Softmax(logits, dst)
		var sum float64
		for _, v := range dst {
			if v < 0 || math.IsNaN(float64(v)) {
				return false
			}
			sum += float64(v)
		}
		return almostEq(sum, 1, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric.
func TestDotSymmetryProperty(t *testing.T) {
	f := func(raw []int8) bool {
		a := make([]float32, len(raw))
		b := make([]float32, len(raw))
		for i, v := range raw {
			a[i] = float32(v)
			b[i] = float32(int(v)*3%17) - 8
		}
		return Dot(a, b) == Dot(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
