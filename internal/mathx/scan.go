package mathx

import (
	"runtime"
	"sync"
)

// ExclusiveScan writes the exclusive prefix sum of src into dst and returns
// the total sum. dst[i] = src[0] + ... + src[i-1]; dst[0] = 0. dst and src
// must have the same length; dst may alias src.
//
// This is the coordination primitive of parallel KV compaction (paper §5.2):
// converting per-head page demands into disjoint offsets in the circular
// free page list.
func ExclusiveScan(src, dst []int32) int32 {
	if len(src) != len(dst) {
		panic("mathx: ExclusiveScan length mismatch")
	}
	var acc int32
	for i, v := range src {
		dst[i] = acc
		acc += v
	}
	return acc
}

// parallelScanThreshold is the input size below which ParallelExclusiveScan
// falls back to the sequential scan: for small inputs goroutine fan-out
// costs more than it saves.
const parallelScanThreshold = 4096

// ParallelExclusiveScan is a work-efficient two-pass parallel exclusive
// prefix sum (block-wise reduce, scan of block sums, block-wise downsweep),
// the CPU analogue of the GPU prefix-sum used for compaction coordination.
// It writes into dst and returns the total. dst may alias src.
func ParallelExclusiveScan(src, dst []int32) int32 {
	n := len(src)
	if n != len(dst) {
		panic("mathx: ParallelExclusiveScan length mismatch")
	}
	if n < parallelScanThreshold {
		return ExclusiveScan(src, dst)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	blockSize := (n + workers - 1) / workers
	blockSums := make([]int32, workers)

	// Pass 1: per-block reduction.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var s int32
			for _, v := range src[lo:hi] {
				s += v
			}
			blockSums[w] = s
		}(w, lo, hi)
	}
	wg.Wait()

	// Scan of block sums (tiny, sequential).
	total := ExclusiveScan(blockSums, blockSums)

	// Pass 2: per-block downsweep with the block offset.
	for w := 0; w < workers; w++ {
		lo := w * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := blockSums[w]
			for i := lo; i < hi; i++ {
				v := src[i]
				dst[i] = acc
				acc += v
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return total
}

// ParallelFor runs fn(i) for i in [0, n) across GOMAXPROCS goroutines. It is
// the "planning phase" primitive: each attention head independently computes
// its memory demands.
func ParallelFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
