// Package mathx provides the small numerical kernels the rest of the
// repository is built on: float32 vector operations, a numerically stable
// softmax, sequential and parallel prefix sums, and a deterministic
// splittable random number generator.
//
// Everything here is pure Go (stdlib only) and allocation-conscious: the hot
// paths (dot products, axpy, softmax) write into caller-provided buffers.
package mathx

import "math"

// Dot returns the inner product of a and b. The two slices must have the
// same length.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes dst += alpha*x element-wise. dst and x must have the same
// length.
func Axpy(alpha float32, x, dst []float32) {
	if len(x) != len(dst) {
		panic("mathx: Axpy length mismatch")
	}
	for i := range x {
		dst[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the L2 norm of x.
func Norm2(x []float32) float32 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// MinMax returns the minimum and maximum of x. It panics on an empty slice.
func MinMax(x []float32) (minV, maxV float32) {
	if len(x) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	minV, maxV = x[0], x[0]
	for _, v := range x[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV
}

// Softmax writes the softmax of logits into dst and returns dst. It is
// numerically stable (subtracts the max logit before exponentiation).
// dst may alias logits. Panics if lengths differ.
func Softmax(logits, dst []float32) []float32 {
	if len(logits) != len(dst) {
		panic("mathx: Softmax length mismatch")
	}
	if len(logits) == 0 {
		return dst
	}
	maxL := logits[0]
	for _, v := range logits[1:] {
		if v > maxL {
			maxL = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - maxL))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1.0 / sum)
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// RelErr returns the relative L2 error ||a-b|| / ||b||. If ||b|| is zero it
// returns ||a-b||.
func RelErr(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("mathx: RelErr length mismatch")
	}
	var num, den float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		num += d * d
		den += float64(b[i]) * float64(b[i])
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// ArgMin returns the index of the smallest element of x, or -1 for an empty
// slice.
func ArgMin(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	idx := 0
	for i, v := range x {
		if v < x[idx] {
			idx = i
		}
	}
	return idx
}

// Clamp bounds v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
