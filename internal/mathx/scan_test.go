package mathx

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestExclusiveScanBasic(t *testing.T) {
	src := []int32{3, 1, 4, 1, 5}
	dst := make([]int32, len(src))
	total := ExclusiveScan(src, dst)
	want := []int32{0, 3, 4, 8, 9}
	if total != 14 {
		t.Fatalf("total = %d, want 14", total)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

func TestExclusiveScanEmpty(t *testing.T) {
	if total := ExclusiveScan(nil, nil); total != 0 {
		t.Fatalf("empty scan total = %d", total)
	}
}

func TestExclusiveScanInPlace(t *testing.T) {
	x := []int32{1, 2, 3}
	total := ExclusiveScan(x, x)
	if total != 6 || x[0] != 0 || x[1] != 1 || x[2] != 3 {
		t.Fatalf("in-place scan wrong: %v total=%d", x, total)
	}
}

func TestParallelScanMatchesSequentialSmall(t *testing.T) {
	src := []int32{5, 0, 2, 7}
	seq := make([]int32, 4)
	par := make([]int32, 4)
	st := ExclusiveScan(src, seq)
	pt := ParallelExclusiveScan(src, par)
	if st != pt {
		t.Fatalf("totals differ: %d vs %d", st, pt)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, seq[i], par[i])
		}
	}
}

func TestParallelScanMatchesSequentialLarge(t *testing.T) {
	rng := NewRNG(7)
	n := 100_003 // odd size, forces uneven blocks
	src := make([]int32, n)
	for i := range src {
		src[i] = int32(rng.Intn(9))
	}
	seq := make([]int32, n)
	par := make([]int32, n)
	st := ExclusiveScan(src, seq)
	pt := ParallelExclusiveScan(src, par)
	if st != pt {
		t.Fatalf("totals differ: %d vs %d", st, pt)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, seq[i], par[i])
		}
	}
}

func TestParallelScanInPlaceLarge(t *testing.T) {
	rng := NewRNG(11)
	n := 50_000
	src := make([]int32, n)
	for i := range src {
		src[i] = int32(rng.Intn(5))
	}
	ref := make([]int32, n)
	ExclusiveScan(src, ref)
	total := ParallelExclusiveScan(src, src)
	var want int32
	for _, v := range ref {
		_ = v
	}
	want = ref[n-1] + 0 // recompute below for clarity
	_ = want
	for i := range ref {
		if src[i] != ref[i] {
			t.Fatalf("in-place parallel scan mismatch at %d", i)
		}
	}
	_ = total
}

// Property: scan output is non-decreasing for non-negative inputs, and
// total equals the sum.
func TestScanProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		src := make([]int32, len(raw))
		var sum int32
		for i, v := range raw {
			src[i] = int32(v % 16)
			sum += src[i]
		}
		dst := make([]int32, len(src))
		total := ParallelExclusiveScan(src, dst)
		if total != sum {
			return false
		}
		for i := 1; i < len(dst); i++ {
			if dst[i] < dst[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelFor(t *testing.T) {
	var count int64
	hits := make([]int32, 1000)
	ParallelFor(1000, func(i int) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt32(&hits[i], 1)
	})
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestParallelForZeroAndNegative(t *testing.T) {
	called := false
	ParallelFor(0, func(i int) { called = true })
	ParallelFor(-5, func(i int) { called = true })
	if called {
		t.Fatal("fn called for non-positive n")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(1)
	c1 := r.SplitAt(0)
	c2 := r.SplitAt(1)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split streams identical on first draw")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(5)
	n := 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(9)
	lambda := 4.0
	n := 50_000
	var sum int
	for i := 0; i < n; i++ {
		sum += r.Poisson(lambda)
	}
	mean := float64(sum) / float64(n)
	if mean < 3.9 || mean > 4.1 {
		t.Fatalf("poisson mean = %v, want ~4", mean)
	}
}

func TestRNGPoissonLargeLambda(t *testing.T) {
	r := NewRNG(13)
	lambda := 500.0
	n := 20_000
	var sum int
	for i := 0; i < n; i++ {
		sum += r.Poisson(lambda)
	}
	mean := float64(sum) / float64(n)
	if mean < 490 || mean > 510 {
		t.Fatalf("poisson(500) mean = %v", mean)
	}
}

func TestRNGParetoTail(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10_000; i++ {
		v := r.Pareto(1, 1.5)
		if v < 1 {
			t.Fatalf("pareto below xm: %v", v)
		}
	}
}

func TestRNGExpPositive(t *testing.T) {
	r := NewRNG(19)
	var sum float64
	n := 100_000
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("negative exponential variate")
		}
		sum += v
	}
	mean := sum / float64(n)
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("exp mean = %v, want ~0.5", mean)
	}
}

func TestRNGShufflePermutation(t *testing.T) {
	r := NewRNG(23)
	x := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(x), func(i, j int) { x[i], x[j] = x[j], x[i] })
	seen := make(map[int]bool)
	for _, v := range x {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", x)
	}
}
