package mathx

import "math"

// RNG is a small, fast, deterministic splittable random number generator
// (SplitMix64 core). Experiments seed one root RNG and split independent
// streams per layer / head / request, so results are reproducible regardless
// of goroutine scheduling.
type RNG struct {
	state uint64
	// cached spare normal variate for the Box-Muller transform
	spare    float64
	hasSpare bool
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child stream. The child's sequence is
// decorrelated from the parent's by mixing the parent's next output.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// SplitN derives the i-th of several independent child streams without
// advancing the parent more than once per call.
func (r *RNG) SplitAt(i uint64) *RNG {
	s := r.state + (i+1)*0xbf58476d1ce4e5b9
	mixed := mix64(s)
	return &RNG{state: mixed}
}

func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next pseudorandom 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// LogNorm returns a log-normal variate with the given log-space mean and
// standard deviation.
func (r *RNG) LogNorm(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("mathx: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Pareto returns a Pareto(alpha) variate with minimum xm: heavy-tailed, used
// to model attention-score concentration.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("mathx: Pareto with non-positive parameter")
	}
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// Poisson returns a Poisson(lambda) variate (Knuth for small lambda, normal
// approximation for large).
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := lambda + math.Sqrt(lambda)*r.Norm()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// NormVec fills dst with independent normal variates of the given standard
// deviation.
func (r *RNG) NormVec(dst []float32, sigma float64) {
	for i := range dst {
		dst[i] = float32(sigma * r.Norm())
	}
}

// Shuffle permutes the first n indices, calling swap(i, j) Fisher-Yates
// style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
