// Package disagg implements prefill/decode disaggregation for the
// cluster simulator: pool roles, the request splitter, the KV-transfer
// queue, and the per-link shipment ledger.
//
// Disaggregated serving splits the fleet into a prefill pool (prompt
// passes only — large, bursty, compute-bound batches) and a decode pool
// (token generation only — steady, memory-bound batches), with any
// remainder serving both roles. Each admitted request becomes two
// sub-requests sharing the parent's ID: a prefill child (GenLen 1, so
// the first output token — the TTFT point — is produced where the
// prompt ran) routed to the prefill pool, and a decode child carrying
// the remaining generation budget that resumes on a decode instance
// once the finished prefill's compressed KV pages cross the NIC. The
// split follows the BLIS-style parent→children design (SNIPPETS.md
// Snippet 2); what this repo adds is the quant-tier economics — K4V2
// pages ship 3-6× cheaper than FP16, which moves the prefill:decode
// crossover point (the `disagg` experiment sweeps it).
//
// The package is pure bookkeeping: deterministic, no clocks, no RNG.
// The cluster layer owns the event loop and the serving engines; it
// asks this package who plays which role, how to split a request, which
// transfer is due next, and what has been shipped so far.
package disagg

import (
	"fmt"
	"sort"

	"diffkv/internal/workload"
)

// Role tags a serving instance's pool membership.
type Role string

const (
	// RolePrefill instances run prompt passes only: fresh requests are
	// routed here and leave after their first output token.
	RolePrefill Role = "prefill"
	// RoleDecode instances run token generation only: they adopt shipped
	// prefills and never see a raw prompt.
	RoleDecode Role = "decode"
	// RoleMixed instances serve both phases (colocated serving; also the
	// remainder of a fleet larger than the two pools).
	RoleMixed Role = "mixed"
)

// Config sizes the pools. Instances [0, PrefillInstances) are the
// prefill pool, the next DecodeInstances the decode pool, and any
// remainder serves mixed.
type Config struct {
	PrefillInstances int
	DecodeInstances  int
}

// Validate checks the pool split against the fleet size.
func (c Config) Validate(instances int) error {
	if c.PrefillInstances < 1 || c.DecodeInstances < 1 {
		return fmt.Errorf("disagg: both pools need at least one instance (prefill %d, decode %d)",
			c.PrefillInstances, c.DecodeInstances)
	}
	if n := c.PrefillInstances + c.DecodeInstances; n > instances {
		return fmt.Errorf("disagg: pools need %d instances, cluster has %d", n, instances)
	}
	return nil
}

// Roles assigns every instance of an n-instance fleet its pool role.
func (c Config) Roles(n int) []Role {
	roles := make([]Role, n)
	for i := range roles {
		switch {
		case i < c.PrefillInstances:
			roles[i] = RolePrefill
		case i < c.PrefillInstances+c.DecodeInstances:
			roles[i] = RoleDecode
		default:
			roles[i] = RoleMixed
		}
	}
	return roles
}

// Split turns a parent request into its prefill child and reports
// whether a decode handoff follows. The prefill child keeps the
// parent's ID and arrival but generates exactly one token — the TTFT
// point stays honestly attributed to the prefill instance. A parent
// with GenLen 1 has nothing left to hand off: its prefill child is the
// whole request and no transfer is scheduled.
func Split(r workload.Request) (prefill workload.Request, handoff bool) {
	prefill = r
	if r.GenLen <= 1 {
		return prefill, false
	}
	prefill.GenLen = 1
	return prefill, true
}

// Transfer is one scheduled prefill→decode KV shipment.
type Transfer struct {
	// SeqID is the parent request ID whose KV is in flight.
	SeqID int
	// From / To are 0-based instance indices.
	From, To int
	// Bytes is the packed payload crossing the wire; DueUs the delivery
	// time (prefill completion + NICTransfer).
	Bytes int64
	DueUs float64
}

// Queue orders pending transfers by delivery time (ties by sequence ID,
// so the drain order is deterministic under equal clocks).
type Queue struct {
	pending []Transfer
}

// Push inserts a transfer in due order.
func (q *Queue) Push(t Transfer) {
	i := sort.Search(len(q.pending), func(i int) bool {
		p := q.pending[i]
		if p.DueUs != t.DueUs {
			return p.DueUs > t.DueUs
		}
		return p.SeqID > t.SeqID
	})
	q.pending = append(q.pending, Transfer{})
	copy(q.pending[i+1:], q.pending[i:])
	q.pending[i] = t
}

// Len reports how many transfers are in flight.
func (q *Queue) Len() int { return len(q.pending) }

// NextDue returns the earliest delivery time, false when empty.
func (q *Queue) NextDue() (float64, bool) {
	if len(q.pending) == 0 {
		return 0, false
	}
	return q.pending[0].DueUs, true
}

// Pop removes and returns the earliest transfer; ok is false when empty.
func (q *Queue) Pop() (Transfer, bool) {
	if len(q.pending) == 0 {
		return Transfer{}, false
	}
	t := q.pending[0]
	q.pending = q.pending[1:]
	return t, true
}

// LinkBytes is one (from, to) instance pair's lifetime shipment record.
type LinkBytes struct {
	// From / To are 1-based instance tags (matching trace.Event.Inst).
	From, To  int
	Bytes     int64
	Transfers int
}

// Ledger accumulates shipment traffic per directed instance link.
type Ledger struct {
	links map[[2]int]*LinkBytes
}

// Record books one shipment on the (from, to) link (0-based indices).
func (l *Ledger) Record(from, to int, bytes int64) {
	if l.links == nil {
		l.links = make(map[[2]int]*LinkBytes)
	}
	k := [2]int{from, to}
	lb := l.links[k]
	if lb == nil {
		lb = &LinkBytes{From: from + 1, To: to + 1}
		l.links[k] = lb
	}
	lb.Bytes += bytes
	lb.Transfers++
}

// Links returns the per-link records ordered by (from, to) — a
// deterministic export regardless of recording order.
func (l *Ledger) Links() []LinkBytes {
	out := make([]LinkBytes, 0, len(l.links))
	for _, lb := range l.links {
		out = append(out, *lb)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// TotalBytes sums shipment traffic across links.
func (l *Ledger) TotalBytes() int64 {
	var n int64
	for _, lb := range l.Links() {
		n += lb.Bytes
	}
	return n
}
