// Package gpusim models the GPU on which DiffKV runs. It is an analytic
// cost model, not an instruction simulator: every quantity the paper's
// performance evaluation depends on (HBM bandwidth, tensor-core throughput,
// kernel-launch overhead, host-device synchronization, parallel prefix-sum
// depth) is represented by a first-order term, calibrated against the
// NVIDIA L40 numbers reported in the paper (§7.1, §7.3).
//
// The package deliberately separates *what work happens* (computed by the
// real data structures in kvcache/attention) from *how long it takes*
// (computed here), so correctness is executed and time is modeled.
package gpusim

// Micros is simulated wall-clock time in microseconds.
type Micros float64

// Millis converts to milliseconds for reporting.
func (m Micros) Millis() float64 { return float64(m) / 1e3 }

// Seconds converts to seconds for reporting.
func (m Micros) Seconds() float64 { return float64(m) / 1e6 }

// Device is the hardware model.
type Device struct {
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// LanesPerSM is the number of concurrently executing lanes per SM used
	// for the parallel-work term of on-GPU kernels.
	LanesPerSM int
	// HBMBandwidth is the attainable memory bandwidth in bytes/µs
	// (i.e. GB/s ≈ 1e3 bytes/µs).
	HBMBandwidth float64
	// TensorTFLOPs is the effective FP16 tensor throughput in FLOPs/µs.
	TensorTFLOPs float64
	// KernelLaunch is the fixed overhead of launching one kernel, µs.
	KernelLaunch Micros
	// HostSync is the cost of one host-device synchronization, µs.
	HostSync Micros
	// PCIeBandwidth is host-device transfer bandwidth in bytes/µs.
	PCIeBandwidth float64
	// PCIeLatency is the fixed per-transfer latency, µs.
	PCIeLatency Micros
	// PCIeOverlapFrac is the fraction of a host-device transfer that can
	// be hidden behind concurrent kernel execution (copy engines run
	// asynchronously; the remainder stalls the stream on synchronization
	// and page-table updates). Calibrated, not datasheet: transfers
	// overlap well until they contend with the attention kernels for HBM.
	PCIeOverlapFrac float64
	// NICBandwidth is cross-instance network bandwidth in bytes/µs (the
	// per-GPU share of the node's RDMA-capable fabric), NICLatency the
	// fixed per-message cost (link + switch traversal + registration),
	// and NICOverlapFrac the fraction of an incoming transfer's DMA that
	// hides behind concurrent kernel execution on the receiving device —
	// the NIC writes GPU memory through the same copy engines as PCIe,
	// so ingest contends with attention for HBM just like swap-in does.
	// These parameterize disaggregated prefill→decode KV shipment
	// (NICTransfer / NICStall).
	NICBandwidth   float64
	NICLatency     Micros
	NICOverlapFrac float64
	// MemoryBytes is total device memory.
	MemoryBytes int64
	// CPUTokenOpMicros is the per-token bookkeeping cost of the on-CPU
	// memory-management comparator (managed-runtime list manipulation),
	// and CPUThreadsMax bounds its thread pool. Calibrated to Fig. 13.
	CPUTokenOpMicros float64
	CPUThreadsMax    int
}

// L40 returns the evaluation GPU of the paper: NVIDIA L40, 48 GB.
//
// Bandwidth/throughput are the public datasheet numbers derated to
// attainable levels; KernelLaunch/HostSync are typical CUDA figures; the
// CPU comparator constants are calibrated so the Fig. 13 comparison
// reproduces the paper's orders of magnitude.
func L40() *Device {
	return &Device{
		Name:            "NVIDIA-L40",
		SMs:             142,
		LanesPerSM:      128,
		HBMBandwidth:    864e3, // 864 GB/s
		TensorTFLOPs:    165e6, // ~165 TFLOPs effective FP16
		KernelLaunch:    8,
		HostSync:        18,
		PCIeBandwidth:   16e3, // 16 GB/s effective PCIe 4.0 x16
		PCIeLatency:     10,
		PCIeOverlapFrac: 0.6,
		NICBandwidth:    12.5e3, // 100 GbE RoCE, ~12.5 GB/s effective
		NICLatency:      25,
		NICOverlapFrac:  0.7,
		MemoryBytes:     48 << 30,
		// ~4.4 µs per token-region op on the CPU path, thread pool grows
		// with batch up to 96 threads (matches the sublinear batch scaling
		// in Fig. 13).
		CPUTokenOpMicros: 4.4,
		CPUThreadsMax:    96,
	}
}

// Cluster is a group of identical devices executing a tensor-parallel
// partition of the model (one worker per GPU, paper §6.1).
type Cluster struct {
	Device *Device
	GPUs   int
}

// NewCluster builds a cluster of n devices.
func NewCluster(d *Device, n int) *Cluster {
	if n < 1 {
		n = 1
	}
	return &Cluster{Device: d, GPUs: n}
}

// TotalMemory returns aggregate device memory.
func (c *Cluster) TotalMemory() int64 {
	return c.Device.MemoryBytes * int64(c.GPUs)
}

// A100 returns an NVIDIA A100-80GB model (SXM): the previous-generation
// datacenter GPU, with ~2.4x the L40's memory bandwidth. Useful for
// sensitivity analysis: DiffKV's attention speedup tracks bytes moved, so
// its relative gains are bandwidth-invariant while absolute latencies
// shift.
func A100() *Device {
	return &Device{
		Name:             "NVIDIA-A100-80G",
		SMs:              108,
		LanesPerSM:       128,
		HBMBandwidth:     2039e3,
		TensorTFLOPs:     280e6,
		KernelLaunch:     8,
		HostSync:         18,
		PCIeBandwidth:    25e3,
		PCIeLatency:      10,
		PCIeOverlapFrac:  0.6,
		NICBandwidth:     25e3, // 200 Gb/s HDR InfiniBand
		NICLatency:       15,
		NICOverlapFrac:   0.75,
		MemoryBytes:      80 << 30,
		CPUTokenOpMicros: 4.4,
		CPUThreadsMax:    96,
	}
}

// H100 returns an NVIDIA H100-80GB model (SXM).
func H100() *Device {
	return &Device{
		Name:             "NVIDIA-H100-80G",
		SMs:              132,
		LanesPerSM:       128,
		HBMBandwidth:     3350e3,
		TensorTFLOPs:     850e6,
		KernelLaunch:     8,
		HostSync:         18,
		PCIeBandwidth:    50e3,
		PCIeLatency:      8,
		PCIeOverlapFrac:  0.7,
		NICBandwidth:     50e3, // 400 Gb/s NDR InfiniBand
		NICLatency:       12,
		NICOverlapFrac:   0.8,
		MemoryBytes:      80 << 30,
		CPUTokenOpMicros: 4.4,
		CPUThreadsMax:    96,
	}
}

// Devices lists the configured hardware models.
func Devices() []*Device {
	return []*Device{L40(), A100(), H100()}
}
