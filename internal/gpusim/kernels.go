package gpusim

import "math"

// MemBoundKernel returns the duration of a memory-bandwidth-bound kernel
// that moves `bytes` through HBM at the given utilization (0 < util <= 1),
// plus one launch overhead.
func (d *Device) MemBoundKernel(bytes float64, util float64) Micros {
	if util <= 0 || util > 1 {
		panic("gpusim: utilization out of (0,1]")
	}
	return d.KernelLaunch + Micros(bytes/(d.HBMBandwidth*util))
}

// AttentionBandwidthUtil is the fraction of peak bandwidth the attention
// kernel attains. The paper's custom layouts coalesce accesses; quantized
// pages pay a small extra cost for metadata access and in-register
// dequantization (§7.3: K8V8 achieves 1.7x of the theoretical 2.0x).
const (
	attnUtilFP16  = 0.90
	attnUtilQuant = 0.82
)

// AttentionKernel returns the time of one paged-attention kernel over a
// compressed KV cache.
//
//	bytesHBM   – total KV bytes touched (payload + metadata + table)
//	quantized  – whether on-the-fly dequantization runs
//	seqSplits  – sequence-dimension parallel segments (≥1); splitting adds a
//	             small merge cost but increases SM occupancy on long
//	             sequences.
func (d *Device) AttentionKernel(bytesHBM float64, quantized bool, seqSplits int) Micros {
	util := attnUtilFP16
	if quantized {
		util = attnUtilQuant
	}
	if seqSplits < 1 {
		seqSplits = 1
	}
	t := d.MemBoundKernel(bytesHBM, util)
	if seqSplits > 1 {
		// merge kernel: one small reduction per split
		t += d.KernelLaunch + Micros(float64(seqSplits)*0.5)
	}
	return t
}

// LinearLayers returns the time of the non-attention portion of one model
// step (QKV/output projections + MLP): memory-bound on weight reads for
// small batches, compute-bound for large token counts.
//
//	weightBytes – total parameter bytes resident on this GPU
//	tokens      – tokens processed this step across the batch (batch size
//	              during generation; sum of prompt lengths during prompt)
func (d *Device) LinearLayers(weightBytes float64, tokens int) Micros {
	// 2 FLOPs per parameter per token
	flops := 2 * (weightBytes / 2) * float64(tokens)
	computeT := flops / d.TensorTFLOPs
	memT := weightBytes / d.HBMBandwidth
	t := math.Max(computeT, memT)
	return Micros(t) + d.KernelLaunch
}

// GPUCompaction returns the time of one on-GPU parallel KV compaction pass
// (paper §5.2): a fully parallel planning phase over every
// (request, head) region, a prefix-sum coordination phase, and a handful of
// fixed kernel launches.
//
//	tokenOps – total per-token planning operations this step (≈ tokens
//	           scanned across all heads and requests)
//	regions  – number of (request × head) regions coordinated
func (d *Device) GPUCompaction(tokenOps, regions int) Micros {
	lanes := float64(d.SMs * d.LanesPerSM)
	// planning: embarrassingly parallel, ~4 cycles/op at ~1.5 GHz
	planning := Micros(float64(tokenOps) / lanes * 0.0027)
	// coordination: work-efficient scan, log2(regions) dependent steps
	steps := 1.0
	if regions > 1 {
		steps = math.Ceil(math.Log2(float64(regions)))
	}
	coordination := Micros(steps * 2.2)
	// fixed pipeline: plan, scan, gather, scatter kernels
	launches := 4 * d.KernelLaunch
	return launches + planning + coordination
}

// CPUMemoryManagement returns the time of the on-CPU multi-threaded
// comparator (Fig. 13): every (request, head) region is scanned on the host
// (managed-runtime list ops per token), the thread pool grows with batch
// size, and the resulting page tables cross PCIe with a host sync.
func (d *Device) CPUMemoryManagement(tokenOps, regions, batch int) Micros {
	threads := 4 * batch
	if threads > d.CPUThreadsMax {
		threads = d.CPUThreadsMax
	}
	if threads < 1 {
		threads = 1
	}
	scan := Micros(float64(tokenOps) * d.CPUTokenOpMicros / float64(threads))
	// page-table transfer: 8 bytes per region entry, one round trip
	xfer := d.PCIeLatency*2 + Micros(float64(regions)*8/d.PCIeBandwidth)
	return scan + xfer + d.HostSync
}

// PCIeTransfer returns the duration of one host-device DMA moving `bytes`
// in either direction: the fixed per-transfer latency (doorbell, descriptor
// fetch) plus the bandwidth term. The offload tier uses it for KV swap
// traffic (D2H on swap-out, H2D on swap-in/prefetch).
func (d *Device) PCIeTransfer(bytes float64) Micros {
	if bytes <= 0 {
		return 0
	}
	return d.PCIeLatency + Micros(bytes/d.PCIeBandwidth)
}

// TransferStall returns the portion of a host-device transfer that cannot
// be hidden behind concurrent kernel execution of `compute` duration: copy
// engines overlap up to PCIeOverlapFrac of the compute window, and whatever
// exceeds it stalls the stream. This is the transfer time a serving step
// actually pays.
func (d *Device) TransferStall(xfer, compute Micros) Micros {
	if xfer <= 0 {
		return 0
	}
	overlap := d.PCIeOverlapFrac
	if overlap < 0 {
		overlap = 0
	} else if overlap > 1 {
		overlap = 1
	}
	hidden := Micros(overlap * float64(compute))
	if hidden >= xfer {
		return 0
	}
	return xfer - hidden
}

// NICTransfer returns the duration of one cross-instance network transfer
// moving `bytes` between two serving instances: the fixed per-message
// latency (link + switch traversal + memory registration) plus the
// bandwidth term. Disaggregated serving uses it to price shipping a
// finished prefill's KV pages to the chosen decode instance — compressed
// pages cross the wire at their packed size, so a K4V2 sequence ships
// several times cheaper than FP16.
func (d *Device) NICTransfer(bytes float64) Micros {
	if bytes <= 0 {
		return 0
	}
	return d.NICLatency + Micros(bytes/d.NICBandwidth)
}

// NICStall returns the portion of an incoming network transfer's device
// DMA that cannot hide behind concurrent kernel execution of `compute`
// duration on the receiving instance: the NIC writes GPU memory through
// the copy engines, overlapping up to NICOverlapFrac of the compute
// window, and the excess stalls the stream — the ingest tax a decode
// instance pays when it adopts a shipped sequence mid-batch.
func (d *Device) NICStall(xfer, compute Micros) Micros {
	if xfer <= 0 {
		return 0
	}
	overlap := d.NICOverlapFrac
	if overlap < 0 {
		overlap = 0
	} else if overlap > 1 {
		overlap = 1
	}
	hidden := Micros(overlap * float64(compute))
	if hidden >= xfer {
		return 0
	}
	return xfer - hidden
}

// SchedulerOverhead is the per-step host-side scheduling cost for a batch.
func (d *Device) SchedulerOverhead(batch int) Micros {
	return Micros(40 + 2*float64(batch))
}

// CompressorKernel returns the time of the KV-compressor kernel that
// quantizes this step's new keys/values and updates significance scores
// (paper §6.1). It is bandwidth-bound on the tensors it reads and writes.
func (d *Device) CompressorKernel(bytesTouched float64) Micros {
	return d.MemBoundKernel(bytesTouched, 0.75)
}
