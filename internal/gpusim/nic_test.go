package gpusim

import "testing"

// TestNICTransferZeroBytes pins the fast path: a zero- or negative-byte
// transfer costs nothing — no per-message latency is charged for
// sequences with no KV to ship (e.g. a fully cached prefill).
func TestNICTransferZeroBytes(t *testing.T) {
	for _, d := range Devices() {
		if got := d.NICTransfer(0); got != 0 {
			t.Fatalf("%s: NICTransfer(0) = %v, want 0", d.Name, got)
		}
		if got := d.NICTransfer(-1); got != 0 {
			t.Fatalf("%s: NICTransfer(-1) = %v, want 0", d.Name, got)
		}
	}
}

// TestNICTransferMonotonic pins strict monotonicity in bytes: more KV on
// the wire always costs more, and every positive transfer pays at least
// the fixed per-message latency.
func TestNICTransferMonotonic(t *testing.T) {
	for _, d := range Devices() {
		if d.NICBandwidth <= 0 || d.NICLatency <= 0 {
			t.Fatalf("%s: NIC model not calibrated (bw=%v lat=%v)",
				d.Name, d.NICBandwidth, d.NICLatency)
		}
		prev := Micros(0)
		for _, bytes := range []float64{1, 4 << 10, 1 << 20, 64 << 20, 1 << 30} {
			got := d.NICTransfer(bytes)
			if got <= prev {
				t.Fatalf("%s: NICTransfer(%g) = %v, not above %v", d.Name, bytes, got, prev)
			}
			if got < d.NICLatency {
				t.Fatalf("%s: NICTransfer(%g) = %v below fixed latency %v",
					d.Name, bytes, got, d.NICLatency)
			}
			prev = got
		}
	}
}

// TestNICTransferCalibration sanity-checks the bandwidth term against the
// configured link rate: a large transfer's duration must converge to
// bytes/NICBandwidth within the fixed latency.
func TestNICTransferCalibration(t *testing.T) {
	for _, d := range Devices() {
		bytes := float64(1 << 30)
		want := Micros(bytes / d.NICBandwidth)
		got := d.NICTransfer(bytes)
		if got < want || got > want+d.NICLatency {
			t.Fatalf("%s: NICTransfer(1GiB) = %v, want [%v, %v]",
				d.Name, got, want, want+d.NICLatency)
		}
	}
}

// TestNICStall pins the overlap model: zero transfers stall nothing, a
// transfer fully covered by overlapping compute stalls nothing, and a
// transfer with no compute to hide behind stalls in full.
func TestNICStall(t *testing.T) {
	d := L40()
	if got := d.NICStall(0, 1000); got != 0 {
		t.Fatalf("NICStall(0, 1000) = %v, want 0", got)
	}
	if got := d.NICStall(100, 0); got != 100 {
		t.Fatalf("NICStall(100, 0) = %v, want 100 (nothing to hide behind)", got)
	}
	// xfer far smaller than overlap * compute: fully hidden
	if got := d.NICStall(10, 1e6); got != 0 {
		t.Fatalf("NICStall(10, 1e6) = %v, want 0 (fully hidden)", got)
	}
	// partial: xfer 1000, compute 1000, overlap 0.7 -> 300 exposed
	if got := d.NICStall(1000, 1000); got != Micros(1000-0.7*1000) {
		t.Fatalf("NICStall(1000, 1000) = %v, want 300", got)
	}
	// monotone in xfer for fixed compute
	if d.NICStall(2000, 1000) <= d.NICStall(1000, 1000) {
		t.Fatal("NICStall not monotone in transfer size")
	}
}
