package gpusim

import (
	"math"
	"testing"
)

func TestMicrosConversions(t *testing.T) {
	m := Micros(1500)
	if m.Millis() != 1.5 {
		t.Fatalf("Millis = %v", m.Millis())
	}
	if m.Seconds() != 0.0015 {
		t.Fatalf("Seconds = %v", m.Seconds())
	}
}

func TestL40Shape(t *testing.T) {
	d := L40()
	if d.MemoryBytes != 48<<30 {
		t.Fatalf("L40 memory = %d", d.MemoryBytes)
	}
	if d.SMs != 142 {
		t.Fatalf("L40 SMs = %d", d.SMs)
	}
}

func TestMemBoundKernelScalesWithBytes(t *testing.T) {
	d := L40()
	t1 := d.MemBoundKernel(1e6, 0.9)
	t2 := d.MemBoundKernel(2e6, 0.9)
	if t2 <= t1 {
		t.Fatal("kernel time must grow with bytes")
	}
	// asymptotically double (minus launch overhead)
	ratio := float64(t2-d.KernelLaunch) / float64(t1-d.KernelLaunch)
	if math.Abs(ratio-2) > 1e-9 {
		t.Fatalf("bytes scaling ratio = %v", ratio)
	}
}

func TestMemBoundKernelPanicsOnBadUtil(t *testing.T) {
	d := L40()
	for _, u := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for util %v", u)
				}
			}()
			d.MemBoundKernel(1e6, u)
		}()
	}
}

func TestAttentionKernelQuantizedSlowerPerByte(t *testing.T) {
	d := L40()
	// same bytes: quantized pays the dequant/metadata penalty
	fp := d.AttentionKernel(1e8, false, 1)
	q := d.AttentionKernel(1e8, true, 1)
	if q <= fp {
		t.Fatal("quantized kernel should be slower for equal bytes")
	}
}

func TestAttentionKernelCompressionWins(t *testing.T) {
	d := L40()
	// K8V8 halves the payload: speedup must be >1.5x but below the
	// theoretical 2x (paper reports 1.7x).
	fpBytes := 1e9
	qBytes := fpBytes/2 + fpBytes/2*0.09 // payload/2 + metadata overhead
	fp := d.AttentionKernel(fpBytes, false, 1)
	q := d.AttentionKernel(qBytes, true, 1)
	speedup := float64(fp) / float64(q)
	if speedup < 1.5 || speedup > 2.0 {
		t.Fatalf("K8V8-like speedup = %v, want in (1.5, 2.0)", speedup)
	}
}

func TestAttentionKernelSeqSplit(t *testing.T) {
	d := L40()
	base := d.AttentionKernel(1e8, true, 1)
	split := d.AttentionKernel(1e8, true, 8)
	if split <= base {
		t.Fatal("sequence splitting should add merge cost")
	}
	if float64(split) > float64(base)*1.5 {
		t.Fatal("merge cost should be minimal (paper §6.2)")
	}
}

func TestLinearLayersMemoryBoundSmallBatch(t *testing.T) {
	d := L40()
	weightBytes := 16e9 // Llama3-8B FP16
	one := d.LinearLayers(weightBytes, 1)
	eight := d.LinearLayers(weightBytes, 8)
	// small batches are weight-read bound: time nearly flat
	if float64(eight) > float64(one)*1.2 {
		t.Fatalf("generation should be weight-bound: %v vs %v", one, eight)
	}
	// ~18.5ms for 16GB at 864GB/s
	if one.Millis() < 15 || one.Millis() > 25 {
		t.Fatalf("weight-read time = %vms, want ~18.5", one.Millis())
	}
}

func TestLinearLayersComputeBoundPrompt(t *testing.T) {
	d := L40()
	weightBytes := 16e9
	// 8 sequences x 1024 prompt tokens: compute bound
	tPrompt := d.LinearLayers(weightBytes, 8*1024)
	if tPrompt.Millis() < 100 {
		t.Fatalf("prompt step suspiciously fast: %vms", tPrompt.Millis())
	}
	// must scale with tokens once compute bound
	tPrompt2 := d.LinearLayers(weightBytes, 16*1024)
	if float64(tPrompt2) < 1.8*float64(tPrompt) {
		t.Fatalf("compute-bound scaling broken: %v -> %v", tPrompt, tPrompt2)
	}
}

func TestGPUCompactionOrdersFasterThanCPU(t *testing.T) {
	d := L40()
	// batch 8, Llama3-8B: 8 req x 256 head-instances x 1024 tokens
	tokenOps := 8 * 256 * 1024
	regions := 8 * 256
	gpu := d.GPUCompaction(tokenOps, regions)
	cpu := d.CPUMemoryManagement(tokenOps, regions, 8)
	if ratio := float64(cpu) / float64(gpu); ratio < 50 {
		t.Fatalf("CPU/GPU compaction ratio = %v, want >= 50 (paper: up to 3 orders)", ratio)
	}
}

func TestGPUCompactionFig13Magnitudes(t *testing.T) {
	d := L40()
	// Fig. 13a prompt phase: DiffKV ~1.4-1.5ms, on-CPU ~285-366ms.
	for _, batch := range []int{8, 32} {
		tokenOps := batch * 256 * 1024
		regions := batch * 256
		gpu := d.GPUCompaction(tokenOps, regions)
		cpu := d.CPUMemoryManagement(tokenOps, regions, batch)
		if gpu.Millis() > 20 {
			t.Fatalf("batch %d: GPU compaction %vms, want few ms", batch, gpu.Millis())
		}
		if cpu.Millis() < 100 || cpu.Millis() > 1200 {
			t.Fatalf("batch %d: CPU memmgmt %vms, want hundreds of ms", batch, cpu.Millis())
		}
	}
}

func TestCPUMemoryManagementSublinearInBatch(t *testing.T) {
	// Fig. 13: batch 8 -> 32 grows far less than 4x (thread pool scales).
	d := L40()
	t8 := d.CPUMemoryManagement(8*256*1024, 8*256, 8)
	t32 := d.CPUMemoryManagement(32*256*1024, 32*256, 32)
	growth := float64(t32) / float64(t8)
	if growth > 2.5 {
		t.Fatalf("CPU memmgmt growth batch8->32 = %v, want sublinear (<2.5)", growth)
	}
}

func TestClusterMemory(t *testing.T) {
	c := NewCluster(L40(), 4)
	if c.TotalMemory() != 4*(48<<30) {
		t.Fatalf("cluster memory = %d", c.TotalMemory())
	}
	if NewCluster(L40(), 0).GPUs != 1 {
		t.Fatal("cluster should clamp to >=1 GPU")
	}
}

func TestSchedulerOverheadGrowsWithBatch(t *testing.T) {
	d := L40()
	if d.SchedulerOverhead(32) <= d.SchedulerOverhead(1) {
		t.Fatal("scheduler overhead should grow with batch")
	}
}

func TestCompressorKernel(t *testing.T) {
	d := L40()
	small := d.CompressorKernel(1e5)
	big := d.CompressorKernel(1e7)
	if big <= small {
		t.Fatal("compressor cost must scale with bytes")
	}
}

func TestDevicePresetsOrdering(t *testing.T) {
	l40, a100, h100 := L40(), A100(), H100()
	if !(l40.HBMBandwidth < a100.HBMBandwidth && a100.HBMBandwidth < h100.HBMBandwidth) {
		t.Fatal("bandwidth ordering wrong")
	}
	if a100.MemoryBytes != 80<<30 || h100.MemoryBytes != 80<<30 {
		t.Fatal("memory sizes wrong")
	}
	if len(Devices()) != 3 {
		t.Fatal("device list incomplete")
	}
}

func TestAttentionSpeedupBandwidthInvariant(t *testing.T) {
	// the K8V4-vs-FP16 kernel speedup is a byte ratio: it must hold within
	// a few percent on every device (launch overhead shifts it slightly)
	for _, d := range Devices() {
		fp := d.AttentionKernel(1e9, false, 1)
		q := d.AttentionKernel(1e9*216/512, true, 1)
		speedup := float64(fp) / float64(q)
		if speedup < 1.8 || speedup > 2.4 {
			t.Fatalf("%s: K8V4 speedup = %v", d.Name, speedup)
		}
	}
}
