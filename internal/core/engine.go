// Package core composes the DiffKV system: the synthetic model substrate,
// the compression policy, the paged memory manager and the attention
// kernels, wired into the per-sequence pipeline of the paper (§6.1) —
// prompt-phase compression followed by autoregressive generation with
// Algorithm 1, measuring output fidelity and memory footprint as it goes.
package core

import (
	"fmt"
	"math"

	"diffkv/internal/attention"
	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/quant"
	"diffkv/internal/synth"
)

// Config parameterizes one engine run.
type Config struct {
	Model  *synth.ModelConfig
	Params policy.Params
	// HiPrec / LoPrec are the two storage tiers (defaults K8V4 / K4V2).
	HiPrec, LoPrec quant.Precision
	PageBytes      int
	// SampleLayers / SampleHeads bound the (layer, head) pairs simulated
	// for fidelity measurement — attention statistics are i.i.d. across
	// pairs given the per-layer profile, so a sample estimates the full
	// model (defaults 2 / 2).
	SampleLayers int
	SampleHeads  int
	// ProbeEvery measures real compressed-vs-reference attention error
	// every ProbeEvery generation steps (default 32).
	ProbeEvery int
	// DensityScale is the workload information-density divisor (see
	// synth.Profile).
	DensityScale float64
	// PerHeadThresholds enables the paper's future-work extension (§4
	// Discussion): each head scales αh by its own observed sparsity, so
	// dense heads lower the bar (keeping more of their many useful
	// tokens) and sparse heads raise it. The paper uses shared thresholds
	// and argues they suffice; the abl-perhead experiment quantifies the
	// difference.
	PerHeadThresholds bool
	Seed              uint64
}

func (c *Config) validate() error {
	if c.Model == nil {
		return fmt.Errorf("core: Model is required")
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.HiPrec == (quant.Precision{}) {
		c.HiPrec = quant.K8V4
	}
	if c.LoPrec == (quant.Precision{}) {
		c.LoPrec = quant.K4V2
	}
	if c.PageBytes <= 0 {
		c.PageBytes = 8192
	}
	if c.SampleLayers <= 0 {
		c.SampleLayers = 2
	}
	if c.SampleHeads <= 0 {
		c.SampleHeads = 2
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 32
	}
	if c.DensityScale <= 0 {
		c.DensityScale = 1
	}
	return nil
}

// SequenceResult summarizes one sequence run.
type SequenceResult struct {
	// OutputErr is the mean relative L2 error of compressed attention
	// outputs against the FP16 reference across probes, layers and heads.
	OutputErr float64
	// MemFrac is the KV-cache bytes (payload+metadata+window) divided by
	// the vLLM FP16 KV bytes for the same tokens, averaged over probes.
	MemFrac float64
	// Breakdown is the final fraction of tokens per tier (Fig. 12).
	Breakdown policy.Breakdown
	// Probes is the number of fidelity probes taken.
	Probes int
}

// Engine runs DiffKV sequences against the synthetic substrate.
type Engine struct {
	cfg Config
}

// NewEngine validates cfg and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// Config returns the engine's validated configuration.
func (e *Engine) Config() Config { return e.cfg }

// vLLM FP16 KV payload per token per head (no quantization metadata): K and
// V at 2 bytes per element.
func fp16TokenBytes(dim int) int { return 4 * dim }

// RunSequence simulates one request of promptLen prompt tokens and genLen
// generated tokens through the full DiffKV pipeline and reports fidelity
// and memory.
func (e *Engine) RunSequence(promptLen, genLen int, seqSeed uint64) (SequenceResult, error) {
	cfg := e.cfg
	model := cfg.Model
	dim := model.HeadDim
	total := promptLen + genLen
	root := mathx.NewRNG(cfg.Seed ^ (seqSeed*0x9e3779b97f4a7c15 + 1))

	// pick evenly spaced layers and heads to sample
	layers := samplePoints(model.Layers, cfg.SampleLayers)
	heads := samplePoints(model.KVHeads, cfg.SampleHeads)

	var errSum, memSum float64
	var probes int
	var bd policy.Breakdown
	var bdN int

	for _, layer := range layers {
		for _, head := range heads {
			r, err := e.runHead(layer, head, promptLen, genLen, total, dim, root)
			if err != nil {
				return SequenceResult{}, err
			}
			errSum += r.errSum
			memSum += r.memSum
			probes += r.probes
			bd.High += r.bd.High
			bd.Low += r.bd.Low
			bd.Pruned += r.bd.Pruned
			bdN++
		}
	}
	if probes == 0 {
		return SequenceResult{}, fmt.Errorf("core: no probes taken (genLen %d too short?)", genLen)
	}
	return SequenceResult{
		OutputErr: errSum / float64(probes),
		MemFrac:   memSum / float64(probes),
		Breakdown: policy.Breakdown{
			High:   bd.High / float64(bdN),
			Low:    bd.Low / float64(bdN),
			Pruned: bd.Pruned / float64(bdN),
		},
		Probes: probes,
	}, nil
}

type headRun struct {
	errSum float64
	memSum float64
	probes int
	bd     policy.Breakdown
}

func (e *Engine) runHead(layer, head, promptLen, genLen, total, dim int, root *mathx.RNG) (headRun, error) {
	cfg := e.cfg
	model := cfg.Model
	hseed := uint64(layer)*1000 + uint64(head)
	reqRNG := root.SplitAt(hseed)
	prof := synth.Profile(model, layer, head, cfg.DensityScale, reqRNG)
	data := synth.GenHead(model, prof, total, reqRNG.SplitAt(1))

	params := cfg.Params
	if cfg.PerHeadThresholds {
		// reference sparsity 0.3: heads denser than that relax αh, heads
		// sparser tighten it, within [0.5x, 2x]
		scale := mathx.Clamp(0.3/prof.HeavyFrac, 0.5, 2)
		params.AlphaH *= scale
	}

	// one manager per head keeps page accounting independent
	pages := 4 * (total/e.tokensPerHiPage(dim) + 2)
	mgr, err := kvcache.NewManager(kvcache.Config{
		Dim: dim, PageBytes: cfg.PageBytes, NumPages: pages,
		HiPrec: cfg.HiPrec, LoPrec: cfg.LoPrec,
		MaxSeqLen: total + 1, Materialize: true,
	})
	if err != nil {
		return headRun{}, err
	}
	sc, err := mgr.AddSequence(0, 1)
	if err != nil {
		return headRun{}, err
	}
	hc := sc.Heads[0]

	gp, err := policy.NewGenPolicy(params, dim, total)
	if err != nil {
		return headRun{}, err
	}

	// ---- prompt phase ----
	// significance from real attention over the prompt (max-aggregated
	// across the GQA group inside SignificancePrefix)
	sig := data.SignificancePrefix(model, promptLen, reqRNG.SplitAt(2))
	levels := policy.ClassifyPrompt(sig, params)
	for i := 0; i < promptLen; i++ {
		gp.Sig.Seed(i, sig[i])
		switch levels[i] {
		case policy.LevelHigh:
			err = hc.AppendToken(kvcache.LevelHi, data.Keys[i], data.Vals[i], sig[i], int32(i))
		case policy.LevelLow:
			err = hc.AppendToken(kvcache.LevelLo, data.Keys[i], data.Vals[i], sig[i], int32(i))
		}
		if err != nil {
			return headRun{}, err
		}
	}

	// ---- generation phase ----
	run := headRun{}
	expScores := newIncrementalScores(data.Logits)
	boost := float32(synth.GQAMaxBoost(model.QueriesPerKV))
	// kernel scratch reused across every probe of this head (one for the
	// compressed path, one for the reference, so both outputs stay live)
	var scComp, scRef attention.Scratch
	wbuf := make([]float32, total)
	for t := promptLen; t < total; t++ {
		// significance update: attention weights over the prefix,
		// observed from the substrate's incremental softmax (cheap path);
		// probes below use the real kernels. Scores are normalized by the
		// prefix length (see policy package docs) and inflated by the GQA
		// max-aggregation factor, matching the prompt-phase measurement.
		weights := expScores.weightsInto(t, wbuf)
		for pos, w := range weights {
			gp.Sig.Add(pos, w*float32(t)*boost)
		}

		step := t - promptLen
		if step%cfg.ProbeEvery == 0 {
			probeErr, memFrac := e.probe(data, hc, gp, &scComp, &scRef, t, dim, reqRNG.SplitAt(3000+uint64(t)))
			run.errSum += probeErr
			run.memSum += memFrac
			run.probes++
		}

		if _, err := gp.Step(hc, data.Keys[t], data.Vals[t], int32(t)); err != nil {
			return headRun{}, err
		}
	}

	cached := float64(hc.TotalTokens() + len(gp.Window()))
	run.bd = policy.Breakdown{
		High:   (float64(hc.HiTokens()) + float64(len(gp.Window()))) / float64(total),
		Low:    float64(hc.LoTokens()) / float64(total),
		Pruned: (float64(total) - cached) / float64(total),
	}
	return run, nil
}

// probe measures real compressed-vs-reference attention error and the
// instantaneous memory fraction at step t. scComp and scRef are the
// caller's reusable kernel scratches (separate so both outputs stay valid
// for the error computation).
func (e *Engine) probe(data *synth.HeadData, hc *kvcache.HeadCache, gp *policy.GenPolicy, scComp, scRef *attention.Scratch, t, dim int, rng *mathx.RNG) (outErr, memFrac float64) {
	group := e.cfg.Model.QueriesPerKV
	if group > 4 {
		group = 4 // probing more query heads adds cost, not information
	}
	for g := 0; g < group; g++ {
		q := data.Query(rng)
		comp := scComp.Compressed(q, hc, gp.Window())
		ref := scRef.Reference(q, data.Keys[:t], data.Vals[:t])
		outErr += attention.OutputError(comp.Output, ref.Output)
	}
	outErr /= float64(group)

	kvBytes := float64(hc.KVBytes()) +
		float64(len(gp.Window())*quant.FP16.TokenBytes(dim))
	memFrac = kvBytes / float64(t*fp16TokenBytes(dim))
	return outErr, memFrac
}

// incrementalScores computes softmax attention weights over a growing
// prefix of fixed logits in O(prefix) per step using precomputed
// exponentials.
type incrementalScores struct {
	exps []float64
}

func newIncrementalScores(logits []float32) *incrementalScores {
	s := &incrementalScores{exps: make([]float64, 0, len(logits))}
	for _, l := range logits {
		x := float64(l)
		// logits are bounded (~[-12, 8]) by construction; clamp for safety
		if x > 60 {
			x = 60
		}
		s.exps = append(s.exps, math.Exp(x))
	}
	return s
}

// weightsInto writes the attention distribution of the token at position t
// over positions [0, t) into dst and returns dst[:t]. dst must have at
// least t capacity; the caller reuses one buffer across steps.
func (s *incrementalScores) weightsInto(t int, dst []float32) []float32 {
	if t <= 0 {
		return nil
	}
	if t > len(s.exps) {
		t = len(s.exps)
	}
	var sum float64
	for _, e := range s.exps[:t] {
		sum += e
	}
	out := dst[:t]
	inv := 1 / sum
	for j := 0; j < t; j++ {
		out[j] = float32(s.exps[j] * inv)
	}
	return out
}

func samplePoints(n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = i * n / k
	}
	return out
}

func (e *Engine) tokensPerHiPage(dim int) int {
	return kvcache.TokensPerPage(e.cfg.PageBytes, dim, e.cfg.HiPrec)
}
