package core

import (
	"math"
	"testing"

	"diffkv/internal/policy"
	"diffkv/internal/quant"
	"diffkv/internal/synth"
)

func quickEngine(t *testing.T, model *synth.ModelConfig, p policy.Params) *Engine {
	t.Helper()
	e, err := NewEngine(Config{
		Model:        model,
		Params:       p,
		SampleLayers: 2,
		SampleHeads:  2,
		ProbeEvery:   32,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Fatal("expected error for missing model")
	}
	e, err := NewEngine(Config{Model: synth.Llama3_8B, Params: policy.ParamsLlama3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.Config()
	if cfg.HiPrec != quant.K8V4 || cfg.LoPrec != quant.K4V2 {
		t.Fatal("precision defaults wrong")
	}
	if cfg.ProbeEvery != 32 || cfg.SampleLayers != 2 {
		t.Fatal("sampling defaults wrong")
	}
}

func TestRunSequenceBasic(t *testing.T) {
	e := quickEngine(t, synth.Llama3_8B, policy.ParamsLlama3)
	res, err := e.RunSequence(192, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes == 0 {
		t.Fatal("no probes")
	}
	if math.IsNaN(res.OutputErr) || res.OutputErr < 0 {
		t.Fatalf("bad OutputErr %v", res.OutputErr)
	}
	if res.MemFrac <= 0 || res.MemFrac >= 1 {
		t.Fatalf("MemFrac = %v, want in (0,1)", res.MemFrac)
	}
	sum := res.Breakdown.High + res.Breakdown.Low + res.Breakdown.Pruned
	if math.Abs(sum-1) > 0.02 {
		t.Fatalf("breakdown does not sum to 1: %+v", res.Breakdown)
	}
}

func TestRunSequenceNearLossless(t *testing.T) {
	// DiffKV's calibrated config must be near-lossless: output error well
	// below the uniform K4V2 error (~0.7) and near the K8V4 floor.
	e := quickEngine(t, synth.Llama3_8B, policy.ParamsLlama3)
	res, err := e.RunSequence(256, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputErr > 0.35 {
		t.Fatalf("DiffKV output error too high: %v", res.OutputErr)
	}
	if res.MemFrac > 0.55 {
		t.Fatalf("DiffKV memory fraction too high: %v", res.MemFrac)
	}
}

func TestRunSequenceCompressesMoreWithHigherAlphaH(t *testing.T) {
	// Raising αh moves tokens from the high tier to low/pruned: memory
	// must drop (or stay) and error must not improve.
	e1 := quickEngine(t, synth.Llama3_8B, policy.Params{AlphaH: 1, AlphaL: 0.02, Window: 32})
	e2 := quickEngine(t, synth.Llama3_8B, policy.Params{AlphaH: 5, AlphaL: 0.02, Window: 32})
	r1, err := e1.RunSequence(192, 96, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.RunSequence(192, 96, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MemFrac > r1.MemFrac+0.02 {
		t.Fatalf("higher αh should use less memory: %v vs %v", r2.MemFrac, r1.MemFrac)
	}
	if r2.Breakdown.High > r1.Breakdown.High {
		t.Fatalf("higher αh should shrink the high tier: %v vs %v",
			r2.Breakdown.High, r1.Breakdown.High)
	}
}

func TestRunSequenceDeterministic(t *testing.T) {
	e := quickEngine(t, synth.Llama3_8B, policy.ParamsLlama3)
	a, err := e.RunSequence(128, 96, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunSequence(128, 96, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.OutputErr != b.OutputErr || a.MemFrac != b.MemFrac {
		t.Fatal("same seed produced different results")
	}
	c, err := e.RunSequence(128, 96, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a.OutputErr == c.OutputErr {
		t.Fatal("different seeds produced identical error (suspicious)")
	}
}

func TestRunSequenceDensityScale(t *testing.T) {
	// Higher density scale (diffuse workloads like 5-shot MMLU) means
	// sparser attention and lower memory use — Fig. 12's workload
	// adaptivity.
	sparseCfg := Config{
		Model: synth.Llama3_8B, Params: policy.ParamsLlama3,
		SampleLayers: 2, SampleHeads: 2, Seed: 7, DensityScale: 2.5,
	}
	denseCfg := sparseCfg
	denseCfg.DensityScale = 0.7
	se, err := NewEngine(sparseCfg)
	if err != nil {
		t.Fatal(err)
	}
	de, err := NewEngine(denseCfg)
	if err != nil {
		t.Fatal(err)
	}
	var sMem, dMem float64
	for seed := uint64(0); seed < 3; seed++ {
		sr, err := se.RunSequence(192, 96, seed)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := de.RunSequence(192, 96, seed)
		if err != nil {
			t.Fatal(err)
		}
		sMem += sr.MemFrac
		dMem += dr.MemFrac
	}
	if sMem >= dMem {
		t.Fatalf("sparse workload should use less memory: %v vs %v", sMem/3, dMem/3)
	}
}

func TestSamplePoints(t *testing.T) {
	pts := samplePoints(32, 2)
	if len(pts) != 2 || pts[0] != 0 || pts[1] != 16 {
		t.Fatalf("samplePoints(32,2) = %v", pts)
	}
	all := samplePoints(3, 10)
	if len(all) != 3 {
		t.Fatalf("oversampling should clamp: %v", all)
	}
}

func TestIncrementalScoresMatchSoftmax(t *testing.T) {
	logits := []float32{1, -2, 3, 0.5}
	s := newIncrementalScores(logits)
	buf := make([]float32, len(logits))
	w := s.weightsInto(3, buf)
	// manual softmax over first 3
	e1, e2, e3 := math.Exp(1), math.Exp(-2), math.Exp(3)
	sum := e1 + e2 + e3
	if math.Abs(float64(w[0])-e1/sum) > 1e-6 {
		t.Fatalf("weight[0] = %v", w[0])
	}
	if math.Abs(float64(w[2])-e3/sum) > 1e-6 {
		t.Fatalf("weight[2] = %v", w[2])
	}
	if s.weightsInto(0, buf) != nil {
		t.Fatal("empty prefix should be nil")
	}
	// t beyond length clamps
	if len(s.weightsInto(100, buf)) != 4 {
		t.Fatal("clamp failed")
	}
}
