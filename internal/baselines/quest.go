package baselines

import (
	"math"
	"sort"

	"diffkv/internal/mathx"
	"diffkv/internal/synth"
)

// mathInfNeg is the float32 negative-infinity seed for max reductions.
var mathInfNeg = float32(math.Inf(-1))

// Quest is the query-aware partial-loading baseline: the full FP16 cache
// stays resident (no memory saving for batching), but each query loads
// only the most promising pages, estimated from per-page min/max key
// envelopes. Its speedup comes from reading fewer bytes; its accuracy cost
// comes from pages the estimate misses.
type Quest struct {
	// PageSize is the tokens-per-page granularity of selection
	// (default 16).
	PageSize int
	// Budget is the fraction of pages loaded per query (default 0.5, the
	// Table 1 setting).
	Budget float64
}

// Name implements Method.
func (Quest) Name() string { return "Quest" }

// Evaluate implements Method.
func (m Quest) Evaluate(model *synth.ModelConfig, data *synth.HeadData, sig []float32, probes int, rng *mathx.RNG) EvalResult {
	ps := m.PageSize
	if ps <= 0 {
		ps = 16
	}
	budget := m.Budget
	if budget <= 0 {
		budget = 0.5
	}
	n := data.Len()
	numPages := (n + ps - 1) / ps

	loadPages := int(budget * float64(numPages))
	if loadPages < 1 {
		loadPages = 1
	}

	e := probeErr(data, probes, rng, func(q []float32) []float32 {
		// Page criticality: Quest's min/max channel envelope upper-bounds
		// the page's maximum q·k. On this substrate the persistent key
		// outlier channels make the envelope bound loose in the same way
		// for every page, so we use the bounded quantity itself — the
		// per-page maximum dot product — as the idealized (best-case)
		// Quest estimate. Quest's accuracy here is therefore an upper
		// bound on the real system's.
		type pageScore struct {
			p     int
			score float32
		}
		scores := make([]pageScore, numPages)
		for p := 0; p < numPages; p++ {
			lo, hi := p*ps, (p+1)*ps
			if hi > n {
				hi = n
			}
			best := float32(mathInfNeg)
			for j := lo; j < hi; j++ {
				s := mathx.Dot(q, data.Keys[j])
				if s > best {
					best = s
				}
			}
			scores[p] = pageScore{p, best}
		}
		sort.Slice(scores, func(a, b int) bool { return scores[a].score > scores[b].score })
		var idx []int
		for _, psel := range scores[:loadPages] {
			lo, hi := psel.p*ps, (psel.p+1)*ps
			if hi > n {
				hi = n
			}
			for j := lo; j < hi; j++ {
				idx = append(idx, j)
			}
		}
		sort.Ints(idx)
		return subsetAttention(q, data.Keys, data.Vals, idx)
	})

	// Reported per the paper's convention: the loading budget. The
	// *resident* memory is the full cache — serving experiments use
	// ServingTraits for that distinction.
	return EvalResult{OutputErr: e, MemFrac: budget}
}
