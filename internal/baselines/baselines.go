// Package baselines re-implements the KV-cache compression systems the
// paper compares against (§7.2, §7.3), each as a policy over the same
// synthetic substrate DiffKV runs on:
//
//	vLLM          – paged FP16, no compression (the normalization baseline)
//	INT4 (Atom)   – uniform 4-bit keys and values, group-wise quantization
//	KIVI          – uniform 2-bit with an uncompressed recent window
//	QAQ           – quality-adaptive uniform precision per token
//	H2O           – heavy-hitter pruning, uniform per-head budget
//	SnapKV        – prompt-window voting pruning, uniform per-head budget
//	Quest         – full cache retained, top-k page loading per query
//	DuoAttention  – retrieval heads full cache, streaming heads sink+recent
//
// Each method exposes the same evaluation protocol: build its cache state
// for one head's sequence, then probe attention fidelity against the FP16
// reference and account memory against vLLM's FP16 payload.
package baselines

import (
	"math"
	"sort"

	"diffkv/internal/stats"

	"diffkv/internal/attention"
	"diffkv/internal/mathx"
	"diffkv/internal/quant"
	"diffkv/internal/synth"
)

// EvalResult is one method's fidelity/memory outcome on one head.
type EvalResult struct {
	// OutputErr is the mean relative L2 attention-output error vs FP16.
	OutputErr float64
	// MemFrac is KV memory (payload+metadata) relative to vLLM FP16
	// payload. For Quest this is the per-query loading budget (the paper's
	// reporting convention); its resident cache is the full FP16 cache.
	MemFrac float64
}

// Method is a KV-cache compression baseline.
type Method interface {
	Name() string
	// Evaluate builds the method's cache state for the sequence in data
	// (using sig, the normalized per-token significance scores, where the
	// method needs importance estimates) and probes fidelity with `probes`
	// queries.
	Evaluate(model *synth.ModelConfig, data *synth.HeadData, sig []float32, probes int, rng *mathx.RNG) EvalResult
}

// fp16PayloadBytes is vLLM's per-token KV payload (K and V at 2 bytes per
// element, no quantization metadata).
func fp16PayloadBytes(dim int) int { return 4 * dim }

// probeErr measures the output error of method-specific attention (attnFn)
// against the reference over `probes` fresh queries. The reported error
// blends the mean with the 90th percentile: autoregressive task failure is
// driven by the worst steps, and pruning-style methods have spiky error
// distributions (a query that needs an evicted token fails hard) while
// quantization errors are uniform across queries.
func probeErr(data *synth.HeadData, probes int, rng *mathx.RNG,
	attnFn func(q []float32) []float32) float64 {
	if probes < 2 {
		probes = 2
	}
	samples := make([]float64, probes)
	var sum float64
	for p := 0; p < probes; p++ {
		q := data.Query(rng)
		ref := attention.Reference(q, data.Keys, data.Vals)
		out := attnFn(q)
		samples[p] = attention.OutputError(out, ref.Output)
		sum += samples[p]
	}
	mean := sum / float64(probes)
	p90 := stats.Quantile(samples, 0.9)
	return 0.5*mean + 0.5*p90
}

// subsetAttention computes FP16 attention restricted to the tokens in idx.
func subsetAttention(q []float32, keys, vals [][]float32, idx []int) []float32 {
	dim := len(q)
	logits := make([]float32, len(idx))
	invSqrt := float32(1 / math.Sqrt(float64(dim)))
	for n, j := range idx {
		logits[n] = mathx.Dot(q, keys[j]) * invSqrt
	}
	mathx.Softmax(logits, logits)
	out := make([]float32, dim)
	for n, j := range idx {
		mathx.Axpy(logits[n], vals[j], out)
	}
	return out
}

// reconAttention computes attention over reconstructed (dequantized) keys
// and values.
func reconAttention(q []float32, keys, vals [][]float32) []float32 {
	dim := len(q)
	logits := make([]float32, len(keys))
	invSqrt := float32(1 / math.Sqrt(float64(dim)))
	for j := range keys {
		logits[j] = mathx.Dot(q, keys[j]) * invSqrt
	}
	mathx.Softmax(logits, logits)
	out := make([]float32, dim)
	for j := range vals {
		mathx.Axpy(logits[j], vals[j], out)
	}
	return out
}

// topKBySig returns the indices of the k highest-significance tokens,
// always including the last `window` positions (every pruning baseline
// keeps a recent window).
func topKBySig(sig []float32, k, window int) []int {
	n := len(sig)
	if k >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	keep := make(map[int]bool, k)
	wStart := n - window
	if wStart < 0 {
		wStart = 0
	}
	for i := wStart; i < n; i++ {
		keep[i] = true
	}
	if len(keep) < k {
		order := make([]int, 0, wStart)
		for i := 0; i < wStart; i++ {
			order = append(order, i)
		}
		sort.Slice(order, func(a, b int) bool { return sig[order[a]] > sig[order[b]] })
		for _, i := range order {
			if len(keep) >= k {
				break
			}
			keep[i] = true
		}
	}
	idx := make([]int, 0, len(keep))
	for i := 0; i < n; i++ {
		if keep[i] {
			idx = append(idx, i)
		}
	}
	return idx
}

// VLLM is the uncompressed FP16 baseline.
type VLLM struct{}

// Name implements Method.
func (VLLM) Name() string { return "vLLM" }

// Evaluate implements Method: binary16 storage, error ≈ 0, memory 1.
func (VLLM) Evaluate(model *synth.ModelConfig, data *synth.HeadData, sig []float32, probes int, rng *mathx.RNG) EvalResult {
	dim := data.Dim
	keys := make([][]float32, data.Len())
	vals := make([][]float32, data.Len())
	for j := 0; j < data.Len(); j++ {
		keys[j] = quant.RoundTrip(data.Keys[j], quant.BitsF16)
		vals[j] = quant.RoundTrip(data.Vals[j], quant.BitsF16)
	}
	e := probeErr(data, probes, rng, func(q []float32) []float32 {
		return reconAttention(q, keys, vals)
	})
	_ = dim
	return EvalResult{OutputErr: e, MemFrac: 1}
}
