package baselines

import (
	"fmt"

	"diffkv/internal/registry"
)

// ServingMethod describes a KV-cache compression method to the serving
// layers: its name and the ServingTraits that drive the serving-engine
// cost model. It is the registry-facing counterpart of the fidelity
// Method interface — a method may implement both, but serving only needs
// this one. External packages implement ServingMethod and register it
// with RegisterServingMethod to run through the serving engine, the
// cluster simulator and scenario specs without touching internals.
type ServingMethod interface {
	Name() string
	// ServingTraits returns the method's serving behaviour. diffKVMemFrac
	// is the measured resident memory fraction of DiffKV-style methods
	// whose footprint is workload-dependent; methods with fixed traits
	// ignore it.
	ServingTraits(diffKVMemFrac float64) ServingTraits
}

// CompressionSetup carries the engine-level knobs of methods that run a
// real compression pipeline inside the serving engine, beyond what
// ServingTraits describe analytically.
type CompressionSetup struct {
	// UseManager runs the real counts-mode kvcache page manager (so
	// compaction work is performed, not assumed).
	UseManager bool
	// HiFrac / LoFrac are the mean per-head high/low tier fractions the
	// engine jitters per-head values around (only meaningful with
	// UseManager).
	HiFrac, LoFrac float64
}

// CompressionHook is optionally implemented by ServingMethods backed by a
// real compression pipeline: the serving stack consults it when building
// an engine so the method — not the caller — decides whether the page
// manager runs and with which tier mix.
type CompressionHook interface {
	Compression() CompressionSetup
}

// methods is the serving-method registry; the registration order defines
// the order ServingMethods reports (builtins first, third-party methods
// after, each in registration order).
var methods = registry.New[ServingMethod]("baselines", "serving method")

// RegisterServingMethod adds a method to the registry. Names are
// case-sensitive, must be non-empty and unique.
func RegisterServingMethod(m ServingMethod) error {
	if m == nil {
		return fmt.Errorf("baselines: nil ServingMethod")
	}
	return methods.Register(m.Name(), m)
}

// mustRegisterServingMethod registers builtins at init time.
func mustRegisterServingMethod(m ServingMethod) {
	if err := RegisterServingMethod(m); err != nil {
		panic(err)
	}
}

// ServingMethodByName looks a registered method up by name.
func ServingMethodByName(name string) (ServingMethod, error) {
	return methods.Lookup(name)
}

// ServingMethods lists registered method names in registration order —
// the derived counterpart of the old hard-coded list.
func ServingMethods() []string { return methods.Names() }

// fixedMethod is a builtin with workload-independent traits.
type fixedMethod struct {
	traits ServingTraits
}

func (f fixedMethod) Name() string                        { return f.traits.Name }
func (f fixedMethod) ServingTraits(float64) ServingTraits { return f.traits }

// diffKVMethod is the paper's system: its resident fraction is measured
// per workload and supplied by the caller, and it runs the real page
// manager via the compression hook.
type diffKVMethod struct{}

func (diffKVMethod) Name() string { return "DiffKV" }

func (diffKVMethod) ServingTraits(memFrac float64) ServingTraits {
	if memFrac <= 0 {
		// a zero fraction would zero the engine's capacity model; 0.3 is
		// the measured MATH-workload default the CLIs have always used
		memFrac = 0.3
	}
	return TraitsDiffKV(memFrac)
}

func (diffKVMethod) Compression() CompressionSetup {
	return CompressionSetup{UseManager: true, HiFrac: 0.2, LoFrac: 0.25}
}

func init() {
	// the paper's serving comparison, in its reporting order
	mustRegisterServingMethod(fixedMethod{TraitsVLLM})
	mustRegisterServingMethod(fixedMethod{TraitsQuest})
	mustRegisterServingMethod(fixedMethod{TraitsSnapKV})
	mustRegisterServingMethod(fixedMethod{TraitsAtom})
	mustRegisterServingMethod(fixedMethod{TraitsKIVI})
	mustRegisterServingMethod(diffKVMethod{})
}
