package baselines

import (
	"sort"

	"diffkv/internal/mathx"
	"diffkv/internal/synth"
)

func sortSlice(idx []int, less func(a, b int) bool) {
	sort.Slice(idx, less)
}

// H2O is the heavy-hitter-oracle pruning baseline: every head keeps the
// same fixed budget of tokens — the heavy hitters by accumulated attention
// score plus a recent window — at full precision. The uniform per-head
// budget is exactly what DiffKV's per-head dynamic sparsity improves on
// (§3.3).
type H2O struct {
	// Budget is the retained fraction of tokens (default 0.5, the paper's
	// Table 1 setting).
	Budget float64
	// Window is the protected recent window (default 64).
	Window int
}

// Name implements Method.
func (H2O) Name() string { return "H2O" }

func (m H2O) budget() float64 {
	if m.Budget > 0 {
		return m.Budget
	}
	return 0.5
}

func (m H2O) window() int {
	if m.Window > 0 {
		return m.Window
	}
	return 64
}

// Evaluate implements Method.
func (m H2O) Evaluate(model *synth.ModelConfig, data *synth.HeadData, sig []float32, probes int, rng *mathx.RNG) EvalResult {
	n := data.Len()
	k := int(m.budget() * float64(n))
	if k < 1 {
		k = 1
	}
	idx := topKBySig(sig, k, m.window())
	e := probeErr(data, probes, rng, func(q []float32) []float32 {
		return subsetAttention(q, data.Keys, data.Vals, idx)
	})
	return EvalResult{
		OutputErr: e,
		MemFrac:   float64(len(idx)) / float64(n),
	}
}

// SnapKV prunes from prompt-phase observation only: token importance is
// voted by the queries of a small observation window at the end of the
// prompt, then a uniform per-head budget is kept. During generation the
// selection is frozen, so significance drift in long generations is
// invisible to it — the paper's explanation for its collapse on thinking
// models (Table 3).
type SnapKV struct {
	// Budget is the retained fraction (default 0.5).
	Budget float64
	// ObsWindow is the number of trailing prompt queries that vote
	// (default 32).
	ObsWindow int
	// PromptLen is the prompt boundary; tokens generated afterwards are
	// retained by recency within the same budget (the frozen selection
	// cannot rank them). 0 means the whole sequence is treated as prompt.
	PromptLen int
}

// Name implements Method.
func (SnapKV) Name() string { return "SnapKV" }

// Evaluate implements Method.
func (m SnapKV) Evaluate(model *synth.ModelConfig, data *synth.HeadData, sig []float32, probes int, rng *mathx.RNG) EvalResult {
	n := data.Len()
	budget := m.Budget
	if budget <= 0 {
		budget = 0.5
	}
	obs := m.ObsWindow
	if obs <= 0 {
		obs = 32
	}
	promptLen := m.PromptLen
	if promptLen <= 0 || promptLen > n {
		promptLen = n
	}
	// observation-window voting: attention of the last `obs` prompt
	// positions over the prompt prefix
	votes := make([]float32, promptLen)
	start := promptLen - obs
	if start < 1 {
		start = 1
	}
	for t := start; t < promptLen; t++ {
		q := data.Query(rng)
		scores := data.Scores(q, t)
		for j, s := range scores {
			if s > votes[j] {
				votes[j] = s
			}
		}
	}
	k := int(budget * float64(promptLen))
	if k < 1 {
		k = 1
	}
	idx := topKBySig(votes, k, obs)
	// Generated tokens: the selection is frozen at prompt end, so SnapKV
	// cannot rank them by importance; it retains the budgeted fraction by
	// recency. Long chains of thought therefore lose their middle — the
	// paper's explanation for the Table 3 collapse.
	genKeep := int(budget * float64(n-promptLen))
	genStart := n - genKeep
	if genStart < promptLen {
		genStart = promptLen
	}
	for j := genStart; j < n; j++ {
		idx = append(idx, j)
	}
	e := probeErr(data, probes, rng, func(q []float32) []float32 {
		return subsetAttention(q, data.Keys, data.Vals, idx)
	})
	return EvalResult{
		OutputErr: e,
		MemFrac:   float64(len(idx)) / float64(n),
	}
}

// DuoAttention splits heads into retrieval heads (full FP16 cache) and
// streaming heads (attention-sink + recent window only). The head
// classification is offline and static; heads whose sparsity profile is
// dense but misclassified as streaming lose mid-context information.
type DuoAttention struct {
	// RetrievalFrac is the fraction of heads treated as retrieval heads
	// (default 0.5, yielding ~50% average memory).
	RetrievalFrac float64
	// Sink and Recent shape the streaming-head cache (defaults 4 / 128).
	Sink, Recent int
	// HeadIsRetrieval overrides the classification for this head (set by
	// the harness from the head's offline profile); nil means classify by
	// hashing, matching a static offline assignment.
	HeadIsRetrieval *bool
}

// Name implements Method.
func (DuoAttention) Name() string { return "DuoAttn" }

// Evaluate implements Method.
func (m DuoAttention) Evaluate(model *synth.ModelConfig, data *synth.HeadData, sig []float32, probes int, rng *mathx.RNG) EvalResult {
	frac := m.RetrievalFrac
	if frac <= 0 {
		frac = 0.5
	}
	sink := m.Sink
	if sink <= 0 {
		sink = 4
	}
	recent := m.Recent
	if recent <= 0 {
		recent = 128
	}
	retrieval := rng.Float64() < frac
	if m.HeadIsRetrieval != nil {
		retrieval = *m.HeadIsRetrieval
	}
	n := data.Len()
	if retrieval {
		e := probeErr(data, probes, rng, func(q []float32) []float32 {
			return subsetAttention(q, data.Keys, data.Vals, allIdx(n))
		})
		return EvalResult{OutputErr: e, MemFrac: 1}
	}
	// streaming: sink + recent only
	var idx []int
	for j := 0; j < sink && j < n; j++ {
		idx = append(idx, j)
	}
	for j := n - recent; j < n; j++ {
		if j >= sink && j >= 0 {
			idx = append(idx, j)
		}
	}
	e := probeErr(data, probes, rng, func(q []float32) []float32 {
		return subsetAttention(q, data.Keys, data.Vals, idx)
	})
	return EvalResult{
		OutputErr: e,
		MemFrac:   float64(len(idx)) / float64(n),
	}
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// StreamingLLM keeps only attention sinks plus a recent window on every
// head (Xiao et al., "Efficient Streaming Language Models with Attention
// Sinks" — the paper's [71]). It is DuoAttention's streaming half applied
// uniformly: constant memory, but all mid-context information is lost.
type StreamingLLM struct {
	// Sink and Recent shape the cache (defaults 4 / 256).
	Sink, Recent int
}

// Name implements Method.
func (StreamingLLM) Name() string { return "StreamingLLM" }

// Evaluate implements Method.
func (m StreamingLLM) Evaluate(model *synth.ModelConfig, data *synth.HeadData, sig []float32, probes int, rng *mathx.RNG) EvalResult {
	sink := m.Sink
	if sink <= 0 {
		sink = 4
	}
	recent := m.Recent
	if recent <= 0 {
		recent = 256
	}
	n := data.Len()
	var idx []int
	for j := 0; j < sink && j < n; j++ {
		idx = append(idx, j)
	}
	for j := n - recent; j < n; j++ {
		if j >= sink && j >= 0 {
			idx = append(idx, j)
		}
	}
	e := probeErr(data, probes, rng, func(q []float32) []float32 {
		return subsetAttention(q, data.Keys, data.Vals, idx)
	})
	return EvalResult{
		OutputErr: e,
		MemFrac:   float64(len(idx)) / float64(n),
	}
}
