package baselines

// ServingTraits captures how a method behaves inside the serving engine
// (Fig. 17): how much resident KV memory it needs per token (which bounds
// batch size), how many bytes its attention reads per cached token
// (which bounds attention-kernel time), and host-side overhead factors.
type ServingTraits struct {
	Name string
	// ResidentMemFrac is resident KV bytes per token relative to vLLM
	// FP16 (this bounds achievable batch size).
	ResidentMemFrac float64
	// AttnBytesFrac is the attention-read bytes per token relative to
	// FP16 (this bounds attention time). For Quest this is below the
	// resident fraction; for everyone else they coincide.
	AttnBytesFrac float64
	// FrameworkOverhead multiplies per-step host time. Atom and KIVI run
	// on HuggingFace Transformers, which the paper identifies as lacking
	// fused kernels and adding framework overhead (§7.3).
	FrameworkOverhead float64
	// EstimateCost is the extra per-step fraction of attention time spent
	// estimating token importance (Quest's page scoring).
	EstimateCost float64
}

// Traits for the serving comparison. DiffKV's resident fraction is
// workload-dependent and supplied by the caller from engine measurements.
var (
	TraitsVLLM = ServingTraits{
		Name: "vLLM", ResidentMemFrac: 1, AttnBytesFrac: 1,
		FrameworkOverhead: 1,
	}
	TraitsQuest = ServingTraits{
		Name: "Quest", ResidentMemFrac: 1, AttnBytesFrac: 0.5,
		FrameworkOverhead: 1, EstimateCost: 0.25,
	}
	TraitsSnapKV = ServingTraits{
		Name: "SnapKV", ResidentMemFrac: 0.5, AttnBytesFrac: 0.5,
		FrameworkOverhead: 1,
	}
	TraitsAtom = ServingTraits{
		Name: "Atom", ResidentMemFrac: 0.39, AttnBytesFrac: 0.39,
		FrameworkOverhead: 2.2,
	}
	TraitsKIVI = ServingTraits{
		Name: "KIVI", ResidentMemFrac: 0.20, AttnBytesFrac: 0.20,
		FrameworkOverhead: 2.2,
	}
)

// TraitsDiffKV builds DiffKV's traits from a measured resident fraction
// (e.g. engine MemFrac for the workload).
func TraitsDiffKV(memFrac float64) ServingTraits {
	return ServingTraits{
		Name: "DiffKV", ResidentMemFrac: memFrac, AttnBytesFrac: memFrac,
		FrameworkOverhead: 1,
	}
}
