package baselines

import (
	"strings"
	"testing"
)

// TestBuiltinServingMethods checks the builtin registrations: paper
// reporting order, trait identity with the exported vars, and DiffKV's
// compression hook carrying the manager setup.
func TestBuiltinServingMethods(t *testing.T) {
	names := ServingMethods()
	want := []string{"vLLM", "Quest", "SnapKV", "Atom", "KIVI", "DiffKV"}
	for i, w := range want {
		if i >= len(names) || names[i] != w {
			t.Fatalf("builtin methods = %v, want prefix %v", names, want)
		}
	}
	for name, traits := range map[string]ServingTraits{
		"vLLM": TraitsVLLM, "Quest": TraitsQuest, "SnapKV": TraitsSnapKV,
		"Atom": TraitsAtom, "KIVI": TraitsKIVI,
	} {
		m, err := ServingMethodByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.ServingTraits(0.5) != traits {
			t.Fatalf("%s traits diverge from exported var", name)
		}
		if _, hooked := m.(CompressionHook); hooked {
			t.Fatalf("%s must not claim a compression pipeline", name)
		}
	}

	dk, err := ServingMethodByName("DiffKV")
	if err != nil {
		t.Fatal(err)
	}
	if tr := dk.ServingTraits(0.4); tr != TraitsDiffKV(0.4) {
		t.Fatalf("DiffKV traits = %+v", tr)
	}
	if tr := dk.ServingTraits(0); tr.ResidentMemFrac != 0.3 {
		t.Fatalf("DiffKV zero memFrac must default to 0.3, got %v", tr.ResidentMemFrac)
	}
	hook, ok := dk.(CompressionHook)
	if !ok {
		t.Fatal("DiffKV must expose its compression pipeline")
	}
	setup := hook.Compression()
	if !setup.UseManager || setup.HiFrac != 0.2 || setup.LoFrac != 0.25 {
		t.Fatalf("DiffKV compression setup = %+v", setup)
	}

	_, err = ServingMethodByName("nope")
	if err == nil || !strings.Contains(err.Error(), "unknown serving method") {
		t.Fatalf("unknown-method error = %v", err)
	}
}
