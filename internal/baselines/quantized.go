package baselines

import (
	"diffkv/internal/mathx"
	"diffkv/internal/quant"
	"diffkv/internal/synth"
)

// INT4Atom is the Atom/QServe-style uniform 4-bit baseline: every key and
// value quantized at 4 bits with group-wise scales (group size 32), which
// contains outlier channels within their group.
type INT4Atom struct {
	// GroupSize defaults to 32.
	GroupSize int
}

// Name implements Method.
func (INT4Atom) Name() string { return "INT4" }

func (m INT4Atom) groupSize() int {
	if m.GroupSize > 0 {
		return m.GroupSize
	}
	return 32
}

// Evaluate implements Method.
func (m INT4Atom) Evaluate(model *synth.ModelConfig, data *synth.HeadData, sig []float32, probes int, rng *mathx.RNG) EvalResult {
	g := m.groupSize()
	n := data.Len()
	keys := make([][]float32, n)
	vals := make([][]float32, n)
	for j := 0; j < n; j++ {
		keys[j] = quant.RoundTripGrouped(data.Keys[j], 4, g)
		vals[j] = quant.RoundTripGrouped(data.Vals[j], 4, g)
	}
	e := probeErr(data, probes, rng, func(q []float32) []float32 {
		return reconAttention(q, keys, vals)
	})
	perToken := quant.GroupedTokenBytes(data.Dim, quant.K4V4, g)
	return EvalResult{
		OutputErr: e,
		MemFrac:   float64(perToken) / float64(fp16PayloadBytes(data.Dim)),
	}
}

// KIVI is the 2-bit asymmetric quantization baseline: all but the most
// recent ResidualLen tokens are stored at 2 bits — keys quantized
// per-channel (so persistent outlier channels get their own scale, KIVI's
// central design point), values per-token — while the residual window
// stays FP16.
type KIVI struct {
	// ResidualLen defaults to 128.
	ResidualLen int
	// GroupSize defaults to 64 (KIVI groups along larger spans than Atom).
	GroupSize int
}

// Name implements Method.
func (KIVI) Name() string { return "KIVI" }

// Evaluate implements Method.
func (m KIVI) Evaluate(model *synth.ModelConfig, data *synth.HeadData, sig []float32, probes int, rng *mathx.RNG) EvalResult {
	res := m.ResidualLen
	if res <= 0 {
		res = 128
	}
	g := m.GroupSize
	if g <= 0 {
		g = 64
	}
	n := data.Len()
	cut := n - res
	if cut < 0 {
		cut = 0
	}
	keys := make([][]float32, n)
	vals := make([][]float32, n)
	// keys: per-channel 2-bit across the compressed block (outlier
	// channels get their own scale — KIVI's key insight); values:
	// per-token 2-bit
	recKeys := quant.RoundTripPerChannel(data.Keys[:cut], 2)
	for j := 0; j < n; j++ {
		if j < cut {
			keys[j] = recKeys[j]
			vals[j] = quant.RoundTripGrouped(data.Vals[j], 2, g)
		} else {
			keys[j] = data.Keys[j]
			vals[j] = data.Vals[j]
		}
	}
	e := probeErr(data, probes, rng, func(q []float32) []float32 {
		return reconAttention(q, keys, vals)
	})
	qBytes := cut * quant.GroupedTokenBytes(data.Dim, quant.K2V2, g)
	fpBytes := (n - cut) * fp16PayloadBytes(data.Dim)
	return EvalResult{
		OutputErr: e,
		MemFrac:   float64(qBytes+fpBytes) / float64(n*fp16PayloadBytes(data.Dim)),
	}
}

// QAQ is the quality-adaptive quantization baseline: per-token precision
// chosen by importance (group-wise quantization), but — unlike DiffKV —
// keys and values share the same width, the assignment is static per
// token, and nothing is pruned.
type QAQ struct{}

// Name implements Method.
func (QAQ) Name() string { return "QAQ" }

// Evaluate implements Method: top 10% of tokens at 8 bits, next 40% at
// 4 bits, the rest at 2 bits (per-vector quantization, matching the
// paper's characterization of QAQ as importance-aware but K/V-uniform).
func (QAQ) Evaluate(model *synth.ModelConfig, data *synth.HeadData, sig []float32, probes int, rng *mathx.RNG) EvalResult {
	n := data.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// rank by significance descending
	sortBySigDesc(idx, sig)
	bits := make([]int, n)
	for rank, j := range idx {
		switch {
		case rank < n/10:
			bits[j] = 8
		case rank < n/2:
			bits[j] = 4
		default:
			bits[j] = 2
		}
	}
	keys := make([][]float32, n)
	vals := make([][]float32, n)
	var bytes int
	for j := 0; j < n; j++ {
		keys[j] = quant.RoundTripGrouped(data.Keys[j], bits[j], 32)
		vals[j] = quant.RoundTripGrouped(data.Vals[j], bits[j], 32)
		bytes += quant.GroupedTokenBytes(data.Dim, quant.Precision{KeyBits: bits[j], ValBits: bits[j]}, 32)
	}
	e := probeErr(data, probes, rng, func(q []float32) []float32 {
		return reconAttention(q, keys, vals)
	})
	return EvalResult{
		OutputErr: e,
		MemFrac:   float64(bytes) / float64(n*fp16PayloadBytes(data.Dim)),
	}
}

func sortBySigDesc(idx []int, sig []float32) {
	// insertion-free stdlib sort with a stable tiebreak on position
	lessFn := func(a, b int) bool {
		if sig[idx[a]] != sig[idx[b]] {
			return sig[idx[a]] > sig[idx[b]]
		}
		return idx[a] < idx[b]
	}
	sortSlice(idx, lessFn)
}
