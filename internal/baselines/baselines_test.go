package baselines

import (
	"testing"

	"diffkv/internal/mathx"
	"diffkv/internal/synth"
)

// evalHead generates one head and runs a method on it.
func evalHead(t *testing.T, m Method, model *synth.ModelConfig, n int, seed uint64) EvalResult {
	t.Helper()
	rng := mathx.NewRNG(seed)
	prof := synth.Profile(model, 8, 1, 1, rng)
	data := synth.GenHead(model, prof, n, rng.SplitAt(1))
	sig := data.Significance(model, rng.SplitAt(2))
	return m.Evaluate(model, data, sig, 3, rng.SplitAt(3))
}

func TestVLLMNearZeroError(t *testing.T) {
	r := evalHead(t, VLLM{}, synth.Llama3_8B, 256, 1)
	if r.OutputErr > 0.01 {
		t.Fatalf("vLLM FP16 error = %v", r.OutputErr)
	}
	if r.MemFrac != 1 {
		t.Fatalf("vLLM memory = %v", r.MemFrac)
	}
}

func TestINT4BetterThanKIVI(t *testing.T) {
	// 4-bit grouped should beat 2-bit grouped on error, at more memory.
	i4 := evalHead(t, INT4Atom{}, synth.Llama3_8B, 1024, 2)
	kv := evalHead(t, KIVI{}, synth.Llama3_8B, 1024, 2)
	if i4.OutputErr >= kv.OutputErr {
		t.Fatalf("INT4 err %v should be below KIVI %v", i4.OutputErr, kv.OutputErr)
	}
	if i4.MemFrac <= kv.MemFrac {
		t.Fatalf("INT4 mem %v should exceed KIVI %v", i4.MemFrac, kv.MemFrac)
	}
}

func TestINT4MemoryFraction(t *testing.T) {
	r := evalHead(t, INT4Atom{}, synth.Llama3_8B, 128, 3)
	// grouped K4V4 at dim 128, group 32: (64+64+64+8)/512 = 0.39
	if r.MemFrac < 0.3 || r.MemFrac > 0.45 {
		t.Fatalf("INT4 mem fraction = %v", r.MemFrac)
	}
}

func TestKIVIWindowIsExact(t *testing.T) {
	// With a residual window covering the whole sequence, KIVI degenerates
	// to FP16.
	r := evalHead(t, KIVI{ResidualLen: 4096}, synth.Llama3_8B, 256, 4)
	if r.OutputErr > 1e-5 {
		t.Fatalf("full-window KIVI should be exact: %v", r.OutputErr)
	}
	if r.MemFrac != 1 {
		t.Fatalf("full-window KIVI memory = %v", r.MemFrac)
	}
}

func TestQAQBetweenINT4AndKIVI(t *testing.T) {
	// QAQ mixes 8/4/2-bit tokens: memory sits between KIVI (2-bit) and
	// INT4 + metadata.
	r := evalHead(t, QAQ{}, synth.Llama3_8B, 512, 5)
	if r.MemFrac < 0.1 || r.MemFrac > 0.5 {
		t.Fatalf("QAQ mem fraction = %v", r.MemFrac)
	}
	if r.OutputErr <= 0 {
		t.Fatal("QAQ error should be positive")
	}
}

func TestH2OBudgetControlsMemory(t *testing.T) {
	half := evalHead(t, H2O{Budget: 0.5}, synth.Llama3_8B, 512, 6)
	quarter := evalHead(t, H2O{Budget: 0.25}, synth.Llama3_8B, 512, 6)
	if half.MemFrac <= quarter.MemFrac {
		t.Fatalf("budget ordering broken: %v vs %v", half.MemFrac, quarter.MemFrac)
	}
	if quarter.OutputErr < half.OutputErr {
		t.Fatalf("tighter budget should not reduce error: %v vs %v",
			quarter.OutputErr, half.OutputErr)
	}
}

func TestH2OKeepsHeavyHitters(t *testing.T) {
	// With a generous budget the heavy tokens are retained, so error stays
	// moderate while memory halves.
	r := evalHead(t, H2O{Budget: 0.5}, synth.Llama3_8B, 512, 7)
	if r.OutputErr > 0.5 {
		t.Fatalf("H2O at 50%% budget error = %v", r.OutputErr)
	}
}

func TestSnapKVComparableToH2OOnPromptOnly(t *testing.T) {
	// When the whole sequence is prompt, SnapKV's observation-window
	// selection behaves like H2O's accumulated selection (same budget).
	h := evalHead(t, H2O{Budget: 0.5}, synth.Llama3_8B, 384, 8)
	s := evalHead(t, SnapKV{Budget: 0.5}, synth.Llama3_8B, 384, 8)
	if s.OutputErr > 5*h.OutputErr+0.3 {
		t.Fatalf("SnapKV error %v wildly above H2O %v", s.OutputErr, h.OutputErr)
	}
}

func TestQuestLoadingBudget(t *testing.T) {
	r := evalHead(t, Quest{Budget: 0.5}, synth.Llama3_8B, 512, 9)
	if r.MemFrac != 0.5 {
		t.Fatalf("Quest reported budget = %v", r.MemFrac)
	}
	// Quest's page selection should land the heavy tokens: error moderate
	if r.OutputErr > 0.6 {
		t.Fatalf("Quest error = %v", r.OutputErr)
	}
}

func TestQuestBeatsRandomPages(t *testing.T) {
	// The min/max envelope estimate must beat pruning the same fraction
	// without query awareness on dense heads... at minimum it should beat
	// a tiny budget of itself.
	full := evalHead(t, Quest{Budget: 0.9}, synth.Llama3_8B, 512, 10)
	tiny := evalHead(t, Quest{Budget: 0.1}, synth.Llama3_8B, 512, 10)
	if full.OutputErr > tiny.OutputErr {
		t.Fatalf("larger loading budget should not hurt: %v vs %v",
			full.OutputErr, tiny.OutputErr)
	}
}

func TestDuoAttentionRetrievalHeadExact(t *testing.T) {
	yes := true
	r := evalHead(t, DuoAttention{HeadIsRetrieval: &yes}, synth.Llama3_8B, 256, 11)
	if r.OutputErr > 1e-5 {
		t.Fatalf("retrieval head should be exact: %v", r.OutputErr)
	}
	if r.MemFrac != 1 {
		t.Fatalf("retrieval head memory = %v", r.MemFrac)
	}
}

func TestDuoAttentionStreamingHeadLosesMidContext(t *testing.T) {
	no := false
	r := evalHead(t, DuoAttention{HeadIsRetrieval: &no}, synth.Llama3_8B, 512, 12)
	if r.MemFrac > 0.3 {
		t.Fatalf("streaming head memory = %v", r.MemFrac)
	}
	// dense mid-context heads suffer badly under sink+recent
	if r.OutputErr < 0.05 {
		t.Fatalf("streaming head error suspiciously low: %v", r.OutputErr)
	}
}

func TestTopKBySig(t *testing.T) {
	sig := []float32{0.9, 0.1, 0.8, 0.2, 0.3}
	idx := topKBySig(sig, 3, 1)
	// last token always kept (window); then 0 and 2 by score
	want := map[int]bool{0: true, 2: true, 4: true}
	if len(idx) != 3 {
		t.Fatalf("topK size = %d", len(idx))
	}
	for _, i := range idx {
		if !want[i] {
			t.Fatalf("unexpected index %d in %v", i, idx)
		}
	}
	// indices sorted ascending (attention iterates in order)
	for i := 1; i < len(idx); i++ {
		if idx[i] < idx[i-1] {
			t.Fatalf("indices not sorted: %v", idx)
		}
	}
	// k >= n keeps everything
	if len(topKBySig(sig, 10, 1)) != 5 {
		t.Fatal("oversized k should keep all")
	}
}

func TestSubsetAttentionFullEqualsReference(t *testing.T) {
	rng := mathx.NewRNG(13)
	prof := synth.Profile(synth.Llama3_8B, 0, 0, 1, rng)
	data := synth.GenHead(synth.Llama3_8B, prof, 64, rng)
	q := data.Query(rng)
	out := subsetAttention(q, data.Keys, data.Vals, allIdx(64))
	refOut := reconAttention(q, data.Keys, data.Vals)
	if e := mathx.RelErr(out, refOut); e > 1e-6 {
		t.Fatalf("full subset differs from reference: %v", e)
	}
}

func TestTraits(t *testing.T) {
	if TraitsQuest.ResidentMemFrac != 1 {
		t.Fatal("Quest must retain the full cache")
	}
	if TraitsAtom.FrameworkOverhead <= TraitsVLLM.FrameworkOverhead {
		t.Fatal("HF-based Atom must carry framework overhead")
	}
	d := TraitsDiffKV(0.3)
	if d.ResidentMemFrac != 0.3 || d.AttnBytesFrac != 0.3 {
		t.Fatalf("DiffKV traits = %+v", d)
	}
}

func TestMethodNamesDistinct(t *testing.T) {
	methods := []Method{VLLM{}, INT4Atom{}, KIVI{}, QAQ{}, H2O{}, SnapKV{}, Quest{}, DuoAttention{}, StreamingLLM{}}
	seen := map[string]bool{}
	for _, m := range methods {
		if seen[m.Name()] {
			t.Fatalf("duplicate method name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestStreamingLLMConstantMemory(t *testing.T) {
	short := evalHead(t, StreamingLLM{}, synth.Llama3_8B, 512, 20)
	long := evalHead(t, StreamingLLM{}, synth.Llama3_8B, 2048, 20)
	// memory fraction shrinks with sequence length (constant token count)
	if long.MemFrac >= short.MemFrac {
		t.Fatalf("streaming memory should shrink with length: %v vs %v",
			long.MemFrac, short.MemFrac)
	}
	// losing mid-context costs accuracy on long sequences
	if long.OutputErr <= short.OutputErr {
		t.Fatalf("longer sequences should hurt more: %v vs %v",
			long.OutputErr, short.OutputErr)
	}
}

func TestStreamingLLMWorseThanH2OAtEqualMemory(t *testing.T) {
	// at the same retained fraction, score-based selection (H2O) must beat
	// pure recency (StreamingLLM): the core premise of importance-based
	// pruning
	n := 1024
	s := evalHead(t, StreamingLLM{Recent: 252}, synth.Llama3_8B, n, 21) // 256/1024 = 25%
	h := evalHead(t, H2O{Budget: 0.25}, synth.Llama3_8B, n, 21)
	if s.OutputErr <= h.OutputErr {
		t.Fatalf("recency-only (%v) should lose to heavy-hitter selection (%v)",
			s.OutputErr, h.OutputErr)
	}
}
