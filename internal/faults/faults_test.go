package faults

import (
	"reflect"
	"testing"
)

func TestScheduleDeterministic(t *testing.T) {
	p := Plan{Seed: 7, CrashRatePerMin: 3, MeanDownSec: 2, HorizonSec: 60,
		Crashes:   []Crash{{Inst: 1, AtSec: 5, DownSec: 3}},
		Slowdowns: []Slowdown{{Inst: 2, AtSec: 1, DurSec: 4, Factor: 2.5}}}
	a, err := New(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events()) == 0 {
		t.Fatal("expected a non-empty expanded schedule")
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same plan+seed expanded to different schedules")
	}
	// and the rate-driven part actually fired: more events than the
	// explicit ones alone
	if len(a.Events()) <= 4 {
		t.Fatalf("rate-driven expansion produced no events: %v", a.Events())
	}

	c, err := New(Plan{Seed: 8, CrashRatePerMin: 3, MeanDownSec: 2, HorizonSec: 60}, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Plan{Seed: 7, CrashRatePerMin: 3, MeanDownSec: 2, HorizonSec: 60}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(c.Events(), d.Events()) {
		t.Fatal("different seeds expanded to the identical schedule")
	}
}

func TestScheduleOrderedAndNormalized(t *testing.T) {
	in, err := New(Plan{Seed: 3, CrashRatePerMin: 10, MeanDownSec: 1, HorizonSec: 120}, 3)
	if err != nil {
		t.Fatal(err)
	}
	down := map[int]bool{}
	last := -1.0
	for _, ev := range in.Events() {
		if ev.AtUs < last {
			t.Fatalf("schedule out of order at %v", ev)
		}
		last = ev.AtUs
		switch ev.Op {
		case OpCrash:
			if down[ev.Inst] {
				t.Fatalf("crash of already-down instance %d", ev.Inst)
			}
			down[ev.Inst] = true
		case OpRestart:
			if !down[ev.Inst] {
				t.Fatalf("restart of up instance %d", ev.Inst)
			}
			down[ev.Inst] = false
		}
	}
}

func TestHasRestart(t *testing.T) {
	in, err := New(Plan{
		Crashes: []Crash{{Inst: 1, AtSec: 1, DownSec: 2}, {Inst: 2, AtSec: 1}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !in.HasRestart(1) {
		t.Fatal("instance 1 crash has a scheduled restart")
	}
	if in.HasRestart(2) {
		t.Fatal("instance 2 crash is permanent")
	}
}

func TestBackoffBoundsAndGrowth(t *testing.T) {
	in, err := New(Plan{Seed: 1, RetryBaseMs: 50, Crashes: []Crash{{Inst: 1, AtSec: 0}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 4; attempt++ {
		for i := 0; i < 100; i++ {
			d := in.Backoff(attempt)
			lo := 50e3 * float64(int(1)<<(attempt-1)) * 0.5
			hi := 50e3 * float64(int(1)<<(attempt-1)) * 1.5
			if d < lo || d >= hi {
				t.Fatalf("attempt %d backoff %.0fus outside [%.0f, %.0f)", attempt, d, lo, hi)
			}
		}
	}
}

func TestXferFaultRateAndDeterminism(t *testing.T) {
	mk := func(seed uint64) []bool {
		in, err := New(Plan{Seed: seed, PCIeErrorRate: 0.2}, 1)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 10000)
		for i := range out {
			out[i] = in.XferFault()
		}
		return out
	}
	a, b := mk(9), mk(9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed drew different fault sequences")
	}
	n := 0
	for _, f := range a {
		if f {
			n++
		}
	}
	if n < 1500 || n > 2500 {
		t.Fatalf("fault rate off: %d/10000 at p=0.2", n)
	}

	off, err := New(Plan{Seed: 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if off.XferFault() {
			t.Fatal("XferFault fired with zero error rate")
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{Crashes: []Crash{{Inst: 0, AtSec: 1}}},
		{Crashes: []Crash{{Inst: 5, AtSec: 1}}},
		{Crashes: []Crash{{Inst: 1, AtSec: -1}}},
		{Slowdowns: []Slowdown{{Inst: 1, AtSec: 0, DurSec: 1, Factor: 1}}},
		{Slowdowns: []Slowdown{{Inst: 1, AtSec: 0, DurSec: 0, Factor: 2}}},
		{CrashRatePerMin: -1},
		{PCIeErrorRate: 1.5},
	}
	for i, p := range bad {
		if _, err := New(p, 2); err == nil {
			t.Fatalf("plan %d validated but should not have", i)
		}
	}
	if _, err := New(Plan{Crashes: []Crash{{Inst: 2, AtSec: 0.5, DownSec: 1}}}, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRetryBudgetDefaults(t *testing.T) {
	in, _ := New(Plan{}, 1)
	if got := in.RetryBudget(); got != DefaultRetryBudget {
		t.Fatalf("default retry budget = %d, want %d", got, DefaultRetryBudget)
	}
	in, _ = New(Plan{RetryBudget: -1}, 1)
	if got := in.RetryBudget(); got != 0 {
		t.Fatalf("negative retry budget should normalize to 0, got %d", got)
	}
}
