// Package faults is the deterministic fault-injection layer for the
// serving stack. A Plan declares what goes wrong — instance crashes at
// fixed times or at a seeded random rate, crash-and-restart downtime
// windows, transient slowdowns, and a PCIe transfer error rate — and an
// Injector expands it into a time-sorted event schedule the cluster
// event loop consumes through its existing simulated clock. Everything
// is driven by a splittable seeded RNG, so the same Plan and seed
// reproduce the identical failure timeline (and, downstream, the
// identical completion/failure set) run after run.
package faults

import (
	"fmt"
	"math"
	"sort"

	"diffkv/internal/mathx"
)

// Defaults applied by Plan.norm. Exported so the scenario layer and
// CLIs can report effective values.
const (
	DefaultRetryBudget = 3    // re-dispatches per request before terminal failure
	DefaultRetryBaseMs = 50.0 // first-retry backoff (doubles per attempt)
	DefaultMeanDownSec = 5.0  // mean downtime of rate-driven crashes
	DefaultHorizonSec  = 120. // rate-driven schedule horizon
)

// Crash is one declared instance crash. DownSec > 0 schedules a restart
// after that much downtime; DownSec <= 0 means the instance stays down
// for the rest of the run (its host-tier state is unrecoverable, so
// swapped sequences are re-dispatched from scratch).
type Crash struct {
	Inst    int     // 1-based instance index
	AtSec   float64 // crash time (simulated seconds)
	DownSec float64 // downtime before restart; <= 0 = permanent
}

// Slowdown is a transient degraded window: the instance keeps serving
// but every step takes Factor times as long (straggler GPU, thermal
// throttling, noisy neighbor). The router down-weights it while the
// window is open.
type Slowdown struct {
	Inst   int
	AtSec  float64
	DurSec float64
	Factor float64 // step-time multiplier, > 1
}

// Plan declares a deterministic fault schedule for a cluster of
// instances. Explicit Crashes/Slowdowns and the rate-driven generator
// compose: both feed the same sorted event timeline.
type Plan struct {
	// Seed drives schedule expansion, backoff jitter, and PCIe fault
	// draws. Two runs with the same Plan produce identical timelines.
	Seed uint64

	Crashes   []Crash
	Slowdowns []Slowdown

	// CrashRatePerMin > 0 adds seeded random crashes per instance with
	// exponentially distributed interarrivals at this rate, each with
	// exponentially distributed downtime of mean MeanDownSec, out to
	// HorizonSec.
	CrashRatePerMin float64
	MeanDownSec     float64
	HorizonSec      float64

	// PCIeErrorRate is the probability that any single host<->device KV
	// transfer (swap-out, swap-in, host-prefix promotion) faults. A
	// faulted swap-out falls back to recompute; a faulted swap-in stays
	// queued and retries on a later scheduler pass.
	PCIeErrorRate float64

	// RetryBudget caps re-dispatches per request after instance
	// failures; once exhausted the request fails terminally
	// (serving.ErrFailed). 0 selects DefaultRetryBudget; negative
	// means no retries at all.
	RetryBudget int

	// RetryBaseMs is the base re-dispatch backoff; attempt k waits
	// base * 2^(k-1) * jitter, jitter uniform in [0.5, 1.5).
	RetryBaseMs float64
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return len(p.Crashes) > 0 || len(p.Slowdowns) > 0 ||
		p.CrashRatePerMin > 0 || p.PCIeErrorRate > 0
}

// norm returns the plan with defaults applied.
func (p Plan) norm() Plan {
	if p.RetryBudget == 0 {
		p.RetryBudget = DefaultRetryBudget
	}
	if p.RetryBudget < 0 {
		p.RetryBudget = 0
	}
	if p.RetryBaseMs <= 0 {
		p.RetryBaseMs = DefaultRetryBaseMs
	}
	if p.MeanDownSec <= 0 {
		p.MeanDownSec = DefaultMeanDownSec
	}
	if p.HorizonSec <= 0 {
		p.HorizonSec = DefaultHorizonSec
	}
	return p
}

// Validate checks the plan against a cluster size.
func (p Plan) Validate(instances int) error {
	for i, c := range p.Crashes {
		if c.Inst < 1 || c.Inst > instances {
			return fmt.Errorf("faults: crashes[%d]: instance %d out of range 1..%d", i, c.Inst, instances)
		}
		if c.AtSec < 0 {
			return fmt.Errorf("faults: crashes[%d]: negative at_sec %g", i, c.AtSec)
		}
	}
	for i, s := range p.Slowdowns {
		if s.Inst < 1 || s.Inst > instances {
			return fmt.Errorf("faults: slowdowns[%d]: instance %d out of range 1..%d", i, s.Inst, instances)
		}
		if s.AtSec < 0 || s.DurSec <= 0 {
			return fmt.Errorf("faults: slowdowns[%d]: need at_sec >= 0 and dur_sec > 0", i)
		}
		if s.Factor <= 1 {
			return fmt.Errorf("faults: slowdowns[%d]: factor %g must be > 1", i, s.Factor)
		}
	}
	if p.CrashRatePerMin < 0 {
		return fmt.Errorf("faults: negative crash_rate_per_min %g", p.CrashRatePerMin)
	}
	if p.PCIeErrorRate < 0 || p.PCIeErrorRate >= 1 {
		return fmt.Errorf("faults: pcie_error_rate %g outside [0, 1)", p.PCIeErrorRate)
	}
	return nil
}

// Op is the kind of one scheduled fault event.
type Op string

const (
	OpCrash   Op = "crash"
	OpRestart Op = "restart"
	OpSlow    Op = "slow"
	OpSlowEnd Op = "slow_end"
)

// Event is one expanded fault-timeline entry.
type Event struct {
	AtUs   float64
	Inst   int // 1-based
	Op     Op
	Factor float64 // slowdown factor (OpSlow only)
}

// Injector holds the expanded, time-sorted fault schedule plus the
// seeded streams for backoff jitter and PCIe fault draws. It is not
// goroutine-safe; the cluster consumes it from its single-threaded
// event loop, which is what keeps the draws reproducible.
type Injector struct {
	plan   Plan
	events []Event
	next   int
	// separate streams so the number of transfers doesn't perturb
	// backoff jitter (and vice versa)
	xferRNG    *mathx.RNG
	backoffRNG *mathx.RNG
}

// New expands a plan into an injector for a cluster of the given size.
func New(p Plan, instances int) (*Injector, error) {
	if err := p.Validate(instances); err != nil {
		return nil, err
	}
	p = p.norm()
	root := mathx.NewRNG(p.Seed ^ 0x6661756c7473) // "faults"
	in := &Injector{
		plan:       p,
		xferRNG:    root.SplitAt(1),
		backoffRNG: root.SplitAt(2),
	}
	for _, c := range p.Crashes {
		in.events = append(in.events, Event{AtUs: c.AtSec * 1e6, Inst: c.Inst, Op: OpCrash})
		if c.DownSec > 0 {
			in.events = append(in.events, Event{AtUs: (c.AtSec + c.DownSec) * 1e6, Inst: c.Inst, Op: OpRestart})
		}
	}
	for _, s := range p.Slowdowns {
		in.events = append(in.events, Event{AtUs: s.AtSec * 1e6, Inst: s.Inst, Op: OpSlow, Factor: s.Factor})
		in.events = append(in.events, Event{AtUs: (s.AtSec + s.DurSec) * 1e6, Inst: s.Inst, Op: OpSlowEnd})
	}
	if p.CrashRatePerMin > 0 {
		ratePerSec := p.CrashRatePerMin / 60
		for inst := 1; inst <= instances; inst++ {
			rng := root.SplitAt(uint64(16 + inst))
			// alternate up/down periods: exponential time-to-crash while
			// up, exponential downtime while down
			t := rng.Exp(ratePerSec)
			for t < p.HorizonSec {
				in.events = append(in.events, Event{AtUs: t * 1e6, Inst: inst, Op: OpCrash})
				down := rng.Exp(1 / p.MeanDownSec)
				t += down
				in.events = append(in.events, Event{AtUs: t * 1e6, Inst: inst, Op: OpRestart})
				t += rng.Exp(ratePerSec)
			}
		}
	}
	sort.SliceStable(in.events, func(i, j int) bool {
		a, b := in.events[i], in.events[j]
		if a.AtUs != b.AtUs {
			return a.AtUs < b.AtUs
		}
		if a.Inst != b.Inst {
			return a.Inst < b.Inst
		}
		return opOrder(a.Op) < opOrder(b.Op)
	})
	// collapse double-crashes: a rate-driven crash landing inside
	// another downtime window for the same instance would crash an
	// already-down instance; drop events that don't change state
	in.events = normalizeTimeline(in.events, instances)
	return in, nil
}

// opOrder breaks same-microsecond ties: a restart precedes a crash so a
// zero-length downtime window still cycles the instance, and slowdown
// windows close before new ones open.
func opOrder(op Op) int {
	switch op {
	case OpRestart:
		return 0
	case OpSlowEnd:
		return 1
	case OpCrash:
		return 2
	default: // OpSlow
		return 3
	}
}

// normalizeTimeline drops events that would not change instance state
// (crashing a down instance, restarting an up one, ending a slowdown
// cancelled by a crash), so consumers see a clean state machine.
func normalizeTimeline(events []Event, instances int) []Event {
	down := make([]bool, instances+1)
	slow := make([]bool, instances+1)
	out := events[:0]
	for _, ev := range events {
		switch ev.Op {
		case OpCrash:
			if down[ev.Inst] {
				continue
			}
			down[ev.Inst] = true
			slow[ev.Inst] = false // a crash resets the slow window
		case OpRestart:
			if !down[ev.Inst] {
				continue
			}
			down[ev.Inst] = false
		case OpSlow:
			if down[ev.Inst] || slow[ev.Inst] {
				continue
			}
			slow[ev.Inst] = true
		case OpSlowEnd:
			if !slow[ev.Inst] {
				continue
			}
			slow[ev.Inst] = false
		}
		out = append(out, ev)
	}
	return out
}

// Plan returns the normalized plan the injector was built from.
func (in *Injector) Plan() Plan { return in.plan }

// Events returns the full expanded timeline (for reports and tests).
func (in *Injector) Events() []Event { return in.events }

// NextAt returns the time of the next unconsumed fault event.
func (in *Injector) NextAt() (float64, bool) {
	if in.next >= len(in.events) {
		return math.Inf(1), false
	}
	return in.events[in.next].AtUs, true
}

// Pop consumes and returns the next fault event. Panics if exhausted;
// guard with NextAt.
func (in *Injector) Pop() Event {
	ev := in.events[in.next]
	in.next++
	return ev
}

// HasRestart reports whether a restart for the instance is still ahead
// in the schedule — i.e. whether a crash at this point is temporary.
// The cluster uses it to decide if a crashed instance's host-tier state
// is worth keeping (swapped sequences survive the GPU crash and resume
// after restart) or must be abandoned.
func (in *Injector) HasRestart(inst int) bool {
	for i := in.next; i < len(in.events); i++ {
		if in.events[i].Inst == inst && in.events[i].Op == OpRestart {
			return true
		}
	}
	return false
}

// XferFault draws whether one host<->device transfer faults. Seeded and
// consumed in event-loop order, so the draw sequence is reproducible.
func (in *Injector) XferFault() bool {
	if in.plan.PCIeErrorRate <= 0 {
		return false
	}
	return in.xferRNG.Float64() < in.plan.PCIeErrorRate
}

// RetryBudget returns the per-request re-dispatch budget.
func (in *Injector) RetryBudget() int { return in.plan.RetryBudget }

// Backoff returns the re-dispatch delay in microseconds before attempt
// number `attempt` (1-based): base * 2^(attempt-1), jittered uniformly
// in [0.5, 1.5) so simultaneous orphans from one crash don't re-arrive
// in lockstep.
func (in *Injector) Backoff(attempt int) float64 {
	if attempt < 1 {
		attempt = 1
	}
	base := in.plan.RetryBaseMs * 1e3 // ms -> µs
	jitter := 0.5 + in.backoffRNG.Float64()
	return base * math.Pow(2, float64(attempt-1)) * jitter
}
