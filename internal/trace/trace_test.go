package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCollectorBasics(t *testing.T) {
	c := NewCollector(10)
	c.Emit(Event{Kind: KindAdmit, TimeUs: 1, Seq: 5})
	c.Emit(Event{Kind: KindGenStep, TimeUs: 2, Batch: 3, DurUs: 100})
	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != KindAdmit || evs[1].Batch != 3 {
		t.Fatalf("events wrong: %+v", evs)
	}
	if c.Dropped() != 0 {
		t.Fatal("nothing should be dropped")
	}
}

func TestCollectorRing(t *testing.T) {
	c := NewCollector(4)
	for i := 0; i < 10; i++ {
		c.Emit(Event{Kind: KindGenStep, TimeUs: float64(i)})
	}
	evs := c.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d", len(evs))
	}
	// oldest retained is event 6
	if evs[0].TimeUs != 6 || evs[3].TimeUs != 9 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	if c.Dropped() != 6 {
		t.Fatalf("dropped = %d", c.Dropped())
	}
}

func TestCollectorDefaultCapacity(t *testing.T) {
	c := NewCollector(0)
	if c.cap != 65536 {
		t.Fatalf("default cap = %d", c.cap)
	}
}

func TestSummarize(t *testing.T) {
	c := NewCollector(100)
	c.Emit(Event{Kind: KindAdmit, Seq: 1})
	c.Emit(Event{Kind: KindPromptStep, Batch: 4, DurUs: 500})
	c.Emit(Event{Kind: KindGenStep, Batch: 8, DurUs: 100})
	c.Emit(Event{Kind: KindGenStep, Batch: 6, DurUs: 150})
	c.Emit(Event{Kind: KindPreempt, Seq: 2})
	c.Emit(Event{Kind: KindPreempt, Seq: 2})
	c.Emit(Event{Kind: KindComplete, Seq: 1})
	s := c.Summarize()
	if s.Counts[KindGenStep] != 2 || s.Counts[KindPreempt] != 2 {
		t.Fatalf("counts wrong: %+v", s.Counts)
	}
	if s.StepTimeUs[KindGenStep] != 250 {
		t.Fatalf("gen step time = %v", s.StepTimeUs[KindGenStep])
	}
	if s.MaxBatch != 8 {
		t.Fatalf("max batch = %d", s.MaxBatch)
	}
	if s.PreemptedSeqs[2] != 2 {
		t.Fatalf("preemption count = %d", s.PreemptedSeqs[2])
	}
}

func TestWriteJSONL(t *testing.T) {
	c := NewCollector(10)
	c.Emit(Event{Kind: KindAdmit, TimeUs: 1.5, Seq: 9})
	c.Emit(Event{Kind: KindGenStep, TimeUs: 3, Batch: 2, DurUs: 42})
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindAdmit || e.Seq != 9 {
		t.Fatalf("decoded %+v", e)
	}
}

func TestCollectorConcurrentEmit(t *testing.T) {
	c := NewCollector(1000)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 500; i++ {
				c.Emit(Event{Kind: KindGenStep})
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if len(c.Events())+c.Dropped() != 2000 {
		t.Fatal("events lost under concurrency")
	}
}
