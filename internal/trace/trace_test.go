package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCollectorBasics(t *testing.T) {
	c := NewCollector(10)
	c.Emit(Event{Kind: KindAdmit, TimeUs: 1, Seq: 5})
	c.Emit(Event{Kind: KindGenStep, TimeUs: 2, Batch: 3, DurUs: 100})
	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != KindAdmit || evs[1].Batch != 3 {
		t.Fatalf("events wrong: %+v", evs)
	}
	if c.Dropped() != 0 {
		t.Fatal("nothing should be dropped")
	}
}

func TestCollectorRing(t *testing.T) {
	c := NewCollector(4)
	for i := 0; i < 10; i++ {
		c.Emit(Event{Kind: KindGenStep, TimeUs: float64(i)})
	}
	evs := c.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d", len(evs))
	}
	// oldest retained is event 6
	if evs[0].TimeUs != 6 || evs[3].TimeUs != 9 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	if c.Dropped() != 6 {
		t.Fatalf("dropped = %d", c.Dropped())
	}
}

func TestCollectorDefaultCapacity(t *testing.T) {
	c := NewCollector(0)
	if c.cap != 65536 {
		t.Fatalf("default cap = %d", c.cap)
	}
}

func TestSummarize(t *testing.T) {
	c := NewCollector(100)
	c.Emit(Event{Kind: KindAdmit, Seq: 1})
	c.Emit(Event{Kind: KindPromptStep, Batch: 4, DurUs: 500})
	c.Emit(Event{Kind: KindGenStep, Batch: 8, DurUs: 100})
	c.Emit(Event{Kind: KindGenStep, Batch: 6, DurUs: 150})
	c.Emit(Event{Kind: KindPreempt, Seq: 2})
	c.Emit(Event{Kind: KindPreempt, Seq: 2})
	c.Emit(Event{Kind: KindComplete, Seq: 1})
	s := c.Summarize()
	if s.Counts[KindGenStep] != 2 || s.Counts[KindPreempt] != 2 {
		t.Fatalf("counts wrong: %+v", s.Counts)
	}
	if s.StepTimeUs[KindGenStep] != 250 {
		t.Fatalf("gen step time = %v", s.StepTimeUs[KindGenStep])
	}
	if s.MaxBatch != 8 {
		t.Fatalf("max batch = %d", s.MaxBatch)
	}
	if s.PreemptedSeqs[InstSeq{Seq: 2}] != 2 {
		t.Fatalf("preemption count = %d", s.PreemptedSeqs[InstSeq{Seq: 2}])
	}
}

// Equal sequence IDs on different instances must not collide in the
// preemption aggregate (cluster engines assign auto IDs independently),
// and swap-outs count as preemptions alongside recompute evictions.
func TestSummarizePreemptionsKeyedPerInstance(t *testing.T) {
	c := NewCollector(100)
	c.Emit(Event{Kind: KindPreempt, Seq: 7, Inst: 1})
	c.Emit(Event{Kind: KindPreempt, Seq: 7, Inst: 2})
	c.Emit(Event{Kind: KindSwapOut, Seq: 7, Inst: 2})
	s := c.Summarize()
	if n := s.PreemptedSeqs[InstSeq{Inst: 1, Seq: 7}]; n != 1 {
		t.Fatalf("inst 1 preemptions = %d, want 1", n)
	}
	if n := s.PreemptedSeqs[InstSeq{Inst: 2, Seq: 7}]; n != 2 {
		t.Fatalf("inst 2 preemptions = %d, want 2 (preempt + swap_out)", n)
	}
	if len(s.PreemptedSeqs) != 2 {
		t.Fatalf("preempted keys = %d, want 2: %+v", len(s.PreemptedSeqs), s.PreemptedSeqs)
	}
}

// InstSeq must survive a JSON map-key round trip ("inst/seq" text form).
func TestInstSeqJSONRoundTrip(t *testing.T) {
	in := map[InstSeq]int{{Inst: 3, Seq: 41}: 2, {Seq: 5}: 1}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"3/41"`) {
		t.Fatalf("marshaled form %s lacks inst/seq key", data)
	}
	var out map[InstSeq]int
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out[InstSeq{Inst: 3, Seq: 41}] != 2 || out[InstSeq{Seq: 5}] != 1 {
		t.Fatalf("round trip lost data: %+v", out)
	}
}

func TestCollectorSubscribe(t *testing.T) {
	c := NewCollector(10)
	ch, cancel := c.Subscribe(4)
	c.Emit(Event{Kind: KindAdmit, Seq: 1})
	c.Emit(Event{Kind: KindComplete, Seq: 1})
	if e := <-ch; e.Kind != KindAdmit {
		t.Fatalf("first tapped event = %+v", e)
	}
	if e := <-ch; e.Kind != KindComplete {
		t.Fatalf("second tapped event = %+v", e)
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel should be closed after cancel")
	}
	// emissions after cancel must not panic or deliver
	c.Emit(Event{Kind: KindAdmit, Seq: 2})
	cancel() // idempotent
}

// A subscriber that never drains must not block Emit.
func TestCollectorSubscribeSlowConsumer(t *testing.T) {
	c := NewCollector(100)
	_, cancel := c.Subscribe(2)
	defer cancel()
	for i := 0; i < 50; i++ {
		c.Emit(Event{Kind: KindGenStep, TimeUs: float64(i)})
	}
	if got := c.Retained(); got != 50 {
		t.Fatalf("retained = %d, want 50", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	c := NewCollector(10)
	c.Emit(Event{Kind: KindAdmit, TimeUs: 1.5, Seq: 9})
	c.Emit(Event{Kind: KindGenStep, TimeUs: 3, Batch: 2, DurUs: 42})
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindAdmit || e.Seq != 9 {
		t.Fatalf("decoded %+v", e)
	}
}

func TestCollectorConcurrentEmit(t *testing.T) {
	c := NewCollector(1000)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 500; i++ {
				c.Emit(Event{Kind: KindGenStep})
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if len(c.Events())+c.Dropped() != 2000 {
		t.Fatal("events lost under concurrency")
	}
}
