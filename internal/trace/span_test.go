package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// preemptLifecycle is a request that survives a swap preemption:
// open → admit → first token → swap out → swap in → complete.
func preemptLifecycle() []Event {
	return []Event{
		{Kind: KindOpen, TimeUs: 0, Seq: 1},
		{Kind: KindAdmit, TimeUs: 100, Seq: 1},
		{Kind: KindFirstToken, TimeUs: 400, Seq: 1},
		{Kind: KindGenStep, TimeUs: 500, Batch: 2, DurUs: 100},
		{Kind: KindSwapOut, TimeUs: 900, Seq: 1, Bytes: 4096, DurUs: 50},
		{Kind: KindSwapIn, TimeUs: 1500, Seq: 1, Bytes: 4096, DurUs: 50},
		{Kind: KindComplete, TimeUs: 2100, Seq: 1},
	}
}

// The golden span tree of a preempt→swap-out→swap-in→complete
// lifecycle: phase children in time order, transfer sub-spans carrying
// the byte counts, and a breakdown that sums to end-to-end exactly.
func TestBuildRequestSpansGolden(t *testing.T) {
	trees := BuildRequestSpans(preemptLifecycle())
	if len(trees) != 1 {
		t.Fatalf("trees = %d, want 1", len(trees))
	}
	rt := trees[0]
	if rt.Seq != 1 || !rt.Completed || rt.Cancelled {
		t.Fatalf("request state wrong: %+v", rt)
	}
	if rt.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", rt.Preemptions)
	}
	if rt.StartUs != 0 || rt.EndUs != 2100 {
		t.Fatalf("bounds [%g, %g], want [0, 2100]", rt.StartUs, rt.EndUs)
	}

	want := []Span{
		{Name: "queue", StartUs: 0, EndUs: 100},
		{Name: "prefill", StartUs: 100, EndUs: 400},
		{Name: "decode", StartUs: 400, EndUs: 900},
		{Name: SpanXferD2H, StartUs: 900, EndUs: 950, Bytes: 4096},
		{Name: "swapped", StartUs: 900, EndUs: 1500},
		{Name: SpanXferH2D, StartUs: 1500, EndUs: 1550, Bytes: 4096},
		{Name: "decode", StartUs: 1500, EndUs: 2100},
	}
	if len(rt.Root.Children) != len(want) {
		t.Fatalf("children = %d, want %d: %+v", len(rt.Root.Children), len(want), rt.Root.Children)
	}
	// xfer spans are appended after the phase transition they ride on, so
	// compare as a set keyed by (name, start)
	got := map[[2]interface{}]Span{}
	for _, sp := range rt.Root.Children {
		got[[2]interface{}{sp.Name, sp.StartUs}] = Span{
			Name: sp.Name, StartUs: sp.StartUs, EndUs: sp.EndUs, Bytes: sp.Bytes}
	}
	for _, w := range want {
		g, ok := got[[2]interface{}{w.Name, w.StartUs}]
		if !ok {
			t.Fatalf("missing span %+v in %+v", w, rt.Root.Children)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("span %s@%g = %+v, want %+v", w.Name, w.StartUs, g, w)
		}
	}

	wantBd := PhaseBreakdown{QueueUs: 100, PrefillUs: 300, DecodeUs: 1100, SwappedUs: 600}
	if rt.Phases != wantBd {
		t.Fatalf("phases = %+v, want %+v", rt.Phases, wantBd)
	}
	if math.Abs(rt.Phases.TotalUs()-rt.E2EUs()) > 1e-9 {
		t.Fatalf("phase sum %g != e2e %g", rt.Phases.TotalUs(), rt.E2EUs())
	}
}

// A recompute preemption routes through the stall phase instead.
func TestBuildRequestSpansRecomputeStall(t *testing.T) {
	events := []Event{
		{Kind: KindOpen, TimeUs: 0, Seq: 3},
		{Kind: KindAdmit, TimeUs: 50, Seq: 3},
		{Kind: KindFirstToken, TimeUs: 200, Seq: 3},
		{Kind: KindPreempt, TimeUs: 300, Seq: 3},
		{Kind: KindAdmit, TimeUs: 700, Seq: 3}, // re-admission restarts prefill
		{Kind: KindFirstToken, TimeUs: 900, Seq: 3},
		{Kind: KindComplete, TimeUs: 1000, Seq: 3},
	}
	rt := FindRequestSpans(BuildRequestSpans(events), 3)
	if rt == nil {
		t.Fatal("request 3 missing")
	}
	want := PhaseBreakdown{QueueUs: 50, PrefillUs: 150 + 200, DecodeUs: 100 + 100, StallUs: 400}
	if rt.Phases != want {
		t.Fatalf("phases = %+v, want %+v", rt.Phases, want)
	}
	if math.Abs(rt.Phases.TotalUs()-rt.E2EUs()) > 1e-9 {
		t.Fatalf("phase sum %g != e2e %g", rt.Phases.TotalUs(), rt.E2EUs())
	}
}

// Requests on different instances with the same Seq stay separate, and
// in-flight requests get open-ended trees truncated at their last event.
func TestBuildRequestSpansCrossInstance(t *testing.T) {
	events := []Event{
		{Kind: KindOpen, TimeUs: 0, Seq: 1, Inst: 1},
		{Kind: KindOpen, TimeUs: 10, Seq: 1, Inst: 2},
		{Kind: KindAdmit, TimeUs: 20, Seq: 1, Inst: 1},
		{Kind: KindComplete, TimeUs: 500, Seq: 1, Inst: 1},
	}
	trees := BuildRequestSpans(events)
	if len(trees) != 2 {
		t.Fatalf("trees = %d, want 2", len(trees))
	}
	if !trees[0].Completed || trees[0].Inst != 1 {
		t.Fatalf("inst 1 tree wrong: %+v", trees[0])
	}
	if trees[1].Completed || trees[1].Inst != 2 || trees[1].EndUs != 10 {
		t.Fatalf("inst 2 tree wrong: %+v", trees[1])
	}
}

// A Perfetto export must round-trip its raw events and contain the
// async request slices and step slices the viewer renders.
func TestPerfettoRoundTrip(t *testing.T) {
	events := preemptLifecycle()
	var buf bytes.Buffer
	if err := WritePerfettoEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"ph":"b"`, `"ph":"e"`, `"ph":"X"`, `"diffkvEvents"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("perfetto output lacks %s", want)
		}
	}
	back, err := ReadEvents(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, events) {
		t.Fatalf("round trip changed events:\n got %+v\nwant %+v", back, events)
	}
}

// ReadEvents accepts plain JSONL too (WriteJSONL's output).
func TestReadEventsJSONL(t *testing.T) {
	c := NewCollector(10)
	for _, e := range preemptLifecycle() {
		c.Emit(e)
	}
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, preemptLifecycle()) {
		t.Fatalf("jsonl round trip changed events: %+v", events)
	}
	if _, err := ReadEvents(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage input should error")
	}
}
