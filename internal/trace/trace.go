// Package trace provides structured event tracing for the serving engine:
// admissions, preemptions, completions and per-step timings are emitted as
// typed events into a bounded collector, which can summarize them or write
// JSON lines for offline analysis. This is the observability surface an
// operator uses to understand scheduler behaviour (queueing onset,
// preemption storms, batch dynamics) without instrumenting the engine.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the serving engine and the cluster router.
const (
	KindAdmit      Kind = "admit"
	KindPreempt    Kind = "preempt"
	KindComplete   Kind = "complete"
	KindPromptStep Kind = "prompt_step"
	KindGenStep    Kind = "gen_step"
	// KindDispatch is a router decision assigning a request to an
	// instance; KindReject is a request shed by admission control.
	KindDispatch Kind = "dispatch"
	KindReject   Kind = "reject"
	// KindSwapOut / KindSwapIn mark a sequence moving to / returning from
	// the host offload tier (swap-instead-of-recompute preemption);
	// KindHostPrefixHit marks an admission served from a prefix-cache
	// entry that had spilled to the host tier.
	KindSwapOut       Kind = "swap_out"
	KindSwapIn        Kind = "swap_in"
	KindHostPrefixHit Kind = "host_prefix_hit"
	// KindCancel marks a session cancelled mid-flight: its KV pages and
	// any host-tier state were freed without completing the request.
	KindCancel Kind = "cancel"
	// KindOpen marks a request entering the pending queue (Engine.Submit
	// / Engine.Open) — the accept point of serving, before admission
	// (KindAdmit) ever runs. The gap between open and admit is queueing
	// delay.
	KindOpen Kind = "open"
	// KindFirstToken marks the prompt phase finishing (the TTFT point):
	// the request transitions from prefill to decode.
	KindFirstToken Kind = "first_token"
	// Fault-injection lifecycle (internal/faults). KindHealth marks an
	// instance health transition (Note carries the new state:
	// healthy/degraded/down; Seq is 0 — it is an instance event, not a
	// request event). KindRetry marks a request orphaned by an instance
	// crash and queued for re-dispatch (emitted against the instance it
	// was lost from). KindRecover marks a host-tier-swapped sequence
	// surviving its instance's crash and resuming after restart (Bytes
	// is the preserved host-tier footprint). KindFail is terminal: the
	// request exhausted its re-dispatch budget (Note carries the
	// reason).
	KindHealth  Kind = "health"
	KindRetry   Kind = "retry"
	KindRecover Kind = "recover"
	KindFail    Kind = "fail"
	// KindKVShip marks a disaggregated prefill→decode handoff: the
	// finished prefill's compressed KV pages leaving the prefill
	// instance for the chosen decode instance over the NIC. It is
	// emitted against the *destination* instance (it opens the decode
	// side's span tree with an xfer:inst span); Bytes is the packed
	// payload crossing the wire, DurUs the modeled NICTransfer time, and
	// Note names the source and pool link ("from=2 link=prefill>decode").
	KindKVShip Kind = "kv_ship"
	// KindAlert is a telemetry signal (internal/telemetry): a saturation
	// scale-up/down advisory or an SLO burn-rate alert. Seq is 0 (it is a
	// fleet event, not a request event); Inst is the 1-based instance for
	// per-instance advisories, 0 for cluster-wide signals; Note carries
	// the rendered alert ("scale_up headroom=0.082", "slo_burn ttft
	// fast=3.10 slow=2.41"). The autoscaling layer consumes these instead
	// of re-deriving saturation from raw counters.
	KindAlert Kind = "alert"
)

// Event is one traced occurrence.
type Event struct {
	Kind Kind `json:"kind"`
	// TimeUs is the simulated clock at emission (microseconds).
	TimeUs float64 `json:"time_us"`
	// Seq is the request ID for per-request events (0 for step events).
	Seq int `json:"seq,omitempty"`
	// Batch is the running batch size for step events.
	Batch int `json:"batch,omitempty"`
	// DurUs is the step duration for step events (microseconds).
	DurUs float64 `json:"dur_us,omitempty"`
	// Inst is the 1-based serving-instance tag in cluster runs (0 for
	// single-engine runs; see WithInstance).
	Inst int `json:"inst,omitempty"`
	// Bytes is the payload size of transfer-bearing events: swap_out /
	// swap_in PCIe traffic and host_prefix_hit promotions. For those
	// events DurUs carries the modeled transfer time before overlap.
	Bytes int64 `json:"bytes,omitempty"`
	// Note carries a short annotation on fault-lifecycle events: the new
	// health state on KindHealth, the orphaning cause on KindRetry, the
	// terminal reason on KindFail.
	Note string `json:"note,omitempty"`
}

// Tracer receives events. Implementations must be safe for concurrent use
// if shared across goroutines (the serving engine emits from one
// goroutine).
type Tracer interface {
	Emit(Event)
}

// Collector is a bounded in-memory tracer: once capacity is reached the
// oldest events are dropped (ring semantics) and the drop count recorded.
// Live consumers can additionally Subscribe for a best-effort event tap.
type Collector struct {
	mu      sync.Mutex
	events  []Event
	start   int
	dropped int
	cap     int
	subs    map[int]chan Event
	subNext int
}

// NewCollector creates a collector holding at most capacity events
// (default 65536 when capacity <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = 65536
	}
	return &Collector{cap: capacity}
}

// Emit implements Tracer.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//diffkv:allow maprange -- best-effort fan-out: every subscriber gets the same event; inter-subscriber order is unobservable
	for _, ch := range c.subs {
		select {
		case ch <- e:
		default: // a slow subscriber loses events, never stalls the engine
		}
	}
	if len(c.events) < c.cap {
		c.events = append(c.events, e)
		return
	}
	// overwrite oldest
	c.events[c.start] = e
	c.start = (c.start + 1) % c.cap
	c.dropped++
}

// Subscribe registers a live tap over subsequent emissions: events are
// delivered to the returned channel (buffered to buf, default 256) on a
// best-effort basis — when the subscriber falls behind, events are
// skipped rather than blocking Emit. The cancel function unregisters the
// tap and closes the channel; it must be called exactly once.
func (c *Collector) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 256
	}
	ch := make(chan Event, buf)
	c.mu.Lock()
	if c.subs == nil {
		c.subs = make(map[int]chan Event)
	}
	id := c.subNext
	c.subNext++
	c.subs[id] = ch
	c.mu.Unlock()
	return ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if _, ok := c.subs[id]; ok {
			delete(c.subs, id)
			close(ch)
		}
	}
}

// Events returns the retained events in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, 0, len(c.events))
	out = append(out, c.events[c.start:]...)
	out = append(out, c.events[:c.start]...)
	return out
}

// Dropped returns how many events were evicted by the ring.
func (c *Collector) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Retained returns how many events the ring currently holds.
func (c *Collector) Retained() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// InstSeq identifies a request by (instance, sequence): in cluster runs
// every engine assigns auto IDs independently, so a bare Seq can collide
// across instances and must not key per-request aggregates alone. It
// marshals as "inst/seq" so it can key JSON maps.
type InstSeq struct {
	Inst int
	Seq  int
}

// MarshalText implements encoding.TextMarshaler (JSON map keys).
func (k InstSeq) MarshalText() ([]byte, error) {
	return []byte(fmt.Sprintf("%d/%d", k.Inst, k.Seq)), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *InstSeq) UnmarshalText(b []byte) error {
	if _, err := fmt.Sscanf(string(b), "%d/%d", &k.Inst, &k.Seq); err != nil {
		return fmt.Errorf("trace: bad InstSeq %q: %w", b, err)
	}
	return nil
}

// Summary aggregates the retained events.
type Summary struct {
	Counts map[Kind]int `json:"counts"`
	// StepTimeUs sums step durations per kind.
	StepTimeUs map[Kind]float64 `json:"step_time_us"`
	// MaxBatch is the largest batch observed in step events.
	MaxBatch int `json:"max_batch"`
	// Preemptions per (instance, sequence) — swap-outs included; requests
	// preempted more than once are scheduler red flags. Keyed on InstSeq
	// because sequence IDs alone collide across cluster instances.
	PreemptedSeqs map[InstSeq]int `json:"preempted_seqs,omitempty"`
}

// Summarize builds a Summary of the retained events.
func (c *Collector) Summarize() Summary {
	s := Summary{
		Counts:        map[Kind]int{},
		StepTimeUs:    map[Kind]float64{},
		PreemptedSeqs: map[InstSeq]int{},
	}
	for _, e := range c.Events() {
		s.Counts[e.Kind]++
		switch e.Kind {
		case KindPromptStep, KindGenStep:
			s.StepTimeUs[e.Kind] += e.DurUs
			if e.Batch > s.MaxBatch {
				s.MaxBatch = e.Batch
			}
		case KindPreempt, KindSwapOut:
			s.PreemptedSeqs[InstSeq{Inst: e.Inst, Seq: e.Seq}]++
		}
	}
	return s
}

// instanceTracer stamps a fixed instance tag onto every event.
type instanceTracer struct {
	inner Tracer
	inst  int
}

// Emit implements Tracer.
func (t instanceTracer) Emit(e Event) {
	e.Inst = t.inst
	t.inner.Emit(e)
}

// WithInstance wraps a tracer so every emitted event carries the given
// 1-based instance tag — the cluster simulator wraps its shared collector
// once per serving instance so interleaved events stay attributable.
func WithInstance(t Tracer, inst int) Tracer {
	return instanceTracer{inner: t, inst: inst}
}

// WriteJSONL writes retained events as JSON lines.
func (c *Collector) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range c.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}
