package trace

// Chrome/Perfetto trace-event export: the collector's events rendered as
// a trace-event JSON file that loads directly in ui.perfetto.dev (or
// chrome://tracing). Each serving instance becomes a process track; the
// engine's prompt/gen steps are complete ("X") slices on a "steps"
// thread, and every request is an async nestable slice group ("b"/"e")
// whose children are its lifecycle phase spans and transfers, built from
// the same span builder the debug endpoints use. The raw events are
// embedded under "diffkvEvents" so an exported file round-trips through
// ReadEvents and the diffkv-trace CLI without loss.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// perfettoEvent is one trace-event entry (the subset of fields used).
type perfettoEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Cat   string         `json:"cat,omitempty"`
	ID    string         `json:"id,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
	Scope string         `json:"s,omitempty"`
}

// perfettoFile is the top-level trace-event JSON object.
type perfettoFile struct {
	TraceEvents []perfettoEvent `json:"traceEvents"`
	// DisplayTimeUnit selects the viewer's default unit (timestamps
	// themselves are microseconds, the trace-event standard).
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
	// DiffKVEvents embeds the raw event stream for lossless round-trips.
	DiffKVEvents []Event `json:"diffkvEvents"`
}

const (
	tidSteps    = 0
	tidRequests = 1
)

// WritePerfetto writes the retained events as Chrome/Perfetto
// trace-event JSON (see the package-level WritePerfettoEvents).
func (c *Collector) WritePerfetto(w io.Writer) error {
	return WritePerfettoEvents(w, c.Events())
}

// WritePerfettoEvents renders an event stream as Chrome/Perfetto
// trace-event JSON: one process track per serving instance, step slices
// and per-request async span groups.
func WritePerfettoEvents(w io.Writer, events []Event) error {
	var out []perfettoEvent

	// process/thread metadata: one pid per instance tag seen
	insts := map[int]bool{}
	for _, e := range events {
		insts[e.Inst] = true
	}
	instList := make([]int, 0, len(insts))
	for inst := range insts {
		instList = append(instList, inst)
	}
	sort.Ints(instList)
	for _, inst := range instList {
		name := fmt.Sprintf("instance %d", inst)
		if inst == 0 {
			name = "engine"
		}
		out = append(out,
			perfettoEvent{Name: "process_name", Ph: "M", Pid: inst,
				Args: map[string]any{"name": name}},
			perfettoEvent{Name: "thread_name", Ph: "M", Pid: inst, Tid: tidSteps,
				Args: map[string]any{"name": "steps"}},
			perfettoEvent{Name: "thread_name", Ph: "M", Pid: inst, Tid: tidRequests,
				Args: map[string]any{"name": "requests"}},
		)
	}

	// step slices: the engine emits step events at the step's end with
	// its duration, so the slice starts DurUs earlier
	for _, e := range events {
		switch e.Kind {
		case KindPromptStep, KindGenStep:
			out = append(out, perfettoEvent{
				Name: string(e.Kind), Ph: "X", Cat: "step",
				Pid: e.Inst, Tid: tidSteps,
				Ts: e.TimeUs - e.DurUs, Dur: e.DurUs,
				Args: map[string]any{"batch": e.Batch},
			})
		}
	}

	// request span groups: async nestable slices keyed by (inst, seq)
	for _, rt := range BuildRequestSpans(events) {
		id := fmt.Sprintf("%d/%d", rt.Inst, rt.Seq)
		name := fmt.Sprintf("req %d", rt.Seq)
		args := map[string]any{"seq": rt.Seq}
		if rt.Preemptions > 0 {
			args["preemptions"] = rt.Preemptions
		}
		out = append(out, perfettoEvent{
			Name: name, Ph: "b", Cat: "request", ID: id,
			Pid: rt.Inst, Tid: tidRequests, Ts: rt.StartUs, Args: args,
		})
		for _, sp := range rt.Root.Children {
			switch {
			case sp.StartUs == sp.EndUs:
				// instantaneous markers (dispatch, host_prefix_hit)
				ev := perfettoEvent{
					Name: sp.Name, Ph: "n", Cat: "request", ID: id,
					Pid: rt.Inst, Tid: tidRequests, Ts: sp.StartUs,
				}
				if sp.Bytes > 0 {
					ev.Args = map[string]any{"bytes": sp.Bytes}
				}
				out = append(out, ev)
			default:
				var spArgs map[string]any
				if sp.Bytes > 0 {
					spArgs = map[string]any{"bytes": sp.Bytes}
				}
				out = append(out,
					perfettoEvent{Name: sp.Name, Ph: "b", Cat: "request", ID: id,
						Pid: rt.Inst, Tid: tidRequests, Ts: sp.StartUs, Args: spArgs},
					perfettoEvent{Name: sp.Name, Ph: "e", Cat: "request", ID: id,
						Pid: rt.Inst, Tid: tidRequests, Ts: sp.EndUs})
			}
		}
		out = append(out, perfettoEvent{
			Name: name, Ph: "e", Cat: "request", ID: id,
			Pid: rt.Inst, Tid: tidRequests, Ts: rt.EndUs,
		})
	}

	// stable sort by timestamp: generation order already opens parents
	// before children at equal timestamps and closes children first
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(perfettoFile{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"generator": "diffkv"},
		DiffKVEvents:    events,
	}); err != nil {
		return fmt.Errorf("trace: perfetto: %w", err)
	}
	return bw.Flush()
}

// ReadEvents parses an event stream from either of the formats diffkv
// writes: a Perfetto trace-event file carrying embedded "diffkvEvents"
// (WritePerfetto), or plain JSON lines (WriteJSONL).
func ReadEvents(r io.Reader) ([]Event, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	var pf struct {
		DiffKVEvents []Event `json:"diffkvEvents"`
	}
	if err := json.Unmarshal(data, &pf); err == nil && pf.DiffKVEvents != nil {
		return pf.DiffKVEvents, nil
	}
	var events []Event
	for i, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", i+1, err)
		}
		events = append(events, e)
	}
	return events, nil
}
