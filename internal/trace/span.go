package trace

// Request-lifecycle spans: the flat event stream regrouped into one span
// tree per request, so the full latency budget of any request — where
// did its 800ms go? — sums from its parts. The root span covers open →
// complete/cancel; its children are the lifecycle phases (queue,
// prefill, decode, and the preemption phases stall / swapped), with
// transfer sub-spans carrying the PCIe byte counts of swap traffic and
// instantaneous markers for dispatch and host-prefix hits. The builder
// is a pure function of the event stream, so it works identically over
// the live collector, a JSONL file, or a re-read Perfetto export.

import "sort"

// Phase classifies where a request's lifecycle time is spent.
type Phase string

// Lifecycle phases. Exactly one is active at any instant of a request's
// life, so the per-phase durations sum to its end-to-end latency.
const (
	// PhaseQueue is arrival (open) to admission.
	PhaseQueue Phase = "queue"
	// PhasePrefill is admission to the first output token (the prompt
	// pass, re-entered after a recompute preemption).
	PhasePrefill Phase = "prefill"
	// PhaseDecode is token generation.
	PhaseDecode Phase = "decode"
	// PhaseStall is a recompute preemption: the request was evicted and
	// waits in the queue to restart from scratch.
	PhaseStall Phase = "stall"
	// PhaseSwapped is a swap preemption: the request's KV lives in host
	// memory and it waits for swap-in.
	PhaseSwapped Phase = "swapped"
	// PhaseXferInst is a disaggregated handoff: the finished prefill's
	// KV pages are crossing the NIC to the chosen decode instance and
	// the request can make no progress until they land.
	PhaseXferInst Phase = "xfer:inst"
)

// PhaseBreakdown attributes a request's end-to-end latency across
// lifecycle phases (microseconds). The buckets are exhaustive and
// non-overlapping: they sum to completion minus arrival.
type PhaseBreakdown struct {
	QueueUs   float64 `json:"queue_us"`
	PrefillUs float64 `json:"prefill_us"`
	DecodeUs  float64 `json:"decode_us"`
	StallUs   float64 `json:"stall_us,omitempty"`
	SwappedUs float64 `json:"swapped_us,omitempty"`
	// XferUs is cross-instance KV shipment time (disaggregated serving's
	// prefill→decode handoff; zero elsewhere).
	XferUs float64 `json:"xfer_us,omitempty"`
}

// Add accumulates durUs into the bucket for ph.
func (p *PhaseBreakdown) Add(ph Phase, durUs float64) {
	switch ph {
	case PhaseQueue:
		p.QueueUs += durUs
	case PhasePrefill:
		p.PrefillUs += durUs
	case PhaseDecode:
		p.DecodeUs += durUs
	case PhaseStall:
		p.StallUs += durUs
	case PhaseSwapped:
		p.SwappedUs += durUs
	case PhaseXferInst:
		p.XferUs += durUs
	}
}

// TotalUs sums the buckets — the end-to-end latency they attribute.
func (p PhaseBreakdown) TotalUs() float64 {
	return p.QueueUs + p.PrefillUs + p.DecodeUs + p.StallUs + p.SwappedUs + p.XferUs
}

// Span is one node of a request's span tree: a named interval of
// simulated time with optional transfer payload and children. Marker
// spans (dispatch, host_prefix_hit) have StartUs == EndUs.
type Span struct {
	Name    string  `json:"name"`
	StartUs float64 `json:"start_us"`
	EndUs   float64 `json:"end_us"`
	// Bytes is the transfer payload of xfer spans (0 otherwise).
	Bytes    int64   `json:"bytes,omitempty"`
	Children []*Span `json:"children,omitempty"`
}

// DurUs returns the span's duration.
func (s *Span) DurUs() float64 { return s.EndUs - s.StartUs }

// Names of non-phase spans in a request tree.
const (
	SpanXferD2H       = "xfer:d2h"
	SpanXferH2D       = "xfer:h2d"
	SpanXferInst      = "xfer:inst"
	SpanDispatch      = "dispatch"
	SpanHostPrefixHit = "host_prefix_hit"
	SpanRetry         = "retry"
	SpanRecover       = "recover"
)

// RequestSpans is the reconstructed lifecycle of one request: its root
// span (phase spans as children, in time order) plus the phase
// breakdown derived from them.
type RequestSpans struct {
	Seq  int `json:"seq"`
	Inst int `json:"inst,omitempty"`
	// StartUs is arrival (the open event, or the earliest retained event
	// when the ring dropped the open); EndUs is completion, cancellation,
	// or the last retained event for still-running requests.
	StartUs float64 `json:"start_us"`
	EndUs   float64 `json:"end_us"`
	// Completed / Cancelled / Failed mark how the request ended; all
	// false means it was still in flight at the end of the event stream.
	// Failed is the terminal fault-injection outcome: the request
	// exhausted its re-dispatch budget after instance crashes.
	Completed bool `json:"completed,omitempty"`
	Cancelled bool `json:"cancelled,omitempty"`
	Failed    bool `json:"failed,omitempty"`
	// FailReason carries the Note of the fail event (Failed only).
	FailReason string `json:"fail_reason,omitempty"`
	// Preemptions counts preempt + swap_out events.
	Preemptions int `json:"preemptions,omitempty"`
	// Retries counts crash-orphaning retry events: each is one lost
	// residency on an instance that died with the request on board.
	Retries int `json:"retries,omitempty"`
	// Phases is the per-phase latency attribution summed from the phase
	// spans; for completed requests it sums to EndUs-StartUs.
	Phases PhaseBreakdown `json:"phases"`
	Root   *Span          `json:"root"`
}

// E2EUs returns the request's end-to-end latency.
func (r *RequestSpans) E2EUs() float64 { return r.EndUs - r.StartUs }

// spanBuilder is the per-request state machine of BuildRequestSpans.
type spanBuilder struct {
	rt      *RequestSpans
	cur     Phase
	sinceUs float64
	started bool
	lastUs  float64
}

// begin lazily opens the tree at the first event (the ring may have
// dropped the true open; the tree then starts at what survived).
func (b *spanBuilder) begin(t float64, ph Phase) {
	if b.started {
		return
	}
	b.started = true
	b.rt.StartUs = t
	b.rt.Root = &Span{Name: "request", StartUs: t}
	b.cur, b.sinceUs = ph, t
}

// to closes the current phase span at t and enters ph.
func (b *spanBuilder) to(t float64, ph Phase) {
	b.closePhase(t)
	b.cur, b.sinceUs = ph, t
}

// closePhase appends the current phase as a child span ending at t.
func (b *spanBuilder) closePhase(t float64) {
	if !b.started || t < b.sinceUs {
		return
	}
	b.rt.Root.Children = append(b.rt.Root.Children,
		&Span{Name: string(b.cur), StartUs: b.sinceUs, EndUs: t})
	b.rt.Phases.Add(b.cur, t-b.sinceUs)
}

// marker appends an instantaneous child span.
func (b *spanBuilder) marker(name string, t float64, bytes int64) {
	b.rt.Root.Children = append(b.rt.Root.Children,
		&Span{Name: name, StartUs: t, EndUs: t, Bytes: bytes})
}

// xfer appends a transfer child span of durUs starting at t.
func (b *spanBuilder) xfer(name string, t, durUs float64, bytes int64) {
	b.rt.Root.Children = append(b.rt.Root.Children,
		&Span{Name: name, StartUs: t, EndUs: t + durUs, Bytes: bytes})
}

// feed advances the state machine by one event.
func (b *spanBuilder) feed(e Event) {
	t := e.TimeUs
	b.lastUs = t
	switch e.Kind {
	case KindOpen, KindDispatch:
		if b.started && b.cur == PhaseXferInst {
			// disaggregated decode side: the shipped KV landed and the
			// adopted request enters this instance's pending queue
			b.to(t, PhaseQueue)
		} else {
			b.begin(t, PhaseQueue)
		}
		if e.Kind == KindDispatch {
			b.marker(SpanDispatch, t, 0)
		}
	case KindHostPrefixHit:
		b.begin(t, PhaseQueue)
		b.marker(SpanHostPrefixHit, t, e.Bytes)
	case KindAdmit:
		ph := PhasePrefill
		if e.Note == "adopt" {
			// adopted prefilled sequence: its prompt pass already ran on
			// the prefill instance, so admission here resumes decode
			ph = PhaseDecode
		}
		if !b.started {
			b.begin(t, ph)
			return
		}
		b.to(t, ph)
	case KindFirstToken:
		b.begin(t, PhasePrefill)
		b.to(t, PhaseDecode)
	case KindPreempt:
		b.begin(t, PhaseDecode)
		b.rt.Preemptions++
		b.to(t, PhaseStall)
	case KindSwapOut:
		b.begin(t, PhaseDecode)
		b.rt.Preemptions++
		b.to(t, PhaseSwapped)
		b.xfer(SpanXferD2H, t, e.DurUs, e.Bytes)
	case KindSwapIn:
		b.begin(t, PhaseSwapped)
		b.to(t, PhaseDecode)
		b.xfer(SpanXferH2D, t, e.DurUs, e.Bytes)
	case KindKVShip:
		// disaggregated handoff, emitted against the destination
		// instance: the decode side's tree opens in the xfer:inst phase,
		// with the wire transfer recorded as a byte-carrying child span
		b.begin(t, PhaseXferInst)
		b.xfer(SpanXferInst, t, e.DurUs, e.Bytes)
	case KindComplete:
		b.begin(t, PhaseDecode)
		b.finish(t)
		b.rt.Completed = true
	case KindCancel:
		b.begin(t, PhaseQueue)
		b.finish(t)
		b.rt.Cancelled = true
	case KindRetry:
		// the request's residency on this instance ended with a crash;
		// it re-enters queue state while awaiting re-dispatch. A
		// re-dispatch lands on another instance and so starts a fresh
		// tree there — this tree keeps the pre-crash history.
		b.begin(t, PhaseQueue)
		b.rt.Retries++
		b.marker(SpanRetry, t, 0)
		b.to(t, PhaseQueue)
	case KindRecover:
		// host-tier state survived the instance crash: the swapped
		// sequence resumes after restart instead of recomputing
		b.begin(t, PhaseSwapped)
		b.marker(SpanRecover, t, e.Bytes)
	case KindFail:
		b.begin(t, PhaseQueue)
		b.finish(t)
		b.rt.Failed = true
		b.rt.FailReason = e.Note
	}
}

// finish closes the tree at t.
func (b *spanBuilder) finish(t float64) {
	b.closePhase(t)
	b.rt.EndUs = t
	b.rt.Root.EndUs = t
}

// BuildRequestSpans regroups an event stream into one span tree per
// request, keyed on (instance, sequence). Step events (Seq 0) are
// skipped. Requests still in flight at the end of the stream get an
// open-ended tree truncated at their last event. The result is ordered
// by start time (ties by instance, then sequence).
func BuildRequestSpans(events []Event) []*RequestSpans {
	builders := make(map[InstSeq]*spanBuilder)
	var order []*spanBuilder
	for _, e := range events {
		if e.Seq == 0 {
			continue
		}
		key := InstSeq{Inst: e.Inst, Seq: e.Seq}
		b, ok := builders[key]
		if !ok {
			b = &spanBuilder{rt: &RequestSpans{Seq: e.Seq, Inst: e.Inst}}
			builders[key] = b
			order = append(order, b)
		}
		b.feed(e)
	}
	out := make([]*RequestSpans, 0, len(order))
	for _, b := range order {
		if !b.started {
			continue
		}
		if !b.rt.Completed && !b.rt.Cancelled && !b.rt.Failed {
			b.finish(b.lastUs)
		}
		out = append(out, b.rt)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.StartUs != b.StartUs {
			return a.StartUs < b.StartUs
		}
		if a.Inst != b.Inst {
			return a.Inst < b.Inst
		}
		return a.Seq < b.Seq
	})
	return out
}

// FindRequestSpans returns the span tree of the request with the given
// sequence ID (nil when absent). Sequence IDs are unique fleet-wide on
// every online path (sessions, cluster dispatch), so no instance is
// needed.
func FindRequestSpans(trees []*RequestSpans, seq int) *RequestSpans {
	for _, rt := range trees {
		if rt.Seq == seq {
			return rt
		}
	}
	return nil
}
