package trace

import "testing"

// A request that is dispatched, crashes with its instance, and is
// terminally failed must rebuild into a tree that ends at the fail
// event with Failed set — and the retry marker must be counted.
func TestSpanTreeFailTerminal(t *testing.T) {
	events := []Event{
		{Kind: KindOpen, TimeUs: 0, Seq: 9, Inst: 1},
		{Kind: KindDispatch, TimeUs: 0, Seq: 9, Inst: 1},
		{Kind: KindAdmit, TimeUs: 100, Seq: 9, Inst: 1},
		{Kind: KindRetry, TimeUs: 500, Seq: 9, Inst: 1, Note: "crash"},
		{Kind: KindFail, TimeUs: 900, Seq: 9, Inst: 1, Note: "retry budget exhausted"},
	}
	trees := BuildRequestSpans(events)
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	rt := trees[0]
	if !rt.Failed || rt.Completed || rt.Cancelled {
		t.Fatalf("terminal flags wrong: %+v", rt)
	}
	if rt.FailReason != "retry budget exhausted" {
		t.Fatalf("fail reason %q", rt.FailReason)
	}
	if rt.Retries != 1 {
		t.Fatalf("retries = %d, want 1", rt.Retries)
	}
	if rt.EndUs != 900 {
		t.Fatalf("tree should end at the fail event, got %g", rt.EndUs)
	}
	if got := rt.Phases.TotalUs(); got != 900 {
		t.Fatalf("phase sum %g, want 900 (arrival to terminal failure)", got)
	}
	// the retry marker must be in the tree
	found := false
	for _, c := range rt.Root.Children {
		if c.Name == SpanRetry {
			found = true
		}
	}
	if !found {
		t.Fatal("no retry marker child span")
	}
}

// A crash-orphaned request re-dispatched to a second instance produces
// two trees keyed by instance: the first keeps the pre-crash history
// and a retry marker, the second carries the request to completion.
func TestSpanTreeSplitsAcrossRedispatch(t *testing.T) {
	events := []Event{
		{Kind: KindOpen, TimeUs: 0, Seq: 7, Inst: 1},
		{Kind: KindAdmit, TimeUs: 50, Seq: 7, Inst: 1},
		{Kind: KindRetry, TimeUs: 400, Seq: 7, Inst: 1, Note: "crash"},
		{Kind: KindDispatch, TimeUs: 600, Seq: 7, Inst: 2},
		{Kind: KindAdmit, TimeUs: 650, Seq: 7, Inst: 2},
		{Kind: KindFirstToken, TimeUs: 800, Seq: 7, Inst: 2},
		{Kind: KindComplete, TimeUs: 1000, Seq: 7, Inst: 2},
	}
	trees := BuildRequestSpans(events)
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2 (one per instance residency)", len(trees))
	}
	first, second := trees[0], trees[1]
	if first.Inst != 1 || second.Inst != 2 {
		t.Fatalf("tree instances %d, %d", first.Inst, second.Inst)
	}
	if first.Completed || first.Retries != 1 {
		t.Fatalf("first residency should be an uncompleted retry: %+v", first)
	}
	if !second.Completed || second.EndUs != 1000 {
		t.Fatalf("second residency should complete at 1000: %+v", second)
	}
}

// A recover marker lands inside the swapped phase of a surviving tree.
func TestSpanTreeRecoverMarker(t *testing.T) {
	events := []Event{
		{Kind: KindOpen, TimeUs: 0, Seq: 3, Inst: 1},
		{Kind: KindAdmit, TimeUs: 10, Seq: 3, Inst: 1},
		{Kind: KindFirstToken, TimeUs: 100, Seq: 3, Inst: 1},
		{Kind: KindSwapOut, TimeUs: 200, Seq: 3, Inst: 1, Bytes: 4096, DurUs: 30},
		{Kind: KindRecover, TimeUs: 900, Seq: 3, Inst: 1, Bytes: 4096},
		{Kind: KindSwapIn, TimeUs: 950, Seq: 3, Inst: 1, Bytes: 4096, DurUs: 30},
		{Kind: KindComplete, TimeUs: 1200, Seq: 3, Inst: 1},
	}
	trees := BuildRequestSpans(events)
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	rt := trees[0]
	if !rt.Completed {
		t.Fatal("request should complete")
	}
	var rec *Span
	for _, c := range rt.Root.Children {
		if c.Name == SpanRecover {
			rec = c
		}
	}
	if rec == nil || rec.Bytes != 4096 {
		t.Fatalf("recover marker missing or wrong bytes: %+v", rec)
	}
	if got := rt.Phases.TotalUs(); got != 1200 {
		t.Fatalf("phase sum %g, want 1200", got)
	}
}
