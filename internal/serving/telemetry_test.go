package serving

import (
	"context"
	"sync"
	"testing"
	"time"

	"diffkv/internal/telemetry"
	"diffkv/internal/workload"
)

// TestLoopTelemetrySampling is the concurrency contract of the
// telemetry attachment: the loop samples the center between steps and
// records every completion while the gateway-side surface (Snapshot,
// LatencyHists) is polled from other goroutines. Under -race this
// proves the center's lock covers both sides; functionally it proves
// no completion is lost and occupancy is sampled.
func TestLoopTelemetrySampling(t *testing.T) {
	tc := telemetry.New(telemetry.Config{
		// sample every simulated 10ms so a short run still collects
		// plenty of ticks
		SampleIntervalUs: 1e4,
		SLOs:             []telemetry.SLOSpec{{Metric: "ttft", TargetSec: 10}},
	})
	l := NewLoop(newLoopEngine(t, 11), LoopConfig{Telemetry: tc})

	stop := make(chan struct{})
	var poll sync.WaitGroup
	poll.Add(1)
	go func() {
		defer poll.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := tc.Snapshot()
			_ = snap.Cluster.Headroom
			tc.LatencyHists()
			tc.SLOStatuses()
			tc.Alerts()
		}
	}()

	const n = 16
	var wg sync.WaitGroup
	sessions := make([]*Session, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := l.Open(context.Background(),
				workload.Request{PromptLen: 128 + 16*i, GenLen: 8 + i}, nil)
			if err != nil {
				t.Errorf("open %d: %v", i, err)
				return
			}
			sessions[i] = s
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, s := range sessions {
		select {
		case <-s.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("session %d never completed", i)
		}
	}
	if err := l.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	poll.Wait()

	snap := tc.Snapshot()
	if snap.Samples == 0 {
		t.Fatal("loop never sampled the center")
	}
	if got := snap.Latency["e2e"].Count; got != n {
		t.Fatalf("e2e completions recorded = %d, want %d", got, n)
	}
	if got := snap.Latency["ttft"].Count; got != n {
		t.Fatalf("ttft completions recorded = %d, want %d", got, n)
	}
	if len(snap.Instances) != 1 || snap.Instances[0].Inst != 1 {
		t.Fatalf("instances: %+v", snap.Instances)
	}
	// a bare engine has a KV manager, so capacity must be known and
	// headroom computable
	if snap.Instances[0].CapacityTokens <= 0 {
		t.Fatalf("capacity = %g, want > 0", snap.Instances[0].CapacityTokens)
	}
}

// TestObservationFromStats pins the DriverStats -> Observation mapping
// the loop and cluster both rely on.
func TestObservationFromStats(t *testing.T) {
	ds := DriverStats{
		ClockUs:                5e6,
		InstancesUp:            2,
		Completed:              7,
		Rejected:               1,
		ThroughputTokensPerSec: 123,
		GoodputTokensPerSec:    100,
		PerInstance: []InstanceStats{
			{Inst: 1, QueueDepth: 3, Running: 2, Swapped: 1,
				ResidentTokens: 400, SwappedTokens: 50, TokenCapacity: 1000,
				Preemptions: 2, SwapOutBytes: 8192, SwapInBytes: 4096,
				FreeKVPages: 10, UsedKVPages: 20, Health: "healthy"},
		},
	}
	obs := ObservationFromStats(ds)
	if obs.TimeUs != 5e6 || obs.InstancesUp != 2 || obs.Completed != 7 || obs.Rejected != 1 {
		t.Fatalf("fleet fields: %+v", obs)
	}
	if len(obs.PerInstance) != 1 {
		t.Fatalf("per-instance: %+v", obs.PerInstance)
	}
	io := obs.PerInstance[0]
	if io.Inst != 1 || io.QueueDepth != 3 || io.Running != 2 || io.Swapped != 1 {
		t.Fatalf("occupancy: %+v", io)
	}
	if io.MemoryTokens != 1000 || io.ComputeTokens != 0 {
		t.Fatalf("capacity axes: %+v", io)
	}
	if io.Capacity() != 1000 {
		t.Fatalf("Capacity() = %g", io.Capacity())
	}
	// host bytes = net swap traffic still parked on the host
	if io.HostBytes != 8192-4096 {
		t.Fatalf("HostBytes = %d", io.HostBytes)
	}
	if io.ResidentTokens != 400 || io.SwappedTokens != 50 {
		t.Fatalf("token occupancy: %+v", io)
	}
}
