// Package serving implements the DiffKV serving engine of paper §6.1 as a
// discrete-event simulator: a continuous-batching scheduler admits as many
// requests as KV memory allows, each inference step's latency is composed
// from the gpusim cost model (scheduler, memory management, KV compressor,
// model execution — the Fig. 14 breakdown), and DiffKV runs its real
// counts-mode page manager so compaction work is actually performed, not
// assumed.
//
// The engine is incrementally steppable: Submit queues requests, Step runs
// one batched prompt or generation step and returns the requests it
// completed, and NextTime exposes the clock at which the next step would
// execute. Run wraps Submit+Drain for single-instance use; the cluster
// package interleaves Step calls across many engines behind a router.
package serving

import (
	"fmt"
	"math"
	"sort"

	"diffkv/internal/baselines"
	"diffkv/internal/gpusim"
	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/offload"
	"diffkv/internal/quant"
	"diffkv/internal/synth"
	"diffkv/internal/trace"
	"diffkv/internal/workload"
)

// Config parameterizes one serving run.
type Config struct {
	Model   *synth.ModelConfig
	Cluster *gpusim.Cluster
	// Traits selects the compression method's serving behaviour.
	Traits baselines.ServingTraits
	// UseManager runs the real counts-mode kvcache.Manager (DiffKV);
	// otherwise capacity is tracked analytically (baselines).
	UseManager bool
	// OnCPUMemMgr switches the DiffKV manager's timing to the on-CPU
	// multithreaded comparator (Fig. 13).
	OnCPUMemMgr bool
	// HiFrac / LoFrac are the mean per-head tier fractions for the
	// workload (measured by the core engine); per-head values jitter
	// around them. Only used with UseManager.
	HiFrac, LoFrac float64
	// PageBytes for the manager (default 65536 at serving scale).
	PageBytes int
	// HiPrec / LoPrec override the manager's storage tiers (defaults
	// K8V4 / K4V2, the paper's configuration; only with UseManager).
	HiPrec, LoPrec quant.Precision
	// MaxGenLen truncates generations (the paper's per-model generation
	// limits: 16K for QwQ-32B, 8K for Qwen2.5-32B, 4K otherwise).
	MaxGenLen int
	// MemoryReserve is the fraction of post-weights device memory held
	// back for activations (default 0.1).
	MemoryReserve float64
	// PrefixCacheGroups enables cross-request prefix-cache modeling: the
	// engine keeps the KV of up to this many distinct prefix groups
	// resident (LRU), and admitting a request whose PrefixGroup is cached
	// skips recomputing those prompt tokens (shorter prompt step, less
	// compressor work). Memory sharing of the cached prefix is not
	// modeled — only the compute saving. 0 disables.
	PrefixCacheGroups int
	// PreemptPolicy selects the victim/recovery policy applied when a
	// step runs out of KV pages: "recompute" (restart from scratch, the
	// default), "swap" (offload the victim's pages to the host tier over
	// PCIe and resume where it stopped), or "compress-swap" (re-quantize
	// the victim entirely into the low-precision tier, then swap the
	// smaller payload). Swap policies require UseManager and
	// HostMemoryBytes > 0.
	PreemptPolicy string
	// HostMemoryBytes sizes the host-memory offload tier (0 disables it;
	// requires UseManager). With PrefixCacheGroups enabled, prefix groups
	// evicted from the GPU prefix cache spill to the host tier instead of
	// vanishing, and admissions consult it on a GPU miss.
	HostMemoryBytes int64
	// XferFault, when non-nil, is consulted once per host<->device KV
	// transfer (swap-out, swap-in, host-prefix promotion); returning
	// true fails that transfer: a faulted swap-out falls back to
	// recompute recovery, a faulted swap-in or promotion stays put and
	// retries on a later scheduler pass. Wired by the fault-injection
	// layer (internal/faults) to a seeded draw so runs stay
	// reproducible.
	XferFault func() bool
	// BrownoutQueueDepth enables graceful degradation under pressure:
	// when the pending queue is at least this deep at admission, the
	// request enters at the all-low compression tier (its high-precision
	// budget shifted into the low tier), trading fidelity for memory
	// headroom so the queue drains faster. 0 disables. Manager mode
	// only — traits-mode capacity is analytic and unaffected.
	BrownoutQueueDepth int
	// Tracer receives admission/preemption/completion/step events when
	// non-nil (see the trace package).
	Tracer trace.Tracer
	Seed   uint64
}

func (c *Config) validate() error {
	if c.Model == nil || c.Cluster == nil {
		return fmt.Errorf("serving: Model and Cluster are required")
	}
	if c.Traits.Name == "" {
		return fmt.Errorf("serving: Traits are required")
	}
	if c.PageBytes <= 0 {
		c.PageBytes = 65536
	}
	if c.MaxGenLen <= 0 {
		c.MaxGenLen = 4096
	}
	if c.MemoryReserve <= 0 {
		c.MemoryReserve = 0.1
	}
	if c.HiFrac <= 0 {
		c.HiFrac = 0.25
	}
	if c.LoFrac < 0 {
		c.LoFrac = 0.25
	}
	if c.HostMemoryBytes > 0 && !c.UseManager {
		return fmt.Errorf("serving: host offload tier requires UseManager")
	}
	return nil
}

// StepBreakdown accumulates per-component time (Fig. 14, extended with the
// offload tier's PCIe stalls).
type StepBreakdown struct {
	Scheduler  gpusim.Micros
	MemMgmt    gpusim.Micros
	Compressor gpusim.Micros
	ModelExec  gpusim.Micros
	// Offload is host-device transfer time not hidden behind compute:
	// D2H stalls of swap-outs and H2D stalls of swap-ins / host prefix
	// promotions (0 when the host tier is disabled).
	Offload gpusim.Micros
}

// Total returns the summed step time.
func (s StepBreakdown) Total() gpusim.Micros {
	return s.Scheduler + s.MemMgmt + s.Compressor + s.ModelExec + s.Offload
}

// Result summarizes one serving run.
type Result struct {
	// Throughput is generated tokens per simulated second.
	Throughput float64
	// AvgBatch is the time-weighted mean number of running requests.
	AvgBatch float64
	// AvgPerTokenLatency is mean (completion-arrival)/genLen in seconds
	// per token (queueing included) — the Fig. 16 metric.
	AvgPerTokenLatency float64
	// Completed requests.
	Completed int
	// ElapsedSeconds of simulated time.
	ElapsedSeconds float64
	// Prompt / Gen accumulate the per-phase component breakdowns.
	Prompt, Gen StepBreakdown
	// PromptSteps / GenSteps count executed steps per phase.
	PromptSteps, GenSteps int
	// GoodputTokensPerSec counts only completed requests' generated
	// tokens per simulated second: work a recompute preemption throws
	// away and regenerates is excluded, unlike Throughput.
	GoodputTokensPerSec float64
	// Preemptions counts preemption events across the run (recompute and
	// swap recoveries alike).
	Preemptions int
	// OffloadTransferSeconds is total PCIe transfer time of swap and
	// prefix-promotion traffic before overlap; OffloadStallSeconds is the
	// portion not hidden behind compute (the Offload component summed
	// over both phases — 0 when transfers fully overlap).
	OffloadTransferSeconds float64
	OffloadStallSeconds    float64
	// Offload snapshots the host-tier counters (zero-valued when the
	// tier is disabled).
	Offload offload.Metrics
}

// Completion records one finished request with its latency-defining
// timestamps: TTFT is FirstTokenUs-Req.ArrivalUs, TPOT is
// (DoneUs-FirstTokenUs)/Req.GenLen.
type Completion struct {
	Req workload.Request
	// FirstTokenUs is the clock when the prompt phase finished (the first
	// output token). After a recompute preemption it reflects the retry.
	FirstTokenUs float64
	// DoneUs is the clock at completion.
	DoneUs float64
	// CachedPrefixTokens counts prompt tokens served from the prefix
	// cache (0 unless PrefixCacheGroups is enabled and the group was hot).
	CachedPrefixTokens int
	// Preemptions is how many times this request was preempted before
	// completing (recompute and swap recoveries alike).
	Preemptions int
	// RetryUs records the clock of each recovery re-admission — a
	// recompute re-admission or a swap-in — so TTFT/TPOT under preemption
	// are honestly attributable (nil when never preempted).
	RetryUs []float64
	// Phases attributes the request's end-to-end latency
	// (DoneUs - Req.ArrivalUs) across lifecycle phases — queue, prefill,
	// decode, and the preemption phases stall/swapped. The buckets are
	// maintained at every scheduler transition, so they sum to the
	// end-to-end latency exactly.
	Phases trace.PhaseBreakdown
	// Attempts is how many instances dispatched this request: 1 when it
	// completed where it first landed, more after crash re-dispatches.
	// ArrivalUs is preserved across re-dispatches, so TTFT/E2E honestly
	// include the time lost to dead instances.
	Attempts int
	// Inst is the 1-based fleet instance that completed the request in
	// cluster runs (the cluster stamps it when collecting completions);
	// 0 from a bare engine.
	Inst int
}

type seqState struct {
	req        workload.Request
	promptDone bool
	generated  int
	hiF, loF   []float64 // per-head tier fractions (manager mode)
	winFill    int
	cached     int     // prompt tokens served from the prefix cache
	firstTokUs float64 // clock when the prompt phase completed
	swapBytes  int64   // D2H bytes of the latest swap-out (trace payload)
	brownout   bool    // admitted at the all-low tier (graceful degradation)
	adoptedGen int     // tokens generated elsewhere before a disagg adoption
}

// prefixEntry tracks one resident shared-prefix group.
type prefixEntry struct {
	tokens  int
	lastUse gpusim.Micros
}

// An engine is drivable by a Loop (the always-on driver that owns the
// Step cadence; see loop.go).
var _ Driver = (*Engine)(nil)

// Engine is the serving simulator.
type Engine struct {
	cfg     Config
	dev     *gpusim.Device
	mgr     offload.KVStore      // nil in traits mode
	tiered  *offload.TieredStore // non-nil when the host tier is enabled
	rpolicy offload.RecoveryPolicy
	headsN  int
	rng     *mathx.RNG
	kvToken float64 // resident KV bytes per cached token (traits mode)
	capTok  int     // token capacity (traits mode)
	capHiPg int     // tokens per high-precision page (manager mode)

	// incremental run state (Submit / Step / Drain)
	pending      []workload.Request
	running      []*seqState
	swappedQ     []*seqState // swapped-out sequences awaiting swap-in
	clock        gpusim.Micros
	admitBlocked bool
	steps        int
	genTokens    int64
	doneTokens   int64 // generated tokens of completed requests only
	preemptTotal int
	batchTimeUs  float64
	latencySum   float64
	busyUs       gpusim.Micros
	agg          Result
	prefix       map[int]*prefixEntry
	pendingXfer  gpusim.Micros // H2D prefetch charged to the next step
	xferUs       gpusim.Micros // total PCIe transfer time, pre-overlap
	preemptN     map[int]int
	retryUs      map[int][]float64
	attempts     map[int]int       // dispatch count of re-dispatched requests
	phase        map[int]*phaseAcc // per in-flight request lifecycle phase

	// fault-tolerance state (faulttol.go)
	slowFactor  float64 // step-time multiplier while degraded (<=1 = none)
	brownoutN   int     // admissions made at the all-low tier
	lostKVBytes int64   // GPU KV bytes lost to crashes
	// readmitted marks crash orphans awaiting their first admission
	// here: they carry pre-crash preemption counts, but that admission
	// is a re-dispatch (already in RetryUs), not a preemption retry
	readmitted map[int]bool

	// disaggregated handoff state (handoff.go): exportOn marks prefill
	// children whose completion must retain the sequence's KV shape,
	// exports holds captured KVExports awaiting cluster pickup, adopts
	// holds shipped sequences awaiting decode-side admission, and
	// pendingNIC is the landed transfers' ingest DMA charged to the next
	// step overlapped against its compute
	exportOn   map[int]bool
	exports    map[int]*KVExport
	adopts     map[int]*KVExport
	pendingNIC gpusim.Micros

	// session state (Open / DrainContext): per-request handles with token
	// callbacks and cancellation (see session.go)
	sessions       map[int]*Session
	cancelledN     int
	autoID         int
	inStep         bool // a scheduler iteration is executing
	deferredCancel bool // Cancel() arrived mid-step; reap when it ends

	// step scratch: buffers reused across Step calls so the scheduler's
	// steady state allocates nothing (an Engine is single-goroutine)
	promptBuf  []*seqState
	genBuf     []*seqState
	headDemand []kvcache.HeadDemand
	genIDs     []int
	genDemands [][]kvcache.GenDemand
	genFlat    []kvcache.GenDemand
	victimBuf  []offload.Victim
}

// NewEngine builds a serving engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, dev: cfg.Cluster.Device, rng: mathx.NewRNG(cfg.Seed + 99)}
	if cfg.PrefixCacheGroups > 0 {
		e.prefix = make(map[int]*prefixEntry)
	}
	rpolicy, err := offload.PolicyFor(cfg.PreemptPolicy)
	if err != nil {
		return nil, err
	}
	// the requirement is a property of the resolved policy's recovery
	// action, not of its name, so registered third-party recompute-style
	// policies work without a host tier
	if rpolicy.Recovery() != offload.RecoverRecompute &&
		(cfg.HostMemoryBytes <= 0 || !cfg.UseManager) {
		return nil, fmt.Errorf("serving: preempt policy %q requires UseManager and HostMemoryBytes > 0",
			cfg.PreemptPolicy)
	}
	e.rpolicy = rpolicy
	e.headsN = cfg.Model.Layers * cfg.Model.KVHeads

	weights := cfg.Model.ParamsB * 2e9
	budget := float64(cfg.Cluster.TotalMemory()) - weights
	if budget <= 0 {
		return nil, fmt.Errorf("serving: %s does not fit on %d GPUs", cfg.Model.Name, cfg.Cluster.GPUs)
	}
	budget *= 1 - cfg.MemoryReserve

	if cfg.UseManager {
		numPages := int(budget) / cfg.PageBytes
		if numPages < 16 {
			return nil, fmt.Errorf("serving: KV budget too small (%d pages)", numPages)
		}
		mgr, err := kvcache.NewManager(kvcache.Config{
			Dim:       cfg.Model.HeadDim,
			PageBytes: cfg.PageBytes,
			NumPages:  numPages,
			HiPrec:    cfg.HiPrec,
			LoPrec:    cfg.LoPrec,
			MaxSeqLen: cfg.Model.MaxSeqLen,
		})
		if err != nil {
			return nil, err
		}
		if cfg.HostMemoryBytes > 0 {
			ts, err := offload.NewTieredStore(mgr, offload.Config{HostBytes: cfg.HostMemoryBytes})
			if err != nil {
				return nil, err
			}
			e.tiered = ts
			e.mgr = ts
		} else {
			e.mgr = mgr
		}
		e.capHiPg = mgr.TokensPerHiPage()
	} else {
		e.kvToken = float64(cfg.Model.KVBytesPerTokenFP16()) * cfg.Traits.ResidentMemFrac
		e.capTok = int(budget / e.kvToken)
	}
	return e, nil
}

// TokenCapacity reports how many cached tokens fit (traits mode) or an
// estimate from pages (manager mode).
func (e *Engine) TokenCapacity() int {
	if e.mgr != nil {
		// rough: all pages at the blended tier mix
		perTok := e.blendedTokenBytes()
		return int(float64(e.mgr.FreePages()*e.cfg.PageBytes) / (perTok * float64(e.headsN)))
	}
	return e.capTok
}

// TotalTokenCapacity reports the engine's whole-pool token capacity —
// free plus used pages at the blended tier mix in manager mode, the
// fixed traits-mode budget otherwise. This is the memory axis of the
// saturation analyzer's capacity = min(memory, compute); the engine has
// no independent compute-token bound (admission is memory-gated via
// fitsTokens), so memory capacity is the binding axis.
func (e *Engine) TotalTokenCapacity() float64 {
	if e.mgr != nil {
		return float64((e.mgr.FreePages()+e.mgr.UsedPages())*e.cfg.PageBytes) /
			(e.blendedTokenBytes() * float64(e.headsN))
	}
	return float64(e.capTok)
}

func (e *Engine) blendedTokenBytes() float64 {
	cfg := e.mgr.Config()
	dim := cfg.Dim
	h, l := e.cfg.HiFrac, e.cfg.LoFrac
	return h*float64(cfg.HiPrec.TokenBytes(dim)) + l*float64(cfg.LoPrec.TokenBytes(dim))
}

// emit sends a trace event when a tracer is configured.
func (e *Engine) emit(ev trace.Event) {
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Emit(ev)
	}
}

// maxTotalSteps bounds a drain loop against runaway simulations.
const maxTotalSteps = 20_000_000

// phaseAcc tracks one in-flight request's current lifecycle phase so its
// end-to-end latency is attributed exactly (Completion.Phases): every
// scheduler transition folds the elapsed interval into the bucket of the
// phase being left.
type phaseAcc struct {
	cur     trace.Phase
	sinceUs float64
	bd      trace.PhaseBreakdown
}

// phaseStart opens a request's phase accounting at arrival (queueing).
func (e *Engine) phaseStart(id int, arrivalUs float64) {
	if e.phase == nil {
		e.phase = make(map[int]*phaseAcc)
	}
	e.phase[id] = &phaseAcc{cur: trace.PhaseQueue, sinceUs: arrivalUs}
}

// phaseTo folds the elapsed interval into the current phase's bucket and
// enters ph at the engine clock.
func (e *Engine) phaseTo(id int, ph trace.Phase) {
	pa := e.phase[id]
	if pa == nil {
		return
	}
	now := float64(e.clock)
	pa.bd.Add(pa.cur, now-pa.sinceUs)
	pa.cur, pa.sinceUs = ph, now
}

// phaseClose finalizes a request's breakdown at the engine clock and
// frees its accounting entry.
func (e *Engine) phaseClose(id int) trace.PhaseBreakdown {
	pa := e.phase[id]
	if pa == nil {
		return trace.PhaseBreakdown{}
	}
	pa.bd.Add(pa.cur, float64(e.clock)-pa.sinceUs)
	delete(e.phase, id)
	return pa.bd
}

// Submit queues a request for admission at its arrival time. The pending
// queue is kept sorted by arrival so Step admits in time order. Submit
// is the accept point of a request's lifecycle: its phase accounting
// opens here (queueing from arrival) and the open trace event is
// emitted.
func (e *Engine) Submit(r workload.Request) {
	i := sort.Search(len(e.pending), func(i int) bool {
		return e.pending[i].ArrivalUs > r.ArrivalUs
	})
	e.pending = append(e.pending, workload.Request{})
	copy(e.pending[i+1:], e.pending[i:])
	e.pending[i] = r
	e.phaseStart(r.ID, r.ArrivalUs)
	e.emit(trace.Event{Kind: trace.KindOpen, TimeUs: r.ArrivalUs, Seq: r.ID})
}

// HasWork reports whether any requests are queued, in flight or swapped
// out to the host tier.
func (e *Engine) HasWork() bool {
	return len(e.running) > 0 || len(e.pending) > 0 || len(e.swappedQ) > 0
}

// NextTime returns the simulated time at which the next Step would begin,
// and false when the engine has no work.
func (e *Engine) NextTime() (gpusim.Micros, bool) {
	if len(e.running) > 0 || len(e.swappedQ) > 0 {
		return e.clock, true
	}
	if len(e.pending) > 0 {
		t := e.clock
		if a := gpusim.Micros(e.pending[0].ArrivalUs); a > t {
			t = a
		}
		return t, true
	}
	return 0, false
}

// Clock returns the engine's simulated clock in microseconds.
func (e *Engine) Clock() gpusim.Micros { return e.clock }

// Device returns the engine's GPU device model (for cross-instance cost
// models — the cluster prices NIC transfers with the receiver's device).
func (e *Engine) Device() *gpusim.Device { return e.dev }

// QueueDepth returns how many submitted requests await admission.
func (e *Engine) QueueDepth() int { return len(e.pending) }

// RunningCount returns the number of admitted, in-flight requests.
func (e *Engine) RunningCount() int { return len(e.running) }

// ResidentTokens sums the cached KV tokens of all running sequences — the
// load signal a least-loaded router balances on.
func (e *Engine) ResidentTokens() int {
	var n int
	for _, st := range e.running {
		n += st.req.PromptLen + st.generated
	}
	return n
}

// BusyTime returns the cumulative simulated time spent executing steps
// (the engine is idle for the remainder of its clock).
func (e *Engine) BusyTime() gpusim.Micros { return e.busyUs }

// SwappedCount returns the number of sequences currently swapped out to
// the host tier.
func (e *Engine) SwappedCount() int { return len(e.swappedQ) }

// SwappedTokens sums the KV tokens of swapped-out sequences — load that
// is latent rather than GPU-resident, which offload-aware routing weighs
// separately from ResidentTokens.
func (e *Engine) SwappedTokens() int {
	var n int
	for _, st := range e.swappedQ {
		n += st.req.PromptLen + st.generated
	}
	return n
}

// notePreempt records a preemption event for request id.
func (e *Engine) notePreempt(id int) {
	if e.preemptN == nil {
		e.preemptN = make(map[int]int)
	}
	e.preemptN[id]++
	e.preemptTotal++
}

// noteRetry records a recovery re-admission timestamp for request id.
func (e *Engine) noteRetry(id int) {
	if e.retryUs == nil {
		e.retryUs = make(map[int][]float64)
	}
	e.retryUs[id] = append(e.retryUs[id], float64(e.clock))
}

// CachedPrefixTokens reports how many tokens of the given prefix group are
// resident in the prefix cache (0 when disabled or evicted).
func (e *Engine) CachedPrefixTokens(group int) int {
	if ent, ok := e.prefix[group]; ok {
		return ent.tokens
	}
	return 0
}

// admit moves due work into the running batch while capacity allows.
// Swapped-out sequences resume first (swap-in preserves their progress and
// they hold pinned host memory), then due pending requests are admitted.
// After a preemption the capacity heuristic has proven optimistic, so
// admissions hold until a completion frees real pages (admitBlocked) —
// except onto an empty engine, where progress must be guaranteed.
func (e *Engine) admit() error {
	// Swapped sequences get the first shot at freed pages (they resume
	// with their progress intact), but a swapped sequence that does not
	// fit yet must not convoy smaller fresh admissions behind it — the
	// pending loop below still runs.
	for len(e.swappedQ) > 0 {
		if e.admitBlocked && len(e.running) > 0 {
			break
		}
		st := e.swappedQ[0]
		needed := float64(st.req.PromptLen + st.generated + (st.req.GenLen-st.generated)/2)
		if len(e.running) > 0 && !e.fitsTokens(needed) {
			break
		}
		if e.xferFault() {
			break // H2D transfer faulted; the sequence retries next pass
		}
		res, err := e.tiered.SwapIn(st.req.ID, float64(e.clock))
		if err != nil {
			break // GPU pages not yet available; retry after a completion
		}
		e.swappedQ = e.swappedQ[1:]
		// H2D prefetch: the transfer stall is charged to the next step,
		// overlapped against its compute
		xfer := e.dev.PCIeTransfer(float64(res.Bytes))
		e.pendingXfer += xfer
		e.xferUs += xfer
		e.running = append(e.running, st)
		e.noteRetry(st.req.ID)
		e.phaseTo(st.req.ID, trace.PhaseDecode)
		e.emit(trace.Event{Kind: trace.KindSwapIn, TimeUs: float64(e.clock), Seq: st.req.ID,
			Bytes: res.Bytes, DurUs: float64(xfer)})
	}
	for len(e.pending) > 0 && float64(e.clock) >= e.pending[0].ArrivalUs {
		r := e.pending[0]
		if e.admitBlocked && len(e.running) > 0 {
			break
		}
		// shipped prefilled sequences adopt their exported page shape
		// instead of re-running the prompt (disaggregated handoff)
		if exp, ok := e.adopts[r.ID]; ok {
			admitted, err := e.admitAdopted(r, exp)
			if err != nil {
				return err
			}
			if !admitted {
				break // pages not yet available; retry after a completion
			}
			continue
		}
		if len(e.running) > 0 && !e.hasCapacityFor(r) {
			break
		}
		st := &seqState{req: r}
		if st.req.GenLen > e.cfg.MaxGenLen {
			st.req.GenLen = e.cfg.MaxGenLen
		}
		// brownout: with the queue this deep (the popped request
		// included), admit at the all-low tier for memory headroom
		st.brownout = e.cfg.BrownoutQueueDepth > 0 && len(e.pending) >= e.cfg.BrownoutQueueDepth
		if e.prefix != nil && r.PrefixGroup != 0 {
			ent, ok := e.prefix[r.PrefixGroup]
			if !ok && e.tiered != nil && e.tiered.HostPrefixTokens(r.PrefixGroup) > 0 && e.xferFault() {
				// H2D promotion faulted: treat as a miss; the spilled entry
				// stays in the host tier for the group's next request
			} else if !ok && e.tiered != nil {
				// GPU prefix miss: consult the host tier and promote a
				// spilled entry back, paying H2D for its compressed bytes
				if tok, bytes, hok := e.tiered.TakePrefix(r.PrefixGroup, float64(e.clock)); hok {
					ent = e.insertPrefix(r.PrefixGroup)
					ent.tokens = tok
					xfer := e.dev.PCIeTransfer(float64(bytes))
					e.pendingXfer += xfer
					e.xferUs += xfer
					e.emit(trace.Event{Kind: trace.KindHostPrefixHit, TimeUs: float64(e.clock), Seq: r.ID,
						Bytes: bytes, DurUs: float64(xfer)})
					ok = true
				}
			}
			if ok {
				c := ent.tokens
				if c > r.PrefixLen {
					c = r.PrefixLen
				}
				// at least a tail of the prompt is always recomputed
				if lim := st.req.PromptLen - 16; c > lim {
					c = lim
				}
				if c > 0 {
					st.cached = c
				}
				ent.lastUse = e.clock
			}
		}
		if e.mgr != nil {
			if err := e.registerSeq(st); err != nil {
				return err
			}
		}
		e.running = append(e.running, st)
		e.pending = e.pending[1:]
		if e.readmitted[r.ID] {
			delete(e.readmitted, r.ID)
		} else if e.preemptN[r.ID] > 0 {
			e.noteRetry(r.ID)
		}
		e.phaseTo(r.ID, trace.PhasePrefill)
		ev := trace.Event{Kind: trace.KindAdmit, TimeUs: float64(e.clock), Seq: st.req.ID}
		if st.brownout {
			e.brownoutN++
			ev.Note = "brownout"
		}
		e.emit(ev)
	}
	return nil
}

// touchPrefix records a completed prompt's shared prefix as resident,
// evicting the least-recently-used group beyond capacity.
func (e *Engine) touchPrefix(st *seqState) {
	if e.prefix == nil || st.req.PrefixGroup == 0 {
		return
	}
	n := st.req.PrefixLen
	if n > st.req.PromptLen {
		n = st.req.PromptLen
	}
	ent := e.prefix[st.req.PrefixGroup]
	if ent == nil {
		ent = e.insertPrefix(st.req.PrefixGroup)
	}
	if n > ent.tokens {
		ent.tokens = n
	}
	ent.lastUse = e.clock
}

// insertPrefix adds a GPU prefix-cache entry for group, evicting the
// least-recently-used groups beyond capacity (ties broken by lowest group
// ID for determinism). When the host tier is enabled, evicted entries
// spill there with their compressed byte footprint instead of vanishing.
func (e *Engine) insertPrefix(group int) *prefixEntry {
	ent := &prefixEntry{}
	e.prefix[group] = ent
	for len(e.prefix) > e.cfg.PrefixCacheGroups {
		victim, victimT := -1, gpusim.Micros(math.MaxInt64)
		//diffkv:allow maprange -- min-scan with total-order tie-break (lastUse, then lowest group): same victim whatever the walk order
		for g, en := range e.prefix {
			if g == group {
				continue
			}
			if en.lastUse < victimT || (en.lastUse == victimT && (victim == -1 || g < victim)) {
				victim, victimT = g, en.lastUse
			}
		}
		if victim < 0 {
			break
		}
		if e.tiered != nil {
			vic := e.prefix[victim]
			bytes := int64(float64(vic.tokens) * e.blendedTokenBytes() * float64(e.headsN))
			e.tiered.SpillPrefix(victim, vic.tokens, bytes, float64(e.clock))
		}
		delete(e.prefix, victim)
	}
	return ent
}

// Step executes one scheduler iteration: reap cancelled sessions,
// idle-advance the clock to the next arrival if nothing is running, admit
// due requests, run one batched prompt or generation step (prompts
// prioritized, vLLM-style), requeue any preempted sequences, and return
// the requests completed by this step. Calling Step with no due work is a
// no-op returning (nil, nil).
func (e *Engine) Step() ([]Completion, error) {
	e.ReapSessions()
	e.inStep = true
	done, err := e.step()
	e.inStep = false
	if e.deferredCancel {
		// a token callback cancelled a session mid-step; free its state
		// now that the running set is no longer under iteration
		e.ReapSessions()
	}
	return done, err
}

// step is the scheduler iteration body (sessions already reaped).
func (e *Engine) step() ([]Completion, error) {
	e.steps++
	if len(e.running) == 0 && len(e.swappedQ) == 0 {
		if len(e.pending) == 0 {
			return nil, nil
		}
		// idle until next arrival
		if float64(e.clock) < e.pending[0].ArrivalUs {
			e.clock = gpusim.Micros(e.pending[0].ArrivalUs)
		}
	}
	if err := e.admit(); err != nil {
		return nil, err
	}
	if len(e.running) == 0 {
		return nil, nil
	}

	// split phase: prompts first (vLLM-style prioritized prompt steps);
	// the phase slices reuse step-scratch backing arrays
	promptSeqs, genSeqs := e.promptBuf[:0], e.genBuf[:0]
	for _, st := range e.running {
		if !st.promptDone {
			promptSeqs = append(promptSeqs, st)
		} else {
			genSeqs = append(genSeqs, st)
		}
	}
	e.promptBuf, e.genBuf = promptSeqs, genSeqs

	var bd StepBreakdown
	var preempted, swapped []*seqState
	var err error
	isPrompt := len(promptSeqs) > 0
	if isPrompt {
		bd, preempted, err = e.promptStep(promptSeqs)
	} else {
		bd, preempted, swapped, err = e.genStep(genSeqs)
	}
	if err != nil {
		// even on a fatal step error the victims already processed must be
		// booked (released victims requeued, swapped victims queued for
		// swap-in) so a caller that keeps the engine alive sees consistent
		// state: nothing both host-resident and running, no pinned host
		// bytes without a swappedQ entry
		e.recordPreemptions(preempted, swapped)
		return nil, err
	}
	// H2D prefetch stall from swap-ins and host prefix promotions admitted
	// before this step, overlapped against its compute
	if e.pendingXfer > 0 {
		bd.Offload += e.dev.TransferStall(e.pendingXfer, bd.ModelExec+bd.Compressor)
		e.pendingXfer = 0
	}
	// NIC ingest stall from disagg adoptions admitted before this step
	if e.pendingNIC > 0 {
		bd.Offload += e.dev.NICStall(e.pendingNIC, bd.ModelExec+bd.Compressor)
		e.pendingNIC = 0
	}
	if isPrompt {
		e.agg.Prompt.Scheduler += bd.Scheduler
		e.agg.Prompt.MemMgmt += bd.MemMgmt
		e.agg.Prompt.Compressor += bd.Compressor
		e.agg.Prompt.ModelExec += bd.ModelExec
		e.agg.Prompt.Offload += bd.Offload
		e.agg.PromptSteps++
	} else {
		e.agg.Gen.Scheduler += bd.Scheduler
		e.agg.Gen.MemMgmt += bd.MemMgmt
		e.agg.Gen.Compressor += bd.Compressor
		e.agg.Gen.ModelExec += bd.ModelExec
		e.agg.Gen.Offload += bd.Offload
		e.agg.GenSteps++
		e.genTokens += int64(len(genSeqs) - len(preempted) - len(swapped))
	}
	e.recordPreemptions(preempted, swapped)
	stepTime := bd.Total()
	if e.slowFactor > 1 {
		// degraded window (fault injection): every step stretches by the
		// slowdown factor — straggler GPU, thermal throttle
		stepTime = gpusim.Micros(float64(stepTime) * e.slowFactor)
	}
	e.clock += stepTime
	e.busyUs += stepTime
	e.batchTimeUs += float64(len(e.running)) * float64(stepTime)
	stepKind := trace.KindGenStep
	if len(promptSeqs) > 0 {
		stepKind = trace.KindPromptStep
	}
	e.emit(trace.Event{Kind: stepKind, TimeUs: float64(e.clock),
		Batch: len(e.running), DurUs: float64(stepTime)})

	// first-token timestamps, prefix-cache residency and session progress
	// for prompts that finished in this step; then per-token session
	// updates for the generation batch
	for _, st := range promptSeqs {
		if st.promptDone && st.firstTokUs == 0 {
			st.firstTokUs = float64(e.clock)
			e.phaseTo(st.req.ID, trace.PhaseDecode)
			e.emit(trace.Event{Kind: trace.KindFirstToken, TimeUs: float64(e.clock), Seq: st.req.ID})
			e.touchPrefix(st)
			e.notifyFirstToken(st)
		}
	}
	e.notifyGenProgress(genSeqs)

	// release seqState references from the step scratch so completed
	// sequences are collectable once they leave e.running (the backing
	// arrays persist across Steps)
	clear(e.promptBuf)
	clear(e.genBuf)
	e.promptBuf = e.promptBuf[:0]
	e.genBuf = e.genBuf[:0]

	// completions
	var done []Completion
	var still []*seqState
	for _, st := range e.running {
		if st.promptDone && st.generated >= st.req.GenLen {
			e.latencySum += (float64(e.clock) - st.req.ArrivalUs) / 1e6 / float64(st.req.GenLen)
			e.agg.Completed++
			e.admitBlocked = false
			e.emit(trace.Event{Kind: trace.KindComplete, TimeUs: float64(e.clock), Seq: st.req.ID})
			// a handoff-marked prefill child retains its KV shape for the
			// cluster to ship (TakeExport) before the pages are released
			exported := e.exportOn[st.req.ID]
			if exported {
				if err := e.exportSeq(st); err != nil {
					return done, err
				}
			}
			if e.mgr != nil {
				if err := e.mgr.ReleaseSequence(st.req.ID); err != nil {
					return done, err
				}
			}
			e.doneTokens += int64(st.req.GenLen - st.adoptedGen)
			cp := Completion{
				Req:                st.req,
				FirstTokenUs:       st.firstTokUs,
				DoneUs:             float64(e.clock),
				CachedPrefixTokens: st.cached,
				Attempts:           1,
				Phases:             e.phaseClose(st.req.ID),
			}
			if n := e.attempts[st.req.ID]; n > 0 {
				cp.Attempts = n
				delete(e.attempts, st.req.ID)
			}
			if n := e.preemptN[st.req.ID]; n > 0 {
				cp.Preemptions = n
				delete(e.preemptN, st.req.ID)
			}
			// retry timestamps flow from preemption recoveries and from
			// crash re-dispatches alike
			if rs := e.retryUs[st.req.ID]; len(rs) > 0 {
				cp.RetryUs = rs
				delete(e.retryUs, st.req.ID)
			}
			if s, ok := e.sessions[st.req.ID]; ok {
				delete(e.sessions, st.req.ID)
				if exported {
					// the session survives the handoff: it detaches here
					// and rebinds to the decode engine at SubmitPrefilled
					e.exports[st.req.ID].Sess = s
				} else {
					s.generated = st.req.GenLen
					s.finish(cp, nil)
				}
			}
			done = append(done, cp)
			continue
		}
		still = append(still, st)
	}
	e.running = still
	return done, nil
}

// recordPreemptions books this step's victims: recompute victims go back
// to pending (restart from scratch), swap victims join the swapped queue
// (resume via swap-in), both leave the running set, and admissions hold
// until a completion frees real pages.
func (e *Engine) recordPreemptions(preempted, swapped []*seqState) {
	if len(preempted)+len(swapped) == 0 {
		return
	}
	drop := make(map[*seqState]bool, len(preempted)+len(swapped))
	var requeued []workload.Request
	for _, st := range preempted {
		drop[st] = true
		requeued = append(requeued, st.req)
		e.notePreempt(st.req.ID)
		e.phaseTo(st.req.ID, trace.PhaseStall)
		e.emit(trace.Event{Kind: trace.KindPreempt, TimeUs: float64(e.clock), Seq: st.req.ID})
	}
	for _, st := range swapped {
		drop[st] = true
		e.swappedQ = append(e.swappedQ, st)
		e.notePreempt(st.req.ID)
		e.phaseTo(st.req.ID, trace.PhaseSwapped)
		e.emit(trace.Event{Kind: trace.KindSwapOut, TimeUs: float64(e.clock), Seq: st.req.ID,
			Bytes: st.swapBytes, DurUs: float64(e.dev.PCIeTransfer(float64(st.swapBytes)))})
	}
	var kept []*seqState
	for _, st := range e.running {
		if !drop[st] {
			kept = append(kept, st)
		}
	}
	e.running = kept
	e.pending = append(requeued, e.pending...)
	e.admitBlocked = true
}

// Drain steps the engine until all submitted work completes (or the step
// bound is hit, matching the historical Run guard).
//
// Deprecated: Drain is the caller-owned, single-threaded driving shim.
// Online servers should run the engine under a Loop, whose Shutdown is
// the graceful-drain entry point; Drain remains for batch harnesses
// (experiments, Run).
func (e *Engine) Drain() error {
	for e.HasWork() && e.steps < maxTotalSteps {
		if _, err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Result snapshots the aggregate metrics accumulated so far. It does not
// mutate engine state, so it may be called mid-run.
func (e *Engine) Result() Result {
	res := e.agg
	res.ElapsedSeconds = e.clock.Seconds()
	if res.ElapsedSeconds > 0 {
		res.Throughput = float64(e.genTokens) / res.ElapsedSeconds
		res.GoodputTokensPerSec = float64(e.doneTokens) / res.ElapsedSeconds
		res.AvgBatch = e.batchTimeUs / float64(e.clock)
	}
	if res.Completed > 0 {
		res.AvgPerTokenLatency = e.latencySum / float64(res.Completed)
	}
	res.Preemptions = e.preemptTotal
	res.OffloadTransferSeconds = e.xferUs.Seconds()
	res.OffloadStallSeconds = (res.Prompt.Offload + res.Gen.Offload).Seconds()
	if e.tiered != nil {
		res.Offload = e.tiered.Metrics()
	}
	return res
}

// Run processes the request list to completion (or admission starvation)
// and returns aggregate metrics. It is a convenience wrapper over
// Submit/Drain/Result; an engine is meant to serve one run.
func (e *Engine) Run(reqs []workload.Request) (Result, error) {
	for _, r := range reqs {
		e.Submit(r)
	}
	if err := e.Drain(); err != nil {
		return e.Result(), err
	}
	return e.Result(), nil
}

// hasCapacityFor conservatively checks that admitting r keeps usage under
// the high watermark (85%), accounting for the tokens running sequences
// will still generate. Manager mode adds a page-granular prompt check:
// PromptCompact's conservative allocation (every head at ceil(prompt/
// capHi) pages) must fit the free pool alongside the other not-yet-run
// prompts, or the admission would only bounce off a prompt preemption —
// queueing the request is strictly better than admitting and restarting
// it.
func (e *Engine) hasCapacityFor(r workload.Request) bool {
	if !e.fitsTokens(float64(r.PromptLen + r.GenLen/2)) {
		return false
	}
	if e.mgr == nil {
		return true
	}
	reserved := e.promptPages(r.PromptLen)
	for _, st := range e.running {
		if !st.promptDone {
			reserved += e.promptPages(st.req.PromptLen)
		}
	}
	return reserved <= e.mgr.FreePages()*9/10
}

// promptPages is the conservative page demand of one prompt admission.
func (e *Engine) promptPages(promptLen int) int {
	return (promptLen + e.capHiPg - 1) / e.capHiPg * e.headsN
}

// fitsTokens checks whether needed more tokens keep usage under the high
// watermark given the running set's projected demand.
func (e *Engine) fitsTokens(needed float64) bool {
	var current float64
	for _, st := range e.running {
		current += float64(st.req.PromptLen + st.generated + (st.req.GenLen-st.generated)/2)
	}
	var capTok float64
	if e.mgr != nil {
		// manager mode: translate pages to blended-token capacity
		capTok = float64(e.mgr.FreePages()+e.mgr.UsedPages()) * float64(e.cfg.PageBytes) /
			(e.blendedTokenBytes() * float64(e.headsN))
	} else {
		capTok = float64(e.capTok)
	}
	return (current + needed) <= 0.85*capTok
}

// registerSeq sets up per-head tier fractions and registers the sequence
// with the manager.
func (e *Engine) registerSeq(st *seqState) error {
	if _, err := e.mgr.AddSequence(st.req.ID, e.headsN); err != nil {
		return err
	}
	st.hiF = make([]float64, e.headsN)
	st.loF = make([]float64, e.headsN)
	for h := range st.hiF {
		st.hiF[h] = mathx.Clamp(e.cfg.HiFrac*e.rng.LogNorm(0, 0.3), 0.02, 0.9)
		st.loF[h] = mathx.Clamp(e.cfg.LoFrac*e.rng.LogNorm(0, 0.3), 0, 0.9-st.hiF[h])
		if st.brownout {
			// the whole tier budget shifts low, like a compress-swap
			// victim's post-requantize state
			st.loF[h] = mathx.Clamp(st.hiF[h]+st.loF[h], 0, 0.9)
			st.hiF[h] = 0
		}
	}
	return nil
}

// promptStep runs one batched prompt step for the given sequences. It
// returns any sequences preempted for lack of pages (vLLM-style recompute
// preemption): they must be re-admitted later.
func (e *Engine) promptStep(seqs []*seqState) (StepBreakdown, []*seqState, error) {
	cfg := e.cfg
	dev := e.dev
	var bd StepBreakdown
	batch := len(seqs)
	bd.Scheduler = dev.SchedulerOverhead(batch)

	// cached prefix tokens (prefix-cache hits) need no recompute: they
	// shorten the prompt pass and the compressor's input
	var tokens int
	for _, st := range seqs {
		tokens += st.req.PromptLen - st.cached
	}

	// model execution: tensor-parallel linear layers + prompt attention
	weightsPerGPU := cfg.Model.ParamsB * 2e9 / float64(cfg.Cluster.GPUs)
	exec := dev.LinearLayers(weightsPerGPU, tokens)
	if cfg.Cluster.GPUs > 1 {
		exec += gpusim.Micros(float64(cfg.Model.Layers) * 15) // allreduce per layer
	}
	bd.ModelExec = exec

	// compressor: quantize all prompt tokens' K/V
	kvBytes := float64(tokens) * float64(cfg.Model.KVBytesPerTokenFP16()) / float64(cfg.Cluster.GPUs)
	bd.Compressor = dev.CompressorKernel(kvBytes * cfg.Traits.AttnBytesFrac)

	// memory management
	var stats kvcache.CompactStats
	var preempted []*seqState
	if e.mgr != nil {
		if cap(e.headDemand) < e.headsN {
			e.headDemand = make([]kvcache.HeadDemand, e.headsN)
		}
		for _, st := range seqs {
			demands := e.headDemand[:e.headsN]
			for h := range demands {
				demands[h] = kvcache.HeadDemand{
					HiTokens: int(st.hiF[h] * float64(st.req.PromptLen)),
					LoTokens: int(st.loF[h] * float64(st.req.PromptLen)),
				}
			}
			s, err := e.mgr.PromptCompact(st.req.ID, st.req.PromptLen, demands)
			if err != nil {
				// out of pages: recompute-preempt this sequence
				if rerr := e.mgr.ReleaseSequence(st.req.ID); rerr != nil {
					return bd, preempted, rerr
				}
				preempted = append(preempted, st)
				continue
			}
			stats.Add(s)
		}
		bd.MemMgmt = e.memMgmtTime(stats, len(seqs))
	} else {
		bd.MemMgmt = gpusim.Micros(20 + 2*float64(batch)) // paged FP16 allocator
		bd.Compressor = 0
		if cfg.Traits.AttnBytesFrac < 1 && cfg.Traits.Name != "Quest" &&
			cfg.Traits.Name != "SnapKV" {
			// quantizing baselines still run a compressor
			bd.Compressor = dev.CompressorKernel(kvBytes * cfg.Traits.AttnBytesFrac)
		}
	}

	// HF-based frameworks pay per-step host overhead
	if cfg.Traits.FrameworkOverhead > 1 {
		bd.Scheduler += gpusim.Micros((cfg.Traits.FrameworkOverhead - 1) * 3000)
	}

	isPreempted := func(st *seqState) bool {
		for _, p := range preempted {
			if p == st {
				return true
			}
		}
		return false
	}
	for _, st := range seqs {
		if !isPreempted(st) {
			st.promptDone = true
		}
	}
	return bd, preempted, nil
}

// genStep runs one batched generation step. It returns the sequences
// preempted for lack of pages, split by recovery: recompute victims
// (restart from scratch) and swap victims (offloaded to the host tier,
// resumable). The split is decided by the configured RecoveryPolicy, with
// recompute as the fallback when the host tier refuses a swap.
func (e *Engine) genStep(seqs []*seqState) (StepBreakdown, []*seqState, []*seqState, error) {
	cfg := e.cfg
	dev := e.dev
	var bd StepBreakdown
	batch := len(seqs)
	bd.Scheduler = dev.SchedulerOverhead(batch)

	weightsPerGPU := cfg.Model.ParamsB * 2e9 / float64(cfg.Cluster.GPUs)
	exec := dev.LinearLayers(weightsPerGPU, batch)
	if cfg.Cluster.GPUs > 1 {
		exec += gpusim.Micros(float64(cfg.Model.Layers) * 15)
	}

	// attention over cached tokens
	var cachedTokens float64
	longest := 0
	for _, st := range seqs {
		n := st.req.PromptLen + st.generated
		cachedTokens += float64(n)
		if n > longest {
			longest = n
		}
	}
	attnBytes := cachedTokens * float64(cfg.Model.KVBytesPerTokenFP16()) *
		cfg.Traits.AttnBytesFrac / float64(cfg.Cluster.GPUs)
	seqSplits := 1
	if longest > 8192 {
		seqSplits = longest / 8192
	}
	attn := dev.AttentionKernel(attnBytes, cfg.Traits.AttnBytesFrac < 1, seqSplits)
	attn += gpusim.Micros(float64(attn) * cfg.Traits.EstimateCost)
	if cfg.Traits.FrameworkOverhead > 1 {
		// HF-based runtimes lack kernels that fuse dequantization with
		// attention (paper §7.3): the attention pass reads, dequantizes
		// and re-reads instead of streaming once
		attn = gpusim.Micros(float64(attn) * (1 + 0.35*(cfg.Traits.FrameworkOverhead-1)))
	}
	bd.ModelExec = exec + attn

	// compressor: this step's new K/V for every sequence
	newKV := float64(batch) * float64(cfg.Model.KVBytesPerTokenFP16()) / float64(cfg.Cluster.GPUs)
	bd.Compressor = dev.CompressorKernel(newKV)

	// memory management
	var preempted, swapped []*seqState
	var swapXferBytes float64
	if e.mgr != nil {
		active := append([]*seqState(nil), seqs...)
		for {
			n := len(active)
			if cap(e.genIDs) < n {
				e.genIDs = make([]int, n)
				e.genDemands = make([][]kvcache.GenDemand, n)
			}
			if cap(e.genFlat) < n*e.headsN {
				e.genFlat = make([]kvcache.GenDemand, n*e.headsN)
			}
			ids := e.genIDs[:n]
			demands := e.genDemands[:n]
			flat := e.genFlat[:n*e.headsN]
			for i, st := range active {
				ids[i] = st.req.ID
				d := flat[i*e.headsN : (i+1)*e.headsN]
				for h := range d {
					d[h] = kvcache.GenDemand{}
				}
				if st.winFill >= 64 {
					for h := range d {
						// steady state: candidate lands by tier
						// probability; victims keep counts roughly stable
						u := e.rng.Float64()
						switch {
						case u < st.hiF[h]:
							d[h] = kvcache.GenDemand{HiDelta: 1}
						case u < st.hiF[h]+st.loF[h]:
							d[h] = kvcache.GenDemand{LoDelta: 1}
						}
					}
				}
				demands[i] = d
			}
			s, err := e.mgr.GenCompact(ids, demands)
			if err == nil {
				for _, st := range active {
					if st.winFill < 64 {
						st.winFill++
					}
				}
				bd.MemMgmt = e.memMgmtTime(s, len(active))
				seqs = active
				break
			}
			// out of pages: the recovery policy picks a victim and how it
			// comes back (recompute from scratch vs swap to the host tier).
			// Error returns carry the victims already processed so Step can
			// book them even when the step itself fails.
			if len(active) <= 1 {
				return bd, preempted, swapped, err
			}
			cands := e.victimBuf[:0]
			for _, st := range active {
				cands = append(cands, offload.Victim{
					SeqID:     st.req.ID,
					ArrivalUs: st.req.ArrivalUs,
					Tokens:    st.req.PromptLen + st.generated,
					Generated: st.generated,
				})
			}
			e.victimBuf = cands
			vi := e.rpolicy.PickVictim(cands)
			victim := active[vi]
			active = append(active[:vi], active[vi+1:]...)
			recovered := false
			if e.tiered != nil && e.rpolicy.Recovery() != offload.RecoverRecompute &&
				!e.xferFault() { // a faulted D2H falls back to recompute
				compress := e.rpolicy.Recovery() == offload.RecoverCompressSwap
				res, serr := e.tiered.SwapOut(victim.req.ID, compress, float64(e.clock))
				if serr == nil {
					if compress {
						// the compress-deeper pass re-quantizes the high
						// tier before the transfer; the sequence resumes
						// all-low, so its future demand follows suit
						bd.Compressor += dev.CompressorKernel(float64(res.RecompressBytes))
						for h := range victim.hiF {
							victim.loF[h] = mathx.Clamp(victim.hiF[h]+victim.loF[h], 0, 0.9)
							victim.hiF[h] = 0
						}
					}
					swapXferBytes += float64(res.Bytes)
					victim.swapBytes = res.Bytes
					swapped = append(swapped, victim)
					recovered = true
				}
			}
			if !recovered {
				// recompute: discard the victim's pages entirely
				if rerr := e.mgr.ReleaseSequence(victim.req.ID); rerr != nil {
					return bd, preempted, swapped, rerr
				}
				preempted = append(preempted, victim)
			}
		}
	} else {
		bd.MemMgmt = gpusim.Micros(10 + float64(batch))
	}

	if cfg.Traits.FrameworkOverhead > 1 {
		bd.Scheduler += gpusim.Micros((cfg.Traits.FrameworkOverhead - 1) * 3000)
	}
	if swapXferBytes > 0 {
		// D2H swap traffic: one aggregated transfer, overlapped against
		// this step's kernels up to the device's calibrated fraction
		xfer := dev.PCIeTransfer(swapXferBytes)
		e.xferUs += xfer
		bd.Offload += dev.TransferStall(xfer, bd.ModelExec+bd.Compressor)
	}

	for _, st := range seqs {
		st.generated++
	}
	return bd, preempted, swapped, nil
}

func (e *Engine) memMgmtTime(stats kvcache.CompactStats, batch int) gpusim.Micros {
	if e.cfg.OnCPUMemMgr {
		return e.dev.CPUMemoryManagement(stats.TokenOps, stats.Regions, batch)
	}
	return e.dev.GPUCompaction(stats.TokenOps, stats.Regions)
}
