package serving

import "diffkv/internal/telemetry"

// ObservationFromStats converts a driver counter snapshot into the
// telemetry package's fleet observation. The conversion lives here (not
// in telemetry) so telemetry never imports serving — the dependency
// runs one way, serving → telemetry, with no cycle.
func ObservationFromStats(ds DriverStats) telemetry.Observation {
	obs := telemetry.Observation{
		TimeUs:                 ds.ClockUs,
		ThroughputTokensPerSec: ds.ThroughputTokensPerSec,
		GoodputTokensPerSec:    ds.GoodputTokensPerSec,
		InstancesUp:            ds.InstancesUp,
		Completed:              int64(ds.Completed),
		Rejected:               int64(ds.Rejected),
	}
	for _, is := range ds.PerInstance {
		// outstanding host-tier footprint: bytes swapped out minus bytes
		// brought back (cancel-freed state keeps this an upper bound)
		hostBytes := is.SwapOutBytes - is.SwapInBytes
		if hostBytes < 0 {
			hostBytes = 0
		}
		obs.PerInstance = append(obs.PerInstance, telemetry.InstanceObservation{
			Inst:           is.Inst,
			QueueDepth:     is.QueueDepth,
			Running:        is.Running,
			Swapped:        is.Swapped,
			FreeKVPages:    int64(is.FreeKVPages),
			UsedKVPages:    int64(is.UsedKVPages),
			ResidentTokens: int64(is.ResidentTokens),
			SwappedTokens:  int64(is.SwappedTokens),
			MemoryTokens:   is.TokenCapacity,
			HostBytes:      hostBytes,
			Health:         is.Health,
			Preemptions:    int64(is.Preemptions),
			SwapOutBytes:   is.SwapOutBytes,
			SwapInBytes:    is.SwapInBytes,
		})
	}
	return obs
}
