package serving

import (
	"testing"

	"diffkv/internal/baselines"
	"diffkv/internal/synth"
	"diffkv/internal/trace"
	"diffkv/internal/workload"
)

// TestPreemptionUnderTightMemory drives the manager-mode engine into
// repeated preemption and verifies that every request still completes
// exactly once and no pages leak — the safety property of recompute
// preemption.
func TestPreemptionUnderTightMemory(t *testing.T) {
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
		HiFrac: 0.25, LoFrac: 0.3, Seed: 11,
		MemoryReserve: 0.985, // ~430 MB of KV: forces constant pressure
	})
	reqs := batchReqs(workload.GSM8K, 24, 11)
	res, err := e.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(reqs) {
		t.Fatalf("completed %d of %d under pressure", res.Completed, len(reqs))
	}
	if e.mgr.UsedPages() != 0 {
		t.Fatalf("pages leaked under preemption: %d", e.mgr.UsedPages())
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput recorded")
	}
}

// TestPreemptionPoisson combines open-loop arrivals with tight memory.
func TestPreemptionPoisson(t *testing.T) {
	e := newEngine(t, Config{
		Model: synth.Qwen25_7B, Cluster: cluster(1),
		Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
		HiFrac: 0.25, LoFrac: 0.25, Seed: 13,
		MemoryReserve: 0.98,
	})
	reqs := workload.NewRequestGen(workload.GSM8K, 384, 13).Poisson(2, 60)
	if len(reqs) == 0 {
		t.Skip("no arrivals drawn")
	}
	res, err := e.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", res.Completed, len(reqs))
	}
	if e.mgr.UsedPages() != 0 {
		t.Fatalf("pages leaked: %d", e.mgr.UsedPages())
	}
}

// TestGenLimitClamp verifies MaxGenLen truncates admitted requests.
func TestGenLimitClamp(t *testing.T) {
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsVLLM, MaxGenLen: 64, Seed: 17,
	})
	reqs := workload.NewRequestGen(workload.MATH, 4096, 17).Batch(4)
	res, err := e.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// 4 requests x at most 64 generated tokens each
	if res.GenSteps > 4*64 {
		t.Fatalf("generation ran past the limit: %d steps", res.GenSteps)
	}
	if res.Completed != 4 {
		t.Fatalf("completed %d", res.Completed)
	}
}

// TestBreakdownAccumulates checks the Fig. 14 component accounting is
// internally consistent: totals equal the sum of parts and both phases ran.
func TestBreakdownAccumulates(t *testing.T) {
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
		HiFrac: 0.2, LoFrac: 0.25, Seed: 19,
	})
	res, err := e.Run(batchReqs(workload.GSM8K, 8, 19))
	if err != nil {
		t.Fatal(err)
	}
	for phase, bd := range map[string]StepBreakdown{"prompt": res.Prompt, "gen": res.Gen} {
		total := bd.Scheduler + bd.MemMgmt + bd.Compressor + bd.ModelExec
		if total != bd.Total() {
			t.Fatalf("%s: Total() inconsistent", phase)
		}
		if bd.ModelExec <= 0 {
			t.Fatalf("%s: no model execution time", phase)
		}
	}
	if res.Gen.MemMgmt <= 0 {
		t.Fatal("generation phase recorded no memory-management time")
	}
}

// TestTracerReceivesEvents verifies the serving engine emits the full
// event lifecycle into a configured tracer.
func TestTracerReceivesEvents(t *testing.T) {
	col := trace.NewCollector(0)
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
		HiFrac: 0.25, LoFrac: 0.3, Seed: 23,
		MemoryReserve: 0.985, // tight: force at least one preemption
		Tracer:        col,
	})
	reqs := batchReqs(workload.GSM8K, 16, 23)
	if _, err := e.Run(reqs); err != nil {
		t.Fatal(err)
	}
	s := col.Summarize()
	if s.Counts[trace.KindAdmit] < len(reqs) {
		t.Fatalf("admits = %d, want >= %d (re-admissions count too)",
			s.Counts[trace.KindAdmit], len(reqs))
	}
	if s.Counts[trace.KindComplete] != len(reqs) {
		t.Fatalf("completes = %d", s.Counts[trace.KindComplete])
	}
	if s.Counts[trace.KindPromptStep] == 0 || s.Counts[trace.KindGenStep] == 0 {
		t.Fatal("step events missing")
	}
	if s.MaxBatch <= 0 {
		t.Fatal("no batch recorded")
	}
	// events are time-ordered
	prev := -1.0
	for _, ev := range col.Events() {
		if ev.TimeUs < prev {
			t.Fatal("events out of order")
		}
		prev = ev.TimeUs
	}
}
