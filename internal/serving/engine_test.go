package serving

import (
	"testing"

	"diffkv/internal/baselines"
	"diffkv/internal/gpusim"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

func cluster(gpus int) *gpusim.Cluster { return gpusim.NewCluster(gpusim.L40(), gpus) }

func newEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func batchReqs(b *workload.Benchmark, n int, seed uint64) []workload.Request {
	return workload.NewRequestGen(b, 1024, seed).Batch(n)
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Fatal("expected error for empty config")
	}
	// 70B on one 48GB GPU: weights alone exceed memory
	_, err := NewEngine(Config{
		Model: synth.Llama3_70B, Cluster: cluster(1), Traits: baselines.TraitsVLLM,
	})
	if err == nil {
		t.Fatal("expected OOM error for 70B on one GPU")
	}
	// four GPUs fit
	if _, err := NewEngine(Config{
		Model: synth.Llama3_70B, Cluster: cluster(4), Traits: baselines.TraitsVLLM,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestVLLMRunCompletes(t *testing.T) {
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsVLLM, Seed: 1,
	})
	res, err := e.Run(batchReqs(workload.MATH, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 16 {
		t.Fatalf("completed %d of 16", res.Completed)
	}
	if res.Throughput <= 0 || res.AvgBatch <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
	if res.GenSteps == 0 || res.PromptSteps == 0 {
		t.Fatal("both phases must execute")
	}
}

func TestCompressionIncreasesBatchAndThroughput(t *testing.T) {
	// shrink the KV budget so memory binds the batch size at test scale
	reqs := batchReqs(workload.MATH, 64, 2)
	run := func(traits baselines.ServingTraits, useMgr bool) Result {
		e := newEngine(t, Config{
			Model: synth.Llama3_8B, Cluster: cluster(1),
			Traits: traits, UseManager: useMgr,
			HiFrac: 0.2, LoFrac: 0.25, Seed: 2,
			MemoryReserve: 0.97,
		})
		res, err := e.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	vllm := run(baselines.TraitsVLLM, false)
	diff := run(baselines.TraitsDiffKV(0.3), true)
	if diff.AvgBatch <= vllm.AvgBatch {
		t.Fatalf("DiffKV batch %v should exceed vLLM %v", diff.AvgBatch, vllm.AvgBatch)
	}
	if diff.Throughput <= vllm.Throughput {
		t.Fatalf("DiffKV throughput %v should exceed vLLM %v", diff.Throughput, vllm.Throughput)
	}
}

func TestHFOverheadReducesThroughput(t *testing.T) {
	reqs := batchReqs(workload.MATH, 32, 3)
	run := func(traits baselines.ServingTraits) Result {
		e := newEngine(t, Config{
			Model: synth.Llama3_8B, Cluster: cluster(1), Traits: traits, Seed: 3,
		})
		res, err := e.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	kiviLike := baselines.TraitsKIVI
	noOverhead := kiviLike
	noOverhead.FrameworkOverhead = 1
	withOH := run(kiviLike)
	without := run(noOverhead)
	if withOH.Throughput >= without.Throughput {
		t.Fatalf("framework overhead must cost throughput: %v vs %v",
			withOH.Throughput, without.Throughput)
	}
}

func TestQuestSameBatchAsVLLM(t *testing.T) {
	// Quest retains the full cache: batch matches vLLM, but attention
	// reads fewer bytes so throughput improves (paper §7.3).
	reqs := batchReqs(workload.MATH, 48, 4)
	run := func(traits baselines.ServingTraits) Result {
		e := newEngine(t, Config{
			Model: synth.Llama3_8B, Cluster: cluster(1), Traits: traits, Seed: 4,
		})
		res, err := e.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	vllm := run(baselines.TraitsVLLM)
	quest := run(baselines.TraitsQuest)
	ratio := quest.AvgBatch / vllm.AvgBatch
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("Quest batch ratio vs vLLM = %v, want ~1", ratio)
	}
	if quest.Throughput <= vllm.Throughput {
		t.Fatalf("Quest throughput %v should beat vLLM %v", quest.Throughput, vllm.Throughput)
	}
}

func TestManagerConservation(t *testing.T) {
	// After every request completes, all pages must be recycled.
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
		HiFrac: 0.2, LoFrac: 0.25, Seed: 5,
	})
	if _, err := e.Run(batchReqs(workload.GSM8K, 24, 5)); err != nil {
		t.Fatal(err)
	}
	if e.mgr.UsedPages() != 0 {
		t.Fatalf("pages leaked after run: %d", e.mgr.UsedPages())
	}
}

func TestMemMgmtBreakdownSmallOnGPU(t *testing.T) {
	// Fig. 14: on-GPU memory management must be a sub-percent fraction of
	// step time.
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
		HiFrac: 0.2, LoFrac: 0.25, Seed: 6,
	})
	res, err := e.Run(batchReqs(workload.MATH, 32, 6))
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Gen.MemMgmt) / float64(res.Gen.Total())
	if frac > 0.05 {
		t.Fatalf("generation mem-mgmt fraction = %v, want < 5%%", frac)
	}
}

func TestOnCPUMemMgrDominatesGeneration(t *testing.T) {
	// Fig. 13: the on-CPU comparator's memory management must dwarf the
	// on-GPU path.
	run := func(onCPU bool) Result {
		e := newEngine(t, Config{
			Model: synth.Llama3_8B, Cluster: cluster(1),
			Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
			OnCPUMemMgr: onCPU, HiFrac: 0.2, LoFrac: 0.25, Seed: 7,
		})
		res, err := e.Run(batchReqs(workload.GSM8K, 16, 7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gpu := run(false)
	cpu := run(true)
	ratio := float64(cpu.Gen.MemMgmt) / float64(gpu.Gen.MemMgmt)
	if ratio < 50 {
		t.Fatalf("CPU/GPU mem-mgmt ratio = %v, want >> 50", ratio)
	}
	if cpu.Throughput >= gpu.Throughput {
		t.Fatal("on-CPU memory management must cost throughput")
	}
}

func TestPoissonLatencyGrowsWithRate(t *testing.T) {
	// Fig. 16: higher request rates mean more queueing, higher per-token
	// latency.
	run := func(rate float64) Result {
		gen := workload.NewRequestGen(workload.GSM8K, 512, 8)
		reqs := gen.Poisson(rate, 300)
		e := newEngine(t, Config{
			Model: synth.Llama3_8B, Cluster: cluster(1),
			Traits: baselines.TraitsVLLM, Seed: 8,
		})
		res, err := e.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	slow := run(0.2)
	fast := run(5)
	if slow.Completed == 0 || fast.Completed == 0 {
		t.Fatal("no completions")
	}
	if fast.AvgPerTokenLatency <= slow.AvgPerTokenLatency {
		t.Fatalf("latency should grow with load: %v vs %v",
			fast.AvgPerTokenLatency, slow.AvgPerTokenLatency)
	}
}

func TestTokenCapacityPositive(t *testing.T) {
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1), Traits: baselines.TraitsVLLM,
	})
	if e.TokenCapacity() <= 0 {
		t.Fatal("capacity must be positive")
	}
	// compression raises capacity
	c := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsDiffKV(0.3),
	})
	if c.TokenCapacity() <= e.TokenCapacity() {
		t.Fatal("compression must raise token capacity")
	}
}
