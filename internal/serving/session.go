package serving

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"diffkv/internal/trace"
	"diffkv/internal/workload"
)

// ErrCancelled is the terminal error of a session cancelled before
// completion (explicitly or via its context).
var ErrCancelled = errors.New("serving: session cancelled")

// ErrFailed is the terminal error of a session whose request could not
// be completed after instance crashes: its re-dispatch retry budget ran
// out (or no instance was left to route to).
var ErrFailed = errors.New("serving: request failed after instance crashes")

// TokenUpdate is one token-progress notification delivered to a
// session's OnToken callback from the driving goroutine.
type TokenUpdate struct {
	// Seq is the request ID.
	Seq int
	// Generated is the number of output tokens produced so far.
	Generated int
	// TimeUs is the simulated clock at the step that produced the tokens.
	TimeUs float64
	// First marks the prompt phase finishing (the TTFT point); Generated
	// is 0 at that update.
	First bool
}

// Session is a per-request handle over the steppable engine: Open
// submits the request and returns the handle, token progress streams
// through the OnToken callback while the engine is driven (Step /
// DrainContext), and cancellation — explicit Cancel or the Open context
// expiring — frees the request's KV pages and host-tier state instead of
// finishing the generation. A Session is owned by the engine's driving
// goroutine, like the engine itself; Done is the only member safe to use
// from other goroutines.
type Session struct {
	eng *Engine
	ctx context.Context
	req workload.Request

	onToken   func(TokenUpdate)
	generated int
	firstSent bool // First update delivered (dedups recompute retries)
	finished  bool
	cancelReq bool // Cancel() called mid-step; honored when the step ends
	comp      Completion
	err       error
	done      chan struct{}
}

// ID returns the request ID the session serves.
func (s *Session) ID() int { return s.req.ID }

// Request returns the submitted request (with any auto-assigned ID).
func (s *Session) Request() workload.Request { return s.req }

// OnToken sets the token-progress callback and returns the session for
// chaining. Set it before driving the engine; callbacks run synchronously
// on the driving goroutine.
func (s *Session) OnToken(fn func(TokenUpdate)) *Session {
	s.onToken = fn
	return s
}

// Generated returns the output tokens produced so far.
func (s *Session) Generated() int { return s.generated }

// Done returns a channel closed when the session completes or is
// cancelled.
func (s *Session) Done() <-chan struct{} { return s.done }

// Finished reports whether the session has completed or been cancelled.
func (s *Session) Finished() bool { return s.finished }

// Completion returns the completion record once the session finished
// successfully; the error is ErrCancelled for cancelled sessions and nil
// while the session is still in flight (check Finished).
func (s *Session) Completion() (Completion, error) {
	return s.comp, s.err
}

// Cancel terminates the session: the request leaves the queue / running
// batch / swapped queue and its KV pages and host-tier bytes are freed
// immediately (when called from inside a token callback, at the end of
// the current step — the engine is mid-iteration then). Cancelling a
// finished session is a no-op.
func (s *Session) Cancel() {
	s.eng.cancelSession(s)
}

// Abort terminally fails the session with err (ErrFailed when nil).
// The recovery layer calls it for crash orphans that exhaust their
// retry budget — the request is already off every engine by then
// (Crash orphaned it), so only the session-side terminal state is set.
func (s *Session) Abort(err error) {
	if err == nil {
		err = ErrFailed
	}
	s.finish(Completion{Req: s.req}, err)
}

// rebind transfers the session to a new engine after a crash
// re-dispatch: progress counters (generated, firstSent) persist so the
// token stream stays monotonic and First is delivered at most once per
// request, even though the new engine replays the prompt from scratch.
func (s *Session) rebind(e *Engine) {
	s.eng = e
	if e.sessions == nil {
		e.sessions = make(map[int]*Session)
	}
	e.sessions[s.req.ID] = s
}

// finish marks the session terminal and signals Done.
func (s *Session) finish(cp Completion, err error) {
	if s.finished {
		return
	}
	s.finished = true
	s.comp = cp
	s.err = err
	close(s.done)
}

// Open submits a request and returns its session handle. The context
// governs the request's lifetime: once it is cancelled or its deadline
// passes, the next engine step reaps the session and frees its KV state.
// A zero request ID is auto-assigned from a private range so hand-built
// requests need no ID bookkeeping. The engine must still be driven (Step,
// Drain or DrainContext) for the session to make progress — Open itself
// performs no work, matching a real online server's accept path.
func (e *Engine) Open(ctx context.Context, r workload.Request) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.ID == 0 {
		e.autoID++
		r.ID = sessionAutoIDBase + e.autoID
	}
	if e.sessions == nil {
		e.sessions = make(map[int]*Session)
	}
	if _, dup := e.sessions[r.ID]; dup {
		return nil, fmt.Errorf("serving: session for request %d already open", r.ID)
	}
	if r.GenLen <= 0 {
		return nil, fmt.Errorf("serving: request %d has no generation budget", r.ID)
	}
	if r.ArrivalUs < float64(e.clock) {
		// an online request cannot arrive in the simulated past
		r.ArrivalUs = float64(e.clock)
	}
	s := &Session{eng: e, ctx: ctx, req: r, done: make(chan struct{})}
	e.sessions[r.ID] = s
	e.Submit(r) // Submit emits the open trace event
	return s, nil
}

// sessionAutoIDBase keeps auto-assigned session request IDs clear of
// workload-generator IDs (which count up from 1).
const sessionAutoIDBase = 1 << 30

// OpenSessions returns the number of unfinished sessions.
func (e *Engine) OpenSessions() int {
	n := 0
	//diffkv:allow maprange -- integer count of a predicate: commutative, order cannot change the total
	for _, s := range e.sessions {
		if !s.finished {
			n++
		}
	}
	return n
}

// CancelledSessions returns how many sessions were cancelled over the
// engine's lifetime.
func (e *Engine) CancelledSessions() int { return e.cancelledN }

// cancelSession implements Session.Cancel: immediate when the engine is
// between steps, deferred to the end of the current step otherwise
// (cancelling mid-step would mutate the running set under iteration).
func (e *Engine) cancelSession(s *Session) {
	if s.finished || s.cancelReq {
		return
	}
	if e.inStep {
		s.cancelReq = true
		e.deferredCancel = true
		return
	}
	e.finalizeCancel(s)
}

// finalizeCancel removes the session's request from whichever structure
// holds it — pending queue, running batch, or swapped queue — releasing
// KV pages (running) and pinned host bytes (swapped) so the capacity
// they held is immediately available to other requests.
func (e *Engine) finalizeCancel(s *Session) {
	id := s.req.ID
	for i, r := range e.pending {
		if r.ID == id {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			break
		}
	}
	for i, st := range e.running {
		if st.req.ID == id {
			e.running = append(e.running[:i], e.running[i+1:]...)
			if e.mgr != nil {
				// a running sequence always holds a manager registration;
				// releasing it frees its pages, so admissions may resume
				if err := e.mgr.ReleaseSequence(id); err == nil {
					e.admitBlocked = false
				}
			}
			break
		}
	}
	for i, st := range e.swappedQ {
		if st.req.ID == id {
			e.swappedQ = append(e.swappedQ[:i], e.swappedQ[i+1:]...)
			if e.tiered != nil {
				e.tiered.Drop(id)
			}
			break
		}
	}
	delete(e.preemptN, id)
	delete(e.retryUs, id)
	delete(e.attempts, id)
	delete(e.readmitted, id)
	delete(e.phase, id)
	delete(e.sessions, id)
	e.cancelledN++
	e.emit(trace.Event{Kind: trace.KindCancel, TimeUs: float64(e.clock), Seq: id})
	s.finish(Completion{Req: s.req}, ErrCancelled)
}

// ReapSessions processes context-cancelled and deferred-cancelled
// sessions, freeing their KV state. Step calls it automatically; external
// drivers (the cluster event loop) call it to observe cancellations on
// engines that have gone idle and would otherwise never step again.
func (e *Engine) ReapSessions() {
	if len(e.sessions) == 0 {
		return
	}
	var ids []int
	for id, s := range e.sessions {
		if s.finished {
			continue
		}
		if s.cancelReq || s.ctx.Err() != nil {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		e.deferredCancel = false
		return
	}
	sort.Ints(ids) // deterministic cancel order regardless of map walk
	for _, id := range ids {
		e.finalizeCancel(e.sessions[id])
	}
	e.deferredCancel = false
}

// notifyFirstToken streams a First (TTFT) update to the session of a
// prompt that finished this step. A recompute-preempted request re-runs
// its prompt on a fresh seqState, so the sent flag lives on the session:
// exactly one First per session, like generation updates stay monotonic
// across retries. Called with the post-step clock.
func (e *Engine) notifyFirstToken(st *seqState) {
	if len(e.sessions) == 0 {
		return
	}
	s, ok := e.sessions[st.req.ID]
	if !ok || s.finished || s.firstSent {
		return
	}
	s.firstSent = true
	if s.onToken != nil {
		s.onToken(TokenUpdate{Seq: st.req.ID, TimeUs: float64(e.clock), First: true})
	}
}

// notifyGenProgress streams one token update per sequence that produced a
// token this step (preempted and swapped victims did not). Called with
// the post-step clock.
func (e *Engine) notifyGenProgress(genSeqs []*seqState) {
	if len(e.sessions) == 0 {
		return
	}
	now := float64(e.clock)
	for _, st := range genSeqs {
		s, ok := e.sessions[st.req.ID]
		if !ok || s.finished || st.generated <= s.generated {
			continue
		}
		s.generated = st.generated
		if s.onToken != nil {
			s.onToken(TokenUpdate{Seq: st.req.ID, Generated: st.generated, TimeUs: now})
		}
	}
}

// DrainContext steps the engine until all submitted work completes, the
// context is done, or the step bound is hit. On context expiry it stops
// between steps and returns the context's error with unfinished work
// still queued — the deadline-respecting counterpart of Drain.
func (e *Engine) DrainContext(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for e.steps < maxTotalSteps {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.ReapSessions() // cancellations may empty the remaining work
		if !e.HasWork() {
			return nil
		}
		if _, err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}
