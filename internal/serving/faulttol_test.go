package serving

import (
	"math"
	"testing"

	"diffkv/internal/offload"
	"diffkv/internal/trace"
)

// stepUntil drives the engine until cond holds (or work runs out),
// returning the completions produced along the way.
func stepUntil(t *testing.T, e *Engine, cond func() bool) []Completion {
	t.Helper()
	var comps []Completion
	for e.HasWork() && !cond() {
		done, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, done...)
	}
	return comps
}

// A crash on one engine followed by Readmit on another must keep the
// latency accounting honest: completions report the original arrival,
// their phase buckets sum to end-to-end exactly (the crash-to-readmit
// gap charged to queueing), Attempts counts both dispatches, and the
// re-dispatch timestamp lands in RetryUs.
func TestCrashReadmitAccountingStaysExact(t *testing.T) {
	cfgA := oversubCfg(offload.PolicyRecompute, 0, 21)
	a := newEngine(t, cfgA)
	for _, r := range cotReqs(12, 21) {
		a.Submit(r)
	}
	// run engine A partway so the crash strands a mix of running and
	// pending requests
	pre := stepUntil(t, a, func() bool { return len(a.running) >= 2 && a.Result().Completed >= 1 })
	crashUs := float64(a.Clock()) + 500
	rep, err := a.Crash(crashUs, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Orphans) == 0 {
		t.Fatal("crash stranded no requests")
	}
	if a.HasWork() {
		t.Fatal("crashed engine still reports work")
	}
	if a.mgr.UsedPages() != 0 {
		t.Fatalf("crash left %d pages registered", a.mgr.UsedPages())
	}
	if rep.LostKVBytes <= 0 {
		t.Fatal("crash with running sequences lost no KV bytes")
	}
	for i := 1; i < len(rep.Orphans); i++ {
		if rep.Orphans[i-1].Req.ID >= rep.Orphans[i].Req.ID {
			t.Fatal("orphans not in request-ID order")
		}
	}

	b := newEngine(t, oversubCfg(offload.PolicyRecompute, 0, 22))
	redispatchUs := crashUs + 25_000 // the downtime the requests must absorb
	for _, o := range rep.Orphans {
		if o.Attempts != 1 {
			t.Fatalf("orphan %d attempts %d, want 1", o.Req.ID, o.Attempts)
		}
		if o.AsOfUs != crashUs {
			t.Fatalf("orphan %d closed at %g, want crash time %g", o.Req.ID, o.AsOfUs, crashUs)
		}
		if err := b.Readmit(o, redispatchUs); err != nil {
			t.Fatal(err)
		}
	}
	comps := drainCompletions(t, b)
	if len(comps) != len(rep.Orphans) {
		t.Fatalf("completed %d of %d re-dispatched", len(comps), len(rep.Orphans))
	}
	for _, cp := range comps {
		if cp.Attempts != 2 {
			t.Fatalf("req %d attempts %d, want 2", cp.Req.ID, cp.Attempts)
		}
		// first retry entry is the re-dispatch; later entries (if any) are
		// preemption retries on the surviving engine
		if len(cp.RetryUs) == 0 || cp.RetryUs[0] != redispatchUs {
			t.Fatalf("req %d retry record %v, want first entry %g", cp.Req.ID, cp.RetryUs, redispatchUs)
		}
		e2e := cp.DoneUs - cp.Req.ArrivalUs
		if diff := math.Abs(cp.Phases.TotalUs() - e2e); diff > 1 {
			t.Fatalf("req %d: phase sum %.3f != e2e %.3f across crash", cp.Req.ID, cp.Phases.TotalUs(), e2e)
		}
		// the dead time between crash and re-admission is queueing
		if cp.Phases.QueueUs < redispatchUs-crashUs {
			t.Fatalf("req %d: queue %.0fus does not cover the %gus outage",
				cp.Req.ID, cp.Phases.QueueUs, redispatchUs-crashUs)
		}
	}
	// requests that completed before the crash keep attempt count 1
	for _, cp := range pre {
		if cp.Attempts != 1 {
			t.Fatalf("pre-crash req %d attempts %d, want 1", cp.Req.ID, cp.Attempts)
		}
	}
}

// keepSwapped crash insurance: sequences in the host tier survive the
// crash, are not orphaned, and complete after Restart without losing
// their generation progress.
func TestCrashKeepsSwappedThroughRestart(t *testing.T) {
	cfg := oversubCfg(offload.PolicySwap, 2<<30, 11)
	e := newEngine(t, cfg)
	for _, r := range cotReqs(20, 11) {
		e.Submit(r)
	}
	stepUntil(t, e, func() bool { return e.SwappedCount() >= 2 })
	kept := e.SwappedCount()
	if kept < 2 {
		t.Skipf("run produced only %d swapped sequences", kept)
	}
	ids := e.SwappedIDs()
	if len(ids) != kept {
		t.Fatalf("SwappedIDs %d != SwappedCount %d", len(ids), kept)
	}
	crashUs := float64(e.Clock()) + 1
	rep, err := e.Crash(crashUs, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeptSwapped != kept {
		t.Fatalf("kept %d swapped, want %d", rep.KeptSwapped, kept)
	}
	for _, o := range rep.Orphans {
		for _, id := range ids {
			if o.Req.ID == id {
				t.Fatalf("swapped req %d orphaned despite keepSwapped", id)
			}
		}
	}
	if e.tiered.HostUsedBytes() <= 0 {
		t.Fatal("host tier emptied by a keepSwapped crash")
	}
	e.Restart(crashUs + 3_000_000) // 3s outage
	comps := drainCompletions(t, e)
	done := map[int]bool{}
	for _, cp := range comps {
		done[cp.Req.ID] = true
	}
	for _, id := range ids {
		if !done[id] {
			t.Fatalf("swapped req %d never completed after restart", id)
		}
	}
	if e.tiered.HostUsedBytes() != 0 {
		t.Fatalf("host tier not drained: %d bytes", e.tiered.HostUsedBytes())
	}
}

// Brownout admission: past the configured queue depth, requests are
// admitted at the all-low tier and counted (and their admit events
// annotated) — capacity is preserved at the cost of fidelity.
func TestBrownoutAdmitsAtLowTier(t *testing.T) {
	col := trace.NewCollector(0)
	cfg := oversubCfg(offload.PolicyRecompute, 0, 31)
	cfg.Tracer = col
	cfg.BrownoutQueueDepth = 4
	e := newEngine(t, cfg)
	reqs := cotReqs(16, 31)
	for i := range reqs {
		reqs[i].ArrivalUs = 0 // an instantaneous burst: deep queue guaranteed
		e.Submit(reqs[i])
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if res := e.Result(); res.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", res.Completed, len(reqs))
	}
	if e.BrownoutAdmits() == 0 {
		t.Fatal("deep-queue burst triggered no brownout admissions")
	}
	noted := 0
	for _, ev := range col.Events() {
		if ev.Kind == trace.KindAdmit && ev.Note == "brownout" {
			noted++
		}
	}
	if noted != e.BrownoutAdmits() {
		t.Fatalf("brownout notes %d != counter %d", noted, e.BrownoutAdmits())
	}
}

// A PCIe fault on every D2H transfer forces the swap policy to fall
// back to recompute: the run still completes everything, with zero
// host-tier traffic.
func TestXferFaultFallsBackToRecompute(t *testing.T) {
	cfg := oversubCfg(offload.PolicySwap, 2<<30, 11)
	cfg.XferFault = func() bool { return true }
	e := newEngine(t, cfg)
	reqs := cotReqs(20, 11)
	res, err := e.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(reqs) {
		t.Fatalf("completed %d of %d with faulty PCIe", res.Completed, len(reqs))
	}
	if res.Preemptions == 0 {
		t.Fatal("run was not oversubscribed enough to preempt")
	}
	if res.Offload.SwapOuts != 0 {
		t.Fatalf("%d swap-outs despite a 100%% D2H fault rate", res.Offload.SwapOuts)
	}
}
