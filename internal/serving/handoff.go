package serving

// Disaggregated prefill/decode handoff (engine side). In disaggregated
// serving the cluster splits every request into a prefill sub-request
// (same ID, GenLen 1 — the first output token is produced where the
// prompt ran, so TTFT is honestly attributed to the prefill instance)
// and a decode sub-request that resumes on another instance once the
// prefill's KV pages cross the NIC. The engine's share of that protocol
// is three calls:
//
//   - MarkHandoff(id): the cluster flags a submitted prefill child so
//     its completion retains the sequence's KV description instead of
//     silently dropping it with ReleaseSequence.
//   - TakeExport(id): after the prefill child completes, the cluster
//     collects the KVExport — per-head tier counts, packed byte size,
//     tier fractions, lifecycle accounting — to ship to the decode side.
//   - SubmitPrefilled(r, exp, nowUs): the decode engine accepts the
//     shipped sequence. It rides the ordinary pending queue and
//     admission gate, but admission adopts the exact page shape via
//     AdoptCounts instead of re-running the prompt, and the request's
//     phase accounting continues from the prefill side's breakdown plus
//     the modeled wire time — so the final Completion.Phases telescopes
//     to end-to-end latency across both instances within 1µs.
//
// The same invariants as crash re-dispatch (faulttol.go) apply: arrival
// time is preserved across the handoff, the decode engine's clock is
// only pulled up when idle (the cluster processes events in global time
// order, so a busy engine's next step is already >= the transfer's
// delivery time), and a live session handle rebinds to the decode
// engine so streaming consumers never notice the migration.

import (
	"fmt"
	"sort"

	"diffkv/internal/gpusim"
	"diffkv/internal/kvcache"
	"diffkv/internal/trace"
	"diffkv/internal/workload"
)

// KVExport is one finished prefill's portable sequence state: everything
// the decode instance needs to resume generation bit-identically, plus
// the lifecycle accounting that keeps cross-instance completions honest.
type KVExport struct {
	// SeqID is the request ID the KV belongs to (preserved across the
	// handoff: sub-requests keep the parent's ID, instances disambiguate).
	SeqID int
	// Tokens is the cached KV length (prompt + generated-so-far);
	// Generated is how many output tokens the prefill side produced
	// (1 in the standard split).
	Tokens    int
	Generated int
	// Bytes is the packed payload crossing the wire: the sequence's
	// resident KV at its quantized size (SeqKVBytes in manager mode, the
	// analytic per-token estimate in traits mode). Compression pays here
	// a second time — K4V2 pages ship several times cheaper than FP16.
	Bytes int64
	// Counts is the per-head tier shape (manager mode; nil in traits
	// mode): the decode manager adopts exactly these page demands, so
	// occupancy transfers page-identically.
	Counts []kvcache.HeadDemand
	// HiF / LoF / WinFill / Cached / Brownout carry the sequence's
	// scheduling traits so decode-side steps are priced identically to a
	// colocated run.
	HiF, LoF []float64
	WinFill  int
	Cached   int
	Brownout bool

	// Lifecycle accounting, filled by the cluster from the prefill
	// child's Completion: AsOfUs is the prefill-side completion clock,
	// XferUs the modeled NICTransfer wire time (SubmitPrefilled folds
	// delivery-minus-AsOfUs into the xfer:inst phase bucket and charges
	// the ingest stall to the decode instance's next step).
	FirstTokenUs float64
	AsOfUs       float64
	XferUs       float64
	Phases       trace.PhaseBreakdown
	Preempts     int
	RetryUs      []float64
	Attempts     int
	// Sess is the live session handle when the request was opened online;
	// SubmitPrefilled rebinds it to the decode engine.
	Sess *Session
}

// headCounter / countAdopter are the manager capabilities the handoff
// needs; both *kvcache.Manager and offload.TieredStore (by embedding)
// provide them.
type headCounter interface {
	HeadCounts(seqID int, buf []kvcache.HeadDemand) ([]kvcache.HeadDemand, error)
}
type countAdopter interface {
	AdoptCounts(seqID int, demands []kvcache.HeadDemand) (kvcache.CompactStats, error)
}

// MarkHandoff flags a submitted request so its completion exports the
// sequence's KV description (TakeExport) instead of dropping it.
func (e *Engine) MarkHandoff(id int) {
	if e.exportOn == nil {
		e.exportOn = make(map[int]bool)
	}
	e.exportOn[id] = true
}

// exportSeq captures a completing handoff-marked sequence's KV
// description before its pages are released. Called from the completion
// path in Step; the cluster collects the export via TakeExport.
func (e *Engine) exportSeq(st *seqState) error {
	exp := &KVExport{
		SeqID:     st.req.ID,
		Tokens:    st.req.PromptLen + st.generated,
		Generated: st.generated,
		Bytes:     e.seqKVBytes(st),
		HiF:       st.hiF,
		LoF:       st.loF,
		WinFill:   st.winFill,
		Cached:    st.cached,
		Brownout:  st.brownout,
	}
	if hc, ok := e.mgr.(headCounter); ok {
		counts, err := hc.HeadCounts(st.req.ID, nil)
		if err != nil {
			return fmt.Errorf("serving: handoff export %d: %w", st.req.ID, err)
		}
		exp.Counts = counts
	}
	if e.exports == nil {
		e.exports = make(map[int]*KVExport)
	}
	e.exports[st.req.ID] = exp
	delete(e.exportOn, st.req.ID)
	return nil
}

// TakeExport removes and returns the KVExport captured when the given
// handoff-marked request completed.
func (e *Engine) TakeExport(id int) (*KVExport, error) {
	exp, ok := e.exports[id]
	if !ok {
		return nil, fmt.Errorf("serving: no KV export for request %d", id)
	}
	delete(e.exports, id)
	return exp, nil
}

// SubmitPrefilled queues a shipped prefilled sequence for adoption at
// nowUs (the transfer's delivery time). The request keeps its original
// ArrivalUs — end-to-end latency spans both instances — while its phase
// accounting resumes from the prefill side's breakdown with the wire
// time folded into the xfer:inst bucket.
func (e *Engine) SubmitPrefilled(r workload.Request, exp *KVExport, nowUs float64) error {
	if exp == nil {
		return fmt.Errorf("serving: SubmitPrefilled %d: nil export", r.ID)
	}
	if _, dup := e.adopts[r.ID]; dup {
		return fmt.Errorf("serving: SubmitPrefilled %d: duplicate adoption", r.ID)
	}
	// causality: an idle engine's clock may trail the transfer's
	// delivery; a busy engine's next step is already >= nowUs because
	// the cluster processes events in global time order
	if len(e.running) == 0 && len(e.swappedQ) == 0 && float64(e.clock) < nowUs {
		e.clock = gpusim.Micros(nowUs)
	}
	if e.adopts == nil {
		e.adopts = make(map[int]*KVExport)
	}
	e.adopts[r.ID] = exp
	i := sort.Search(len(e.pending), func(i int) bool {
		return e.pending[i].ArrivalUs > r.ArrivalUs
	})
	e.pending = append(e.pending, workload.Request{})
	copy(e.pending[i+1:], e.pending[i:])
	e.pending[i] = r
	// phase accounting continues across the handoff: prefill-side
	// breakdown, then the wire time, then decode-side queueing from now
	if e.phase == nil {
		e.phase = make(map[int]*phaseAcc)
	}
	bd := exp.Phases
	bd.Add(trace.PhaseXferInst, nowUs-exp.AsOfUs)
	e.phase[r.ID] = &phaseAcc{cur: trace.PhaseQueue, sinceUs: nowUs, bd: bd}
	if exp.Preempts > 0 {
		if e.preemptN == nil {
			e.preemptN = make(map[int]int)
		}
		e.preemptN[r.ID] = exp.Preempts
	}
	if len(exp.RetryUs) > 0 {
		if e.retryUs == nil {
			e.retryUs = make(map[int][]float64)
		}
		e.retryUs[r.ID] = exp.RetryUs
	}
	if exp.Attempts > 1 {
		if e.attempts == nil {
			e.attempts = make(map[int]int)
		}
		e.attempts[r.ID] = exp.Attempts
	}
	if exp.Sess != nil {
		exp.Sess.rebind(e)
	}
	e.emit(trace.Event{Kind: trace.KindOpen, TimeUs: nowUs, Seq: r.ID})
	return nil
}

// admitAdopted admits a shipped prefilled sequence: instead of
// registering fresh tiers and re-running the prompt, the manager adopts
// the exported page shape and generation resumes where the prefill side
// stopped. Returns false (no error) when pages are not yet available —
// the sequence stays queued and retries after a completion, exactly like
// a blocked swap-in.
func (e *Engine) admitAdopted(r workload.Request, exp *KVExport) (bool, error) {
	st := &seqState{
		req:        r,
		promptDone: true,
		generated:  exp.Generated,
		adoptedGen: exp.Generated,
		hiF:        exp.HiF,
		loF:        exp.LoF,
		winFill:    exp.WinFill,
		cached:     exp.Cached,
		firstTokUs: exp.FirstTokenUs,
		brownout:   exp.Brownout,
	}
	if st.req.GenLen > e.cfg.MaxGenLen {
		st.req.GenLen = e.cfg.MaxGenLen
	}
	needed := float64(st.req.PromptLen + st.generated + (st.req.GenLen-st.generated)/2)
	if len(e.running) > 0 && !e.fitsTokens(needed) {
		return false, nil
	}
	if e.mgr != nil {
		ca, ok := e.mgr.(countAdopter)
		if !ok {
			return false, fmt.Errorf("serving: admitAdopted %d: store cannot adopt counts", r.ID)
		}
		if _, err := ca.AdoptCounts(r.ID, exp.Counts); err != nil {
			if len(e.running) > 0 {
				return false, nil // page pressure: retry after a completion
			}
			return false, fmt.Errorf("serving: admitAdopted %d: %w", r.ID, err)
		}
	}
	// the landed transfer's device DMA contends with the next step's
	// compute up to the NIC overlap fraction (ingest stall)
	e.pendingNIC += gpusim.Micros(exp.XferUs)
	e.pending = e.pending[1:]
	delete(e.adopts, r.ID)
	e.running = append(e.running, st)
	e.phaseTo(r.ID, trace.PhaseDecode)
	e.emit(trace.Event{Kind: trace.KindAdmit, TimeUs: float64(e.clock), Seq: r.ID, Note: "adopt"})
	return true, nil
}
