package serving

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"diffkv/internal/baselines"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

func newLoopEngine(t *testing.T, seed uint64) *Engine {
	t.Helper()
	return newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsVLLM, Seed: seed,
	})
}

// TestLoopConcurrentOpen is the concurrency contract of the redesigned
// driving API: many goroutines call Open against one loop at once (the
// engine itself is single-goroutine), every session completes, and the
// engine leaks nothing. Run under -race this also proves the loop's
// lock actually covers the engine.
func TestLoopConcurrentOpen(t *testing.T) {
	l := NewLoop(newLoopEngine(t, 7), LoopConfig{})
	const n = 24
	var wg sync.WaitGroup
	sessions := make([]*Session, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := l.Open(context.Background(),
				workload.Request{PromptLen: 128 + 16*i, GenLen: 8 + i}, nil)
			sessions[i], errs[i] = s, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	for i, s := range sessions {
		select {
		case <-s.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("session %d never completed", i)
		}
		cp, err := s.Completion()
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if cp.Req.GenLen != 8+i {
			t.Fatalf("session %d: wrong completion %+v", i, cp)
		}
	}
	if err := l.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := l.Metrics()
	if m.Opened != n || m.Completed != n || m.Driver.OpenSessions != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestLoopMatchesStepDriven pins loop determinism: the same request
// stream produces bit-identical completion timestamps whether the
// engine is driven by the caller-owned Step/Drain shims or by a paced
// background Loop. Arrivals sit far enough in simulated future (with
// TimeScale pacing holding the first step back) that every Open lands
// before the loop executes anything — the exact setup a batch Submit
// models.
func TestLoopMatchesStepDriven(t *testing.T) {
	reqs := make([]workload.Request, 8)
	for i := range reqs {
		reqs[i] = workload.Request{
			ID: 300 + i, ArrivalUs: 1e5 + float64(i)*1e4,
			PromptLen: 256 + 32*i, GenLen: 16 + 2*i,
		}
	}

	// reference: the caller-driven Submit/Step shims
	ref := newLoopEngine(t, 9)
	want := map[int]Completion{}
	for _, r := range reqs {
		ref.Submit(r)
	}
	for ref.HasWork() {
		comps, err := ref.Step()
		if err != nil {
			t.Fatal(err)
		}
		for _, cp := range comps {
			want[cp.Req.ID] = cp
		}
	}
	if len(want) != len(reqs) {
		t.Fatalf("reference run completed %d of %d", len(want), len(reqs))
	}

	// loop-driven: first simulated step is at 1e5 us; TimeScale 1e-3
	// holds it back ~100ms of wall time, so all Opens land first
	l := NewLoop(newLoopEngine(t, 9), LoopConfig{TimeScale: 1e-3})
	var sessions []*Session
	for _, r := range reqs {
		s, err := l.Open(context.Background(), r, nil)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	for _, s := range sessions {
		select {
		case <-s.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("session %d never completed", s.ID())
		}
	}
	if err := l.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions {
		cp, err := s.Completion()
		if err != nil {
			t.Fatal(err)
		}
		w := want[s.ID()]
		if cp.FirstTokenUs != w.FirstTokenUs || cp.DoneUs != w.DoneUs {
			t.Fatalf("request %d: loop-driven timestamps diverge: got (%v, %v) want (%v, %v)",
				s.ID(), cp.FirstTokenUs, cp.DoneUs, w.FirstTokenUs, w.DoneUs)
		}
	}
}

// TestLoopShutdownDrains: Shutdown finishes in-flight sessions, then
// rejects new Opens with ErrLoopShutdown.
func TestLoopShutdownDrains(t *testing.T) {
	l := NewLoop(newLoopEngine(t, 11), LoopConfig{})
	s, err := l.Open(context.Background(), workload.Request{PromptLen: 512, GenLen: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("Shutdown returned before the in-flight session drained")
	}
	if _, err := s.Completion(); err != nil {
		t.Fatalf("session should have completed: %v", err)
	}
	if _, err := l.Open(context.Background(), workload.Request{PromptLen: 64, GenLen: 8}, nil); !errors.Is(err, ErrLoopShutdown) {
		t.Fatalf("Open after Shutdown: got %v, want ErrLoopShutdown", err)
	}
	// idempotent, and the terminated loop reports itself stopped
	if err := l.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m := l.Metrics(); !m.Stopped || !m.Draining {
		t.Fatalf("drained loop must report Draining and Stopped: %+v", m)
	}
}

// TestLoopShutdownDeadline: an expired context stops the loop between
// steps with work still queued, returning the context's error.
func TestLoopShutdownDeadline(t *testing.T) {
	// paced far in the future so the queued request cannot complete
	l := NewLoop(newLoopEngine(t, 13), LoopConfig{TimeScale: 10})
	if _, err := l.Open(context.Background(),
		workload.Request{ArrivalUs: 60e6, PromptLen: 256, GenLen: 512}, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown: got %v, want deadline exceeded", err)
	}
	select {
	case <-l.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("loop goroutine did not exit after forced shutdown")
	}
}

// TestLoopCancelViaContext: cancelling an Open context reaps the
// session from the loop (even while the engine is otherwise idle) and
// frees its state.
func TestLoopCancelViaContext(t *testing.T) {
	l := NewLoop(newLoopEngine(t, 15), LoopConfig{TimeScale: 10})
	ctx, cancel := context.WithCancel(context.Background())
	// arrival far in the future: the paced loop holds the request queued
	s, err := l.Open(ctx, workload.Request{ArrivalUs: 60e6, PromptLen: 256, GenLen: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-s.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("context cancellation never reaped the session")
	}
	if _, err := s.Completion(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	if err := l.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m := l.Metrics(); m.Driver.Cancelled != 1 || m.Driver.OpenSessions != 0 {
		t.Fatalf("metrics after cancel: %+v", m.Driver)
	}
}

// TestLoopPaceWait pins the pacing arithmetic: with TimeScale s, a step
// at simulated time T is not due before paceOrigin + T*s wall time, and
// a loop that has fallen behind slides its origin forward instead of
// banking the deficit.
func TestLoopPaceWait(t *testing.T) {
	now := time.Now()
	l := &Loop{cfg: LoopConfig{TimeScale: 2}, start: now, paceOrigin: now}
	// 50_000 simulated us at 2x wall = 100ms after the origin
	if w := l.paceWait(50_000); w < 80*time.Millisecond || w > 100*time.Millisecond {
		t.Fatalf("paceWait = %v, want ~100ms", w)
	}
	l.cfg.TimeScale = 0
	if w := l.paceWait(50_000); w != 0 {
		t.Fatalf("unpaced loop must never wait, got %v", w)
	}

	// behind schedule (an idle hour the simulated clock never consumed):
	// the origin slides forward so the due step runs now and the NEXT
	// simulated interval still paces — no flat-out burst from banked time
	l = &Loop{cfg: LoopConfig{TimeScale: 1}, start: now, paceOrigin: now.Add(-time.Hour)}
	if w := l.paceWait(1_000); w != 0 {
		t.Fatalf("overdue step must be due now, got %v", w)
	}
	if w := l.paceWait(101_000); w < 80*time.Millisecond || w > 100*time.Millisecond {
		t.Fatalf("post-slide pacing broken: next step 100ms of simulated time out waits %v", w)
	}
}
