package serving

// Fault tolerance: the engine-side half of the failure-recovery layer.
// The cluster (driven by an internal/faults Injector) calls Crash when
// an instance dies — GPU KV pages are lost, queued and in-flight
// requests become orphans for re-dispatch, host-tier-swapped sequences
// optionally survive as "crash insurance" — Restart when it comes back,
// and Readmit to land an orphan on a surviving instance with its
// arrival time, phase accounting and retry history intact, so latency
// metrics stay honest under churn.

import (
	"fmt"
	"sort"

	"diffkv/internal/gpusim"
	"diffkv/internal/trace"
	"diffkv/internal/workload"
)

// Orphan is one request stranded by an instance crash, carrying
// everything a surviving instance needs to resume its accounting: the
// original request (ArrivalUs preserved — TTFT/E2E include the lost
// time), the pre-crash phase breakdown closed at AsOfUs, the
// preemption/retry record, the dispatch count, and the live session
// handle to rebind (nil in batch runs).
type Orphan struct {
	Req      workload.Request
	Sess     *Session
	AsOfUs   float64 // clock at which Phases was closed (the crash)
	Phases   trace.PhaseBreakdown
	Preempts int
	RetryUs  []float64
	Attempts int // dispatches so far (>= 1)
}

// CrashReport summarizes one instance crash for the recovery layer.
type CrashReport struct {
	// Orphans are the requests stranded by the crash (pending +
	// running, plus swapped when the host tier does not survive), in
	// deterministic request-ID order.
	Orphans []Orphan
	// LostKVBytes is the GPU-resident KV footprint destroyed by the
	// crash (running sequences; swapped sequences live in host memory
	// and lose nothing).
	LostKVBytes int64
	// KeptSwapped counts sequences preserved in the host tier — they
	// resume after Restart instead of recomputing.
	KeptSwapped int
}

// xferFault consults the configured transfer-fault hook.
func (e *Engine) xferFault() bool {
	return e.cfg.XferFault != nil && e.cfg.XferFault()
}

// seqKVBytes returns the sequence's resident KV footprint: exact from
// the manager when it exposes byte accounting, otherwise estimated from
// its token count at the blended tier mix.
func (e *Engine) seqKVBytes(st *seqState) int64 {
	tokens := st.req.PromptLen + st.generated
	if e.mgr == nil {
		return int64(float64(tokens) * e.kvToken)
	}
	if bg, ok := e.mgr.(interface{ SeqKVBytes(int) (int64, error) }); ok {
		if b, err := bg.SeqKVBytes(st.req.ID); err == nil {
			return b
		}
	}
	return int64(float64(tokens) * e.blendedTokenBytes() * float64(e.headsN))
}

// orphanOut closes a request's engine-side accounting and packages it
// for re-dispatch. The session handle (if any) leaves the engine's map
// but stays alive: the cluster either rebinds it via Readmit or fails
// it terminally.
func (e *Engine) orphanOut(r workload.Request) Orphan {
	o := Orphan{Req: r, AsOfUs: float64(e.clock), Attempts: 1}
	o.Phases = e.phaseClose(r.ID)
	if n := e.attempts[r.ID]; n > 0 {
		o.Attempts = n
		delete(e.attempts, r.ID)
	}
	if n := e.preemptN[r.ID]; n > 0 {
		o.Preempts = n
		delete(e.preemptN, r.ID)
	}
	if rs := e.retryUs[r.ID]; len(rs) > 0 {
		o.RetryUs = rs
		delete(e.retryUs, r.ID)
	}
	if s, ok := e.sessions[r.ID]; ok {
		o.Sess = s
		delete(e.sessions, r.ID)
	}
	delete(e.readmitted, r.ID)
	return o
}

// Crash simulates the instance's GPU process dying at nowUs: every
// GPU-resident KV page is lost, queued and running requests are
// orphaned for the cluster to re-dispatch, and the GPU prefix cache is
// cleared (entries already spilled to the host tier survive there).
// When keepSwapped is true — a restart is coming — sequences swapped to
// host memory stay put and resume after Restart, the measurable "host
// tier as crash insurance"; otherwise their host bytes are dropped and
// they are orphaned too, their progress lost. The engine object itself
// stays alive for Restart; the cluster must not step it while down.
func (e *Engine) Crash(nowUs float64, keepSwapped bool) (CrashReport, error) {
	if t := gpusim.Micros(nowUs); t > e.clock {
		e.clock = t
	}
	e.slowFactor = 1 // a crash ends any degraded window
	var rep CrashReport

	// running sequences: count then release their (now lost) GPU pages
	for _, st := range e.running {
		rep.LostKVBytes += e.seqKVBytes(st)
		if e.mgr != nil {
			if err := e.mgr.ReleaseSequence(st.req.ID); err != nil {
				return rep, fmt.Errorf("serving: crash release seq %d: %w", st.req.ID, err)
			}
		}
		rep.Orphans = append(rep.Orphans, e.orphanOut(st.req))
	}
	e.running = nil
	for _, r := range e.pending {
		rep.Orphans = append(rep.Orphans, e.orphanOut(r))
	}
	e.pending = nil
	if keepSwapped {
		rep.KeptSwapped = len(e.swappedQ)
	} else {
		for _, st := range e.swappedQ {
			if e.tiered != nil {
				e.tiered.Drop(st.req.ID)
			}
			rep.Orphans = append(rep.Orphans, e.orphanOut(st.req))
		}
		e.swappedQ = nil
	}
	// GPU prefix-cache entries vanish with the GPU memory; host-tier
	// spills made at earlier evictions are the only copies that survive
	for g := range e.prefix {
		delete(e.prefix, g)
	}
	e.admitBlocked = false
	e.pendingXfer = 0
	e.lostKVBytes += rep.LostKVBytes
	// deterministic orphan order regardless of which structure held them
	sort.Slice(rep.Orphans, func(i, j int) bool {
		return rep.Orphans[i].Req.ID < rep.Orphans[j].Req.ID
	})
	return rep, nil
}

// Restart brings a crashed instance back at nowUs. Swapped sequences
// kept through the crash drain back in via the normal admission path —
// their next step swaps them in from host memory instead of recomputing.
func (e *Engine) Restart(nowUs float64) {
	if t := gpusim.Micros(nowUs); t > e.clock {
		e.clock = t
	}
	e.slowFactor = 1
}

// SetSlowFactor enters (factor > 1) or leaves (factor <= 1) a degraded
// window: every subsequent step's time stretches by the factor.
func (e *Engine) SetSlowFactor(factor float64) {
	if factor < 1 {
		factor = 1
	}
	e.slowFactor = factor
}

// SlowFactor returns the current step-time multiplier (1 = healthy).
func (e *Engine) SlowFactor() float64 {
	if e.slowFactor < 1 {
		return 1
	}
	return e.slowFactor
}

// SwappedIDs returns the request IDs currently swapped to the host
// tier, in queue order.
func (e *Engine) SwappedIDs() []int {
	ids := make([]int, len(e.swappedQ))
	for i, st := range e.swappedQ {
		ids[i] = st.req.ID
	}
	return ids
}

// BrownoutAdmits counts admissions made at the all-low tier.
func (e *Engine) BrownoutAdmits() int { return e.brownoutN }

// LostKVBytes is the cumulative GPU KV footprint lost to crashes.
func (e *Engine) LostKVBytes() int64 { return e.lostKVBytes }

// Readmit lands a crash orphan on this engine: the request joins the
// pending queue with its original arrival time (honest latency), its
// pre-crash phase buckets carry over with the crash-to-now gap charged
// to queueing, its retry record gains the re-dispatch timestamp, and
// its session — when present — is rebound here. nowUs is the cluster
// time of the re-dispatch; an idle engine's clock is pulled up to it so
// the request cannot be admitted before its crash was processed.
func (e *Engine) Readmit(o Orphan, nowUs float64) error {
	r := o.Req
	if _, dup := e.sessions[r.ID]; dup {
		return fmt.Errorf("serving: readmit of request %d: session already open here", r.ID)
	}
	// the engine is either idle (clock may lag the cluster) or its next
	// step is already >= nowUs (the cluster processes events in global
	// time order); only the idle case needs the clamp
	if t := gpusim.Micros(nowUs); e.clock < t && len(e.running) == 0 && len(e.swappedQ) == 0 {
		e.clock = t
	}
	i := sort.Search(len(e.pending), func(i int) bool {
		return e.pending[i].ArrivalUs > r.ArrivalUs
	})
	e.pending = append(e.pending, workload.Request{})
	copy(e.pending[i+1:], e.pending[i:])
	e.pending[i] = r

	if e.attempts == nil {
		e.attempts = make(map[int]int)
	}
	e.attempts[r.ID] = o.Attempts + 1
	if o.Preempts > 0 {
		if e.preemptN == nil {
			e.preemptN = make(map[int]int)
		}
		e.preemptN[r.ID] = o.Preempts
		if e.readmitted == nil {
			e.readmitted = make(map[int]bool)
		}
		e.readmitted[r.ID] = true
	}
	if e.retryUs == nil {
		e.retryUs = make(map[int][]float64)
	}
	e.retryUs[r.ID] = append(o.RetryUs, nowUs)
	if e.phase == nil {
		e.phase = make(map[int]*phaseAcc)
	}
	// pre-crash buckets carried over; the time from crash to (eventual)
	// re-admission here all counts as queueing
	e.phase[r.ID] = &phaseAcc{cur: trace.PhaseQueue, sinceUs: o.AsOfUs, bd: o.Phases}
	if o.Sess != nil {
		o.Sess.rebind(e)
	}
	return nil
}
