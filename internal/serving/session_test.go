package serving

import (
	"context"
	"errors"
	"testing"

	"diffkv/internal/baselines"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

func managerCfg(seed uint64) Config {
	return Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
		HiFrac: 0.25, LoFrac: 0.3, Seed: seed,
	}
}

// TestSessionStreamsTokens drives two sessions to completion and checks
// the streaming contract: one First update at the TTFT point, then one
// update per generated token with monotonic counts and timestamps,
// ending exactly at GenLen, with Done observable and the completion
// matching what Step returned.
func TestSessionStreamsTokens(t *testing.T) {
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsVLLM, Seed: 21,
	})
	type stream struct {
		first  int
		tokens []int
	}
	streams := map[int]*stream{}
	var sessions []*Session
	for i := 0; i < 2; i++ {
		s, err := e.Open(context.Background(),
			workload.Request{ID: 100 + i, PromptLen: 256, GenLen: 24})
		if err != nil {
			t.Fatal(err)
		}
		rec := &stream{}
		streams[s.ID()] = rec
		s.OnToken(func(u TokenUpdate) {
			if u.First {
				rec.first++
				if len(rec.tokens) != 0 {
					t.Fatalf("seq %d: First after tokens", u.Seq)
				}
				return
			}
			if n := len(rec.tokens); n > 0 && u.Generated != rec.tokens[n-1]+1 {
				t.Fatalf("seq %d: token jump %d -> %d", u.Seq, rec.tokens[n-1], u.Generated)
			}
			rec.tokens = append(rec.tokens, u.Generated)
		})
		sessions = append(sessions, s)
	}
	if e.OpenSessions() != 2 {
		t.Fatalf("open sessions = %d", e.OpenSessions())
	}
	if err := e.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions {
		select {
		case <-s.Done():
		default:
			t.Fatalf("session %d not done after drain", s.ID())
		}
		cp, err := s.Completion()
		if err != nil {
			t.Fatal(err)
		}
		rec := streams[s.ID()]
		if rec.first != 1 {
			t.Fatalf("seq %d: %d First updates", s.ID(), rec.first)
		}
		if len(rec.tokens) != 24 || rec.tokens[23] != 24 {
			t.Fatalf("seq %d: token stream %v", s.ID(), rec.tokens)
		}
		if s.Generated() != 24 || cp.Req.GenLen != 24 {
			t.Fatalf("seq %d: generated %d", s.ID(), s.Generated())
		}
		if cp.FirstTokenUs <= 0 || cp.DoneUs < cp.FirstTokenUs {
			t.Fatalf("seq %d: bad timestamps %+v", s.ID(), cp)
		}
	}
	if e.OpenSessions() != 0 {
		t.Fatalf("sessions leaked: %d", e.OpenSessions())
	}
}

// TestSessionCancelFreesPages is the page-count canary of the
// cancellation contract: cancelling a running session must return its KV
// pages to the pool immediately, and the remaining sessions must drain
// to a fully free pool.
func TestSessionCancelFreesPages(t *testing.T) {
	e := newEngine(t, managerCfg(31))
	var sessions []*Session
	for i := 0; i < 4; i++ {
		s, err := e.Open(context.Background(),
			workload.Request{ID: 200 + i, PromptLen: 1024, GenLen: 256})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	// step until every prompt has run (all sequences hold pages)
	for e.RunningCount() < 4 {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	before := e.mgr.UsedPages()
	if before == 0 {
		t.Fatal("no pages in use after prompt steps")
	}
	sessions[0].Cancel()
	after := e.mgr.UsedPages()
	if after >= before {
		t.Fatalf("cancel freed no pages: %d -> %d", before, after)
	}
	if !sessions[0].Finished() {
		t.Fatal("cancelled session not finished")
	}
	if _, err := sessions[0].Completion(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled session error = %v", err)
	}
	if err := e.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.mgr.UsedPages() != 0 {
		t.Fatalf("pages leaked after drain: %d", e.mgr.UsedPages())
	}
	if e.CancelledSessions() != 1 {
		t.Fatalf("cancelled count = %d", e.CancelledSessions())
	}
	for _, s := range sessions[1:] {
		if _, err := s.Completion(); err != nil {
			t.Fatalf("surviving session failed: %v", err)
		}
	}
}

// TestSessionCancelSwappedFreesHostBytes cancels a session whose
// sequence is swapped out: its pinned host-tier bytes must be released
// immediately, not when it would have swapped back in.
func TestSessionCancelSwappedFreesHostBytes(t *testing.T) {
	cfg := managerCfg(11)
	cfg.MemoryReserve = 0.985
	cfg.MaxGenLen = 2048
	cfg.PreemptPolicy = "swap"
	cfg.HostMemoryBytes = 2 << 30
	e := newEngine(t, cfg)
	var sessions []*Session
	for i, r := range workload.NewRequestGen(workload.MATH, 2048, 11).CoTBatch(20) {
		r.ID = 300 + i
		s, err := e.Open(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	// step until something is swapped out
	for e.SwappedCount() == 0 {
		if !e.HasWork() {
			t.Fatal("run drained without any swap-out; oversubscription recipe broken")
		}
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	victimID := e.swappedQ[0].req.ID
	hostBefore := e.tiered.HostUsedBytes()
	if hostBefore == 0 {
		t.Fatal("swap-out left no host bytes")
	}
	var victim *Session
	for _, s := range sessions {
		if s.ID() == victimID {
			victim = s
		}
	}
	victim.Cancel()
	if e.tiered.Swapped(victimID) {
		t.Fatal("cancelled sequence still host-resident")
	}
	if e.tiered.HostUsedBytes() >= hostBefore {
		t.Fatalf("cancel freed no host bytes: %d -> %d", hostBefore, e.tiered.HostUsedBytes())
	}
	if err := e.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.mgr.UsedPages() != 0 || e.tiered.HostUsedBytes() != 0 {
		t.Fatalf("leak after drain: %d pages, %d host bytes",
			e.mgr.UsedPages(), e.tiered.HostUsedBytes())
	}
	done := 0
	for _, s := range sessions {
		if _, err := s.Completion(); err == nil {
			done++
		}
	}
	if done != len(sessions)-1 {
		t.Fatalf("completed %d of %d surviving sessions", done, len(sessions)-1)
	}
}

// TestSessionContextCancellation covers the ctx path: a session whose
// context dies is reaped at the next step with its queue slot freed, and
// DrainContext itself respects its own context's deadline.
func TestSessionContextCancellation(t *testing.T) {
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsVLLM, Seed: 7,
	})
	ctx, cancel := context.WithCancel(context.Background())
	doomed, err := e.Open(ctx, workload.Request{PromptLen: 128, GenLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	if doomed.ID() < sessionAutoIDBase {
		t.Fatalf("auto-assigned ID %d not in session range", doomed.ID())
	}
	alive, err := e.Open(context.Background(), workload.Request{PromptLen: 128, GenLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := e.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := doomed.Completion(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("ctx-cancelled session error = %v", err)
	}
	if _, err := alive.Completion(); err != nil {
		t.Fatalf("unrelated session failed: %v", err)
	}

	// deadline on the drain itself: expired context stops stepping
	e2 := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsVLLM, Seed: 8,
	})
	if _, err := e2.Open(context.Background(), workload.Request{PromptLen: 128, GenLen: 64}); err != nil {
		t.Fatal(err)
	}
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := e2.DrainContext(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("DrainContext with dead context = %v", err)
	}
	if !e2.HasWork() {
		t.Fatal("deadline drain should leave work pending")
	}
}

// TestSessionCancelFromCallback cancels a session from inside its own
// token callback (mid-step): the cancel must be deferred to the step
// boundary, then free state exactly like an idle-time cancel.
func TestSessionCancelFromCallback(t *testing.T) {
	e := newEngine(t, managerCfg(13))
	s, err := e.Open(context.Background(), workload.Request{PromptLen: 512, GenLen: 128})
	if err != nil {
		t.Fatal(err)
	}
	other, err := e.Open(context.Background(), workload.Request{PromptLen: 512, GenLen: 32})
	if err != nil {
		t.Fatal(err)
	}
	s.OnToken(func(u TokenUpdate) {
		if u.Generated == 5 {
			s.Cancel()
		}
	})
	if err := e.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Completion(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("callback-cancelled session error = %v", err)
	}
	if s.Generated() != 5 {
		t.Fatalf("generated %d tokens after cancel at 5", s.Generated())
	}
	if _, err := other.Completion(); err != nil {
		t.Fatalf("other session failed: %v", err)
	}
	if e.mgr.UsedPages() != 0 {
		t.Fatalf("pages leaked: %d", e.mgr.UsedPages())
	}
}

// TestSessionSingleFirstUnderPreemption runs sessions through a
// recompute-preemption-heavy engine: a preempted request re-runs its
// prompt on a fresh seqState, but each session must still see exactly
// one First update and a monotonic token stream.
func TestSessionSingleFirstUnderPreemption(t *testing.T) {
	cfg := managerCfg(11)
	cfg.MemoryReserve = 0.985
	cfg.MaxGenLen = 2048
	e := newEngine(t, cfg)
	firsts := map[int]int{}
	lastTok := map[int]int{}
	var sessions []*Session
	for i, r := range workload.NewRequestGen(workload.MATH, 2048, 11).CoTBatch(20) {
		r.ID = 400 + i
		s, err := e.Open(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		id := s.ID()
		s.OnToken(func(u TokenUpdate) {
			if u.First {
				firsts[id]++
				return
			}
			if u.Generated <= lastTok[id] {
				t.Fatalf("seq %d: non-monotonic token stream %d after %d", id, u.Generated, lastTok[id])
			}
			lastTok[id] = u.Generated
		})
		sessions = append(sessions, s)
	}
	if err := e.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.preemptTotal == 0 {
		t.Fatal("workload not preemption-heavy; test proves nothing")
	}
	for _, s := range sessions {
		if _, err := s.Completion(); err != nil {
			t.Fatal(err)
		}
		if n := firsts[s.ID()]; n != 1 {
			t.Fatalf("seq %d: %d First updates under preemption", s.ID(), n)
		}
	}
}

// TestSessionDuplicateAndInvalid covers Open's argument contract.
func TestSessionDuplicateAndInvalid(t *testing.T) {
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsVLLM, Seed: 9,
	})
	if _, err := e.Open(context.Background(), workload.Request{ID: 7, PromptLen: 64, GenLen: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Open(context.Background(), workload.Request{ID: 7, PromptLen: 64, GenLen: 8}); err == nil {
		t.Fatal("duplicate session ID must error")
	}
	if _, err := e.Open(context.Background(), workload.Request{ID: 8, PromptLen: 64}); err == nil {
		t.Fatal("zero GenLen must error")
	}
}
