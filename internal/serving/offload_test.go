package serving

import (
	"testing"

	"diffkv/internal/baselines"
	"diffkv/internal/offload"
	"diffkv/internal/synth"
	"diffkv/internal/trace"
	"diffkv/internal/workload"
)

// oversubCfg builds a manager-mode config whose KV budget forces
// generation-phase preemption pressure at test scale (page-aware admission
// queues prompts that cannot fit, so pressure comes from KV growth during
// long generations).
func oversubCfg(policy string, hostBytes int64, seed uint64) Config {
	return Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
		HiFrac: 0.25, LoFrac: 0.3, Seed: seed,
		MemoryReserve:   0.985,
		MaxGenLen:       2048,
		PreemptPolicy:   policy,
		HostMemoryBytes: hostBytes,
	}
}

// cotReqs samples a closed-loop chain-of-thought batch: near-limit
// generations grow the KV cache mid-flight, which is what drives
// generation-phase preemptions.
func cotReqs(n int, seed uint64) []workload.Request {
	return workload.NewRequestGen(workload.MATH, 2048, seed).CoTBatch(n)
}

// TestSwapPreemptionCompletesAll drives the swap recovery policy through
// heavy oversubscription: every request completes, no pages leak, the host
// tier fully drains, and swap activity is visible in Result and the trace.
func TestSwapPreemptionCompletesAll(t *testing.T) {
	col := trace.NewCollector(0)
	cfg := oversubCfg(offload.PolicySwap, 2<<30, 11)
	cfg.Tracer = col
	e := newEngine(t, cfg)
	reqs := cotReqs(20, 11)
	res, err := e.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(reqs) {
		t.Fatalf("completed %d of %d under swap preemption", res.Completed, len(reqs))
	}
	if e.mgr.UsedPages() != 0 {
		t.Fatalf("pages leaked: %d", e.mgr.UsedPages())
	}
	if e.SwappedCount() != 0 || e.tiered.HostUsedBytes() != 0 {
		t.Fatalf("host tier not drained: %d seqs, %d bytes", e.SwappedCount(), e.tiered.HostUsedBytes())
	}
	m := res.Offload
	if m.SwapOuts == 0 {
		t.Fatal("oversubscribed run performed no swap-outs")
	}
	if m.SwapIns != m.SwapOuts {
		t.Fatalf("swap-ins %d != swap-outs %d after drain", m.SwapIns, m.SwapOuts)
	}
	if m.SwapOutBytes <= 0 || m.SwapInBytes != m.SwapOutBytes {
		t.Fatalf("swap byte accounting: out %d in %d", m.SwapOutBytes, m.SwapInBytes)
	}
	// prompt-phase preemptions stay recompute (a failed prompt allocation
	// leaves nothing to swap), so swaps are a subset of preemptions
	if res.Preemptions < m.SwapOuts {
		t.Fatalf("preemptions %d < swap-outs %d", res.Preemptions, m.SwapOuts)
	}
	if res.OffloadTransferSeconds <= 0 {
		t.Fatal("swap traffic must charge PCIe transfer time")
	}
	if res.OffloadStallSeconds > res.OffloadTransferSeconds {
		t.Fatalf("stall %.6fs exceeds raw transfer %.6fs",
			res.OffloadStallSeconds, res.OffloadTransferSeconds)
	}
	s := col.Summarize()
	if s.Counts[trace.KindSwapOut] != m.SwapOuts || s.Counts[trace.KindSwapIn] != m.SwapIns {
		t.Fatalf("trace swap events (%d,%d) != metrics (%d,%d)",
			s.Counts[trace.KindSwapOut], s.Counts[trace.KindSwapIn], m.SwapOuts, m.SwapIns)
	}
}

// TestSwapBeatsRecomputeGoodput pins the headline claim: on a
// preemption-heavy workload, swap recovery preserves generated work that
// recompute throws away, so useful-token goodput is strictly higher.
func TestSwapBeatsRecomputeGoodput(t *testing.T) {
	reqs := cotReqs(20, 11)
	run := func(policy string, host int64) Result {
		e := newEngine(t, oversubCfg(policy, host, 11))
		res, err := e.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != len(reqs) {
			t.Fatalf("%s: completed %d of %d", policy, res.Completed, len(reqs))
		}
		if res.Preemptions == 0 {
			t.Fatalf("%s: workload not preemption-heavy", policy)
		}
		return res
	}
	rec := run(offload.PolicyRecompute, 0)
	swp := run(offload.PolicySwap, 2<<30)
	if swp.GoodputTokensPerSec <= rec.GoodputTokensPerSec {
		t.Fatalf("swap goodput %.0f tok/s must beat recompute %.0f tok/s",
			swp.GoodputTokensPerSec, rec.GoodputTokensPerSec)
	}
}

// TestCompletionPreemptionAccounting verifies the satellite fix: every
// completed request carries its preemption count and one retry timestamp
// per recovery, under both recompute and swap policies.
func TestCompletionPreemptionAccounting(t *testing.T) {
	for _, policy := range []string{offload.PolicyRecompute, offload.PolicySwap} {
		var host int64
		if policy != offload.PolicyRecompute {
			host = 2 << 30
		}
		e := newEngine(t, oversubCfg(policy, host, 13))
		for _, r := range cotReqs(16, 13) {
			e.Submit(r)
		}
		var comps []Completion
		for e.HasWork() {
			done, err := e.Step()
			if err != nil {
				t.Fatal(err)
			}
			comps = append(comps, done...)
		}
		res := e.Result()
		totalPre := 0
		for _, cp := range comps {
			if cp.Preemptions != len(cp.RetryUs) {
				t.Fatalf("%s: req %d has %d preemptions but %d retries",
					policy, cp.Req.ID, cp.Preemptions, len(cp.RetryUs))
			}
			for _, rt := range cp.RetryUs {
				if rt < cp.Req.ArrivalUs || rt > cp.DoneUs {
					t.Fatalf("%s: req %d retry at %v outside [%v,%v]",
						policy, cp.Req.ID, rt, cp.Req.ArrivalUs, cp.DoneUs)
				}
			}
			totalPre += cp.Preemptions
		}
		if totalPre == 0 {
			t.Fatalf("%s: no preemptions recorded on an oversubscribed run", policy)
		}
		if totalPre != res.Preemptions {
			t.Fatalf("%s: per-request preemptions %d != engine total %d",
				policy, totalPre, res.Preemptions)
		}
	}
}

// TestCompressSwapFewerBytesServing asserts the compress-deeper recovery
// moves fewer bytes than plain swap on the same workload, paying compressor
// time instead.
func TestCompressSwapFewerBytesServing(t *testing.T) {
	reqs := cotReqs(16, 17)
	run := func(policy string) Result {
		e := newEngine(t, oversubCfg(policy, 2<<30, 17))
		res, err := e.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Offload.SwapOuts == 0 {
			t.Fatalf("%s: no swaps on oversubscribed run", policy)
		}
		return res
	}
	plain := run(offload.PolicySwap)
	deep := run(offload.PolicyCompressSwap)
	plainPer := float64(plain.Offload.SwapOutBytes) / float64(plain.Offload.SwapOuts)
	deepPer := float64(deep.Offload.SwapOutBytes) / float64(deep.Offload.SwapOuts)
	if deepPer >= plainPer {
		t.Fatalf("compress-swap moves %.0f B/swap, plain swap %.0f B/swap — deeper must be smaller",
			deepPer, plainPer)
	}
}

// TestHostPrefixSpillover exercises the host prefix tier: a group evicted
// from the GPU prefix cache spills to host memory and serves a later
// admission as a host-tier hit.
func TestHostPrefixSpillover(t *testing.T) {
	cfg := Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
		HiFrac: 0.2, LoFrac: 0.25, Seed: 19,
		PrefixCacheGroups: 1, // only one group fits on the GPU
		HostMemoryBytes:   2 << 30,
	}
	col := trace.NewCollector(0)
	cfg.Tracer = col
	e := newEngine(t, cfg)
	mk := func(id, group int, at float64) workload.Request {
		return workload.Request{
			ID: id, ArrivalUs: at, PromptLen: 1024, GenLen: 32,
			PrefixGroup: group, PrefixLen: 512,
		}
	}
	// g1 warms, g2 evicts it (spill), then g1 returns: host hit
	reqs := []workload.Request{
		mk(1, 1, 0), mk(2, 2, 30e6), mk(3, 1, 60e6),
	}
	var comps []Completion
	for _, r := range reqs {
		e.Submit(r)
	}
	for e.HasWork() {
		done, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, done...)
	}
	res := e.Result()
	if res.Offload.PrefixSpills == 0 {
		t.Fatal("evicted prefix group did not spill to the host tier")
	}
	if res.Offload.PrefixHits == 0 || res.Offload.PrefixHitTokens == 0 {
		t.Fatalf("no host prefix hits recorded: %+v", res.Offload)
	}
	if col.Summarize().Counts[trace.KindHostPrefixHit] != res.Offload.PrefixHits {
		t.Fatal("host prefix hits missing from trace")
	}
	// the returning g1 request must have been served its cached prefix
	var got bool
	for _, cp := range comps {
		if cp.Req.ID == 3 && cp.CachedPrefixTokens > 0 {
			got = true
		}
	}
	if !got {
		t.Fatal("host-tier prefix hit did not shorten the returning prompt")
	}
}

// TestOffloadConfigValidation pins the config contract: swap policies
// require the manager and a host tier.
func TestOffloadConfigValidation(t *testing.T) {
	bad := []Config{
		{Model: synth.Llama3_8B, Cluster: cluster(1), Traits: baselines.TraitsVLLM,
			PreemptPolicy: offload.PolicySwap},
		{Model: synth.Llama3_8B, Cluster: cluster(1), Traits: baselines.TraitsVLLM,
			HostMemoryBytes: 1 << 30},
		{Model: synth.Llama3_8B, Cluster: cluster(1), Traits: baselines.TraitsDiffKV(0.3),
			UseManager: true, PreemptPolicy: "teleport", HostMemoryBytes: 1 << 30},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(cfg); err == nil {
			t.Fatalf("config %d should have been rejected", i)
		}
	}
}
