package serving

import (
	"context"
	"errors"
	"sync"
	"time"

	"diffkv/internal/gpusim"
	"diffkv/internal/stats"
	"diffkv/internal/telemetry"
	"diffkv/internal/workload"
)

// ErrLoopShutdown is returned by Loop.Open once Shutdown has begun: the
// loop finishes in-flight sessions but accepts no new work.
var ErrLoopShutdown = errors.New("serving: loop shutting down")

// Driver is the steppable surface Loop drives: a single Engine or a
// cluster.Cluster (which embeds N engines behind a router). A Driver is
// single-goroutine like the engines themselves — the Loop serializes all
// access behind its own mutex, which is what makes Open safe to call from
// many goroutines at once.
type Driver interface {
	// Open submits a request and returns its session handle (engine
	// semantics; cluster drivers may return ErrAllSaturated-style
	// admission errors).
	Open(ctx context.Context, r workload.Request) (*Session, error)
	// Step runs one scheduler iteration and returns the requests it
	// completed; with no due work it is a cheap no-op returning (nil, nil).
	Step() ([]Completion, error)
	// NextTime reports the simulated time of the next step, false when
	// the driver has no work.
	NextTime() (gpusim.Micros, bool)
	// HasWork reports whether any requests are queued, running or swapped.
	HasWork() bool
	// ReapSessions frees the state of context-cancelled sessions so an
	// idle driver still observes cancellations.
	ReapSessions()
	// Stats snapshots driver-level serving counters for observability
	// (the gateway's /metrics endpoint).
	Stats() DriverStats
}

// DriverStats is a driver-level counter snapshot: the union of the gauges
// a single engine and a cluster can report, with fields the driver does
// not track left zero.
type DriverStats struct {
	// Instances is 1 for an engine, N for a cluster.
	Instances int
	// QueueDepth / Running / Swapped / OpenSessions describe in-flight
	// load summed over instances.
	QueueDepth   int
	Running      int
	Swapped      int
	OpenSessions int
	// Completed / Cancelled / Rejected / Preemptions are lifetime
	// counters (Rejected is cluster admission shedding; 0 for engines).
	Completed   int
	Cancelled   int
	Rejected    int
	Preemptions int
	// Fault-recovery lifetime counters (all zero without fault
	// injection). Failed counts requests terminally failed after
	// exhausting their crash re-dispatch budget; Redispatches counts
	// orphan re-dispatches to surviving instances; Crashes / Restarts
	// count instance fault transitions; LostKVBytes is the GPU KV
	// footprint destroyed by crashes; SwapRecovered counts sequences the
	// host tier carried through a crash; BrownoutAdmits counts
	// admissions forced to the all-low tier under queue pressure.
	Failed         int
	Redispatches   int
	Crashes        int
	Restarts       int
	LostKVBytes    int64
	SwapRecovered  int
	BrownoutAdmits int
	// InstancesUp counts instances currently not down (equals Instances
	// without fault injection).
	InstancesUp int
	// ClockUs is the latest simulated clock across instances.
	ClockUs float64
	// ThroughputTokensPerSec / GoodputTokensPerSec are simulated-time
	// token rates (goodput counts completed requests' tokens only).
	ThroughputTokensPerSec float64
	GoodputTokensPerSec    float64
	// KV page-pool occupancy summed over manager-mode instances.
	FreeKVPages int
	UsedKVPages int
	// Host-tier offload traffic summed over instances.
	SwapOutBytes   int64
	SwapInBytes    int64
	HostPrefixHits int
	// Disaggregated prefill/decode handoff traffic (all zero without
	// disaggregation): KVTransfers counts prefill→decode shipments,
	// KVBytesShipped their compressed payload bytes on the wire, and
	// KVShipLinks the per-(from,to) instance-pair breakdown.
	KVTransfers    int
	KVBytesShipped int64
	KVShipLinks    []KVLink
	// PerInstance breaks the load gauges down per serving instance (one
	// entry for an engine, N for a cluster) so a scrape can tell a hot
	// instance from a balanced fleet.
	PerInstance []InstanceStats
}

// InstanceStats is one serving instance's share of the load gauges.
type InstanceStats struct {
	// Inst is the 1-based instance tag (matching trace.Event.Inst in
	// cluster runs).
	Inst        int
	QueueDepth  int
	Running     int
	Swapped     int
	FreeKVPages int
	UsedKVPages int
	// Health is the instance's fault-injection state: "healthy",
	// "degraded" (transient slowdown) or "down" (crashed, awaiting
	// restart). Always "healthy" without fault injection.
	Health string
	// Redispatched counts crash orphans this instance accepted.
	Redispatched int
	// ResidentTokens / SwappedTokens are the GPU-resident and host-tier
	// KV token footprints; TokenCapacity is the whole-pool token budget
	// (Engine.TotalTokenCapacity). Together they feed the saturation
	// analyzer: demand = resident + swapped + queued×avg-prompt against
	// capacity.
	ResidentTokens int
	SwappedTokens  int
	TokenCapacity  float64
	// Per-instance lifetime counters for {inst}-labelled exposition.
	Preemptions  int
	SwapOutBytes int64
	SwapInBytes  int64
	// Role is the instance's disaggregation pool ("prefill", "decode" or
	// "mixed"); empty without disaggregation.
	Role string
}

// KVLink is one directed instance pair's lifetime disaggregated KV
// shipment traffic (instance tags are 1-based, matching trace events).
type KVLink struct {
	From, To  int
	Bytes     int64
	Transfers int
}

// LoopConfig parameterizes a Loop.
type LoopConfig struct {
	// TimeScale maps simulated time onto wall time: a step scheduled at
	// simulated time T does not execute before the loop's start plus
	// T*TimeScale wall time. 1.0 paces the simulation to real time, 0.1
	// runs it 10x faster than real time, and 0 (the default) runs flat
	// out — steps execute as fast as the host allows.
	TimeScale float64
	// Poll is the idle wakeup interval: how often an idle (or pacing)
	// loop re-checks for new work and reaps context-cancelled sessions.
	// Opens wake the loop immediately; Poll only bounds the latency of
	// external context cancellations. Default 2ms.
	Poll time.Duration
	// Telemetry, when set, receives opens, completion latencies and
	// sim-time cadence samples from the loop. Attach a Center to exactly
	// one layer — the Loop here, or cluster.Config.Telemetry for batch
	// runs driven without a Loop — or completions are double-counted.
	Telemetry *telemetry.Center
}

// LatencyStats summarizes a latency distribution in seconds. Mean is
// exact over the loop's lifetime; the quantiles are computed over the
// most recent loopLatencyWindow completions, so an always-on server's
// memory and scrape cost stay bounded.
type LatencyStats struct {
	P50, P95, P99, Mean float64
}

// loopLatencyWindow bounds the per-distribution sample retention.
const loopLatencyWindow = 16384

// latencyAcc accumulates one latency distribution: an exact running
// mean plus a ring of recent samples for quantiles.
type latencyAcc struct {
	ring  []float64
	next  int
	count int
	sum   float64
}

func (a *latencyAcc) add(v float64) {
	a.sum += v
	a.count++
	if len(a.ring) < loopLatencyWindow {
		a.ring = append(a.ring, v)
		return
	}
	a.ring[a.next] = v
	a.next = (a.next + 1) % loopLatencyWindow
}

func (a *latencyAcc) stats() LatencyStats {
	if a.count == 0 {
		return LatencyStats{}
	}
	return LatencyStats{
		P50:  stats.Quantile(a.ring, 0.50),
		P95:  stats.Quantile(a.ring, 0.95),
		P99:  stats.Quantile(a.ring, 0.99),
		Mean: a.sum / float64(a.count),
	}
}

// LoopMetrics snapshots a running loop for observability: loop-level
// request latency distributions (accumulated from the completions the
// loop observed) plus the driver's own counters.
type LoopMetrics struct {
	// Opened / Completed count sessions through this loop. Steps counts
	// executed scheduler iterations.
	Opened    int
	Completed int
	Steps     int
	// UptimeSeconds is wall time since the loop started; SimSeconds the
	// simulated clock it has reached.
	UptimeSeconds float64
	SimSeconds    float64
	// Draining reports whether Shutdown has begun; Stopped whether the
	// loop goroutine has terminated (drain finished, forced stop, or a
	// driver error — see Err).
	Draining bool
	Stopped  bool
	// TTFT / TPOT / E2E are per-completion latency distributions in
	// seconds (TPOT per output token after the first).
	TTFT, TPOT, E2E LatencyStats
	// Phases breaks completed requests' end-to-end latency down by
	// lifecycle phase (Completion.Phases aggregated across completions).
	Phases PhaseLatencyStats
	// Driver is the wrapped driver's counter snapshot.
	Driver DriverStats
}

// PhaseLatencyStats aggregates the per-completion phase breakdowns into
// one latency distribution per lifecycle phase, in seconds. Queue /
// Prefill / Decode cover every completion; Stall / Swapped cover only
// completions that were preempted into those phases (the counts say how
// many), so their quantiles are not diluted by the zero time of
// never-preempted requests.
type PhaseLatencyStats struct {
	Queue, Prefill, Decode LatencyStats
	Stall, Swapped         LatencyStats
	StallCount             int
	SwappedCount           int
}

// Loop is the always-on driver of the serving API: it owns a Driver (an
// Engine or a cluster) and its Step cadence in a background goroutine,
// so callers interact only through goroutine-safe entry points — Open to
// submit, Metrics to observe, Shutdown to drain and stop. Steps are
// paced against simulated time when TimeScale is set; otherwise the loop
// runs the simulation flat out and sleeps only when idle.
//
// Token callbacks attached via Open run on the loop goroutine while the
// loop lock is held: they must not call back into the Loop (hand updates
// to another goroutine instead, e.g. over a buffered channel).
type Loop struct {
	d   Driver
	cfg LoopConfig

	mu       sync.Mutex
	draining bool // Shutdown called: reject Opens, drain, then stop
	stopped  bool // terminal: loop goroutine exits at next wakeup
	failed   error

	opened    int
	completed int
	steps     int
	ttft      latencyAcc
	tpot      latencyAcc
	e2e       latencyAcc
	phQueue   latencyAcc
	phPrefill latencyAcc
	phDecode  latencyAcc
	phStall   latencyAcc
	phSwapped latencyAcc

	start time.Time
	// paceOrigin anchors TimeScale pacing: simulated time 0 maps to this
	// wall instant. It starts at start and slides forward whenever the
	// loop falls behind its own schedule (most importantly across idle
	// gaps — an idle hour must not bank an hour of pacing credit that
	// would make the next session stream flat out).
	paceOrigin time.Time
	wake       chan struct{} // Open/Shutdown nudge an idle or pacing loop
	done       chan struct{} // closed when the loop goroutine exits
}

// NewLoop starts a loop over the driver. The background goroutine runs
// until Shutdown (or a driver error, observable via Err / Shutdown's
// return); the caller must eventually call Shutdown to stop it.
func NewLoop(d Driver, cfg LoopConfig) *Loop {
	if cfg.Poll <= 0 {
		cfg.Poll = 2 * time.Millisecond
	}
	now := time.Now() //diffkv:allow wallclock -- Loop pacing origin: anchors TimeScale pacing and uptime to the host clock by design
	l := &Loop{
		d:          d,
		cfg:        cfg,
		start:      now,
		paceOrigin: now,
		wake:       make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	//diffkv:allow goroutine -- the Loop IS the background driver goroutine; determinism is pinned by TestLoopMatchesStepDriven
	go l.run()
	return l
}

// Open submits a request and returns its session handle. It is safe to
// call from any goroutine: the loop lock serializes it against the step
// cadence. onToken, when non-nil, is attached before the loop can take
// another step, so no token update is ever missed. Returns
// ErrLoopShutdown once Shutdown has begun; driver admission errors
// (e.g. cluster saturation) pass through unwrapped.
func (l *Loop) Open(ctx context.Context, r workload.Request, onToken func(TokenUpdate)) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.draining || l.stopped {
		return nil, ErrLoopShutdown
	}
	s, err := l.d.Open(ctx, r)
	if err != nil {
		return nil, err
	}
	if onToken != nil {
		s.OnToken(onToken)
	}
	if l.cfg.Telemetry != nil {
		l.cfg.Telemetry.RecordOpen(s.Request().PromptLen)
	}
	l.opened++
	l.wakeup()
	return s, nil
}

// Shutdown is the one graceful-drain entry point: new Opens are rejected
// immediately, in-flight sessions run to completion, and the loop
// goroutine exits. If ctx expires first, the loop stops between steps
// with unfinished work still queued and ctx's error is returned;
// otherwise Shutdown returns the loop's terminal error (nil on a clean
// drain). Shutdown is idempotent and safe from any goroutine.
func (l *Loop) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	l.mu.Lock()
	l.draining = true
	l.mu.Unlock()
	l.wakeup()
	select {
	case <-l.done:
	case <-ctx.Done():
		l.mu.Lock()
		l.stopped = true
		l.mu.Unlock()
		l.wakeup()
		<-l.done
		return ctx.Err()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Done returns a channel closed when the loop goroutine has exited.
func (l *Loop) Done() <-chan struct{} { return l.done }

// Err returns the loop's terminal error: a driver step failure that
// stopped the loop, or nil.
func (l *Loop) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Draining reports whether Shutdown has begun.
func (l *Loop) Draining() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.draining
}

// Metrics snapshots the loop and its driver. Safe from any goroutine and
// cheap enough to serve a metrics scrape.
func (l *Loop) Metrics() LoopMetrics {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := LoopMetrics{
		Opened:    l.opened,
		Completed: l.completed,
		Steps:     l.steps,
		//diffkv:allow wallclock -- uptime is an operator-facing wall-clock metric, never fed back into the sim
		UptimeSeconds: time.Since(l.start).Seconds(),
		Draining:      l.draining,
		Stopped:       l.stopped,
		TTFT:          l.ttft.stats(),
		TPOT:          l.tpot.stats(),
		E2E:           l.e2e.stats(),
		Phases: PhaseLatencyStats{
			Queue:        l.phQueue.stats(),
			Prefill:      l.phPrefill.stats(),
			Decode:       l.phDecode.stats(),
			Stall:        l.phStall.stats(),
			Swapped:      l.phSwapped.stats(),
			StallCount:   l.phStall.count,
			SwappedCount: l.phSwapped.count,
		},
		Driver: l.d.Stats(),
	}
	m.SimSeconds = m.Driver.ClockUs / 1e6
	return m
}

// run is the loop goroutine: wait for work, pace the next step against
// simulated time, step, record completions. Step reaps cancelled
// sessions itself; the loop reaps explicitly only on the two paths that
// execute no step (idle, pacing), so context cancellations are still
// observed promptly there.
func (l *Loop) run() {
	defer close(l.done)
	for {
		l.mu.Lock()
		if l.stopped {
			l.mu.Unlock()
			return
		}
		t, ok := l.d.NextTime()
		if !ok {
			l.d.ReapSessions() // ctx cancellations on an idle driver
			if l.draining {
				l.stopped = true // drain complete: the loop has terminated
				l.mu.Unlock()
				return
			}
			l.mu.Unlock()
			l.sleep(l.cfg.Poll)
			continue
		}
		if wait := l.paceWait(t); wait > 0 {
			l.d.ReapSessions() // ctx cancellations while pacing holds steps
			l.mu.Unlock()
			// sleep in Poll slices: a new Open can pull NextTime earlier
			l.sleep(min(wait, l.cfg.Poll))
			continue
		}
		comps, err := l.d.Step()
		l.steps++
		l.record(comps)
		if err != nil {
			l.failed = err
			l.stopped = true
			l.mu.Unlock()
			return
		}
		// telemetry sampling rides the step cadence at sim time: Due is a
		// cheap check, and only a due tick pays for the Stats walk
		if tc := l.cfg.Telemetry; tc != nil && tc.Due(float64(t)) {
			tc.Sample(ObservationFromStats(l.d.Stats()))
		}
		l.mu.Unlock()
	}
}

// paceWait returns how long the loop must still wait before executing a
// step scheduled at simulated time t (0 when unpaced or already due).
// When the loop has fallen behind its schedule — scheduling jitter, or
// an idle stretch whose wall time the simulated clock never consumed —
// the pacing origin slides forward to the deficit instead of banking
// it, so the next paced step is due now and later steps keep their
// simulated spacing. An idle hour therefore does not buy an hour of
// flat-out streaming.
func (l *Loop) paceWait(t gpusim.Micros) time.Duration {
	if l.cfg.TimeScale <= 0 {
		return 0
	}
	target := l.paceOrigin.Add(time.Duration(float64(t) * l.cfg.TimeScale * float64(time.Microsecond)))
	wait := time.Until(target) //diffkv:allow wallclock -- TimeScale pacing compares the sim schedule against real time by definition
	if wait < 0 {
		l.paceOrigin = l.paceOrigin.Add(-wait)
		return 0
	}
	return wait
}

// record accumulates completion latencies (called with the lock held).
func (l *Loop) record(comps []Completion) {
	for _, cp := range comps {
		l.completed++
		ttft := (cp.FirstTokenUs - cp.Req.ArrivalUs) / 1e6
		e2e := (cp.DoneUs - cp.Req.ArrivalUs) / 1e6
		var tpot float64
		if cp.Req.GenLen > 0 {
			tpot = (cp.DoneUs - cp.FirstTokenUs) / 1e6 / float64(cp.Req.GenLen)
		}
		if tc := l.cfg.Telemetry; tc != nil {
			inst := cp.Inst
			if inst == 0 {
				inst = 1 // bare engine: single-instance fleet
			}
			tc.RecordCompletion(inst, cp.DoneUs, ttft, tpot, e2e, cp.Req.GenLen)
		}
		l.ttft.add(ttft)
		if cp.Req.GenLen > 0 {
			l.tpot.add(tpot)
		}
		l.e2e.add(e2e)
		l.phQueue.add(cp.Phases.QueueUs / 1e6)
		l.phPrefill.add(cp.Phases.PrefillUs / 1e6)
		l.phDecode.add(cp.Phases.DecodeUs / 1e6)
		// preemption phases only for requests that hit them, so the
		// distributions are not diluted by zeros
		if cp.Phases.StallUs > 0 {
			l.phStall.add(cp.Phases.StallUs / 1e6)
		}
		if cp.Phases.SwappedUs > 0 {
			l.phSwapped.add(cp.Phases.SwappedUs / 1e6)
		}
	}
}

// sleep blocks for d or until the next wakeup, whichever is first.
func (l *Loop) sleep(d time.Duration) {
	t := time.NewTimer(d) //diffkv:allow wallclock -- idle/pacing sleep between steps; sim state never observes the timer
	defer t.Stop()
	select {
	case <-l.wake:
	case <-t.C:
	}
}

// wakeup nudges a sleeping loop (non-blocking; coalesces).
func (l *Loop) wakeup() {
	select {
	case l.wake <- struct{}{}: //diffkv:allow goroutine -- wake nudge to the Loop's own driver goroutine, not step-path work hand-off
	default:
	}
}

// Stats implements Driver for Engine: a single-instance counter snapshot.
func (e *Engine) Stats() DriverStats {
	r := e.Result()
	ds := DriverStats{
		Instances:              1,
		QueueDepth:             len(e.pending),
		Running:                len(e.running),
		Swapped:                len(e.swappedQ),
		OpenSessions:           e.OpenSessions(),
		Completed:              r.Completed,
		Cancelled:              e.cancelledN,
		Preemptions:            r.Preemptions,
		ClockUs:                float64(e.clock),
		ThroughputTokensPerSec: r.Throughput,
		GoodputTokensPerSec:    r.GoodputTokensPerSec,
		SwapOutBytes:           r.Offload.SwapOutBytes,
		SwapInBytes:            r.Offload.SwapInBytes,
		HostPrefixHits:         r.Offload.PrefixHits,
		LostKVBytes:            e.lostKVBytes,
		BrownoutAdmits:         e.brownoutN,
		InstancesUp:            1,
	}
	if e.mgr != nil {
		ds.FreeKVPages = e.mgr.FreePages()
		ds.UsedKVPages = e.mgr.UsedPages()
	}
	ds.PerInstance = []InstanceStats{{
		Inst:           1,
		QueueDepth:     ds.QueueDepth,
		Running:        ds.Running,
		Swapped:        ds.Swapped,
		FreeKVPages:    ds.FreeKVPages,
		UsedKVPages:    ds.UsedKVPages,
		Health:         "healthy",
		ResidentTokens: e.ResidentTokens(),
		SwappedTokens:  e.SwappedTokens(),
		TokenCapacity:  e.TotalTokenCapacity(),
		Preemptions:    ds.Preemptions,
		SwapOutBytes:   ds.SwapOutBytes,
		SwapInBytes:    ds.SwapInBytes,
	}}
	return ds
}
