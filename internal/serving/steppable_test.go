package serving

import (
	"testing"

	"diffkv/internal/baselines"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

// TestSteppableMatchesRun verifies the incremental Submit/Step/Drain API
// produces exactly the metrics the one-shot Run wrapper reports — Run is a
// thin wrapper, so any divergence means hidden state.
func TestSteppableMatchesRun(t *testing.T) {
	reqs := workload.NewRequestGen(workload.GSM8K, 512, 77).Poisson(2, 60)
	cfg := Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsVLLM, Seed: 77,
	}
	whole := newEngine(t, cfg)
	wantRes, err := whole.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	stepped := newEngine(t, cfg)
	for _, r := range reqs {
		stepped.Submit(r)
	}
	var comps []Completion
	for stepped.HasWork() {
		cs, err := stepped.Step()
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, cs...)
	}
	gotRes := stepped.Result()

	if gotRes != wantRes {
		t.Fatalf("steppable result diverges:\n got %+v\nwant %+v", gotRes, wantRes)
	}
	if len(comps) != wantRes.Completed {
		t.Fatalf("collected %d completions, want %d", len(comps), wantRes.Completed)
	}
	for _, c := range comps {
		if c.FirstTokenUs <= c.Req.ArrivalUs {
			t.Fatalf("first token before arrival: %+v", c)
		}
		if c.DoneUs < c.FirstTokenUs {
			t.Fatalf("completion before first token: %+v", c)
		}
	}
}

// TestNextTimeSemantics checks the clock the cluster event loop orders on.
func TestNextTimeSemantics(t *testing.T) {
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsVLLM, Seed: 5,
	})
	if _, ok := e.NextTime(); ok {
		t.Fatal("empty engine must report no work")
	}
	e.Submit(workload.Request{ID: 1, ArrivalUs: 5e6, PromptLen: 128, GenLen: 32})
	tm, ok := e.NextTime()
	if !ok || float64(tm) != 5e6 {
		t.Fatalf("idle engine must wake at the arrival: %v %v", tm, ok)
	}
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if e.RunningCount() != 1 || e.QueueDepth() != 0 {
		t.Fatalf("admission failed: running=%d queued=%d", e.RunningCount(), e.QueueDepth())
	}
	if e.ResidentTokens() < 128 {
		t.Fatalf("resident tokens %d, want >= prompt length", e.ResidentTokens())
	}
	if e.BusyTime() <= 0 {
		t.Fatal("step must accrue busy time")
	}
}

// TestPrefixCacheShortensPromptPhase runs the same shared-prefix sequence
// with and without the prefix cache: cached runs must spend less prompt
// time and report cached tokens on completions.
func TestPrefixCacheShortensPromptPhase(t *testing.T) {
	mkReqs := func() []workload.Request {
		var out []workload.Request
		for i := 0; i < 12; i++ {
			out = append(out, workload.Request{
				ID: i + 1, ArrivalUs: float64(i) * 4e6,
				PromptLen: 1024, GenLen: 32,
				PrefixGroup: 1, PrefixLen: 896,
			})
		}
		return out
	}
	run := func(groups int) (Result, []Completion) {
		e := newEngine(t, Config{
			Model: synth.Llama3_8B, Cluster: cluster(1),
			Traits: baselines.TraitsVLLM, Seed: 9,
			PrefixCacheGroups: groups,
		})
		for _, r := range mkReqs() {
			e.Submit(r)
		}
		var comps []Completion
		for e.HasWork() {
			cs, err := e.Step()
			if err != nil {
				t.Fatal(err)
			}
			comps = append(comps, cs...)
		}
		return e.Result(), comps
	}
	cold, coldComps := run(0)
	warm, warmComps := run(4)
	if len(coldComps) != 12 || len(warmComps) != 12 {
		t.Fatalf("completions: cold %d warm %d", len(coldComps), len(warmComps))
	}
	var cachedTok int
	for _, c := range warmComps {
		cachedTok += c.CachedPrefixTokens
	}
	// 11 of 12 requests hit the warmed prefix
	if cachedTok < 11*800 {
		t.Fatalf("cached tokens %d, want >= %d", cachedTok, 11*800)
	}
	for _, c := range coldComps {
		if c.CachedPrefixTokens != 0 {
			t.Fatal("prefix cache disabled but tokens cached")
		}
	}
	if warm.Prompt.ModelExec >= cold.Prompt.ModelExec {
		t.Fatalf("prefix cache must cut prompt execution: warm %v cold %v",
			warm.Prompt.ModelExec, cold.Prompt.ModelExec)
	}
}

// TestPrefixCacheLRUEviction verifies capacity bounds and deterministic
// LRU eviction of prefix groups.
func TestPrefixCacheLRUEviction(t *testing.T) {
	e := newEngine(t, Config{
		Model: synth.Llama3_8B, Cluster: cluster(1),
		Traits: baselines.TraitsVLLM, Seed: 3,
		PrefixCacheGroups: 2,
	})
	// three groups arrive in order; capacity 2 evicts group 1
	for g := 1; g <= 3; g++ {
		e.Submit(workload.Request{
			ID: g, ArrivalUs: float64(g) * 1e6,
			PromptLen: 512, GenLen: 16, PrefixGroup: g, PrefixLen: 384,
		})
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if e.CachedPrefixTokens(1) != 0 {
		t.Fatal("group 1 should have been LRU-evicted")
	}
	if e.CachedPrefixTokens(2) != 384 || e.CachedPrefixTokens(3) != 384 {
		t.Fatalf("groups 2/3 should be resident: %d %d",
			e.CachedPrefixTokens(2), e.CachedPrefixTokens(3))
	}
}
