package serving

import (
	"math"
	"testing"

	"diffkv/internal/offload"
	"diffkv/internal/trace"
)

// drainCompletions drives the engine to completion, returning every
// Completion it produced.
func drainCompletions(t *testing.T, e *Engine) []Completion {
	t.Helper()
	var comps []Completion
	for e.HasWork() {
		done, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, done...)
	}
	return comps
}

// The phase buckets are maintained at every scheduler transition, so
// they must sum to the end-to-end latency exactly — through swap
// preemptions included — and the span trees rebuilt from the trace
// events must agree with the engine's own accounting.
func TestPhaseBreakdownSumsToE2E(t *testing.T) {
	col := trace.NewCollector(0)
	cfg := oversubCfg(offload.PolicySwap, 2<<30, 11)
	cfg.Tracer = col
	e := newEngine(t, cfg)
	for _, r := range cotReqs(20, 11) {
		e.Submit(r)
	}
	comps := drainCompletions(t, e)
	if len(comps) != 20 {
		t.Fatalf("completed %d of 20", len(comps))
	}

	var sawSwapped bool
	byID := map[int]Completion{}
	for _, cp := range comps {
		byID[cp.Req.ID] = cp
		e2e := cp.DoneUs - cp.Req.ArrivalUs
		if diff := math.Abs(cp.Phases.TotalUs() - e2e); diff > 1 {
			t.Fatalf("req %d: phase sum %.3f != e2e %.3f (off by %.3fus)",
				cp.Req.ID, cp.Phases.TotalUs(), e2e, diff)
		}
		if cp.Phases.PrefillUs <= 0 || cp.Phases.DecodeUs <= 0 {
			t.Fatalf("req %d: prefill %.3f / decode %.3f must be positive",
				cp.Req.ID, cp.Phases.PrefillUs, cp.Phases.DecodeUs)
		}
		if cp.Phases.SwappedUs > 0 {
			sawSwapped = true
		}
		if cp.Preemptions == 0 && (cp.Phases.StallUs != 0 || cp.Phases.SwappedUs != 0) {
			t.Fatalf("req %d: preemption time without preemptions: %+v", cp.Req.ID, cp.Phases)
		}
	}
	if !sawSwapped {
		t.Fatal("oversubscribed swap run attributed no swapped time")
	}

	// the span trees rebuilt from the event stream are the same numbers
	trees := trace.BuildRequestSpans(col.Events())
	for _, rt := range trees {
		cp, ok := byID[rt.Seq]
		if !ok {
			t.Fatalf("span tree for unknown request %d", rt.Seq)
		}
		if !rt.Completed {
			t.Fatalf("req %d tree not marked completed", rt.Seq)
		}
		if diff := math.Abs(rt.Phases.TotalUs() - cp.Phases.TotalUs()); diff > 1 {
			t.Fatalf("req %d: span phases %+v disagree with engine %+v",
				rt.Seq, rt.Phases, cp.Phases)
		}
		if rt.Preemptions != cp.Preemptions {
			t.Fatalf("req %d: span preemptions %d != engine %d",
				rt.Seq, rt.Preemptions, cp.Preemptions)
		}
	}
	if len(trees) != len(comps) {
		t.Fatalf("span trees %d != completions %d", len(trees), len(comps))
	}
}

// Recompute preemption routes lost time into the stall bucket.
func TestPhaseBreakdownStallUnderRecompute(t *testing.T) {
	e := newEngine(t, oversubCfg(offload.PolicyRecompute, 0, 7))
	for _, r := range cotReqs(20, 7) {
		e.Submit(r)
	}
	comps := drainCompletions(t, e)
	var sawStall bool
	for _, cp := range comps {
		e2e := cp.DoneUs - cp.Req.ArrivalUs
		if diff := math.Abs(cp.Phases.TotalUs() - e2e); diff > 1 {
			t.Fatalf("req %d: phase sum %.3f != e2e %.3f", cp.Req.ID, cp.Phases.TotalUs(), e2e)
		}
		if cp.Phases.SwappedUs != 0 {
			t.Fatalf("req %d: swapped time without a host tier", cp.Req.ID)
		}
		if cp.Phases.StallUs > 0 {
			sawStall = true
		}
	}
	if e.Result().Preemptions == 0 {
		t.Fatal("run was not oversubscribed enough to preempt")
	}
	if !sawStall {
		t.Fatal("recompute preemptions attributed no stall time")
	}
}
