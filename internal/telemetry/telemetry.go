// Package telemetry is the cluster-level observability core: per-instance
// time-series rings sampled on a sim-time cadence, mergeable latency
// histograms, a saturation analyzer with hysteretic scale advisories,
// and multi-window SLO burn-rate alerts. Where package trace answers
// "what happened to request 17", telemetry answers "when did instance 2
// saturate, how much headroom is left, and is the TTFT SLO burning" —
// the fleet-level questions an autoscaler or an operator dashboard
// (cmd/diffkv-top) asks. All sampling is driven by the simulated clock,
// never wall time, so a seeded run produces a bit-identical alert
// timeline.
package telemetry

import (
	"math"
	"sort"
	"sync"

	"diffkv/internal/trace"
)

// Config tunes a Center. Zero values take defaults.
type Config struct {
	// SampleIntervalUs is the sim-time sampling cadence (default 1s).
	SampleIntervalUs float64
	// SeriesCapacity bounds each time-series ring (default 512).
	SeriesCapacity int
	// Tracer, when set, receives KindAlert events for advisories and SLO
	// transitions (the same collector the rest of the run traces into,
	// so alerts land in the event timeline).
	Tracer trace.Tracer
	// Saturation tunes the analyzer.
	Saturation SatConfig
	// SLOs declares the objectives to evaluate each tick.
	SLOs []SLOSpec
}

// InstanceObservation is one instance's occupancy at a sample tick.
// serving.ObservationFromStats builds these from DriverStats so
// telemetry never imports the serving package (no cycle).
type InstanceObservation struct {
	Inst           int
	QueueDepth     int
	Running        int
	Swapped        int
	FreeKVPages    int64
	UsedKVPages    int64
	ResidentTokens int64
	SwappedTokens  int64
	// MemoryTokens / ComputeTokens are the two capacity axes; capacity
	// is min of the non-zero ones (0 = unknown/unbounded axis).
	MemoryTokens  float64
	ComputeTokens float64
	// HostBytes is the KV footprint currently parked on the host tier.
	HostBytes int64
	Health    string
	// Cumulative counters for {inst}-labelled exposition.
	Preemptions  int64
	SwapOutBytes int64
	SwapInBytes  int64
}

// Observation is a whole-fleet sample at one sim instant.
type Observation struct {
	TimeUs                 float64
	ThroughputTokensPerSec float64
	GoodputTokensPerSec    float64
	InstancesUp            int
	Completed              int64
	Rejected               int64
	PerInstance            []InstanceObservation
}

// Capacity resolves the instance's token capacity:
// min(memory, compute) over the known axes.
func (o InstanceObservation) Capacity() float64 {
	switch {
	case o.MemoryTokens > 0 && o.ComputeTokens > 0:
		return math.Min(o.MemoryTokens, o.ComputeTokens)
	case o.MemoryTokens > 0:
		return o.MemoryTokens
	default:
		return o.ComputeTokens
	}
}

// Alert is one emitted advisory or SLO transition, kept in a bounded
// recent-alerts ring and mirrored as a trace.KindAlert event.
type Alert struct {
	TimeUs float64 `json:"time_us"`
	// Inst is the 1-based instance for per-instance advisories, 0 for
	// cluster-wide signals.
	Inst int `json:"inst"`
	// Note is the rendered alert, e.g. "scale_up headroom=0.082" or
	// "slo_burn ttft fast=3.10 slow=2.41".
	Note string `json:"note"`
}

const alertRingCap = 256

// ewma is a simple exponentially weighted moving average.
type ewma struct {
	v   float64
	set bool
}

func (e *ewma) add(x float64) {
	if !e.set {
		e.v, e.set = x, true
		return
	}
	e.v += 0.2 * (x - e.v)
}

// instSeries is the ring set kept per instance (and once cluster-wide).
type instSeries struct {
	queueDepth    *Series
	running       *Series
	usedKVPages   *Series
	hostBytes     *Series
	swappedTokens *Series
	tokensPerSec  *Series
	last          InstanceObservation
}

// latencySet groups the three latency histograms for one scope.
type latencySet struct {
	ttft, tpot, e2e Hist
}

func (l *latencySet) merge(o *latencySet) {
	l.ttft.Merge(&o.ttft)
	l.tpot.Merge(&o.tpot)
	l.e2e.Merge(&o.e2e)
}

// Center is the telemetry aggregation point. One Center serves one run;
// all methods are safe for concurrent use (the gateway snapshots while
// the driver samples).
type Center struct {
	mu  sync.Mutex
	cfg Config

	nextSampleUs float64
	lastObs      Observation

	inst    map[int]*instSeries
	goodput *Series
	tput    *Series

	analyzer *Analyzer
	slo      *sloEval

	perInstLat map[int]*latencySet

	avgPrompt ewma
	avgGen    ewma

	satByKey map[int]SatSample

	alerts      []Alert
	alertsStart int
	totalAlerts int64
	samples     int64
	completions int64
	opens       int64
}

// New creates a Center.
func New(cfg Config) *Center {
	if cfg.SampleIntervalUs <= 0 {
		cfg.SampleIntervalUs = 1e6
	}
	if cfg.SeriesCapacity <= 0 {
		cfg.SeriesCapacity = 512
	}
	return &Center{
		cfg:        cfg,
		inst:       map[int]*instSeries{},
		goodput:    NewSeries(cfg.SeriesCapacity),
		tput:       NewSeries(cfg.SeriesCapacity),
		analyzer:   NewAnalyzer(cfg.Saturation, cfg.SeriesCapacity),
		slo:        newSLOEval(cfg.SLOs),
		perInstLat: map[int]*latencySet{},
		satByKey:   map[int]SatSample{},
	}
}

// SampleIntervalUs reports the configured cadence.
func (c *Center) SampleIntervalUs() float64 { return c.cfg.SampleIntervalUs }

// Due reports whether a sample is owed at sim time nowUs. Drivers call
// this between steps and, when true, build an Observation and Sample it
// — keeping the expensive stats walk off the common path.
func (c *Center) Due(nowUs float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return nowUs >= c.nextSampleUs
}

// RecordOpen notes an accepted request's prompt length; the EWMA feeds
// the queued-demand term of the saturation analyzer.
func (c *Center) RecordOpen(promptTokens int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opens++
	c.avgPrompt.add(float64(promptTokens))
}

// RecordCompletion folds one finished request's latencies into the
// per-instance histograms and the SLO completion window. tpotSec may be
// 0 for single-token generations.
func (c *Center) RecordCompletion(inst int, nowUs, ttftSec, tpotSec, e2eSec float64, genTokens int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.completions++
	c.avgGen.add(float64(genTokens))
	ls := c.perInstLat[inst]
	if ls == nil {
		ls = &latencySet{}
		c.perInstLat[inst] = ls
	}
	ls.ttft.Add(ttftSec)
	if tpotSec > 0 {
		ls.tpot.Add(tpotSec)
	}
	ls.e2e.Add(e2eSec)
	c.slo.recordCompletion(nowUs, ttftSec, tpotSec, e2eSec)
}

// Sample ingests one fleet observation: updates every ring, runs the
// saturation analyzer per instance and cluster-wide, evaluates SLO burn
// rates, and emits alerts for anything that fired. Call only when Due
// returned true (calling unconditionally just burns cycles).
func (c *Center) Sample(obs Observation) {
	c.mu.Lock()
	defer c.mu.Unlock()

	c.samples++
	c.lastObs = obs
	c.nextSampleUs = obs.TimeUs + c.cfg.SampleIntervalUs

	c.goodput.Add(obs.TimeUs, obs.GoodputTokensPerSec)
	c.tput.Add(obs.TimeUs, obs.ThroughputTokensPerSec)

	avgPrompt := c.avgPrompt.v
	if !c.avgPrompt.set {
		avgPrompt = 0
	}

	var clusterCap, clusterDemand float64
	var alerts []Alert
	for _, io := range obs.PerInstance {
		s := c.inst[io.Inst]
		if s == nil {
			s = &instSeries{
				queueDepth:    NewSeries(c.cfg.SeriesCapacity),
				running:       NewSeries(c.cfg.SeriesCapacity),
				usedKVPages:   NewSeries(c.cfg.SeriesCapacity),
				hostBytes:     NewSeries(c.cfg.SeriesCapacity),
				swappedTokens: NewSeries(c.cfg.SeriesCapacity),
				tokensPerSec:  NewSeries(c.cfg.SeriesCapacity),
			}
			c.inst[io.Inst] = s
		}
		s.last = io
		s.queueDepth.Add(obs.TimeUs, float64(io.QueueDepth))
		s.running.Add(obs.TimeUs, float64(io.Running))
		s.usedKVPages.Add(obs.TimeUs, float64(io.UsedKVPages))
		s.hostBytes.Add(obs.TimeUs, float64(io.HostBytes))
		s.swappedTokens.Add(obs.TimeUs, float64(io.SwappedTokens))
		// attribute fleet throughput evenly when per-instance rate is
		// unavailable; the dashboard labels it as a fleet share
		perShare := 0.0
		if n := len(obs.PerInstance); n > 0 {
			perShare = obs.ThroughputTokensPerSec / float64(n)
		}
		s.tokensPerSec.Add(obs.TimeUs, perShare)

		capTok := io.Capacity()
		demand := float64(io.ResidentTokens+io.SwappedTokens) + float64(io.QueueDepth)*avgPrompt
		clusterCap += capTok
		clusterDemand += demand
		sat := c.analyzer.Observe(obs.TimeUs, io.Inst, Headroom(capTok, demand))
		c.satByKey[io.Inst] = sat
		if sat.Advisory != "" {
			alerts = append(alerts, Alert{TimeUs: obs.TimeUs, Inst: io.Inst, Note: renderAdvisory(sat)})
		}
	}

	clusterSat := c.analyzer.Observe(obs.TimeUs, 0, Headroom(clusterCap, clusterDemand))
	c.satByKey[0] = clusterSat
	if clusterSat.Advisory != "" {
		alerts = append(alerts, Alert{TimeUs: obs.TimeUs, Inst: 0, Note: renderAdvisory(clusterSat)})
	}

	_, fired := c.slo.evaluate(obs.TimeUs, c.goodput)
	for _, note := range fired {
		alerts = append(alerts, Alert{TimeUs: obs.TimeUs, Inst: 0, Note: note})
	}

	for _, a := range alerts {
		c.pushAlert(a)
		if c.cfg.Tracer != nil {
			c.cfg.Tracer.Emit(trace.Event{
				Kind:   trace.KindAlert,
				TimeUs: a.TimeUs,
				Inst:   a.Inst,
				Note:   a.Note,
			})
		}
	}
}

// pushAlert appends to the bounded recent-alerts ring. Caller holds mu.
func (c *Center) pushAlert(a Alert) {
	c.totalAlerts++
	if len(c.alerts) < alertRingCap {
		c.alerts = append(c.alerts, a)
		return
	}
	c.alerts[c.alertsStart] = a
	c.alertsStart = (c.alertsStart + 1) % alertRingCap
}

// Alerts returns the retained recent alerts in emission order.
func (c *Center) Alerts() []Alert {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Alert, 0, len(c.alerts))
	out = append(out, c.alerts[c.alertsStart:]...)
	out = append(out, c.alerts[:c.alertsStart]...)
	return out
}

// TotalAlerts returns how many alerts were ever emitted.
func (c *Center) TotalAlerts() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalAlerts
}

// LatencyHists returns merged cluster-wide copies of the TTFT/TPOT/E2E
// histograms — merge-of-per-instance, which is exact because every Hist
// shares the bucket layout. The metrics endpoint exposes these.
func (c *Center) LatencyHists() (ttft, tpot, e2e Hist) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Sorted instance order keeps the merged float sums bit-identical
	// between runs (same reason as Center.Snapshot's merge).
	var m latencySet
	for _, k := range sortedLatKeys(c.perInstLat) {
		m.merge(c.perInstLat[k])
	}
	return m.ttft, m.tpot, m.e2e
}

// sortedLatKeys returns the per-instance latency map's keys in
// ascending order, pinning every merge walk to one order.
func sortedLatKeys(m map[int]*latencySet) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// SatByInst returns the latest saturation verdict per key (0 =
// cluster-wide) for gauge exposition.
func (c *Center) SatByInst() map[int]SatSample {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]SatSample, len(c.satByKey))
	//diffkv:allow maprange -- map-to-map copy with distinct keys: identical result whatever the walk order
	for k, v := range c.satByKey {
		out[k] = v
	}
	return out
}

// SLOStatuses re-evaluates the objectives at the last sample instant
// (no state transitions — pure read).
func (c *Center) SLOStatuses() []SLOStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sloStatusesLocked()
}

// sloStatusesLocked builds read-only statuses. Caller holds mu.
func (c *Center) sloStatusesLocked() []SLOStatus {
	var out []SLOStatus
	now := c.lastObs.TimeUs
	for _, st := range c.slo.states {
		var fast, slow float64
		if st.spec.Metric == "goodput" {
			fast = goodputBurn(st.spec, c.goodput, now, st.spec.FastWindowS)
			slow = goodputBurn(st.spec, c.goodput, now, st.spec.SlowWindowS)
		} else {
			fast = c.slo.latencyBurn(st.spec, now, st.spec.FastWindowS)
			slow = c.slo.latencyBurn(st.spec, now, st.spec.SlowWindowS)
		}
		out = append(out, SLOStatus{
			Metric:            st.spec.Metric,
			Pctl:              st.spec.Pctl,
			TargetSec:         st.spec.TargetSec,
			FloorTokensPerSec: st.spec.FloorTokensPerSec,
			FastBurn:          fast,
			SlowBurn:          slow,
			Firing:            st.firing,
		})
	}
	return out
}
