package telemetry

import (
	"math"
	"testing"
)

// TestSeriesWraparound pins the ring contract: once full, the oldest
// sample is evicted and At/Values/Tail stay oldest-first across the
// wrap point.
func TestSeriesWraparound(t *testing.T) {
	s := NewSeries(4)
	for i := 0; i < 10; i++ {
		s.Add(float64(i)*1e6, float64(i*i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Total() != 10 {
		t.Fatalf("Total = %d, want 10", s.Total())
	}
	// retained samples are 6..9, oldest first
	for i := 0; i < 4; i++ {
		want := float64(6 + i)
		tm, v := s.At(i)
		if tm != want*1e6 || v != want*want {
			t.Fatalf("At(%d) = (%g, %g), want (%g, %g)", i, tm, v, want*1e6, want*want)
		}
	}
	tm, v, ok := s.Last()
	if !ok || tm != 9e6 || v != 81 {
		t.Fatalf("Last = (%g, %g, %v), want (9e6, 81, true)", tm, v, ok)
	}
	vals := s.Values()
	if len(vals) != 4 || vals[0] != 36 || vals[3] != 81 {
		t.Fatalf("Values = %v", vals)
	}
	tail := s.Tail(2)
	if len(tail) != 2 || tail[0] != 64 || tail[1] != 81 {
		t.Fatalf("Tail(2) = %v", tail)
	}
	if got := s.Tail(100); len(got) != 4 {
		t.Fatalf("Tail(100) len = %d, want 4", len(got))
	}
}

// TestSeriesLastEmpty: Last on a fresh series reports not-ok.
func TestSeriesLastEmpty(t *testing.T) {
	if _, _, ok := NewSeries(4).Last(); ok {
		t.Fatal("Last on empty series reported ok")
	}
}

// TestSeriesSlope: a perfectly linear signal recovers its rate in
// value-per-second units, a flat one reports 0, and the window bound
// restricts the fit to the most recent samples.
func TestSeriesSlope(t *testing.T) {
	s := NewSeries(64)
	for i := 0; i < 20; i++ {
		s.Add(float64(i)*1e6, 3*float64(i)) // 3 units per second
	}
	if got := s.Slope(0); math.Abs(got-3) > 1e-9 {
		t.Fatalf("Slope = %g, want 3", got)
	}

	flat := NewSeries(64)
	for i := 0; i < 20; i++ {
		flat.Add(float64(i)*1e6, 7)
	}
	if got := flat.Slope(0); got != 0 {
		t.Fatalf("flat Slope = %g, want 0", got)
	}

	// kinked signal: flat for 10 samples, then slope 5; a window covering
	// only the recent leg must see 5, the full fit must not
	kink := NewSeries(64)
	for i := 0; i < 10; i++ {
		kink.Add(float64(i)*1e6, 0)
	}
	for i := 10; i < 20; i++ {
		kink.Add(float64(i)*1e6, 5*float64(i-10))
	}
	if got := kink.Slope(10); math.Abs(got-5) > 1e-9 {
		t.Fatalf("windowed Slope = %g, want 5", got)
	}
	if got := kink.Slope(0); math.Abs(got-5) < 1e-9 {
		t.Fatalf("full-history Slope = %g, should differ from windowed 5", got)
	}

	short := NewSeries(8)
	short.Add(0, 1)
	if got := short.Slope(0); got != 0 {
		t.Fatalf("single-sample Slope = %g, want 0", got)
	}
}

// TestSeriesSlopeAfterWrap: the fit must use the retained window, not
// stale pre-wrap values.
func TestSeriesSlopeAfterWrap(t *testing.T) {
	s := NewSeries(8)
	for i := 0; i < 100; i++ {
		s.Add(float64(i)*1e6, -2*float64(i))
	}
	if got := s.Slope(0); math.Abs(got-(-2)) > 1e-9 {
		t.Fatalf("Slope after wrap = %g, want -2", got)
	}
}
