package telemetry

import (
	"fmt"
	"strings"
)

// SLO burn-rate evaluation (SRE style, over sim time). A latency SLO
// "p95 TTFT ≤ 300ms" grants an error budget of 1 − 0.95 = 5% of
// requests. The burn rate over a window is
//
//	burn = (fraction of completions violating the target) / budget
//
// so burn 1.0 consumes the budget exactly at the sustainable rate and
// burn 3.0 exhausts it 3× too fast. Alerting on a single window either
// pages on blips (short window) or pages late (long window); the
// standard fix is multi-window: fire only when BOTH a fast and a slow
// window burn above the threshold — the slow window proves the problem
// is real, the fast window proves it is still happening. Clearing uses
// a half-threshold hysteresis so a burn hovering at the threshold does
// not flap the alert.

// SLOSpec declares one objective. It is embedded verbatim in the
// Scenario observability section (json tags are the config surface).
type SLOSpec struct {
	// Metric: "ttft", "tpot", "e2e" (latency SLOs) or "goodput"
	// (throughput-floor SLO).
	Metric string `json:"metric"`
	// Pctl is the latency target percentile (e.g. 95 for p95). The
	// implied error budget is 1 − Pctl/100.
	Pctl float64 `json:"pctl,omitempty"`
	// TargetSec is the latency bound at that percentile.
	TargetSec float64 `json:"target_sec,omitempty"`
	// FloorTokensPerSec is the goodput floor (goodput SLOs only); the
	// budget is the fraction of samples allowed below the floor,
	// BudgetFrac (default 0.05).
	FloorTokensPerSec float64 `json:"floor_tokens_per_sec,omitempty"`
	BudgetFrac        float64 `json:"budget_frac,omitempty"`
	// BurnThreshold fires the alert when both window burns reach it
	// (default 2.0); clearing requires both below half of it.
	BurnThreshold float64 `json:"burn_threshold,omitempty"`
	// FastWindowS / SlowWindowS are the two evaluation windows in sim
	// seconds (defaults 60 and 300).
	FastWindowS float64 `json:"fast_window_s,omitempty"`
	SlowWindowS float64 `json:"slow_window_s,omitempty"`
}

func (s SLOSpec) withDefaults() SLOSpec {
	s.Metric = strings.ToLower(strings.TrimSpace(s.Metric))
	if s.Pctl <= 0 || s.Pctl >= 100 {
		s.Pctl = 95
	}
	if s.BudgetFrac <= 0 {
		s.BudgetFrac = 0.05
	}
	if s.BurnThreshold <= 0 {
		s.BurnThreshold = 2.0
	}
	if s.FastWindowS <= 0 {
		s.FastWindowS = 60
	}
	if s.SlowWindowS <= 0 {
		s.SlowWindowS = 300
	}
	if s.SlowWindowS < s.FastWindowS {
		s.SlowWindowS = s.FastWindowS
	}
	return s
}

// Validate rejects malformed specs at scenario-build time rather than
// silently evaluating nonsense.
func (s SLOSpec) Validate() error {
	switch strings.ToLower(strings.TrimSpace(s.Metric)) {
	case "ttft", "tpot", "e2e":
		if s.TargetSec <= 0 {
			return fmt.Errorf("telemetry: slo %q needs target_sec > 0", s.Metric)
		}
	case "goodput":
		if s.FloorTokensPerSec <= 0 {
			return fmt.Errorf("telemetry: goodput slo needs floor_tokens_per_sec > 0")
		}
	default:
		return fmt.Errorf("telemetry: unknown slo metric %q (want ttft|tpot|e2e|goodput)", s.Metric)
	}
	return nil
}

// SLOStatus is one objective's evaluated state in a Snapshot.
type SLOStatus struct {
	Metric            string  `json:"metric"`
	Pctl              float64 `json:"pctl,omitempty"`
	TargetSec         float64 `json:"target_sec,omitempty"`
	FloorTokensPerSec float64 `json:"floor_tokens_per_sec,omitempty"`
	// FastBurn / SlowBurn are the current window burn rates.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// Firing is the hysteretic alert state.
	Firing bool `json:"firing"`
}

// complRec is one completed request's latency triple.
type complRec struct {
	timeUs          float64
	ttft, tpot, e2e float64
}

// sloState tracks one spec's firing hysteresis.
type sloState struct {
	spec   SLOSpec
	firing bool
}

// sloEval evaluates all configured SLOs against a bounded completion
// history plus the goodput sample series.
type sloEval struct {
	states []*sloState
	comps  []complRec // ring
	next   int
	n      int
}

const sloComplCap = 4096

func newSLOEval(specs []SLOSpec) *sloEval {
	e := &sloEval{comps: make([]complRec, sloComplCap)}
	for _, s := range specs {
		e.states = append(e.states, &sloState{spec: s.withDefaults()})
	}
	return e
}

func (e *sloEval) recordCompletion(timeUs, ttft, tpot, e2e float64) {
	e.comps[e.next] = complRec{timeUs: timeUs, ttft: ttft, tpot: tpot, e2e: e2e}
	e.next = (e.next + 1) % len(e.comps)
	if e.n < len(e.comps) {
		e.n++
	}
}

// latencyBurn computes the burn rate for one latency spec over
// [nowUs − windowS, nowUs]. No completions in the window burns 0 (an
// idle system is not violating a latency SLO).
func (e *sloEval) latencyBurn(spec SLOSpec, nowUs, windowS float64) float64 {
	cutoff := nowUs - windowS*1e6
	var total, viol int
	for i := 0; i < e.n; i++ {
		r := e.comps[(e.next-1-i+len(e.comps)*2)%len(e.comps)]
		if r.timeUs < cutoff {
			break // ring is time-ordered newest-first from next-1
		}
		total++
		var v float64
		switch spec.Metric {
		case "ttft":
			v = r.ttft
		case "tpot":
			v = r.tpot
		default:
			v = r.e2e
		}
		if v > spec.TargetSec {
			viol++
		}
	}
	if total == 0 {
		return 0
	}
	budget := 1 - spec.Pctl/100
	return (float64(viol) / float64(total)) / budget
}

// goodputBurn computes the burn rate for a goodput-floor spec from the
// cluster goodput series: fraction of samples below the floor divided
// by the allowed fraction.
func goodputBurn(spec SLOSpec, goodput *Series, nowUs, windowS float64) float64 {
	if goodput == nil || goodput.Len() == 0 {
		return 0
	}
	cutoff := nowUs - windowS*1e6
	var total, below int
	for i := goodput.Len() - 1; i >= 0; i-- {
		t, v := goodput.At(i)
		if t < cutoff {
			break
		}
		total++
		if v < spec.FloorTokensPerSec {
			below++
		}
	}
	if total == 0 {
		return 0
	}
	return (float64(below) / float64(total)) / spec.BudgetFrac
}

// evaluate runs every spec at sim time nowUs and returns statuses plus
// deterministic alert notes for specs that transitioned
// (firing/cleared) this tick.
func (e *sloEval) evaluate(nowUs float64, goodput *Series) (statuses []SLOStatus, fired []string) {
	for _, st := range e.states {
		var fast, slow float64
		if st.spec.Metric == "goodput" {
			fast = goodputBurn(st.spec, goodput, nowUs, st.spec.FastWindowS)
			slow = goodputBurn(st.spec, goodput, nowUs, st.spec.SlowWindowS)
		} else {
			fast = e.latencyBurn(st.spec, nowUs, st.spec.FastWindowS)
			slow = e.latencyBurn(st.spec, nowUs, st.spec.SlowWindowS)
		}
		thr := st.spec.BurnThreshold
		if !st.firing && fast >= thr && slow >= thr {
			st.firing = true
			fired = append(fired, fmt.Sprintf("slo_burn %s fast=%.2f slow=%.2f", st.spec.Metric, fast, slow))
		} else if st.firing && fast < thr/2 && slow < thr/2 {
			st.firing = false
			fired = append(fired, fmt.Sprintf("slo_clear %s fast=%.2f slow=%.2f", st.spec.Metric, fast, slow))
		}
		statuses = append(statuses, SLOStatus{
			Metric:            st.spec.Metric,
			Pctl:              st.spec.Pctl,
			TargetSec:         st.spec.TargetSec,
			FloorTokensPerSec: st.spec.FloorTokensPerSec,
			FastBurn:          fast,
			SlowBurn:          slow,
			Firing:            st.firing,
		})
	}
	return statuses, fired
}
