package telemetry

import (
	"strings"
	"testing"

	"diffkv/internal/trace"
)

// obsAt builds a one-instance fleet observation with the given queue
// depth and resident tokens against a 1000-token capacity.
func obsAt(timeUs float64, queue int, resident int64) Observation {
	return Observation{
		TimeUs:      timeUs,
		InstancesUp: 1,
		PerInstance: []InstanceObservation{{
			Inst: 1, QueueDepth: queue, Running: 2,
			ResidentTokens: resident, MemoryTokens: 1000,
		}},
	}
}

// TestCenterDueGating: Due is the cadence gate — false until the
// interval elapses past the last sample.
func TestCenterDueGating(t *testing.T) {
	c := New(Config{SampleIntervalUs: 1e6})
	if !c.Due(0) {
		t.Fatal("first sample not due at t=0")
	}
	c.Sample(obsAt(0, 0, 0))
	if c.Due(0.5e6) {
		t.Fatal("due again mid-interval")
	}
	if !c.Due(1e6) {
		t.Fatal("not due after a full interval")
	}
}

// TestCenterSampleToAlert drives a Center through a saturation ramp and
// checks the full chain: rings fill, headroom falls, the advisory
// fires once, and the alert is mirrored to the tracer as a KindAlert
// event with the deterministic note.
func TestCenterSampleToAlert(t *testing.T) {
	col := trace.NewCollector(1024)
	c := New(Config{
		SampleIntervalUs: 1e6,
		Tracer:           col,
		Saturation:       SatConfig{UpHold: 3, CooldownUs: 1},
	})
	// demand ramps from 0 to 990 of a 1000-token capacity
	for i := 0; i <= 30; i++ {
		c.Sample(obsAt(float64(i)*1e6, 0, int64(i*33)))
	}
	alerts := c.Alerts()
	if len(alerts) == 0 {
		t.Fatal("saturation ramp emitted no alerts")
	}
	var sawUp bool
	for _, a := range alerts {
		if strings.HasPrefix(a.Note, "scale_up") {
			sawUp = true
		}
	}
	if !sawUp {
		t.Fatalf("no scale_up in %v", alerts)
	}
	var traced int
	for _, e := range col.Events() {
		if e.Kind == trace.KindAlert {
			traced++
		}
	}
	if traced != int(c.TotalAlerts()) {
		t.Fatalf("tracer saw %d alerts, center emitted %d", traced, c.TotalAlerts())
	}

	snap := c.Snapshot()
	if snap.Samples != 31 || len(snap.Instances) != 1 {
		t.Fatalf("snapshot: samples=%d instances=%d", snap.Samples, len(snap.Instances))
	}
	in := snap.Instances[0]
	if in.Inst != 1 || in.Headroom > 0.1 {
		t.Fatalf("instance snapshot: %+v", in)
	}
	if len(in.QueueSpark) == 0 || len(in.HeadroomSpark) == 0 {
		t.Fatal("snapshot missing sparklines")
	}
}

// TestCenterQueuedDemand: queued requests count against headroom via
// the prompt-length EWMA, so a deep queue saturates an otherwise-empty
// instance.
func TestCenterQueuedDemand(t *testing.T) {
	c := New(Config{SampleIntervalUs: 1e6})
	for i := 0; i < 10; i++ {
		c.RecordOpen(200) // avg prompt settles at 200 tokens
	}
	c.Sample(obsAt(0, 10, 0)) // 10 queued x 200 = 2000 demand vs 1000 cap
	snap := c.Snapshot()
	if h := snap.Instances[0].Headroom; h != 0 {
		t.Fatalf("headroom = %g with 2x oversubscribed queue, want 0", h)
	}
	if d := snap.Instances[0].DemandTokens; d < 1500 {
		t.Fatalf("demand = %g, want ~2000", d)
	}
}

// TestCenterCompletionLatency: per-instance recordings merge exactly
// into the cluster-wide histograms.
func TestCenterCompletionLatency(t *testing.T) {
	c := New(Config{})
	c.RecordCompletion(1, 1e6, 0.1, 0.01, 1.0, 64)
	c.RecordCompletion(2, 2e6, 0.3, 0.02, 2.0, 64)
	c.RecordCompletion(2, 3e6, 0.2, 0, 1.5, 1) // single-token: no TPOT
	ttft, tpot, e2e := c.LatencyHists()
	if ttft.Count() != 3 || e2e.Count() != 3 {
		t.Fatalf("ttft/e2e counts = %d/%d, want 3/3", ttft.Count(), e2e.Count())
	}
	if tpot.Count() != 2 {
		t.Fatalf("tpot count = %d, want 2 (zero TPOT skipped)", tpot.Count())
	}
	snap := c.Snapshot()
	if snap.Latency["ttft"].Count != 3 {
		t.Fatalf("snapshot latency: %+v", snap.Latency)
	}
}

// TestCenterSLOAlert: a Center with a TTFT SLO emits slo_burn when
// violating completions dominate both windows.
func TestCenterSLOAlert(t *testing.T) {
	c := New(Config{
		SampleIntervalUs: 1e6,
		SLOs: []SLOSpec{{Metric: "ttft", TargetSec: 0.2,
			FastWindowS: 5, SlowWindowS: 10}},
	})
	for i := 0; i < 20; i++ {
		now := float64(i) * 1e6
		c.RecordCompletion(1, now, 0.9, 0.01, 1.2, 32)
		c.Sample(obsAt(now, 0, 100))
	}
	var burn bool
	for _, a := range c.Alerts() {
		if strings.HasPrefix(a.Note, "slo_burn ttft") {
			burn = true
		}
	}
	if !burn {
		t.Fatalf("no slo_burn alert in %v", c.Alerts())
	}
	st := c.SLOStatuses()
	if len(st) != 1 || !st[0].Firing {
		t.Fatalf("SLO statuses: %+v", st)
	}
}

// TestAlertRingBounded: the recent-alerts ring retains the newest
// alertRingCap entries in order.
func TestAlertRingBounded(t *testing.T) {
	c := New(Config{})
	for i := 0; i < alertRingCap+50; i++ {
		c.pushAlert(Alert{TimeUs: float64(i)})
	}
	got := c.Alerts()
	if len(got) != alertRingCap {
		t.Fatalf("ring holds %d, want %d", len(got), alertRingCap)
	}
	if got[0].TimeUs != 50 || got[len(got)-1].TimeUs != float64(alertRingCap+49) {
		t.Fatalf("ring order: first=%g last=%g", got[0].TimeUs, got[len(got)-1].TimeUs)
	}
	if c.TotalAlerts() != int64(alertRingCap+50) {
		t.Fatalf("TotalAlerts = %d", c.TotalAlerts())
	}
}

// TestReplayLifecycle: replaying a synthetic request lifecycle
// reconstructs occupancy, latency and the alert timeline.
func TestReplayLifecycle(t *testing.T) {
	ev := []trace.Event{
		{Kind: trace.KindOpen, TimeUs: 0, Inst: 1, Seq: 1},
		{Kind: trace.KindAdmit, TimeUs: 1000, Inst: 1, Seq: 1},
		{Kind: trace.KindFirstToken, TimeUs: 51000, Inst: 1, Seq: 1},
		{Kind: trace.KindOpen, TimeUs: 2000, Inst: 1, Seq: 2},
		{Kind: trace.KindSwapOut, TimeUs: 60000, Inst: 1, Seq: 1, Bytes: 4096},
		{Kind: trace.KindSwapIn, TimeUs: 90000, Inst: 1, Seq: 1, Bytes: 4096},
		{Kind: trace.KindComplete, TimeUs: 101000, Inst: 1, Seq: 1},
		{Kind: trace.KindReject, TimeUs: 110000, Inst: 1, Seq: 3},
		{Kind: trace.KindAlert, TimeUs: 120000, Inst: 1, Note: "scale_up headroom=0.050"},
	}
	snap := Replay(ev)
	if !snap.Offline {
		t.Fatal("replay snapshot not marked offline")
	}
	if snap.Cluster.Completed != 1 || snap.Cluster.Rejected != 1 {
		t.Fatalf("cluster: %+v", snap.Cluster)
	}
	if len(snap.Instances) != 1 {
		t.Fatalf("instances: %+v", snap.Instances)
	}
	in := snap.Instances[0]
	// request 2 opened but never admitted; request 1 completed
	if in.QueueDepth != 1 || in.Running != 0 || in.Swapped != 0 {
		t.Fatalf("occupancy: %+v", in)
	}
	if in.SwapOutBytes != 4096 || in.SwapInBytes != 4096 || in.HostBytes != 0 {
		t.Fatalf("swap accounting: %+v", in)
	}
	lt := snap.Latency["ttft"]
	if lt.Count != 1 || lt.MaxSec != 0.051 {
		t.Fatalf("ttft: %+v", lt)
	}
	e2e := snap.Latency["e2e"]
	if e2e.Count != 1 || e2e.MaxSec != 0.101 {
		t.Fatalf("e2e: %+v", e2e)
	}
	if len(snap.Alerts) != 1 || snap.Alerts[0].Note != "scale_up headroom=0.050" {
		t.Fatalf("alerts: %+v", snap.Alerts)
	}
}
