package telemetry

// Series is a fixed-capacity ring of (time, value) samples — one metric's
// recent history at the sampling cadence. Once full, the oldest sample is
// overwritten; memory and per-sample cost are O(1), which is what lets an
// always-on server keep dozens of these without unbounded growth. Series
// is not goroutine-safe: the Center serializes access behind its lock.
type Series struct {
	t, v  []float64
	next  int
	n     int
	total int
}

// NewSeries creates a series retaining at most capacity samples
// (default 512 when capacity <= 0).
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = 512
	}
	return &Series{t: make([]float64, capacity), v: make([]float64, capacity)}
}

// Add appends a sample, evicting the oldest when full.
func (s *Series) Add(timeUs, value float64) {
	s.t[s.next] = timeUs
	s.v[s.next] = value
	s.next = (s.next + 1) % len(s.t)
	if s.n < len(s.t) {
		s.n++
	}
	s.total++
}

// Len returns how many samples are retained.
func (s *Series) Len() int { return s.n }

// Total returns how many samples were ever added (wraparound included).
func (s *Series) Total() int { return s.total }

// At returns the i-th retained sample, oldest first (0 <= i < Len).
func (s *Series) At(i int) (timeUs, value float64) {
	idx := (s.next - s.n + i + len(s.t)) % len(s.t)
	return s.t[idx], s.v[idx]
}

// Last returns the most recent sample; ok is false on an empty series.
func (s *Series) Last() (timeUs, value float64, ok bool) {
	if s.n == 0 {
		return 0, 0, false
	}
	timeUs, value = s.At(s.n - 1)
	return timeUs, value, true
}

// Values copies the retained values oldest-first (sparkline feed).
func (s *Series) Values() []float64 {
	out := make([]float64, s.n)
	for i := range out {
		_, out[i] = s.At(i)
	}
	return out
}

// Tail copies the most recent k values oldest-first (all when k >= Len).
func (s *Series) Tail(k int) []float64 {
	if k >= s.n {
		return s.Values()
	}
	out := make([]float64, k)
	for i := range out {
		_, out[i] = s.At(s.n - k + i)
	}
	return out
}

// Slope returns the least-squares trend of the retained samples in value
// units per second (time is stored in microseconds), over at most the
// last window samples (all when window <= 0). It returns 0 with fewer
// than two samples or a degenerate time axis.
func (s *Series) Slope(window int) float64 {
	n := s.n
	if window > 0 && window < n {
		n = window
	}
	if n < 2 {
		return 0
	}
	first := s.n - n
	// shift times to the window start for numerical stability
	t0, _ := s.At(first)
	var sumT, sumV, sumTT, sumTV float64
	for i := 0; i < n; i++ {
		t, v := s.At(first + i)
		ts := (t - t0) / 1e6
		sumT += ts
		sumV += v
		sumTT += ts * ts
		sumTV += ts * v
	}
	den := float64(n)*sumTT - sumT*sumT
	if den == 0 {
		return 0
	}
	return (float64(n)*sumTV - sumT*sumV) / den
}
