package telemetry

import "sort"

// sparkLen bounds the sparkline tails shipped in snapshots — enough for
// a terminal-width trend without bloating the JSON.
const sparkLen = 32

// InstanceSnapshot is one instance's row in a Snapshot.
type InstanceSnapshot struct {
	Inst           int     `json:"inst"`
	Health         string  `json:"health,omitempty"`
	QueueDepth     int     `json:"queue_depth"`
	Running        int     `json:"running"`
	Swapped        int     `json:"swapped"`
	FreeKVPages    int64   `json:"free_kv_pages"`
	UsedKVPages    int64   `json:"used_kv_pages"`
	ResidentTokens int64   `json:"resident_tokens"`
	SwappedTokens  int64   `json:"swapped_tokens"`
	HostBytes      int64   `json:"host_bytes"`
	CapacityTokens float64 `json:"capacity_tokens"`
	DemandTokens   float64 `json:"demand_tokens"`

	Headroom            float64 `json:"headroom"`
	HeadroomSlopePerSec float64 `json:"headroom_slope_per_sec"`
	TimeToSaturationSec float64 `json:"time_to_saturation_sec,omitempty"`
	Advisory            string  `json:"advisory,omitempty"`

	Preemptions  int64 `json:"preemptions"`
	SwapOutBytes int64 `json:"swap_out_bytes"`
	SwapInBytes  int64 `json:"swap_in_bytes"`

	// Sparkline tails (oldest first) for the dashboard.
	QueueSpark    []float64 `json:"queue_spark,omitempty"`
	HeadroomSpark []float64 `json:"headroom_spark,omitempty"`

	Latency map[string]LatencySnapshot `json:"latency,omitempty"`
}

// ClusterSnapshot is the fleet-wide roll-up.
type ClusterSnapshot struct {
	InstancesUp            int     `json:"instances_up"`
	QueueDepth             int     `json:"queue_depth"`
	Running                int     `json:"running"`
	Completed              int64   `json:"completed"`
	Rejected               int64   `json:"rejected"`
	ThroughputTokensPerSec float64 `json:"throughput_tokens_per_sec"`
	GoodputTokensPerSec    float64 `json:"goodput_tokens_per_sec"`
	CapacityTokens         float64 `json:"capacity_tokens"`
	DemandTokens           float64 `json:"demand_tokens"`
	Headroom               float64 `json:"headroom"`
	HeadroomSlopePerSec    float64 `json:"headroom_slope_per_sec"`
	TimeToSaturationSec    float64 `json:"time_to_saturation_sec,omitempty"`
	Advisory               string  `json:"advisory,omitempty"`

	GoodputSpark  []float64 `json:"goodput_spark,omitempty"`
	HeadroomSpark []float64 `json:"headroom_spark,omitempty"`
}

// Snapshot is the full telemetry state at one instant — the payload of
// GET /debug/telemetry and each SSE frame, and diffkv-top's input.
type Snapshot struct {
	TimeUs           float64 `json:"time_us"`
	SampleIntervalUs float64 `json:"sample_interval_us"`
	Samples          int64   `json:"samples"`
	// Offline marks a snapshot reconstructed from a trace file (no
	// capacity or KV-page data in the event stream).
	Offline bool `json:"offline,omitempty"`

	Cluster   ClusterSnapshot            `json:"cluster"`
	Instances []InstanceSnapshot         `json:"instances"`
	Latency   map[string]LatencySnapshot `json:"latency"`
	SLOs      []SLOStatus                `json:"slos,omitempty"`
	Alerts    []Alert                    `json:"alerts,omitempty"`
}

// Snapshot renders the current state. Safe to call concurrently with
// sampling.
func (c *Center) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()

	obs := c.lastObs
	avgPrompt := c.avgPrompt.v

	snap := Snapshot{
		TimeUs:           obs.TimeUs,
		SampleIntervalUs: c.cfg.SampleIntervalUs,
		Samples:          c.samples,
	}

	var clusterCap, clusterDemand float64
	var queueTotal, runningTotal int
	insts := make([]int, 0, len(c.inst))
	for k := range c.inst {
		insts = append(insts, k)
	}
	sort.Ints(insts)
	for _, k := range insts {
		s := c.inst[k]
		io := s.last
		capTok := io.Capacity()
		demand := float64(io.ResidentTokens+io.SwappedTokens) + float64(io.QueueDepth)*avgPrompt
		clusterCap += capTok
		clusterDemand += demand
		queueTotal += io.QueueDepth
		runningTotal += io.Running
		sat := c.satByKey[k]
		row := InstanceSnapshot{
			Inst:                io.Inst,
			Health:              io.Health,
			QueueDepth:          io.QueueDepth,
			Running:             io.Running,
			Swapped:             io.Swapped,
			FreeKVPages:         io.FreeKVPages,
			UsedKVPages:         io.UsedKVPages,
			ResidentTokens:      io.ResidentTokens,
			SwappedTokens:       io.SwappedTokens,
			HostBytes:           io.HostBytes,
			CapacityTokens:      capTok,
			DemandTokens:        demand,
			Headroom:            sat.Headroom,
			HeadroomSlopePerSec: sat.SlopePerSec,
			TimeToSaturationSec: sat.TimeToSaturationSec,
			Advisory:            sat.Standing,
			Preemptions:         io.Preemptions,
			SwapOutBytes:        io.SwapOutBytes,
			SwapInBytes:         io.SwapInBytes,
			QueueSpark:          s.queueDepth.Tail(sparkLen),
		}
		if hs := c.analyzer.HeadroomSeries(k); hs != nil {
			row.HeadroomSpark = hs.Tail(sparkLen)
		}
		if ls := c.perInstLat[k]; ls != nil {
			row.Latency = map[string]LatencySnapshot{
				"ttft": ls.ttft.snapshot(),
				"tpot": ls.tpot.snapshot(),
				"e2e":  ls.e2e.snapshot(),
			}
		}
		snap.Instances = append(snap.Instances, row)
	}

	clusterSat := c.satByKey[0]
	snap.Cluster = ClusterSnapshot{
		InstancesUp:            obs.InstancesUp,
		QueueDepth:             queueTotal,
		Running:                runningTotal,
		Completed:              obs.Completed,
		Rejected:               obs.Rejected,
		ThroughputTokensPerSec: obs.ThroughputTokensPerSec,
		GoodputTokensPerSec:    obs.GoodputTokensPerSec,
		CapacityTokens:         clusterCap,
		DemandTokens:           clusterDemand,
		Headroom:               clusterSat.Headroom,
		HeadroomSlopePerSec:    clusterSat.SlopePerSec,
		TimeToSaturationSec:    clusterSat.TimeToSaturationSec,
		Advisory:               clusterSat.Standing,
		GoodputSpark:           c.goodput.Tail(sparkLen),
	}
	if hs := c.analyzer.HeadroomSeries(0); hs != nil {
		snap.Cluster.HeadroomSpark = hs.Tail(sparkLen)
	}

	// Merge in sorted instance order: Hist.Merge accumulates a float64
	// sum, and float addition is not associative — a raw map walk would
	// make the merged mean drift in the last bits between identical runs.
	var merged latencySet
	for _, k := range sortedLatKeys(c.perInstLat) {
		merged.merge(c.perInstLat[k])
	}
	snap.Latency = map[string]LatencySnapshot{
		"ttft": merged.ttft.snapshot(),
		"tpot": merged.tpot.snapshot(),
		"e2e":  merged.e2e.snapshot(),
	}

	snap.SLOs = c.sloStatusesLocked()

	snap.Alerts = make([]Alert, 0, len(c.alerts))
	snap.Alerts = append(snap.Alerts, c.alerts[c.alertsStart:]...)
	snap.Alerts = append(snap.Alerts, c.alerts[:c.alertsStart]...)
	return snap
}
