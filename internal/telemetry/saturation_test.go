package telemetry

import (
	"strings"
	"testing"
)

func TestHeadroom(t *testing.T) {
	cases := []struct {
		cap, demand, want float64
	}{
		{0, 100, 1},    // unknown capacity: nothing to saturate
		{100, 0, 1},    // idle
		{100, 50, 0.5}, // half full
		{100, 100, 0},  // exactly full
		{100, 250, 0},  // oversubscribed clamps at 0
	}
	for _, c := range cases {
		if got := Headroom(c.cap, c.demand); got != c.want {
			t.Fatalf("Headroom(%g, %g) = %g, want %g", c.cap, c.demand, got, c.want)
		}
	}
}

// observeRun feeds a headroom trajectory at 1s cadence and collects the
// advisories that fired.
func observeRun(a *Analyzer, key int, startUs float64, headrooms []float64) []string {
	var fired []string
	for i, hr := range headrooms {
		s := a.Observe(startUs+float64(i)*1e6, key, hr)
		if s.Advisory != "" {
			fired = append(fired, s.Advisory)
		}
	}
	return fired
}

// TestAnalyzerNoFlapOnOscillation is the hysteresis contract: load
// oscillating across the low waterline every sample never holds below
// it long enough to fire, because the dead band resets the counters.
func TestAnalyzerNoFlapOnOscillation(t *testing.T) {
	a := NewAnalyzer(SatConfig{LowWater: 0.15, HighWater: 0.60, UpHold: 3, DownHold: 10}, 64)
	traj := make([]float64, 100)
	for i := range traj {
		if i%2 == 0 {
			traj[i] = 0.10 // below low water
		} else {
			traj[i] = 0.30 // dead band
		}
	}
	if fired := observeRun(a, 1, 0, traj); len(fired) != 0 {
		t.Fatalf("oscillating load fired %v, want none", fired)
	}
}

// TestAnalyzerScaleUpOnce: sustained saturation fires exactly one
// scale_up — not one per sample — and sustained recovery later fires
// exactly one scale_down.
func TestAnalyzerScaleUpOnce(t *testing.T) {
	a := NewAnalyzer(SatConfig{UpHold: 3, DownHold: 5, CooldownUs: 1}, 64)
	low := make([]float64, 30)
	for i := range low {
		low[i] = 0.05
	}
	fired := observeRun(a, 1, 0, low)
	if len(fired) != 1 || fired[0] != "scale_up" {
		t.Fatalf("sustained low headroom fired %v, want [scale_up]", fired)
	}

	high := make([]float64, 30)
	for i := range high {
		high[i] = 0.95
	}
	fired = observeRun(a, 1, 30e6, high)
	if len(fired) != 1 || fired[0] != "scale_down" {
		t.Fatalf("sustained recovery fired %v, want [scale_down]", fired)
	}
}

// TestAnalyzerCooldown: a recovery inside the cooldown window must wait
// for it to expire even after DownHold is satisfied.
func TestAnalyzerCooldown(t *testing.T) {
	a := NewAnalyzer(SatConfig{UpHold: 3, DownHold: 5, CooldownUs: 30e6}, 64)
	// 3 low samples at t=0,1,2s: scale_up fires at t=2s, cooldown to 32s
	if fired := observeRun(a, 1, 0, []float64{0.05, 0.05, 0.05}); len(fired) != 1 {
		t.Fatalf("setup fired %v", fired)
	}
	// recovery from t=3s: DownHold satisfied at 7s, but cooldown holds
	// the advisory until t >= 32s
	high := make([]float64, 40)
	for i := range high {
		high[i] = 0.95
	}
	var firedAtUs float64
	for i, hr := range high {
		now := 3e6 + float64(i)*1e6
		if s := a.Observe(now, 1, hr); s.Advisory != "" {
			firedAtUs = now
			break
		}
	}
	if firedAtUs < 32e6 {
		t.Fatalf("scale_down fired at %.0fus, inside the 30s cooldown", firedAtUs)
	}
}

// TestAnalyzerKeysIndependent: per-instance state must not bleed —
// instance 1 saturating cannot arm instance 2.
func TestAnalyzerKeysIndependent(t *testing.T) {
	a := NewAnalyzer(SatConfig{UpHold: 3, CooldownUs: 1}, 64)
	for i := 0; i < 10; i++ {
		now := float64(i) * 1e6
		a.Observe(now, 1, 0.05)
		if s := a.Observe(now, 2, 0.40); s.Advisory != "" {
			t.Fatalf("instance 2 fired %q from instance 1's saturation", s.Advisory)
		}
	}
	if a.states[1].advisory != "scale_up" {
		t.Fatal("instance 1 never fired")
	}
}

// TestAnalyzerTimeToSaturation: a linearly draining headroom projects
// the crossing time from its slope.
func TestAnalyzerTimeToSaturation(t *testing.T) {
	a := NewAnalyzer(SatConfig{SlopeWindow: 10}, 64)
	var last SatSample
	// headroom falls 0.01 per second from 1.0
	for i := 0; i < 20; i++ {
		last = a.Observe(float64(i)*1e6, 1, 1.0-0.01*float64(i))
	}
	// at headroom 0.81 and slope -0.01/s, saturation is ~81s out
	if last.TimeToSaturationSec < 75 || last.TimeToSaturationSec > 87 {
		t.Fatalf("TimeToSaturationSec = %g, want ~81", last.TimeToSaturationSec)
	}
	if last.SlopePerSec > -0.009 || last.SlopePerSec < -0.011 {
		t.Fatalf("SlopePerSec = %g, want ~-0.01", last.SlopePerSec)
	}
}

// TestRenderAdvisory pins the deterministic alert note format the
// pinned scenario tests grep for.
func TestRenderAdvisory(t *testing.T) {
	got := renderAdvisory(SatSample{Advisory: "scale_up", Headroom: 0.082, TimeToSaturationSec: 12.34})
	if got != "scale_up headroom=0.082 tts=12.3s" {
		t.Fatalf("renderAdvisory = %q", got)
	}
	got = renderAdvisory(SatSample{Advisory: "scale_down", Headroom: 0.9})
	if !strings.HasPrefix(got, "scale_down headroom=0.900") {
		t.Fatalf("renderAdvisory = %q", got)
	}
}
