package telemetry

import (
	"fmt"
	"math"
)

// Log-bucketed streaming latency histogram. The bucket layout is fixed
// and shared by every Hist — 10 geometric buckets per decade spanning
// 100µs to 1000s — so histograms from different instances (or different
// runs) merge by adding counts, and a merged quantile equals the
// quantile of the merged stream up to one bucket of resolution (~12%
// relative width). Compare with loop.latencyAcc, which keeps raw recent
// samples: a Hist never forgets (counts are lifetime), costs O(1) per
// observation, and its quantile error is bounded by layout, not by
// window luck.
const (
	// histMinSec is the lower edge of the first bucket; smaller
	// observations land in the underflow bucket.
	histMinSec = 1e-4
	// histPerDecade buckets per factor-of-10 of latency.
	histPerDecade = 10
	// histDecades spans 1e-4s .. 1e3s.
	histDecades = 7
	histBuckets = histPerDecade * histDecades
)

// histLogMin is ln(histMinSec), precomputed for bucket indexing.
var histLogMin = math.Log10(histMinSec)

// Hist is one latency distribution in seconds. The zero value is ready
// to use. Not goroutine-safe (the Center serializes access).
type Hist struct {
	counts   [histBuckets]int64
	under    int64
	over     int64
	count    int64
	sum      float64
	min, max float64
}

// Add folds one observation (seconds) into the histogram.
func (h *Hist) Add(v float64) {
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
	idx := bucketIndex(v)
	switch {
	case idx < 0:
		h.under++
	case idx >= histBuckets:
		h.over++
	default:
		h.counts[idx]++
	}
}

// bucketIndex maps an observation to its bucket (negative = underflow,
// >= histBuckets = overflow).
func bucketIndex(v float64) int {
	if v < histMinSec {
		return -1
	}
	idx := int((math.Log10(v) - histLogMin) * histPerDecade)
	if idx >= histBuckets {
		return histBuckets
	}
	return idx
}

// bucketUpper returns the upper bound (seconds) of bucket i.
func bucketUpper(i int) float64 {
	return histMinSec * math.Pow(10, float64(i+1)/histPerDecade)
}

// bucketLower returns the lower bound (seconds) of bucket i.
func bucketLower(i int) float64 {
	return histMinSec * math.Pow(10, float64(i)/histPerDecade)
}

// Merge adds another histogram's counts into h. Layouts are identical by
// construction, so this is exact.
func (h *Hist) Merge(o *Hist) {
	if o.count == 0 {
		return
	}
	if h.count == 0 {
		h.min, h.max = o.min, o.max
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.under += o.under
	h.over += o.over
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the summed observations (seconds).
func (h *Hist) Sum() float64 { return h.sum }

// Mean returns the exact mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by geometric
// interpolation within the covering bucket, clamped to the observed
// min/max so the extremes stay exact. Returns 0 when empty.
func (h *Hist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count-1)
	// the extreme ranks are known exactly — no bucket estimate needed
	if rank <= 0 {
		return h.min
	}
	if rank >= float64(h.count-1) {
		return h.max
	}
	var cum float64
	est := func(lo, hi, before, in float64) float64 {
		// position of rank within this bucket's span, log-interpolated
		frac := 0.5
		if in > 0 {
			frac = (rank - before + 0.5) / in
		}
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo * math.Pow(hi/lo, frac)
	}
	if rank < float64(h.under) {
		// underflow spans (0, histMinSec): interpolate linearly from min
		v := histMinSec
		return clamp(v, h.min, h.max)
	}
	cum = float64(h.under)
	for i := 0; i < histBuckets; i++ {
		in := float64(h.counts[i])
		if rank < cum+in {
			return clamp(est(bucketLower(i), bucketUpper(i), cum, in), h.min, h.max)
		}
		cum += in
	}
	// overflow: everything past the top bound
	return h.max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BucketCount is one cumulative exposition bucket: observations <= the
// UpperSec bound.
type BucketCount struct {
	UpperSec   float64 `json:"upper_sec"`
	Cumulative int64   `json:"cumulative"`
}

// CumulativeBuckets returns Prometheus-style cumulative bucket counts at
// every stride-th bound (stride <= 1 emits every bound). The underflow
// bucket folds into the first bound; the caller appends the +Inf bucket
// as Count().
func (h *Hist) CumulativeBuckets(stride int) []BucketCount {
	if stride < 1 {
		stride = 1
	}
	out := make([]BucketCount, 0, histBuckets/stride+1)
	cum := h.under
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if (i+1)%stride == 0 {
			out = append(out, BucketCount{UpperSec: bucketUpper(i), Cumulative: cum})
		}
	}
	return out
}

// LatencySnapshot summarizes a Hist for JSON exposition.
type LatencySnapshot struct {
	Count   int64   `json:"count"`
	MeanSec float64 `json:"mean_sec"`
	P50Sec  float64 `json:"p50_sec"`
	P95Sec  float64 `json:"p95_sec"`
	P99Sec  float64 `json:"p99_sec"`
	MaxSec  float64 `json:"max_sec"`
}

// snapshot renders the histogram's summary statistics.
func (h *Hist) snapshot() LatencySnapshot {
	return LatencySnapshot{
		Count:   h.count,
		MeanSec: h.Mean(),
		P50Sec:  h.Quantile(0.50),
		P95Sec:  h.Quantile(0.95),
		P99Sec:  h.Quantile(0.99),
		MaxSec:  h.max,
	}
}

// String aids debugging.
func (h *Hist) String() string {
	return fmt.Sprintf("hist{n=%d mean=%.4fs p50=%.4fs p99=%.4fs}",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
}
