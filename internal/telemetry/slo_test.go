package telemetry

import (
	"strings"
	"testing"
)

func TestSLOSpecValidate(t *testing.T) {
	bad := []SLOSpec{
		{Metric: "latency"},                  // unknown metric
		{Metric: "ttft"},                     // missing target
		{Metric: "goodput"},                  // missing floor
		{Metric: "e2e", TargetSec: -1},       // non-positive target
		{Metric: "goodput", BudgetFrac: 0.1}, // still no floor
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted a bad spec", s)
		}
	}
	good := []SLOSpec{
		{Metric: "ttft", TargetSec: 0.3},
		{Metric: "TPOT", TargetSec: 0.05}, // case-insensitive
		{Metric: " e2e ", TargetSec: 10},  // whitespace-tolerant
		{Metric: "goodput", FloorTokensPerSec: 100},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Fatalf("Validate(%+v): %v", s, err)
		}
	}
}

func TestSLOSpecDefaults(t *testing.T) {
	s := SLOSpec{Metric: "TTFT", TargetSec: 0.3}.withDefaults()
	if s.Metric != "ttft" || s.Pctl != 95 || s.BurnThreshold != 2 ||
		s.FastWindowS != 60 || s.SlowWindowS != 300 {
		t.Fatalf("defaults: %+v", s)
	}
	// slow window can never undercut fast
	s = SLOSpec{Metric: "ttft", TargetSec: 0.3, FastWindowS: 100, SlowWindowS: 10}.withDefaults()
	if s.SlowWindowS != 100 {
		t.Fatalf("SlowWindowS = %g, want clamped to fast 100", s.SlowWindowS)
	}
}

// TestLatencyBurnWindows: the burn rate is violations-over-budget
// within each window, and an idle window burns 0.
func TestLatencyBurnWindows(t *testing.T) {
	spec := SLOSpec{Metric: "ttft", TargetSec: 0.3, Pctl: 95}.withDefaults()
	e := newSLOEval([]SLOSpec{spec})
	if got := e.latencyBurn(spec, 50e6, 60); got != 0 {
		t.Fatalf("empty burn = %g", got)
	}
	// 10 completions in the last 60s: 1 violation = 10% of requests,
	// against a 5% budget = burn 2.0
	for i := 0; i < 9; i++ {
		e.recordCompletion(float64(i)*1e6, 0.1, 0.01, 1)
	}
	e.recordCompletion(9e6, 0.9, 0.01, 2) // violation
	if got := e.latencyBurn(spec, 10e6, 60); got < 1.999 || got > 2.001 {
		t.Fatalf("burn = %g, want ~2.0", got)
	}
	// 100s later those completions age out of a 60s window
	if got := e.latencyBurn(spec, 110e6, 60); got != 0 {
		t.Fatalf("aged-out burn = %g, want 0", got)
	}
}

// TestSLOFireAndClear walks the full multi-window transition: healthy →
// burning (fires once) → still burning (no re-fire) → recovered
// (clears at half threshold).
func TestSLOFireAndClear(t *testing.T) {
	spec := SLOSpec{Metric: "ttft", TargetSec: 0.3, Pctl: 95,
		BurnThreshold: 2, FastWindowS: 10, SlowWindowS: 30}
	e := newSLOEval([]SLOSpec{spec})

	// healthy traffic for 30s
	for i := 0; i < 30; i++ {
		e.recordCompletion(float64(i)*1e6, 0.1, 0.01, 0.5)
	}
	statuses, fired := e.evaluate(30e6, nil)
	if len(fired) != 0 || statuses[0].Firing {
		t.Fatalf("healthy traffic fired %v (status %+v)", fired, statuses[0])
	}

	// every completion violating: both windows saturate immediately
	for i := 30; i < 65; i++ {
		e.recordCompletion(float64(i)*1e6, 0.9, 0.01, 1.5)
	}
	statuses, fired = e.evaluate(65e6, nil)
	if len(fired) != 1 || !strings.HasPrefix(fired[0], "slo_burn ttft") {
		t.Fatalf("violations fired %v, want one slo_burn ttft", fired)
	}
	if !statuses[0].Firing || statuses[0].FastBurn < 2 || statuses[0].SlowBurn < 2 {
		t.Fatalf("status after fire: %+v", statuses[0])
	}

	// still burning: no duplicate alert
	e.recordCompletion(66e6, 0.9, 0.01, 1.5)
	if _, fired = e.evaluate(66e6, nil); len(fired) != 0 {
		t.Fatalf("re-fired while already firing: %v", fired)
	}

	// recovery: healthy completions push both windows below threshold/2
	for i := 70; i < 120; i++ {
		e.recordCompletion(float64(i)*1e6, 0.1, 0.01, 0.5)
	}
	statuses, fired = e.evaluate(120e6, nil)
	if len(fired) != 1 || !strings.HasPrefix(fired[0], "slo_clear ttft") {
		t.Fatalf("recovery fired %v, want one slo_clear ttft", fired)
	}
	if statuses[0].Firing {
		t.Fatalf("still firing after clear: %+v", statuses[0])
	}
}

// TestSLOClearHysteresis: a burn hovering between threshold/2 and
// threshold must neither fire (if off) nor clear (if on).
func TestSLOClearHysteresis(t *testing.T) {
	// 7.5% violations against 5% budget = burn 1.5: above thr/2=1,
	// below thr=2
	spec := SLOSpec{Metric: "ttft", TargetSec: 0.3, Pctl: 95,
		BurnThreshold: 2, FastWindowS: 1000, SlowWindowS: 1000}
	e := newSLOEval([]SLOSpec{spec})
	e.states[0].firing = true // as if a prior storm fired it
	for i := 0; i < 40; i++ {
		v := 0.1
		if i%40 < 3 { // 3/40 = 7.5% violations
			v = 0.9
		}
		e.recordCompletion(float64(i)*1e6, v, 0.01, 1)
	}
	statuses, fired := e.evaluate(40e6, nil)
	if len(fired) != 0 || !statuses[0].Firing {
		t.Fatalf("hovering burn %.2f flapped: fired=%v firing=%v",
			statuses[0].FastBurn, fired, statuses[0].Firing)
	}
}

// TestGoodputBurn: the goodput-floor SLO burns on the fraction of
// samples below the floor.
func TestGoodputBurn(t *testing.T) {
	spec := SLOSpec{Metric: "goodput", FloorTokensPerSec: 100, BudgetFrac: 0.05}.withDefaults()
	g := NewSeries(64)
	// 20 samples, 2 below the floor = 10% against a 5% budget = burn 2
	for i := 0; i < 20; i++ {
		v := 150.0
		if i == 5 || i == 15 {
			v = 50
		}
		g.Add(float64(i)*1e6, v)
	}
	if got := goodputBurn(spec, g, 20e6, 60); got != 2.0 {
		t.Fatalf("goodput burn = %g, want 2.0", got)
	}
	if got := goodputBurn(spec, nil, 20e6, 60); got != 0 {
		t.Fatalf("nil series burn = %g", got)
	}
}
