package telemetry

import (
	"sort"

	"diffkv/internal/trace"
)

// Offline replay: reconstruct a telemetry Snapshot from a recorded
// trace event stream so diffkv-top can render a finished run without a
// live gateway. The event stream carries request lifecycle and swap
// traffic but not KV-page or capacity counters, so the result is marked
// Offline and omits headroom (there is nothing sound to divide by);
// queue/running occupancy, latency histograms, swap byte totals and the
// KindAlert timeline are reconstructed exactly.

// replayInst is the per-instance state machine during replay.
type replayInst struct {
	inst         int
	queue        int
	running      int
	swapped      int
	hostBytes    int64
	swapOutBytes int64
	swapInBytes  int64
	preemptions  int64
	health       string
	lat          latencySet
}

// reqState tracks one in-flight request keyed by (inst, seq).
type reqState struct {
	openUs  float64
	ttftUs  float64
	hasTTFT bool
}

// Replay folds a trace event stream (emission order) into an offline
// Snapshot. Events with unknown kinds are ignored, so replay stays
// forward-compatible with new event types.
func Replay(events []trace.Event) Snapshot {
	insts := map[int]*replayInst{}
	reqs := map[trace.InstSeq]*reqState{}
	var alerts []Alert
	var lastUs float64
	var completed, rejected int64

	get := func(inst int) *replayInst {
		ri := insts[inst]
		if ri == nil {
			ri = &replayInst{inst: inst, health: "healthy"}
			insts[inst] = ri
		}
		return ri
	}

	for _, e := range events {
		if e.TimeUs > lastUs {
			lastUs = e.TimeUs
		}
		ri := get(e.Inst)
		key := trace.InstSeq{Inst: e.Inst, Seq: e.Seq}
		switch e.Kind {
		case trace.KindOpen:
			ri.queue++
			reqs[key] = &reqState{openUs: e.TimeUs}
		case trace.KindAdmit:
			if ri.queue > 0 {
				ri.queue--
			}
			ri.running++
		case trace.KindFirstToken:
			if r := reqs[key]; r != nil && !r.hasTTFT {
				r.ttftUs = e.TimeUs
				r.hasTTFT = true
			}
		case trace.KindPreempt:
			if ri.running > 0 {
				ri.running--
			}
			ri.queue++
			ri.preemptions++
		case trace.KindSwapOut:
			if ri.running > 0 {
				ri.running--
			}
			ri.swapped++
			ri.hostBytes += e.Bytes
			ri.swapOutBytes += e.Bytes
			ri.preemptions++
		case trace.KindSwapIn:
			if ri.swapped > 0 {
				ri.swapped--
			}
			ri.running++
			ri.hostBytes -= e.Bytes
			if ri.hostBytes < 0 {
				ri.hostBytes = 0
			}
			ri.swapInBytes += e.Bytes
		case trace.KindComplete:
			if ri.running > 0 {
				ri.running--
			}
			completed++
			if r := reqs[key]; r != nil {
				e2e := (e.TimeUs - r.openUs) / 1e6
				ri.lat.e2e.Add(e2e)
				if r.hasTTFT {
					ri.lat.ttft.Add((r.ttftUs - r.openUs) / 1e6)
				}
				delete(reqs, key)
			}
		case trace.KindCancel, trace.KindFail:
			// mid-flight exit: release whichever occupancy slot it held
			if ri.running > 0 {
				ri.running--
			} else if ri.queue > 0 {
				ri.queue--
			}
			delete(reqs, key)
		case trace.KindReject:
			rejected++
		case trace.KindHealth:
			ri.health = e.Note
		case trace.KindAlert:
			alerts = append(alerts, Alert{TimeUs: e.TimeUs, Inst: e.Inst, Note: e.Note})
		}
	}

	snap := Snapshot{TimeUs: lastUs, Offline: true, Alerts: alerts}

	keys := make([]int, 0, len(insts))
	for k := range insts {
		keys = append(keys, k)
	}
	sort.Ints(keys)

	var merged latencySet
	var queueTotal, runningTotal, up int
	for _, k := range keys {
		ri := insts[k]
		// instance 0 rows come from single-engine runs (no WithInstance
		// tag); keep them but skip empty bookkeeping-only entries
		if ri.queue == 0 && ri.running == 0 && ri.swapped == 0 &&
			ri.lat.e2e.Count() == 0 && ri.swapOutBytes == 0 && ri.preemptions == 0 {
			continue
		}
		queueTotal += ri.queue
		runningTotal += ri.running
		if ri.health != "down" {
			up++
		}
		row := InstanceSnapshot{
			Inst:          ri.inst,
			Health:        ri.health,
			QueueDepth:    ri.queue,
			Running:       ri.running,
			Swapped:       ri.swapped,
			HostBytes:     ri.hostBytes,
			Preemptions:   ri.preemptions,
			SwapOutBytes:  ri.swapOutBytes,
			SwapInBytes:   ri.swapInBytes,
			SwappedTokens: 0,
			Latency: map[string]LatencySnapshot{
				"ttft": ri.lat.ttft.snapshot(),
				"e2e":  ri.lat.e2e.snapshot(),
			},
		}
		merged.merge(&ri.lat)
		snap.Instances = append(snap.Instances, row)
	}

	snap.Cluster = ClusterSnapshot{
		InstancesUp: up,
		QueueDepth:  queueTotal,
		Running:     runningTotal,
		Completed:   completed,
		Rejected:    rejected,
	}
	snap.Latency = map[string]LatencySnapshot{
		"ttft": merged.ttft.snapshot(),
		"e2e":  merged.e2e.snapshot(),
	}
	return snap
}
