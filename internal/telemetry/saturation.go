package telemetry

import (
	"fmt"
	"math"
)

// Saturation analysis. Each sample tick the analyzer reduces an
// instance's raw occupancy to a single headroom fraction
//
//	capacity = min(memory-token capacity, compute-token capacity)
//	demand   = resident tokens + swapped tokens + queue-depth × avg-prompt
//	headroom = clamp((capacity − demand) / capacity, 0, 1)
//
// and tracks it as a Series so the trend (slope) yields a time-to-
// saturation estimate. Advisories are hysteretic on purpose: a waterline
// crossing must persist for a hold count of consecutive samples and
// advisories are rate-limited by a cooldown, so oscillating load near a
// waterline cannot flap scale_up/scale_down signals — the autoscaler
// consuming these (ROADMAP) would otherwise thrash.

// SatConfig tunes the saturation analyzer. Zero values take defaults.
type SatConfig struct {
	// LowWater: headroom below this arms a scale_up advisory
	// (default 0.15).
	LowWater float64 `json:"low_water,omitempty"`
	// HighWater: headroom above this arms a scale_down advisory
	// (default 0.60). Must exceed LowWater; the gap is the hysteresis
	// dead band.
	HighWater float64 `json:"high_water,omitempty"`
	// UpHold / DownHold: consecutive below/above samples required before
	// an advisory fires (defaults 3 and 10 — scale-up reacts fast,
	// scale-down waits for sustained slack).
	UpHold   int `json:"up_hold,omitempty"`
	DownHold int `json:"down_hold,omitempty"`
	// CooldownUs: minimum sim time between advisories for one key
	// (default 30s).
	CooldownUs float64 `json:"cooldown_us,omitempty"`
	// SlopeWindow: samples in the least-squares trend window
	// (default 30).
	SlopeWindow int `json:"slope_window,omitempty"`
}

func (c SatConfig) withDefaults() SatConfig {
	if c.LowWater <= 0 {
		c.LowWater = 0.15
	}
	if c.HighWater <= 0 {
		c.HighWater = 0.60
	}
	if c.HighWater <= c.LowWater {
		c.HighWater = c.LowWater + 0.1
	}
	if c.UpHold <= 0 {
		c.UpHold = 3
	}
	if c.DownHold <= 0 {
		c.DownHold = 10
	}
	if c.CooldownUs <= 0 {
		c.CooldownUs = 30e6
	}
	if c.SlopeWindow <= 0 {
		c.SlopeWindow = 30
	}
	return c
}

// satState is the per-key (instance; 0 = cluster) analyzer memory.
type satState struct {
	headroom    *Series
	belowN      int
	aboveN      int
	nextAllowUs float64
	advisory    string // latest standing advisory: "", scale_up, scale_down
}

// Analyzer turns headroom samples into hysteretic advisories.
type Analyzer struct {
	cfg    SatConfig
	states map[int]*satState
	cap    int
}

// NewAnalyzer creates an analyzer; seriesCapacity bounds the per-key
// headroom history.
func NewAnalyzer(cfg SatConfig, seriesCapacity int) *Analyzer {
	return &Analyzer{cfg: cfg.withDefaults(), states: map[int]*satState{}, cap: seriesCapacity}
}

// Headroom computes the saturation headroom fraction from capacity and
// demand in token units. Zero/unknown capacity reports full headroom
// (nothing to saturate — e.g. traits-mode engines without a KV manager).
func Headroom(capacityTokens, demandTokens float64) float64 {
	if capacityTokens <= 0 {
		return 1
	}
	return clamp((capacityTokens-demandTokens)/capacityTokens, 0, 1)
}

// SatSample is one analyzer verdict, returned to the Center for
// snapshotting and (when Advisory is non-empty) alert emission.
type SatSample struct {
	Headroom float64
	// SlopePerSec is the headroom trend (fraction per second, negative
	// when filling up).
	SlopePerSec float64
	// TimeToSaturationSec extrapolates the trend to headroom 0
	// (0 when not trending toward saturation).
	TimeToSaturationSec float64
	// Advisory is "scale_up" or "scale_down" when this sample fired an
	// advisory, empty otherwise.
	Advisory string
	// Standing is the latest advisory on record for the key ("" before
	// any fired) — the snapshot surface shows this between firings.
	Standing string
}

// Observe folds one headroom sample for key (1-based instance, 0 =
// cluster-wide) at sim time nowUs and applies the hysteresis state
// machine.
func (a *Analyzer) Observe(nowUs float64, key int, headroom float64) SatSample {
	st := a.states[key]
	if st == nil {
		st = &satState{headroom: NewSeries(a.cap)}
		a.states[key] = st
	}
	st.headroom.Add(nowUs, headroom)

	out := SatSample{Headroom: headroom}
	out.SlopePerSec = st.headroom.Slope(a.cfg.SlopeWindow)
	if out.SlopePerSec < -1e-9 && headroom > 0 {
		out.TimeToSaturationSec = headroom / -out.SlopePerSec
	}

	switch {
	case headroom < a.cfg.LowWater:
		st.belowN++
		st.aboveN = 0
		if st.belowN >= a.cfg.UpHold && nowUs >= st.nextAllowUs && st.advisory != "scale_up" {
			st.advisory = "scale_up"
			st.nextAllowUs = nowUs + a.cfg.CooldownUs
			out.Advisory = "scale_up"
		}
	case headroom > a.cfg.HighWater:
		st.aboveN++
		st.belowN = 0
		if st.aboveN >= a.cfg.DownHold && nowUs >= st.nextAllowUs && st.advisory != "scale_down" {
			st.advisory = "scale_down"
			st.nextAllowUs = nowUs + a.cfg.CooldownUs
			out.Advisory = "scale_down"
		}
	default:
		// dead band: decay the hold counters so a brief excursion
		// followed by recovery does not keep an advisory armed
		st.belowN = 0
		st.aboveN = 0
	}
	out.Standing = st.advisory
	return out
}

// HeadroomSeries exposes a key's headroom history (nil if never
// observed) for snapshot sparklines.
func (a *Analyzer) HeadroomSeries(key int) *Series {
	st := a.states[key]
	if st == nil {
		return nil
	}
	return st.headroom
}

// renderAdvisory formats the deterministic alert note, e.g.
// "scale_up headroom=0.082 tts=12.3s".
func renderAdvisory(s SatSample) string {
	if s.TimeToSaturationSec > 0 && !math.IsInf(s.TimeToSaturationSec, 1) {
		return fmt.Sprintf("%s headroom=%.3f tts=%.1fs", s.Advisory, s.Headroom, s.TimeToSaturationSec)
	}
	return fmt.Sprintf("%s headroom=%.3f", s.Advisory, s.Headroom)
}
