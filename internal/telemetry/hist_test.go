package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the reference the histogram is judged against: the
// same nearest-rank-with-midpoint rule Quantile uses, on raw samples.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(q * float64(len(sorted)-1))
	return sorted[rank]
}

// TestHistQuantileAccuracy bounds the estimator error by the bucket
// layout: with 10 buckets per decade, a quantile estimate and the exact
// sample quantile differ by at most one bucket width (~26% relative).
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Hist
	samples := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// log-uniform over 1ms..10s — the latency range that matters
		v := math.Pow(10, -3+4*rng.Float64())
		samples = append(samples, v)
		h.Add(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := h.Quantile(q)
		want := exactQuantile(samples, q)
		if ratio := got / want; ratio < 1/1.3 || ratio > 1.3 {
			t.Fatalf("q%g: hist %g vs exact %g (ratio %.3f, want within 1.3x)", q, got, want, ratio)
		}
	}
	if h.Count() != 5000 {
		t.Fatalf("Count = %d", h.Count())
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	if math.Abs(h.Mean()-sum/5000) > 1e-12 {
		t.Fatalf("Mean = %g, want %g (mean is exact, not bucketed)", h.Mean(), sum/5000)
	}
}

// TestHistMergeExact pins the merge contract: because every Hist shares
// one bucket layout, merge-of-parts is bit-identical to a histogram fed
// the concatenated stream — counts, sum, min/max, and every quantile.
func TestHistMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h1, h2, all Hist
	for i := 0; i < 2000; i++ {
		v := math.Pow(10, -4+5*rng.Float64())
		if i%3 == 0 {
			h1.Add(v)
		} else {
			h2.Add(v)
		}
		all.Add(v)
	}
	var merged Hist
	merged.Merge(&h1)
	merged.Merge(&h2)
	if merged.Count() != all.Count() {
		t.Fatalf("merged count %d != combined %d", merged.Count(), all.Count())
	}
	// sums differ only by float addition order
	if math.Abs(merged.Sum()-all.Sum()) > 1e-9*all.Sum() {
		t.Fatalf("merged sum %g != combined %g", merged.Sum(), all.Sum())
	}
	if merged.min != all.min || merged.max != all.max {
		t.Fatalf("merged min/max (%g, %g) != combined (%g, %g)",
			merged.min, merged.max, all.min, all.max)
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if m, a := merged.Quantile(q), all.Quantile(q); m != a {
			t.Fatalf("q%.2f: merged %g != combined %g", q, m, a)
		}
	}
}

// TestHistMergeEmpty: merging into or from an empty histogram must not
// invent min/max.
func TestHistMergeEmpty(t *testing.T) {
	var a, b Hist
	b.Add(0.5)
	a.Merge(&b)
	if a.Count() != 1 || a.min != 0.5 || a.max != 0.5 {
		t.Fatalf("empty.Merge(one) = count %d min %g max %g", a.Count(), a.min, a.max)
	}
	var c Hist
	a.Merge(&c) // merging an empty hist is a no-op
	if a.Count() != 1 {
		t.Fatalf("Merge(empty) changed count to %d", a.Count())
	}
}

// TestHistUnderOverflow: observations outside the bucket span still
// count, and quantiles clamp to the true observed extremes.
func TestHistUnderOverflow(t *testing.T) {
	var h Hist
	h.Add(1e-6)  // under 100µs
	h.Add(5e3)   // over 1000s
	h.Add(0.010) // in range
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Quantile(0); got != 1e-6 {
		t.Fatalf("q0 = %g, want observed min 1e-6", got)
	}
	if got := h.Quantile(1); got != 5e3 {
		t.Fatalf("q1 = %g, want observed max 5e3", got)
	}
}

// TestHistEmptyQuantile: an empty histogram answers 0, not NaN.
func TestHistEmptyQuantile(t *testing.T) {
	var h Hist
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty q99 = %g", got)
	}
	if got := h.Mean(); got != 0 {
		t.Fatalf("empty mean = %g", got)
	}
}

// TestCumulativeBuckets: exposition buckets are cumulative and
// monotone, fold the underflow into the first bound, and account for
// everything except the overflow tail (which the caller emits as +Inf).
func TestCumulativeBuckets(t *testing.T) {
	var h Hist
	h.Add(1e-6) // underflow
	for i := 0; i < 100; i++ {
		h.Add(0.001 * float64(i+1)) // 1ms..100ms
	}
	h.Add(5e3) // overflow
	bs := h.CumulativeBuckets(5)
	if len(bs) != histBuckets/5 {
		t.Fatalf("bucket count = %d, want %d", len(bs), histBuckets/5)
	}
	prev := int64(-1)
	for _, b := range bs {
		if b.Cumulative < prev {
			t.Fatalf("cumulative counts not monotone: %v", bs)
		}
		prev = b.Cumulative
	}
	if bs[0].Cumulative < 1 {
		t.Fatal("underflow not folded into first bound")
	}
	last := bs[len(bs)-1].Cumulative
	if last != h.Count()-1 { // everything but the overflow sample
		t.Fatalf("last bound cumulative = %d, want %d", last, h.Count()-1)
	}
}
