// Package benchkernels holds the hot-path kernel micro-benchmarks shared by
// the repository-root bench_test.go and the diffkv-bench -json perf
// snapshot, so `go test -bench` and the checked-in regression record
// (BENCH_PR2.json) always measure the same workloads.
package benchkernels

import (
	"testing"

	"diffkv/internal/attention"
	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/quant"
)

// Benchmark is one named kernel micro-benchmark.
type Benchmark struct {
	Name string
	Fn   func(b *testing.B)
}

// List returns the kernel micro-benchmarks in canonical order.
func List() []Benchmark {
	return []Benchmark{
		{"QuantizeK8", QuantizeK8},
		{"QuantizeV2", QuantizeV2},
		{"DequantDotK4", DequantDotK4},
		{"DequantAxpyV2", DequantAxpyV2},
		{"DequantDotSlotsPage", DequantDotSlotsPage},
		{"CompressedAttention1K", CompressedAttention1K},
		{"CompressedAttention1KScratch", CompressedAttention1KScratch},
		{"GenPolicyStep", GenPolicyStep},
	}
}

// QuantizeK8 packs one dim-128 key vector at 8 bits.
func QuantizeK8(b *testing.B) {
	rng := mathx.NewRNG(1)
	src := make([]float32, 128)
	rng.NormVec(src, 1)
	dst := make([]byte, quant.PackedLen(128, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.QuantizeInto(src, 8, dst)
	}
}

// QuantizeV2 packs one dim-128 value vector at 2 bits.
func QuantizeV2(b *testing.B) {
	rng := mathx.NewRNG(2)
	src := make([]float32, 128)
	rng.NormVec(src, 1)
	dst := make([]byte, quant.PackedLen(128, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.QuantizeInto(src, 2, dst)
	}
}

// DequantDotK4 is the fused dequantize-dot key kernel at 4 bits, dim 128.
func DequantDotK4(b *testing.B) {
	rng := mathx.NewRNG(3)
	k := make([]float32, 128)
	q := make([]float32, 128)
	rng.NormVec(k, 1)
	rng.NormVec(q, 1)
	data := make([]byte, quant.PackedLen(128, 4))
	scale, zero := quant.QuantizeInto(k, 4, data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.DequantDot(q, data, 4, scale, zero)
	}
}

// DequantAxpyV2 is the fused dequantize-axpy value kernel at 2 bits, dim 128.
func DequantAxpyV2(b *testing.B) {
	rng := mathx.NewRNG(4)
	v := make([]float32, 128)
	rng.NormVec(v, 1)
	data := make([]byte, quant.PackedLen(128, 2))
	scale, zero := quant.QuantizeInto(v, 2, data)
	dst := make([]float32, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.DequantAxpy(0.25, data, 2, 128, scale, zero, dst)
	}
}

// DequantDotSlotsPage measures the page-granular batched key kernel on one
// full K8V4 page worth of slots (37 tokens at dim 128).
func DequantDotSlotsPage(b *testing.B) {
	rng := mathx.NewRNG(6)
	dim, slots := 128, 37
	stride := quant.PackedLen(dim, 8)
	data := make([]byte, slots*stride)
	meta := make([]float32, 2*slots)
	v := make([]float32, dim)
	for s := 0; s < slots; s++ {
		rng.NormVec(v, 1)
		sc, z := quant.QuantizeInto(v, 8, data[s*stride:(s+1)*stride])
		meta[2*s], meta[2*s+1] = sc, z
	}
	q := make([]float32, dim)
	rng.NormVec(q, 1)
	out := make([]float32, slots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.DequantDotSlots(q, data, 8, slots, meta, out)
	}
}

// cache1K builds the shared 1024-token mixed-tier head cache and query.
func cache1K(b *testing.B) (*kvcache.HeadCache, []float32) {
	b.Helper()
	rng := mathx.NewRNG(5)
	mgr, err := kvcache.NewManager(kvcache.Config{
		Dim: 128, PageBytes: 8192, NumPages: 256, MaxSeqLen: 2048, Materialize: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	sc, err := mgr.AddSequence(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	hc := sc.Heads[0]
	k := make([]float32, 128)
	v := make([]float32, 128)
	for j := 0; j < 1024; j++ {
		rng.NormVec(k, 1)
		rng.NormVec(v, 1)
		lvl := kvcache.LevelHi
		if j%3 != 0 {
			lvl = kvcache.LevelLo
		}
		if err := hc.AppendToken(lvl, k, v, 1, int32(j)); err != nil {
			b.Fatal(err)
		}
	}
	q := make([]float32, 128)
	rng.NormVec(q, 1)
	return hc, q
}

// CompressedAttention1K runs compressed attention over the 1024-token cache
// through the convenience wrapper (fresh Scratch per call).
func CompressedAttention1K(b *testing.B) {
	hc, q := cache1K(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attention.Compressed(q, hc, nil)
	}
}

// CompressedAttention1KScratch is the steady-state variant: the kernel
// context is reused across calls, so the loop must run at exactly 0
// allocs/op (asserted by TestScratchCompressedZeroAllocs).
func CompressedAttention1KScratch(b *testing.B) {
	hc, q := cache1K(b)
	var scratch attention.Scratch
	scratch.Compressed(q, hc, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Compressed(q, hc, nil)
	}
}

// GenPolicyStep measures one Algorithm-1 generation step. Token buffers are
// hoisted out of the timed loop so the benchmark measures the policy step,
// not make. The window retains references to submitted keys/values, so a
// rotating pool deeper than the window keeps entries distinct without
// allocating inside the loop.
func GenPolicyStep(b *testing.B) {
	rng := mathx.NewRNG(7)
	mgr, err := kvcache.NewManager(kvcache.Config{
		Dim: 128, PageBytes: 8192, NumPages: 4096, MaxSeqLen: 1 << 20, Materialize: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	sc, err := mgr.AddSequence(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	hc := sc.Heads[0]
	gp, err := policy.NewGenPolicy(policy.ParamsLlama3, 128, 4096)
	if err != nil {
		b.Fatal(err)
	}
	depth := policy.ParamsLlama3.Window + 1
	keys := make([][]float32, depth)
	vals := make([][]float32, depth)
	for i := range keys {
		keys[i] = make([]float32, 128)
		vals[i] = make([]float32, 128)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%depth]
		v := vals[i%depth]
		rng.NormVec(k, 1)
		rng.NormVec(v, 1)
		gp.Sig.Seed(i, float32(rng.Float64()*2))
		if _, err := gp.Step(hc, k, v, int32(i)); err != nil {
			b.Fatal(err)
		}
	}
}
