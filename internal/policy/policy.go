// Package policy implements DiffKV's KV compression policy (paper §4):
// significance-score bookkeeping, the sequence-length-adaptive three-way
// classification of prompt tokens (high precision / low precision /
// pruned), and the generation-phase Algorithm 1 with its smooth downgrade
// path (high → low → pruned).
package policy

import (
	"fmt"

	"diffkv/internal/kvcache"
)

// Params are the calibrated policy parameters.
type Params struct {
	// AlphaH is the high-precision threshold multiplier: token i is stored
	// at high precision when its significance exceeds AlphaH/N (generation)
	// or AlphaH/i (prompt). Profiled over [1,5] in the paper (Fig. 10).
	AlphaH float64
	// AlphaL is the low-precision threshold multiplier; below AlphaL/N the
	// token is pruned. 0 disables pruning entirely.
	AlphaL float64
	// Window is the recent window W always kept at high precision
	// (default 64).
	Window int
	// DisableLow disables the low-precision tier (used for Qwen2.5-7B,
	// whose GQA ratio of 7 makes 4-bit keys lossy — paper §7.2): tokens
	// are then either high precision (significance ≥ AlphaL/N) or pruned.
	DisableLow bool
}

// Validate fills defaults and rejects nonsensical parameters.
func (p *Params) Validate() error {
	if p.Window <= 0 {
		p.Window = 64
	}
	if p.AlphaH < 0 || p.AlphaL < 0 {
		return fmt.Errorf("policy: thresholds must be non-negative")
	}
	if !p.DisableLow && p.AlphaL > p.AlphaH {
		return fmt.Errorf("policy: AlphaL (%v) must not exceed AlphaH (%v)", p.AlphaL, p.AlphaH)
	}
	return nil
}

// Calibrated parameters from the paper's Fig. 10 profiling
// (per model family; MATH-train calibration split).
var (
	// ParamsLlama3 applies to Llama3-8B/70B and R1-Distill-Llama-8B.
	ParamsLlama3 = Params{AlphaH: 1, AlphaL: 0.02, Window: 64}
	// ParamsQwen7B disables the low tier (αl acts as the retention
	// threshold).
	ParamsQwen7B = Params{AlphaH: 1, AlphaL: 0.04, Window: 64, DisableLow: true}
	// ParamsQwen32B applies to Qwen2.5-32B, QwQ-32B and R1-Distill-Qwen-14B.
	ParamsQwen32B = Params{AlphaH: 3, AlphaL: 0, Window: 64}
)

// ParamsForModel returns the calibrated parameters for a model name,
// falling back to the Llama3 parameters.
func ParamsForModel(name string) Params {
	switch name {
	case "Qwen2.5-7B":
		return ParamsQwen7B
	case "Qwen2.5-32B", "QwQ-32B", "R1-Distill-Qwen-14B":
		return ParamsQwen32B
	default:
		return ParamsLlama3
	}
}

// Level is the three-way significance classification of a token.
type Level int

const (
	// LevelHigh stores the token at the high-precision tier (e.g. K8V4).
	LevelHigh Level = iota
	// LevelLow stores the token at the low-precision tier (e.g. K4V2).
	LevelLow
	// LevelPruned discards the token.
	LevelPruned
)

func (l Level) String() string {
	switch l {
	case LevelHigh:
		return "high"
	case LevelLow:
		return "low"
	default:
		return "pruned"
	}
}

// Significance scores throughout this package are *normalized*: each
// observed attention score is multiplied by the length of the prefix the
// scoring query attended over, so 1.0 means "exactly the theoretical
// average attention 1/N" (paper §4). The paper's threshold rule
// "score ≥ αh/N" is then exactly "normalized score ≥ αh", and the
// normalization is what makes the rule sequence-length adaptive: the same
// raw score clears the threshold more easily later in a long sequence.

// ClassifyPrompt assigns a level to every prompt token from its normalized
// significance score (average attention received × prefix length,
// max-aggregated over the GQA group — computed by the caller). The most
// recent Window tokens are always high precision to avoid premature
// compression.
func ClassifyPrompt(sig []float32, p Params) []Level {
	n := len(sig)
	out := make([]Level, n)
	for i := 0; i < n; i++ {
		if i >= n-p.Window {
			out[i] = LevelHigh
			continue
		}
		out[i] = classify(float64(sig[i]), p)
	}
	return out
}

// classify applies the threshold rule to a normalized significance score.
func classify(sig float64, p Params) Level {
	if p.DisableLow {
		if sig >= p.AlphaL {
			return LevelHigh
		}
		return LevelPruned
	}
	switch {
	case sig >= p.AlphaH:
		return LevelHigh
	case sig >= p.AlphaL:
		return LevelLow
	default:
		return LevelPruned
	}
}

// Demand converts a level assignment into the head's page-planning demand.
func Demand(levels []Level) kvcache.HeadDemand {
	var d kvcache.HeadDemand
	for _, l := range levels {
		switch l {
		case LevelHigh:
			d.HiTokens++
		case LevelLow:
			d.LoTokens++
		}
	}
	return d
}

// Breakdown reports the fraction of tokens at each level — the quantity of
// paper Fig. 12.
type Breakdown struct {
	High, Low, Pruned float64
}

// BreakdownOf computes the level fractions of an assignment.
func BreakdownOf(levels []Level) Breakdown {
	if len(levels) == 0 {
		return Breakdown{}
	}
	var b Breakdown
	for _, l := range levels {
		switch l {
		case LevelHigh:
			b.High++
		case LevelLow:
			b.Low++
		default:
			b.Pruned++
		}
	}
	n := float64(len(levels))
	b.High /= n
	b.Low /= n
	b.Pruned /= n
	return b
}
