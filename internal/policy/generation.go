package policy

import (
	"fmt"

	"diffkv/internal/kvcache"
)

// SigTracker maintains running-average significance scores per token
// position: the mean attention a token has received across generation
// steps, max-aggregated over the query heads of its GQA group (the caller
// performs the max before calling Add).
type SigTracker struct {
	sum []float64
	cnt []int
}

// NewSigTracker creates a tracker sized for maxPos positions (grows on
// demand).
func NewSigTracker(maxPos int) *SigTracker {
	if maxPos < 1 {
		maxPos = 1
	}
	return &SigTracker{sum: make([]float64, maxPos), cnt: make([]int, maxPos)}
}

func (s *SigTracker) grow(pos int) {
	for pos >= len(s.sum) {
		s.sum = append(s.sum, 0)
		s.cnt = append(s.cnt, 0)
	}
}

// Add folds one observed attention score for the token at pos.
func (s *SigTracker) Add(pos int, score float32) {
	s.grow(pos)
	s.sum[pos] += float64(score)
	s.cnt[pos]++
}

// Avg returns the token's running-average significance (0 when never
// observed).
func (s *SigTracker) Avg(pos int) float32 {
	if pos < 0 || pos >= len(s.sum) || s.cnt[pos] == 0 {
		return 0
	}
	return float32(s.sum[pos] / float64(s.cnt[pos]))
}

// Seed installs a prompt-phase significance estimate.
func (s *SigTracker) Seed(pos int, score float32) {
	s.grow(pos)
	s.sum[pos] = float64(score)
	s.cnt[pos] = 1
}

// WindowToken is an uncompressed token inside the recent window: the paper
// keeps the W most recent tokens at full precision to avoid premature
// compression (§4); attention reads them alongside the compressed cache.
type WindowToken struct {
	Key []float32
	Val []float32
	Pos int32
}

// VictimAction describes what Algorithm 1 did to the victim token.
type VictimAction int

const (
	// VictimNone: no victim touched (tier empty or victim still
	// significant).
	VictimNone VictimAction = iota
	// VictimDowngraded: re-quantized from the high tier into the low tier.
	VictimDowngraded
	// VictimPruned: removed entirely.
	VictimPruned
)

func (v VictimAction) String() string {
	switch v {
	case VictimDowngraded:
		return "downgraded"
	case VictimPruned:
		return "pruned"
	default:
		return "none"
	}
}

// GenStepResult reports one generation-step compression outcome.
type GenStepResult struct {
	// Compressed is false while the window is still filling.
	Compressed bool
	// CandidateLevel is the tier the departing window token landed in.
	CandidateLevel Level
	// Victim reports the downgrade-path action.
	Victim VictimAction
	// Demand is the memory-accounting delta for kvcache.GenCompact.
	Demand kvcache.GenDemand
}

// GenPolicy drives generation-phase compression for one (sequence, KV-head)
// pair: it owns the recent window and the significance tracker and applies
// Algorithm 1 each step.
//
// The window is kept in a fixed backing array with a moving head index:
// popping the oldest token advances the head, and when the backing array is
// exhausted the live region is shifted down in place, so the steady state
// allocates nothing.
type GenPolicy struct {
	P       Params
	Sig     *SigTracker
	win     []WindowToken
	winHead int
	keyBuf  []float32
	valBuf  []float32
}

// NewGenPolicy creates a generation policy with validated parameters for a
// head of dimension dim.
func NewGenPolicy(p Params, dim, expectLen int) (*GenPolicy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &GenPolicy{
		P:      p,
		Sig:    NewSigTracker(expectLen),
		win:    make([]WindowToken, 0, p.Window+1),
		keyBuf: make([]float32, dim),
		valBuf: make([]float32, dim),
	}, nil
}

// Window exposes the uncompressed recent tokens for the attention kernel.
func (g *GenPolicy) Window() []WindowToken { return g.win[g.winHead:] }

// pushWindow appends a token, compacting the backing array in place when
// its tail is exhausted (zero allocations once warm).
func (g *GenPolicy) pushWindow(t WindowToken) {
	if g.winHead > 0 && len(g.win) == cap(g.win) {
		n := copy(g.win, g.win[g.winHead:])
		g.win = g.win[:n]
		g.winHead = 0
	}
	g.win = append(g.win, t)
}

// popWindow removes and returns the oldest window token.
func (g *GenPolicy) popWindow() WindowToken {
	t := g.win[g.winHead]
	g.win[g.winHead] = WindowToken{} // release key/val references
	g.winHead++
	if g.winHead == len(g.win) {
		g.win = g.win[:0]
		g.winHead = 0
	}
	return t
}

// refreshScores pushes current running averages into the page score
// segments so victim selection sees up-to-date significance, iterating
// pages' slot ranges directly (no per-token callback).
func (g *GenPolicy) refreshScores(hc *kvcache.HeadCache) {
	for _, level := range [2]kvcache.Level{kvcache.LevelHi, kvcache.LevelLo} {
		for i, n := 0, hc.PageCount(level); i < n; i++ {
			p := hc.PageAt(level, i)
			pos := p.Positions()
			scores := p.Scores()
			for s := range scores {
				scores[s] = g.Sig.Avg(int(pos[s]))
			}
		}
	}
}

// Step admits a newly generated token and, once the window is full,
// compresses the departing token via Algorithm 1 (scores are normalized,
// so "≥ αh" below is the paper's "≥ αh/N"):
//
//	if Score(tc) ≥ αh: tc → KVh; victim of KVh may be downgraded to KVl
//	                   or pruned
//	else if Score(tc) ≥ αl: tc → KVl; victim of KVl may be pruned
//	else: tc pruned
func (g *GenPolicy) Step(hc *kvcache.HeadCache, key, val []float32, pos int32) (GenStepResult, error) {
	g.pushWindow(WindowToken{Key: key, Val: val, Pos: pos})
	if len(g.Window()) <= g.P.Window {
		return GenStepResult{}, nil
	}
	tc := g.popWindow()
	g.refreshScores(hc)

	score := g.Sig.Avg(int(tc.Pos))
	res := GenStepResult{Compressed: true, CandidateLevel: classify(float64(score), g.P)}

	switch res.CandidateLevel {
	case LevelHigh:
		if err := hc.AppendToken(kvcache.LevelHi, tc.Key, tc.Val, score, tc.Pos); err != nil {
			return res, err
		}
		res.Demand.HiDelta = 1
		ref, vScore, ok := hc.MinScore(kvcache.LevelHi)
		if !ok {
			break
		}
		switch vLevel := classify(float64(vScore), g.P); vLevel {
		case LevelHigh:
			// still significant: stays
		case LevelLow:
			if err := hc.Downgrade(ref, g.keyBuf, g.valBuf); err != nil {
				return res, err
			}
			res.Victim = VictimDowngraded
			res.Demand.HiRemoved = 1
			res.Demand.LoDelta = 1
		default:
			if err := hc.RemoveToken(ref); err != nil {
				return res, err
			}
			res.Victim = VictimPruned
			res.Demand.HiRemoved = 1
		}
	case LevelLow:
		if err := hc.AppendToken(kvcache.LevelLo, tc.Key, tc.Val, score, tc.Pos); err != nil {
			return res, err
		}
		res.Demand.LoDelta = 1
		ref, vScore, ok := hc.MinScore(kvcache.LevelLo)
		if !ok {
			break
		}
		if classify(float64(vScore), g.P) == LevelPruned {
			if err := hc.RemoveToken(ref); err != nil {
				return res, err
			}
			res.Victim = VictimPruned
			res.Demand.LoRemoved = 1
		}
	case LevelPruned:
		// dropped outright
	}
	return res, nil
}

// FlushWindow stores every remaining window token at high precision (end
// of generation, used when the caller wants the final cache state to cover
// the full sequence).
func (g *GenPolicy) FlushWindow(hc *kvcache.HeadCache) error {
	for len(g.Window()) > 0 {
		tc := g.popWindow()
		score := g.Sig.Avg(int(tc.Pos))
		// window tokens are recent: store at high precision
		if err := hc.AppendToken(kvcache.LevelHi, tc.Key, tc.Val, score, tc.Pos); err != nil {
			return fmt.Errorf("policy: flush: %w", err)
		}
	}
	return nil
}
