package policy

import (
	"testing"
	"testing/quick"

	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/quant"
)

func TestParamsValidateDefaults(t *testing.T) {
	p := Params{AlphaH: 1, AlphaL: 0.02}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Window != 64 {
		t.Fatalf("default window = %d", p.Window)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	bad := []Params{
		{AlphaH: -1},
		{AlphaH: 1, AlphaL: 2}, // αl > αh
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("expected error for %+v", p)
		}
	}
	// αl > αh is fine when the low tier is disabled (αl is the retention
	// threshold there)
	ok := Params{AlphaH: 1, AlphaL: 2, DisableLow: true}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsForModel(t *testing.T) {
	if ParamsForModel("Qwen2.5-7B") != ParamsQwen7B {
		t.Fatal("Qwen2.5-7B params wrong")
	}
	if ParamsForModel("QwQ-32B") != ParamsQwen32B {
		t.Fatal("QwQ-32B params wrong")
	}
	if ParamsForModel("Llama3-8B") != ParamsLlama3 {
		t.Fatal("Llama3-8B params wrong")
	}
	if ParamsForModel("anything-else") != ParamsLlama3 {
		t.Fatal("fallback params wrong")
	}
}

func TestClassifyThresholds(t *testing.T) {
	// scores are normalized: 1.0 = theoretical average attention
	p := Params{AlphaH: 1, AlphaL: 0.1, Window: 4}
	if classify(2.0, p) != LevelHigh { // twice average
		t.Fatal("high misclassified")
	}
	if classify(0.5, p) != LevelLow { // 0.1 <= 0.5 < 1
		t.Fatal("low misclassified")
	}
	if classify(0.05, p) != LevelPruned {
		t.Fatal("pruned misclassified")
	}
	// boundary values are inclusive
	if classify(1.0, p) != LevelHigh || classify(0.1, p) != LevelLow {
		t.Fatal("boundary not inclusive")
	}
}

func TestClassifyNoPruneWhenAlphaLZero(t *testing.T) {
	p := Params{AlphaH: 1, AlphaL: 0, Window: 4}
	if classify(0, p) != LevelLow {
		t.Fatal("αl=0 must never prune")
	}
}

func TestClassifyDisableLow(t *testing.T) {
	p := Params{AlphaH: 1, AlphaL: 0.04, Window: 4, DisableLow: true}
	if classify(0.1, p) != LevelHigh { // 0.1 >= 0.04
		t.Fatal("retention misclassified")
	}
	if classify(0.001, p) != LevelPruned {
		t.Fatal("prune misclassified")
	}
}

func TestClassifyPromptWindowAlwaysHigh(t *testing.T) {
	p := Params{AlphaH: 5, AlphaL: 1, Window: 8}
	sig := make([]float32, 32) // all zero: would be pruned
	levels := ClassifyPrompt(sig, p)
	for i := 0; i < 24; i++ {
		if levels[i] != LevelPruned {
			t.Fatalf("token %d should be pruned", i)
		}
	}
	for i := 24; i < 32; i++ {
		if levels[i] != LevelHigh {
			t.Fatalf("window token %d must be high precision", i)
		}
	}
}

func TestClassifySequenceLengthAdaptive(t *testing.T) {
	// Normalization makes the rule sequence-length adaptive: the same raw
	// attention score clears the threshold more easily in longer
	// sequences (raw × N grows with N).
	p := Params{AlphaH: 1, AlphaL: 0.5, Window: 1}
	raw := 0.005
	if classify(raw*100, p) == LevelHigh {
		t.Fatal("short-sequence token should not be high precision")
	}
	if classify(raw*500, p) != LevelHigh {
		t.Fatal("long-sequence token should be high precision")
	}
}

func TestDemandAndBreakdown(t *testing.T) {
	levels := []Level{LevelHigh, LevelHigh, LevelLow, LevelPruned}
	d := Demand(levels)
	if d.HiTokens != 2 || d.LoTokens != 1 {
		t.Fatalf("demand = %+v", d)
	}
	b := BreakdownOf(levels)
	if b.High != 0.5 || b.Low != 0.25 || b.Pruned != 0.25 {
		t.Fatalf("breakdown = %+v", b)
	}
	if (BreakdownOf(nil) != Breakdown{}) {
		t.Fatal("empty breakdown should be zero")
	}
}

func TestSigTracker(t *testing.T) {
	s := NewSigTracker(4)
	s.Add(2, 0.4)
	s.Add(2, 0.2)
	if got := s.Avg(2); got != 0.3 {
		t.Fatalf("Avg = %v", got)
	}
	if s.Avg(0) != 0 || s.Avg(-1) != 0 || s.Avg(100) != 0 {
		t.Fatal("unobserved positions should be 0")
	}
	// growth beyond initial size
	s.Add(100, 1)
	if s.Avg(100) != 1 {
		t.Fatal("tracker did not grow")
	}
	s.Seed(50, 0.7)
	if s.Avg(50) != 0.7 {
		t.Fatal("seed failed")
	}
}

func genManager(t *testing.T) *kvcache.Manager {
	t.Helper()
	m, err := kvcache.NewManager(kvcache.Config{
		Dim: 64, PageBytes: 4096, NumPages: 256,
		HiPrec: quant.K8V4, LoPrec: quant.K4V2,
		MaxSeqLen: 2048, Materialize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mkToken(rng *mathx.RNG, dim int) (k, v []float32) {
	k = make([]float32, dim)
	v = make([]float32, dim)
	rng.NormVec(k, 1)
	rng.NormVec(v, 1)
	return
}

func TestGenPolicyWindowFill(t *testing.T) {
	m := genManager(t)
	sc, _ := m.AddSequence(1, 1)
	hc := sc.Heads[0]
	g, err := NewGenPolicy(Params{AlphaH: 1, AlphaL: 0.01, Window: 8}, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(1)
	for i := 0; i < 8; i++ {
		k, v := mkToken(rng, 64)
		res, err := g.Step(hc, k, v, int32(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Compressed {
			t.Fatalf("step %d compressed while window filling", i)
		}
	}
	if len(g.Window()) != 8 {
		t.Fatalf("window size = %d", len(g.Window()))
	}
	if hc.TotalTokens() != 0 {
		t.Fatal("no tokens should be cached yet")
	}
	// 9th token pushes one token out of the window
	k, v := mkToken(rng, 64)
	res, err := g.Step(hc, k, v, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compressed {
		t.Fatal("9th step should compress")
	}
	if len(g.Window()) != 8 {
		t.Fatalf("window should stay at W: %d", len(g.Window()))
	}
}

func TestGenPolicyHighCandidate(t *testing.T) {
	m := genManager(t)
	sc, _ := m.AddSequence(1, 1)
	hc := sc.Heads[0]
	g, _ := NewGenPolicy(Params{AlphaH: 1, AlphaL: 0.01, Window: 2}, 64, 128)
	rng := mathx.NewRNG(2)

	// token 0 gets a huge normalized significance -> high tier
	g.Sig.Seed(0, 5.0)
	for i := 0; i < 3; i++ {
		k, v := mkToken(rng, 64)
		if _, err := g.Step(hc, k, v, int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if hc.HiTokens() != 1 {
		t.Fatalf("hi tokens = %d, want 1", hc.HiTokens())
	}
	if hc.LoTokens() != 0 {
		t.Fatalf("lo tokens = %d", hc.LoTokens())
	}
}

func TestGenPolicyPruneCandidate(t *testing.T) {
	m := genManager(t)
	sc, _ := m.AddSequence(1, 1)
	hc := sc.Heads[0]
	g, _ := NewGenPolicy(Params{AlphaH: 1, AlphaL: 0.5, Window: 2}, 64, 128)
	rng := mathx.NewRNG(3)
	// no significance observed -> Avg=0 -> pruned
	for i := 0; i < 5; i++ {
		k, v := mkToken(rng, 64)
		res, err := g.Step(hc, k, v, int32(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Compressed && res.CandidateLevel != LevelPruned {
			t.Fatalf("expected prune, got %v", res.CandidateLevel)
		}
	}
	if hc.TotalTokens() != 0 {
		t.Fatalf("pruned tokens leaked: %d", hc.TotalTokens())
	}
}

func TestGenPolicyDowngradePath(t *testing.T) {
	// A token enters high, then loses significance relative to the
	// threshold as N grows, and must be downgraded to low — the smooth
	// downgrade path of Algorithm 1.
	m := genManager(t)
	sc, _ := m.AddSequence(1, 1)
	hc := sc.Heads[0]
	g, _ := NewGenPolicy(Params{AlphaH: 1, AlphaL: 0.001, Window: 1}, 64, 2048)
	rng := mathx.NewRNG(4)

	// token 0: normalized significance 2.0 — above αh, lands in high tier
	g.Sig.Seed(0, 2.0)
	k, v := mkToken(rng, 64)
	g.Step(hc, k, v, 0)
	k, v = mkToken(rng, 64)
	res, _ := g.Step(hc, k, v, 1)
	if res.CandidateLevel != LevelHigh || hc.HiTokens() != 1 {
		t.Fatalf("setup failed: %+v hi=%d", res, hc.HiTokens())
	}

	// token 0's running average decays below αh but stays above αl:
	// Algorithm 1 must downgrade it, not prune it
	g.Sig.Add(0, 0) // running average 1.0
	g.Sig.Add(0, 0) // 0.66
	g.Sig.Add(0, 0) // 0.5
	for i := 2; i < 12; i++ {
		k, v = mkToken(rng, 64)
		g.Sig.Seed(int(i), 3.0)
		res, err := g.Step(hc, k, v, int32(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Victim == VictimDowngraded {
			// token 0 downgraded: found the path
			if hc.LoTokens() == 0 {
				t.Fatal("downgrade did not land in low tier")
			}
			return
		}
	}
	t.Fatalf("downgrade path never taken (hi=%d lo=%d)", hc.HiTokens(), hc.LoTokens())
}

func TestGenPolicyVictimPrunedFromLow(t *testing.T) {
	m := genManager(t)
	sc, _ := m.AddSequence(1, 1)
	hc := sc.Heads[0]
	// αl > 0 so low victims whose score decays below αl/N get pruned
	g, _ := NewGenPolicy(Params{AlphaH: 10, AlphaL: 0.2, Window: 1}, 64, 2048)
	rng := mathx.NewRNG(5)

	// all tokens moderately significant: land in low tier
	for i := 0; i < 30; i++ {
		g.Sig.Seed(i, 0.5) // in [αl, αh): low tier
		k, v := mkToken(rng, 64)
		if _, err := g.Step(hc, k, v, int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if hc.LoTokens() == 0 {
		t.Fatal("no tokens in low tier")
	}
	// now decay token 3's significance to ~0 and keep stepping
	for j := 0; j < 200; j++ {
		g.Sig.Add(3, 0)
	}
	k, v := mkToken(rng, 64)
	res, err := g.Step(hc, k, v, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Victim != VictimPruned {
		t.Fatalf("victim action = %v, want pruned", res.Victim)
	}
}

func TestGenPolicyFlushWindow(t *testing.T) {
	m := genManager(t)
	sc, _ := m.AddSequence(1, 1)
	hc := sc.Heads[0]
	g, _ := NewGenPolicy(Params{AlphaH: 1, AlphaL: 0, Window: 16}, 64, 128)
	rng := mathx.NewRNG(6)
	for i := 0; i < 10; i++ {
		k, v := mkToken(rng, 64)
		g.Step(hc, k, v, int32(i))
	}
	if err := g.FlushWindow(hc); err != nil {
		t.Fatal(err)
	}
	if hc.HiTokens() != 10 {
		t.Fatalf("flush stored %d tokens, want 10", hc.HiTokens())
	}
	if len(g.Window()) != 0 {
		t.Fatal("window not emptied")
	}
}

// Property: Algorithm 1 conserves tokens — every generated token is either
// in the window, in a tier, or was explicitly pruned.
func TestGenPolicyConservationProperty(t *testing.T) {
	f := func(sigRaw []uint8) bool {
		if len(sigRaw) > 64 {
			sigRaw = sigRaw[:64]
		}
		m, err := kvcache.NewManager(kvcache.Config{
			Dim: 16, PageBytes: 2048, NumPages: 128, MaxSeqLen: 512, Materialize: true,
		})
		if err != nil {
			return false
		}
		sc, _ := m.AddSequence(1, 1)
		hc := sc.Heads[0]
		g, err := NewGenPolicy(Params{AlphaH: 1, AlphaL: 0.05, Window: 4}, 16, 64)
		if err != nil {
			return false
		}
		rng := mathx.NewRNG(7)
		pruned := 0
		for i, sv := range sigRaw {
			g.Sig.Seed(i, float32(sv)/255)
			k, v := mkToken(rng, 16)
			res, err := g.Step(hc, k, v, int32(i))
			if err != nil {
				return false
			}
			if res.Compressed && res.CandidateLevel == LevelPruned {
				pruned++
			}
			if res.Victim == VictimPruned {
				pruned++
			}
		}
		total := hc.TotalTokens() + len(g.Window()) + pruned
		return total == len(sigRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
