package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// sample variance of that classic dataset is 32/7
	if math.Abs(s.Var()-32.0/7.0) > 1e-9 {
		t.Fatalf("Var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Fatal("empty summary should be zero-valued")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3)
	if s.Var() != 0 {
		t.Fatalf("single-sample variance = %v", s.Var())
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, all Summary
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for i, v := range vals {
		all.Add(v)
		if i < 4 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Fatalf("merged mean = %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Fatalf("merged var = %v vs %v", a.Var(), all.Var())
	}
	if a.Min() != 1 || a.Max() != 10 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(5)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty changed summary")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 5 {
		t.Fatal("merge into empty failed")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("quantile endpoints wrong")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatalf("median = %v", Quantile(xs, 0.5))
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Fatalf("interpolated median = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(2); got != 0.75 {
		t.Fatalf("At(2) = %v, want 0.75", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %v", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 {
		t.Fatal("empty CDF should return 0")
	}
	xs, ps := c.Points(5)
	if xs != nil || ps != nil {
		t.Fatal("empty CDF points should be nil")
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3, 2, 4, 9, 7})
	xs, ps := c.Points(5)
	if len(xs) != 5 || len(ps) != 5 {
		t.Fatalf("points lengths: %d %d", len(xs), len(ps))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] || ps[i] < ps[i-1] {
			t.Fatalf("CDF points not monotone: %v %v", xs, ps)
		}
	}
}

func TestOrdersOfMagnitude(t *testing.T) {
	c := NewCDF([]float64{1e-6, 1e-3, 1})
	if got := c.OrdersOfMagnitude(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("OoM = %v, want 6", got)
	}
	// non-positive values ignored
	c2 := NewCDF([]float64{-1, 0, 0.1, 10})
	if got := c2.OrdersOfMagnitude(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("OoM = %v, want 2", got)
	}
	if NewCDF([]float64{5}).OrdersOfMagnitude() != 0 {
		t.Fatal("single value OoM should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1, 2.5, 5, 9.99, 10, 11} {
		h.Add(v)
	}
	buckets, under, over := h.Counts()
	if under != 1 || over != 2 {
		t.Fatalf("under/over = %d/%d", under, over)
	}
	if buckets[0] != 2 { // 0, 1
		t.Fatalf("bucket0 = %d", buckets[0])
	}
	if buckets[1] != 1 { // 2.5
		t.Fatalf("bucket1 = %d", buckets[1])
	}
	if buckets[4] != 1 { // 9.99
		t.Fatalf("bucket4 = %d", buckets[4])
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 5; i++ {
		h.Add(3.5)
	}
	h.Add(7.5)
	if got := h.Mode(); got != 3.5 {
		t.Fatalf("Mode = %v, want 3.5", got)
	}
}

func TestHistogramInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 5)
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		123.4:  "123",
		12.34:  "12.3",
		0.1234: "0.123",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatFloat(1e-6); got != "1.00e-06" {
		t.Fatalf("FormatFloat(1e-6) = %q", got)
	}
}

// Property: streaming summary mean matches direct mean.
func TestSummaryMeanProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		var direct float64
		for _, v := range raw {
			s.Add(float64(v))
			direct += float64(v)
		}
		direct /= float64(len(raw))
		return math.Abs(s.Mean()-direct) < 1e-6*(1+math.Abs(direct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF.At is monotone.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []int8, probes []int8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		c := NewCDF(xs)
		prevX, prevP := math.Inf(-1), 0.0
		ps := make([]float64, len(probes))
		for i, p := range probes {
			ps[i] = float64(p)
		}
		// probe in sorted order
		for _, x := range ps {
			if x < prevX {
				continue
			}
			p := c.At(x)
			if x >= prevX && p < prevP {
				return false
			}
			prevX, prevP = x, p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
