// Package stats provides the small statistics toolkit used by the
// experiment harnesses: streaming summaries, quantiles, histograms and CDFs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a streaming mean / variance / min / max (Welford).
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds a value into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the sample variance (0 for fewer than two observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Merge folds another summary into s.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation. It copies and sorts its input. Panics on empty input or
// out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile q out of [0,1]")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from a sample (copied and sorted).
func NewCDF(xs []float64) *CDF {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return &CDF{sorted: cp}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, x)
	// include equal values
	for idx < len(c.sorted) && c.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(c.sorted))
}

// Points returns n (x, P(X<=x)) pairs evenly spaced in rank order —
// convenient for printing CDF series such as paper Fig. 2.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if n <= 0 || len(c.sorted) == 0 {
		return nil, nil
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		rank := float64(i) / float64(n-1)
		if n == 1 {
			rank = 1
		}
		idx := int(rank * float64(len(c.sorted)-1))
		xs[i] = c.sorted[idx]
		ps[i] = float64(idx+1) / float64(len(c.sorted))
	}
	return xs, ps
}

// OrdersOfMagnitude returns log10(max/min) over the strictly positive values
// of the sample; 0 if fewer than two positive values exist. Used to verify
// the Fig. 2 claim that attention scores span ~7 orders of magnitude while
// value norms span at most ~2.
func (c *CDF) OrdersOfMagnitude() float64 {
	var minP, maxP float64
	seen := false
	for _, v := range c.sorted {
		if v <= 0 {
			continue
		}
		if !seen {
			minP, maxP = v, v
			seen = true
		} else {
			if v < minP {
				minP = v
			}
			if v > maxP {
				maxP = v
			}
		}
	}
	if !seen || minP == maxP {
		return 0
	}
	return math.Log10(maxP / minP)
}

// Histogram is a fixed-width bucket histogram over [lo, hi).
type Histogram struct {
	lo, hi  float64
	buckets []int
	under   int
	over    int
	total   int
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, n)}
}

// Add folds a value into the histogram.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if idx >= len(h.buckets) {
			idx = len(h.buckets) - 1
		}
		h.buckets[idx]++
	}
}

// Counts returns the per-bucket counts plus (under, over) outliers.
func (h *Histogram) Counts() (buckets []int, under, over int) {
	return append([]int(nil), h.buckets...), h.under, h.over
}

// Total returns the number of values added.
func (h *Histogram) Total() int { return h.total }

// Mode returns the midpoint of the fullest bucket.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.buckets {
		if c > h.buckets[best] {
			best = i
		}
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	return h.lo + (float64(best)+0.5)*width
}

// FormatFloat renders a float with sensible precision for table output.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 0.001:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}
