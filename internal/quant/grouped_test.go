package quant

import (
	"testing"

	"diffkv/internal/mathx"
)

func TestGroupedMetaBytes(t *testing.T) {
	if GroupedMetaBytes(128, 32) != 4*8 {
		t.Fatal("128/32 groups metadata wrong")
	}
	if GroupedMetaBytes(130, 32) != 5*8 { // partial group
		t.Fatal("partial group metadata wrong")
	}
}

func TestGroupedTokenBytesExceedsPerVector(t *testing.T) {
	// group-wise metadata must cost more than per-vector metadata
	dim := 128
	if GroupedTokenBytes(dim, K4V4, 32) <= K4V4.TokenBytes(dim) {
		t.Fatal("grouped tokens should be larger (more metadata)")
	}
}

func TestRoundTripGroupedBeatsPerVectorWithOutliers(t *testing.T) {
	// A vector with outlier channels: grouped quantization contains the
	// damage to the outlier's group; per-vector quantization corrupts
	// every element. This is why Atom-style INT4 is usable while
	// per-vector 4-bit keys are not.
	rng := mathx.NewRNG(1)
	src := make([]float32, 128)
	rng.NormVec(src, 1)
	src[5] += 40
	src[77] -= 40

	perVec := RoundTrip(src, 4)
	grouped := RoundTripGrouped(src, 4, 32)
	ePer := mathx.RelErr(perVec, src)
	eGrp := mathx.RelErr(grouped, src)
	if eGrp >= ePer/2 {
		t.Fatalf("grouped error %v should be well below per-vector %v", eGrp, ePer)
	}
}

func TestRoundTripGroupedPartialTail(t *testing.T) {
	rng := mathx.NewRNG(2)
	src := make([]float32, 100) // not a multiple of 32
	rng.NormVec(src, 1)
	out := RoundTripGrouped(src, 8, 32)
	if len(out) != 100 {
		t.Fatalf("length = %d", len(out))
	}
	if e := mathx.RelErr(out, src); e > 0.02 {
		t.Fatalf("8-bit grouped error = %v", e)
	}
}

func TestRoundTripGroupedDegenerateGroupSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RoundTripGrouped([]float32{1}, 4, 0)
}

func TestRoundTripMatchesQuantizeInto(t *testing.T) {
	rng := mathx.NewRNG(3)
	src := make([]float32, 64)
	rng.NormVec(src, 1)
	viaHelper := RoundTrip(src, 4)
	buf := make([]byte, PackedLen(64, 4))
	s, z := QuantizeInto(src, 4, buf)
	direct := make([]float32, 64)
	DequantizeInto(buf, 4, 64, s, z, direct)
	for i := range direct {
		if direct[i] != viaHelper[i] {
			t.Fatal("RoundTrip diverges from direct quantize/dequantize")
		}
	}
}
