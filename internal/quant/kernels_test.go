package quant

import (
	"math"
	"testing"

	"diffkv/internal/mathx"
)

// refDequantDot is the straightforward per-element kernel the specialized
// loops must agree with.
func refDequantDot(q []float32, data []byte, bits int, scale, zero float32) float32 {
	if bits == BitsF16 {
		var s float32
		for i := range q {
			h := uint16(data[2*i]) | uint16(data[2*i+1])<<8
			s += q[i] * F16ToF32(h)
		}
		return s
	}
	perByte := 8 / bits
	mask := byte(levels(bits))
	var dotQ, sumQ float32
	for i := range q {
		b := data[i/perByte]
		qv := (b >> uint((i%perByte)*bits)) & mask
		dotQ += q[i] * float32(qv)
		sumQ += q[i]
	}
	return scale*dotQ + zero*sumQ
}

func refDequantAxpy(w float32, data []byte, bits, n int, scale, zero float32, dst []float32) {
	if bits == BitsF16 {
		for i := 0; i < n; i++ {
			h := uint16(data[2*i]) | uint16(data[2*i+1])<<8
			dst[i] += w * F16ToF32(h)
		}
		return
	}
	perByte := 8 / bits
	mask := byte(levels(bits))
	for i := 0; i < n; i++ {
		b := data[i/perByte]
		qv := (b >> uint((i%perByte)*bits)) & mask
		dst[i] += w*scale*float32(qv) + w*zero
	}
}

var kernelDims = []int{1, 3, 7, 8, 31, 64, 128}

func TestSpecializedDotMatchesReference(t *testing.T) {
	rng := mathx.NewRNG(11)
	for _, bits := range []int{1, 2, 4, 8, BitsF16} {
		for _, dim := range kernelDims {
			src := make([]float32, dim)
			q := make([]float32, dim)
			rng.NormVec(src, 1.3)
			rng.NormVec(q, 1)
			data := make([]byte, PackedLen(dim, bits))
			scale, zero := QuantizeInto(src, bits, data)
			got := DequantDot(q, data, bits, scale, zero)
			want := refDequantDot(q, data, bits, scale, zero)
			if math.Abs(float64(got-want)) > 1e-3*(1+math.Abs(float64(want))) {
				t.Fatalf("bits=%d dim=%d: dot %v != ref %v", bits, dim, got, want)
			}
		}
	}
}

func TestSpecializedAxpyMatchesReference(t *testing.T) {
	rng := mathx.NewRNG(12)
	for _, bits := range []int{1, 2, 4, 8, BitsF16} {
		for _, dim := range kernelDims {
			src := make([]float32, dim)
			rng.NormVec(src, 0.8)
			data := make([]byte, PackedLen(dim, bits))
			scale, zero := QuantizeInto(src, bits, data)
			got := make([]float32, dim)
			want := make([]float32, dim)
			DequantAxpy(0.37, data, bits, dim, scale, zero, got)
			refDequantAxpy(0.37, data, bits, dim, scale, zero, want)
			for i := range got {
				if math.Abs(float64(got[i]-want[i])) > 1e-4 {
					t.Fatalf("bits=%d dim=%d i=%d: %v != %v", bits, dim, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSpecializedDequantizeMatchesRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(13)
	for _, bits := range []int{1, 2, 4, 8, BitsF16} {
		for _, dim := range kernelDims {
			src := make([]float32, dim)
			rng.NormVec(src, 1)
			data := make([]byte, PackedLen(dim, bits))
			scale, zero := QuantizeInto(src, bits, data)
			dst := make([]float32, dim)
			DequantizeInto(data, bits, dim, scale, zero, dst)
			// reconstruction error bounded by half a quantization step
			if bits != BitsF16 {
				step := float64(scale)
				for i := range dst {
					if d := math.Abs(float64(dst[i] - src[i])); d > step/2+1e-5 {
						t.Fatalf("bits=%d dim=%d i=%d: err %v > step/2 %v", bits, dim, i, d, step/2)
					}
				}
			}
		}
	}
}

// slotPage packs nSlots quantized vectors the way a unified page stores
// them: contiguous codes at fixed stride plus a (scale, zero) pair per slot.
func slotPage(rng *mathx.RNG, bits, dim, nSlots int) (data []byte, meta []float32, vecs [][]float32) {
	stride := PackedLen(dim, bits)
	data = make([]byte, nSlots*stride)
	meta = make([]float32, 2*nSlots)
	for s := 0; s < nSlots; s++ {
		v := make([]float32, dim)
		rng.NormVec(v, 1)
		vecs = append(vecs, v)
		sc, z := QuantizeInto(v, bits, data[s*stride:(s+1)*stride])
		meta[2*s], meta[2*s+1] = sc, z
	}
	return data, meta, vecs
}

func TestDequantDotSlotsMatchesPerToken(t *testing.T) {
	rng := mathx.NewRNG(14)
	for _, bits := range []int{1, 2, 4, 8, BitsF16} {
		dim, nSlots := 64, 9
		data, meta, _ := slotPage(rng, bits, dim, nSlots)
		q := make([]float32, dim)
		rng.NormVec(q, 1)
		out := make([]float32, nSlots)
		DequantDotSlots(q, data, bits, nSlots, meta, out)
		stride := PackedLen(dim, bits)
		for s := 0; s < nSlots; s++ {
			want := DequantDot(q, data[s*stride:(s+1)*stride], bits, meta[2*s], meta[2*s+1])
			if math.Abs(float64(out[s]-want)) > 1e-4*(1+math.Abs(float64(want))) {
				t.Fatalf("bits=%d slot=%d: %v != %v", bits, s, out[s], want)
			}
		}
	}
}

func TestDequantAxpySlotsMatchesPerToken(t *testing.T) {
	rng := mathx.NewRNG(15)
	for _, bits := range []int{1, 2, 4, 8, BitsF16} {
		dim, nSlots := 48, 7
		data, meta, _ := slotPage(rng, bits, dim, nSlots)
		w := make([]float32, nSlots)
		for s := range w {
			w[s] = float32(rng.Float64())
		}
		got := make([]float32, dim)
		DequantAxpySlots(w, data, bits, dim, meta, got)
		want := make([]float32, dim)
		stride := PackedLen(dim, bits)
		for s := 0; s < nSlots; s++ {
			DequantAxpy(w[s], data[s*stride:(s+1)*stride], bits, dim, meta[2*s], meta[2*s+1], want)
		}
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				t.Fatalf("bits=%d i=%d: %v != %v", bits, i, got[i], want[i])
			}
		}
	}
}

func TestDequantDotZeroAllocs(t *testing.T) {
	rng := mathx.NewRNG(16)
	dim := 128
	src := make([]float32, dim)
	q := make([]float32, dim)
	rng.NormVec(src, 1)
	rng.NormVec(q, 1)
	data := make([]byte, PackedLen(dim, 4))
	scale, zero := QuantizeInto(src, 4, data)
	var sink float32
	allocs := testing.AllocsPerRun(100, func() {
		sink += DequantDot(q, data, 4, scale, zero)
	})
	if allocs != 0 {
		t.Fatalf("DequantDot allocated %v per run", allocs)
	}
	_ = sink
}

func TestDequantAxpyZeroAllocs(t *testing.T) {
	rng := mathx.NewRNG(17)
	dim := 128
	src := make([]float32, dim)
	rng.NormVec(src, 1)
	data := make([]byte, PackedLen(dim, 2))
	scale, zero := QuantizeInto(src, 2, data)
	dst := make([]float32, dim)
	allocs := testing.AllocsPerRun(100, func() {
		DequantAxpy(0.5, data, 2, dim, scale, zero, dst)
	})
	if allocs != 0 {
		t.Fatalf("DequantAxpy allocated %v per run", allocs)
	}
}

func TestSlotKernelsZeroAllocs(t *testing.T) {
	rng := mathx.NewRNG(18)
	dim, nSlots := 128, 16
	data, meta, _ := slotPage(rng, 4, dim, nSlots)
	q := make([]float32, dim)
	rng.NormVec(q, 1)
	out := make([]float32, nSlots)
	dst := make([]float32, dim)
	allocs := testing.AllocsPerRun(100, func() {
		DequantDotSlots(q, data, 4, nSlots, meta, out)
		DequantAxpySlots(out, data, 4, dim, meta, dst)
	})
	if allocs != 0 {
		t.Fatalf("slot kernels allocated %v per run", allocs)
	}
}
