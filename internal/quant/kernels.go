package quant

// Bit-width-specialized decode loops and page-granular batched kernels.
//
// The generic loops in quant.go recompute i/perByte and a variable shift for
// every element. The specialized loops below load each packed byte once and
// decode its 8/bits values with constant shifts — the Go analogue of the
// paper's CUDA kernel decoding a full register per instruction (§6.2). The
// *Slots variants process every occupied slot of a unified page in one call,
// so the attention path pays bit-width dispatch and the q-summation term
// once per page rather than once per token.

import "fmt"

// sum32 returns the sum of q's elements (the Σq term shared by every slot of
// a page in the fused dot kernel).
func sum32(q []float32) float32 {
	var s float32
	for _, v := range q {
		s += v
	}
	return s
}

// dotPacked returns dot(q, Q) over len(q) packed b-bit codes, decoding one
// loaded byte at a time.
func dotPacked(q []float32, data []byte, bits int) float32 {
	n := len(q)
	var s float32
	switch bits {
	case 8:
		for i, qv := range q {
			s += qv * float32(data[i])
		}
	case 4:
		i := 0
		for ; i+2 <= n; i += 2 {
			b := data[i>>1]
			s += q[i]*float32(b&0x0f) + q[i+1]*float32(b>>4)
		}
		if i < n {
			s += q[i] * float32(data[i>>1]&0x0f)
		}
	case 2:
		i := 0
		for ; i+4 <= n; i += 4 {
			b := data[i>>2]
			s += q[i]*float32(b&3) + q[i+1]*float32((b>>2)&3) +
				q[i+2]*float32((b>>4)&3) + q[i+3]*float32(b>>6)
		}
		for ; i < n; i++ {
			s += q[i] * float32((data[i>>2]>>uint((i&3)*2))&3)
		}
	case 1:
		i := 0
		for ; i+8 <= n; i += 8 {
			b := data[i>>3]
			s += q[i]*float32(b&1) + q[i+1]*float32((b>>1)&1) +
				q[i+2]*float32((b>>2)&1) + q[i+3]*float32((b>>3)&1) +
				q[i+4]*float32((b>>4)&1) + q[i+5]*float32((b>>5)&1) +
				q[i+6]*float32((b>>6)&1) + q[i+7]*float32(b>>7)
		}
		for ; i < n; i++ {
			s += q[i] * float32((data[i>>3]>>uint(i&7))&1)
		}
	default:
		panic(fmt.Sprintf("quant: unsupported bit width %d", bits))
	}
	return s
}

// dotSumPacked returns (dot(q, Q), Σq) in a single pass — the single-vector
// variant of dotPacked for callers that cannot amortize Σq across a page.
func dotSumPacked(q []float32, data []byte, bits int) (dot, sum float32) {
	n := len(q)
	switch bits {
	case 8:
		for i, qv := range q {
			dot += qv * float32(data[i])
			sum += qv
		}
	case 4:
		i := 0
		for ; i+2 <= n; i += 2 {
			b := data[i>>1]
			q0, q1 := q[i], q[i+1]
			dot += q0*float32(b&0x0f) + q1*float32(b>>4)
			sum += q0 + q1
		}
		if i < n {
			dot += q[i] * float32(data[i>>1]&0x0f)
			sum += q[i]
		}
	case 2:
		i := 0
		for ; i+4 <= n; i += 4 {
			b := data[i>>2]
			q0, q1, q2, q3 := q[i], q[i+1], q[i+2], q[i+3]
			dot += q0*float32(b&3) + q1*float32((b>>2)&3) +
				q2*float32((b>>4)&3) + q3*float32(b>>6)
			sum += q0 + q1 + q2 + q3
		}
		for ; i < n; i++ {
			dot += q[i] * float32((data[i>>2]>>uint((i&3)*2))&3)
			sum += q[i]
		}
	case 1:
		i := 0
		for ; i+8 <= n; i += 8 {
			b := data[i>>3]
			dot += q[i]*float32(b&1) + q[i+1]*float32((b>>1)&1) +
				q[i+2]*float32((b>>2)&1) + q[i+3]*float32((b>>3)&1) +
				q[i+4]*float32((b>>4)&1) + q[i+5]*float32((b>>5)&1) +
				q[i+6]*float32((b>>6)&1) + q[i+7]*float32(b>>7)
			sum += q[i] + q[i+1] + q[i+2] + q[i+3] + q[i+4] + q[i+5] + q[i+6] + q[i+7]
		}
		for ; i < n; i++ {
			dot += q[i] * float32((data[i>>3]>>uint(i&7))&1)
			sum += q[i]
		}
	default:
		panic(fmt.Sprintf("quant: unsupported bit width %d", bits))
	}
	return dot, sum
}

// dotF16 returns dot(q, unpacked binary16 data).
func dotF16(q []float32, data []byte) float32 {
	var s float32
	for i := range q {
		h := uint16(data[2*i]) | uint16(data[2*i+1])<<8
		s += q[i] * F16ToF32(h)
	}
	return s
}

// axpyPacked computes dst[i] += ws*code_i + wz for n packed b-bit codes —
// the inner loop of the fused value kernel with the weight·scale and
// weight·zero products already folded in.
func axpyPacked(ws, wz float32, data []byte, bits, n int, dst []float32) {
	switch bits {
	case 8:
		for i := 0; i < n; i++ {
			dst[i] += ws*float32(data[i]) + wz
		}
	case 4:
		i := 0
		for ; i+2 <= n; i += 2 {
			b := data[i>>1]
			dst[i] += ws*float32(b&0x0f) + wz
			dst[i+1] += ws*float32(b>>4) + wz
		}
		if i < n {
			dst[i] += ws*float32(data[i>>1]&0x0f) + wz
		}
	case 2:
		i := 0
		for ; i+4 <= n; i += 4 {
			b := data[i>>2]
			dst[i] += ws*float32(b&3) + wz
			dst[i+1] += ws*float32((b>>2)&3) + wz
			dst[i+2] += ws*float32((b>>4)&3) + wz
			dst[i+3] += ws*float32(b>>6) + wz
		}
		for ; i < n; i++ {
			dst[i] += ws*float32((data[i>>2]>>uint((i&3)*2))&3) + wz
		}
	case 1:
		i := 0
		for ; i+8 <= n; i += 8 {
			b := data[i>>3]
			dst[i] += ws*float32(b&1) + wz
			dst[i+1] += ws*float32((b>>1)&1) + wz
			dst[i+2] += ws*float32((b>>2)&1) + wz
			dst[i+3] += ws*float32((b>>3)&1) + wz
			dst[i+4] += ws*float32((b>>4)&1) + wz
			dst[i+5] += ws*float32((b>>5)&1) + wz
			dst[i+6] += ws*float32((b>>6)&1) + wz
			dst[i+7] += ws*float32(b>>7) + wz
		}
		for ; i < n; i++ {
			dst[i] += ws*float32((data[i>>3]>>uint(i&7))&1) + wz
		}
	default:
		panic(fmt.Sprintf("quant: unsupported bit width %d", bits))
	}
}

// unpackInto decodes n packed b-bit codes as float32 code values (no
// scale/zero applied) into dst.
func unpackInto(data []byte, bits, n int, dst []float32) {
	switch bits {
	case 8:
		for i := 0; i < n; i++ {
			dst[i] = float32(data[i])
		}
	case 4:
		i := 0
		for ; i+2 <= n; i += 2 {
			b := data[i>>1]
			dst[i] = float32(b & 0x0f)
			dst[i+1] = float32(b >> 4)
		}
		if i < n {
			dst[i] = float32(data[i>>1] & 0x0f)
		}
	case 2:
		i := 0
		for ; i+4 <= n; i += 4 {
			b := data[i>>2]
			dst[i] = float32(b & 3)
			dst[i+1] = float32((b >> 2) & 3)
			dst[i+2] = float32((b >> 4) & 3)
			dst[i+3] = float32(b >> 6)
		}
		for ; i < n; i++ {
			dst[i] = float32((data[i>>2] >> uint((i&3)*2)) & 3)
		}
	case 1:
		i := 0
		for ; i+8 <= n; i += 8 {
			b := data[i>>3]
			dst[i] = float32(b & 1)
			dst[i+1] = float32((b >> 1) & 1)
			dst[i+2] = float32((b >> 2) & 1)
			dst[i+3] = float32((b >> 3) & 1)
			dst[i+4] = float32((b >> 4) & 1)
			dst[i+5] = float32((b >> 5) & 1)
			dst[i+6] = float32((b >> 6) & 1)
			dst[i+7] = float32(b >> 7)
		}
		for ; i < n; i++ {
			dst[i] = float32((data[i>>3] >> uint(i&7)) & 1)
		}
	default:
		panic(fmt.Sprintf("quant: unsupported bit width %d", bits))
	}
}

// DequantDotSlots computes out[s] = dot(q, dequantize(slot s)) for nSlots
// consecutive packed vectors — the page-granular fused key kernel. data
// holds the slots at stride PackedLen(len(q), bits); meta holds one
// (scale, zero) pair per slot (ignored for the FP16 tier). The Σq term of
// the affine expansion dot(q, s·Q+z) = s·dot(q,Q) + z·Σq is computed once
// for the whole page.
func DequantDotSlots(q []float32, data []byte, bits, nSlots int, meta []float32, out []float32) {
	if len(out) < nSlots {
		panic("quant: DequantDotSlots output too small")
	}
	dim := len(q)
	if bits == BitsF16 {
		stride := 2 * dim
		for s := 0; s < nSlots; s++ {
			out[s] = dotF16(q, data[s*stride:(s+1)*stride])
		}
		return
	}
	if len(meta) < 2*nSlots {
		panic("quant: DequantDotSlots metadata too small")
	}
	stride := PackedLen(dim, bits)
	sq := sum32(q)
	for s := 0; s < nSlots; s++ {
		d := data[s*stride : (s+1)*stride]
		out[s] = meta[2*s]*dotPacked(q, d, bits) + meta[2*s+1]*sq
	}
}

// DequantAxpySlots accumulates dst += Σ_s w[s]·dequantize(slot s) over
// len(w) consecutive packed vectors of n elements — the page-granular fused
// value kernel. meta holds one (scale, zero) pair per slot (ignored for the
// FP16 tier).
func DequantAxpySlots(w []float32, data []byte, bits, n int, meta []float32, dst []float32) {
	if len(dst) < n {
		panic("quant: DequantAxpySlots destination too small")
	}
	if bits == BitsF16 {
		stride := 2 * n
		for s, ws := range w {
			d := data[s*stride : (s+1)*stride]
			for i := 0; i < n; i++ {
				h := uint16(d[2*i]) | uint16(d[2*i+1])<<8
				dst[i] += ws * F16ToF32(h)
			}
		}
		return
	}
	if len(meta) < 2*len(w) {
		panic("quant: DequantAxpySlots metadata too small")
	}
	stride := PackedLen(n, bits)
	for s, ws := range w {
		axpyPacked(ws*meta[2*s], ws*meta[2*s+1], data[s*stride:(s+1)*stride], bits, n, dst)
	}
}
