package quant

import (
	"math"
	"testing"
	"testing/quick"

	"diffkv/internal/mathx"
)

func TestPackedLen(t *testing.T) {
	cases := []struct{ n, bits, want int }{
		{128, 8, 128},
		{128, 4, 64},
		{128, 2, 32},
		{128, 1, 16},
		{128, 16, 256},
		{7, 4, 4}, // 28 bits -> 4 bytes
		{9, 2, 3}, // 18 bits -> 3 bytes
		{3, 1, 1}, // 3 bits -> 1 byte
		{0, 8, 0},
	}
	for _, c := range cases {
		if got := PackedLen(c.n, c.bits); got != c.want {
			t.Fatalf("PackedLen(%d,%d) = %d, want %d", c.n, c.bits, got, c.want)
		}
	}
}

func TestPackedLenPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PackedLen(10, 3)
}

func roundTripErr(t *testing.T, src []float32, bits int) float64 {
	t.Helper()
	dst := make([]byte, PackedLen(len(src), bits))
	scale, zero := QuantizeInto(src, bits, dst)
	out := make([]float32, len(src))
	DequantizeInto(dst, bits, len(src), scale, zero, out)
	return mathx.RelErr(out, src)
}

func TestRoundTripErrorDecreasesWithBits(t *testing.T) {
	rng := mathx.NewRNG(1)
	src := make([]float32, 128)
	rng.NormVec(src, 1)
	var prev float64 = math.Inf(1)
	for _, bits := range []int{1, 2, 4, 8, 16} {
		e := roundTripErr(t, src, bits)
		if e >= prev {
			t.Fatalf("error at %d bits (%v) not below error at previous width (%v)", bits, e, prev)
		}
		prev = e
	}
}

func TestRoundTripINT8Tight(t *testing.T) {
	rng := mathx.NewRNG(2)
	src := make([]float32, 128)
	rng.NormVec(src, 1)
	if e := roundTripErr(t, src, 8); e > 0.01 {
		t.Fatalf("INT8 round-trip error %v too large", e)
	}
}

func TestRoundTripF16Tiny(t *testing.T) {
	rng := mathx.NewRNG(3)
	src := make([]float32, 64)
	rng.NormVec(src, 10)
	if e := roundTripErr(t, src, 16); e > 1e-3 {
		t.Fatalf("F16 round-trip error %v too large", e)
	}
}

func TestQuantizeConstantVector(t *testing.T) {
	src := []float32{2.5, 2.5, 2.5, 2.5}
	dst := make([]byte, PackedLen(4, 4))
	scale, zero := QuantizeInto(src, 4, dst)
	out := make([]float32, 4)
	DequantizeInto(dst, 4, 4, scale, zero, out)
	for _, v := range out {
		if v != 2.5 {
			t.Fatalf("constant vector not reconstructed exactly: %v", out)
		}
	}
}

func TestQuantizeEmpty(t *testing.T) {
	scale, zero := QuantizeInto(nil, 8, nil)
	if scale != 1 || zero != 0 {
		t.Fatalf("empty quantize = (%v, %v)", scale, zero)
	}
}

func TestQuantizeEndpointsExact(t *testing.T) {
	// min and max of the vector must be representable (asymmetric quant).
	src := []float32{-3, 0.1, 0.2, 5}
	for _, bits := range []int{2, 4, 8} {
		dst := make([]byte, PackedLen(len(src), bits))
		scale, zero := QuantizeInto(src, bits, dst)
		out := make([]float32, len(src))
		DequantizeInto(dst, bits, len(src), scale, zero, out)
		if math.Abs(float64(out[0]+3)) > 1e-4 {
			t.Fatalf("bits=%d min endpoint %v, want -3", bits, out[0])
		}
		if math.Abs(float64(out[3]-5)) > 1e-4 {
			t.Fatalf("bits=%d max endpoint %v, want 5", bits, out[3])
		}
	}
}

func TestDequantDotMatchesMaterialized(t *testing.T) {
	rng := mathx.NewRNG(4)
	for _, bits := range []int{1, 2, 4, 8, 16} {
		k := make([]float32, 96)
		q := make([]float32, 96)
		rng.NormVec(k, 1)
		rng.NormVec(q, 1)
		data := make([]byte, PackedLen(len(k), bits))
		scale, zero := QuantizeInto(k, bits, data)
		fused := DequantDot(q, data, bits, scale, zero)
		deq := make([]float32, len(k))
		DequantizeInto(data, bits, len(k), scale, zero, deq)
		direct := mathx.Dot(q, deq)
		if math.Abs(float64(fused-direct)) > 1e-3*(1+math.Abs(float64(direct))) {
			t.Fatalf("bits=%d fused dot %v != direct %v", bits, fused, direct)
		}
	}
}

func TestDequantAxpyMatchesMaterialized(t *testing.T) {
	rng := mathx.NewRNG(5)
	for _, bits := range []int{1, 2, 4, 8, 16} {
		v := make([]float32, 80)
		rng.NormVec(v, 2)
		data := make([]byte, PackedLen(len(v), bits))
		scale, zero := QuantizeInto(v, bits, data)

		dst1 := make([]float32, len(v))
		DequantAxpy(0.37, data, bits, len(v), scale, zero, dst1)

		deq := make([]float32, len(v))
		DequantizeInto(data, bits, len(v), scale, zero, deq)
		dst2 := make([]float32, len(v))
		mathx.Axpy(0.37, deq, dst2)

		if e := mathx.RelErr(dst1, dst2); e > 1e-5 {
			t.Fatalf("bits=%d fused axpy diverges: %v", bits, e)
		}
	}
}

func TestF16SpecialValues(t *testing.T) {
	cases := []float32{0, -0, 1, -1, 0.5, 65504, -65504, 1e-8, float32(math.Inf(1)), float32(math.Inf(-1))}
	for _, v := range cases {
		got := F16ToF32(F32ToF16(v))
		if math.IsInf(float64(v), 0) {
			if !math.IsInf(float64(got), int(math.Copysign(1, float64(v)))) {
				t.Fatalf("inf not preserved: %v -> %v", v, got)
			}
			continue
		}
		if v == 0 {
			if got != 0 {
				t.Fatalf("zero not preserved: %v", got)
			}
			continue
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		if v == 1e-8 {
			// subnormal underflow to zero is acceptable
			if got != 0 && rel > 0.5 {
				t.Fatalf("tiny value badly converted: %v -> %v", v, got)
			}
			continue
		}
		if rel > 1e-3 {
			t.Fatalf("F16 round-trip %v -> %v (rel %v)", v, got, rel)
		}
	}
}

func TestF16NaN(t *testing.T) {
	nan := float32(math.NaN())
	got := F16ToF32(F32ToF16(nan))
	if !math.IsNaN(float64(got)) {
		t.Fatalf("NaN not preserved: %v", got)
	}
}

func TestF16Overflow(t *testing.T) {
	got := F16ToF32(F32ToF16(1e10))
	if !math.IsInf(float64(got), 1) {
		t.Fatalf("overflow should produce +inf, got %v", got)
	}
}

func TestPrecisionString(t *testing.T) {
	if K8V4.String() != "K8V4" {
		t.Fatalf("K8V4.String() = %q", K8V4.String())
	}
	if FP16.String() != "FP16" {
		t.Fatalf("FP16.String() = %q", FP16.String())
	}
}

func TestPrecisionMirror(t *testing.T) {
	if K8V4.Mirror() != K4V8 {
		t.Fatal("mirror of K8V4 should be K4V8")
	}
	if K4V2.Mirror() != K2V4 {
		t.Fatal("mirror of K4V2 should be K2V4")
	}
}

func TestPrecisionTokenBytes(t *testing.T) {
	dim := 128
	// K8V4: 128 + 64 payload + 16 meta + 8 aux = 216
	if got := K8V4.TokenBytes(dim); got != 216 {
		t.Fatalf("K8V4 token bytes = %d, want 216", got)
	}
	// K4V2: 64 + 32 + 16 + 8 = 120
	if got := K4V2.TokenBytes(dim); got != 120 {
		t.Fatalf("K4V2 token bytes = %d, want 120", got)
	}
	// FP16: 256 + 256 + 16 + 8 = 536
	if got := FP16.TokenBytes(dim); got != 536 {
		t.Fatalf("FP16 token bytes = %d, want 536", got)
	}
}

func TestCompressionRatioOrdering(t *testing.T) {
	dim := 128
	if K8V4.CompressionRatio(dim) <= K8V8.CompressionRatio(dim) {
		t.Fatal("K8V4 should compress more than K8V8")
	}
	if K4V2.CompressionRatio(dim) <= K8V4.CompressionRatio(dim) {
		t.Fatal("K4V2 should compress more than K8V4")
	}
}

func TestPrecisionValid(t *testing.T) {
	if !K8V4.Valid() || !FP16.Valid() {
		t.Fatal("standard configs should be valid")
	}
	if (Precision{3, 4}).Valid() {
		t.Fatal("3-bit keys should be invalid")
	}
}

// Property: quantization error is bounded by scale/2 per element
// (within float rounding) for every supported bit width.
func TestQuantErrorBoundProperty(t *testing.T) {
	f := func(raw []int16, bitsSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		bitsOpts := []int{1, 2, 4, 8}
		bits := bitsOpts[int(bitsSel)%len(bitsOpts)]
		src := make([]float32, len(raw))
		for i, v := range raw {
			src[i] = float32(v) / 256
		}
		data := make([]byte, PackedLen(len(src), bits))
		scale, zero := QuantizeInto(src, bits, data)
		out := make([]float32, len(src))
		DequantizeInto(data, bits, len(src), scale, zero, out)
		for i := range src {
			if math.Abs(float64(out[i]-src[i])) > float64(scale)/2+1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: dequantized values always lie within [zero, zero+scale*levels],
// i.e. within the observed min/max envelope of the input.
func TestDequantRangeProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		src := make([]float32, len(raw))
		for i, v := range raw {
			src[i] = float32(v)
		}
		minV, maxV := mathx.MinMax(src)
		data := make([]byte, PackedLen(len(src), 4))
		scale, zero := QuantizeInto(src, 4, data)
		out := make([]float32, len(src))
		DequantizeInto(data, 4, len(src), scale, zero, out)
		tol := 1e-5 * (1 + math.Abs(float64(minV)) + math.Abs(float64(maxV)))
		for _, v := range out {
			if float64(v) < float64(minV)-tol || float64(v) > float64(maxV)+tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: F16 round trip is exact for values that are exactly
// representable (small integers).
func TestF16ExactSmallIntsProperty(t *testing.T) {
	f := func(v int8) bool {
		x := float32(v)
		return F16ToF32(F32ToF16(x)) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Fatal(err)
	}
}
