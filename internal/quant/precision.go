package quant

import "fmt"

// Precision is a differentiated key/value storage configuration: the number
// of bits used to store each key element and each value element. 16 means
// binary16 (no integer quantization).
type Precision struct {
	KeyBits int
	ValBits int
}

// Named precision configurations from the paper's evaluation (§7.2).
var (
	FP16 = Precision{16, 16} // uncompressed baseline
	K8V8 = Precision{8, 8}   // uniform INT8
	K8V4 = Precision{8, 4}   // DiffKV high-precision tier
	K4V8 = Precision{4, 8}   // mirror of K8V4 (ablation)
	K8V2 = Precision{8, 2}   // skewed variant (ablation)
	K4V2 = Precision{4, 2}   // DiffKV low-precision tier
	K2V4 = Precision{2, 4}   // mirror of K4V2 (ablation)
	K4V1 = Precision{4, 1}   // below the value-bit floor (ablation)
	K4V4 = Precision{4, 4}   // uniform INT4 (Atom-style baseline)
	K2V2 = Precision{2, 2}   // uniform 2-bit (KIVI-style baseline)
)

// String returns the paper's KxVy notation (FP16 for the uncompressed
// configuration).
func (p Precision) String() string {
	if p == FP16 {
		return "FP16"
	}
	return fmt.Sprintf("K%dV%d", p.KeyBits, p.ValBits)
}

// ByName returns the named precision configuration — the inverse of
// String over the configurations above ("FP16", "K8V4", ...).
func ByName(name string) (Precision, error) {
	for _, p := range []Precision{FP16, K8V8, K8V4, K4V8, K8V2, K4V2, K2V4, K4V1, K4V4, K2V2} {
		if p.String() == name {
			return p, nil
		}
	}
	return Precision{}, fmt.Errorf("quant: unknown precision %q (want KxVy notation, e.g. K8V4, or FP16)", name)
}

// Valid reports whether both widths are supported.
func (p Precision) Valid() bool {
	return ValidBits(p.KeyBits) && ValidBits(p.ValBits)
}

// Mirror returns the configuration with key and value widths swapped.
func (p Precision) Mirror() Precision {
	return Precision{KeyBits: p.ValBits, ValBits: p.KeyBits}
}

// KeyBytes returns the packed key storage for one token of dimension dim.
func (p Precision) KeyBytes(dim int) int { return PackedLen(dim, p.KeyBits) }

// ValBytes returns the packed value storage for one token of dimension dim.
func (p Precision) ValBytes(dim int) int { return PackedLen(dim, p.ValBits) }

// MetaBytes is the per-token quantization metadata: scale+zero for the key
// vector and scale+zero for the value vector, each float32.
const MetaBytes = 4 * 4

// AuxBytes is the per-token bookkeeping carried in unified pages besides
// the quantized payload: the significance score (float32) and the token
// position (int32).
const AuxBytes = 4 + 4

// TokenBytes returns the total unified-page footprint of one token of
// dimension dim at this precision, including quantization metadata, score
// and position (paper §5.2: the six page segments).
func (p Precision) TokenBytes(dim int) int {
	return p.KeyBytes(dim) + p.ValBytes(dim) + MetaBytes + AuxBytes
}

// CompressionRatio returns the FP16-relative compression of the quantized
// payload only (excluding metadata), e.g. 3.2x for K8V4 at dim=128.
func (p Precision) CompressionRatio(dim int) float64 {
	fp := float64(FP16.KeyBytes(dim) + FP16.ValBytes(dim))
	return fp / float64(p.KeyBytes(dim)+p.ValBytes(dim))
}
