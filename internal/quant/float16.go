package quant

import "math"

// Float16 encode/decode (IEEE 754 binary16, round-to-nearest-even). The
// "FP16" storage tier stores keys/values as 2-byte halves so byte
// accounting matches the paper's baselines exactly.

// F32ToF16 converts a float32 to its binary16 representation.
func F32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16((b >> 16) & 0x8000)
	exp := int32((b>>23)&0xff) - 127 + 15
	mant := b & 0x7fffff

	switch {
	case exp >= 0x1f:
		// overflow -> inf (or preserve NaN)
		if (b>>23)&0xff == 0xff && mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp <= 0:
		// subnormal or zero
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		// round to nearest even
		rem := mant & ((1 << shift) - 1)
		midpoint := uint32(1) << (shift - 1)
		if rem > midpoint || (rem == midpoint && half&1 == 1) {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp)<<10 | uint16(mant>>13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++
		}
		return half
	}
}

// F16ToF32 converts a binary16 representation to float32.
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)

	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case exp == 0x1f:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return math.Float32frombits(sign | 0x7fc00000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// PackF16 encodes src as consecutive little-endian binary16 values in dst.
// dst must have length >= 2*len(src).
func PackF16(src []float32, dst []byte) {
	if len(dst) < 2*len(src) {
		panic("quant: PackF16 destination too small")
	}
	for i, v := range src {
		h := F32ToF16(v)
		dst[2*i] = byte(h)
		dst[2*i+1] = byte(h >> 8)
	}
}

// UnpackF16 decodes n binary16 values from src into dst.
func UnpackF16(src []byte, dst []float32) {
	if len(src) < 2*len(dst) {
		panic("quant: UnpackF16 source too small")
	}
	for i := range dst {
		h := uint16(src[2*i]) | uint16(src[2*i+1])<<8
		dst[i] = F16ToF32(h)
	}
}
