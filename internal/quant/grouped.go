package quant

// Group-wise quantization: the vector is split into contiguous groups of
// groupSize elements, each quantized with its own scale/zero pair. This is
// the scheme used by the Atom/QServe-style baselines — finer granularity
// contains outlier channels within their group, trading metadata for
// accuracy. DiffKV itself uses per-vector quantization (one scale per key
// or value vector) as described in the paper §2.2.

// GroupedMetaBytes returns the metadata footprint of group-wise quantizing
// n elements: one (scale, zero) float32 pair per group.
func GroupedMetaBytes(n, groupSize int) int {
	if groupSize <= 0 {
		panic("quant: group size must be positive")
	}
	groups := (n + groupSize - 1) / groupSize
	return groups * 8
}

// GroupedTokenBytes returns the per-token page footprint of a token of
// dimension dim stored group-wise at the given precision (payload +
// grouped metadata + score/position bookkeeping).
func GroupedTokenBytes(dim int, p Precision, groupSize int) int {
	return PackedLen(dim, p.KeyBits) + PackedLen(dim, p.ValBits) +
		2*GroupedMetaBytes(dim, groupSize) + AuxBytes
}

// RoundTripGrouped quantizes src group-wise at the given bit width and
// returns the dequantized reconstruction — the exact values an attention
// kernel reading the grouped cache would see.
func RoundTripGrouped(src []float32, bits, groupSize int) []float32 {
	if groupSize <= 0 {
		panic("quant: group size must be positive")
	}
	out := make([]float32, len(src))
	buf := make([]byte, PackedLen(groupSize, bits))
	for lo := 0; lo < len(src); lo += groupSize {
		hi := lo + groupSize
		if hi > len(src) {
			hi = len(src)
		}
		g := src[lo:hi]
		scale, zero := QuantizeInto(g, bits, buf)
		DequantizeInto(buf, bits, len(g), scale, zero, out[lo:hi])
	}
	return out
}

// RoundTripPerChannel quantizes a block of vectors channel-wise: each
// feature dimension is quantized across all vectors in the block with its
// own scale/zero pair. This is KIVI's key layout — persistent outlier
// channels get their own scale, so low-bit keys survive. The returned
// block aliases no input memory.
func RoundTripPerChannel(block [][]float32, bits int) [][]float32 {
	if len(block) == 0 {
		return nil
	}
	n := len(block)
	dim := len(block[0])
	out := make([][]float32, n)
	for i := range out {
		out[i] = make([]float32, dim)
	}
	col := make([]float32, n)
	buf := make([]byte, PackedLen(n, bits))
	rec := make([]float32, n)
	for d := 0; d < dim; d++ {
		for i := 0; i < n; i++ {
			col[i] = block[i][d]
		}
		scale, zero := QuantizeInto(col, bits, buf)
		DequantizeInto(buf, bits, n, scale, zero, rec)
		for i := 0; i < n; i++ {
			out[i][d] = rec[i]
		}
	}
	return out
}

// RoundTrip quantizes src per-vector (one scale/zero for the whole vector)
// and returns the dequantized reconstruction.
func RoundTrip(src []float32, bits int) []float32 {
	buf := make([]byte, PackedLen(len(src), bits))
	scale, zero := QuantizeInto(src, bits, buf)
	out := make([]float32, len(src))
	DequantizeInto(buf, bits, len(src), scale, zero, out)
	return out
}
