// Package quant implements the KV-cache quantization substrate: asymmetric
// per-vector integer quantization at 1/2/4/8 bits with dense bit packing, an
// IEEE binary16 codec for the FP16 tier, precision configurations (K8V4,
// K4V2, ...), and fused dequantize-compute kernels used by the attention
// path.
//
// The quantization scheme follows the paper (§2.2): for a vector X compute a
// scale s and zero point z from Xmin/Xmax, store Q = round((X-z)/s) in b
// bits, and reconstruct X̂ = s·Q + z. Scale and zero point are kept in
// higher precision, one pair per vector.
package quant

import "fmt"

// Bits values supported for integer quantization. BitsF16 selects binary16
// storage (no integer quantization).
const (
	BitsF16 = 16
)

// ValidBits reports whether b is a supported storage width.
func ValidBits(b int) bool {
	switch b {
	case 1, 2, 4, 8, 16:
		return true
	}
	return false
}

// PackedLen returns the number of bytes needed to store n values at the
// given bit width (including the FP16 tier).
func PackedLen(n, bits int) int {
	if !ValidBits(bits) {
		panic(fmt.Sprintf("quant: unsupported bit width %d", bits))
	}
	if bits == BitsF16 {
		return 2 * n
	}
	return (n*bits + 7) / 8
}

// levels returns the number of representable steps for a bit width.
func levels(bits int) int { return (1 << bits) - 1 }

// QuantizeInto quantizes src at the given bit width into dst (packed) and
// returns the (scale, zero) metadata. dst must have at least PackedLen(len(src), bits)
// bytes. For bits==16 it stores binary16 and returns (1, 0).
func QuantizeInto(src []float32, bits int, dst []byte) (scale, zero float32) {
	if !ValidBits(bits) {
		panic(fmt.Sprintf("quant: unsupported bit width %d", bits))
	}
	if len(dst) < PackedLen(len(src), bits) {
		panic("quant: QuantizeInto destination too small")
	}
	if bits == BitsF16 {
		PackF16(src, dst)
		return 1, 0
	}
	if len(src) == 0 {
		return 1, 0
	}
	minV, maxV := src[0], src[0]
	for _, v := range src[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	zero = minV
	span := maxV - minV
	l := levels(bits)
	if span <= 0 {
		// constant vector: any scale works; use 1 so Q=0 reconstructs zero
		// exactly.
		scale = 1
	} else {
		scale = span / float32(l)
	}
	inv := 1 / scale
	// zero the packed region we will OR into
	for i := 0; i < PackedLen(len(src), bits); i++ {
		dst[i] = 0
	}
	perByte := 8 / bits
	for i, v := range src {
		q := int((v-zero)*inv + 0.5)
		if q < 0 {
			q = 0
		}
		if q > l {
			q = l
		}
		byteIdx := i / perByte
		shift := uint((i % perByte) * bits)
		dst[byteIdx] |= byte(q) << shift
	}
	return scale, zero
}

// DequantizeInto reconstructs n values from packed data into dst.
func DequantizeInto(data []byte, bits, n int, scale, zero float32, dst []float32) {
	if !ValidBits(bits) {
		panic(fmt.Sprintf("quant: unsupported bit width %d", bits))
	}
	if len(dst) < n {
		panic("quant: DequantizeInto destination too small")
	}
	if bits == BitsF16 {
		UnpackF16(data, dst[:n])
		return
	}
	unpackInto(data, bits, n, dst)
	for i := 0; i < n; i++ {
		dst[i] = scale*dst[i] + zero
	}
}

// DequantDot computes dot(q, dequantize(data)) without materializing the
// dequantized vector — the Go analogue of the paper's fused
// dequantization+dot attention kernel for key processing. The inner loop is
// byte-unrolled per bit width (see kernels.go); the affine expansion
// dot(q, s*Q+z) = s*dot(q,Q) + z*sum(q) avoids touching zero per element.
func DequantDot(q []float32, data []byte, bits int, scale, zero float32) float32 {
	if bits == BitsF16 {
		return dotF16(q, data)
	}
	dot, sum := dotSumPacked(q, data, bits)
	return scale*dot + zero*sum
}

// DequantAxpy computes dst += w * dequantize(data) for an n-element packed
// vector — the fused kernel for value processing (weighted sum of values).
func DequantAxpy(w float32, data []byte, bits, n int, scale, zero float32, dst []float32) {
	if len(dst) < n {
		panic("quant: DequantAxpy destination too small")
	}
	if bits == BitsF16 {
		for i := 0; i < n; i++ {
			h := uint16(data[2*i]) | uint16(data[2*i+1])<<8
			dst[i] += w * F16ToF32(h)
		}
		return
	}
	axpyPacked(w*scale, w*zero, data, bits, n, dst)
}
