package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"diffkv/internal/experiments"
)

func demoTables() []*experiments.Table {
	t1 := &experiments.Table{
		Title:  "demo one",
		Header: []string{"a", "b"},
		Notes:  "a note",
	}
	t1.AddRow("1", "x|y") // pipe needs escaping in markdown
	t2 := &experiments.Table{Title: "demo two", Header: []string{"c"}}
	t2.AddRow("2")
	return []*experiments.Table{t1, t2}
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{
		"":         FormatText,
		"text":     FormatText,
		"csv":      FormatCSV,
		"markdown": FormatMarkdown,
		"md":       FormatMarkdown,
	}
	for in, want := range cases {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, demoTables(), FormatText); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== demo one ==") {
		t.Fatal("text format missing title")
	}
}

func TestWriteCSVParsesBack(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, demoTables(), FormatCSV); err != nil {
		t.Fatal(err)
	}
	// skip comment lines, parse the rest
	var rows [][]string
	for _, block := range strings.Split(buf.String(), "\n\n") {
		r := csv.NewReader(strings.NewReader(block))
		r.FieldsPerRecord = -1
		recs, err := r.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, recs...)
	}
	// 2 comment rows + 2 headers + 2 data rows
	if len(rows) != 6 {
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if rows[2][1] != "x|y" {
		t.Fatalf("CSV cell mangled: %q", rows[2][1])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, demoTables(), FormatMarkdown); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "### demo one") {
		t.Fatal("missing heading")
	}
	if !strings.Contains(s, "| a | b |") || !strings.Contains(s, "| --- | --- |") {
		t.Fatal("missing table structure")
	}
	if !strings.Contains(s, `x\|y`) {
		t.Fatal("pipe not escaped")
	}
	if !strings.Contains(s, "*a note*") {
		t.Fatal("missing note")
	}
}

func TestMarkdownPadsShortRows(t *testing.T) {
	tbl := &experiments.Table{Title: "pad", Header: []string{"a", "b", "c"}}
	tbl.Rows = append(tbl.Rows, []string{"only-one"})
	var buf bytes.Buffer
	if err := Write(&buf, []*experiments.Table{tbl}, FormatMarkdown); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| only-one |  |  |") {
		t.Fatalf("short row not padded:\n%s", buf.String())
	}
}
