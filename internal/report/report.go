// Package report renders experiment tables in machine-readable formats:
// CSV for spreadsheets and plotting pipelines, Markdown for READMEs and
// issue reports. cmd/diffkv-bench selects the format with -format.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"diffkv/internal/experiments"
)

// Format selects an output renderer.
type Format string

// Supported formats.
const (
	FormatText     Format = "text"
	FormatCSV      Format = "csv"
	FormatMarkdown Format = "markdown"
)

// ParseFormat validates a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatText, FormatCSV, FormatMarkdown:
		return Format(s), nil
	case "md":
		return FormatMarkdown, nil
	case "":
		return FormatText, nil
	}
	return "", fmt.Errorf("report: unknown format %q (text|csv|markdown)", s)
}

// Write renders tables in the chosen format.
func Write(w io.Writer, tables []*experiments.Table, f Format) error {
	switch f {
	case FormatCSV:
		return writeCSV(w, tables)
	case FormatMarkdown:
		return writeMarkdown(w, tables)
	default:
		for _, t := range tables {
			if _, err := fmt.Fprintln(w, t); err != nil {
				return err
			}
		}
		return nil
	}
}

// writeCSV emits one CSV stream per table, prefixed by a comment row with
// the title (readable by spreadsheet apps, skippable by parsers).
func writeCSV(w io.Writer, tables []*experiments.Table) error {
	cw := csv.NewWriter(w)
	for i, t := range tables {
		if i > 0 {
			cw.Flush()
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := cw.Write([]string{"# " + t.Title}); err != nil {
			return err
		}
		if err := cw.Write(t.Header); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeMarkdown emits GitHub-flavored markdown tables.
func writeMarkdown(w io.Writer, tables []*experiments.Table) error {
	for _, t := range tables {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escapeCells(t.Header), " | ")); err != nil {
			return err
		}
		sep := make([]string, len(t.Header))
		for i := range sep {
			sep[i] = "---"
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
			return err
		}
		for _, row := range t.Rows {
			cells := escapeCells(row)
			// pad short rows so the table stays rectangular
			for len(cells) < len(t.Header) {
				cells = append(cells, "")
			}
			if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
				return err
			}
		}
		if t.Notes != "" {
			if _, err := fmt.Fprintf(w, "\n*%s*\n", t.Notes); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func escapeCells(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = strings.ReplaceAll(c, "|", "\\|")
	}
	return out
}
