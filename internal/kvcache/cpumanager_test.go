package kvcache

import (
	"testing"

	"diffkv/internal/mathx"
)

func newCPUManager(t *testing.T, pages int) *CPUManager {
	t.Helper()
	m, err := NewCPUManager(Config{
		Dim: 128, PageBytes: 8192, NumPages: pages, MaxSeqLen: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mkScores(rng *mathx.RNG, heads, tokens int) [][]float32 {
	out := make([][]float32, heads)
	for h := range out {
		s := make([]float32, tokens)
		for i := range s {
			s[i] = float32(rng.Float64() * 3)
		}
		out[h] = s
	}
	return out
}

func TestCPUManagerPromptCompact(t *testing.T) {
	m := newCPUManager(t, 2048)
	if err := m.AddSequence(1, 8); err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(1)
	scores := mkScores(rng, 8, 300)
	hiAt := func(s float32) bool { return s >= 1 }
	loAt := func(s float32) bool { return s >= 0.1 }
	stats, err := m.PromptCompact(1, scores, hiAt, loAt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TokenOps != 8*300 {
		t.Fatalf("TokenOps = %d", stats.TokenOps)
	}
	if stats.Regions != 8 {
		t.Fatalf("Regions = %d", stats.Regions)
	}
	if stats.PagesAllocated == 0 {
		t.Fatal("no pages allocated")
	}
	if m.FreePages() != 2048-stats.PagesAllocated {
		t.Fatal("free count inconsistent")
	}
}

func TestCPUManagerDuplicateSequence(t *testing.T) {
	m := newCPUManager(t, 64)
	m.AddSequence(1, 2)
	if err := m.AddSequence(1, 2); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestCPUManagerGenStepAndRelease(t *testing.T) {
	m := newCPUManager(t, 2048)
	m.AddSequence(1, 4)
	rng := mathx.NewRNG(2)
	scores := mkScores(rng, 4, 200)
	if _, err := m.PromptCompact(1, scores,
		func(s float32) bool { return s >= 1 },
		func(s float32) bool { return true }); err != nil {
		t.Fatal(err)
	}
	grows := [][2]int{{1, 0}, {0, 1}, {1, 1}, {0, 0}}
	for step := 0; step < 100; step++ {
		if _, err := m.GenStep(1, grows); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ReleaseSequence(1); err != nil {
		t.Fatal(err)
	}
	if m.FreePages() != 2048 {
		t.Fatalf("pages leaked: free=%d", m.FreePages())
	}
	if err := m.ReleaseSequence(1); err == nil {
		t.Fatal("double release should fail")
	}
}

func TestCPUManagerOutOfPages(t *testing.T) {
	m := newCPUManager(t, 4)
	m.AddSequence(1, 8)
	rng := mathx.NewRNG(3)
	scores := mkScores(rng, 8, 1000)
	_, err := m.PromptCompact(1, scores,
		func(s float32) bool { return true },
		func(s float32) bool { return false })
	if err == nil {
		t.Fatal("expected out-of-pages error")
	}
}

func TestCPUManagerNoDoubleAllocationUnderConcurrency(t *testing.T) {
	// many heads allocating concurrently through the global lock: every
	// page handed out at most once
	m := newCPUManager(t, 4096)
	m.Threads = 16
	m.AddSequence(1, 256)
	rng := mathx.NewRNG(4)
	scores := mkScores(rng, 256, 150)
	if _, err := m.PromptCompact(1, scores,
		func(s float32) bool { return s >= 1.5 },
		func(s float32) bool { return s >= 0.3 }); err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	sc := m.seqs[1]
	for _, head := range sc.heads {
		for _, id := range append(head.hiPages, head.loPages...) {
			if seen[id] {
				t.Fatalf("page %d allocated twice", id)
			}
			seen[id] = true
		}
	}
	// conservation: allocated + free == total
	if len(seen)+m.FreePages() != 4096 {
		t.Fatalf("conservation broken: %d allocated, %d free", len(seen), m.FreePages())
	}
}

// BenchmarkCompactionGPUvsCPU compares the real batch prefix-sum manager
// against the real lock-based CPU comparator on identical workloads — the
// host-side analogue of Fig. 13's architectural argument.
func BenchmarkCompactionGPUvsCPU(b *testing.B) {
	const heads = 256
	const tokens = 1024
	rng := mathx.NewRNG(5)
	scores := mkScores(rng, heads, tokens)
	hiAt := func(s float32) bool { return s >= 1.5 }
	loAt := func(s float32) bool { return s >= 0.3 }

	b.Run("parallel-batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m, err := NewManager(Config{Dim: 128, PageBytes: 8192, NumPages: 1 << 15, MaxSeqLen: 4096})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.AddSequence(1, heads); err != nil {
				b.Fatal(err)
			}
			demands := make([]HeadDemand, heads)
			for h := range demands {
				var hi, lo int
				for _, s := range scores[h] {
					if hiAt(s) {
						hi++
					} else if loAt(s) {
						lo++
					}
				}
				demands[h] = HeadDemand{HiTokens: hi, LoTokens: lo}
			}
			b.StartTimer()
			if _, err := m.PromptCompact(1, tokens, demands); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lock-based-cpu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m, err := NewCPUManager(Config{Dim: 128, PageBytes: 8192, NumPages: 1 << 15, MaxSeqLen: 4096})
			if err != nil {
				b.Fatal(err)
			}
			if err := m.AddSequence(1, heads); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := m.PromptCompact(1, scores, hiAt, loAt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
