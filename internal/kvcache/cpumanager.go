package kvcache

import (
	"fmt"
	"sync"
)

// CPUManager is the on-CPU multi-threaded comparator of Fig. 13, as a real
// implementation rather than just a cost model: every (sequence, head)
// region is managed by host threads that take a global allocator lock and
// walk free pages one at a time — the architecture the paper argues cannot
// keep up with per-head dynamic compression. It exposes the same
// compaction operations as Manager so the two can be benchmarked
// head-to-head (BenchmarkCompactionGPUvsCPU) and the cost model's shape
// can be sanity-checked against actual lock-contention behaviour.
type CPUManager struct {
	mu      sync.Mutex
	cfg     Config
	pool    *PagePool
	freeIDs []int32 // plain LIFO free stack (no batch coordination)
	seqs    map[int]*cpuSeq
	capHi   int
	capLo   int
	// Threads bounds the worker pool (0 = GOMAXPROCS via ParallelFor).
	Threads int
}

type cpuSeq struct {
	heads []*cpuHead
}

type cpuHead struct {
	hiPages, loPages   []int32
	hiTokens, loTokens int
}

// NewCPUManager builds the comparator with the same configuration schema
// as Manager.
func NewCPUManager(cfg Config) (*CPUManager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &CPUManager{
		cfg:   cfg,
		pool:  NewPagePool(cfg.NumPages, cfg.PageBytes, cfg.Dim, false),
		seqs:  make(map[int]*cpuSeq),
		capHi: TokensPerPage(cfg.PageBytes, cfg.Dim, cfg.HiPrec),
		capLo: TokensPerPage(cfg.PageBytes, cfg.Dim, cfg.LoPrec),
	}
	m.freeIDs = make([]int32, cfg.NumPages)
	for i := range m.freeIDs {
		m.freeIDs[i] = int32(i)
	}
	return m, nil
}

// FreePages returns the free page count.
func (m *CPUManager) FreePages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.freeIDs)
}

// AddSequence registers a sequence.
func (m *CPUManager) AddSequence(id, numHeads int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.seqs[id]; dup {
		return fmt.Errorf("kvcache: sequence %d already registered", id)
	}
	sc := &cpuSeq{heads: make([]*cpuHead, numHeads)}
	for i := range sc.heads {
		sc.heads[i] = &cpuHead{}
	}
	m.seqs[id] = sc
	return nil
}

// allocLocked pops one page under the global lock.
func (m *CPUManager) allocLocked() (int32, error) {
	if len(m.freeIDs) == 0 {
		return -1, fmt.Errorf("kvcache: out of pages (cap %d)", m.cfg.NumPages)
	}
	id := m.freeIDs[len(m.freeIDs)-1]
	m.freeIDs = m.freeIDs[:len(m.freeIDs)-1]
	return id, nil
}

// PromptCompact performs prompt-phase allocation with per-head host
// threads: each head scans its token scores sequentially to derive its
// demand (the planning phase executed on the CPU) and then allocates pages
// one at a time under the shared lock — the serialization the parallel
// design removes.
//
// scores[h] carries the per-token significance of head h; threshold
// callbacks hiAt/loAt classify them (kept as callbacks so the policy stays
// out of this package).
func (m *CPUManager) PromptCompact(seqID int, scores [][]float32, hiAt, loAt func(float32) bool) (CompactStats, error) {
	m.mu.Lock()
	sc, ok := m.seqs[seqID]
	m.mu.Unlock()
	if !ok {
		return CompactStats{}, fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	if len(scores) != len(sc.heads) {
		return CompactStats{}, fmt.Errorf("kvcache: %d score sets for %d heads", len(scores), len(sc.heads))
	}
	stats := CompactStats{Regions: len(sc.heads)}
	var firstErr error
	var errMu sync.Mutex
	var tokenOps int64
	var tokMu sync.Mutex

	work := func(h int) {
		head := sc.heads[h]
		// planning: per-token sequential scan
		var hi, lo int
		for _, s := range scores[h] {
			if hiAt(s) {
				hi++
			} else if loAt(s) {
				lo++
			}
		}
		tokMu.Lock()
		tokenOps += int64(len(scores[h]))
		tokMu.Unlock()
		// coordination: page-at-a-time allocation under the global lock
		need := pagesNeeded(hi, m.capHi) + pagesNeeded(lo, m.capLo)
		for p := 0; p < need; p++ {
			m.mu.Lock()
			id, err := m.allocLocked()
			if err != nil {
				m.mu.Unlock()
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			m.mu.Unlock()
			if p < pagesNeeded(hi, m.capHi) {
				head.hiPages = append(head.hiPages, id)
			} else {
				head.loPages = append(head.loPages, id)
			}
		}
		head.hiTokens, head.loTokens = hi, lo
	}
	m.parallel(len(sc.heads), work)
	if firstErr != nil {
		return CompactStats{}, firstErr
	}
	stats.TokenOps = int(tokenOps)
	for _, head := range sc.heads {
		stats.PagesAllocated += len(head.hiPages) + len(head.loPages)
	}
	return stats, nil
}

// GenStep performs one generation-step allocation pass: each head checks
// its page occupancy and allocates under the lock when a tier overflows.
// grows[h] is (hiDelta, loDelta) for head h.
func (m *CPUManager) GenStep(seqID int, grows [][2]int) (CompactStats, error) {
	m.mu.Lock()
	sc, ok := m.seqs[seqID]
	m.mu.Unlock()
	if !ok {
		return CompactStats{}, fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	if len(grows) != len(sc.heads) {
		return CompactStats{}, fmt.Errorf("kvcache: %d grow entries for %d heads", len(grows), len(sc.heads))
	}
	stats := CompactStats{Regions: len(sc.heads)}
	var firstErr error
	var errMu sync.Mutex
	var allocated int64
	var tokenOps int64

	work := func(h int) {
		head := sc.heads[h]
		// planning: victim-search scan over the head's cached tokens
		tokMu := head.hiTokens + head.loTokens
		errMu.Lock()
		tokenOps += int64(tokMu)
		errMu.Unlock()

		head.hiTokens += grows[h][0]
		head.loTokens += grows[h][1]
		for pagesNeeded(head.hiTokens, m.capHi) > len(head.hiPages) {
			m.mu.Lock()
			id, err := m.allocLocked()
			m.mu.Unlock()
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			head.hiPages = append(head.hiPages, id)
			errMu.Lock()
			allocated++
			errMu.Unlock()
		}
		for pagesNeeded(head.loTokens, m.capLo) > len(head.loPages) {
			m.mu.Lock()
			id, err := m.allocLocked()
			m.mu.Unlock()
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			head.loPages = append(head.loPages, id)
			errMu.Lock()
			allocated++
			errMu.Unlock()
		}
	}
	m.parallel(len(sc.heads), work)
	if firstErr != nil {
		return CompactStats{}, firstErr
	}
	stats.TokenOps = int(tokenOps)
	stats.PagesAllocated = int(allocated)
	return stats, nil
}

// ReleaseSequence returns every page of a sequence to the free stack.
func (m *CPUManager) ReleaseSequence(id int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sc, ok := m.seqs[id]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", id)
	}
	for _, head := range sc.heads {
		m.freeIDs = append(m.freeIDs, head.hiPages...)
		m.freeIDs = append(m.freeIDs, head.loPages...)
		head.hiPages, head.loPages = nil, nil
		head.hiTokens, head.loTokens = 0, 0
	}
	delete(m.seqs, id)
	return nil
}

// parallel runs fn across the configured worker count.
func (m *CPUManager) parallel(n int, fn func(int)) {
	workers := m.Threads
	if workers <= 0 {
		workers = 8
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		//diffkv:allow goroutine -- fork-join over disjoint index ranges, joined before return: output is schedule-independent
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
