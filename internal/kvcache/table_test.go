package kvcache

import (
	"testing"
	"testing/quick"
)

func TestBiTablePushPop(t *testing.T) {
	bt := NewBiTable(6)
	for i := int32(0); i < 3; i++ {
		if err := bt.PushHi(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(10); i < 13; i++ {
		if err := bt.PushLo(i); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Hi() != 3 || bt.Lo() != 3 {
		t.Fatalf("hi/lo = %d/%d", bt.Hi(), bt.Lo())
	}
	// table full now
	if err := bt.PushHi(99); err == nil {
		t.Fatal("expected overflow")
	}
	if err := bt.PushLo(99); err == nil {
		t.Fatal("expected overflow")
	}
	// push order preserved
	hi := bt.HiIDs()
	for i, id := range hi {
		if id != int32(i) {
			t.Fatalf("hi order wrong: %v", hi)
		}
	}
	lo := bt.LoIDs()
	for i, id := range lo {
		if id != int32(10+i) {
			t.Fatalf("lo order wrong: %v", lo)
		}
	}
	// pops reverse push order
	id, err := bt.PopHi()
	if err != nil || id != 2 {
		t.Fatalf("PopHi = %d, %v", id, err)
	}
	id, err = bt.PopLo()
	if err != nil || id != 12 {
		t.Fatalf("PopLo = %d, %v", id, err)
	}
}

func TestBiTablePopEmpty(t *testing.T) {
	bt := NewBiTable(2)
	if _, err := bt.PopHi(); err == nil {
		t.Fatal("expected error")
	}
	if _, err := bt.PopLo(); err == nil {
		t.Fatal("expected error")
	}
}

func TestBiTableDrainAll(t *testing.T) {
	bt := NewBiTable(8)
	bt.PushHi(1)
	bt.PushHi(2)
	bt.PushLo(7)
	ids := bt.DrainAll()
	if len(ids) != 3 {
		t.Fatalf("drained %d ids", len(ids))
	}
	if bt.Hi() != 0 || bt.Lo() != 0 {
		t.Fatal("drain left entries")
	}
	// table reusable after drain
	if err := bt.PushLo(3); err != nil {
		t.Fatal(err)
	}
}

func TestBiTableMetadataBytes(t *testing.T) {
	if NewBiTable(100).MetadataBytes() != 400 {
		t.Fatal("metadata accounting wrong")
	}
}

func TestBiTablePaperMetadataClaim(t *testing.T) {
	// Paper §5.2: batch 128 on Llama3-8B (32 layers x 8 KV heads), total
	// bidirectional page tables ≈ 32 MB. With 8192 max seq len and a
	// high-precision page holding ~37 tokens (8KB page, K8V4, dim 128)
	// each table has ~222 slots ≈ 888 B; 128*32*8 tables ≈ 29 MB. Verify
	// the same order of magnitude.
	slots := (8192 + 37 - 1) / 37
	total := 128 * 32 * 8 * NewBiTable(slots).MetadataBytes()
	if total < 8<<20 || total > 64<<20 {
		t.Fatalf("page-table metadata = %d bytes, want tens of MB", total)
	}
}

// Property: any interleaving of hi/lo pushes never corrupts the other side
// and never exceeds capacity.
func TestBiTableInterleavingProperty(t *testing.T) {
	f := func(ops []bool) bool {
		n := 16
		bt := NewBiTable(n)
		var hiRef, loRef []int32
		next := int32(0)
		for _, hiSide := range ops {
			if hiSide {
				if err := bt.PushHi(next); err != nil {
					if bt.Hi()+bt.Lo() != n {
						return false // spurious overflow
					}
				} else {
					hiRef = append(hiRef, next)
				}
			} else {
				if err := bt.PushLo(next); err != nil {
					if bt.Hi()+bt.Lo() != n {
						return false
					}
				} else {
					loRef = append(loRef, next)
				}
			}
			next++
		}
		if bt.Hi() != len(hiRef) || bt.Lo() != len(loRef) {
			return false
		}
		for i, id := range bt.HiIDs() {
			if id != hiRef[i] {
				return false
			}
		}
		for i, id := range bt.LoIDs() {
			if id != loRef[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiTableTwoLevels(t *testing.T) {
	mt := NewMultiTable(2, 8)
	mt.Push(0, 5)
	mt.Push(1, 9)
	if mt.Count(0) != 1 || mt.Count(1) != 1 {
		t.Fatal("counts wrong")
	}
	if ids := mt.IDs(0); len(ids) != 1 || ids[0] != 5 {
		t.Fatalf("level0 ids: %v", ids)
	}
	if ids := mt.IDs(1); len(ids) != 1 || ids[0] != 9 {
		t.Fatalf("level1 ids: %v", ids)
	}
}

func TestMultiTableThreeLevels(t *testing.T) {
	// paper §5.3: three levels = one bidirectional + one unidirectional
	mt := NewMultiTable(3, 4)
	if len(mt.tables) != 2 {
		t.Fatalf("3 levels should use 2 tables, got %d", len(mt.tables))
	}
	for lvl := 0; lvl < 3; lvl++ {
		if err := mt.Push(lvl, int32(100+lvl)); err != nil {
			t.Fatal(err)
		}
	}
	for lvl := 0; lvl < 3; lvl++ {
		if mt.Count(lvl) != 1 {
			t.Fatalf("level %d count = %d", lvl, mt.Count(lvl))
		}
		ids := mt.IDs(lvl)
		if ids[0] != int32(100+lvl) {
			t.Fatalf("level %d ids = %v", lvl, ids)
		}
	}
	id, err := mt.Pop(2)
	if err != nil || id != 102 {
		t.Fatalf("Pop(2) = %d, %v", id, err)
	}
}

func TestMultiTableFourLevels(t *testing.T) {
	// paper §5.3: four levels = two bidirectional tables
	mt := NewMultiTable(4, 4)
	if len(mt.tables) != 2 {
		t.Fatalf("4 levels should use 2 tables, got %d", len(mt.tables))
	}
	for lvl := 0; lvl < 4; lvl++ {
		mt.Push(lvl, int32(lvl))
		mt.Push(lvl, int32(10+lvl))
	}
	for lvl := 0; lvl < 4; lvl++ {
		ids := mt.IDs(lvl)
		if len(ids) != 2 || ids[0] != int32(lvl) || ids[1] != int32(10+lvl) {
			t.Fatalf("level %d ids = %v", lvl, ids)
		}
	}
	drained := mt.DrainAll()
	if len(drained) != 8 {
		t.Fatalf("drained %d", len(drained))
	}
}

func TestMultiTableInvalidLevel(t *testing.T) {
	mt := NewMultiTable(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mt.Push(2, 0)
}
