package kvcache

import (
	"testing"

	"diffkv/internal/mathx"
	"diffkv/internal/quant"
)

func testManager(t *testing.T, materialize bool, numPages int) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		Dim:         128,
		PageBytes:   8192,
		NumPages:    numPages,
		HiPrec:      quant.K8V4,
		LoPrec:      quant.K4V2,
		MaxSeqLen:   4096,
		Materialize: materialize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Dim: 64, NumPages: 10}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.HiPrec != quant.K8V4 || c.LoPrec != quant.K4V2 {
		t.Fatal("precision defaults wrong")
	}
	if c.PageBytes != 8192 || c.MaxSeqLen != 8192 {
		t.Fatal("size defaults wrong")
	}
}

func TestConfigRejectsInvertedPrecisions(t *testing.T) {
	c := Config{Dim: 64, NumPages: 10, HiPrec: quant.K4V2, LoPrec: quant.K8V4}
	if err := c.Validate(); err == nil {
		t.Fatal("expected error: low tier larger than high tier")
	}
}

func TestTokensPerPage(t *testing.T) {
	// 8192B page, dim 128: K8V4 tokens are 216B -> 37 tokens; K4V2 are
	// 120B -> 68 tokens.
	m := testManager(t, false, 16)
	if m.TokensPerHiPage() != 8192/216 {
		t.Fatalf("hi cap = %d", m.TokensPerHiPage())
	}
	if m.TokensPerLoPage() != 8192/120 {
		t.Fatalf("lo cap = %d", m.TokensPerLoPage())
	}
	if m.TokensPerLoPage() <= m.TokensPerHiPage() {
		t.Fatal("low-precision pages must hold more tokens")
	}
}

func TestAddReleaseSequence(t *testing.T) {
	m := testManager(t, false, 64)
	sc, err := m.AddSequence(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Heads) != 8 {
		t.Fatalf("heads = %d", len(sc.Heads))
	}
	if _, err := m.AddSequence(1, 8); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	if err := m.ReleaseSequence(1); err != nil {
		t.Fatal(err)
	}
	if err := m.ReleaseSequence(1); err == nil {
		t.Fatal("double release should fail")
	}
}

func TestPromptCompactBasic(t *testing.T) {
	m := testManager(t, false, 256)
	nHeads := 8
	promptLen := 100
	if _, err := m.AddSequence(7, nHeads); err != nil {
		t.Fatal(err)
	}
	demands := make([]HeadDemand, nHeads)
	for i := range demands {
		demands[i] = HeadDemand{HiTokens: 20 + i, LoTokens: 30}
	}
	stats, err := m.PromptCompact(7, promptLen, demands)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TokenOps != promptLen*nHeads {
		t.Fatalf("TokenOps = %d", stats.TokenOps)
	}
	if stats.Regions != nHeads {
		t.Fatalf("Regions = %d", stats.Regions)
	}
	sc, _ := m.Sequence(7)
	for i, hc := range sc.Heads {
		if hc.HiTokens() != 20+i || hc.LoTokens() != 30 {
			t.Fatalf("head %d counts: hi=%d lo=%d", i, hc.HiTokens(), hc.LoTokens())
		}
		wantHi := (20 + i + m.capHi - 1) / m.capHi
		wantLo := (30 + m.capLo - 1) / m.capLo
		if hc.table.Hi() != wantHi || hc.table.Lo() != wantLo {
			t.Fatalf("head %d pages: hi=%d lo=%d, want %d/%d",
				i, hc.table.Hi(), hc.table.Lo(), wantHi, wantLo)
		}
	}
	// unused conservative pages must be back on the free list
	used := 0
	for _, hc := range sc.Heads {
		used += hc.table.Hi() + hc.table.Lo()
	}
	if m.UsedPages() != used {
		t.Fatalf("UsedPages=%d, tables hold %d", m.UsedPages(), used)
	}
}

func TestPromptCompactConservativeReclaim(t *testing.T) {
	// A fully-pruned head must end with zero pages even though the
	// conservative allocation gave it ceil(promptLen/capHi).
	m := testManager(t, false, 128)
	m.AddSequence(1, 2)
	stats, err := m.PromptCompact(1, 74, []HeadDemand{
		{HiTokens: 0, LoTokens: 0}, // everything pruned
		{HiTokens: 74, LoTokens: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := m.Sequence(1)
	if sc.Heads[0].table.Hi() != 0 || sc.Heads[0].table.Lo() != 0 {
		t.Fatal("pruned head kept pages")
	}
	if stats.PagesFreed == 0 {
		t.Fatal("no pages reclaimed")
	}
}

func TestPromptCompactDemandExceedsPrompt(t *testing.T) {
	m := testManager(t, false, 64)
	m.AddSequence(1, 1)
	before := m.FreePages()
	_, err := m.PromptCompact(1, 10, []HeadDemand{{HiTokens: 8, LoTokens: 8}})
	if err == nil {
		t.Fatal("expected demand validation error")
	}
	if m.FreePages() != before {
		t.Fatalf("failed compact leaked pages: %d -> %d", before, m.FreePages())
	}
}

func TestPromptCompactOutOfMemory(t *testing.T) {
	m := testManager(t, false, 4)
	m.AddSequence(1, 8)
	_, err := m.PromptCompact(1, 1000, make([]HeadDemand, 8))
	if err == nil {
		t.Fatal("expected out-of-pages error")
	}
}

func TestGenCompactAllocatesOnBoundary(t *testing.T) {
	m := testManager(t, false, 256)
	m.AddSequence(1, 2)
	capHi := m.TokensPerHiPage()
	// fill exactly one hi page on head 0
	_, err := m.PromptCompact(1, capHi, []HeadDemand{
		{HiTokens: capHi}, {HiTokens: capHi},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := m.Sequence(1)
	if sc.Heads[0].table.Hi() != 1 {
		t.Fatalf("expected 1 hi page, got %d", sc.Heads[0].table.Hi())
	}
	// next hi token forces a second page on both heads
	stats, err := m.GenCompact([]int{1}, [][]GenDemand{{
		{HiDelta: 1}, {HiDelta: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesAllocated != 2 {
		t.Fatalf("PagesAllocated = %d, want 2", stats.PagesAllocated)
	}
	if sc.Heads[0].table.Hi() != 2 {
		t.Fatal("second hi page not attached")
	}
	// a step with no growth allocates nothing
	stats, err = m.GenCompact([]int{1}, [][]GenDemand{{
		{HiDelta: 1, HiRemoved: 1}, {},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesAllocated != 0 {
		t.Fatalf("steady-state step allocated %d pages", stats.PagesAllocated)
	}
}

func TestGenCompactDowngradePath(t *testing.T) {
	// candidate to hi + victim downgraded to lo: hi count steady, lo +1
	m := testManager(t, false, 256)
	m.AddSequence(1, 1)
	if _, err := m.PromptCompact(1, 30, []HeadDemand{{HiTokens: 30}}); err != nil {
		t.Fatal(err)
	}
	sc, _ := m.Sequence(1)
	hc := sc.Heads[0]
	_, err := m.GenCompact([]int{1}, [][]GenDemand{{
		{HiDelta: 1, HiRemoved: 1, LoDelta: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if hc.HiTokens() != 30 || hc.LoTokens() != 1 {
		t.Fatalf("counts after downgrade: hi=%d lo=%d", hc.HiTokens(), hc.LoTokens())
	}
	if hc.table.Lo() != 1 {
		t.Fatal("downgrade should have allocated one lo page")
	}
}

func TestReleaseRecyclesEverything(t *testing.T) {
	m := testManager(t, false, 256)
	for s := 0; s < 4; s++ {
		m.AddSequence(s, 4)
		demands := make([]HeadDemand, 4)
		for i := range demands {
			demands[i] = HeadDemand{HiTokens: 50, LoTokens: 60}
		}
		if _, err := m.PromptCompact(s, 120, demands); err != nil {
			t.Fatal(err)
		}
	}
	if m.UsedPages() == 0 {
		t.Fatal("no pages in use")
	}
	for s := 0; s < 4; s++ {
		if err := m.ReleaseSequence(s); err != nil {
			t.Fatal(err)
		}
	}
	if m.FreePages() != 256 {
		t.Fatalf("pages leaked: free=%d", m.FreePages())
	}
}

func TestBytesUsedAndMetadata(t *testing.T) {
	m := testManager(t, false, 64)
	m.AddSequence(1, 2)
	m.PromptCompact(1, 74, []HeadDemand{{HiTokens: 74}, {HiTokens: 37, LoTokens: 37}})
	if m.BytesUsed() != int64(m.UsedPages())*8192 {
		t.Fatal("BytesUsed inconsistent with page count")
	}
	if m.MetadataBytes() <= 0 {
		t.Fatal("metadata accounting missing")
	}
}

func TestKVBytesTokenExact(t *testing.T) {
	m := testManager(t, false, 64)
	m.AddSequence(1, 1)
	m.PromptCompact(1, 50, []HeadDemand{{HiTokens: 10, LoTokens: 20}})
	sc, _ := m.Sequence(1)
	want := 10*quant.K8V4.TokenBytes(128) + 20*quant.K4V2.TokenBytes(128)
	if got := sc.Heads[0].KVBytes(); got != want {
		t.Fatalf("KVBytes = %d, want %d", got, want)
	}
}

// --- materialized-mode tests ---

func genToken(rng *mathx.RNG, dim int) (k, v []float32) {
	k = make([]float32, dim)
	v = make([]float32, dim)
	rng.NormVec(k, 1)
	rng.NormVec(v, 1)
	return k, v
}

func TestAppendTokenAndRoundTrip(t *testing.T) {
	m := testManager(t, true, 64)
	sc, _ := m.AddSequence(1, 1)
	hc := sc.Heads[0]
	rng := mathx.NewRNG(5)
	dim := 128

	var keys, vals [][]float32
	for i := 0; i < 80; i++ { // spans 3 hi pages
		k, v := genToken(rng, dim)
		keys = append(keys, k)
		vals = append(vals, v)
		if err := hc.AppendToken(LevelHi, k, v, float32(i), int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if hc.HiTokens() != 80 {
		t.Fatalf("HiTokens = %d", hc.HiTokens())
	}
	if got := hc.pageCount(LevelHi); got != 3 {
		t.Fatalf("hi pages = %d, want 3", got)
	}
	// every token must round-trip with small error and correct position
	kb := make([]float32, dim)
	vb := make([]float32, dim)
	seen := 0
	hc.ForEachToken(LevelHi, func(p *Page, slot int) {
		pos := int(p.Position(slot))
		p.DequantToken(slot, kb, vb)
		if e := mathx.RelErr(kb, keys[pos]); e > 0.05 {
			t.Fatalf("token %d key error %v", pos, e)
		}
		if e := mathx.RelErr(vb, vals[pos]); e > 0.2 {
			t.Fatalf("token %d value error %v", pos, e)
		}
		seen++
	})
	if seen != 80 {
		t.Fatalf("iterated %d tokens", seen)
	}
}

func TestAppendTokenCountsOnlyFails(t *testing.T) {
	m := testManager(t, false, 8)
	sc, _ := m.AddSequence(1, 1)
	k := make([]float32, 128)
	if err := sc.Heads[0].AppendToken(LevelHi, k, k, 0, 0); err == nil {
		t.Fatal("expected materialization error")
	}
}

func TestMinScoreAndRemove(t *testing.T) {
	m := testManager(t, true, 64)
	sc, _ := m.AddSequence(1, 1)
	hc := sc.Heads[0]
	rng := mathx.NewRNG(9)
	scores := []float32{5, 1, 3, 0.5, 4, 2}
	for i, s := range scores {
		k, v := genToken(rng, 128)
		hc.AppendToken(LevelHi, k, v, s, int32(i))
	}
	ref, score, ok := hc.MinScore(LevelHi)
	if !ok || score != 0.5 {
		t.Fatalf("MinScore = %v ok=%v", score, ok)
	}
	p := hc.page(ref.Level, ref.Page)
	if p.Position(ref.Slot) != 3 {
		t.Fatalf("min token position = %d, want 3", p.Position(ref.Slot))
	}
	if err := hc.RemoveToken(ref); err != nil {
		t.Fatal(err)
	}
	if hc.HiTokens() != 5 {
		t.Fatalf("HiTokens after remove = %d", hc.HiTokens())
	}
	// next min is 1 (position 1)
	_, score, ok = hc.MinScore(LevelHi)
	if !ok || score != 1 {
		t.Fatalf("second MinScore = %v", score)
	}
	// removed token must be gone
	hc.ForEachToken(LevelHi, func(p *Page, slot int) {
		if p.Position(slot) == 3 {
			t.Fatal("removed token still present")
		}
	})
}

func TestMinScoreEmpty(t *testing.T) {
	m := testManager(t, true, 8)
	sc, _ := m.AddSequence(1, 1)
	if _, _, ok := sc.Heads[0].MinScore(LevelLo); ok {
		t.Fatal("empty tier reported a min")
	}
}

func TestRemoveAcrossPages(t *testing.T) {
	m := testManager(t, true, 64)
	sc, _ := m.AddSequence(1, 1)
	hc := sc.Heads[0]
	rng := mathx.NewRNG(13)
	capHi := m.TokensPerHiPage()
	n := capHi + 5 // two pages
	for i := 0; i < n; i++ {
		k, v := genToken(rng, 128)
		hc.AppendToken(LevelHi, k, v, float32(i), int32(i))
	}
	// remove a token from the FIRST page: the last token of page 2 must
	// backfill it
	err := hc.RemoveToken(TokenRef{Level: LevelHi, Page: 0, Slot: 2})
	if err != nil {
		t.Fatal(err)
	}
	if hc.HiTokens() != n-1 {
		t.Fatalf("count = %d", hc.HiTokens())
	}
	positions := map[int32]int{}
	hc.ForEachToken(LevelHi, func(p *Page, slot int) {
		positions[p.Position(slot)]++
	})
	if len(positions) != n-1 {
		t.Fatalf("distinct positions = %d, want %d", len(positions), n-1)
	}
	for pos, c := range positions {
		if c != 1 {
			t.Fatalf("position %d appears %d times", pos, c)
		}
		if pos == 2 {
			t.Fatal("removed position still present")
		}
	}
}

func TestDowngradeMovesTokenToLowTier(t *testing.T) {
	m := testManager(t, true, 64)
	sc, _ := m.AddSequence(1, 1)
	hc := sc.Heads[0]
	rng := mathx.NewRNG(17)
	orig := make(map[int32][]float32)
	for i := 0; i < 10; i++ {
		k, v := genToken(rng, 128)
		orig[int32(i)] = append([]float32(nil), k...)
		hc.AppendToken(LevelHi, k, v, float32(10-i), int32(i))
	}
	// min-score token is position 9
	ref, _, _ := hc.MinScore(LevelHi)
	kb := make([]float32, 128)
	vb := make([]float32, 128)
	if err := hc.Downgrade(ref, kb, vb); err != nil {
		t.Fatal(err)
	}
	if hc.HiTokens() != 9 || hc.LoTokens() != 1 {
		t.Fatalf("counts: hi=%d lo=%d", hc.HiTokens(), hc.LoTokens())
	}
	// the downgraded token lives in the lo tier with its position intact,
	// at K4V2 fidelity
	found := false
	hc.ForEachToken(LevelLo, func(p *Page, slot int) {
		if p.Position(slot) == 9 {
			found = true
			p.DequantToken(slot, kb, vb)
			if e := mathx.RelErr(kb, orig[9]); e > 0.25 {
				t.Fatalf("downgraded key error %v", e)
			}
		}
	})
	if !found {
		t.Fatal("downgraded token missing from low tier")
	}
}

func TestDowngradeRequiresHiRef(t *testing.T) {
	m := testManager(t, true, 8)
	sc, _ := m.AddSequence(1, 1)
	kb := make([]float32, 128)
	err := sc.Heads[0].Downgrade(TokenRef{Level: LevelLo}, kb, kb)
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestMaterializedReleaseRecycles(t *testing.T) {
	m := testManager(t, true, 32)
	sc, _ := m.AddSequence(1, 2)
	rng := mathx.NewRNG(21)
	for i := 0; i < 100; i++ {
		k, v := genToken(rng, 128)
		sc.Heads[i%2].AppendToken(LevelHi, k, v, 1, int32(i))
	}
	if m.UsedPages() == 0 {
		t.Fatal("no pages used")
	}
	m.ReleaseSequence(1)
	if m.FreePages() != 32 {
		t.Fatalf("pages leaked: %d free", m.FreePages())
	}
}

func TestPageFullCycleAfterEviction(t *testing.T) {
	// regression: removing the only token of the last page then appending
	// must reuse the empty page rather than allocating
	m := testManager(t, true, 64)
	sc, _ := m.AddSequence(1, 1)
	hc := sc.Heads[0]
	rng := mathx.NewRNG(23)
	capHi := m.TokensPerHiPage()
	for i := 0; i < capHi+1; i++ {
		k, v := genToken(rng, 128)
		hc.AppendToken(LevelHi, k, v, 1, int32(i))
	}
	pagesBefore := hc.pageCount(LevelHi)
	hc.RemoveToken(TokenRef{Level: LevelHi, Page: 1, Slot: 0})
	k, v := genToken(rng, 128)
	hc.AppendToken(LevelHi, k, v, 1, int32(capHi+1))
	if hc.pageCount(LevelHi) != pagesBefore {
		t.Fatalf("empty trailing page not reused: %d -> %d",
			pagesBefore, hc.pageCount(LevelHi))
	}
}

func TestTrimSequenceReclaimsEmptyTails(t *testing.T) {
	m := testManager(t, true, 64)
	sc, _ := m.AddSequence(1, 1)
	hc := sc.Heads[0]
	rng := mathx.NewRNG(31)
	capHi := m.TokensPerHiPage()
	// fill two pages, then evict everything in the second page
	for i := 0; i < capHi+5; i++ {
		k, v := genToken(rng, 128)
		hc.AppendToken(LevelHi, k, v, 1, int32(i))
	}
	for i := 0; i < 5; i++ {
		ref, _, ok := hc.MinScore(LevelHi)
		if !ok {
			t.Fatal("no tokens")
		}
		if err := hc.RemoveToken(ref); err != nil {
			t.Fatal(err)
		}
	}
	// second page is now empty but still attached
	used := m.UsedPages()
	freed, err := m.TrimSequence(1)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 1 {
		t.Fatalf("freed = %d, want 1", freed)
	}
	if m.UsedPages() != used-1 {
		t.Fatal("page not returned to free list")
	}
	// remaining tokens intact
	if hc.HiTokens() != capHi {
		t.Fatalf("tokens = %d", hc.HiTokens())
	}
	// appending after trim allocates a fresh page
	k, v := genToken(rng, 128)
	if err := hc.AppendToken(LevelHi, k, v, 1, 999); err != nil {
		t.Fatal(err)
	}
	if hc.HiTokens() != capHi+1 {
		t.Fatal("append after trim failed")
	}
}

func TestTrimSequenceNoopWhenFull(t *testing.T) {
	m := testManager(t, true, 64)
	sc, _ := m.AddSequence(1, 2)
	rng := mathx.NewRNG(37)
	for i := 0; i < 20; i++ {
		k, v := genToken(rng, 128)
		sc.Heads[i%2].AppendToken(LevelLo, k, v, 1, int32(i))
	}
	freed, err := m.TrimSequence(1)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 0 {
		t.Fatalf("freed %d pages from partial tails", freed)
	}
	if _, err := m.TrimSequence(99); err == nil {
		t.Fatal("expected unknown-sequence error")
	}
}
