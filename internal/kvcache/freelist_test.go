package kvcache

import (
	"testing"
	"testing/quick"

	"diffkv/internal/mathx"
)

func TestFreeListAllocRecycleSingle(t *testing.T) {
	fl := NewFreeList(4)
	if fl.Free() != 4 || fl.Used() != 0 {
		t.Fatalf("fresh list: free=%d used=%d", fl.Free(), fl.Used())
	}
	ids := make(map[int32]bool)
	for i := 0; i < 4; i++ {
		id, err := fl.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if ids[id] {
			t.Fatalf("duplicate allocation of page %d", id)
		}
		ids[id] = true
	}
	if _, err := fl.Alloc(); err == nil {
		t.Fatal("expected out-of-pages error")
	}
	fl.Recycle(2)
	id, err := fl.Alloc()
	if err != nil || id != 2 {
		t.Fatalf("recycled page not reallocated: id=%d err=%v", id, err)
	}
}

func TestFreeListWrapAround(t *testing.T) {
	fl := NewFreeList(3)
	// cycle through many alloc/recycle rounds to force pointer wrap
	for round := 0; round < 10; round++ {
		a, _ := fl.Alloc()
		b, _ := fl.Alloc()
		if a == b {
			t.Fatal("duplicate ids")
		}
		fl.Recycle(a)
		fl.Recycle(b)
		if fl.Free() != 3 {
			t.Fatalf("free count drifted: %d", fl.Free())
		}
	}
}

func TestFreeListRecycleIntoFullPanics(t *testing.T) {
	fl := NewFreeList(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fl.Recycle(0)
}

func TestAllocBatchDisjoint(t *testing.T) {
	fl := NewFreeList(100)
	counts := []int32{3, 0, 5, 1, 7}
	lists, err := fl.AllocBatch(counts)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	total := 0
	for i, l := range lists {
		if len(l) != int(counts[i]) {
			t.Fatalf("head %d got %d pages, want %d", i, len(l), counts[i])
		}
		for _, id := range l {
			if seen[id] {
				t.Fatalf("page %d allocated to two heads", id)
			}
			seen[id] = true
			total++
		}
	}
	if fl.Free() != 100-total {
		t.Fatalf("free count %d after allocating %d", fl.Free(), total)
	}
}

func TestAllocBatchInsufficient(t *testing.T) {
	fl := NewFreeList(4)
	if _, err := fl.AllocBatch([]int32{3, 3}); err == nil {
		t.Fatal("expected failure for demand 6 of 4")
	}
	// failed batch must not leak pages
	if fl.Free() != 4 {
		t.Fatalf("failed batch leaked pages: free=%d", fl.Free())
	}
}

func TestRecycleBatchRoundTrip(t *testing.T) {
	fl := NewFreeList(64)
	lists, err := fl.AllocBatch([]int32{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	fl.RecycleBatch(lists)
	if fl.Free() != 64 {
		t.Fatalf("free=%d after full recycle", fl.Free())
	}
	// all 64 pages must still be allocatable exactly once
	again, err := fl.AllocBatch([]int32{64})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	for _, id := range again[0] {
		if seen[id] {
			t.Fatalf("page %d duplicated after recycle", id)
		}
		seen[id] = true
	}
	if len(seen) != 64 {
		t.Fatalf("only %d distinct pages after recycle", len(seen))
	}
}

func TestBatchWrapAround(t *testing.T) {
	fl := NewFreeList(10)
	// push the start pointer near the end of the ring
	first, err := fl.AllocBatch([]int32{7})
	if err != nil {
		t.Fatal(err)
	}
	fl.RecycleBatch(first)
	// now start=7; an 8-page batch must wrap
	lists, err := fl.AllocBatch([]int32{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	for _, l := range lists {
		for _, id := range l {
			if seen[id] {
				t.Fatalf("duplicate page %d across wrap", id)
			}
			seen[id] = true
		}
	}
}

// Property: any interleaving of batch allocs and recycles conserves pages —
// no duplication, no loss.
func TestFreeListConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		const n = 32
		fl := NewFreeList(n)
		outstanding := make(map[int32]bool)
		var held [][]int32
		for _, op := range ops {
			if op%2 == 0 {
				// alloc a batch of up to 3 heads, up to 4 pages each
				counts := []int32{int32(op % 5), int32((op / 4) % 4), int32((op / 16) % 3)}
				lists, err := fl.AllocBatch(counts)
				if err != nil {
					continue // demand exceeded free: acceptable
				}
				for _, l := range lists {
					for _, id := range l {
						if outstanding[id] {
							return false // double allocation
						}
						outstanding[id] = true
					}
					if len(l) > 0 {
						held = append(held, l)
					}
				}
			} else if len(held) > 0 {
				idx := int(op) % len(held)
				l := held[idx]
				fl.RecycleBatch([][]int32{l})
				for _, id := range l {
					delete(outstanding, id)
				}
				held = append(held[:idx], held[idx+1:]...)
			}
			if fl.Free()+len(outstanding) != n {
				return false // conservation violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AllocBatch offsets honor the prefix-sum contract — each head's
// region follows the previous head's in ring order.
func TestAllocBatchOrderProperty(t *testing.T) {
	f := func(rawCounts []uint8) bool {
		if len(rawCounts) == 0 {
			return true
		}
		if len(rawCounts) > 16 {
			rawCounts = rawCounts[:16]
		}
		counts := make([]int32, len(rawCounts))
		var total int32
		for i, c := range rawCounts {
			counts[i] = int32(c % 4)
			total += counts[i]
		}
		n := int(total) + 8
		fl := NewFreeList(n)
		lists, err := fl.AllocBatch(counts)
		if err != nil {
			return false
		}
		// fresh list: ids must come out in ring order 0,1,2,...
		expect := int32(0)
		for _, l := range lists {
			for _, id := range l {
				if id != expect {
					return false
				}
				expect++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocBatchLargeParallel(t *testing.T) {
	// exercise the goroutine-parallel path with a head count above the
	// parallel-scan threshold
	nHeads := 8192
	fl := NewFreeList(3 * nHeads)
	counts := make([]int32, nHeads)
	rng := mathx.NewRNG(3)
	var total int
	for i := range counts {
		counts[i] = int32(rng.Intn(3))
		total += int(counts[i])
	}
	lists, err := fl.AllocBatch(counts)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	for _, l := range lists {
		for _, id := range l {
			if seen[id] {
				t.Fatal("duplicate page in large parallel batch")
			}
			seen[id] = true
		}
	}
	if len(seen) != total {
		t.Fatalf("allocated %d distinct pages, want %d", len(seen), total)
	}
}
