package kvcache

import (
	"fmt"

	"diffkv/internal/mathx"
)

// FreeList is the circular free page list (paper §5.2): all page IDs live
// in a fixed ring; the free region is contiguous (module wrap-around),
// tracked by a start pointer (next allocation) and an implicit end pointer
// (start+free, next recycle slot). Contiguity is what lets batch
// allocation and recycling parallelize with a prefix sum: each head is
// assigned a disjoint region of the ring to read from or write to.
type FreeList struct {
	ring    []int32
	start   int // index of the next free page ID to hand out
	freeCnt int // number of free pages
}

// NewFreeList creates a free list over page IDs [0, n).
func NewFreeList(n int) *FreeList {
	if n <= 0 {
		panic("kvcache: free list needs at least one page")
	}
	fl := &FreeList{ring: make([]int32, n), freeCnt: n}
	for i := range fl.ring {
		fl.ring[i] = int32(i)
	}
	return fl
}

// Free returns the number of free pages.
func (fl *FreeList) Free() int { return fl.freeCnt }

// Cap returns the total number of pages.
func (fl *FreeList) Cap() int { return len(fl.ring) }

// Used returns the number of allocated pages.
func (fl *FreeList) Used() int { return len(fl.ring) - fl.freeCnt }

// end returns the recycle position (one past the last free slot).
func (fl *FreeList) end() int { return (fl.start + fl.freeCnt) % len(fl.ring) }

// Alloc hands out a single page ID.
func (fl *FreeList) Alloc() (int32, error) {
	if fl.freeCnt == 0 {
		return -1, fmt.Errorf("kvcache: out of pages (cap %d)", len(fl.ring))
	}
	id := fl.ring[fl.start]
	fl.start = (fl.start + 1) % len(fl.ring)
	fl.freeCnt--
	return id, nil
}

// Recycle returns a single page ID to the list.
func (fl *FreeList) Recycle(id int32) {
	if fl.freeCnt >= len(fl.ring) {
		panic("kvcache: recycle into full free list")
	}
	fl.ring[fl.end()] = id
	fl.freeCnt++
}

// AllocBatch performs the coordination phase of parallel KV compaction for
// allocation: counts[i] is the number of pages head i needs. A prefix sum
// assigns each head a disjoint region of the free ring; heads then read
// their page IDs concurrently. Returns one ID slice per head, or an error
// (allocating nothing) if the total demand exceeds the free pages.
func (fl *FreeList) AllocBatch(counts []int32) ([][]int32, error) {
	offsets := make([]int32, len(counts))
	total := mathx.ParallelExclusiveScan(counts, offsets)
	if int(total) > fl.freeCnt {
		return nil, fmt.Errorf("kvcache: batch alloc of %d pages exceeds %d free", total, fl.freeCnt)
	}
	out := make([][]int32, len(counts))
	n := len(fl.ring)
	start := fl.start
	mathx.ParallelFor(len(counts), func(i int) {
		c := int(counts[i])
		if c == 0 {
			return
		}
		ids := make([]int32, c)
		base := start + int(offsets[i])
		for j := 0; j < c; j++ {
			ids[j] = fl.ring[(base+j)%n]
		}
		out[i] = ids
	})
	fl.start = (fl.start + int(total)) % n
	fl.freeCnt -= int(total)
	return out, nil
}

// RecycleBatch performs the coordination phase for recycling: each head i
// returns ids[i]; a prefix sum assigns each head a disjoint write region
// after the end pointer, heads write concurrently, and the end pointer
// advances by the total.
func (fl *FreeList) RecycleBatch(ids [][]int32) {
	counts := make([]int32, len(ids))
	for i, l := range ids {
		counts[i] = int32(len(l))
	}
	offsets := make([]int32, len(counts))
	total := mathx.ParallelExclusiveScan(counts, offsets)
	if fl.freeCnt+int(total) > len(fl.ring) {
		panic("kvcache: batch recycle overflows free list")
	}
	n := len(fl.ring)
	end := fl.end()
	mathx.ParallelFor(len(ids), func(i int) {
		base := end + int(offsets[i])
		for j, id := range ids[i] {
			fl.ring[(base+j)%n] = id
		}
	})
	fl.freeCnt += int(total)
}
