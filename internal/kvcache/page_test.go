package kvcache

import (
	"testing"

	"diffkv/internal/mathx"
	"diffkv/internal/quant"
)

func TestTokensPerPageValues(t *testing.T) {
	// 8192-byte page, dim 128
	if got := TokensPerPage(8192, 128, quant.K8V4); got != 37 {
		t.Fatalf("K8V4 tokens/page = %d, want 37", got)
	}
	if got := TokensPerPage(8192, 128, quant.K4V2); got != 68 {
		t.Fatalf("K4V2 tokens/page = %d, want 68", got)
	}
	if got := TokensPerPage(8192, 128, quant.FP16); got != 15 {
		t.Fatalf("FP16 tokens/page = %d, want 15", got)
	}
}

func TestTokensPerPagePanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TokensPerPage(64, 128, quant.FP16)
}

func TestPageConfigureResets(t *testing.T) {
	pool := NewPagePool(2, 8192, 128, true)
	p := pool.Configure(0, quant.K8V4)
	k := make([]float32, 128)
	v := make([]float32, 128)
	rng := mathx.NewRNG(1)
	rng.NormVec(k, 1)
	rng.NormVec(v, 1)
	p.Append(k, v, 0.5, 7)
	if p.N != 1 {
		t.Fatalf("N = %d", p.N)
	}
	// reconfigure to the other precision: capacity changes, contents reset
	p2 := pool.Configure(0, quant.K4V2)
	if p2.N != 0 {
		t.Fatal("configure did not reset N")
	}
	if p2.Cap != 68 {
		t.Fatalf("reconfigured cap = %d", p2.Cap)
	}
}

func TestPageAppendFullPanics(t *testing.T) {
	pool := NewPagePool(1, 8192, 128, true)
	p := pool.Configure(0, quant.FP16)
	k := make([]float32, 128)
	for i := 0; i < p.Cap; i++ {
		p.Append(k, k, 0, int32(i))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Append(k, k, 0, 99)
}

func TestPageCountsOnlyAppendPanics(t *testing.T) {
	pool := NewPagePool(1, 8192, 128, false)
	p := pool.Configure(0, quant.K8V4)
	if p.Materialized() {
		t.Fatal("counts-only page should not be materialized")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Append(make([]float32, 128), make([]float32, 128), 0, 0)
}

func TestPageRemoveSwapWithinPage(t *testing.T) {
	pool := NewPagePool(1, 8192, 64, true)
	p := pool.Configure(0, quant.K8V4)
	rng := mathx.NewRNG(2)
	for i := 0; i < 5; i++ {
		k := make([]float32, 64)
		v := make([]float32, 64)
		rng.NormVec(k, 1)
		rng.NormVec(v, 1)
		p.Append(k, v, float32(i), int32(i))
	}
	p.RemoveSwap(1) // position 4 moves into slot 1
	if p.N != 4 {
		t.Fatalf("N = %d", p.N)
	}
	if p.Position(1) != 4 {
		t.Fatalf("slot 1 position = %d, want 4", p.Position(1))
	}
	if p.Score(1) != 4 {
		t.Fatalf("slot 1 score = %v, want 4", p.Score(1))
	}
}

func TestPageRemoveSwapOutOfRangePanics(t *testing.T) {
	pool := NewPagePool(1, 8192, 64, true)
	p := pool.Configure(0, quant.K8V4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.RemoveSwap(0)
}

func TestPagePayloadBytes(t *testing.T) {
	pool := NewPagePool(1, 8192, 128, true)
	p := pool.Configure(0, quant.K4V2)
	k := make([]float32, 128)
	p.Append(k, k, 0, 0)
	p.Append(k, k, 0, 1)
	if p.PayloadBytes() != 2*quant.K4V2.TokenBytes(128) {
		t.Fatalf("PayloadBytes = %d", p.PayloadBytes())
	}
}

func TestPageDequantRoundTrip(t *testing.T) {
	pool := NewPagePool(1, 8192, 128, true)
	p := pool.Configure(0, quant.K8V4)
	rng := mathx.NewRNG(3)
	k := make([]float32, 128)
	v := make([]float32, 128)
	rng.NormVec(k, 1)
	rng.NormVec(v, 1)
	slot := p.Append(k, v, 0.9, 42)
	ko := make([]float32, 128)
	vo := make([]float32, 128)
	p.DequantToken(slot, ko, vo)
	if e := mathx.RelErr(ko, k); e > 0.02 {
		t.Fatalf("key round-trip error %v (8-bit)", e)
	}
	if e := mathx.RelErr(vo, v); e > 0.15 {
		t.Fatalf("value round-trip error %v (4-bit)", e)
	}
	if p.Score(slot) != 0.9 || p.Position(slot) != 42 {
		t.Fatal("score/position lost")
	}
}

func TestPagePoolInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPagePool(0, 8192, 128, true)
}

func TestPagePoolAccessors(t *testing.T) {
	pool := NewPagePool(3, 4096, 64, false)
	if pool.Len() != 3 || pool.PageBytes() != 4096 || pool.Dim() != 64 {
		t.Fatal("accessors wrong")
	}
	if pool.Get(2).ID != 2 {
		t.Fatal("page ID wrong")
	}
}
