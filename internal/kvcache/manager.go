package kvcache

import (
	"fmt"

	"diffkv/internal/quant"
)

// Config parameterizes one memory manager (one worker's share of the KV
// cache, paper §6.1).
type Config struct {
	// Dim is the per-head feature dimension.
	Dim int
	// PageBytes is the fixed unified-page size.
	PageBytes int
	// NumPages is the total page count this manager owns.
	NumPages int
	// HiPrec and LoPrec are the two precision tiers (default K8V4 / K4V2).
	HiPrec, LoPrec quant.Precision
	// MaxSeqLen bounds page-table entry length.
	MaxSeqLen int
	// Materialize selects payload-carrying pages (accuracy experiments) vs
	// counts-only pages (serving scale).
	Materialize bool
}

// Validate fills defaults and checks invariants.
func (c *Config) Validate() error {
	if c.Dim <= 0 {
		return fmt.Errorf("kvcache: Dim must be positive")
	}
	if c.PageBytes <= 0 {
		c.PageBytes = 8192
	}
	if c.NumPages <= 0 {
		return fmt.Errorf("kvcache: NumPages must be positive")
	}
	if c.HiPrec == (quant.Precision{}) {
		c.HiPrec = quant.K8V4
	}
	if c.LoPrec == (quant.Precision{}) {
		c.LoPrec = quant.K4V2
	}
	if !c.HiPrec.Valid() || !c.LoPrec.Valid() {
		return fmt.Errorf("kvcache: invalid precision configuration")
	}
	if c.HiPrec.TokenBytes(c.Dim) < c.LoPrec.TokenBytes(c.Dim) {
		return fmt.Errorf("kvcache: high-precision tokens must not be smaller than low-precision tokens")
	}
	if c.MaxSeqLen <= 0 {
		c.MaxSeqLen = 8192
	}
	return nil
}

// Manager is one worker's KV-cache memory manager: a page pool, the
// circular free page list, and per-(sequence, head) bidirectional page
// tables.
type Manager struct {
	cfg   Config
	pool  *PagePool
	free  *FreeList
	seqs  map[int]*SeqCache
	capHi int // tokens per high-precision page
	capLo int // tokens per low-precision page
}

// NewManager builds a manager from cfg.
func NewManager(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:   cfg,
		pool:  NewPagePool(cfg.NumPages, cfg.PageBytes, cfg.Dim, cfg.Materialize),
		free:  NewFreeList(cfg.NumPages),
		seqs:  make(map[int]*SeqCache),
		capHi: TokensPerPage(cfg.PageBytes, cfg.Dim, cfg.HiPrec),
		capLo: TokensPerPage(cfg.PageBytes, cfg.Dim, cfg.LoPrec),
	}
	return m, nil
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// FreePages returns the number of free pages.
func (m *Manager) FreePages() int { return m.free.Free() }

// UsedPages returns the number of allocated pages.
func (m *Manager) UsedPages() int { return m.free.Used() }

// TokensPerHiPage returns the capacity of a high-precision page.
func (m *Manager) TokensPerHiPage() int { return m.capHi }

// TokensPerLoPage returns the capacity of a low-precision page.
func (m *Manager) TokensPerLoPage() int { return m.capLo }

// tableSlots is the page-table entry length: max sequence length divided by
// tokens per high-precision page (paper §5.2 — low-precision pages hold
// more tokens, so this side can never overflow first).
func (m *Manager) tableSlots() int {
	s := (m.cfg.MaxSeqLen + m.capHi - 1) / m.capHi
	if s < 1 {
		s = 1
	}
	return s
}

// SeqCache is the per-sequence view: one HeadCache per KV head managed by
// this worker.
type SeqCache struct {
	ID    int
	Heads []*HeadCache
	mgr   *Manager
}

// AddSequence registers a sequence with numHeads KV heads and returns its
// cache view.
func (m *Manager) AddSequence(id, numHeads int) (*SeqCache, error) {
	if _, dup := m.seqs[id]; dup {
		return nil, fmt.Errorf("kvcache: sequence %d already registered", id)
	}
	if numHeads <= 0 {
		return nil, fmt.Errorf("kvcache: sequence needs at least one head")
	}
	sc := &SeqCache{ID: id, Heads: make([]*HeadCache, numHeads), mgr: m}
	for i := range sc.Heads {
		sc.Heads[i] = &HeadCache{
			mgr:   m,
			table: NewBiTable(m.tableSlots()),
		}
	}
	m.seqs[id] = sc
	return sc, nil
}

// Sequence returns a registered sequence's cache view.
func (m *Manager) Sequence(id int) (*SeqCache, bool) {
	sc, ok := m.seqs[id]
	return sc, ok
}

// ReleaseSequence recycles every page of a finished sequence.
func (m *Manager) ReleaseSequence(id int) error {
	sc, ok := m.seqs[id]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", id)
	}
	lists := make([][]int32, len(sc.Heads))
	for i, hc := range sc.Heads {
		lists[i] = hc.table.DrainAll()
		hc.hiTokens, hc.loTokens = 0, 0
	}
	m.free.RecycleBatch(lists)
	delete(m.seqs, id)
	return nil
}

// CompactStats counts the work of one compaction pass; the gpusim cost
// model converts these into simulated time.
type CompactStats struct {
	TokenOps       int // per-token planning operations
	Regions        int // (request × head) regions coordinated
	PagesAllocated int
	PagesFreed     int
}

// Add accumulates another stats record.
func (s *CompactStats) Add(o CompactStats) {
	s.TokenOps += o.TokenOps
	s.Regions += o.Regions
	s.PagesAllocated += o.PagesAllocated
	s.PagesFreed += o.PagesFreed
}

// HeadDemand is the planning-phase output of one head in the prompt phase:
// how many tokens it stores at each tier after compression.
type HeadDemand struct {
	HiTokens int
	LoTokens int
}

// PromptCompact runs the full prompt-phase compaction workflow (paper
// §5.3) for one sequence: conservative allocation assuming every prompt
// token is stored at high precision, per-head planning (demands computed by
// the caller's compression policy), and parallel reclamation of unused
// pages. Counts-only: materialized token payloads are appended separately
// by the policy via HeadCache in accuracy experiments.
func (m *Manager) PromptCompact(seqID, promptLen int, demands []HeadDemand) (CompactStats, error) {
	sc, ok := m.seqs[seqID]
	if !ok {
		return CompactStats{}, fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	if len(demands) != len(sc.Heads) {
		return CompactStats{}, fmt.Errorf("kvcache: %d demands for %d heads", len(demands), len(sc.Heads))
	}
	nHeads := len(sc.Heads)
	conservative := (promptLen + m.capHi - 1) / m.capHi

	// Conservative allocation: every head gets ceil(promptLen/capHi) pages.
	counts := make([]int32, nHeads)
	for i := range counts {
		counts[i] = int32(conservative)
	}
	allocated, err := m.free.AllocBatch(counts)
	if err != nil {
		return CompactStats{}, err
	}

	// Planning phase (parallel per head in the real system): compute page
	// needs from token demands; TokenOps accounts for the per-token scan.
	stats := CompactStats{
		TokenOps: promptLen * nHeads,
		Regions:  nHeads,
	}

	// Coordination: assign used pages to tables, gather unused for
	// recycling.
	unused := make([][]int32, nHeads)
	for i, hc := range sc.Heads {
		d := demands[i]
		if d.HiTokens < 0 || d.LoTokens < 0 || d.HiTokens+d.LoTokens > promptLen {
			// roll back this head's pages and all subsequent
			m.free.RecycleBatch(allocated[i:])
			return CompactStats{}, fmt.Errorf("kvcache: head %d demand (%d,%d) exceeds prompt %d",
				i, d.HiTokens, d.LoTokens, promptLen)
		}
		hiPages := (d.HiTokens + m.capHi - 1) / m.capHi
		loPages := (d.LoTokens + m.capLo - 1) / m.capLo
		need := hiPages + loPages
		ids := allocated[i]
		if need > len(ids) {
			// Low-precision pages hold ≥ as many tokens as high-precision
			// ones and demands sum to ≤ promptLen, so the conservative
			// allocation always suffices — except when *both* tiers round
			// up; top up from the free list in that rare case.
			extra := make([]int32, need-len(ids))
			for j := range extra {
				id, err2 := m.free.Alloc()
				if err2 != nil {
					m.free.RecycleBatch([][]int32{ids})
					return CompactStats{}, err2
				}
				extra[j] = id
			}
			ids = append(ids, extra...)
			stats.PagesAllocated += len(extra)
		}
		for _, id := range ids[:hiPages] {
			m.pool.Configure(id, m.cfg.HiPrec)
			if err := hc.table.PushHi(id); err != nil {
				return CompactStats{}, err
			}
		}
		for _, id := range ids[hiPages : hiPages+loPages] {
			m.pool.Configure(id, m.cfg.LoPrec)
			if err := hc.table.PushLo(id); err != nil {
				return CompactStats{}, err
			}
		}
		unused[i] = ids[hiPages+loPages:]
		hc.hiTokens = d.HiTokens
		hc.loTokens = d.LoTokens
		hc.markCounts(hiPages, loPages, d.HiTokens, d.LoTokens)
		stats.PagesAllocated += hiPages + loPages
		stats.PagesFreed += len(unused[i])
	}
	m.free.RecycleBatch(unused)
	return stats, nil
}

// GenDemand is one head's generation-step memory demand: how many
// additional tokens land in each tier this step (0 or 1 each under
// Algorithm 1; the candidate goes to one tier and a victim may be
// downgraded into the other).
type GenDemand struct {
	HiDelta int
	LoDelta int
	// HiRemoved / LoRemoved report evictions (pruned or downgraded away);
	// they free no pages during generation (paper §5.3: recycling happens
	// only when the request finishes), but keep token counts correct.
	HiRemoved int
	LoRemoved int
}

// GenCompact runs one generation-step compaction for a set of sequences:
// each head allocates at most the pages it needs (usually 0, at most one
// per tier), coordinated by one batch prefix-sum allocation across all
// heads of all sequences.
func (m *Manager) GenCompact(seqIDs []int, demands [][]GenDemand) (CompactStats, error) {
	if len(seqIDs) != len(demands) {
		return CompactStats{}, fmt.Errorf("kvcache: %d seqs vs %d demand sets", len(seqIDs), len(demands))
	}
	type headRef struct {
		hc     *HeadCache
		d      GenDemand
		needHi int
		needLo int
	}
	var refs []headRef
	var counts []int32
	stats := CompactStats{}
	for si, id := range seqIDs {
		sc, ok := m.seqs[id]
		if !ok {
			return CompactStats{}, fmt.Errorf("kvcache: unknown sequence %d", id)
		}
		if len(demands[si]) != len(sc.Heads) {
			return CompactStats{}, fmt.Errorf("kvcache: seq %d: %d demands for %d heads",
				id, len(demands[si]), len(sc.Heads))
		}
		for hi, d := range demands[si] {
			hc := sc.Heads[hi]
			needHi := pagesNeeded(hc.hiTokens+d.HiDelta-d.HiRemoved, m.capHi) - hc.table.Hi()
			if needHi < 0 {
				needHi = 0
			}
			needLo := pagesNeeded(hc.loTokens+d.LoDelta-d.LoRemoved, m.capLo) - hc.table.Lo()
			if needLo < 0 {
				needLo = 0
			}
			refs = append(refs, headRef{hc: hc, d: d, needHi: needHi, needLo: needLo})
			counts = append(counts, int32(needHi+needLo))
			// planning cost: victim search scans the head's cached tokens
			stats.TokenOps += hc.hiTokens + hc.loTokens
			stats.Regions++
		}
	}
	allocated, err := m.free.AllocBatch(counts)
	if err != nil {
		return CompactStats{}, err
	}
	for i, ref := range refs {
		ids := allocated[i]
		for _, id := range ids[:ref.needHi] {
			m.pool.Configure(id, m.cfg.HiPrec)
			if err := ref.hc.table.PushHi(id); err != nil {
				return CompactStats{}, err
			}
		}
		for _, id := range ids[ref.needHi:] {
			m.pool.Configure(id, m.cfg.LoPrec)
			if err := ref.hc.table.PushLo(id); err != nil {
				return CompactStats{}, err
			}
		}
		ref.hc.hiTokens += ref.d.HiDelta - ref.d.HiRemoved
		ref.hc.loTokens += ref.d.LoDelta - ref.d.LoRemoved
		stats.PagesAllocated += len(ids)
	}
	return stats, nil
}

// HeadCounts reports every head's per-tier token counts — the state a host
// offload tier captures to swap the sequence out. When buf has sufficient
// capacity it is reused (the steady-state swap path allocates nothing
// here); otherwise a new slice is returned.
func (m *Manager) HeadCounts(seqID int, buf []HeadDemand) ([]HeadDemand, error) {
	sc, ok := m.seqs[seqID]
	if !ok {
		return nil, fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	if cap(buf) < len(sc.Heads) {
		buf = make([]HeadDemand, len(sc.Heads))
	}
	buf = buf[:len(sc.Heads)]
	for i, hc := range sc.Heads {
		buf[i] = HeadDemand{HiTokens: hc.hiTokens, LoTokens: hc.loTokens}
	}
	return buf, nil
}

// SeqKVBytes returns the token-exact payload+metadata bytes of a sequence
// across all heads — the quantity a swap must move over PCIe. Compressed
// tiers make this smaller than the FP16 equivalent, which is exactly why
// swapping a compressed sequence is cheaper.
func (m *Manager) SeqKVBytes(seqID int) (int64, error) {
	sc, ok := m.seqs[seqID]
	if !ok {
		return 0, fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	var b int64
	for _, hc := range sc.Heads {
		b += int64(hc.KVBytes())
	}
	return b, nil
}

// AdoptCounts registers seqID and allocates exactly the pages needed to
// hold the given per-head tier counts — the swap-in restore path: a
// sequence whose counts were captured by HeadCounts before release is
// re-admitted with an identical page-table shape. Counts-only mode;
// materialized payloads are restored via ReadSnapshot, which allocates its
// own pages. On allocation failure nothing is registered.
func (m *Manager) AdoptCounts(seqID int, demands []HeadDemand) (CompactStats, error) {
	if m.cfg.Materialize {
		return CompactStats{}, fmt.Errorf("kvcache: AdoptCounts requires a counts-only manager (use ReadSnapshot)")
	}
	var need int32
	for _, d := range demands {
		if d.HiTokens < 0 || d.LoTokens < 0 {
			return CompactStats{}, fmt.Errorf("kvcache: negative adopt demand (%d,%d)", d.HiTokens, d.LoTokens)
		}
		need += int32(pagesNeeded(d.HiTokens, m.capHi) + pagesNeeded(d.LoTokens, m.capLo))
	}
	if int(need) > m.free.Free() {
		return CompactStats{}, fmt.Errorf("kvcache: adopt of %d pages exceeds %d free", need, m.free.Free())
	}
	sc, err := m.AddSequence(seqID, len(demands))
	if err != nil {
		return CompactStats{}, err
	}
	stats := CompactStats{Regions: len(demands)}
	for i, hc := range sc.Heads {
		d := demands[i]
		hiPages := pagesNeeded(d.HiTokens, m.capHi)
		loPages := pagesNeeded(d.LoTokens, m.capLo)
		push := func(pages int, prec quant.Precision, pushFn func(int32) error) error {
			for p := 0; p < pages; p++ {
				id, err := m.free.Alloc()
				if err != nil {
					return err
				}
				m.pool.Configure(id, prec)
				if err := pushFn(id); err != nil {
					m.free.Recycle(id)
					return err
				}
			}
			return nil
		}
		if err := push(hiPages, m.cfg.HiPrec, hc.table.PushHi); err != nil {
			_ = m.ReleaseSequence(seqID)
			return CompactStats{}, err
		}
		if err := push(loPages, m.cfg.LoPrec, hc.table.PushLo); err != nil {
			_ = m.ReleaseSequence(seqID)
			return CompactStats{}, err
		}
		hc.hiTokens = d.HiTokens
		hc.loTokens = d.LoTokens
		hc.markCounts(hiPages, loPages, d.HiTokens, d.LoTokens)
		stats.PagesAllocated += hiPages + loPages
	}
	return stats, nil
}

func pagesNeeded(tokens, perPage int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + perPage - 1) / perPage
}

// BytesUsed returns the total bytes of allocated pages (page granularity —
// the quantity that bounds batch size on the device).
func (m *Manager) BytesUsed() int64 {
	return int64(m.free.Used()) * int64(m.cfg.PageBytes)
}

// MetadataBytes returns the total page-table footprint across registered
// sequences.
func (m *Manager) MetadataBytes() int {
	var b int
	//diffkv:allow maprange -- integer sum: addition over int is commutative and exact
	for _, sc := range m.seqs {
		for _, hc := range sc.Heads {
			b += hc.table.MetadataBytes()
		}
	}
	return b
}

// TrimSequence recycles empty trailing pages from every head of a
// sequence. The paper's design recycles pages only when a request
// finishes (§5.3); trimming is the natural extension for memory pressure:
// Algorithm 1's evictions can leave an empty page at the tail of a tier,
// and reclaiming it is cheaper than preempting a request. Returns the
// number of pages freed.
func (m *Manager) TrimSequence(seqID int) (int, error) {
	sc, ok := m.seqs[seqID]
	if !ok {
		return 0, fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	lists := make([][]int32, len(sc.Heads))
	freed := 0
	for i, hc := range sc.Heads {
		var ids []int32
		for _, level := range []Level{LevelHi, LevelLo} {
			for hc.pageCount(level) > 0 {
				last := hc.page(level, hc.pageCount(level)-1)
				if last.N != 0 {
					break
				}
				var id int32
				var err error
				if level == LevelHi {
					id, err = hc.table.PopHi()
				} else {
					id, err = hc.table.PopLo()
				}
				if err != nil {
					return freed, err
				}
				ids = append(ids, id)
			}
		}
		lists[i] = ids
		freed += len(ids)
	}
	m.free.RecycleBatch(lists)
	return freed, nil
}
