package kvcache

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"diffkv/internal/mathx"
	"diffkv/internal/quant"
)

func populatedManager(t *testing.T, seed uint64) (*Manager, int) {
	t.Helper()
	m := testManager(t, true, 128)
	sc, err := m.AddSequence(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(seed)
	for h, hc := range sc.Heads {
		for i := 0; i < 50+h*20; i++ {
			k, v := genToken(rng, 128)
			lvl := LevelHi
			if i%3 == 0 {
				lvl = LevelLo
			}
			if err := hc.AppendToken(lvl, k, v, float32(i)/10, int32(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m, 7
}

func TestSnapshotRoundTrip(t *testing.T) {
	src, seqID := populatedManager(t, 1)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, seqID); err != nil {
		t.Fatal(err)
	}

	dst := testManager(t, true, 128)
	if err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes()), 42); err != nil {
		t.Fatal(err)
	}
	srcSeq, _ := src.Sequence(seqID)
	dstSeq, _ := dst.Sequence(42)
	if len(dstSeq.Heads) != len(srcSeq.Heads) {
		t.Fatalf("head count %d vs %d", len(dstSeq.Heads), len(srcSeq.Heads))
	}
	for h := range srcSeq.Heads {
		sh, dh := srcSeq.Heads[h], dstSeq.Heads[h]
		if sh.HiTokens() != dh.HiTokens() || sh.LoTokens() != dh.LoTokens() {
			t.Fatalf("head %d counts differ: %d/%d vs %d/%d",
				h, sh.HiTokens(), sh.LoTokens(), dh.HiTokens(), dh.LoTokens())
		}
		// every restored token matches the original dequantized content
		type tokState struct {
			key, val []float32
			score    float32
		}
		collect := func(hc *HeadCache) map[int32]tokState {
			out := map[int32]tokState{}
			for _, lvl := range []Level{LevelHi, LevelLo} {
				hc.ForEachToken(lvl, func(p *Page, slot int) {
					k := make([]float32, 128)
					v := make([]float32, 128)
					p.DequantToken(slot, k, v)
					out[p.Position(slot)] = tokState{k, v, p.Score(slot)}
				})
			}
			return out
		}
		want := collect(sh)
		got := collect(dh)
		if len(want) != len(got) {
			t.Fatalf("head %d token count %d vs %d", h, len(got), len(want))
		}
		for pos, ws := range want {
			gs, ok := got[pos]
			if !ok {
				t.Fatalf("head %d missing position %d", h, pos)
			}
			if gs.score != ws.score {
				t.Fatalf("head %d pos %d score %v vs %v", h, pos, gs.score, ws.score)
			}
			if e := mathx.RelErr(gs.key, ws.key); e > 1e-6 {
				t.Fatalf("head %d pos %d key mismatch %v", h, pos, e)
			}
			if e := mathx.RelErr(gs.val, ws.val); e > 1e-6 {
				t.Fatalf("head %d pos %d value mismatch %v", h, pos, e)
			}
		}
	}
}

func TestSnapshotRejectsBadMagic(t *testing.T) {
	dst := testManager(t, true, 32)
	err := dst.ReadSnapshot(strings.NewReader("NOPE-not-a-snapshot"), 1)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("expected magic error, got %v", err)
	}
	// failed restore must not leave the sequence registered
	if _, ok := dst.Sequence(1); ok {
		t.Fatal("failed restore left sequence registered")
	}
}

func TestSnapshotRejectsDimMismatch(t *testing.T) {
	src, seqID := populatedManager(t, 2)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, seqID); err != nil {
		t.Fatal(err)
	}
	dst, err := NewManager(Config{Dim: 64, PageBytes: 8192, NumPages: 32, Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes()), 1); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestSnapshotRejectsPrecisionMismatch(t *testing.T) {
	src, seqID := populatedManager(t, 3)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, seqID); err != nil {
		t.Fatal(err)
	}
	dst, err := NewManager(Config{
		Dim: 128, PageBytes: 8192, NumPages: 64,
		HiPrec: quant.K8V8, LoPrec: quant.K4V4, Materialize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = dst.ReadSnapshot(bytes.NewReader(buf.Bytes()), 1)
	if err == nil {
		t.Fatal("expected precision mismatch error")
	}
	if dst.UsedPages() != 0 {
		t.Fatal("failed restore leaked pages")
	}
}

func TestSnapshotTruncated(t *testing.T) {
	src, seqID := populatedManager(t, 4)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, seqID); err != nil {
		t.Fatal(err)
	}
	dst := testManager(t, true, 128)
	half := buf.Bytes()[:buf.Len()/2]
	if err := dst.ReadSnapshot(bytes.NewReader(half), 1); err == nil {
		t.Fatal("expected truncation error")
	}
	if dst.UsedPages() != 0 {
		t.Fatalf("truncated restore leaked %d pages", dst.UsedPages())
	}
}

func TestSnapshotCountsOnlyRejected(t *testing.T) {
	m := testManager(t, false, 16)
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf, 1); err == nil {
		t.Fatal("counts-only snapshot should fail")
	}
	if err := m.ReadSnapshot(strings.NewReader(""), 1); err == nil {
		t.Fatal("counts-only restore should fail")
	}
}

func TestSnapshotUnknownSequence(t *testing.T) {
	m := testManager(t, true, 16)
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf, 99); err == nil {
		t.Fatal("expected unknown-sequence error")
	}
}

// Property: snapshots round-trip for arbitrary population patterns.
func TestSnapshotRoundTripProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(pattern []uint8) bool {
		if len(pattern) > 64 {
			pattern = pattern[:64]
		}
		src, err := NewManager(Config{
			Dim: 32, PageBytes: 2048, NumPages: 64, Materialize: true,
		})
		if err != nil {
			return false
		}
		sc, err := src.AddSequence(1, 2)
		if err != nil {
			return false
		}
		rng := mathx.NewRNG(uint64(len(pattern)) + 1)
		for i, b := range pattern {
			hc := sc.Heads[int(b)%2]
			lvl := LevelHi
			if b%3 == 0 {
				lvl = LevelLo
			}
			k := make([]float32, 32)
			v := make([]float32, 32)
			rng.NormVec(k, 1)
			rng.NormVec(v, 1)
			if err := hc.AppendToken(lvl, k, v, float32(b), int32(i)); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := src.WriteSnapshot(&buf, 1); err != nil {
			return false
		}
		dst, err := NewManager(Config{
			Dim: 32, PageBytes: 2048, NumPages: 64, Materialize: true,
		})
		if err != nil {
			return false
		}
		if err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes()), 1); err != nil {
			return false
		}
		dsc, _ := dst.Sequence(1)
		for h := range sc.Heads {
			if sc.Heads[h].HiTokens() != dsc.Heads[h].HiTokens() ||
				sc.Heads[h].LoTokens() != dsc.Heads[h].LoTokens() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
