// Package kvcache implements DiffKV's memory manager — the paper's primary
// systems contribution (§5): unified pages, the circular free page list,
// the bidirectional page table, and parallel KV compaction.
//
// The package has two operating modes sharing the same data structures:
//
//   - materialized: pages carry real quantized payloads; the compression
//     policy and attention kernels run on them (accuracy experiments);
//   - counts-only: pages are tracked but carry no payload; the serving
//     simulator and the Fig. 13 memory-management comparison use this mode
//     to scale to hundreds of requests.
//
// Timing is never measured here: compaction operations return operation
// counts that the gpusim cost model converts to simulated time.
package kvcache

import (
	"fmt"

	"diffkv/internal/quant"
)

// Page is a unified page (paper §5.2): a fixed-size block of device memory
// configured at allocation time to hold tokens at one precision. A
// materialized page is organized into six segments: quantized keys, key
// quantization metadata, quantized values, value metadata, token scores and
// token positions.
type Page struct {
	ID   int32
	Prec quant.Precision
	N    int // tokens stored
	Cap  int // token capacity at the configured precision
	Dim  int

	// payload segments (nil in counts-only mode)
	keys    []byte    // Cap * Prec.KeyBytes(Dim)
	vals    []byte    // Cap * Prec.ValBytes(Dim)
	keyMeta []float32 // 2 per token: scale, zero
	valMeta []float32 // 2 per token: scale, zero
	scores  []float32 // 1 per token
	pos     []int32   // 1 per token
}

// Materialized reports whether the page carries payload segments.
func (p *Page) Materialized() bool { return p.keys != nil }

// TokensPerPage returns how many tokens of dimension dim at precision prec
// fit in a page of pageBytes. It panics if not even one fits.
func TokensPerPage(pageBytes, dim int, prec quant.Precision) int {
	tb := prec.TokenBytes(dim)
	n := pageBytes / tb
	if n < 1 {
		panic(fmt.Sprintf("kvcache: page of %dB cannot hold one %s token (needs %dB)",
			pageBytes, prec, tb))
	}
	return n
}

// configure prepares the page for tokens at precision prec, resetting its
// contents. In materialized mode segments are (re)allocated to exact size.
func (p *Page) configure(pageBytes, dim int, prec quant.Precision, materialize bool) {
	p.Prec = prec
	p.Dim = dim
	p.N = 0
	p.Cap = TokensPerPage(pageBytes, dim, prec)
	if !materialize {
		p.keys, p.vals, p.keyMeta, p.valMeta, p.scores, p.pos = nil, nil, nil, nil, nil, nil
		return
	}
	p.keys = make([]byte, p.Cap*prec.KeyBytes(dim))
	p.vals = make([]byte, p.Cap*prec.ValBytes(dim))
	p.keyMeta = make([]float32, 2*p.Cap)
	p.valMeta = make([]float32, 2*p.Cap)
	p.scores = make([]float32, p.Cap)
	p.pos = make([]int32, p.Cap)
}

// Full reports whether the page has no free slots.
func (p *Page) Full() bool { return p.N >= p.Cap }

// Append quantizes (key, val) into the next free slot and returns its index.
// Panics if the page is full or not materialized.
func (p *Page) Append(key, val []float32, score float32, position int32) int {
	if p.Full() {
		panic("kvcache: Append to full page")
	}
	if !p.Materialized() {
		panic("kvcache: Append to counts-only page")
	}
	slot := p.N
	kb := p.Prec.KeyBytes(p.Dim)
	vb := p.Prec.ValBytes(p.Dim)
	ks, kz := quant.QuantizeInto(key, p.Prec.KeyBits, p.keys[slot*kb:(slot+1)*kb])
	vs, vz := quant.QuantizeInto(val, p.Prec.ValBits, p.vals[slot*vb:(slot+1)*vb])
	p.keyMeta[2*slot], p.keyMeta[2*slot+1] = ks, kz
	p.valMeta[2*slot], p.valMeta[2*slot+1] = vs, vz
	p.scores[slot] = score
	p.pos[slot] = position
	p.N++
	return slot
}

// AppendRaw copies an already-quantized token — packed key/value bytes
// plus quantization metadata — into the next free slot and returns its
// index. This is the swap-in restore path: moving a token back from host
// memory is a byte copy, never a requantization, so payloads round-trip
// bit-identically. Panics if the page is full, not materialized, or the
// byte lengths do not match the page's precision.
func (p *Page) AppendRaw(key, val []byte, kScale, kZero, vScale, vZero, score float32, position int32) int {
	if p.Full() {
		panic("kvcache: AppendRaw to full page")
	}
	if !p.Materialized() {
		panic("kvcache: AppendRaw to counts-only page")
	}
	kb := p.Prec.KeyBytes(p.Dim)
	vb := p.Prec.ValBytes(p.Dim)
	if len(key) != kb || len(val) != vb {
		panic("kvcache: AppendRaw payload length mismatch")
	}
	slot := p.N
	copy(p.keys[slot*kb:(slot+1)*kb], key)
	copy(p.vals[slot*vb:(slot+1)*vb], val)
	p.keyMeta[2*slot], p.keyMeta[2*slot+1] = kScale, kZero
	p.valMeta[2*slot], p.valMeta[2*slot+1] = vScale, vZero
	p.scores[slot] = score
	p.pos[slot] = position
	p.N++
	return slot
}

// KeyData returns the packed key bytes and (scale, zero) of a slot.
func (p *Page) KeyData(slot int) (data []byte, scale, zero float32) {
	kb := p.Prec.KeyBytes(p.Dim)
	return p.keys[slot*kb : (slot+1)*kb], p.keyMeta[2*slot], p.keyMeta[2*slot+1]
}

// ValData returns the packed value bytes and (scale, zero) of a slot.
func (p *Page) ValData(slot int) (data []byte, scale, zero float32) {
	vb := p.Prec.ValBytes(p.Dim)
	return p.vals[slot*vb : (slot+1)*vb], p.valMeta[2*slot], p.valMeta[2*slot+1]
}

// KeySlots returns the packed key codes and (scale, zero) metadata of the
// page's N live slots — the slot-range view the page-granular batched
// kernels (quant.DequantDotSlots) consume. Nil in counts-only mode.
func (p *Page) KeySlots() (data []byte, meta []float32) {
	if p.keys == nil {
		return nil, nil
	}
	kb := p.Prec.KeyBytes(p.Dim)
	return p.keys[:p.N*kb], p.keyMeta[:2*p.N]
}

// ValSlots returns the packed value codes and (scale, zero) metadata of the
// page's N live slots. Nil in counts-only mode.
func (p *Page) ValSlots() (data []byte, meta []float32) {
	if p.vals == nil {
		return nil, nil
	}
	vb := p.Prec.ValBytes(p.Dim)
	return p.vals[:p.N*vb], p.valMeta[:2*p.N]
}

// Positions returns the original token positions of the page's N live slots.
func (p *Page) Positions() []int32 { return p.pos[:p.N] }

// Scores returns the significance scores of the page's N live slots. The
// slice aliases page storage, so writes update the page (the policy's
// running-average refresh uses this to avoid a per-token call).
func (p *Page) Scores() []float32 { return p.scores[:p.N] }

// DequantToken reconstructs the key and value of a slot into the provided
// buffers (each of length Dim).
func (p *Page) DequantToken(slot int, key, val []float32) {
	kd, ks, kz := p.KeyData(slot)
	quant.DequantizeInto(kd, p.Prec.KeyBits, p.Dim, ks, kz, key)
	vd, vs, vz := p.ValData(slot)
	quant.DequantizeInto(vd, p.Prec.ValBits, p.Dim, vs, vz, val)
}

// Score returns the significance score of a slot.
func (p *Page) Score(slot int) float32 { return p.scores[slot] }

// SetScore updates the significance score of a slot (running-average
// updates during generation).
func (p *Page) SetScore(slot int, s float32) { p.scores[slot] = s }

// Position returns the original token position of a slot.
func (p *Page) Position(slot int) int32 { return p.pos[slot] }

// RemoveSwap removes a slot by moving the page's last token into it
// (token order within a section is immaterial to attention; positions
// travel with the tokens). Returns the slot that was vacated (the old last
// slot).
func (p *Page) RemoveSwap(slot int) int {
	if slot < 0 || slot >= p.N {
		panic("kvcache: RemoveSwap slot out of range")
	}
	last := p.N - 1
	if slot != last && p.Materialized() {
		kb := p.Prec.KeyBytes(p.Dim)
		vb := p.Prec.ValBytes(p.Dim)
		copy(p.keys[slot*kb:(slot+1)*kb], p.keys[last*kb:(last+1)*kb])
		copy(p.vals[slot*vb:(slot+1)*vb], p.vals[last*vb:(last+1)*vb])
		p.keyMeta[2*slot], p.keyMeta[2*slot+1] = p.keyMeta[2*last], p.keyMeta[2*last+1]
		p.valMeta[2*slot], p.valMeta[2*slot+1] = p.valMeta[2*last], p.valMeta[2*last+1]
		p.scores[slot] = p.scores[last]
		p.pos[slot] = p.pos[last]
	}
	p.N--
	return last
}

// PayloadBytes returns the bytes of KV payload + metadata actually used by
// the page's N tokens — the quantity the attention kernel must read.
func (p *Page) PayloadBytes() int {
	return p.N * p.Prec.TokenBytes(p.Dim)
}

// PagePool owns every page of one memory manager.
type PagePool struct {
	pages       []Page
	pageBytes   int
	dim         int
	materialize bool
}

// NewPagePool creates n pages of pageBytes each for dimension dim.
func NewPagePool(n, pageBytes, dim int, materialize bool) *PagePool {
	if n <= 0 || pageBytes <= 0 || dim <= 0 {
		panic("kvcache: invalid page pool parameters")
	}
	pool := &PagePool{
		pages:       make([]Page, n),
		pageBytes:   pageBytes,
		dim:         dim,
		materialize: materialize,
	}
	for i := range pool.pages {
		pool.pages[i].ID = int32(i)
	}
	return pool
}

// Get returns the page with the given ID.
func (pp *PagePool) Get(id int32) *Page {
	return &pp.pages[id]
}

// Configure prepares page id for precision prec and returns it.
func (pp *PagePool) Configure(id int32, prec quant.Precision) *Page {
	p := &pp.pages[id]
	p.configure(pp.pageBytes, pp.dim, prec, pp.materialize)
	return p
}

// Len returns the total number of pages.
func (pp *PagePool) Len() int { return len(pp.pages) }

// PageBytes returns the fixed page size.
func (pp *PagePool) PageBytes() int { return pp.pageBytes }

// Dim returns the head dimension pages are configured for.
func (pp *PagePool) Dim() int { return pp.dim }
