package kvcache

import "fmt"

// Level selects one of the two precision tiers of a head's cache.
type Level int

const (
	// LevelHi is the high-precision tier (e.g. K8V4).
	LevelHi Level = iota
	// LevelLo is the low-precision tier (e.g. K4V2).
	LevelLo
)

func (l Level) String() string {
	if l == LevelHi {
		return "hi"
	}
	return "lo"
}

// TokenRef addresses one cached token within a head's tier.
type TokenRef struct {
	Level Level
	Page  int // index within the tier's page list (push order)
	Slot  int
}

// HeadCache is the per-(sequence, KV-head) cache view: a bidirectional page
// table plus token counts. In materialized mode it supports token-level
// append / score-update / remove / downgrade operations (the mechanics
// behind the compression policy); in counts-only mode just the counts.
type HeadCache struct {
	mgr      *Manager
	table    *BiTable
	hiTokens int
	loTokens int
}

// HiTokens returns the number of tokens in the high-precision tier.
func (hc *HeadCache) HiTokens() int { return hc.hiTokens }

// LoTokens returns the number of tokens in the low-precision tier.
func (hc *HeadCache) LoTokens() int { return hc.loTokens }

// TotalTokens returns the number of cached tokens across both tiers.
func (hc *HeadCache) TotalTokens() int { return hc.hiTokens + hc.loTokens }

// Pages returns the tier's pages in push order.
func (hc *HeadCache) Pages(level Level) []*Page {
	var n int
	if level == LevelHi {
		n = hc.table.Hi()
	} else {
		n = hc.table.Lo()
	}
	out := make([]*Page, n)
	for i := 0; i < n; i++ {
		out[i] = hc.page(level, i)
	}
	return out
}

func (hc *HeadCache) page(level Level, i int) *Page {
	if level == LevelHi {
		return hc.mgr.pool.Get(hc.table.HiID(i))
	}
	return hc.mgr.pool.Get(hc.table.LoID(i))
}

func (hc *HeadCache) pageCount(level Level) int {
	if level == LevelHi {
		return hc.table.Hi()
	}
	return hc.table.Lo()
}

// KVBytes returns the payload+metadata bytes attention must read for this
// head (token-exact, not page-rounded).
func (hc *HeadCache) KVBytes() int {
	dim := hc.mgr.cfg.Dim
	return hc.hiTokens*hc.mgr.cfg.HiPrec.TokenBytes(dim) +
		hc.loTokens*hc.mgr.cfg.LoPrec.TokenBytes(dim)
}

// appendPage returns the tier's last page, allocating and configuring a
// fresh unified page when it is missing or full.
func (hc *HeadCache) appendPage(level Level) (*Page, error) {
	n := hc.pageCount(level)
	var p *Page
	if n > 0 {
		p = hc.page(level, n-1)
	}
	if p == nil || p.Full() {
		id, err := hc.mgr.free.Alloc()
		if err != nil {
			return nil, err
		}
		prec := hc.mgr.cfg.HiPrec
		if level == LevelLo {
			prec = hc.mgr.cfg.LoPrec
		}
		p = hc.mgr.pool.Configure(id, prec)
		if level == LevelHi {
			err = hc.table.PushHi(id)
		} else {
			err = hc.table.PushLo(id)
		}
		if err != nil {
			hc.mgr.free.Recycle(id)
			return nil, err
		}
	}
	return p, nil
}

// AppendToken quantizes (key, val) into the tier, allocating and
// configuring a fresh unified page when the tier's last page is full.
// Materialized mode only.
func (hc *HeadCache) AppendToken(level Level, key, val []float32, score float32, pos int32) error {
	if !hc.mgr.cfg.Materialize {
		return fmt.Errorf("kvcache: AppendToken requires a materialized manager")
	}
	p, err := hc.appendPage(level)
	if err != nil {
		return err
	}
	p.Append(key, val, score, pos)
	if level == LevelHi {
		hc.hiTokens++
	} else {
		hc.loTokens++
	}
	return nil
}

// AppendRawToken copies an already-quantized token into the tier — the
// swap-in restore path (see Page.AppendRaw). Materialized mode only.
func (hc *HeadCache) AppendRawToken(level Level, key, val []byte, kScale, kZero, vScale, vZero, score float32, pos int32) error {
	if !hc.mgr.cfg.Materialize {
		return fmt.Errorf("kvcache: AppendRawToken requires a materialized manager")
	}
	p, err := hc.appendPage(level)
	if err != nil {
		return err
	}
	p.AppendRaw(key, val, kScale, kZero, vScale, vZero, score, pos)
	if level == LevelHi {
		hc.hiTokens++
	} else {
		hc.loTokens++
	}
	return nil
}

// PageCount returns the number of pages in the tier (push order indexing
// for PageAt). Trailing pages may be empty after removals.
func (hc *HeadCache) PageCount(level Level) int { return hc.pageCount(level) }

// PageAt returns the i-th page of the tier in push order — the slot-range
// accessor the scratch-based attention kernels iterate directly, avoiding
// the per-token callback of ForEachToken.
func (hc *HeadCache) PageAt(level Level, i int) *Page { return hc.page(level, i) }

// ForEachToken calls fn for every live token of the tier.
func (hc *HeadCache) ForEachToken(level Level, fn func(p *Page, slot int)) {
	n := hc.pageCount(level)
	for i := 0; i < n; i++ {
		p := hc.page(level, i)
		for s := 0; s < p.N; s++ {
			fn(p, s)
		}
	}
}

// MinScore returns a reference to the tier's least significant token.
// ok is false when the tier is empty.
func (hc *HeadCache) MinScore(level Level) (ref TokenRef, score float32, ok bool) {
	n := hc.pageCount(level)
	first := true
	for i := 0; i < n; i++ {
		scores := hc.page(level, i).Scores()
		for s, sc := range scores {
			if first || sc < score {
				score = sc
				ref = TokenRef{Level: level, Page: i, Slot: s}
				first = false
			}
		}
	}
	return ref, score, !first
}

// TokenAt dequantizes the referenced token into the provided buffers and
// returns its score and position.
func (hc *HeadCache) TokenAt(ref TokenRef, key, val []float32) (score float32, pos int32) {
	p := hc.page(ref.Level, ref.Page)
	p.DequantToken(ref.Slot, key, val)
	return p.Score(ref.Slot), p.Position(ref.Slot)
}

// RemoveToken deletes the referenced token, filling the hole with the
// tier's globally last token so storage stays compact. Pages are not
// recycled during generation (paper §5.3); an emptied trailing page is
// reused by the next append.
func (hc *HeadCache) RemoveToken(ref TokenRef) error {
	n := hc.pageCount(ref.Level)
	if n == 0 {
		return fmt.Errorf("kvcache: RemoveToken from empty tier")
	}
	// locate the tier's last live page
	lastIdx := -1
	for i := n - 1; i >= 0; i-- {
		if hc.page(ref.Level, i).N > 0 {
			lastIdx = i
			break
		}
	}
	if lastIdx < 0 {
		return fmt.Errorf("kvcache: RemoveToken from empty tier")
	}
	target := hc.page(ref.Level, ref.Page)
	last := hc.page(ref.Level, lastIdx)
	if ref.Page > lastIdx || ref.Slot >= target.N {
		return fmt.Errorf("kvcache: RemoveToken reference out of range")
	}
	if ref.Page == lastIdx {
		target.RemoveSwap(ref.Slot)
	} else {
		// move last page's last token into the hole, then shrink
		target.copyFrom(last, last.N-1, ref.Slot)
		last.N--
	}
	if ref.Level == LevelHi {
		hc.hiTokens--
	} else {
		hc.loTokens--
	}
	return nil
}

// Downgrade re-quantizes the referenced high-tier token into the low tier
// (the paper's smooth downgrading path, Algorithm 1 lines 8-9), then
// removes it from the high tier. The reconstruction error of the high-tier
// quantization is carried into the low tier, exactly as in the real
// system.
func (hc *HeadCache) Downgrade(ref TokenRef, keyBuf, valBuf []float32) error {
	if ref.Level != LevelHi {
		return fmt.Errorf("kvcache: Downgrade requires a high-tier token")
	}
	score, pos := hc.TokenAt(ref, keyBuf, valBuf)
	if err := hc.AppendToken(LevelLo, keyBuf, valBuf, score, pos); err != nil {
		return err
	}
	return hc.RemoveToken(ref)
}

// copyFrom copies a token slot from src into dst (same precision tier).
func (p *Page) copyFrom(src *Page, srcSlot, dstSlot int) {
	if p.Prec != src.Prec {
		panic("kvcache: cross-precision token copy")
	}
	kb := p.Prec.KeyBytes(p.Dim)
	vb := p.Prec.ValBytes(p.Dim)
	copy(p.keys[dstSlot*kb:(dstSlot+1)*kb], src.keys[srcSlot*kb:(srcSlot+1)*kb])
	copy(p.vals[dstSlot*vb:(dstSlot+1)*vb], src.vals[srcSlot*vb:(srcSlot+1)*vb])
	p.keyMeta[2*dstSlot], p.keyMeta[2*dstSlot+1] = src.keyMeta[2*srcSlot], src.keyMeta[2*srcSlot+1]
	p.valMeta[2*dstSlot], p.valMeta[2*dstSlot+1] = src.valMeta[2*srcSlot], src.valMeta[2*srcSlot+1]
	p.scores[dstSlot] = src.scores[srcSlot]
	p.pos[dstSlot] = src.pos[srcSlot]
}

// markCounts records page occupancy in counts-only mode so that
// byte-accounting works without payloads.
func (hc *HeadCache) markCounts(hiPages, loPages, hiTokens, loTokens int) {
	if hc.mgr.cfg.Materialize {
		return
	}
	fill := func(level Level, pages, tokens, cap int) {
		for i := 0; i < pages; i++ {
			p := hc.page(level, hc.pageCount(level)-pages+i)
			n := cap
			if rem := tokens - i*cap; rem < cap {
				n = rem
			}
			if n < 0 {
				n = 0
			}
			p.N = n
		}
	}
	fill(LevelHi, hiPages, hiTokens, hc.mgr.capHi)
	fill(LevelLo, loPages, loTokens, hc.mgr.capLo)
}
