package kvcache

import (
	"encoding/binary"
	"fmt"
	"io"

	"diffkv/internal/quant"
)

// Snapshot serialization: a materialized sequence's compressed KV state
// can be written out and restored into another manager — the mechanism
// behind persistent prefix caches (serve a long system prompt once,
// reload its compressed KV on every restart). The format is
// little-endian, versioned, and self-describing per head.
//
// Layout:
//
//	magic "DKVS" | version u32 | dim u32 | numHeads u32
//	per head: hiPrec (2×u32) | loPrec (2×u32) |
//	          hiTokens u32 | loTokens u32 |
//	          per token: keyBytes | valBytes | kMeta 2×f32 |
//	                     vMeta 2×f32 | score f32 | pos i32
const (
	snapshotMagic   = "DKVS"
	snapshotVersion = 1
)

// WriteSnapshot serializes a sequence's cache state. The manager must be
// materialized.
func (m *Manager) WriteSnapshot(w io.Writer, seqID int) error {
	if !m.cfg.Materialize {
		return fmt.Errorf("kvcache: snapshots require a materialized manager")
	}
	sc, ok := m.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	if _, err := w.Write([]byte(snapshotMagic)); err != nil {
		return err
	}
	hdr := []uint32{snapshotVersion, uint32(m.cfg.Dim), uint32(len(sc.Heads))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for _, hc := range sc.Heads {
		if err := writeHead(w, m, hc); err != nil {
			return err
		}
	}
	return nil
}

func writeHead(w io.Writer, m *Manager, hc *HeadCache) error {
	cfg := m.cfg
	meta := []uint32{
		uint32(cfg.HiPrec.KeyBits), uint32(cfg.HiPrec.ValBits),
		uint32(cfg.LoPrec.KeyBits), uint32(cfg.LoPrec.ValBits),
		uint32(hc.hiTokens), uint32(hc.loTokens),
	}
	if err := binary.Write(w, binary.LittleEndian, meta); err != nil {
		return err
	}
	var werr error
	dump := func(level Level) {
		hc.ForEachToken(level, func(p *Page, slot int) {
			if werr != nil {
				return
			}
			kd, ks, kz := p.KeyData(slot)
			vd, vs, vz := p.ValData(slot)
			if _, err := w.Write(kd); err != nil {
				werr = err
				return
			}
			if _, err := w.Write(vd); err != nil {
				werr = err
				return
			}
			tail := []float32{ks, kz, vs, vz, p.Score(slot)}
			if err := binary.Write(w, binary.LittleEndian, tail); err != nil {
				werr = err
				return
			}
			if err := binary.Write(w, binary.LittleEndian, p.Position(slot)); err != nil {
				werr = err
			}
		})
	}
	dump(LevelHi)
	dump(LevelLo)
	return werr
}

// ReadSnapshot restores a serialized sequence into this manager under
// seqID (which must not be registered yet). The manager's precision
// configuration must match the snapshot's.
func (m *Manager) ReadSnapshot(r io.Reader, seqID int) error {
	if !m.cfg.Materialize {
		return fmt.Errorf("kvcache: snapshots require a materialized manager")
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("kvcache: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return fmt.Errorf("kvcache: bad snapshot magic %q", magic)
	}
	var hdr [3]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return err
	}
	if hdr[0] != snapshotVersion {
		return fmt.Errorf("kvcache: unsupported snapshot version %d", hdr[0])
	}
	if int(hdr[1]) != m.cfg.Dim {
		return fmt.Errorf("kvcache: snapshot dim %d, manager dim %d", hdr[1], m.cfg.Dim)
	}
	numHeads := int(hdr[2])
	sc, err := m.AddSequence(seqID, numHeads)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		_ = m.ReleaseSequence(seqID)
		return err
	}
	dim := m.cfg.Dim
	keyBuf := make([]float32, dim)
	valBuf := make([]float32, dim)
	for h := 0; h < numHeads; h++ {
		var meta [6]uint32
		if err := binary.Read(r, binary.LittleEndian, &meta); err != nil {
			return cleanup(err)
		}
		hiPrec := quant.Precision{KeyBits: int(meta[0]), ValBits: int(meta[1])}
		loPrec := quant.Precision{KeyBits: int(meta[2]), ValBits: int(meta[3])}
		if hiPrec != m.cfg.HiPrec || loPrec != m.cfg.LoPrec {
			return cleanup(fmt.Errorf("kvcache: snapshot precisions %v/%v do not match manager %v/%v",
				hiPrec, loPrec, m.cfg.HiPrec, m.cfg.LoPrec))
		}
		hc := sc.Heads[h]
		load := func(level Level, prec quant.Precision, count int) error {
			kb := prec.KeyBytes(dim)
			vb := prec.ValBytes(dim)
			kd := make([]byte, kb)
			vd := make([]byte, vb)
			for tok := 0; tok < count; tok++ {
				if _, err := io.ReadFull(r, kd); err != nil {
					return err
				}
				if _, err := io.ReadFull(r, vd); err != nil {
					return err
				}
				var tail [5]float32
				if err := binary.Read(r, binary.LittleEndian, &tail); err != nil {
					return err
				}
				var pos int32
				if err := binary.Read(r, binary.LittleEndian, &pos); err != nil {
					return err
				}
				// reconstruct, then requantize into the manager's pages:
				// byte-identical because quantization is deterministic and
				// the grid points round-trip exactly
				quant.DequantizeInto(kd, prec.KeyBits, dim, tail[0], tail[1], keyBuf)
				quant.DequantizeInto(vd, prec.ValBits, dim, tail[2], tail[3], valBuf)
				if err := hc.AppendToken(level, keyBuf, valBuf, tail[4], pos); err != nil {
					return err
				}
			}
			return nil
		}
		if err := load(LevelHi, m.cfg.HiPrec, int(meta[4])); err != nil {
			return cleanup(err)
		}
		if err := load(LevelLo, m.cfg.LoPrec, int(meta[5])); err != nil {
			return cleanup(err)
		}
	}
	return nil
}
