package kvcache

import "fmt"

// BiTable is the bidirectional page table of one (request, KV-head) pair
// (paper §5.2): a single fixed-length array in which high-precision page
// IDs grow from the left and low-precision page IDs grow from the right.
// Its length is MaxSeqLen / tokensPerHighPrecisionPage, which can never
// overflow because low-precision pages always hold more tokens than
// high-precision ones.
type BiTable struct {
	slots []int32
	hi    int // number of high-precision pages (left side)
	lo    int // number of low-precision pages (right side)
}

// NewBiTable creates a table with n slots.
func NewBiTable(n int) *BiTable {
	if n <= 0 {
		panic("kvcache: bidirectional table needs at least one slot")
	}
	t := &BiTable{slots: make([]int32, n)}
	for i := range t.slots {
		t.slots[i] = -1
	}
	return t
}

// Len returns the table capacity in slots.
func (t *BiTable) Len() int { return len(t.slots) }

// Hi returns the number of high-precision pages.
func (t *BiTable) Hi() int { return t.hi }

// Lo returns the number of low-precision pages.
func (t *BiTable) Lo() int { return t.lo }

// PushHi appends a high-precision page ID on the left side.
func (t *BiTable) PushHi(id int32) error {
	if t.hi+t.lo >= len(t.slots) {
		return fmt.Errorf("kvcache: bidirectional table overflow (%d slots)", len(t.slots))
	}
	t.slots[t.hi] = id
	t.hi++
	return nil
}

// PushLo appends a low-precision page ID on the right side.
func (t *BiTable) PushLo(id int32) error {
	if t.hi+t.lo >= len(t.slots) {
		return fmt.Errorf("kvcache: bidirectional table overflow (%d slots)", len(t.slots))
	}
	t.slots[len(t.slots)-1-t.lo] = id
	t.lo++
	return nil
}

// PopHi removes and returns the most recently pushed high-precision page.
func (t *BiTable) PopHi() (int32, error) {
	if t.hi == 0 {
		return -1, fmt.Errorf("kvcache: PopHi on empty high side")
	}
	t.hi--
	id := t.slots[t.hi]
	t.slots[t.hi] = -1
	return id, nil
}

// PopLo removes and returns the most recently pushed low-precision page.
func (t *BiTable) PopLo() (int32, error) {
	if t.lo == 0 {
		return -1, fmt.Errorf("kvcache: PopLo on empty low side")
	}
	t.lo--
	id := t.slots[len(t.slots)-1-t.lo]
	t.slots[len(t.slots)-1-t.lo] = -1
	return id, nil
}

// HiID returns the i-th high-precision page ID in push order.
func (t *BiTable) HiID(i int) int32 { return t.slots[i] }

// LoID returns the i-th low-precision page ID in push order.
func (t *BiTable) LoID(i int) int32 { return t.slots[len(t.slots)-1-i] }

// HiIDs returns the high-precision page IDs in push order (shared backing
// array; do not mutate).
func (t *BiTable) HiIDs() []int32 { return t.slots[:t.hi] }

// LoIDs returns the low-precision page IDs in push order (copied, since the
// right side is stored reversed).
func (t *BiTable) LoIDs() []int32 {
	out := make([]int32, t.lo)
	for i := 0; i < t.lo; i++ {
		out[i] = t.LoID(i)
	}
	return out
}

// DrainAll removes every page ID from both sides and returns them —
// used when a sequence finishes and its pages are recycled.
func (t *BiTable) DrainAll() []int32 {
	out := make([]int32, 0, t.hi+t.lo)
	out = append(out, t.HiIDs()...)
	out = append(out, t.LoIDs()...)
	for i := range t.slots {
		t.slots[i] = -1
	}
	t.hi, t.lo = 0, 0
	return out
}

// MetadataBytes returns the memory footprint of the table (4 bytes per
// slot) — the quantity behind the paper's "32 MB for batch 128 on
// Llama3-8B" claim.
func (t *BiTable) MetadataBytes() int { return 4 * len(t.slots) }

// MultiTable composes bidirectional tables to support more than two
// precision levels (paper §5.3): levels 2k and 2k+1 share the k-th
// bidirectional table (even levels on the high side, odd levels on the low
// side). Three levels therefore use one bidirectional plus one
// unidirectional table (a BiTable using only its high side), four levels
// use two bidirectional tables, and so on.
type MultiTable struct {
	tables []*BiTable
	levels int
}

// NewMultiTable creates a table stack for the given number of precision
// levels, each underlying table having n slots.
func NewMultiTable(levels, n int) *MultiTable {
	if levels < 1 {
		panic("kvcache: MultiTable needs at least one level")
	}
	nt := (levels + 1) / 2
	mt := &MultiTable{tables: make([]*BiTable, nt), levels: levels}
	for i := range mt.tables {
		mt.tables[i] = NewBiTable(n)
	}
	return mt
}

// Levels returns the number of precision levels.
func (m *MultiTable) Levels() int { return m.levels }

func (m *MultiTable) side(level int) (*BiTable, bool) {
	if level < 0 || level >= m.levels {
		panic(fmt.Sprintf("kvcache: level %d out of range [0,%d)", level, m.levels))
	}
	return m.tables[level/2], level%2 == 0
}

// Push appends a page ID at the given precision level.
func (m *MultiTable) Push(level int, id int32) error {
	t, hiSide := m.side(level)
	if hiSide {
		return t.PushHi(id)
	}
	return t.PushLo(id)
}

// Pop removes the most recently pushed page at the given level.
func (m *MultiTable) Pop(level int) (int32, error) {
	t, hiSide := m.side(level)
	if hiSide {
		return t.PopHi()
	}
	return t.PopLo()
}

// Count returns the number of pages at the given level.
func (m *MultiTable) Count(level int) int {
	t, hiSide := m.side(level)
	if hiSide {
		return t.Hi()
	}
	return t.Lo()
}

// IDs returns the page IDs of a level in push order.
func (m *MultiTable) IDs(level int) []int32 {
	t, hiSide := m.side(level)
	if hiSide {
		return append([]int32(nil), t.HiIDs()...)
	}
	return t.LoIDs()
}

// DrainAll empties every level and returns all page IDs.
func (m *MultiTable) DrainAll() []int32 {
	var out []int32
	for _, t := range m.tables {
		out = append(out, t.DrainAll()...)
	}
	return out
}

// MetadataBytes returns the total footprint of the stack.
func (m *MultiTable) MetadataBytes() int {
	var b int
	for _, t := range m.tables {
		b += t.MetadataBytes()
	}
	return b
}
