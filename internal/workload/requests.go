package workload

import (
	"diffkv/internal/mathx"
)

// Request is one serving request: when it arrives and how many tokens it
// carries.
type Request struct {
	ID        int
	ArrivalUs float64 // arrival time in simulated microseconds
	PromptLen int
	GenLen    int
	// PrefixGroup identifies a shared-prompt-prefix group (0 = unique
	// prompt): requests in the same group share their first PrefixLen
	// prompt tokens, e.g. a common system prompt or few-shot template.
	PrefixGroup int
	// PrefixLen is the number of leading prompt tokens shared with the
	// group (<= PromptLen; 0 when PrefixGroup is 0).
	PrefixLen int
}

// BlockHashes digests the request's prompt content into chained per-block
// hashes, llm-d prefixhashtable style: block b's hash folds in block b-1's,
// so two prompts produce identical hash prefixes exactly as long as their
// token prefixes agree. Content is identified by PrefixGroup for shared
// blocks and by request ID for the unique tail. blockSize <= 0 selects 64.
func (r Request) BlockHashes(blockSize int) []uint64 {
	if blockSize <= 0 {
		blockSize = 64
	}
	n := (r.PromptLen + blockSize - 1) / blockSize
	out := make([]uint64, 0, n)
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for b := 0; b < n; b++ {
		var ident uint64
		if r.PrefixGroup != 0 && (b+1)*blockSize <= r.PrefixLen {
			ident = uint64(r.PrefixGroup)<<1 | 1
		} else {
			ident = uint64(r.ID) << 1
		}
		h = fnvFold(fnvFold(h, ident), uint64(b))
		out = append(out, h)
	}
	return out
}

// fnvFold mixes one 64-bit word into a running FNV-1a style hash.
func fnvFold(h, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= prime
	}
	return h
}

// RequestGen samples serving requests from a benchmark profile: prompt and
// generation lengths are log-normal around the profile's nominal lengths
// (generation capped at MaxGenLen, the serving engine's generation limit).
type RequestGen struct {
	Bench     *Benchmark
	MaxGenLen int
	rng       *mathx.RNG
	nextID    int
}

// NewRequestGen builds a generator with the given cap and seed.
func NewRequestGen(b *Benchmark, maxGenLen int, seed uint64) *RequestGen {
	if maxGenLen <= 0 {
		maxGenLen = 4096
	}
	return &RequestGen{Bench: b, MaxGenLen: maxGenLen, rng: mathx.NewRNG(seed)}
}

// sampleLen draws a log-normal length around mean with ~35% dispersion.
func (g *RequestGen) sampleLen(mean int) int {
	v := int(float64(mean) * g.rng.LogNorm(0, 0.35))
	if v < 16 {
		v = 16
	}
	return v
}

// Next samples one request arriving at the given time.
func (g *RequestGen) Next(arrivalUs float64) Request {
	g.nextID++
	gen := g.sampleLen(g.Bench.GenLen)
	if gen > g.MaxGenLen {
		gen = g.MaxGenLen
	}
	return Request{
		ID:        g.nextID,
		ArrivalUs: arrivalUs,
		PromptLen: g.sampleLen(g.Bench.PromptLen),
		GenLen:    gen,
	}
}

// Batch samples n requests all arriving at time 0 (closed-loop throughput
// experiments, Fig. 17).
func (g *RequestGen) Batch(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next(0)
	}
	return out
}

// CoTBatch samples n requests whose generations run near the generation
// limit — the paper's Fig. 17 setting ("MATH elicits chain-of-thought
// reasoning and typically leads to long generations reaching the
// specified limit").
func (g *RequestGen) CoTBatch(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		g.nextID++
		out[i] = Request{
			ID:        g.nextID,
			PromptLen: g.sampleLen(g.Bench.PromptLen),
			GenLen:    int(float64(g.MaxGenLen) * (0.7 + 0.3*g.rng.Float64())),
		}
	}
	return out
}

// Poisson samples requests with exponential inter-arrival times at
// ratePerSec for a horizon of seconds (open-loop dynamic workloads,
// Fig. 16).
func (g *RequestGen) Poisson(ratePerSec float64, seconds float64) []Request {
	var out []Request
	t := 0.0
	horizon := seconds * 1e6
	for {
		t += g.rng.Exp(ratePerSec) * 1e6
		if t > horizon {
			return out
		}
		out = append(out, g.Next(t))
	}
}

// PrefixConfig parameterizes shared-prefix sampling: production traffic
// concentrates on a handful of system prompts / few-shot templates, which
// a prefix-affinity router can exploit.
type PrefixConfig struct {
	// Groups is the number of distinct shared prefixes in the workload.
	Groups int `json:"groups"`
	// PrefixLen is the token length of each shared prefix.
	PrefixLen int `json:"prefix_len"`
	// SharedFrac is the probability a request belongs to some group
	// (the rest carry fully unique prompts).
	SharedFrac float64 `json:"shared_frac"`
}

// NextShared samples one request; with probability SharedFrac it joins a
// uniformly drawn prefix group, its prompt beginning with the group's
// PrefixLen-token shared prefix followed by a unique tail.
func (g *RequestGen) NextShared(arrivalUs float64, pc PrefixConfig) Request {
	r := g.Next(arrivalUs)
	if pc.Groups > 0 && pc.PrefixLen > 0 && g.rng.Float64() < pc.SharedFrac {
		r.PrefixGroup = 1 + g.rng.Intn(pc.Groups)
		r.PrefixLen = pc.PrefixLen
		if r.PromptLen < pc.PrefixLen+32 {
			// always leave a unique tail after the shared prefix
			r.PromptLen = pc.PrefixLen + 32
		}
	}
	return r
}

// PoissonShared samples Poisson arrivals like Poisson, drawing each
// request's prefix-group membership from pc.
func (g *RequestGen) PoissonShared(ratePerSec, seconds float64, pc PrefixConfig) []Request {
	var out []Request
	t := 0.0
	horizon := seconds * 1e6
	for {
		t += g.rng.Exp(ratePerSec) * 1e6
		if t > horizon {
			return out
		}
		out = append(out, g.NextShared(t, pc))
	}
}
