package workload

import (
	"diffkv/internal/mathx"
)

// Request is one serving request: when it arrives and how many tokens it
// carries.
type Request struct {
	ID        int
	ArrivalUs float64 // arrival time in simulated microseconds
	PromptLen int
	GenLen    int
}

// RequestGen samples serving requests from a benchmark profile: prompt and
// generation lengths are log-normal around the profile's nominal lengths
// (generation capped at MaxGenLen, the serving engine's generation limit).
type RequestGen struct {
	Bench     *Benchmark
	MaxGenLen int
	rng       *mathx.RNG
	nextID    int
}

// NewRequestGen builds a generator with the given cap and seed.
func NewRequestGen(b *Benchmark, maxGenLen int, seed uint64) *RequestGen {
	if maxGenLen <= 0 {
		maxGenLen = 4096
	}
	return &RequestGen{Bench: b, MaxGenLen: maxGenLen, rng: mathx.NewRNG(seed)}
}

// sampleLen draws a log-normal length around mean with ~35% dispersion.
func (g *RequestGen) sampleLen(mean int) int {
	v := int(float64(mean) * g.rng.LogNorm(0, 0.35))
	if v < 16 {
		v = 16
	}
	return v
}

// Next samples one request arriving at the given time.
func (g *RequestGen) Next(arrivalUs float64) Request {
	g.nextID++
	gen := g.sampleLen(g.Bench.GenLen)
	if gen > g.MaxGenLen {
		gen = g.MaxGenLen
	}
	return Request{
		ID:        g.nextID,
		ArrivalUs: arrivalUs,
		PromptLen: g.sampleLen(g.Bench.PromptLen),
		GenLen:    gen,
	}
}

// Batch samples n requests all arriving at time 0 (closed-loop throughput
// experiments, Fig. 17).
func (g *RequestGen) Batch(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next(0)
	}
	return out
}

// CoTBatch samples n requests whose generations run near the generation
// limit — the paper's Fig. 17 setting ("MATH elicits chain-of-thought
// reasoning and typically leads to long generations reaching the
// specified limit").
func (g *RequestGen) CoTBatch(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		g.nextID++
		out[i] = Request{
			ID:        g.nextID,
			PromptLen: g.sampleLen(g.Bench.PromptLen),
			GenLen:    int(float64(g.MaxGenLen) * (0.7 + 0.3*g.rng.Float64())),
		}
	}
	return out
}

// Poisson samples requests with exponential inter-arrival times at
// ratePerSec for a horizon of seconds (open-loop dynamic workloads,
// Fig. 16).
func (g *RequestGen) Poisson(ratePerSec float64, seconds float64) []Request {
	var out []Request
	t := 0.0
	horizon := seconds * 1e6
	for {
		t += g.rng.Exp(ratePerSec) * 1e6
		if t > horizon {
			return out
		}
		out = append(out, g.Next(t))
	}
}
