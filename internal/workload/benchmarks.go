// Package workload models the paper's evaluation workloads: one profile
// per benchmark (prompt/generation lengths, information density, FP16
// reference accuracies from the paper) plus the accuracy model that maps
// measured attention-output error to task accuracy.
//
// Substitution note (DESIGN.md §2): we cannot run the real models on the
// real datasets, so task accuracy is modeled as
//
//	accuracy = FP16_accuracy × retention(effective_error)
//
// where effective_error is the *measured* attention-output error of the
// compression method on this workload's sparsity profile, amplified by a
// chain-of-thought accumulation factor for long generations (errors
// compound autoregressively — the paper's §7.2 explanation of why thinking
// models are the hardest case), and retention is a calibrated logistic
// curve. The orderings and crossovers between methods therefore come from
// measured errors, not from the curve.
package workload

import (
	"fmt"
	"math"
	"sort"
)

// Benchmark describes one evaluation workload.
type Benchmark struct {
	Name string
	// PromptLen / GenLen are typical token counts.
	PromptLen, GenLen int
	// DensityScale feeds synth.Profile: >1 for diffuse many-shot prompts
	// (more prunable), <1 for dense 0-shot reasoning.
	DensityScale float64
	// E0 is the effective-error level at which half the accuracy is lost;
	// P is the steepness of the retention curve.
	E0, P float64
	// FP16 maps model name → reference accuracy (from the paper's
	// Tables 1-3 and LongBench Table 2).
	FP16 map[string]float64
	// LongContext marks LongBench-style workloads (long prompt, short
	// generation — compression errors matter less, §7.2).
	LongContext bool
}

// EvalCapTokens bounds the sequence length actually simulated for fidelity
// measurement; longer nominal generations still contribute through the CoT
// accumulation factor.
const EvalCapTokens = 3072

// EvalLen returns the simulated (prompt, gen) lengths, scaled down
// proportionally if the nominal lengths exceed EvalCapTokens.
func (b *Benchmark) EvalLen() (promptLen, genLen int) {
	p, g := b.PromptLen, b.GenLen
	total := p + g
	if total > EvalCapTokens {
		p = p * EvalCapTokens / total
		if p < 64 {
			p = 64
		}
		g = EvalCapTokens - p
	}
	if g < 64 {
		g = 64
	}
	return p, g
}

// CoTFactor returns the error-accumulation multiplier for a generation of
// genLen tokens: autoregressive generations compound compression error,
// so long chains of thought amplify it (≈ +25% per doubling past 512
// tokens). Long-context workloads are exempt: their text is mostly ground
// truth in the prompt.
func (b *Benchmark) CoTFactor() float64 {
	if b.LongContext || b.GenLen <= 512 {
		return 1
	}
	return 1 + 0.25*math.Log2(float64(b.GenLen)/512)
}

// Retention maps a measured attention-output error to the retained
// fraction of FP16 accuracy.
func (b *Benchmark) Retention(outputErr float64) float64 {
	if outputErr <= 0 {
		return 1
	}
	eff := outputErr * b.CoTFactor()
	return 1 / (1 + math.Pow(eff/b.E0, b.P))
}

// Accuracy returns the modeled task accuracy of a method with the given
// measured output error on the named model. Unknown models fall back to
// the mean of the configured references.
func (b *Benchmark) Accuracy(model string, outputErr float64) float64 {
	base, ok := b.FP16[model]
	if !ok {
		// Sum in sorted-key order: float addition is not associative, so a
		// raw map walk would make the fallback accuracy differ in the last
		// bits from run to run.
		names := make([]string, 0, len(b.FP16))
		for name := range b.FP16 {
			names = append(names, name)
		}
		sort.Strings(names)
		var sum float64
		for _, name := range names {
			sum += b.FP16[name]
		}
		if len(names) > 0 {
			base = sum / float64(len(names))
		}
	}
	return base * b.Retention(outputErr)
}

// The benchmark suite. FP16 numbers are the paper's reference accuracies.
var (
	GSM8K = &Benchmark{
		Name: "GSM8K", PromptLen: 512, GenLen: 512, DensityScale: 1.4,
		E0: 0.95, P: 6,
		FP16: map[string]float64{
			"Llama3-8B": 76.3, "Qwen2.5-7B": 83.5, "Qwen2.5-32B": 90.4, "Llama3-70B": 90.5,
		},
	}
	MATH = &Benchmark{
		Name: "MATH", PromptLen: 384, GenLen: 768, DensityScale: 1.0,
		E0: 0.85, P: 6,
		FP16: map[string]float64{
			"Llama3-8B": 28.1, "Qwen2.5-7B": 58.0, "Qwen2.5-32B": 63.2, "Llama3-70B": 48.7,
			"QwQ-32B": 90.6, "R1-Distill-Qwen-14B": 94.2, "R1-Distill-Llama-8B": 88.8,
		},
	}
	MMLU = &Benchmark{
		Name: "MMLU", PromptLen: 1024, GenLen: 128, DensityScale: 2.2,
		E0: 1.0, P: 6,
		FP16: map[string]float64{
			"Llama3-8B": 66.5, "Qwen2.5-7B": 75.1, "Qwen2.5-32B": 83.8, "Llama3-70B": 81.0,
		},
	}
	MMLUPro = &Benchmark{
		Name: "MMLU-Pro", PromptLen: 1024, GenLen: 256, DensityScale: 1.8,
		E0: 0.9, P: 6,
		FP16: map[string]float64{
			"Llama3-8B": 41.5, "Qwen2.5-7B": 55.4, "Qwen2.5-32B": 67.8, "Llama3-70B": 60.1,
		},
	}
	HumanEvalPlus = &Benchmark{
		Name: "HumanEval+", PromptLen: 192, GenLen: 384, DensityScale: 0.65,
		E0: 0.7, P: 6,
		FP16: map[string]float64{
			"Llama3-8B": 50.0, "Qwen2.5-7B": 57.5, "Qwen2.5-32B": 49.4, "Llama3-70B": 71.3,
		},
	}
	MBPPPlus = &Benchmark{
		Name: "MBPP+", PromptLen: 256, GenLen: 384, DensityScale: 0.8,
		E0: 0.8, P: 6,
		FP16: map[string]float64{
			"Llama3-8B": 59.3, "Qwen2.5-7B": 64.3, "Qwen2.5-32B": 71.1, "Llama3-70B": 68.6,
		},
	}
	GPQA = &Benchmark{
		Name: "GPQA", PromptLen: 512, GenLen: 8192, DensityScale: 0.7,
		E0: 0.75, P: 6,
		FP16: map[string]float64{
			"QwQ-32B": 62.1, "R1-Distill-Qwen-14B": 55.7, "R1-Distill-Llama-8B": 47.4,
		},
	}
	AIME24 = &Benchmark{
		Name: "AIME24", PromptLen: 256, GenLen: 12288, DensityScale: 0.8,
		E0: 0.8, P: 6,
		FP16: map[string]float64{
			"QwQ-32B": 75.5, "R1-Distill-Qwen-14B": 67.0, "R1-Distill-Llama-8B": 51.0,
		},
	}
)

// MATHTrain is the calibration split (paper §7.2 "Parameter Calibration"):
// same distribution as MATH, distinct seed space, never used for
// evaluation.
var MATHTrain = &Benchmark{
	Name: "MATH-train", PromptLen: 384, GenLen: 768, DensityScale: 1.0,
	E0: 0.85, P: 6,
	FP16: MATH.FP16,
}

// LongBench subset (Table 2): one benchmark per LongBench category.
var (
	LBQasper = &Benchmark{
		Name: "Qasper", PromptLen: 3584, GenLen: 128, DensityScale: 1.6,
		E0: 0.85, P: 6, LongContext: true,
		FP16: map[string]float64{"Llama3.1-8B": 40.9, "Qwen2.5-7B": 26.5},
	}
	LBHotpotQA = &Benchmark{
		Name: "HotpotQA", PromptLen: 3584, GenLen: 128, DensityScale: 1.8,
		E0: 0.9, P: 6, LongContext: true,
		FP16: map[string]float64{"Llama3.1-8B": 61.3, "Qwen2.5-7B": 27.8},
	}
	LBGovReport = &Benchmark{
		Name: "GovReport", PromptLen: 3840, GenLen: 256, DensityScale: 2.0,
		E0: 0.9, P: 6, LongContext: true,
		FP16: map[string]float64{"Llama3.1-8B": 34.0, "Qwen2.5-7B": 33.4},
	}
	LBTREC = &Benchmark{
		Name: "TREC", PromptLen: 2560, GenLen: 64, DensityScale: 2.4,
		E0: 1.0, P: 6, LongContext: true,
		FP16: map[string]float64{"Llama3.1-8B": 73.0, "Qwen2.5-7B": 71.0},
	}
	LBPCount = &Benchmark{
		Name: "PCount", PromptLen: 3584, GenLen: 64, DensityScale: 1.2,
		E0: 0.7, P: 6, LongContext: true,
		FP16: map[string]float64{"Llama3.1-8B": 6.9, "Qwen2.5-7B": 5.7},
	}
	LBLcc = &Benchmark{
		Name: "Lcc", PromptLen: 2048, GenLen: 128, DensityScale: 1.0,
		E0: 0.8, P: 6, LongContext: true,
		FP16: map[string]float64{"Llama3.1-8B": 62.2, "Qwen2.5-7B": 61.9},
	}
)

// Suites.
var (
	// CoreBenchmarks is the Table 1 suite.
	CoreBenchmarks = []*Benchmark{GSM8K, MATH, MMLU, MMLUPro, HumanEvalPlus, MBPPPlus}
	// ThinkingBenchmarks is the Table 3 suite.
	ThinkingBenchmarks = []*Benchmark{MATH, GPQA, AIME24}
	// LongBench is the Table 2 suite.
	LongBench = []*Benchmark{LBQasper, LBHotpotQA, LBGovReport, LBTREC, LBPCount, LBLcc}
)

// ByName finds a benchmark across all suites.
func ByName(name string) (*Benchmark, error) {
	all := append(append(append([]*Benchmark{}, CoreBenchmarks...), ThinkingBenchmarks...), LongBench...)
	all = append(all, MATHTrain)
	for _, b := range all {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}
