package workload

import (
	"math"
	"testing"
)

func TestRetentionMonotone(t *testing.T) {
	prev := 2.0
	for _, e := range []float64{0, 0.1, 0.3, 0.6, 1.0, 2.0, 5.0} {
		r := GSM8K.Retention(e)
		if r > prev {
			t.Fatalf("retention not monotone at %v", e)
		}
		if r < 0 || r > 1 {
			t.Fatalf("retention out of range: %v", r)
		}
		prev = r
	}
}

func TestRetentionEndpoints(t *testing.T) {
	if GSM8K.Retention(0) != 1 {
		t.Fatal("zero error must retain everything")
	}
	if GSM8K.Retention(100) > 0.001 {
		t.Fatal("huge error must retain nothing")
	}
	// near-lossless regime: K8V4-level error keeps ≥97%
	if GSM8K.Retention(0.15) < 0.97 {
		t.Fatalf("K8V4-level error retention = %v", GSM8K.Retention(0.15))
	}
}

func TestCoTFactorThinkingAmplifies(t *testing.T) {
	if GSM8K.CoTFactor() != 1 {
		t.Fatalf("short-gen CoT factor = %v", GSM8K.CoTFactor())
	}
	if AIME24.CoTFactor() <= 1.5 {
		t.Fatalf("AIME24 CoT factor = %v, want > 1.5", AIME24.CoTFactor())
	}
	if GPQA.CoTFactor() <= GSM8K.CoTFactor() {
		t.Fatal("long-CoT workloads must amplify error more")
	}
}

func TestLongContextExemptFromCoT(t *testing.T) {
	if LBGovReport.CoTFactor() != 1 {
		t.Fatal("long-context workloads are prompt-dominated: no CoT amplification")
	}
}

func TestAccuracyUsesModelReference(t *testing.T) {
	a := GSM8K.Accuracy("Llama3-8B", 0)
	if a != 76.3 {
		t.Fatalf("FP16 accuracy = %v", a)
	}
	// unknown model: falls back to mean of references
	mean := GSM8K.Accuracy("not-a-model", 0)
	if mean < 76 || mean > 91 {
		t.Fatalf("fallback accuracy = %v", mean)
	}
}

func TestThinkingBenchmarksPunishModerateError(t *testing.T) {
	// The same moderate error that GSM8K mostly tolerates must crater on
	// AIME24 (CoT accumulation) — the Table 3 phenomenon.
	err := 0.5
	gsm := GSM8K.Retention(err)
	aime := AIME24.Retention(err)
	if aime >= gsm {
		t.Fatalf("AIME24 retention (%v) should be below GSM8K (%v)", aime, gsm)
	}
	if aime > 0.35 {
		t.Fatalf("moderate error on AIME24 retains too much: %v", aime)
	}
}

func TestEvalLenCaps(t *testing.T) {
	p, g := AIME24.EvalLen()
	if p+g > EvalCapTokens {
		t.Fatalf("eval length %d exceeds cap", p+g)
	}
	if p < 64 || g < 64 {
		t.Fatalf("eval lengths too small: %d, %d", p, g)
	}
	// short benchmarks are unchanged
	p, g = HumanEvalPlus.EvalLen()
	if p != 192 || g != 384 {
		t.Fatalf("short benchmark rescaled: %d, %d", p, g)
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("GSM8K")
	if err != nil || b != GSM8K {
		t.Fatal("lookup failed")
	}
	if _, err := ByName("MATH-train"); err != nil {
		t.Fatal("calibration split must be addressable")
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSuitesComplete(t *testing.T) {
	if len(CoreBenchmarks) != 6 {
		t.Fatalf("Table 1 suite has %d benchmarks", len(CoreBenchmarks))
	}
	if len(ThinkingBenchmarks) != 3 {
		t.Fatalf("Table 3 suite has %d benchmarks", len(ThinkingBenchmarks))
	}
	if len(LongBench) != 6 {
		t.Fatalf("Table 2 suite has %d benchmarks", len(LongBench))
	}
	for _, b := range ThinkingBenchmarks {
		if _, ok := b.FP16["QwQ-32B"]; !ok {
			t.Fatalf("%s missing QwQ-32B reference", b.Name)
		}
	}
}

func TestRequestGenLengths(t *testing.T) {
	g := NewRequestGen(MATH, 4096, 1)
	var pSum, gSum float64
	n := 2000
	for i := 0; i < n; i++ {
		r := g.Next(0)
		if r.PromptLen < 16 || r.GenLen < 16 {
			t.Fatalf("degenerate request %+v", r)
		}
		if r.GenLen > 4096 {
			t.Fatalf("generation cap violated: %d", r.GenLen)
		}
		pSum += float64(r.PromptLen)
		gSum += float64(r.GenLen)
	}
	pMean := pSum / float64(n)
	if pMean < 300 || pMean > 500 {
		t.Fatalf("prompt mean = %v, profile says 384", pMean)
	}
}

func TestRequestGenIDsUnique(t *testing.T) {
	g := NewRequestGen(GSM8K, 4096, 2)
	seen := map[int]bool{}
	for _, r := range g.Batch(100) {
		if seen[r.ID] {
			t.Fatal("duplicate request ID")
		}
		seen[r.ID] = true
	}
}

func TestPoissonArrivals(t *testing.T) {
	g := NewRequestGen(GSM8K, 4096, 3)
	reqs := g.Poisson(2.0, 100) // 2 req/s for 100s -> ~200 requests
	if len(reqs) < 150 || len(reqs) > 260 {
		t.Fatalf("poisson produced %d requests, want ~200", len(reqs))
	}
	prev := -1.0
	for _, r := range reqs {
		if r.ArrivalUs <= prev {
			t.Fatal("arrivals not strictly increasing")
		}
		if r.ArrivalUs > 100e6 {
			t.Fatal("arrival beyond horizon")
		}
		prev = r.ArrivalUs
	}
}

func TestPoissonRateScaling(t *testing.T) {
	slow := NewRequestGen(GSM8K, 4096, 4).Poisson(0.5, 200)
	fast := NewRequestGen(GSM8K, 4096, 4).Poisson(5, 200)
	if len(fast) < 5*len(slow) {
		t.Fatalf("rate scaling broken: %d vs %d", len(fast), len(slow))
	}
}

func TestRetentionCurveSeparatesRegimes(t *testing.T) {
	// sanity of the calibrated constants: the three regimes the paper's
	// tables show must be separated by the curve on a standard benchmark
	nearLossless := MATH.Retention(0.15) // DiffKV / K8V4 regime
	degraded := MATH.Retention(0.55)     // INT4-ish regime
	broken := MATH.Retention(2.5)        // K2V4 / K4V1 regime
	if nearLossless < 0.97 {
		t.Fatalf("near-lossless regime = %v", nearLossless)
	}
	if degraded < 0.5 || degraded > 0.97 {
		t.Fatalf("degraded regime = %v", degraded)
	}
	if broken > 0.05 {
		t.Fatalf("broken regime = %v", broken)
	}
	if math.Abs(nearLossless-degraded) < 0.02 {
		t.Fatal("regimes not separated")
	}
}

func TestCoTBatchNearLimit(t *testing.T) {
	g := NewRequestGen(MATH, 4096, 5)
	for _, r := range g.CoTBatch(50) {
		if r.GenLen < 2867 || r.GenLen > 4096 {
			t.Fatalf("CoT generation length %d outside [0.7, 1.0] of the limit", r.GenLen)
		}
		if r.PromptLen < 16 {
			t.Fatalf("degenerate prompt %d", r.PromptLen)
		}
	}
}

func TestAccuracyNeverNegative(t *testing.T) {
	for _, b := range append(append([]*Benchmark{}, CoreBenchmarks...), ThinkingBenchmarks...) {
		for _, e := range []float64{0, 0.5, 2, 100} {
			if a := b.Accuracy("Llama3-8B", e); a < 0 {
				t.Fatalf("%s negative accuracy at err %v", b.Name, e)
			}
		}
	}
}

func TestNextSharedPrefixGroups(t *testing.T) {
	g := NewRequestGen(MMLU, 256, 9)
	pc := PrefixConfig{Groups: 8, PrefixLen: 768, SharedFrac: 0.75}
	shared, unique := 0, 0
	for i := 0; i < 400; i++ {
		r := g.NextShared(float64(i)*1e4, pc)
		if r.PrefixGroup == 0 {
			unique++
			if r.PrefixLen != 0 {
				t.Fatal("unique request carries a prefix length")
			}
			continue
		}
		shared++
		if r.PrefixGroup < 1 || r.PrefixGroup > pc.Groups {
			t.Fatalf("group %d out of range", r.PrefixGroup)
		}
		if r.PrefixLen != pc.PrefixLen {
			t.Fatalf("prefix length %d, want %d", r.PrefixLen, pc.PrefixLen)
		}
		if r.PromptLen < r.PrefixLen+32 {
			t.Fatalf("prompt %d leaves no unique tail after prefix %d", r.PromptLen, r.PrefixLen)
		}
	}
	frac := float64(shared) / 400
	if frac < 0.6 || frac > 0.9 {
		t.Fatalf("shared fraction %v far from configured 0.75", frac)
	}
}

func TestBlockHashesPrefixProperty(t *testing.T) {
	a := Request{ID: 1, PromptLen: 512, PrefixGroup: 4, PrefixLen: 256}
	b := Request{ID: 2, PromptLen: 512, PrefixGroup: 4, PrefixLen: 256}
	c := Request{ID: 3, PromptLen: 512, PrefixGroup: 9, PrefixLen: 256}
	ha, hb, hc := a.BlockHashes(64), b.BlockHashes(64), c.BlockHashes(64)
	if len(ha) != 8 {
		t.Fatalf("block count %d, want 8", len(ha))
	}
	// same group: identical hashes over the shared prefix (4 blocks)...
	for i := 0; i < 4; i++ {
		if ha[i] != hb[i] {
			t.Fatalf("shared block %d hashes differ", i)
		}
	}
	// ...then diverging unique tails, which never re-converge (chaining)
	for i := 4; i < 8; i++ {
		if ha[i] == hb[i] {
			t.Fatalf("unique block %d hashes collide", i)
		}
	}
	// different groups never share a block
	for i := range hc {
		if ha[i] == hc[i] {
			t.Fatalf("cross-group block %d hashes collide", i)
		}
	}
	// unique prompts hash deterministically
	again := Request{ID: 1, PromptLen: 512, PrefixGroup: 4, PrefixLen: 256}.BlockHashes(64)
	for i := range ha {
		if ha[i] != again[i] {
			t.Fatal("hashes not deterministic")
		}
	}
}
