// Package registry is the one name→value registry implementation behind
// the public extension points (serving methods, routing policies,
// preemption-recovery policies). Each instance keeps registration order
// — builtins register at init, third parties after, and derived name
// lists report exactly that order deterministically. Registration
// normally happens in init functions, but lookups run from parallel
// experiment workers, so all access is guarded.
package registry

import (
	"fmt"
	"sync"
)

// Registry maps unique names to values of one extension kind.
type Registry[T any] struct {
	pkg   string // error prefix, e.g. "cluster"
	kind  string // human kind, e.g. "routing policy"
	mu    sync.RWMutex
	order []string
	byNm  map[string]T
}

// New creates a registry whose errors read "<pkg>: ... <kind> ...".
func New[T any](pkg, kind string) *Registry[T] {
	return &Registry[T]{pkg: pkg, kind: kind, byNm: make(map[string]T)}
}

// Register adds a value under name. Names are case-sensitive, must be
// non-empty and unique. (Nil-ness of the value is the caller's contract
// to check — a typed nil function does not compare equal to nil here.)
func (r *Registry[T]) Register(name string, v T) error {
	if name == "" {
		return fmt.Errorf("%s: %s has empty name", r.pkg, r.kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byNm[name]; dup {
		return fmt.Errorf("%s: %s %q already registered", r.pkg, r.kind, name)
	}
	r.byNm[name] = v
	r.order = append(r.order, name)
	return nil
}

// MustRegister registers builtins at init time.
func (r *Registry[T]) MustRegister(name string, v T) {
	if err := r.Register(name, v); err != nil {
		panic(err)
	}
}

// Lookup returns the value registered under name.
func (r *Registry[T]) Lookup(name string) (T, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if v, ok := r.byNm[name]; ok {
		return v, nil
	}
	var zero T
	return zero, fmt.Errorf("%s: unknown %s %q (want one of %v)",
		r.pkg, r.kind, name, r.order)
}

// Names lists registered names in registration order.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}
