package experiments

import (
	"fmt"

	"diffkv/internal/baselines"
	"diffkv/internal/cluster"
	"diffkv/internal/faults"
	"diffkv/internal/gpusim"
	"diffkv/internal/offload"
	"diffkv/internal/serving"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

// ChaosRates returns the crash-rate sweep (expected crashes per instance
// per minute) the chaos experiment runs. Shared with the BENCH_PR7
// snapshot so the experiment table and the checked-in record measure
// identical runs.
func ChaosRates(fast bool) []float64 {
	if fast {
		return []float64{0, 3}
	}
	// 0 = failure-free baseline; 3 = crashes with recovery windows
	// between them; 5 = heavy churn; 6 = every instance down at once —
	// the retry budget drains and failure accounting takes over
	return []float64{0, 3, 5, 6}
}

// ChaosRun executes one cell of the chaos grid: a 3-instance
// least-loaded cluster of oversubscribed manager-mode DiffKV engines
// (small KV budget, long CoT generations — the setting where crashes
// land on instances holding real in-flight and host-swapped state)
// under rate-sampled fault injection, with crash orphans re-dispatched
// to survivors. The recovery policy decides what a crash costs: with
// swap recovery the host tier doubles as crash insurance — sequences
// swapped out before the crash resume on restart — while recompute
// recovery regenerates everything the crash destroyed.
//
// The faults seed depends on the crash rate but not the policy, so both
// policies face the identical crash/restart timeline at each rate.
func ChaosRun(crashRate float64, policy string, n int, seed uint64) cluster.Metrics {
	var host int64
	if policy != offload.PolicyRecompute {
		host = 2 << 30
	}
	cfg := cluster.Config{
		Instances: 3,
		Policy:    cluster.PolicyLeastLoaded,
		Seed:      seed,
		// interactive SLOs are unreachable under deliberate
		// oversubscription + crashes; the soak SLOs below make goodput
		// track work preserved per second rather than interactivity
		TTFTSLOUs: 30e6,
		TPOTSLOUs: 0.5e6,
	}
	if crashRate > 0 {
		cfg.Faults = &faults.Plan{
			Seed:            seed + seedOf("chaos", fmt.Sprintf("%.1f", crashRate)),
			CrashRatePerMin: crashRate,
			MeanDownSec:     5,
			HorizonSec:      30,
		}
	}
	cfg.Engine = chaosEngine()
	cfg.Engine.PreemptPolicy = policy
	cfg.Engine.HostMemoryBytes = host

	c, err := cluster.New(cfg)
	if err != nil {
		panic(err)
	}
	// same seed across policies at a given rate: identical request sets
	// and crash timelines, fair comparison
	gen := workload.NewRequestGen(workload.MATH, 2048, seed+seedOf("chaos-load"))
	reqs := gen.CoTBatch(n)
	t := 0.0
	for i := range reqs {
		t += 1e6 / 6.0 // 6 req/s paced arrivals
		reqs[i].ArrivalUs = t
	}
	m, err := c.Run(reqs)
	if err != nil {
		panic(err)
	}
	if stuck := m.Stuck(); stuck != 0 {
		panic(fmt.Sprintf("chaos: %s at %.1f crashes/min left %d requests stuck",
			policy, crashRate, stuck))
	}
	return m
}

// chaosEngine is the shared oversubscribed engine shape for the chaos
// grid (mirrors the offload experiment's pressure setting).
func chaosEngine() (cfg serving.Config) {
	cfg.Model = synth.Llama3_8B
	cfg.Cluster = gpusim.NewCluster(gpusim.L40(), 1)
	cfg.Traits = baselines.TraitsDiffKV(0.3)
	cfg.UseManager = true
	cfg.HiFrac, cfg.LoFrac = 0.25, 0.3
	cfg.MemoryReserve = 0.985
	cfg.MaxGenLen = 2048
	return cfg
}

// Chaos goes beyond the paper's failure-free evaluation (DESIGN.md §13):
// deterministic fault injection across a cluster of oversubscribed
// DiffKV instances. The first table sweeps crash rate x recovery policy
// — goodput, P99 TTFT and the recovery ledger (re-dispatches,
// swap-recovered sequences, KV bytes destroyed). The second isolates
// the headline claim: at each crash rate, the goodput delta of swap
// recovery over recompute recovery — the host tier carrying swapped
// sequences through a crash-with-restart instead of regenerating them.
func Chaos(o Opts) []*Table {
	o.norm()
	rates := ChaosRates(o.Fast)
	n := 36
	if o.Fast {
		n = 18
	}
	policies := []string{offload.PolicyRecompute, offload.PolicySwap}

	t1 := &Table{
		Title: "Chaos: crash injection on a 3x L40 DiffKV cluster — MATH CoT, oversubscribed KV, least-loaded routing",
		Header: []string{"crash/min", "recovery", "done", "failed", "redisp",
			"swap-rec", "kv-lost(MB)", "ttft-p99(s)", "tok/s", "goodput(req/s)"},
		Notes: "identical crash timelines per rate; failed = retry budget exhausted after repeated crashes",
	}
	metrics := make([]cluster.Metrics, len(rates)*len(policies))
	o.forEach(len(metrics), func(i int) {
		metrics[i] = ChaosRun(rates[i/len(policies)], policies[i%len(policies)], n, o.Seed)
	})
	for i, m := range metrics {
		t1.AddRow(f1(rates[i/len(policies)]), policies[i%len(policies)],
			fmt.Sprintf("%d/%d", m.Completed, m.Submitted),
			fmt.Sprintf("%d", m.Failed), fmt.Sprintf("%d", m.Redispatches),
			fmt.Sprintf("%d", m.SwapRecovered),
			f1(float64(m.LostKVBytes)/(1<<20)),
			f3(m.TTFT.P99), f1(m.ThroughputTokensPerSec), f2(m.GoodputReqPerSec))
	}

	t2 := &Table{
		Title:  "Chaos: swap-recovery goodput delta over recompute recovery (host tier as crash insurance)",
		Header: []string{"crash/min", "recompute(req/s)", "swap(req/s)", "delta(req/s)", "delta"},
		Notes:  "positive delta = sequences the host tier carried through a crash resumed instead of regenerating",
	}
	for r := range rates {
		rec := metrics[r*len(policies)]
		swp := metrics[r*len(policies)+1]
		delta := swp.GoodputReqPerSec - rec.GoodputReqPerSec
		rel := "n/a"
		if rec.GoodputReqPerSec > 0 {
			rel = pct(delta / rec.GoodputReqPerSec)
		}
		t2.AddRow(f1(rates[r]), f2(rec.GoodputReqPerSec), f2(swp.GoodputReqPerSec),
			f2(delta), rel)
	}

	return []*Table{t1, t2}
}
