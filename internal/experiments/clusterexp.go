package experiments

import (
	"fmt"

	"diffkv/internal/baselines"
	"diffkv/internal/cluster"
	"diffkv/internal/gpusim"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

// ClusterRouting goes beyond the paper's single-instance evaluation
// (DESIGN.md §7): a 4-instance cluster under Poisson arrivals with a
// prefix-heavy workload, comparing routing policies at increasing arrival
// rates for vLLM and DiffKV serving traits. Prefix-affinity routing keeps
// shared system prompts hot on their affine instance, cutting TTFT; DiffKV
// traits shift the saturation knee right because compressed caches admit
// larger batches.
func ClusterRouting(o Opts) []*Table {
	o.norm()
	rates := []float64{2, 6, 12}
	horizon := 60.0
	if o.Fast {
		rates = []float64{4, 10}
		horizon = 25
	}
	methods := []struct {
		name   string
		traits baselines.ServingTraits
	}{
		{"vLLM", baselines.TraitsVLLM},
		{"DiffKV", baselines.TraitsDiffKV(0.3)},
	}
	pc := workload.PrefixConfig{Groups: 16, PrefixLen: 768, SharedFrac: 0.9}

	var out []*Table
	for _, method := range methods {
		t := &Table{
			Title: fmt.Sprintf("Cluster routing: 4x L40 Llama3-8B, MMLU prefix-heavy — %s traits", method.name),
			Header: []string{"rate(req/s)", "policy", "ttft-p50(s)", "ttft-p95(s)",
				"tpot-p95(s)", "goodput(req/s)", "util", "imbalance", "hit-frac", "shed"},
			Notes: "prefix-affinity keeps shared prefixes hot on their affine instance",
		}
		// every (rate, policy) cell is an independent cluster simulation:
		// fan the grid out across the worker pool, emit rows in grid order
		policies := cluster.Policies()
		metrics := make([]cluster.Metrics, len(rates)*len(policies))
		o.forEach(len(metrics), func(i int) {
			rate := rates[i/len(policies)]
			policy := policies[i%len(policies)]
			cfg := cluster.Config{
				Instances:     4,
				Policy:        policy,
				MaxQueueDepth: 128,
				Seed:          o.Seed,
			}
			cfg.Engine.Model = synth.Llama3_8B
			cfg.Engine.Cluster = gpusim.NewCluster(gpusim.L40(), 1)
			cfg.Engine.Traits = method.traits
			cfg.Engine.MaxGenLen = 256
			cfg.Engine.PrefixCacheGroups = 8
			c, err := cluster.New(cfg)
			if err != nil {
				panic(err)
			}
			reqs := workload.NewRequestGen(workload.MMLU, 256, o.Seed+seedOf(method.name)+uint64(rate*10)).
				PoissonShared(rate, horizon, pc)
			m, err := c.Run(reqs)
			if err != nil {
				panic(err)
			}
			metrics[i] = m
		})
		for i, m := range metrics {
			t.AddRow(f1(rates[i/len(policies)]), policies[i%len(policies)],
				f3(m.TTFT.P50), f3(m.TTFT.P95), f3(m.TPOT.P95),
				f2(m.GoodputReqPerSec), pct(m.MeanUtilization),
				f3(m.LoadImbalanceCV), pct(m.PrefixCacheHitFrac),
				fmt.Sprintf("%d", m.Rejected))
		}
		out = append(out, t)
	}
	return out
}
