package experiments

import (
	"strings"
	"testing"
)

func renderAll(tables []*Table) string {
	var b strings.Builder
	for _, t := range tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		o := Opts{Workers: workers}
		n := 37
		hits := make([]int, n)
		o.forEach(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	o := Opts{Workers: 4}
	o.forEach(0, func(i int) { t.Fatal("fn called for n=0") })
}

// TestWorkerPoolRaceSmoke drives the real fan-out paths (attention reps,
// core-engine sequences, serving grids, cluster cells) with a forced
// multi-worker pool. It stays enabled in -short mode so the CI race step
// (`go test -race -short ./internal/experiments/...`) exercises the worker
// pool without paying for the full suite under the race detector.
func TestWorkerPoolRaceSmoke(t *testing.T) {
	for _, id := range []string{"fig2", "fig4", "fig5", "fig8", "fig16", "abl-levels", "abl-window", "cluster-routing", "offload"} {
		if _, err := Run(id, Opts{Fast: true, Reps: 2, Seed: 11, Workers: 8}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

// TestParallelMatchesSequential asserts the acceptance criterion of the
// multi-core harness: for every registered experiment ID, the parallel
// runner produces byte-identical Table output to the sequential runner at a
// fixed seed.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			seqTables, err := Run(id, Opts{Fast: true, Reps: 1, Seed: 42, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parTables, err := Run(id, Opts{Fast: true, Reps: 1, Seed: 42, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			seq, par := renderAll(seqTables), renderAll(parTables)
			if seq != par {
				t.Fatalf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
			}
		})
	}
}
