package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Notes:  "a note",
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	s := tbl.String()
	if !strings.Contains(s, "== demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "note: a note") {
		t.Fatal("missing note")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// title + header + separator + 2 rows + note
	if len(lines) != 6 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
	}
}

func TestOptsDefaults(t *testing.T) {
	var o Opts
	o.norm()
	if o.Reps != 3 || o.Seed != 42 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestRegistryComplete(t *testing.T) {
	// every paper artifact, the ablations, and the cluster + offload +
	// chaos + disagg experiments
	if len(Registry) != 17+7+4 {
		t.Fatalf("registry has %d entries", len(Registry))
	}
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("IDs not sorted")
		}
	}
	if _, err := Run("bogus", Opts{}); err == nil {
		t.Fatal("expected unknown-id error")
	}
}

func TestSeedOfDistinct(t *testing.T) {
	a := seedOf("model-a", "bench")
	b := seedOf("model-b", "bench")
	if a == b {
		t.Fatal("seed collision")
	}
}

// Fast-mode smoke tests: every cheap harness must produce non-empty tables
// with consistent row widths. The expensive harnesses are covered by
// bench_test.go at the repository root.
func TestCheapHarnessesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range []string{"fig2", "fig3", "fig4", "fig5", "fig13", "fig15",
		"abl-tables", "abl-levels", "abl-pagesize", "cluster-routing", "chaos"} {
		tables, err := Run(id, Opts{Fast: true, Reps: 1, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		for _, tbl := range tables {
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table %q", id, tbl.Title)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("%s: ragged row in %q: %v", id, tbl.Title, row)
				}
			}
		}
	}
}

func TestFig13SpeedupOrders(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Run("fig13", Opts{Reps: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// every speedup entry must be >= 100x (paper: up to 3 orders)
	for _, row := range tables[0].Rows {
		sp := row[len(row)-1]
		if !strings.HasSuffix(sp, "x") {
			t.Fatalf("speedup cell %q", sp)
		}
		if len(sp) < 4 { // at least 3 digits + x
			t.Fatalf("speedup %q below two orders of magnitude", sp)
		}
	}
}

func TestDynamicBeatsStaticSparsity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Run("fig9", Opts{Fast: true, Reps: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// in each panel, dynamic accuracy >= static accuracy at the 50% point
	wins, total := 0, 0
	for _, tbl := range tables {
		for _, row := range tbl.Rows {
			if row[0] != "50.0%" {
				continue
			}
			total++
			var dyn, stat float64
			if _, err := sscan(row[1], &dyn); err != nil {
				t.Fatal(err)
			}
			if _, err := sscan(row[2], &stat); err != nil {
				t.Fatal(err)
			}
			if dyn >= stat {
				wins++
			}
		}
	}
	if total == 0 {
		t.Fatal("no 50% rows found")
	}
	if wins*2 < total {
		t.Fatalf("dynamic sparsity won only %d of %d panels", wins, total)
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
