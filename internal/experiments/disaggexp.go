package experiments

import (
	"fmt"

	"diffkv/internal/baselines"
	"diffkv/internal/cluster"
	"diffkv/internal/disagg"
	"diffkv/internal/gpusim"
	"diffkv/internal/quant"
	"diffkv/internal/serving"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

// DisaggTiers returns the wire-precision sweep the disaggregation
// experiment runs: the KV pages shipped prefill→decode are quantized at
// the engine's tier, so the tier directly prices the transfer.
func DisaggTiers() []quant.Precision {
	return []quant.Precision{quant.FP16, quant.K8V4, quant.K4V2}
}

// DisaggSplits returns the prefill:decode pool splits swept over a
// 4-instance cluster, plus the colocated control encoded as {0, 0}.
func DisaggSplits(fast bool) [][2]int {
	if fast {
		return [][2]int{{0, 0}, {2, 2}}
	}
	return [][2]int{{0, 0}, {1, 3}, {2, 2}, {3, 1}}
}

// DisaggRun executes one cell of the disaggregation grid on a 4x L40
// DiffKV cluster: prefill instances run prompt passes only and ship the
// compressed KV export over the NIC model to a decode-pool instance
// ({0, 0} = colocated control, every instance mixed). The quant tier is
// forced uniform (hi == lo) so the wire bytes per shipped token are the
// tier's exact page footprint.
func DisaggRun(split [2]int, tier quant.Precision, n int, seed uint64) cluster.Metrics {
	cfg := cluster.Config{
		Instances: 4,
		Policy:    cluster.PolicyLeastLoaded,
		Seed:      seed,
		TTFTSLOUs: 2e6,
		TPOTSLOUs: 0.1e6,
	}
	if split[0] > 0 {
		cfg.Policy = cluster.PolicyDisaggAware
		cfg.Disagg = &disagg.Config{PrefillInstances: split[0], DecodeInstances: split[1]}
	}
	cfg.Engine = disaggEngine()
	cfg.Engine.HiPrec, cfg.Engine.LoPrec = tier, tier

	c, err := cluster.New(cfg)
	if err != nil {
		panic(err)
	}
	// same seed across splits and tiers: identical request sets, fair
	// comparison
	gen := workload.NewRequestGen(workload.MMLU, 256, seed+seedOf("disagg-load"))
	reqs := make([]workload.Request, n)
	t := 0.0
	for i := range reqs {
		t += 1e6 / 14.0 // 14 req/s paced arrivals
		reqs[i] = gen.Next(t)
	}
	m, err := c.Run(reqs)
	if err != nil {
		panic(err)
	}
	if stuck := m.Stuck(); stuck != 0 {
		panic(fmt.Sprintf("disagg: split %d:%d tier %s left %d requests stuck",
			split[0], split[1], tier, stuck))
	}
	return m
}

// disaggEngine is the shared engine shape for the disaggregation grid
// (mirrors the cluster disagg tests).
func disaggEngine() (cfg serving.Config) {
	cfg.Model = synth.Llama3_8B
	cfg.Cluster = gpusim.NewCluster(gpusim.L40(), 1)
	cfg.Traits = baselines.TraitsDiffKV(0.3)
	cfg.UseManager = true
	cfg.HiFrac, cfg.LoFrac = 0.2, 0.25
	cfg.MaxGenLen = 256
	return cfg
}

// splitName renders a pool split ("colocated" for the {0, 0} control).
func splitName(split [2]int) string {
	if split[0] == 0 {
		return "colocated"
	}
	return fmt.Sprintf("%d:%d", split[0], split[1])
}

// Disagg goes beyond the paper's single-pool serving (DESIGN.md §16):
// prefill/decode disaggregation with compressed cross-instance KV
// transfer. The first table sweeps pool split x wire tier — completions,
// shipments, wire traffic, P99 TTFT and goodput, with the colocated
// 4-mixed control in the same rows. The second isolates the compression
// economics: at each tier, total wire bytes and the FP16-relative ratio
// — K4V2 ships at most a third of FP16's bytes, which is what makes the
// transfer affordable at all. The third is the analytic per-token wire
// cost straight from the tier's page footprint, independent of workload.
func Disagg(o Opts) []*Table {
	o.norm()
	splits := DisaggSplits(o.Fast)
	tiers := DisaggTiers()
	n := 48
	if o.Fast {
		n = 24
	}

	t1 := &Table{
		Title: "Disaggregation: prefill:decode pool split x wire tier on a 4x L40 DiffKV cluster — MMLU, 14 req/s",
		Header: []string{"split", "tier", "done", "ships", "wire(MB)", "KB/ship",
			"xfer(s)", "ttft-p99(s)", "tok/s", "goodput(req/s)"},
		Notes: "identical request sets per cell; colocated = 4 mixed instances, no transfers",
	}
	metrics := make([]cluster.Metrics, len(splits)*len(tiers))
	o.forEach(len(metrics), func(i int) {
		metrics[i] = DisaggRun(splits[i/len(tiers)], tiers[i%len(tiers)], n, o.Seed)
	})
	for i, m := range metrics {
		ships, wire, xfer := 0, int64(0), 0.0
		if m.Disagg != nil {
			ships, wire, xfer = m.Disagg.Transfers, m.Disagg.KVBytesShipped, m.Disagg.XferSeconds
		}
		perShip := "n/a"
		if ships > 0 {
			perShip = f1(float64(wire) / float64(ships) / (1 << 10))
		}
		t1.AddRow(splitName(splits[i/len(tiers)]), tiers[i%len(tiers)].String(),
			fmt.Sprintf("%d/%d", m.Completed, m.Submitted),
			fmt.Sprintf("%d", ships), f1(float64(wire)/(1<<20)), perShip,
			f3(xfer), f3(m.TTFT.P99), f1(m.ThroughputTokensPerSec),
			f2(m.GoodputReqPerSec))
	}

	t2 := &Table{
		Title:  "Disaggregation: wire-tier economics at the 2:2 split — compression is what makes the transfer affordable",
		Header: []string{"tier", "wire(MB)", "vs FP16", "goodput(req/s)", "colocated(req/s)", "delta"},
		Notes:  "vs FP16 = shipped-byte ratio at identical request sets; delta = disagg goodput minus colocated at the same tier",
	}
	// the 2:2 split is present in both fast and full sweeps
	at := func(split [2]int, tier int) cluster.Metrics {
		for si, s := range splits {
			if s == split {
				return metrics[si*len(tiers)+tier]
			}
		}
		panic("disagg: 2:2 split missing from sweep")
	}
	fp16Wire := at([2]int{2, 2}, 0).Disagg.KVBytesShipped
	for ti, tier := range tiers {
		d, c := at([2]int{2, 2}, ti), at([2]int{0, 0}, ti)
		ratio := "n/a"
		if fp16Wire > 0 {
			ratio = pct(float64(d.Disagg.KVBytesShipped) / float64(fp16Wire))
		}
		t2.AddRow(tier.String(), f1(float64(d.Disagg.KVBytesShipped)/(1<<20)), ratio,
			f2(d.GoodputReqPerSec), f2(c.GoodputReqPerSec),
			f2(d.GoodputReqPerSec-c.GoodputReqPerSec))
	}

	t3 := &Table{
		Title:  "Disaggregation: analytic wire cost per shipped token (unified-page footprint, head dim 128)",
		Header: []string{"tier", "bytes/token/layer-head-pair", "vs FP16"},
		Notes:  "straight from the tier's page layout — K4V2 is pinned at <= 1/3 of FP16 by tests at the offload and cluster layers",
	}
	dim := 128
	fp16Tok := float64(quant.FP16.TokenBytes(dim))
	for _, tier := range tiers {
		tok := quant.Precision.TokenBytes(tier, dim)
		t3.AddRow(tier.String(), fmt.Sprintf("%d", tok), pct(float64(tok)/fp16Tok))
	}

	return []*Table{t1, t2, t3}
}
