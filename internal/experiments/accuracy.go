package experiments

import (
	"fmt"

	"diffkv/internal/baselines"
	"diffkv/internal/core"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/stats"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

// evalBaseline measures a baseline method's (error, memory) on a
// (model, benchmark) pair across several heads, then maps through the
// accuracy model.
func evalBaseline(m baselines.Method, model *synth.ModelConfig, bench *workload.Benchmark, reps int, seed uint64, o Opts) (acc, mem float64) {
	promptLen, genLen := bench.EvalLen()
	n := promptLen + genLen
	root := mathx.NewRNG(seed)
	errs := make([]float64, reps)
	mems := make([]float64, reps)
	o.forEach(reps, func(rep int) {
		method := m
		rng := root.SplitAt(uint64(rep))
		prof := synth.Profile(model, (rep*11)%model.Layers, rep%model.KVHeads, bench.DensityScale, rng)
		data := synth.GenHead(model, prof, n, rng.SplitAt(1))
		sig := data.CheapSignificance(model, rng.SplitAt(2))
		// SnapKV needs the prompt boundary
		if sk, ok := method.(baselines.SnapKV); ok {
			sk.PromptLen = promptLen
			method = sk
		}
		r := method.Evaluate(model, data, sig, 8, rng.SplitAt(3))
		errs[rep] = r.OutputErr
		mems[rep] = r.MemFrac
	})
	memSum := meanOf(mems)
	// Heads are complementary: a method that ruins some heads (e.g.
	// DuoAttention's misclassified streaming heads) breaks the model even
	// if other heads are exact, so the cross-head aggregate blends the
	// mean with the tail.
	var mean float64
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))
	p90 := stats.Quantile(errs, 0.9)
	eff := 0.5*mean + 0.5*p90
	return bench.Accuracy(model.Name, eff), memSum
}

// evalDiffKV runs the full DiffKV engine for a (model, benchmark) pair.
// Sequences fan out across the worker pool; the reduction stays in sequence
// order.
func evalDiffKV(model *synth.ModelConfig, bench *workload.Benchmark, params policy.Params, seqs int, seed uint64, o Opts) (acc, mem float64, bd policy.Breakdown) {
	promptLen, genLen := bench.EvalLen()
	eng, err := core.NewEngine(core.Config{
		Model: model, Params: params, DensityScale: bench.DensityScale, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	results := make([]core.SequenceResult, seqs)
	o.forEach(seqs, func(s int) {
		r, err := eng.RunSequence(promptLen, genLen, uint64(s)+1)
		if err != nil {
			panic(err)
		}
		results[s] = r
	})
	var errSum, memSum float64
	for _, r := range results {
		errSum += r.OutputErr
		memSum += r.MemFrac
		bd.High += r.Breakdown.High
		bd.Low += r.Breakdown.Low
		bd.Pruned += r.Breakdown.Pruned
	}
	f := float64(seqs)
	bd.High /= f
	bd.Low /= f
	bd.Pruned /= f
	return bench.Accuracy(model.Name, errSum/f), memSum / f, bd
}

// Table1 reproduces "Accuracy and memory usage of DiffKV and the
// best-performing baseline methods across models and benchmarks".
func Table1(o Opts) []*Table {
	o.norm()
	models := []*synth.ModelConfig{synth.Llama3_8B, synth.Qwen25_7B, synth.Qwen25_32B, synth.Llama3_70B}
	benches := workload.CoreBenchmarks
	if o.Fast {
		models = models[:2]
		benches = benches[:2]
	}
	methods := []baselines.Method{
		baselines.INT4Atom{}, baselines.QAQ{}, baselines.DuoAttention{},
		baselines.Quest{}, baselines.SnapKV{}, baselines.KIVI{},
	}
	var out []*Table
	for _, model := range models {
		t := &Table{
			Title:  fmt.Sprintf("Table 1: accuracy / memory — %s", model.Name),
			Header: []string{"benchmark", "FP16", "DiffKV(mem)", "INT4", "QAQ", "DuoAttn", "Quest", "SnapKV", "KIVI"},
			Notes:  "DiffKV column shows accuracy with its measured memory fraction",
		}
		params := policy.ParamsForModel(model.Name)
		for _, bench := range benches {
			fp16, ok := bench.FP16[model.Name]
			if !ok {
				continue
			}
			row := []string{bench.Name, f1(fp16)}
			dAcc, dMem, _ := evalDiffKV(model, bench, params, o.Reps, o.Seed+seedOf("t1", model.Name, bench.Name), o)
			row = append(row, fmt.Sprintf("%s (%s)", f1(dAcc), pct(dMem)))
			for _, m := range methods {
				acc, _ := evalBaseline(m, model, bench, 2*o.Reps, o.Seed+seedOf("t1", model.Name, bench.Name, m.Name()), o)
				row = append(row, f1(acc))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}

// Table2 reproduces the LongBench evaluation: DiffKV vs Quest and SnapKV
// (both at 25% memory) on Llama3.1-8B and Qwen2.5-7B.
func Table2(o Opts) []*Table {
	o.norm()
	models := []*synth.ModelConfig{synth.Llama31_8B, synth.Qwen25_7B}
	benches := workload.LongBench
	if o.Fast {
		benches = benches[:2]
	}
	var out []*Table
	for _, model := range models {
		t := &Table{
			Title:  fmt.Sprintf("Table 2: LongBench — %s", model.Name),
			Header: []string{"benchmark", "FP16", "DiffKV(mem)", "Quest@25%", "SnapKV@25%"},
		}
		params := policy.ParamsForModel(model.Name)
		for _, bench := range benches {
			fp16, ok := bench.FP16[model.Name]
			if !ok {
				continue
			}
			dAcc, dMem, _ := evalDiffKV(model, bench, params, o.Reps, o.Seed+seedOf("t2", model.Name, bench.Name), o)
			qAcc, _ := evalBaseline(baselines.Quest{Budget: 0.25}, model, bench, 2*o.Reps, o.Seed+seedOf("t2q", model.Name, bench.Name), o)
			sAcc, _ := evalBaseline(baselines.SnapKV{Budget: 0.25}, model, bench, 2*o.Reps, o.Seed+seedOf("t2s", model.Name, bench.Name), o)
			t.AddRow(bench.Name, f1(fp16),
				fmt.Sprintf("%s (%s)", f1(dAcc), pct(dMem)), f1(qAcc), f1(sAcc))
		}
		out = append(out, t)
	}
	return out
}

// Table3 reproduces the thinking-model evaluation (QwQ-32B,
// R1-Distill-Qwen-14B, R1-Distill-Llama-8B on MATH/GPQA/AIME24): long
// chains of thought amplify compression error, collapsing the pruning and
// 2-bit baselines while DiffKV stays near FP16.
func Table3(o Opts) []*Table {
	o.norm()
	models := []*synth.ModelConfig{synth.QwQ_32B, synth.R1Qwen_14B, synth.R1Llama_8B}
	benches := workload.ThinkingBenchmarks
	if o.Fast {
		models = models[:1]
	}
	methods := []baselines.Method{
		baselines.INT4Atom{}, baselines.KIVI{}, baselines.Quest{}, baselines.SnapKV{},
	}
	var out []*Table
	for _, model := range models {
		t := &Table{
			Title:  fmt.Sprintf("Table 3: thinking model — %s", model.Name),
			Header: []string{"benchmark", "FP16", "DiffKV(mem)", "INT4", "KIVI", "Quest", "SnapKV"},
			Notes:  "long-CoT error accumulation collapses pruning/2-bit baselines",
		}
		params := policy.ParamsForModel(model.Name)
		for _, bench := range benches {
			fp16, ok := bench.FP16[model.Name]
			if !ok {
				continue
			}
			row := []string{bench.Name, f1(fp16)}
			dAcc, dMem, _ := evalDiffKV(model, bench, params, o.Reps, o.Seed+seedOf("t3", model.Name, bench.Name), o)
			row = append(row, fmt.Sprintf("%s (%s)", f1(dAcc), pct(dMem)))
			for _, m := range methods {
				acc, _ := evalBaseline(m, model, bench, 2*o.Reps, o.Seed+seedOf("t3", model.Name, bench.Name, m.Name()), o)
				row = append(row, f1(acc))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}

// Fig11 reproduces the memory-accuracy tradeoff curves: DiffKV swept over
// its profiled thresholds against each baseline's operating point, for
// representative (model, benchmark) panels.
func Fig11(o Opts) []*Table {
	o.norm()
	type panel struct {
		model *synth.ModelConfig
		bench *workload.Benchmark
	}
	panels := []panel{
		{synth.Llama3_8B, workload.GSM8K},
		{synth.Llama3_8B, workload.MMLU},
		{synth.Qwen25_7B, workload.MMLUPro},
		{synth.Qwen25_7B, workload.HumanEvalPlus},
		{synth.Qwen25_32B, workload.MBPPPlus},
		{synth.Qwen25_32B, workload.MATH},
		{synth.QwQ_32B, workload.MATH},
		{synth.QwQ_32B, workload.AIME24},
		{synth.QwQ_32B, workload.GPQA},
	}
	if o.Fast {
		panels = panels[:2]
	}
	var out []*Table
	for _, p := range panels {
		t := &Table{
			Title:  fmt.Sprintf("Fig 11: memory vs accuracy — %s %s", p.model.Name, p.bench.Name),
			Header: []string{"method", "mem%", "accuracy"},
			Notes:  "DiffKV holds FP16 accuracy across its profiled memory range",
		}
		fp16 := p.bench.FP16[p.model.Name]
		t.AddRow("FP16", "100.0%", f1(fp16))
		base := policy.ParamsForModel(p.model.Name)
		alphas := []float64{1, 3, 5}
		if o.Fast {
			alphas = alphas[:2]
		}
		for _, ah := range alphas {
			params := base
			params.AlphaH = ah
			acc, mem, _ := evalDiffKV(p.model, p.bench, params, o.Reps, o.Seed+seedOf("f11", p.model.Name, p.bench.Name), o)
			t.AddRow(fmt.Sprintf("DiffKV(αh=%.0f)", ah), pct(mem), f1(acc))
		}
		for _, m := range []baselines.Method{
			baselines.KIVI{}, baselines.INT4Atom{}, baselines.SnapKV{},
			baselines.DuoAttention{}, baselines.Quest{}, baselines.H2O{},
		} {
			acc, mem := evalBaseline(m, p.model, p.bench, 2*o.Reps, o.Seed+seedOf("f11", p.model.Name, p.bench.Name, m.Name()), o)
			t.AddRow(m.Name(), pct(mem), f1(acc))
		}
		out = append(out, t)
	}
	return out
}

// Fig12 reproduces the KV compression breakdown: fraction of tokens
// pruned / low-precision / high-precision across MMLU, HumanEval+ and MATH
// for three models.
func Fig12(o Opts) []*Table {
	o.norm()
	models := []*synth.ModelConfig{synth.Llama3_8B, synth.Qwen25_7B, synth.Qwen25_32B}
	benches := []*workload.Benchmark{workload.MMLU, workload.HumanEvalPlus, workload.MATH}
	if o.Fast {
		models = models[:1]
	}
	t := &Table{
		Title:  "Fig 12: token breakdown (pruned / low / high)",
		Header: []string{"model", "benchmark", "pruned", "low-prec", "high-prec"},
		Notes:  "diffuse workloads (MMLU, 5-shot) prune most; 0-shot code prunes least",
	}
	for _, model := range models {
		params := policy.ParamsForModel(model.Name)
		for _, bench := range benches {
			_, _, bd := evalDiffKV(model, bench, params, o.Reps, o.Seed+seedOf("f12", model.Name, bench.Name), o)
			t.AddRow(model.Name, bench.Name, pct(bd.Pruned), pct(bd.Low), pct(bd.High))
		}
	}
	return []*Table{t}
}
