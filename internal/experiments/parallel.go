package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs fn(i) for every i in [0, n) across the configured worker
// count (Opts.Workers; 0 means runtime.NumCPU()). It is the experiment
// harness's worker pool: independent reps/configs of a figure fan out
// across goroutines while the table stays bit-identical to a sequential
// run.
//
// The determinism contract: each work item derives its own RNG stream from
// a root seed (mathx.RNG.SplitAt(i) — the parent is read, never advanced)
// and writes only to its own result index. Reductions over the results are
// always performed sequentially in index order by the caller. Under that
// contract scheduling cannot change any output bit, so Workers only moves
// wall-clock time.
func (o Opts) forEach(n int, fn func(i int)) {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// meanOf reduces a per-index result slice sequentially (index order), so
// parallel and sequential runs agree bit-for-bit.
func meanOf(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
