package experiments

import (
	"fmt"
	"sort"
	"time"

	"diffkv/internal/attention"
	"diffkv/internal/core"
	"diffkv/internal/gpusim"
	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/quant"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

// AblationScan isolates the parallel-compaction claim: the coordination
// phase's prefix sum, sequential vs goroutine-parallel (measured wall time
// on this host) and the modeled GPU coordination cost vs a sequential
// O(regions) alternative.
func AblationScan(o Opts) []*Table {
	o.norm()
	t := &Table{
		Title:  "Ablation: prefix-sum coordination — sequential vs parallel",
		Header: []string{"regions", "seq-scan(host µs)", "par-scan(host µs)", "gpu-parallel(µs)", "gpu-sequential(µs)"},
		Notes:  "parallel coordination turns O(regions) into O(log regions) dependent steps",
	}
	dev := gpusim.L40()
	for _, n := range []int{1024, 8192, 65536, 524288} {
		// host wall-clock measurement is inherently nondeterministic, so
		// fast mode (benchmarks and the parallel-vs-sequential identity
		// test) skips it and reports only the modeled GPU costs
		seqCell, parCell := "-", "-"
		if !o.Fast {
			src := make([]int32, n)
			for i := range src {
				src[i] = int32(i % 3)
			}
			dst := make([]int32, n)
			reps := 20
			start := time.Now()
			for r := 0; r < reps; r++ {
				mathx.ExclusiveScan(src, dst)
			}
			seqCell = f1(float64(time.Since(start).Microseconds()) / float64(reps))
			start = time.Now()
			for r := 0; r < reps; r++ {
				mathx.ParallelExclusiveScan(src, dst)
			}
			parCell = f1(float64(time.Since(start).Microseconds()) / float64(reps))
		}

		gpuPar := dev.GPUCompaction(0, n)
		// sequential coordination: one dependent step per region (~4ns each
		// at GPU clock) plus the same launches
		gpuSeq := gpusim.Micros(float64(n)*0.004) + 4*dev.KernelLaunch
		t.AddRow(fmt.Sprintf("%d", n), seqCell, parCell,
			f1(float64(gpuPar)), f1(float64(gpuSeq)))
	}
	return []*Table{t}
}

// AblationTables quantifies the bidirectional page table's metadata saving
// against maintaining two separate per-precision tables (paper §5.2).
func AblationTables(o Opts) []*Table {
	o.norm()
	model := synth.Llama3_8B
	t := &Table{
		Title:  "Ablation: bidirectional page table vs two separate tables",
		Header: []string{"batch", "bidirectional(MB)", "two-tables(MB)", "saving"},
		Notes:  "one shared entry serves both precisions; separate tables double it",
	}
	// 8KB pages, K8V4 tier: 37 tokens/page; table slots = maxSeq/37
	slots := (8192 + 36) / 37
	perTable := kvcache.NewBiTable(slots).MetadataBytes()
	heads := model.Layers * model.KVHeads
	for _, batch := range []int{32, 128, 512} {
		bi := float64(batch*heads*perTable) / (1 << 20)
		// separate tables: a hi table of the same length plus a lo table of
		// maxSeq/tokensPerLoPage entries
		loSlots := (8192 + 67) / 68
		two := float64(batch*heads*(perTable+4*loSlots)) / (1 << 20)
		t.AddRow(fmt.Sprintf("%d", batch), f1(bi), f1(two),
			pct(1-bi/two))
	}
	return []*Table{t}
}

// AblationWindow sweeps the recent-window size W: too small compresses
// prematurely (error up), too large wastes memory on uncompressed tokens.
func AblationWindow(o Opts) []*Table {
	o.norm()
	t := &Table{
		Title:  "Ablation: recent window W (Llama3-8B, MATH-train)",
		Header: []string{"W", "output-error", "mem%"},
		Notes:  "W=64 (the paper's default) balances premature compression vs window overhead",
	}
	windows := []int{8, 32, 64, 128, 256}
	if o.Fast {
		windows = []int{8, 64, 256}
	}
	bench := workload.MATHTrain
	promptLen, genLen := 384, 384
	if o.Fast {
		promptLen, genLen = 192, 160
	}
	for _, w := range windows {
		params := policy.ParamsLlama3
		params.Window = w
		eng, err := core.NewEngine(core.Config{
			Model: synth.Llama3_8B, Params: params,
			DensityScale: bench.DensityScale, Seed: o.Seed,
		})
		if err != nil {
			panic(err)
		}
		errs := make([]float64, o.Reps)
		mems := make([]float64, o.Reps)
		o.forEach(o.Reps, func(s int) {
			r, err := eng.RunSequence(promptLen, genLen, uint64(s))
			if err != nil {
				panic(err)
			}
			errs[s] = r.OutputErr / float64(o.Reps)
			mems[s] = r.MemFrac / float64(o.Reps)
		})
		var errSum, memSum float64
		for s := 0; s < o.Reps; s++ {
			errSum += errs[s]
			memSum += mems[s]
		}
		t.AddRow(fmt.Sprintf("%d", w), f3(errSum), pct(memSum))
	}
	return []*Table{t}
}

// AblationPageSize measures page-granularity fragmentation: smaller pages
// track token-exact usage tightly but multiply management regions; larger
// pages waste the partial tail of every (head, tier) pair.
func AblationPageSize(o Opts) []*Table {
	o.norm()
	t := &Table{
		Title:  "Ablation: unified page size (Llama3-8B population, 64 seqs)",
		Header: []string{"page-bytes", "tokens/hi-page", "frag-overhead", "pages-managed"},
		Notes:  "fragmentation = allocated page bytes over token-exact bytes - 1",
	}
	model := synth.Llama3_8B
	// a representative slice of heads: fragmentation per head is i.i.d.,
	// so 64 heads measure the same overhead as the full 256 at a quarter
	// of the page budget
	headsN := 64
	rng := mathx.NewRNG(o.Seed + 77)
	seqs := 48
	if o.Fast {
		seqs = 16
	}
	type seqProfile struct{ hi, lo []int }
	profiles := make([]seqProfile, seqs)
	for s := range profiles {
		hi := make([]int, headsN)
		lo := make([]int, headsN)
		n := 512 + rng.Intn(1024)
		for h := range hi {
			hi[h] = int(mathx.Clamp(0.25*rng.LogNorm(0, 0.3), 0.02, 0.9) * float64(n))
			lo[h] = int(mathx.Clamp(0.25*rng.LogNorm(0, 0.3), 0, 0.5) * float64(n))
		}
		profiles[s] = seqProfile{hi, lo}
	}
	for _, pageBytes := range []int{2048, 8192, 32768, 131072} {
		mgr, err := kvcache.NewManager(kvcache.Config{
			Dim: model.HeadDim, PageBytes: pageBytes,
			NumPages: (2 << 30) / pageBytes, MaxSeqLen: 4096,
		})
		if err != nil {
			panic(err)
		}
		var exact float64
		for s, p := range profiles {
			if _, err := mgr.AddSequence(s, headsN); err != nil {
				panic(err)
			}
			demands := make([]kvcache.HeadDemand, headsN)
			maxTok := 0
			for h := range demands {
				demands[h] = kvcache.HeadDemand{HiTokens: p.hi[h], LoTokens: p.lo[h]}
				if tot := p.hi[h] + p.lo[h]; tot > maxTok {
					maxTok = tot
				}
				exact += float64(p.hi[h]*quant.K8V4.TokenBytes(model.HeadDim) +
					p.lo[h]*quant.K4V2.TokenBytes(model.HeadDim))
			}
			if _, err := mgr.PromptCompact(s, maxTok+64, demands); err != nil {
				panic(err)
			}
		}
		allocated := float64(mgr.BytesUsed())
		t.AddRow(fmt.Sprintf("%d", pageBytes),
			fmt.Sprintf("%d", mgr.TokensPerHiPage()),
			pct(allocated/exact-1),
			fmt.Sprintf("%d", mgr.UsedPages()))
	}
	return []*Table{t}
}

// AblationThreeLevels evaluates the §5.3 extension: a third precision level
// (FP16–K8V4–K4V2) against the paper's two-level K8V4–K4V2 scheme, using
// significance-ranked level assignment on real tensors.
func AblationThreeLevels(o Opts) []*Table {
	o.norm()
	model := synth.Llama3_8B
	t := &Table{
		Title:  "Ablation: two vs three precision levels (Llama3-8B)",
		Header: []string{"scheme", "output-error", "mem%"},
		Notes:  "a third level buys little: K8V4 is already near-lossless (paper §4 discussion)",
	}
	n := 512
	reps := 4 * o.Reps
	root := mathx.NewRNG(o.Seed + 33)

	type scheme struct {
		name   string
		levels []quant.Precision // most to least significant tier
		split  []float64         // cumulative token fractions per tier
	}
	schemes := []scheme{
		{"K8V4-K4V2 (paper)", []quant.Precision{quant.K8V4, quant.K4V2}, []float64{0.3, 1.0}},
		{"FP16-K8V4-K4V2", []quant.Precision{quant.FP16, quant.K8V4, quant.K4V2}, []float64{0.1, 0.35, 1.0}},
		{"K8V4-K4V2-K4V1", []quant.Precision{quant.K8V4, quant.K4V2, quant.K4V1}, []float64{0.3, 0.8, 1.0}},
	}
	for _, sc := range schemes {
		errs := make([]float64, reps)
		mems := make([]float64, reps)
		o.forEach(reps, func(rep int) {
			rng := root.SplitAt(uint64(rep))
			prof := synth.Profile(model, rep%model.Layers, rep%model.KVHeads, 1, rng)
			data := synth.GenHead(model, prof, n, rng.SplitAt(1))
			sig := data.CheapSignificance(model, rng.SplitAt(2))
			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			sortIdxBySigDesc(order, sig)
			keys := make([][]float32, n)
			vals := make([][]float32, n)
			var bytes int
			for rank, j := range order {
				frac := float64(rank) / float64(n)
				tier := 0
				for frac >= sc.split[tier] {
					tier++
				}
				p := sc.levels[tier]
				keys[j] = quant.RoundTrip(data.Keys[j], p.KeyBits)
				vals[j] = quant.RoundTrip(data.Vals[j], p.ValBits)
				bytes += p.TokenBytes(model.HeadDim)
			}
			q := data.Query(rng.SplitAt(3))
			ref := attention.Reference(q, data.Keys, data.Vals)
			recon := attention.Reference(q, keys, vals)
			errs[rep] = attention.OutputError(recon.Output, ref.Output) / float64(reps)
			mems[rep] = float64(bytes) / float64(n*4*model.HeadDim) / float64(reps)
		})
		var errSum, memSum float64
		for rep := 0; rep < reps; rep++ {
			errSum += errs[rep]
			memSum += mems[rep]
		}
		t.AddRow(sc.name, f3(errSum), pct(memSum))
	}
	return []*Table{t}
}

// sortIdxBySigDesc orders idx by descending significance with a stable
// position tiebreak.
func sortIdxBySigDesc(idx []int, sig []float32) {
	sort.Slice(idx, func(a, b int) bool {
		if sig[idx[a]] != sig[idx[b]] {
			return sig[idx[a]] > sig[idx[b]]
		}
		return idx[a] < idx[b]
	})
}

// AblationPerHead evaluates the paper's future-work extension: per-head
// thresholds (each head scales αh by its own sparsity) against the shared
// thresholds the paper ships. The paper argues shared thresholds suffice
// (§4 Discussion); this quantifies what per-head tuning buys.
func AblationPerHead(o Opts) []*Table {
	o.norm()
	t := &Table{
		Title:  "Ablation: shared vs per-head thresholds (Llama3-8B, MATH-train)",
		Header: []string{"scheme", "output-error", "mem%"},
		Notes:  "shared thresholds are within noise of per-head tuning (paper §4)",
	}
	bench := workload.MATHTrain
	promptLen, genLen := 384, 384
	if o.Fast {
		promptLen, genLen = 192, 160
	}
	for _, perHead := range []bool{false, true} {
		eng, err := core.NewEngine(core.Config{
			Model: synth.Llama3_8B, Params: policy.ParamsLlama3,
			DensityScale: bench.DensityScale, Seed: o.Seed,
			PerHeadThresholds: perHead,
			SampleLayers:      3, SampleHeads: 3,
		})
		if err != nil {
			panic(err)
		}
		errs := make([]float64, o.Reps)
		mems := make([]float64, o.Reps)
		o.forEach(o.Reps, func(s int) {
			r, err := eng.RunSequence(promptLen, genLen, uint64(s))
			if err != nil {
				panic(err)
			}
			errs[s] = r.OutputErr / float64(o.Reps)
			mems[s] = r.MemFrac / float64(o.Reps)
		})
		var errSum, memSum float64
		for s := 0; s < o.Reps; s++ {
			errSum += errs[s]
			memSum += mems[s]
		}
		name := "shared (paper)"
		if perHead {
			name = "per-head αh"
		}
		t.AddRow(name, f3(errSum), pct(memSum))
	}
	return []*Table{t}
}

// AblationDevices ports the Fig. 15 kernel-speedup measurement across GPU
// generations: compression speedups are byte ratios, so they carry over
// from the L40 to A100/H100 nearly unchanged while absolute step times
// scale with bandwidth.
func AblationDevices(o Opts) []*Table {
	o.norm()
	model := synth.Llama3_8B
	t := &Table{
		Title:  "Ablation: kernel speedup across GPUs (seq 4096, batch 8)",
		Header: []string{"device", "FP16-attn(ms)", "K8V4-speedup", "K4V2-speedup"},
		Notes:  "compression speedups are bandwidth-invariant byte ratios",
	}
	headsN := model.Layers * model.KVHeads
	batch, seqLen := 8, 4096
	fpBytes := float64(batch*seqLen*headsN) * float64(4*model.HeadDim)
	for _, dev := range gpusim.Devices() {
		fp := dev.AttentionKernel(fpBytes, false, 1)
		row := []string{dev.Name, f1(fp.Millis())}
		for _, prec := range []quant.Precision{quant.K8V4, quant.K4V2} {
			qBytes := float64(batch*seqLen*headsN) * float64(prec.TokenBytes(model.HeadDim))
			q := dev.AttentionKernel(qBytes, true, 1)
			row = append(row, fmt.Sprintf("%.2fx", float64(fp)/float64(q)))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}
