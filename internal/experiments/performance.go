package experiments

import (
	"fmt"

	"diffkv/internal/gpusim"
	"diffkv/internal/kvcache"
	"diffkv/internal/mathx"
	"diffkv/internal/quant"
	"diffkv/internal/synth"
)

// Fig13 reproduces the memory-management latency comparison: DiffKV's
// on-GPU parallel KV compaction vs on-CPU multi-threaded management, for
// prompt and generation phases at batch sizes 8 and 32 (sequence length
// 1024), plus one entire inference step. The compaction work is actually
// performed by the real manager; timing comes from the calibrated cost
// model.
func Fig13(o Opts) []*Table {
	o.norm()
	model := synth.Llama3_8B
	dev := gpusim.L40()
	seqLen := 1024
	headsN := model.Layers * model.KVHeads

	memT := &Table{
		Title:  "Fig 13a: memory management latency (ms), seq 1024",
		Header: []string{"phase", "batch", "on-CPU", "DiffKV(on-GPU)", "speedup"},
		Notes:  "parallel compaction is orders of magnitude faster",
	}
	stepT := &Table{
		Title:  "Fig 13b: one entire inference step (ms)",
		Header: []string{"phase", "batch", "on-CPU", "DiffKV(on-GPU)"},
	}

	for _, batch := range []int{8, 32} {
		// real compaction work at this scale
		mgr, err := kvcache.NewManager(kvcache.Config{
			Dim: model.HeadDim, PageBytes: 65536,
			NumPages:  batch * headsN * 8,
			MaxSeqLen: 4 * seqLen,
		})
		if err != nil {
			panic(err)
		}
		rng := mathx.NewRNG(o.Seed + uint64(batch))
		var promptStats kvcache.CompactStats
		for s := 0; s < batch; s++ {
			if _, err := mgr.AddSequence(s, headsN); err != nil {
				panic(err)
			}
			demands := make([]kvcache.HeadDemand, headsN)
			for h := range demands {
				hi := int(mathx.Clamp(0.25*rng.LogNorm(0, 0.3), 0.02, 0.9) * float64(seqLen))
				lo := int(mathx.Clamp(0.25*rng.LogNorm(0, 0.3), 0, 0.5) * float64(seqLen))
				if hi+lo > seqLen {
					lo = seqLen - hi
				}
				demands[h] = kvcache.HeadDemand{HiTokens: hi, LoTokens: lo}
			}
			st, err := mgr.PromptCompact(s, seqLen, demands)
			if err != nil {
				panic(err)
			}
			promptStats.Add(st)
		}
		// one generation step across the batch
		ids := make([]int, batch)
		gdem := make([][]kvcache.GenDemand, batch)
		for s := 0; s < batch; s++ {
			ids[s] = s
			d := make([]kvcache.GenDemand, headsN)
			for h := range d {
				if rng.Float64() < 0.5 {
					d[h] = kvcache.GenDemand{HiDelta: 1}
				}
			}
			gdem[s] = d
		}
		genStats, err := mgr.GenCompact(ids, gdem)
		if err != nil {
			panic(err)
		}

		pGPU := dev.GPUCompaction(promptStats.TokenOps, promptStats.Regions)
		pCPU := dev.CPUMemoryManagement(promptStats.TokenOps, promptStats.Regions, batch)
		gGPU := dev.GPUCompaction(genStats.TokenOps, genStats.Regions)
		gCPU := dev.CPUMemoryManagement(genStats.TokenOps, genStats.Regions, batch)

		memT.AddRow("prompt", fmt.Sprintf("%d", batch), f1(pCPU.Millis()), f1(pGPU.Millis()),
			fmt.Sprintf("%.0fx", float64(pCPU)/float64(pGPU)))
		memT.AddRow("generation", fmt.Sprintf("%d", batch), f1(gCPU.Millis()), f2(gGPU.Millis()),
			fmt.Sprintf("%.0fx", float64(gCPU)/float64(gGPU)))

		// whole step = model execution + attention + memory management
		weights := model.ParamsB * 2e9
		promptExec := dev.LinearLayers(weights, batch*seqLen)
		genExec := dev.LinearLayers(weights, batch)
		kvBytes := float64(batch*seqLen*model.KVBytesPerTokenFP16()) * 0.3
		attn := dev.AttentionKernel(kvBytes, true, 1)
		stepT.AddRow("prompt", fmt.Sprintf("%d", batch),
			f1((promptExec + pCPU).Millis()), f1((promptExec + pGPU).Millis()))
		stepT.AddRow("generation", fmt.Sprintf("%d", batch),
			f1((genExec + attn + gCPU).Millis()), f1((genExec + attn + gGPU).Millis()))
	}
	return []*Table{memT, stepT}
}

// Fig15 reproduces the attention-kernel and end-to-end latency speedups of
// DiffKV's quantized attention vs vLLM FP16 for K8V8/K8V4/K4V2 across
// sequence lengths 1024/2048/4096.
func Fig15(o Opts) []*Table {
	o.norm()
	model := synth.Llama3_8B
	dev := gpusim.L40()
	dim := model.HeadDim
	batch := 8

	kernelT := &Table{
		Title:  "Fig 15a: attention kernel speedup vs vLLM",
		Header: []string{"seq-len", "K8V8", "K8V4", "K4V2"},
		Notes:  "speedup approaches the compression ratio as sequences grow",
	}
	e2eT := &Table{
		Title:  "Fig 15b: end-to-end latency speedup vs vLLM (batch 8)",
		Header: []string{"seq-len", "K8V8", "K8V4", "K4V2"},
	}

	fpToken := float64(4 * dim) // vLLM FP16 payload per token per head
	headsN := model.Layers * model.KVHeads
	weights := model.ParamsB * 2e9

	for _, seqLen := range []int{1024, 2048, 4096} {
		kRow := []string{fmt.Sprintf("%d", seqLen)}
		eRow := []string{fmt.Sprintf("%d", seqLen)}
		fpBytes := float64(batch*seqLen*headsN) * fpToken
		fpKernel := dev.AttentionKernel(fpBytes, false, 1)
		genExec := dev.LinearLayers(weights, batch)
		fpStep := genExec + fpKernel
		for _, prec := range []quant.Precision{quant.K8V8, quant.K8V4, quant.K4V2} {
			qBytes := float64(batch*seqLen*headsN) * float64(prec.TokenBytes(dim))
			qKernel := dev.AttentionKernel(qBytes, true, 1)
			kRow = append(kRow, fmt.Sprintf("%.2fx", float64(fpKernel)/float64(qKernel)))
			qStep := genExec + qKernel
			eRow = append(eRow, fmt.Sprintf("%.2fx", float64(fpStep)/float64(qStep)))
		}
		kernelT.AddRow(kRow...)
		e2eT.AddRow(eRow...)
	}
	return []*Table{kernelT, e2eT}
}
