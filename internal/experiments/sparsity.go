package experiments

import (
	"fmt"

	"diffkv/internal/mathx"
	"diffkv/internal/stats"
	"diffkv/internal/synth"
)

// Fig2 reproduces "Distribution of attention score and value vector norm in
// Llama3-8B": CDFs of per-token attention scores and value norms for three
// representative layers, plus the orders-of-magnitude summary backing the
// paper's claim (scores span ~7 orders, norms ≤ 2).
func Fig2(o Opts) []*Table {
	o.norm()
	model := synth.Llama3_8B
	layers := []int{0, 15, 31}
	root := mathx.NewRNG(o.Seed)
	seqs := 24
	seqLen := 512
	if o.Fast {
		seqs, seqLen = 8, 256
	}

	cdfT := &Table{
		Title:  "Fig 2: attention score vs value norm CDF (Llama3-8B)",
		Header: []string{"series", "p10", "p25", "p50", "p75", "p90", "orders-of-magnitude"},
		Notes:  "scores span far more orders of magnitude than value norms",
	}
	for _, layer := range layers {
		// per-sequence samples fan out across the worker pool and are
		// concatenated in sequence order
		seqScores := make([][]float64, seqs)
		seqNorms := make([][]float64, seqs)
		layer := layer
		o.forEach(seqs, func(s int) {
			rng := root.SplitAt(uint64(layer*1000 + s))
			prof := synth.Profile(model, layer, s%model.KVHeads, 1, rng)
			h := synth.GenHead(model, prof, seqLen, rng.SplitAt(1))
			q := h.Query(rng)
			for _, sc := range h.Scores(q, seqLen) {
				seqScores[s] = append(seqScores[s], float64(sc))
			}
			for _, v := range h.Vals {
				seqNorms[s] = append(seqNorms[s], float64(mathx.Norm2(v)))
			}
		})
		var scores, norms []float64
		for s := 0; s < seqs; s++ {
			scores = append(scores, seqScores[s]...)
			norms = append(norms, seqNorms[s]...)
		}
		// fixed series order (a map iteration here would make row order
		// nondeterministic across runs)
		for _, series := range []struct {
			name   string
			sample []float64
		}{{"score", scores}, {"v-norm", norms}} {
			cdf := stats.NewCDF(series.sample)
			cdfT.AddRow(
				fmt.Sprintf("%s-layer-%d", series.name, layer),
				fmt.Sprintf("%.2e", stats.Quantile(series.sample, 0.10)),
				fmt.Sprintf("%.2e", stats.Quantile(series.sample, 0.25)),
				fmt.Sprintf("%.2e", stats.Quantile(series.sample, 0.50)),
				fmt.Sprintf("%.2e", stats.Quantile(series.sample, 0.75)),
				fmt.Sprintf("%.2e", stats.Quantile(series.sample, 0.90)),
				f1(cdf.OrdersOfMagnitude()),
			)
		}
	}
	return []*Table{cdfT}
}

// Fig3 reproduces "Per-token attention scores in the 8th layer of
// Llama3-8B": the heavy-tailed per-token score series of one sequence,
// summarized as a down-sampled series plus tail statistics.
func Fig3(o Opts) []*Table {
	o.norm()
	model := synth.Llama3_8B
	rng := mathx.NewRNG(o.Seed + 3)
	n := 2048
	if o.Fast {
		n = 512
	}
	prof := synth.Profile(model, 8, 0, 1, rng)
	h := synth.GenHead(model, prof, n, rng.SplitAt(1))
	q := h.Query(rng)
	scores := h.Scores(q, n)

	series := &Table{
		Title:  "Fig 3: per-token attention scores (layer 8, one sequence)",
		Header: []string{"token-range", "mean-score", "max-score"},
	}
	buckets := 16
	per := n / buckets
	for b := 0; b < buckets; b++ {
		var sum, maxV float64
		for j := b * per; j < (b+1)*per && j < n; j++ {
			s := float64(scores[j])
			sum += s
			if s > maxV {
				maxV = s
			}
		}
		series.AddRow(
			fmt.Sprintf("%d-%d", b*per, (b+1)*per-1),
			fmt.Sprintf("%.2e", sum/float64(per)),
			fmt.Sprintf("%.2e", maxV),
		)
	}
	var sample []float64
	for _, s := range scores {
		sample = append(sample, float64(s))
	}
	series.Notes = fmt.Sprintf("p50=%.2e p99=%.2e max=%.2e — a few tokens dominate",
		stats.Quantile(sample, 0.5), stats.Quantile(sample, 0.99), stats.Quantile(sample, 1))
	return []*Table{series}
}

// Fig4 reproduces "Number of critical tokens per layer in Llama3-8B":
// tokens needed to preserve 95% of attention mass, mean ± std across
// requests, aggregated over KV heads, per layer.
func Fig4(o Opts) []*Table {
	o.norm()
	model := synth.Llama3_8B
	root := mathx.NewRNG(o.Seed + 4)
	n := 2048
	reqs := 12
	if o.Fast {
		n, reqs = 512, 4
	}
	t := &Table{
		Title:  "Fig 4: critical tokens per layer @95% attention mass (Llama3-8B, seq 2048)",
		Header: []string{"layer", "mean-critical-tokens", "std-across-requests"},
		Notes:  "sparsity varies substantially across layers",
	}
	// one row per layer; layers fan out across the worker pool and rows are
	// emitted in layer order
	type layerRow struct{ mean, std float64 }
	rows := make([]layerRow, model.Layers)
	o.forEach(model.Layers, func(layer int) {
		var s stats.Summary
		for r := 0; r < reqs; r++ {
			rng := root.SplitAt(uint64(layer*100 + r))
			var perReq stats.Summary
			for head := 0; head < model.KVHeads; head++ {
				prof := synth.Profile(model, layer, head, 1, rng.SplitAt(uint64(head)))
				scores := synth.ScoreSeries(prof, n, rng.SplitAt(uint64(1000+head)))
				perReq.Add(float64(synth.CriticalTokens(scores, 0.95)))
			}
			s.Add(perReq.Mean())
		}
		rows[layer] = layerRow{s.Mean(), s.Std()}
	})
	for layer, r := range rows {
		t.AddRow(fmt.Sprintf("%d", layer), f1(r.mean), f1(r.std))
	}
	return []*Table{t}
}

// Fig5 reproduces "Number of critical tokens per KV head in Llama3-8B":
// per-head means with cross-request std for three representative layers.
func Fig5(o Opts) []*Table {
	o.norm()
	model := synth.Llama3_8B
	root := mathx.NewRNG(o.Seed + 5)
	n := 2048
	reqs := 16
	if o.Fast {
		n, reqs = 512, 6
	}
	t := &Table{
		Title:  "Fig 5: critical tokens per KV head @95% attention mass (Llama3-8B)",
		Header: []string{"layer", "head", "mean-critical-tokens", "std-across-requests"},
		Notes:  "heads within a layer differ; the same head varies across requests",
	}
	// the (layer, head) grid fans out across the worker pool; rows are
	// emitted in grid order
	layers := []int{0, 15, 31}
	type cellRow struct{ mean, std float64 }
	rows := make([]cellRow, len(layers)*model.KVHeads)
	o.forEach(len(rows), func(i int) {
		layer := layers[i/model.KVHeads]
		head := i % model.KVHeads
		var s stats.Summary
		for r := 0; r < reqs; r++ {
			rng := root.SplitAt(uint64(layer*10000 + head*100 + r))
			prof := synth.Profile(model, layer, head, 1, rng)
			scores := synth.ScoreSeries(prof, n, rng.SplitAt(1))
			s.Add(float64(synth.CriticalTokens(scores, 0.95)))
		}
		rows[i] = cellRow{s.Mean(), s.Std()}
	})
	for i, r := range rows {
		t.AddRow(fmt.Sprintf("%d", layers[i/model.KVHeads]), fmt.Sprintf("%d", i%model.KVHeads),
			f1(r.mean), f1(r.std))
	}
	return []*Table{t}
}
