// Package experiments contains one harness per table and figure of the
// paper's evaluation (§7). Each harness runs the relevant modules and
// returns formatted tables whose rows/series correspond to what the paper
// plots; cmd/diffkv-bench prints them and bench_test.go wraps each in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a formatted result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Opts tune experiment cost.
type Opts struct {
	// Reps is the number of repetitions averaged (paper: 5; default 3).
	Reps int
	// Fast reduces sweep resolution and sample counts for benchmarks. It
	// also skips host wall-clock measurements (abl-scan) so fast-mode
	// output is fully deterministic at a fixed seed.
	Fast bool
	// Seed is the root seed.
	Seed uint64
	// Workers bounds the worker pool independent reps/configs fan out
	// across: 0 means runtime.NumCPU(), 1 forces sequential execution.
	// Results are bit-identical for every value (see forEach).
	Workers int
}

func (o *Opts) norm() {
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
