package experiments

import (
	"fmt"
	"sort"
)

// Runner is one experiment harness.
type Runner func(Opts) []*Table

// Registry maps experiment IDs (paper artifact names) to their harnesses.
var Registry = map[string]Runner{
	"fig2":  Fig2,
	"fig3":  Fig3,
	"fig4":  Fig4,
	"fig5":  Fig5,
	"fig8":  Fig8,
	"fig9":  Fig9,
	"fig10": Fig10,
	"fig11": Fig11,
	"fig12": Fig12,
	"fig13": Fig13,
	"fig14": Fig14,
	"fig15": Fig15,
	"fig16": Fig16,
	"fig17": Fig17,
	"tab1":  Table1,
	"tab2":  Table2,
	"tab3":  Table3,
	// beyond the paper: multi-instance cluster serving (DESIGN.md §7)
	"cluster-routing": ClusterRouting,
	// beyond the paper: host-memory KV offload under oversubscription
	// (DESIGN.md §9)
	"offload": Offload,
	// beyond the paper: fault injection and failure recovery (DESIGN.md
	// §13) — swap-recovery vs recompute-recovery goodput under crashes
	"chaos": Chaos,
	// beyond the paper: prefill/decode disaggregation with compressed
	// cross-instance KV transfer (DESIGN.md §16)
	"disagg": Disagg,
	// design-choice ablations beyond the paper's headline results
	// (DESIGN.md §6)
	"abl-scan":     AblationScan,
	"abl-tables":   AblationTables,
	"abl-window":   AblationWindow,
	"abl-pagesize": AblationPageSize,
	"abl-levels":   AblationThreeLevels,
	"abl-perhead":  AblationPerHead,
	"abl-devices":  AblationDevices,
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, o Opts) ([]*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(o), nil
}
