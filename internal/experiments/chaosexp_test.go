package experiments

import (
	"testing"

	"diffkv/internal/offload"
)

// The chaos experiment's headline claim: with crashes in play, host-tier
// swap recovery preserves work that recompute recovery regenerates, so
// goodput is strictly better and the swap-recovery path visibly ran.
func TestChaosSwapBeatsRecomputeGoodput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const rate, n, seed = 3.0, 36, 42
	rec := ChaosRun(rate, offload.PolicyRecompute, n, seed)
	swp := ChaosRun(rate, offload.PolicySwap, n, seed)
	if rec.Crashes == 0 || swp.Crashes == 0 {
		t.Fatalf("no crashes injected: recompute %d, swap %d", rec.Crashes, swp.Crashes)
	}
	if rec.Crashes != swp.Crashes {
		t.Fatalf("crash timelines diverged: recompute %d, swap %d", rec.Crashes, swp.Crashes)
	}
	if swp.SwapRecovered == 0 {
		t.Fatal("swap recovery never carried a sequence through a crash")
	}
	if swp.GoodputReqPerSec <= rec.GoodputReqPerSec {
		t.Fatalf("swap recovery goodput %.3f req/s not above recompute %.3f req/s",
			swp.GoodputReqPerSec, rec.GoodputReqPerSec)
	}
}
