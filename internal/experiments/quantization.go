package experiments

import (
	"fmt"

	"diffkv/internal/attention"
	"diffkv/internal/core"
	"diffkv/internal/mathx"
	"diffkv/internal/policy"
	"diffkv/internal/quant"
	"diffkv/internal/stats"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

// uniformErr measures the mean attention-output error of one uniform
// precision configuration on a model under a benchmark's sparsity profile.
// Reps fan out across o's worker pool; each rep derives its own RNG stream.
func uniformErr(model *synth.ModelConfig, bench *workload.Benchmark, prec quant.Precision, reps int, root *mathx.RNG, o Opts) float64 {
	n := 384
	errs := make([]float64, reps)
	o.forEach(reps, func(rep int) {
		rng := root.SplitAt(uint64(rep))
		prof := synth.Profile(model, (rep*7)%model.Layers, rep%model.KVHeads, bench.DensityScale, rng)
		h := synth.GenHead(model, prof, n, rng.SplitAt(1))
		q := h.Query(rng)
		var sc attention.Scratch
		ref := attention.Reference(q, h.Keys, h.Vals)
		res := sc.Uniform(q, h.Keys, h.Vals, prec)
		errs[rep] = attention.OutputError(res.Output, ref.Output)
	})
	return meanOf(errs)
}

// Fig8 reproduces "Accuracy of differentiated KV quantization": FP16 vs
// K8V4/K4V8/K8V2/K4V2/K2V4/K4V1 applied uniformly, on GSM8K and
// HumanEval+, across Llama3-8B, Qwen2.5-7B and Llama3-70B.
func Fig8(o Opts) []*Table {
	o.norm()
	models := []*synth.ModelConfig{synth.Llama3_8B, synth.Qwen25_7B, synth.Llama3_70B}
	precs := []quant.Precision{quant.FP16, quant.K8V4, quant.K4V8, quant.K8V2, quant.K4V2, quant.K2V4, quant.K4V1}
	benches := []*workload.Benchmark{workload.GSM8K, workload.HumanEvalPlus}
	reps := 4 * o.Reps
	if o.Fast {
		reps = 4
	}
	root := mathx.NewRNG(o.Seed + 8)

	var out []*Table
	for _, bench := range benches {
		t := &Table{
			Title:  fmt.Sprintf("Fig 8: differentiated KV quantization — %s accuracy", bench.Name),
			Header: append([]string{"model"}, precNames(precs)...),
			Notes:  "keys need more bits than values: KxVy beats its mirror KyVx",
		}
		for _, model := range models {
			row := []string{model.Name}
			for _, p := range precs {
				e := 0.0
				if p != quant.FP16 {
					e = uniformErr(model, bench, p, reps, root.SplitAt(seedOf(model.Name, bench.Name, p.String())), o)
				}
				row = append(row, f1(bench.Accuracy(model.Name, e)))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}

func precNames(ps []quant.Precision) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	return out
}

func seedOf(parts ...string) uint64 {
	var s uint64 = 1469598103934665603
	for _, p := range parts {
		for _, c := range p {
			s = (s ^ uint64(c)) * 1099511628211
		}
	}
	return s
}

// Fig9 reproduces "Accuracy of dynamic vs static sparsity": pruning a
// target fraction of tokens either with a shared global significance
// threshold (per-head dynamic budgets — DiffKV's approach) or with a
// uniform per-head budget (SnapKV-style static), across pruned fractions.
func Fig9(o Opts) []*Table {
	o.norm()
	models := []*synth.ModelConfig{synth.Llama3_8B, synth.Qwen25_7B}
	benches := []*workload.Benchmark{workload.GSM8K, workload.HumanEvalPlus}
	// the paper sweeps 0-80%; our retention curve is forgiving below its
	// half-point, so the deeper end of the sweep is where the dynamic vs
	// static gap becomes visible
	fracs := []float64{0.25, 0.5, 0.75, 0.85, 0.92}
	if o.Fast {
		fracs = []float64{0.5, 0.85}
	}
	heads := 10
	n := 512
	probes := 6
	reps := o.Reps
	root := mathx.NewRNG(o.Seed + 9)

	var out []*Table
	for _, model := range models {
		for _, bench := range benches {
			t := &Table{
				Title:  fmt.Sprintf("Fig 9: dynamic vs static sparsity — %s %s", model.Name, bench.Name),
				Header: []string{"pruned-frac", "dynamic-acc", "static-acc"},
				Notes:  "dynamic per-head budgets dominate uniform budgets",
			}
			for _, frac := range fracs {
				// reps fan out across the worker pool; per-rep results land
				// in their own buckets and are concatenated in rep order
				repDyn := make([][]float64, reps)
				repStat := make([][]float64, reps)
				o.forEach(reps, func(rep int) {
					rng := root.SplitAt(seedOf(model.Name, bench.Name) + uint64(rep))
					// one request: heads spanning sparse to dense profiles
					hs := make([]headEval, heads)
					for i := range hs {
						prof := synth.Profile(model, (i*3)%model.Layers, i%model.KVHeads, bench.DensityScale, rng.SplitAt(uint64(i)))
						data := synth.GenHead(model, prof, n, rng.SplitAt(uint64(100+i)))
						hs[i] = headEval{data: data, sig: data.CheapSignificance(model, rng.SplitAt(uint64(200+i)))}
					}
					// dynamic: one global threshold hits the aggregate target
					keepDyn := dynamicKeepSets(hs, frac)
					// static: every head prunes exactly frac; per-head errors
					// blend mean with tail (pruning errors are spiky: a query
					// that needs an evicted token fails hard)
					for i, h := range hs {
						var dSum, sSum float64
						dSamples := make([]float64, probes)
						sSamples := make([]float64, probes)
						k := int(float64(n) * (1 - frac))
						sIdx := topK(h.sig, k)
						for pr := 0; pr < probes; pr++ {
							q := h.data.Query(rng.SplitAt(uint64(300 + i*100 + pr)))
							ref := attention.Reference(q, h.data.Keys, h.data.Vals)
							dSamples[pr] = attention.OutputError(subsetAttn(q, h.data, keepDyn[i]), ref.Output)
							sSamples[pr] = attention.OutputError(subsetAttn(q, h.data, sIdx), ref.Output)
							dSum += dSamples[pr]
							sSum += sSamples[pr]
						}
						repDyn[rep] = append(repDyn[rep],
							0.5*dSum/float64(probes)+0.5*stats.Quantile(dSamples, 0.9))
						repStat[rep] = append(repStat[rep],
							0.5*sSum/float64(probes)+0.5*stats.Quantile(sSamples, 0.9))
					}
				})
				var dynErrs, statErrs []float64
				for rep := 0; rep < reps; rep++ {
					dynErrs = append(dynErrs, repDyn[rep]...)
					statErrs = append(statErrs, repStat[rep]...)
				}
				blend := func(errs []float64) float64 {
					var mean float64
					for _, e := range errs {
						mean += e
					}
					mean /= float64(len(errs))
					return 0.5*mean + 0.5*stats.Quantile(errs, 0.9)
				}
				t.AddRow(pct(frac),
					f1(bench.Accuracy(model.Name, blend(dynErrs))),
					f1(bench.Accuracy(model.Name, blend(statErrs))))
			}
			out = append(out, t)
		}
	}
	return out
}

// headEval bundles one head's tensors with its significance scores.
type headEval struct {
	data *synth.HeadData
	sig  []float32
}

// dynamicKeepSets finds one global normalized-significance threshold such
// that the aggregate pruned fraction across heads hits the target, then
// returns each head's kept indices (per-head counts differ — the dynamic
// sparsity DiffKV exploits).
func dynamicKeepSets(hs []headEval, frac float64) [][]int {
	var all []float32
	for _, h := range hs {
		all = append(all, h.sig...)
	}
	k := int(float64(len(all)) * frac) // number pruned
	if k <= 0 {
		k = 1
	}
	// threshold = k-th smallest significance
	cp := append([]float32(nil), all...)
	quickSelectAsc(cp)
	thr := cp[k-1]
	out := make([][]int, len(hs))
	for i, h := range hs {
		var idx []int
		for j, s := range h.sig {
			if s > thr {
				idx = append(idx, j)
			}
		}
		if len(idx) == 0 {
			idx = []int{len(h.sig) - 1}
		}
		out[i] = idx
	}
	return out
}

func quickSelectAsc(x []float32) {
	// full sort is fine at experiment scale
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func topK(sig []float32, k int) []int {
	n := len(sig)
	if k >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// selection of k best by simple partial sort
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if sig[order[j]] > sig[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	kept := append([]int(nil), order[:k]...)
	// sort ascending positions
	for i := 1; i < len(kept); i++ {
		for j := i; j > 0 && kept[j] < kept[j-1]; j-- {
			kept[j], kept[j-1] = kept[j-1], kept[j]
		}
	}
	return kept
}

func subsetAttn(q []float32, data *synth.HeadData, idx []int) []float32 {
	keys := make([][]float32, len(idx))
	vals := make([][]float32, len(idx))
	for i, j := range idx {
		keys[i] = data.Keys[j]
		vals[i] = data.Vals[j]
	}
	return attention.Reference(q, keys, vals).Output
}

// Fig10 reproduces the (αh, αl) calibration on the MATH training split:
// accuracy as each threshold sweeps its profiled range, with the paper's
// chosen value marked.
func Fig10(o Opts) []*Table {
	o.norm()
	type panel struct {
		model  *synth.ModelConfig
		sweep  string // "alphaH" or "alphaL"
		chosen float64
	}
	panels := []panel{
		{synth.Llama3_8B, "alphaH", 1},
		{synth.Llama3_8B, "alphaL", 0.02},
		{synth.Qwen25_7B, "alphaL", 0.04},
		{synth.Llama3_70B, "alphaH", 1},
		{synth.Qwen25_32B, "alphaH", 3},
		{synth.QwQ_32B, "alphaH", 3},
	}
	bench := workload.MATHTrain
	promptLen, genLen := bench.EvalLen()
	if o.Fast {
		promptLen, genLen = 192, 160
	}
	seqs := o.Reps
	var out []*Table
	for _, p := range panels {
		t := &Table{
			Title:  fmt.Sprintf("Fig 10: calibration — %s sweep %s (MATH-train)", p.model.Name, p.sweep),
			Header: []string{p.sweep, "accuracy", "mem%", "chosen"},
		}
		var values []float64
		if p.sweep == "alphaH" {
			values = []float64{1, 2, 3, 4, 5}
		} else {
			values = []float64{0.02, 0.04, 0.06, 0.08, 0.1}
		}
		if o.Fast {
			values = values[:3]
		}
		base := policy.ParamsForModel(p.model.Name)
		for _, v := range values {
			params := base
			if p.sweep == "alphaH" {
				params.AlphaH = v
			} else {
				params.AlphaL = v
			}
			acc, mem := diffKVAccuracy(p.model, bench, params, promptLen, genLen, seqs, o.Seed+10, o)
			mark := ""
			if v == p.chosen {
				mark = "<- chosen"
			}
			t.AddRow(f2(v), f1(acc), pct(mem), mark)
		}
		out = append(out, t)
	}
	return out
}

// diffKVAccuracy runs the full DiffKV engine on a benchmark profile and
// maps the measured error through the benchmark's accuracy model. Sequences
// fan out across the worker pool (the engine is stateless across runs).
func diffKVAccuracy(model *synth.ModelConfig, bench *workload.Benchmark, params policy.Params, promptLen, genLen, seqs int, seed uint64, o Opts) (acc, mem float64) {
	eng, err := core.NewEngine(core.Config{
		Model: model, Params: params,
		DensityScale: bench.DensityScale,
		Seed:         seed,
	})
	if err != nil {
		panic(err)
	}
	errs := make([]float64, seqs)
	mems := make([]float64, seqs)
	o.forEach(seqs, func(s int) {
		r, err := eng.RunSequence(promptLen, genLen, uint64(s)+1)
		if err != nil {
			panic(err)
		}
		errs[s] = r.OutputErr
		mems[s] = r.MemFrac
	})
	return bench.Accuracy(model.Name, meanOf(errs)), meanOf(mems)
}
