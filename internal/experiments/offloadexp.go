package experiments

import (
	"fmt"

	"diffkv/internal/baselines"
	"diffkv/internal/gpusim"
	"diffkv/internal/offload"
	"diffkv/internal/quant"
	"diffkv/internal/serving"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

// OffloadReserves returns the oversubscription levels (MemoryReserve
// fractions shrinking the KV budget) the offload experiment sweeps — at
// least two, per the acceptance criterion. Shared with the BENCH_PR3
// snapshot.
func OffloadReserves() []float64 { return []float64{0.975, 0.985} }

// OffloadRun executes one cell of the offload grid: a closed-loop
// chain-of-thought workload (near-limit generations, the paper's Fig. 17
// setting) at the given oversubscription level under the given recovery
// policy. Every admitted sequence is deep into generation when memory
// pressure hits, so a recompute victim throws away thousands of tokens
// while a swap victim resumes where it stopped. Shared with
// cmd/diffkv-bench's BENCH_PR3 snapshot so the experiment table and the
// checked-in record measure identical runs.
func OffloadRun(reserve float64, policy string, batch, maxGen int, seed uint64) serving.Result {
	var host int64
	if policy != offload.PolicyRecompute {
		host = 4 << 30
	}
	cfg := serving.Config{
		Model:   synth.Llama3_8B,
		Cluster: gpusim.NewCluster(gpusim.L40(), 1),
		Traits:  baselines.TraitsDiffKV(0.3), UseManager: true,
		HiFrac: 0.25, LoFrac: 0.3,
		MemoryReserve:   reserve,
		PreemptPolicy:   policy,
		HostMemoryBytes: host,
		MaxGenLen:       maxGen,
		Seed:            seed,
	}
	eng, err := serving.NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	// same seed across policies at a given level: identical request sets,
	// fair comparison
	reqs := workload.NewRequestGen(workload.MATH, maxGen,
		seed+seedOf("offload", fmt.Sprintf("%.3f", reserve))).CoTBatch(batch)
	res, err := eng.Run(reqs)
	if err != nil {
		panic(err)
	}
	if res.Completed != len(reqs) {
		panic(fmt.Sprintf("offload: %s at reserve %.3f completed %d of %d",
			policy, reserve, res.Completed, len(reqs)))
	}
	return res
}

// Offload goes beyond the paper's single-instance evaluation (DESIGN.md
// §9): KV memory oversubscription with swap-instead-of-recompute
// preemption. The first table compares recovery policies at two
// oversubscription levels — swap preserves generated work that recompute
// throws away, so useful-token goodput rises while PCIe traffic appears in
// the breakdown. The second table isolates why compression composes with
// offload: a K4V2-resident sequence crosses PCIe in a fraction of the
// FP16 bytes.
func Offload(o Opts) []*Table {
	o.norm()
	reserves := OffloadReserves()
	batch, maxGen := 20, 2048
	if o.Fast {
		batch, maxGen = 16, 1536
	}
	policies := offload.Policies()

	t1 := &Table{
		Title: "Offload: preemption recovery under KV oversubscription — Llama3-8B, L40, MATH CoT closed loop",
		Header: []string{"kv-budget", "policy", "goodput(tok/s)", "throughput(tok/s)",
			"preempts", "swaps", "swap-MB", "xfer(ms)", "stall(ms)", "thrash"},
		Notes: "goodput counts completed requests' tokens only; recompute regenerates what it discarded",
	}
	results := make([]serving.Result, len(reserves)*len(policies))
	o.forEach(len(results), func(i int) {
		results[i] = OffloadRun(reserves[i/len(policies)], policies[i%len(policies)], batch, maxGen, o.Seed)
	})
	for i, res := range results {
		reserve := reserves[i/len(policies)]
		m := res.Offload
		t1.AddRow(pct(1-reserve), policies[i%len(policies)],
			f1(res.GoodputTokensPerSec), f1(res.Throughput),
			fmt.Sprintf("%d", res.Preemptions), fmt.Sprintf("%d", m.SwapOuts),
			f1(float64(m.SwapOutBytes)/(1<<20)),
			f1(res.OffloadTransferSeconds*1e3), f1(res.OffloadStallSeconds*1e3),
			fmt.Sprintf("%d", m.ThrashEvents))
	}

	t2 := &Table{
		Title:  "Offload: PCIe bytes to swap one 1024-token sequence (per KV head, dim 128)",
		Header: []string{"resident tier", "bytes/token", "seq-KB", "PCIe(us)"},
		Notes:  "DiffKV's compression directly cuts swap cost; compress-deeper shrinks it further",
	}
	for _, r := range OffloadSwapBytes() {
		t2.AddRow(r.Tier, f1(r.BytesPerToken), f1(float64(r.SeqBytes)/1024), f1(r.PCIeUs))
	}

	return []*Table{t1, t2}
}

// SwapBytesRow is one tier's PCIe swap cost for a 1024-token sequence.
type SwapBytesRow struct {
	Tier          string  `json:"tier"`
	BytesPerToken float64 `json:"bytes_per_token"`
	SeqBytes      int     `json:"seq_bytes"`
	PCIeUs        float64 `json:"pcie_us"`
}

// OffloadSwapBytes computes the per-tier PCIe cost of swapping one
// 1024-token sequence (per KV head, dim 128, L40 PCIe) — shared between
// the offload experiment table and the BENCH_PR3 perf snapshot so both
// record identical numbers.
func OffloadSwapBytes() []SwapBytesRow {
	dev := gpusim.L40()
	row := func(name string, hi, lo quant.Precision, hiTok, loTok int) SwapBytesRow {
		seqBytes := hiTok*hi.TokenBytes(128) + loTok*lo.TokenBytes(128)
		return SwapBytesRow{
			Tier:          name,
			BytesPerToken: float64(seqBytes) / float64(hiTok+loTok),
			SeqBytes:      seqBytes,
			PCIeUs:        float64(dev.PCIeTransfer(float64(seqBytes))),
		}
	}
	return []SwapBytesRow{
		row("FP16", quant.FP16, quant.FP16, 1024, 0),
		row("K8V4+K4V2 (DiffKV mix)", quant.K8V4, quant.K4V2, 512, 512),
		row("K4V2 (compress-swap)", quant.K8V4, quant.K4V2, 0, 1024),
	}
}
