package experiments

import (
	"fmt"

	"diffkv/internal/baselines"
	"diffkv/internal/gpusim"
	"diffkv/internal/serving"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

// gpusFor returns the paper's tensor-parallel degree per model (§7.3).
func gpusFor(model *synth.ModelConfig) int {
	switch model.Name {
	case "Llama3-70B":
		return 4
	case "Qwen2.5-32B", "QwQ-32B":
		return 2
	default:
		return 1
	}
}

// genLimitFor returns the paper's max generation length per model (§7.3).
func genLimitFor(model *synth.ModelConfig) int {
	switch model.Name {
	case "QwQ-32B":
		return 16384
	case "Qwen2.5-32B":
		return 8192
	default:
		return 4096
	}
}

// Fig14 reproduces the latency breakdown of DiffKV: per-component
// percentages (scheduler / memory management / KV compressor / model
// execution) for prompt and generation phases at batch 8 and 32.
func Fig14(o Opts) []*Table {
	o.norm()
	model := synth.Llama3_8B
	t := &Table{
		Title:  "Fig 14: DiffKV latency breakdown (% of phase step time)",
		Header: []string{"phase", "batch", "scheduler", "mem-mgmt", "compressor", "model-exec"},
		Notes:  "on-GPU compaction keeps memory management under 1%",
	}
	for _, batch := range []int{8, 32} {
		reqs := workload.NewRequestGen(workload.MATH, 1024, o.Seed+uint64(batch)).Batch(batch)
		eng, err := serving.NewEngine(serving.Config{
			Model: model, Cluster: gpusim.NewCluster(gpusim.L40(), 1),
			Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
			HiFrac: 0.2, LoFrac: 0.25, Seed: o.Seed,
		})
		if err != nil {
			panic(err)
		}
		res, err := eng.Run(reqs)
		if err != nil {
			panic(err)
		}
		addPhase := func(phase string, bd serving.StepBreakdown) {
			tot := float64(bd.Total())
			if tot == 0 {
				return
			}
			t.AddRow(phase, fmt.Sprintf("%d", batch),
				pct(float64(bd.Scheduler)/tot), pct(float64(bd.MemMgmt)/tot),
				pct(float64(bd.Compressor)/tot), pct(float64(bd.ModelExec)/tot))
		}
		addPhase("prompt", res.Prompt)
		addPhase("generation", res.Gen)
	}
	return []*Table{t}
}

// Fig16 reproduces the dynamic-workload comparison: average per-token
// latency vs Poisson request rate for vLLM and DiffKV on Llama3-8B and
// Qwen2.5-32B.
func Fig16(o Opts) []*Table {
	o.norm()
	type panel struct {
		model *synth.ModelConfig
		rates []float64
	}
	panels := []panel{
		{synth.Llama3_8B, []float64{0.1, 0.2, 0.5, 1, 2, 5, 10}},
		{synth.Qwen25_32B, []float64{0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 4, 6}},
	}
	horizon := 240.0
	if o.Fast {
		panels[0].rates = []float64{0.5, 2}
		panels[1].rates = []float64{0.05, 0.2}
		horizon = 90
	}
	var out []*Table
	for _, p := range panels {
		t := &Table{
			Title:  fmt.Sprintf("Fig 16: avg per-token latency vs request rate — %s", p.model.Name),
			Header: []string{"rate(req/s)", "vLLM(s/token)", "DiffKV(s/token)"},
			Notes:  "DiffKV sustains higher load before queueing blows up",
		}
		gpus := gpusFor(p.model)
		// every (rate, system) run is an independent simulation: fan the
		// whole grid out across the worker pool, then emit rows in order
		cells := make([]string, 2*len(p.rates))
		o.forEach(len(cells), func(i int) {
			rate := p.rates[i/2]
			diff := i%2 == 1
			reqs := workload.NewRequestGen(workload.GSM8K, 1024, o.Seed+seedOf(p.model.Name)+uint64(rate*100)).
				Poisson(rate, horizon)
			cfg := serving.Config{
				Model: p.model, Cluster: gpusim.NewCluster(gpusim.L40(), gpus),
				Traits: baselines.TraitsVLLM, Seed: o.Seed,
			}
			if diff {
				// traits-mode DiffKV: at saturation the page manager's
				// per-step bookkeeping dominates harness runtime while
				// its simulated time contribution is <1% (Fig. 14);
				// capacity and bandwidth effects are what Fig. 16
				// measures.
				cfg.Traits = baselines.TraitsDiffKV(0.3)
			}
			eng, err := serving.NewEngine(cfg)
			if err != nil {
				panic(err)
			}
			res, err := eng.Run(reqs)
			if err != nil {
				panic(err)
			}
			if res.Completed == 0 {
				cells[i] = "-"
			} else {
				cells[i] = f3(res.AvgPerTokenLatency)
			}
		})
		for ri, rate := range p.rates {
			t.AddRow(f2(rate), cells[2*ri], cells[2*ri+1])
		}
		out = append(out, t)
	}
	return out
}

// Fig17 reproduces the throughput and batch-size comparison normalized to
// vLLM: Quest, SnapKV, Atom, KIVI and DiffKV across the five serving
// models on the MATH workload.
func Fig17(o Opts) []*Table {
	o.norm()
	models := []*synth.ModelConfig{
		synth.Llama3_8B, synth.Llama3_70B, synth.Qwen25_7B, synth.Qwen25_32B, synth.QwQ_32B,
	}
	reserve := 0.1
	// request counts scaled to each model's vLLM batch capacity so memory
	// binds without inflating harness runtime on long-generation models
	nReqsFor := func(m *synth.ModelConfig) int {
		switch m.Name {
		case "QwQ-32B":
			return 48
		case "Qwen2.5-32B":
			return 80
		case "Llama3-70B":
			return 100
		default:
			return 150
		}
	}
	if o.Fast {
		models = []*synth.ModelConfig{synth.Llama3_8B}
		// shrink the KV budget so memory binds even at the reduced
		// request count
		reserve = 0.6
	}
	thT := &Table{
		Title:  "Fig 17a: throughput normalized to vLLM (MATH workload)",
		Header: []string{"model", "Quest", "SnapKV", "Atom", "KIVI", "DiffKV"},
		Notes:  "compression that frees memory AND keeps an efficient runtime wins",
	}
	bT := &Table{
		Title:  "Fig 17b: achieved batch size normalized to vLLM",
		Header: []string{"model", "vLLM-batch", "Quest", "SnapKV", "Atom", "KIVI", "DiffKV"},
	}
	for _, model := range models {
		gpus := gpusFor(model)
		limit := genLimitFor(model)
		nReqs := nReqsFor(model)
		if o.Fast {
			nReqs = 48
		}
		runOne := func(traits baselines.ServingTraits, useMgr bool) serving.Result {
			reqs := workload.NewRequestGen(workload.MATH, limit, o.Seed+seedOf("f17", model.Name)).CoTBatch(nReqs)
			cfg := serving.Config{
				Model: model, Cluster: gpusim.NewCluster(gpusim.L40(), gpus),
				Traits: traits, MaxGenLen: limit, Seed: o.Seed,
				MemoryReserve: reserve,
			}
			if useMgr {
				cfg.UseManager = true
				cfg.HiFrac, cfg.LoFrac = 0.18, 0.22
			}
			eng, err := serving.NewEngine(cfg)
			if err != nil {
				panic(err)
			}
			res, err := eng.Run(reqs)
			if err != nil {
				panic(err)
			}
			return res
		}
		// the six systems are independent simulations: fan out, fixed slots
		systems := []struct {
			traits baselines.ServingTraits
			useMgr bool
		}{
			{baselines.TraitsVLLM, false},
			{baselines.TraitsQuest, false},
			{baselines.TraitsSnapKV, false},
			{baselines.TraitsAtom, false},
			{baselines.TraitsKIVI, false},
			{baselines.TraitsDiffKV(0.28), true},
		}
		results := make([]serving.Result, len(systems))
		o.forEach(len(systems), func(i int) {
			results[i] = runOne(systems[i].traits, systems[i].useMgr)
		})
		vllm, quest, snap, atom, kivi, diff :=
			results[0], results[1], results[2], results[3], results[4], results[5]

		norm := func(r serving.Result) string {
			return fmt.Sprintf("%.1fx", r.Throughput/vllm.Throughput)
		}
		thT.AddRow(model.Name, norm(quest), norm(snap), norm(atom), norm(kivi), norm(diff))
		nb := func(r serving.Result) string {
			return fmt.Sprintf("%.1fx", r.AvgBatch/vllm.AvgBatch)
		}
		bT.AddRow(model.Name, f1(vllm.AvgBatch), nb(quest), nb(snap), nb(atom), nb(kivi), nb(diff))
	}
	return []*Table{thT, bT}
}
