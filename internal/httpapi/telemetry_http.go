package httpapi

// Telemetry routes (mounted when Config.Telemetry is set): GET
// /debug/telemetry returns the full telemetry snapshot — per-instance
// occupancy and saturation, merged latency histograms, SLO burn rates
// and the recent alert ring — as one JSON document, and GET
// /debug/telemetry/stream pushes the same snapshot as SSE frames on a
// wall-clock cadence. cmd/diffkv-top renders either.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// handleTelemetry serves GET /debug/telemetry: one snapshot, rendered
// at request time from the center's current state.
func (g *Gateway) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(g.cfg.Telemetry.Snapshot())
}

// streamIntervalBounds clamp the client-supplied ?interval_ms.
const (
	streamIntervalMin     = 100 * time.Millisecond
	streamIntervalMax     = 30 * time.Second
	streamIntervalDefault = time.Second
)

// handleTelemetryStream serves GET /debug/telemetry/stream: snapshot
// frames as SSE, one per interval (?interval_ms, default 1000, clamped
// to [100, 30000]). The stream ends when the client disconnects or the
// loop stops; delivery is pull-based snapshots, so a slow client only
// delays its own frames.
func (g *Gateway) handleTelemetryStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "GET only")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "server_error", "response writer cannot stream")
		return
	}
	interval := streamIntervalDefault
	if s := r.URL.Query().Get("interval_ms"); s != "" {
		ms, err := strconv.Atoi(s)
		if err != nil || ms <= 0 {
			writeError(w, http.StatusBadRequest, "invalid_request_error",
				fmt.Sprintf("bad interval_ms %q", s))
			return
		}
		interval = time.Duration(ms) * time.Millisecond
		if interval < streamIntervalMin {
			interval = streamIntervalMin
		}
		if interval > streamIntervalMax {
			interval = streamIntervalMax
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	send := func() bool {
		data, err := json.Marshal(g.cfg.Telemetry.Snapshot())
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "data: %s\n\n", data)
		flusher.Flush()
		return true
	}
	if !send() {
		return
	}
	for {
		select {
		case <-ticker.C:
			if !send() {
				return
			}
		case <-g.cfg.Loop.Done():
			fmt.Fprint(w, "data: [DONE]\n\n")
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}
