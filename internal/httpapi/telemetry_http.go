package httpapi

// Telemetry routes (mounted when Config.Telemetry is set): GET
// /debug/telemetry returns the full telemetry snapshot — per-instance
// occupancy and saturation, merged latency histograms, SLO burn rates
// and the recent alert ring — as one JSON document, and GET
// /debug/telemetry/stream pushes the same snapshot as SSE frames on a
// wall-clock cadence. cmd/diffkv-top renders either.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"diffkv/internal/serving"
)

// handleTelemetry serves GET /debug/telemetry: one snapshot, rendered
// at request time from the center's current state.
func (g *Gateway) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "GET only")
		return
	}
	doc, err := g.telemetryDoc()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "server_error", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(doc, '\n'))
}

// disaggSection is the /debug/telemetry "disagg" key: pool-split KV
// shipping state derived from the driver, not the telemetry center.
type disaggSection struct {
	Transfers      int              `json:"transfers"`
	KVBytesShipped int64            `json:"kv_bytes_shipped"`
	Links          []serving.KVLink `json:"links,omitempty"`
	Pools          map[string]int   `json:"pools"`
}

// telemetryDoc renders the telemetry snapshot, augmented with a
// "disagg" section from the live driver stats when the cluster is
// disaggregated. The snapshot's own keys are untouched — consumers
// that don't know the extra key (diffkv-top) ignore it.
func (g *Gateway) telemetryDoc() ([]byte, error) {
	data, err := json.Marshal(g.cfg.Telemetry.Snapshot())
	if err != nil {
		return nil, err
	}
	d := g.cfg.Loop.Metrics().Driver
	if !disaggRun(d) {
		return data, nil
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	sec := disaggSection{
		Transfers:      d.KVTransfers,
		KVBytesShipped: d.KVBytesShipped,
		Links:          d.KVShipLinks,
		Pools:          map[string]int{},
	}
	for _, is := range d.PerInstance {
		if is.Role != "" {
			sec.Pools[is.Role]++
		}
	}
	if doc["disagg"], err = json.Marshal(sec); err != nil {
		return nil, err
	}
	return json.Marshal(doc)
}

// streamIntervalBounds clamp the client-supplied ?interval_ms.
const (
	streamIntervalMin     = 100 * time.Millisecond
	streamIntervalMax     = 30 * time.Second
	streamIntervalDefault = time.Second
)

// handleTelemetryStream serves GET /debug/telemetry/stream: snapshot
// frames as SSE, one per interval (?interval_ms, default 1000, clamped
// to [100, 30000]). The stream ends when the client disconnects or the
// loop stops; delivery is pull-based snapshots, so a slow client only
// delays its own frames.
func (g *Gateway) handleTelemetryStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "GET only")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "server_error", "response writer cannot stream")
		return
	}
	interval := streamIntervalDefault
	if s := r.URL.Query().Get("interval_ms"); s != "" {
		ms, err := strconv.Atoi(s)
		if err != nil || ms <= 0 {
			writeError(w, http.StatusBadRequest, "invalid_request_error",
				fmt.Sprintf("bad interval_ms %q", s))
			return
		}
		interval = time.Duration(ms) * time.Millisecond
		if interval < streamIntervalMin {
			interval = streamIntervalMin
		}
		if interval > streamIntervalMax {
			interval = streamIntervalMax
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	send := func() bool {
		data, err := g.telemetryDoc()
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "data: %s\n\n", data)
		flusher.Flush()
		return true
	}
	if !send() {
		return
	}
	for {
		select {
		case <-ticker.C:
			if !send() {
				return
			}
		case <-g.cfg.Loop.Done():
			fmt.Fprint(w, "data: [DONE]\n\n")
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}
