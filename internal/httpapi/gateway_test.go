package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diffkv/internal/baselines"
	"diffkv/internal/cluster"
	"diffkv/internal/gpusim"
	"diffkv/internal/serving"
	"diffkv/internal/synth"
	"diffkv/internal/workload"
)

func engineLoop(t *testing.T, cfg serving.Config, lc serving.LoopConfig) *serving.Loop {
	t.Helper()
	e, err := serving.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := serving.NewLoop(e, lc)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		l.Shutdown(ctx)
	})
	return l
}

func traitsCfg(seed uint64) serving.Config {
	return serving.Config{
		Model: synth.Llama3_8B, Cluster: gpusim.NewCluster(gpusim.L40(), 1),
		Traits: baselines.TraitsVLLM, Seed: seed,
	}
}

func managerCfg(seed uint64) serving.Config {
	return serving.Config{
		Model: synth.Llama3_8B, Cluster: gpusim.NewCluster(gpusim.L40(), 1),
		Traits: baselines.TraitsDiffKV(0.3), UseManager: true,
		HiFrac: 0.25, LoFrac: 0.3, Seed: seed,
	}
}

func newTestServer(t *testing.T, l *serving.Loop) *httptest.Server {
	t.Helper()
	g, err := New(Config{Loop: l, ModelName: "Llama3-8B"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// readSSE collects the data payloads of an SSE stream until [DONE] or EOF.
func readSSE(t *testing.T, body io.Reader) []string {
	t.Helper()
	var out []string
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		payload := strings.TrimPrefix(line, "data: ")
		out = append(out, payload)
		if payload == "[DONE]" {
			break
		}
	}
	return out
}

// TestCompletionsStream is the acceptance-criteria path: a streamed
// /v1/completions delivers tokens incrementally over SSE — one chunk
// per generated token, a final chunk with finish_reason "stop" and
// usage, then [DONE].
func TestCompletionsStream(t *testing.T) {
	srv := newTestServer(t, engineLoop(t, traitsCfg(3), serving.LoopConfig{}))
	resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt_tokens": 128, "max_tokens": 12, "stream": true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	payloads := readSSE(t, resp.Body)
	if len(payloads) == 0 || payloads[len(payloads)-1] != "[DONE]" {
		t.Fatalf("stream did not end with [DONE]: %v", payloads)
	}
	chunks := payloads[:len(payloads)-1]
	// First update + 12 token chunks + final chunk
	if len(chunks) != 14 {
		t.Fatalf("got %d chunks, want 14: %v", len(chunks), chunks)
	}
	var tokens int
	var sawStop bool
	for _, p := range chunks {
		var c completionResponse
		if err := json.Unmarshal([]byte(p), &c); err != nil {
			t.Fatalf("bad chunk %q: %v", p, err)
		}
		if len(c.Choices) != 1 {
			t.Fatalf("chunk without choice: %q", p)
		}
		if c.Choices[0].Text != "" {
			tokens++
		}
		if fr := c.Choices[0].FinishReason; fr != nil && *fr == "stop" {
			sawStop = true
			if c.Usage == nil || c.Usage.CompletionTokens != 12 || c.Usage.PromptTokens != 128 {
				t.Fatalf("final chunk usage wrong: %q", p)
			}
		}
	}
	if tokens != 12 || !sawStop {
		t.Fatalf("streamed %d token chunks (want 12), stop=%v", tokens, sawStop)
	}
}

// TestCompletionsBlocking: stream=false returns one JSON body with
// usage and simulated-latency extensions.
func TestCompletionsBlocking(t *testing.T) {
	srv := newTestServer(t, engineLoop(t, traitsCfg(5), serving.LoopConfig{}))
	resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt": "what is a KV cache?", "max_tokens": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var c completionResponse
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	if c.Object != "text_completion" || len(c.Choices) != 1 {
		t.Fatalf("bad body: %+v", c)
	}
	if c.Usage == nil || c.Usage.CompletionTokens != 8 || c.Usage.PromptTokens < 16 {
		t.Fatalf("bad usage: %+v", c.Usage)
	}
	if c.DiffKV == nil || c.DiffKV.TTFTMs <= 0 || c.DiffKV.E2EMs < c.DiffKV.TTFTMs {
		t.Fatalf("bad sim info: %+v", c.DiffKV)
	}
	if got := strings.Count(c.Choices[0].Text, " "); got != 8 {
		t.Fatalf("completion text has %d tokens, want 8: %q", got, c.Choices[0].Text)
	}
}

// TestDisconnectFreesPages is the page-count canary of the gateway's
// cancellation contract: a client that disconnects mid-stream must have
// its session cancelled and every KV page returned to the pool. The
// loop is paced so the generation is still in flight when the client
// hangs up.
func TestDisconnectFreesPages(t *testing.T) {
	// ~1 sim-second of generation stretched to ~2 wall-seconds
	l := engineLoop(t, managerCfg(7), serving.LoopConfig{TimeScale: 2})
	srv := newTestServer(t, l)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/completions",
		strings.NewReader(`{"prompt_tokens": 1024, "max_tokens": 512, "stream": true}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// read until the prompt has run and at least one token streamed —
	// the sequence now holds KV pages
	sc := bufio.NewScanner(resp.Body)
	var chunks int
	for sc.Scan() && chunks < 2 {
		if strings.HasPrefix(sc.Text(), "data: ") {
			chunks++
		}
	}
	if used := l.Metrics().Driver.UsedKVPages; used == 0 {
		t.Fatal("no KV pages in use mid-stream; canary cannot bite")
	}
	cancel() // client disconnects

	deadline := time.Now().Add(10 * time.Second)
	for {
		d := l.Metrics().Driver
		if d.Cancelled == 1 && d.UsedKVPages == 0 && d.OpenSessions == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnect did not free KV state: %+v", d)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSaturated503: cluster admission shedding maps to HTTP 503 with a
// Retry-After hint. The queue is pre-filled through the loop with
// far-future requests the paced loop never admits, so the HTTP request
// deterministically finds every instance saturated.
func TestSaturated503(t *testing.T) {
	cfg := cluster.Config{
		Instances: 1,
		Engine:    traitsCfg(9),
		Policy:    cluster.PolicyRoundRobin,
		// admission bound of 1: a single queued request saturates
		MaxQueueDepth: 1,
		Seed:          9,
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := serving.NewLoop(c, serving.LoopConfig{TimeScale: 10})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		l.Shutdown(ctx)
	})
	if _, err := l.Open(context.Background(),
		workload.Request{ArrivalUs: 600e6, PromptLen: 128, GenLen: 8}, nil); err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, l)
	resp, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt_tokens": 64, "max_tokens": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", ra)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Type != "overloaded" {
		t.Fatalf("error type %q", eb.Error.Type)
	}
}

// TestMetricsAndHealthz: /metrics exposes the TTFT/TPOT/goodput series
// after a completion; /healthz flips to 503 once the loop drains.
func TestMetricsAndHealthz(t *testing.T) {
	l := engineLoop(t, traitsCfg(11), serving.LoopConfig{})
	srv := newTestServer(t, l)
	if _, err := http.Post(srv.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt_tokens": 64, "max_tokens": 4}`)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`diffkv_ttft_seconds{quantile="0.5"}`,
		`diffkv_tpot_seconds{quantile="0.95"}`,
		"diffkv_goodput_tokens_per_sec",
		"diffkv_requests_completed_total 1",
		"diffkv_preemptions_total",
		"diffkv_up 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", hz.StatusCode)
	}
	if err := l.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	hz, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz %d, want 503", hz.StatusCode)
	}
}
