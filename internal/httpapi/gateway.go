// Package httpapi is the network-facing serving API: an OpenAI-style
// HTTP gateway over the Loop-driven session layer. POST /v1/completions
// opens a Session on the loop and streams token progress back as
// server-sent events (or returns one JSON body when stream is false);
// client disconnects cancel the session, freeing its KV pages; /healthz
// reports liveness and /metrics exports the serving counters in
// Prometheus text format. The gateway holds no serving state of its own
// — everything observable comes from Loop.Metrics, everything mutable
// goes through Loop.Open, so the same handler fronts a single engine or
// a whole cluster.
package httpapi

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"diffkv/internal/cluster"
	"diffkv/internal/serving"
	"diffkv/internal/telemetry"
	"diffkv/internal/trace"
)

// Config parameterizes a Gateway.
type Config struct {
	// Loop is the always-on driver the gateway opens sessions on.
	Loop *serving.Loop
	// ModelName is echoed in completion responses (the simulator serves
	// one model per stack).
	ModelName string
	// DefaultMaxTokens bounds generations when a request omits
	// max_tokens (default 256).
	DefaultMaxTokens int
	// MaxTokensLimit caps client-supplied max_tokens (default 16384,
	// the largest per-model generation limit in the paper); a request
	// above it is a 400, not a multi-gigabyte stream buffer.
	MaxTokensLimit int
	// MaxPromptTokens caps client-supplied prompt_tokens (default
	// 1<<20); a simulated prompt longer than any model's context is a
	// caller error.
	MaxPromptTokens int
	// RetryAfter is the Retry-After hint attached to 503 responses when
	// admission control sheds a request or the loop is draining
	// (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
	// Trace, when non-nil, is the collector the serving stack emits into;
	// it enables the /debug routes (per-request span trees, Perfetto
	// trace download, live event tail) and the trace health metrics.
	Trace *trace.Collector
	// Telemetry, when non-nil, is the telemetry center sampled by the
	// serving loop; it enables GET /debug/telemetry (JSON snapshot),
	// GET /debug/telemetry/stream (SSE), and the histogram/saturation/
	// SLO series on /metrics.
	Telemetry *telemetry.Center
	// Pprof mounts net/http/pprof under /debug/pprof/ so CPU and heap
	// profiles can be pulled while a load scenario runs. Gate it behind
	// the same operator flag as the other debug routes — profiles expose
	// process internals.
	Pprof bool
}

// Gateway is the HTTP front-end. Construct with New, mount Handler.
type Gateway struct {
	cfg   Config
	start time.Time
}

// New builds a gateway over a running loop.
func New(cfg Config) (*Gateway, error) {
	if cfg.Loop == nil {
		return nil, errors.New("httpapi: Config.Loop is required")
	}
	if cfg.DefaultMaxTokens <= 0 {
		cfg.DefaultMaxTokens = 256
	}
	if cfg.MaxTokensLimit <= 0 {
		cfg.MaxTokensLimit = 16384
	}
	if cfg.MaxPromptTokens <= 0 {
		cfg.MaxPromptTokens = 1 << 20
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.ModelName == "" {
		cfg.ModelName = "diffkv"
	}
	return &Gateway{cfg: cfg, start: time.Now()}, nil
}

// Handler returns the gateway's route table.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/completions", g.handleCompletions)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/metrics", g.handleMetrics)
	if g.cfg.Trace != nil {
		mux.HandleFunc("/debug/requests/", g.handleDebugRequest)
		mux.HandleFunc("/debug/trace", g.handleDebugTrace)
		mux.HandleFunc("/debug/events", g.handleDebugEvents)
	}
	if g.cfg.Telemetry != nil {
		mux.HandleFunc("/debug/telemetry", g.handleTelemetry)
		mux.HandleFunc("/debug/telemetry/stream", g.handleTelemetryStream)
	}
	if g.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// instanceHealth is one instance's entry in the /healthz report.
type instanceHealth struct {
	Inst         int    `json:"inst"`
	Health       string `json:"health"`
	QueueDepth   int    `json:"queue_depth"`
	Running      int    `json:"running"`
	Redispatched int    `json:"redispatched,omitempty"`
}

// handleHealthz reports liveness: 200 while serving, 503 with a
// Retry-After once the loop is draining or has stopped (graceful drain,
// forced stop, or a driver error), so load balancers stop routing here
// the moment Opens would start failing. Under fault injection the body
// carries per-instance health; a fleet serving through crashed or
// slowed instances reports status "degraded" but stays 200 — it still
// accepts work, and shedding it entirely would turn a partial failure
// into a total one.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := g.cfg.Loop.Metrics()
	d := m.Driver
	status := "ok"
	code := http.StatusOK
	switch {
	case m.Stopped:
		status = "stopped"
		if err := g.cfg.Loop.Err(); err != nil {
			status = "failed: " + err.Error()
		}
		code = http.StatusServiceUnavailable
	case m.Draining:
		status = "draining"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", g.adaptiveRetryAfter(m))
	default:
		for _, is := range d.PerInstance {
			if is.Health != "" && is.Health != "healthy" {
				status = "degraded"
				break
			}
		}
	}
	body := map[string]any{
		"status":         status,
		"model":          g.cfg.ModelName,
		"uptime_seconds": m.UptimeSeconds,
		"open_sessions":  d.OpenSessions,
		"completed":      m.Completed,
		"instances_up":   d.InstancesUp,
	}
	if d.Failed > 0 {
		body["failed"] = d.Failed
	}
	if len(d.PerInstance) > 0 {
		insts := make([]instanceHealth, 0, len(d.PerInstance))
		for _, is := range d.PerInstance {
			insts = append(insts, instanceHealth{
				Inst:         is.Inst,
				Health:       is.Health,
				QueueDepth:   is.QueueDepth,
				Running:      is.Running,
				Redispatched: is.Redispatched,
			})
		}
		body["instances"] = insts
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

func (g *Gateway) retryAfterSeconds() string {
	secs := int((g.cfg.RetryAfter + time.Second - 1) / time.Second)
	return strconv.Itoa(secs)
}

// adaptiveRetryAfter sizes the Retry-After hint from the live queue: a
// client told to come back should not return while the backlog it was
// shed over is still draining.
func (g *Gateway) adaptiveRetryAfter(m serving.LoopMetrics) string {
	d := m.Driver
	return strconv.Itoa(retryAfterHint(g.cfg.RetryAfter, m.E2E.Mean, d.QueueDepth, d.InstancesUp))
}

// retryAfterHint estimates queue-drain time in whole seconds: the mean
// end-to-end latency of completed requests, times the queued backlog,
// spread over the instances still up — clamped to [floor, 60s]. With no
// completions yet (mean 0) it falls back to the configured floor.
func retryAfterHint(floor time.Duration, meanE2ESec float64, queued, up int) int {
	if up < 1 {
		up = 1
	}
	est := int(math.Ceil(meanE2ESec * float64(queued) / float64(up)))
	min := int((floor + time.Second - 1) / time.Second)
	if est < min {
		est = min
	}
	if est > 60 {
		est = 60
	}
	return est
}

// errorBody is the OpenAI-style error envelope.
type errorBody struct {
	Error struct {
		Message string `json:"message"`
		Type    string `json:"type"`
		Code    string `json:"code,omitempty"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, status int, typ, msg string) {
	var body errorBody
	body.Error.Message = msg
	body.Error.Type = typ
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// writeOpenError maps a Loop.Open failure onto HTTP: saturation
// (cluster admission shed) and shutdown are 503 with a Retry-After so
// well-behaved clients back off and retry elsewhere; anything else is a
// caller error. The saturation hint is adaptive — sized from the queue
// backlog per live instance, not a fixed constant — so a brownout tells
// clients how long the brownout actually is.
func (g *Gateway) writeOpenError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, cluster.ErrAllSaturated):
		w.Header().Set("Retry-After", g.adaptiveRetryAfter(g.cfg.Loop.Metrics()))
		writeError(w, http.StatusServiceUnavailable, "overloaded", err.Error())
	case errors.Is(err, serving.ErrLoopShutdown):
		w.Header().Set("Retry-After", g.retryAfterSeconds())
		writeError(w, http.StatusServiceUnavailable, "shutting_down", err.Error())
	default:
		writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
	}
}
