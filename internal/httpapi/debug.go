package httpapi

// Debug routes over the trace collector (mounted when Config.Trace is
// set): GET /debug/requests/{id} returns one request's reconstructed
// span tree with its phase-attributed latency, GET /debug/trace
// downloads the retained events as a Perfetto-loadable trace-event
// file, and GET /debug/events tails the live event stream as SSE.
// Everything is rebuilt from the collector's event ring on demand — the
// gateway keeps no per-request state of its own.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"diffkv/internal/trace"
)

// handleDebugRequest serves GET /debug/requests/{id}: the span tree and
// phase breakdown of one request, looked up by sequence ID (the numeric
// tail of a completion's "cmpl-<id>", which is also accepted verbatim).
func (g *Gateway) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "GET only")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/debug/requests/")
	idStr = strings.TrimPrefix(idStr, "cmpl-") // completion IDs work as-is
	seq, err := strconv.Atoi(idStr)
	if err != nil || seq <= 0 {
		writeError(w, http.StatusBadRequest, "invalid_request_error",
			fmt.Sprintf("bad request id %q", idStr))
		return
	}
	trees := trace.BuildRequestSpans(g.cfg.Trace.Events())
	rt := trace.FindRequestSpans(trees, seq)
	if rt == nil {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no trace events retained for request %d", seq))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rt)
}

// handleDebugTrace serves GET /debug/trace: the retained events as a
// Chrome/Perfetto trace-event JSON download (open in ui.perfetto.dev).
func (g *Gateway) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="diffkv-trace.json"`)
	if err := g.cfg.Trace.WritePerfetto(w); err != nil {
		// headers are gone; all that is left is to stop writing
		return
	}
}

// handleDebugEvents serves GET /debug/events: a live SSE tail of the
// trace event stream. Delivery is best-effort (a slow client skips
// events rather than stalling the serving loop); the stream ends when
// the client disconnects or the loop stops.
func (g *Gateway) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "GET only")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "server_error", "response writer cannot stream")
		return
	}
	events, cancel := g.cfg.Trace.Subscribe(0)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		select {
		case e := <-events:
			data, _ := json.Marshal(e)
			fmt.Fprintf(w, "data: %s\n\n", data)
			flusher.Flush()
		case <-g.cfg.Loop.Done():
			fmt.Fprint(w, "data: [DONE]\n\n")
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}
