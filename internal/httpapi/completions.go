package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"diffkv/internal/serving"
	"diffkv/internal/workload"
)

// completionRequest is the accepted subset of the OpenAI completions
// request, extended with simulator-native fields: the engine models
// token counts, not text, so prompt_tokens pins the prompt length
// exactly (a text prompt is otherwise length-estimated), and
// prefix_group/prefix_len expose shared-prefix structure to the
// prefix cache and affinity routing.
type completionRequest struct {
	Model     string `json:"model"`
	Prompt    string `json:"prompt"`
	MaxTokens int    `json:"max_tokens"`
	Stream    bool   `json:"stream"`

	PromptTokens int `json:"prompt_tokens"`
	PrefixGroup  int `json:"prefix_group"`
	PrefixLen    int `json:"prefix_len"`
}

// choice is one completion choice (the simulator always produces one).
type choice struct {
	Index        int     `json:"index"`
	Text         string  `json:"text"`
	FinishReason *string `json:"finish_reason"`
}

// usage is the OpenAI token-accounting block.
type usage struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
	TotalTokens      int `json:"total_tokens"`
}

// simInfo is the diffkv extension block: simulated-time observability a
// text API has no slot for.
type simInfo struct {
	SimTimeUs   float64 `json:"sim_time_us"`
	TTFTMs      float64 `json:"ttft_ms,omitempty"`
	E2EMs       float64 `json:"e2e_ms,omitempty"`
	Generated   int     `json:"generated,omitempty"`
	FirstToken  bool    `json:"first_token,omitempty"`
	Preemptions int     `json:"preemptions,omitempty"`
	// Attempts counts dispatches across instances; present only when >1
	// (the request survived an instance crash via re-dispatch).
	Attempts int `json:"attempts,omitempty"`
	// Phase-attributed latency (final responses only): the buckets sum
	// to e2e_ms.
	QueueMs   float64 `json:"queue_ms,omitempty"`
	PrefillMs float64 `json:"prefill_ms,omitempty"`
	DecodeMs  float64 `json:"decode_ms,omitempty"`
	StallMs   float64 `json:"stall_ms,omitempty"`
	SwappedMs float64 `json:"swapped_ms,omitempty"`
}

// completionResponse is one (non-streamed) completion, or one SSE chunk.
type completionResponse struct {
	ID      string   `json:"id"`
	Object  string   `json:"object"`
	Created int64    `json:"created"`
	Model   string   `json:"model"`
	Choices []choice `json:"choices"`
	Usage   *usage   `json:"usage,omitempty"`
	DiffKV  *simInfo `json:"diffkv,omitempty"`
}

var stop = "stop"

// retriedAttempts reports cp.Attempts only when the request was
// dispatched more than once, so single-dispatch responses omit the
// field entirely.
func retriedAttempts(cp serving.Completion) int {
	if cp.Attempts > 1 {
		return cp.Attempts
	}
	return 0
}

// fillerVocab supplies deterministic placeholder token text: the
// simulator computes timing and memory, not language, but streams must
// still carry visible tokens for curl-level inspection.
var fillerVocab = []string{
	"the", "of", "a", "to", "in", "is", "page", "cache", "tier", "token",
	"key", "value", "quant", "step", "batch", "swap",
}

func fillerToken(seq, n int) string {
	return " " + fillerVocab[(seq*31+n*7)%len(fillerVocab)]
}

// estimatePromptTokens derives a simulated prompt length from a text
// prompt (~4 chars per token, floored at the workload generator's
// 16-token minimum so tiny demo prompts still exercise a real prompt
// phase).
func estimatePromptTokens(prompt string) int {
	n := len(strings.TrimSpace(prompt)) / 4
	if n < 16 {
		n = 16
	}
	return n
}

// handleCompletions serves POST /v1/completions: open a session on the
// loop, then either stream token progress as SSE chunks or block until
// completion. The request context rides into Open, so a client
// disconnect cancels the session and frees its KV pages at the next
// step boundary.
func (g *Gateway) handleCompletions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "POST only")
		return
	}
	var req completionRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request_error",
			fmt.Sprintf("malformed request body: %v", err))
		return
	}
	promptTokens := req.PromptTokens
	if promptTokens <= 0 {
		promptTokens = estimatePromptTokens(req.Prompt)
	}
	if promptTokens > g.cfg.MaxPromptTokens {
		writeError(w, http.StatusBadRequest, "invalid_request_error",
			fmt.Sprintf("prompt_tokens %d exceeds the limit of %d", promptTokens, g.cfg.MaxPromptTokens))
		return
	}
	maxTokens := req.MaxTokens
	if maxTokens <= 0 {
		maxTokens = g.cfg.DefaultMaxTokens
	}
	if maxTokens > g.cfg.MaxTokensLimit {
		// bound before anything is sized from it (the SSE update channel,
		// the blocking path's completion text)
		writeError(w, http.StatusBadRequest, "invalid_request_error",
			fmt.Sprintf("max_tokens %d exceeds the limit of %d", maxTokens, g.cfg.MaxTokensLimit))
		return
	}
	if req.PrefixLen > promptTokens {
		writeError(w, http.StatusBadRequest, "invalid_request_error",
			"prefix_len exceeds the prompt length")
		return
	}
	wr := workload.Request{
		PromptLen:   promptTokens,
		GenLen:      maxTokens,
		PrefixGroup: req.PrefixGroup,
		PrefixLen:   req.PrefixLen,
	}

	if !req.Stream {
		g.completeBlocking(w, r, wr)
		return
	}
	g.completeSSE(w, r, wr)
}

// completeBlocking waits for the whole generation and returns one body.
func (g *Gateway) completeBlocking(w http.ResponseWriter, r *http.Request, wr workload.Request) {
	s, err := g.cfg.Loop.Open(r.Context(), wr, nil)
	if err != nil {
		g.writeOpenError(w, err)
		return
	}
	select {
	case <-s.Done():
	case <-g.cfg.Loop.Done():
		// loop stopped (hard shutdown or driver error) with the session
		// unfinished: nothing more will ever arrive
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "serving loop stopped")
		return
	case <-r.Context().Done():
		// client gone; the loop reaps the session via its context
		return
	}
	cp, err := s.Completion()
	if err != nil {
		if errors.Is(err, serving.ErrFailed) {
			// the instance holding this request crashed and its re-dispatch
			// retry budget ran out: honest 503, with a drain-sized hint
			w.Header().Set("Retry-After", g.adaptiveRetryAfter(g.cfg.Loop.Metrics()))
			writeError(w, http.StatusServiceUnavailable, "failed", err.Error())
			return
		}
		writeError(w, http.StatusServiceUnavailable, "cancelled", err.Error())
		return
	}
	var text strings.Builder
	for n := 1; n <= cp.Req.GenLen; n++ {
		text.WriteString(fillerToken(cp.Req.ID, n))
	}
	resp := completionResponse{
		ID:      fmt.Sprintf("cmpl-%d", cp.Req.ID),
		Object:  "text_completion",
		Created: time.Now().Unix(),
		Model:   g.cfg.ModelName,
		Choices: []choice{{Text: text.String(), FinishReason: &stop}},
		Usage: &usage{
			PromptTokens:     cp.Req.PromptLen,
			CompletionTokens: cp.Req.GenLen,
			TotalTokens:      cp.Req.PromptLen + cp.Req.GenLen,
		},
		DiffKV: &simInfo{
			SimTimeUs:   cp.DoneUs,
			TTFTMs:      (cp.FirstTokenUs - cp.Req.ArrivalUs) / 1e3,
			E2EMs:       (cp.DoneUs - cp.Req.ArrivalUs) / 1e3,
			Generated:   cp.Req.GenLen,
			Preemptions: cp.Preemptions,
			Attempts:    retriedAttempts(cp),
			QueueMs:     cp.Phases.QueueUs / 1e3,
			PrefillMs:   cp.Phases.PrefillUs / 1e3,
			DecodeMs:    cp.Phases.DecodeUs / 1e3,
			StallMs:     cp.Phases.StallUs / 1e3,
			SwappedMs:   cp.Phases.SwappedUs / 1e3,
		},
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// completeSSE streams token progress as server-sent events. The OnToken
// callback runs on the loop goroutine, so it only forwards updates into
// a channel sized for the whole generation (one slot per token plus the
// First update — it can never block the loop); this goroutine owns the
// response writer.
func (g *Gateway) completeSSE(w http.ResponseWriter, r *http.Request, wr workload.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "server_error", "response writer cannot stream")
		return
	}
	updates := make(chan serving.TokenUpdate, wr.GenLen+4)
	s, err := g.cfg.Loop.Open(r.Context(), wr, func(u serving.TokenUpdate) {
		select {
		case updates <- u:
		default: // sized for the full stream; never block the loop
		}
	})
	if err != nil {
		g.writeOpenError(w, err)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	id := fmt.Sprintf("cmpl-%d", s.ID())
	created := time.Now().Unix()
	writeChunk := func(u serving.TokenUpdate) {
		text := ""
		if !u.First {
			text = fillerToken(s.ID(), u.Generated)
		}
		chunk := completionResponse{
			ID: id, Object: "text_completion", Created: created,
			Model:   g.cfg.ModelName,
			Choices: []choice{{Text: text}},
			DiffKV:  &simInfo{SimTimeUs: u.TimeUs, Generated: u.Generated, FirstToken: u.First},
		}
		data, _ := json.Marshal(chunk)
		fmt.Fprintf(w, "data: %s\n\n", data)
		flusher.Flush()
	}

	for {
		select {
		case u := <-updates:
			writeChunk(u)
		case <-s.Done():
			// the loop delivers every token update before finishing the
			// session, so drain the channel before the final chunk
			for {
				select {
				case u := <-updates:
					writeChunk(u)
					continue
				default:
				}
				break
			}
			cp, err := s.Completion()
			if err != nil {
				// cancelled (client disconnect or explicit): the SSE
				// stream just ends — there is no one left to tell
				return
			}
			final := completionResponse{
				ID: id, Object: "text_completion", Created: created,
				Model:   g.cfg.ModelName,
				Choices: []choice{{FinishReason: &stop}},
				Usage: &usage{
					PromptTokens:     cp.Req.PromptLen,
					CompletionTokens: cp.Req.GenLen,
					TotalTokens:      cp.Req.PromptLen + cp.Req.GenLen,
				},
				DiffKV: &simInfo{
					SimTimeUs:   cp.DoneUs,
					TTFTMs:      (cp.FirstTokenUs - cp.Req.ArrivalUs) / 1e3,
					E2EMs:       (cp.DoneUs - cp.Req.ArrivalUs) / 1e3,
					Generated:   cp.Req.GenLen,
					Preemptions: cp.Preemptions,
					Attempts:    retriedAttempts(cp),
					QueueMs:     cp.Phases.QueueUs / 1e3,
					PrefillMs:   cp.Phases.PrefillUs / 1e3,
					DecodeMs:    cp.Phases.DecodeUs / 1e3,
					StallMs:     cp.Phases.StallUs / 1e3,
					SwappedMs:   cp.Phases.SwappedUs / 1e3,
				},
			}
			data, _ := json.Marshal(final)
			fmt.Fprintf(w, "data: %s\n\n", data)
			fmt.Fprint(w, "data: [DONE]\n\n")
			flusher.Flush()
			return
		case <-g.cfg.Loop.Done():
			return
		case <-r.Context().Done():
			// client disconnected mid-stream: the loop reaps the session
			// via its context and frees its KV pages
			return
		}
	}
}
